package ballsbins

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// ShardedAllocator partitions n bins into P contiguous shards, each an
// independent Allocator with its own deterministic RNG stream, and
// serves concurrent callers: every shard is guarded by its own mutex,
// so P placements can proceed in parallel as long as they land on
// different shards. Arrivals are spread round-robin over the shards
// (an atomic ticket), which keeps the per-shard ball counts within one
// of each other — each shard then runs the protocol's placement rule
// among its own bins.
//
// This is the paper's protocol family composed with the standard
// scale-out move: the adaptive guarantee ⌈m_s/n_s⌉+1 holds per shard
// with m_s ≤ ⌈m/P⌉ balls over n_s ≥ ⌊n/P⌋ bins, so the global maximum
// load is at most ⌈⌈m/P⌉/⌊n/P⌋⌉ + 1 — within a ball or two of the
// sequential ⌈m/n⌉ + 1 — and that small slack buys cross-shard
// parallelism with no cross-shard coordination at placement time.
//
// Aggregate reads (Loads, MaxLoad, Gap, Psi, Metrics, Snapshot) lock
// every shard, so they are linearizable snapshots of the whole system.
type ShardedAllocator struct {
	shards []*shard
	n      int
	next   atomic.Uint64
}

type shard struct {
	mu sync.Mutex
	a  *Allocator
	lo int // global index of the shard's first bin
}

// NewSharded returns a ShardedAllocator over n bins split into
// `shards` contiguous groups (sizes differ by at most one). Shard i
// draws from the deterministic stream i of the master seed, and a
// WithHorizon value is split as ⌈m/P⌉ per shard — the most balls
// round-robin can route to any one shard. It panics
// if n <= 0, shards < 1, shards > n, s is the zero Spec, or a spec
// that requires a horizon is constructed without one.
func NewSharded(s Spec, n, shards int, opts ...Option) *ShardedAllocator {
	s.mustBeValid()
	if n <= 0 {
		panic("ballsbins: NewSharded with n <= 0")
	}
	if shards < 1 {
		panic("ballsbins: NewSharded with shards < 1")
	}
	if shards > n {
		panic(fmt.Sprintf("ballsbins: NewSharded needs shards <= n (%d > %d)", shards, n))
	}
	o := buildOptions(opts)
	if o.snapFn != nil {
		panic("ballsbins: WithSnapshots is a Run option; poll ShardedAllocator.Snapshot instead")
	}
	sa := &ShardedAllocator{shards: make([]*shard, shards), n: n}
	for i := 0; i < shards; i++ {
		lo := i * n / shards
		hi := (i + 1) * n / shards
		size := hi - lo
		shardOpts := []Option{
			WithSeed(rng.StreamSeed(o.seed, uint64(i))),
			WithEngine(o.engine),
		}
		if o.horizon > 0 {
			// Every shard must be able to absorb the balls round-robin
			// can actually route to it — up to ⌈m/P⌉, independent of
			// its size — so the horizon splits by shard COUNT, not by
			// bin share. A threshold-family shard then has capacity
			// n_s·(⌈h_s/n_s⌉+1) ≥ h_s + n_s, leaving n_s balls of
			// slack beyond its worst-case arrivals.
			shardOpts = append(shardOpts,
				WithHorizon(protocol.CeilDiv(o.horizon, int64(shards))))
		}
		sa.shards[i] = &shard{a: New(s, size, shardOpts...), lo: lo}
	}
	return sa
}

// Name returns the protocol's identifier.
func (sa *ShardedAllocator) Name() string { return sa.shards[0].a.Name() }

// N returns the total number of bins.
func (sa *ShardedAllocator) N() int { return sa.n }

// Shards returns the number of shards.
func (sa *ShardedAllocator) Shards() int { return len(sa.shards) }

// shardOf returns the shard holding global bin index b.
func (sa *ShardedAllocator) shardOf(b int) *shard {
	return sa.shards[sa.ShardOf(b)]
}

// ShardOf returns the index of the shard holding global bin b. Shard
// boundaries are lo_i = ⌊i·n/P⌋, so the candidate ⌊b·P/n⌋ is off by at
// most one; the fixups settle it. It panics if b is out of range.
func (sa *ShardedAllocator) ShardOf(b int) int {
	if b < 0 || b >= sa.n {
		panic(fmt.Sprintf("ballsbins: bin %d outside [0,%d)", b, sa.n))
	}
	p := len(sa.shards)
	i := b * p / sa.n
	for i+1 < p && sa.shards[i+1].lo <= b {
		i++
	}
	for i > 0 && sa.shards[i].lo > b {
		i--
	}
	return i
}

// ShardBase returns the global index of shard i's first bin; bins
// [ShardBase(i), ShardBase(i)+ShardSize(i)) belong to shard i.
func (sa *ShardedAllocator) ShardBase(i int) int { return sa.shards[i].lo }

// ShardSize returns the number of bins in shard i.
func (sa *ShardedAllocator) ShardSize(i int) int { return sa.shards[i].a.N() }

// WithShardLocked runs fn with shard i's Allocator while holding that
// shard's lock, passing the global index of the shard's first bin (so
// fn can translate the Allocator's shard-local bins to global ones).
// It is the batching hook for serving layers: a caller that has
// grouped several operations destined for one shard can apply them all
// under a single lock acquisition instead of paying one per operation.
// fn must not retain the Allocator past its return, and must not call
// back into the ShardedAllocator (the shard lock is held).
func (sa *ShardedAllocator) WithShardLocked(i int, fn func(a *Allocator, base int)) {
	sh := sa.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.a, sh.lo)
}

// NextShard claims one round-robin ticket and returns the shard index
// the next arrival should land on — the same cursor Place and
// PlaceBatch use, so external dispatchers placing via WithShardLocked
// keep per-shard ball counts within one of each other even when mixed
// with direct Place traffic. Safe for concurrent use.
func (sa *ShardedAllocator) NextShard() int {
	return int((sa.next.Add(1) - 1) % uint64(len(sa.shards)))
}

// NextShardBatch claims k round-robin tickets and reports how many of
// the k arrivals belong on each shard (counts[i] balls to shard i),
// exactly as PlaceBatch would spread them. Safe for concurrent use.
func (sa *ShardedAllocator) NextShardBatch(k int64) []int64 {
	p := int64(len(sa.shards))
	counts := make([]int64, p)
	if k <= 0 {
		return counts
	}
	start := int64((sa.next.Add(uint64(k)) - uint64(k)) % uint64(p))
	base := k / p
	rem := k % p
	for i := range counts {
		counts[i] = base
		if (int64(i)-start+p)%p < rem {
			counts[i]++
		}
	}
	return counts
}

// Place allocates one ball on the next shard in round-robin order and
// returns the global bin index and the number of random bin choices
// consumed. Safe for concurrent use.
func (sa *ShardedAllocator) Place() (bin int, samples int64) {
	// Claim ticket t = old cursor value and advance by one — the same
	// convention PlaceBatch uses, so mixed Place/PlaceBatch traffic
	// visits the shards in one consistent round-robin order.
	sh := sa.shards[sa.NextShard()]
	sh.mu.Lock()
	local, samples := sh.a.Place()
	sh.mu.Unlock()
	return sh.lo + local, samples
}

// PlaceBatch allocates k balls, spread as evenly as possible across
// the shards (each shard receives k/P, the remainder going to the
// shards after the round-robin cursor), and returns the total number
// of random bin choices consumed. Safe for concurrent use.
func (sa *ShardedAllocator) PlaceBatch(k int64) int64 {
	if k <= 0 {
		return 0
	}
	// Claim k tickets: each ball goes to the shard the round-robin
	// cursor would have visited next, so mixed Place/PlaceBatch
	// traffic keeps shard counts within one.
	counts := sa.NextShardBatch(k)
	var total int64
	for i, sh := range sa.shards {
		if counts[i] == 0 {
			continue
		}
		sh.mu.Lock()
		total += sh.a.PlaceBatch(counts[i])
		sh.mu.Unlock()
	}
	return total
}

// Remove takes one ball out of global bin i. It panics if the bin is
// empty. Safe for concurrent use.
func (sa *ShardedAllocator) Remove(bin int) {
	sh := sa.shardOf(bin)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.a.Remove(bin - sh.lo)
}

// Load returns the current load of global bin i. Safe for concurrent
// use.
func (sa *ShardedAllocator) Load(bin int) int {
	sh := sa.shardOf(bin)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.a.Load(bin - sh.lo)
}

// lockAll acquires every shard mutex in index order (a fixed order, so
// concurrent aggregate reads cannot deadlock) and returns the unlock
// function.
func (sa *ShardedAllocator) lockAll() func() {
	for _, sh := range sa.shards {
		sh.mu.Lock()
	}
	return func() {
		for _, sh := range sa.shards {
			sh.mu.Unlock()
		}
	}
}

// Loads returns a copy of the current global per-bin loads, read as
// one consistent snapshot.
func (sa *ShardedAllocator) Loads() []int {
	defer sa.lockAll()()
	out := make([]int, 0, sa.n)
	for _, sh := range sa.shards {
		out = append(out, sh.a.Loads()...)
	}
	return out
}

// Balls returns the number of balls currently in the system.
func (sa *ShardedAllocator) Balls() int64 {
	defer sa.lockAll()()
	var t int64
	for _, sh := range sa.shards {
		t += sh.a.Balls()
	}
	return t
}

// Placed returns the cumulative number of placements.
func (sa *ShardedAllocator) Placed() int64 {
	defer sa.lockAll()()
	var t int64
	for _, sh := range sa.shards {
		t += sh.a.Placed()
	}
	return t
}

// Samples returns the cumulative number of random bin choices.
func (sa *ShardedAllocator) Samples() int64 {
	defer sa.lockAll()()
	var t int64
	for _, sh := range sa.shards {
		t += sh.a.Samples()
	}
	return t
}

// MaxLoad returns the current global maximum load.
func (sa *ShardedAllocator) MaxLoad() int {
	defer sa.lockAll()()
	return sa.maxLoadLocked()
}

func (sa *ShardedAllocator) maxLoadLocked() int {
	max := 0
	for _, sh := range sa.shards {
		if l := sh.a.MaxLoad(); l > max {
			max = l
		}
	}
	return max
}

// MinLoad returns the current global minimum load.
func (sa *ShardedAllocator) MinLoad() int {
	defer sa.lockAll()()
	return sa.minLoadLocked()
}

func (sa *ShardedAllocator) minLoadLocked() int {
	min := math.MaxInt
	for _, sh := range sa.shards {
		if l := sh.a.MinLoad(); l < min {
			min = l
		}
	}
	return min
}

// Gap returns global MaxLoad − MinLoad.
func (sa *ShardedAllocator) Gap() int {
	defer sa.lockAll()()
	return sa.maxLoadLocked() - sa.minLoadLocked()
}

// Psi returns the global quadratic potential Ψ = Σℓ² − t²/n, combined
// exactly from the shards' integer sums.
func (sa *ShardedAllocator) Psi() float64 {
	defer sa.lockAll()()
	return sa.psiLocked()
}

func (sa *ShardedAllocator) psiLocked() float64 {
	var sumSq, balls int64
	for _, sh := range sa.shards {
		sumSq += sh.a.sess.SumSquares()
		balls += sh.a.Balls()
	}
	t := float64(balls)
	return float64(sumSq) - t*t/float64(sa.n)
}

// Metrics summarizes the whole system as a Result, combining the
// shards under one consistent snapshot. Phi is evaluated against the
// global average load.
func (sa *ShardedAllocator) Metrics() Result {
	res, _ := sa.MetricsWithBalls()
	return res
}

// MetricsWithBalls returns Metrics together with the live ball count,
// both read under the same lock-all acquisition — use it when the
// Result and the count must describe the same instant (Result alone
// cannot carry the count, and a separate Balls() call would observe a
// later state).
func (sa *ShardedAllocator) MetricsWithBalls() (Result, int64) {
	defer sa.lockAll()()
	var samples, placed, balls int64
	for _, sh := range sa.shards {
		samples += sh.a.Samples()
		placed += sh.a.Placed()
		balls += sh.a.Balls()
	}
	res := Result{
		Samples: samples,
		MaxLoad: sa.maxLoadLocked(),
		MinLoad: sa.minLoadLocked(),
		Psi:     sa.psiLocked(),
		Phi:     sa.phiLocked(balls),
	}
	res.Gap = res.MaxLoad - res.MinLoad
	if placed > 0 {
		res.SamplesPerBall = float64(samples) / float64(placed)
	}
	return res, balls
}

// phiLocked merges the shards' level histograms and evaluates the
// exponential potential against the global average, exactly as a
// single Vector over all n bins would.
func (sa *ShardedAllocator) phiLocked(balls int64) float64 {
	maxL := sa.maxLoadLocked()
	avg := float64(balls) / float64(sa.n)
	log1pe := math.Log1p(loadvec.DefaultEpsilon)
	var sum float64
	for l := sa.minLoadLocked(); l <= maxL; l++ {
		var c int64
		for _, sh := range sa.shards {
			c += sh.a.sess.LevelCount(l)
		}
		if c == 0 {
			continue
		}
		sum += float64(c) * math.Exp((avg+2-float64(l))*log1pe)
	}
	return sum
}

// ShardMetrics summarizes shard i alone as a Result, locking only that
// shard — a cheap monitoring read that never blocks traffic on the
// other P−1 shards. Loads, potentials and SamplesPerBall are evaluated
// within the shard (Phi against the shard's own average load). It
// panics if i is out of range.
func (sa *ShardedAllocator) ShardMetrics(i int) Result {
	if i < 0 || i >= len(sa.shards) {
		panic(fmt.Sprintf("ballsbins: shard %d outside [0,%d)", i, len(sa.shards)))
	}
	sh := sa.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return Result{
		Samples:        sh.a.Samples(),
		SamplesPerBall: safeDiv(sh.a.Samples(), sh.a.Placed()),
		MaxLoad:        sh.a.MaxLoad(),
		MinLoad:        sh.a.MinLoad(),
		Gap:            sh.a.Gap(),
		Psi:            sh.a.Psi(),
		Phi:            sh.a.Phi(),
	}
}

func safeDiv(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ApproxMetrics summarizes the whole system like Metrics but locks one
// shard at a time instead of all P at once, so a monitoring read never
// stalls more than 1/P of the traffic.
//
// Consistency tradeoff: each shard's contribution is internally
// consistent (read under its own lock), but the shards are observed at
// slightly different moments, so operations that land between the
// per-shard reads may be counted on some shards and not others. The
// combined figures can therefore differ transiently from any
// lock-all Metrics snapshot — e.g. Psi mixes sums-of-squares and ball
// counts from instants a few operations apart, and MaxLoad may miss a
// ball placed on an already-visited shard. Under quiescence it equals
// Metrics exactly. Use Metrics when a linearizable snapshot matters;
// use ApproxMetrics on monitoring paths.
func (sa *ShardedAllocator) ApproxMetrics() Result {
	var samples, placed, balls, sumSq int64
	maxL, minL := 0, math.MaxInt
	// Level counts are merged across shards to evaluate Phi globally;
	// the map stays tiny (levels span maxLoad−minLoad+1 values).
	levels := make(map[int]int64)
	for _, sh := range sa.shards {
		sh.mu.Lock()
		samples += sh.a.Samples()
		placed += sh.a.Placed()
		balls += sh.a.Balls()
		sumSq += sh.a.SumSquares()
		lo, hi := sh.a.MinLoad(), sh.a.MaxLoad()
		if hi > maxL {
			maxL = hi
		}
		if lo < minL {
			minL = lo
		}
		for l := lo; l <= hi; l++ {
			if c := sh.a.LevelCount(l); c > 0 {
				levels[l] += c
			}
		}
		sh.mu.Unlock()
	}
	t := float64(balls)
	avg := t / float64(sa.n)
	log1pe := math.Log1p(loadvec.DefaultEpsilon)
	var phi float64
	// Ascending level order, matching Metrics' summation order so the
	// two agree bit-for-bit at quiescence.
	for l := minL; l <= maxL; l++ {
		if c := levels[l]; c > 0 {
			phi += float64(c) * math.Exp((avg+2-float64(l))*log1pe)
		}
	}
	res := Result{
		Samples:        samples,
		SamplesPerBall: safeDiv(samples, placed),
		MaxLoad:        maxL,
		MinLoad:        minL,
		Psi:            float64(sumSq) - t*t/float64(sa.n),
		Phi:            phi,
	}
	res.Gap = res.MaxLoad - res.MinLoad
	return res
}

// Snapshot returns a consistent mid-run observation of the whole
// system.
func (sa *ShardedAllocator) Snapshot() Snapshot {
	defer sa.lockAll()()
	var samples, placed int64
	for _, sh := range sa.shards {
		samples += sh.a.Samples()
		placed += sh.a.Placed()
	}
	return Snapshot{
		Ball:    placed,
		Samples: samples,
		MaxLoad: sa.maxLoadLocked(),
		Gap:     sa.maxLoadLocked() - sa.minLoadLocked(),
		Psi:     sa.psiLocked(),
	}
}
