package ballsbins

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// ShardedAllocator partitions n bins into P contiguous shards, each an
// independent Allocator with its own deterministic RNG stream, and
// serves concurrent callers: every shard is guarded by its own mutex,
// so P placements can proceed in parallel as long as they land on
// different shards. Arrivals are spread round-robin over the shards
// (an atomic ticket), which keeps the per-shard ball counts within one
// of each other — each shard then runs the protocol's placement rule
// among its own bins.
//
// This is the paper's protocol family composed with the standard
// scale-out move: the adaptive guarantee ⌈m_s/n_s⌉+1 holds per shard
// with m_s ≤ ⌈m/P⌉ balls over n_s ≥ ⌊n/P⌋ bins, so the global maximum
// load is at most ⌈⌈m/P⌉/⌊n/P⌋⌉ + 1 — within a ball or two of the
// sequential ⌈m/n⌉ + 1 — and that small slack buys cross-shard
// parallelism with no cross-shard coordination at placement time.
//
// Aggregate reads (Loads, MaxLoad, Gap, Psi, Metrics, Snapshot) lock
// every shard, so they are linearizable snapshots of the whole system.
type ShardedAllocator struct {
	shards []*shard
	n      int
	next   atomic.Uint64
}

type shard struct {
	mu sync.Mutex
	a  *Allocator
	lo int // global index of the shard's first bin
}

// NewSharded returns a ShardedAllocator over n bins split into
// `shards` contiguous groups (sizes differ by at most one). Shard i
// draws from the deterministic stream i of the master seed, and a
// WithHorizon value is split as ⌈m/P⌉ per shard — the most balls
// round-robin can route to any one shard. It panics
// if n <= 0, shards < 1, shards > n, s is the zero Spec, or a spec
// that requires a horizon is constructed without one.
func NewSharded(s Spec, n, shards int, opts ...Option) *ShardedAllocator {
	s.mustBeValid()
	if n <= 0 {
		panic("ballsbins: NewSharded with n <= 0")
	}
	if shards < 1 {
		panic("ballsbins: NewSharded with shards < 1")
	}
	if shards > n {
		panic(fmt.Sprintf("ballsbins: NewSharded needs shards <= n (%d > %d)", shards, n))
	}
	o := buildOptions(opts)
	if o.snapFn != nil {
		panic("ballsbins: WithSnapshots is a Run option; poll ShardedAllocator.Snapshot instead")
	}
	sa := &ShardedAllocator{shards: make([]*shard, shards), n: n}
	for i := 0; i < shards; i++ {
		lo := i * n / shards
		hi := (i + 1) * n / shards
		size := hi - lo
		shardOpts := []Option{
			WithSeed(rng.StreamSeed(o.seed, uint64(i))),
			WithEngine(o.engine),
		}
		if o.horizon > 0 {
			// Every shard must be able to absorb the balls round-robin
			// can actually route to it — up to ⌈m/P⌉, independent of
			// its size — so the horizon splits by shard COUNT, not by
			// bin share. A threshold-family shard then has capacity
			// n_s·(⌈h_s/n_s⌉+1) ≥ h_s + n_s, leaving n_s balls of
			// slack beyond its worst-case arrivals.
			shardOpts = append(shardOpts,
				WithHorizon(protocol.CeilDiv(o.horizon, int64(shards))))
		}
		sa.shards[i] = &shard{a: New(s, size, shardOpts...), lo: lo}
	}
	return sa
}

// Name returns the protocol's identifier.
func (sa *ShardedAllocator) Name() string { return sa.shards[0].a.Name() }

// N returns the total number of bins.
func (sa *ShardedAllocator) N() int { return sa.n }

// Shards returns the number of shards.
func (sa *ShardedAllocator) Shards() int { return len(sa.shards) }

// shardOf returns the shard holding global bin index b. Shard
// boundaries are lo_i = ⌊i·n/P⌋, so the candidate ⌊b·P/n⌋ is off by at
// most one; the fixups settle it.
func (sa *ShardedAllocator) shardOf(b int) *shard {
	if b < 0 || b >= sa.n {
		panic(fmt.Sprintf("ballsbins: bin %d outside [0,%d)", b, sa.n))
	}
	p := len(sa.shards)
	i := b * p / sa.n
	for i+1 < p && sa.shards[i+1].lo <= b {
		i++
	}
	for i > 0 && sa.shards[i].lo > b {
		i--
	}
	return sa.shards[i]
}

// Place allocates one ball on the next shard in round-robin order and
// returns the global bin index and the number of random bin choices
// consumed. Safe for concurrent use.
func (sa *ShardedAllocator) Place() (bin int, samples int64) {
	// Claim ticket t = old cursor value and advance by one — the same
	// convention PlaceBatch uses, so mixed Place/PlaceBatch traffic
	// visits the shards in one consistent round-robin order.
	sh := sa.shards[(sa.next.Add(1)-1)%uint64(len(sa.shards))]
	sh.mu.Lock()
	local, samples := sh.a.Place()
	sh.mu.Unlock()
	return sh.lo + local, samples
}

// PlaceBatch allocates k balls, spread as evenly as possible across
// the shards (each shard receives k/P, the remainder going to the
// shards after the round-robin cursor), and returns the total number
// of random bin choices consumed. Safe for concurrent use.
func (sa *ShardedAllocator) PlaceBatch(k int64) int64 {
	if k <= 0 {
		return 0
	}
	p := int64(len(sa.shards))
	base := k / p
	rem := k % p
	// Claim rem tickets: the extra balls go to the shards the
	// round-robin cursor would have visited next (starting at the old
	// cursor value, the shard the next Place would have used), so
	// mixed Place/PlaceBatch traffic keeps shard counts within one.
	start := int64((sa.next.Add(uint64(rem)) - uint64(rem)) % uint64(p))
	var total int64
	for i, sh := range sa.shards {
		count := base
		if (int64(i)-start+p)%p < rem {
			count++
		}
		if count == 0 {
			continue
		}
		sh.mu.Lock()
		total += sh.a.PlaceBatch(count)
		sh.mu.Unlock()
	}
	return total
}

// Remove takes one ball out of global bin i. It panics if the bin is
// empty. Safe for concurrent use.
func (sa *ShardedAllocator) Remove(bin int) {
	sh := sa.shardOf(bin)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.a.Remove(bin - sh.lo)
}

// Load returns the current load of global bin i. Safe for concurrent
// use.
func (sa *ShardedAllocator) Load(bin int) int {
	sh := sa.shardOf(bin)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.a.Load(bin - sh.lo)
}

// lockAll acquires every shard mutex in index order (a fixed order, so
// concurrent aggregate reads cannot deadlock) and returns the unlock
// function.
func (sa *ShardedAllocator) lockAll() func() {
	for _, sh := range sa.shards {
		sh.mu.Lock()
	}
	return func() {
		for _, sh := range sa.shards {
			sh.mu.Unlock()
		}
	}
}

// Loads returns a copy of the current global per-bin loads, read as
// one consistent snapshot.
func (sa *ShardedAllocator) Loads() []int {
	defer sa.lockAll()()
	out := make([]int, 0, sa.n)
	for _, sh := range sa.shards {
		out = append(out, sh.a.Loads()...)
	}
	return out
}

// Balls returns the number of balls currently in the system.
func (sa *ShardedAllocator) Balls() int64 {
	defer sa.lockAll()()
	var t int64
	for _, sh := range sa.shards {
		t += sh.a.Balls()
	}
	return t
}

// Placed returns the cumulative number of placements.
func (sa *ShardedAllocator) Placed() int64 {
	defer sa.lockAll()()
	var t int64
	for _, sh := range sa.shards {
		t += sh.a.Placed()
	}
	return t
}

// Samples returns the cumulative number of random bin choices.
func (sa *ShardedAllocator) Samples() int64 {
	defer sa.lockAll()()
	var t int64
	for _, sh := range sa.shards {
		t += sh.a.Samples()
	}
	return t
}

// MaxLoad returns the current global maximum load.
func (sa *ShardedAllocator) MaxLoad() int {
	defer sa.lockAll()()
	return sa.maxLoadLocked()
}

func (sa *ShardedAllocator) maxLoadLocked() int {
	max := 0
	for _, sh := range sa.shards {
		if l := sh.a.MaxLoad(); l > max {
			max = l
		}
	}
	return max
}

// MinLoad returns the current global minimum load.
func (sa *ShardedAllocator) MinLoad() int {
	defer sa.lockAll()()
	return sa.minLoadLocked()
}

func (sa *ShardedAllocator) minLoadLocked() int {
	min := math.MaxInt
	for _, sh := range sa.shards {
		if l := sh.a.MinLoad(); l < min {
			min = l
		}
	}
	return min
}

// Gap returns global MaxLoad − MinLoad.
func (sa *ShardedAllocator) Gap() int {
	defer sa.lockAll()()
	return sa.maxLoadLocked() - sa.minLoadLocked()
}

// Psi returns the global quadratic potential Ψ = Σℓ² − t²/n, combined
// exactly from the shards' integer sums.
func (sa *ShardedAllocator) Psi() float64 {
	defer sa.lockAll()()
	return sa.psiLocked()
}

func (sa *ShardedAllocator) psiLocked() float64 {
	var sumSq, balls int64
	for _, sh := range sa.shards {
		sumSq += sh.a.sess.SumSquares()
		balls += sh.a.Balls()
	}
	t := float64(balls)
	return float64(sumSq) - t*t/float64(sa.n)
}

// Metrics summarizes the whole system as a Result, combining the
// shards under one consistent snapshot. Phi is evaluated against the
// global average load.
func (sa *ShardedAllocator) Metrics() Result {
	defer sa.lockAll()()
	var samples, placed, balls int64
	for _, sh := range sa.shards {
		samples += sh.a.Samples()
		placed += sh.a.Placed()
		balls += sh.a.Balls()
	}
	res := Result{
		Samples: samples,
		MaxLoad: sa.maxLoadLocked(),
		MinLoad: sa.minLoadLocked(),
		Psi:     sa.psiLocked(),
		Phi:     sa.phiLocked(balls),
	}
	res.Gap = res.MaxLoad - res.MinLoad
	if placed > 0 {
		res.SamplesPerBall = float64(samples) / float64(placed)
	}
	return res
}

// phiLocked merges the shards' level histograms and evaluates the
// exponential potential against the global average, exactly as a
// single Vector over all n bins would.
func (sa *ShardedAllocator) phiLocked(balls int64) float64 {
	maxL := sa.maxLoadLocked()
	avg := float64(balls) / float64(sa.n)
	log1pe := math.Log1p(loadvec.DefaultEpsilon)
	var sum float64
	for l := sa.minLoadLocked(); l <= maxL; l++ {
		var c int64
		for _, sh := range sa.shards {
			c += sh.a.sess.LevelCount(l)
		}
		if c == 0 {
			continue
		}
		sum += float64(c) * math.Exp((avg+2-float64(l))*log1pe)
	}
	return sum
}

// Snapshot returns a consistent mid-run observation of the whole
// system.
func (sa *ShardedAllocator) Snapshot() Snapshot {
	defer sa.lockAll()()
	var samples, placed int64
	for _, sh := range sa.shards {
		samples += sh.a.Samples()
		placed += sh.a.Placed()
	}
	return Snapshot{
		Ball:    placed,
		Samples: samples,
		MaxLoad: sa.maxLoadLocked(),
		Gap:     sa.maxLoadLocked() - sa.minLoadLocked(),
		Psi:     sa.psiLocked(),
	}
}
