// Package ballsbins is a Go implementation of the allocation protocols
// from Berenbrink, Khodamoradi, Sauerwald and Stauffer, "Balls-into-Bins
// with Nearly Optimal Load Distribution" (SPAA 2013), together with
// every baseline the paper compares against and a benchmark harness
// that regenerates the paper's Table 1 and Figure 3.
//
// # The protocols
//
// The paper studies sequential processes that place m balls into n
// bins using random choices, trading the number of choices (the
// "allocation time") against the maximum and overall shape of the
// final load distribution:
//
//   - Adaptive (the paper's contribution): ball i samples bins
//     uniformly at random until it finds one with load < i/n + 1.
//     Maximum load ⌈m/n⌉+1 by construction, O(m) expected allocation
//     time (Theorem 3.1), and a smooth final distribution — max-min
//     gap O(log n) w.h.p. and E[Ψ], E[Φ] = O(n) (Corollary 3.5). The
//     number of balls need not be known in advance.
//   - Threshold (Czumaj–Stemann): like Adaptive but with the fixed
//     acceptance bound m/n + 1. Allocation time m + O(m^{3/4}·n^{1/4})
//     (Theorem 4.1) — faster than Adaptive — but the final distribution
//     is rough: for m = n² the gap is Ω(n^{1/8}) and Ψ = Ω(n^{9/8})
//     (Lemma 4.2).
//   - Baselines: SingleChoice, Greedy(d) (Azar et al.), Left(d)
//     (Vöcking's Always-Go-Left), Memory(d,k) (Mitzenmacher–Prabhakar–
//     Shah), plus the AdaptiveNoSlack ablation showing the "+1" slack
//     is what buys the linear running time.
//
// Allocation time follows the paper's accounting — the number of
// random bin choices, not wall-clock time.
//
// # The Allocator — the core abstraction
//
// The heart of the package is the stateful Allocator (New): a
// long-lived allocator that accepts arrivals one ball at a time
// (Place), in bulk (PlaceBatch), and departures (Remove), exposing
// the live load state — Loads, MaxLoad, Gap, Psi, Metrics, Snapshot —
// after every operation. This is the online setting the adaptive
// protocol was designed for: its acceptance bound reads the live ball
// count, so the total number of balls need never be known, and
// departures lower the bound automatically.
//
//	lb := ballsbins.New(ballsbins.Adaptive(), 500)
//	bin, probes := lb.Place() // dispatch a task
//	lb.Remove(bin)            // ... and its completion
//
// Every batch entry point — Run, Replicates, RunBatchedGreedy,
// RunBatchedAdaptive, and the dynamic simulator's arrival step — is a
// thin driver over the same incremental core, so an Allocator stepped
// ball-by-ball reproduces Run's Result exactly under the same seed
// and engine. Specs whose acceptance rule needs the total ball count
// (Threshold, BoundedRetry) require WithHorizon at construction; all
// others are fully online. For concurrent callers, NewSharded
// partitions the bins into independently locked shards with
// deterministic per-shard RNG streams.
//
// # Serving
//
// The ShardedAllocator is the substrate of a network serving layer:
// cmd/bbserved exposes it over HTTP (place, remove, stats, snapshot,
// health, Prometheus metrics) through the arrival-combining dispatcher
// in internal/serve, which coalesces concurrent requests per shard and
// applies each batch under a single lock acquisition via
// WithShardLocked — lock traffic scales with batches, not requests.
// Monitoring reads come in two consistency grades: Metrics/Snapshot
// lock every shard for a linearizable view, while ShardMetrics and
// ApproxMetrics lock one shard at a time (cheap, but shards are
// observed at slightly different instants — see ApproxMetrics for the
// exact contract). cmd/bbload generates open-loop Poisson churn (the
// continuous-time supermarket regime: every placed ball departs after
// a random service time) and closed-loop saturation workloads against
// either the HTTP API or the in-process dispatcher; see the README's
// Serving section.
//
// # The cluster tier
//
// Above single-node serving sits the routing tier (internal/cluster,
// cmd/bbproxy), which runs the paper one level up: backend bbserved
// nodes are the bins, and the protocols become live load-balancing
// policies deciding which backend each placement goes to. A protocol
// "retry" is a probe of another backend against a deliberately stale
// LoadView (async stats polling on a configurable staleness window,
// corrected by local accounting) — the stale-information regime of
// the two-choices literature. SingleChoice is random routing,
// Greedy(d) is the classical power of d choices, and Adaptive accepts
// a backend whose estimated load is below (live total)/K + 1, which
// transplants its ⌈i/K⌉+1 max-load guarantee to the cluster level
// while needing no declared horizon. bbproxy serves the same HTTP
// surface as bbserved (clients cannot tell the tiers apart), health-
// checks its backends with eviction and automatic rejoin on stable
// slots, fails placements over on backend errors, and exposes
// aggregated cross-backend stats (max load, gap, probe counts per
// policy). bbload's cluster target drives the same Router over
// in-process backends for single-machine policy comparisons; see the
// README's Cluster tier section for measured gaps of random vs
// 2-choice vs adaptive routing.
//
// # Keyed placement tier
//
// The keyed tier (internal/keyed, exposed by bbserved and bbproxy via
// ?key= and -policy keyed[...]) serves workloads where the same key —
// a user, session, or cache key — must keep landing on the same bin.
// It is consistent-hashing-with-bounded-loads built from the paper's
// own machinery: every key owns a deterministic pseudo-random probe
// sequence (a per-key RNG stream, the same construction as the
// protocols' bin draws) and is assigned to the first probed bin
// passing the active policy's acceptance rule — the exact integer
// test K·(load−1) < i over per-bin key counts, so keyed-adaptive
// carries the ⌈i/K⌉+1 guarantee on keys per bin where plain hash
// affinity has none. An assignment table makes repeat traffic free
// (sticky affinity, zero probes); keys whose request share crosses a
// threshold are split to d-replica sets balanced by two-choices among
// the replicas; and when a bin dies, only the keys resident on it
// re-probe — their moves are counted and bounded (moved ≤ resident),
// overfull survivors shed their most recent keys down to the policy
// bound, and a rejoining bin moves nothing at all, in the paper's
// no-reallocation spirit. bbload's keyed scenarios (Zipf key
// popularity, hot-key flash, key churn, membership kill) measure the
// tier end to end; see the README's Keyed tier section. Keyed
// placement at the serve tier requires a fully online spec (the
// threshold family's per-shard horizon split assumes round-robin
// evenness, so bbserved refuses ?key= under threshold/fixed specs).
//
// The keyed assignment is durable: with -data-dir set, bbserved and
// bbproxy journal every structural mutation to a CRC-checked
// write-ahead log (internal/wal) with periodic compacting snapshots,
// and a restarted process replays to the exact pre-crash key→bin
// assignment before serving — kill -9 recovery is prefix-exact (the
// torn tail is truncated, never reordered or invented), SIGTERM
// drains seal a final snapshot, and the -fsync flag (always/
// interval/never) picks the durability/latency point. The recovery
// paths are exercised by crash-point fault injection
// (internal/faultinject, armed via BB_CRASHPOINT) and torn-tail
// fuzzing; see the README's Durability section.
//
// # Wire protocol
//
// Both serving tiers also speak a binary streaming protocol
// (internal/wire, enabled with -wire-addr) that closes the throughput
// gap between the in-proc dispatcher and JSON-over-HTTP: persistent
// connections carrying length-prefixed CRC-32-guarded frames (the
// WAL's framing idiom), request IDs for out-of-order pipelining, and
// batch coalescing on both ends of the socket — concurrent callers'
// requests are packed into one write/syscall per flush, the
// client-side twin of the dispatcher's arrival combining. Typed error
// codes map 1:1 onto the HTTP status semantics, the STATS message
// returns the exact /v1/stats document, and bbproxy transparently
// dials backends over wire when they advertise a listener (HTTP
// remains the fallback; failover is transport-agnostic). bbload
// -transport wire drives every scenario over it and stamps the
// coalescing factor and bytes/op into the bench records; see the
// README's Wire protocol section.
//
// # Observability
//
// The serving stack is traced end to end (internal/obs): every
// operation carries an allocation-free Capture whose stage spans
// (queue/apply on bbserved, probe/forward on bbproxy) sum to the op
// total, and slow or head-sampled ops are retained — with attrs like
// probes, failovers, and load-view staleness at pick time — in a
// lock-free ring served by GET /v1/trace on both daemons. One trace
// id names an op across every hop: minted at the first capturing
// tier, it propagates in the X-BB-Trace HTTP header and as the wire
// protocol's optional trailing field (the HELLO v1→v2 bump; v1 peers
// are unaffected). Stage durations also feed bb_stage_* histogram
// series on /metrics next to bb_go_* runtime gauges, -debug-addr
// serves net/http/pprof, and both daemons log through log/slog
// (-log-level, -log-format). bbload joins its slowest client ops
// against /v1/trace to print per-stage server breakdowns; see the
// README's Observability section.
//
// The paper's bounds are also checked live (internal/watch): both
// daemons run an invariant watchdog that evaluates each tier's
// provable load bound — ⌈m/n⌉+1 per shard and its sharded
// composition on bbserved, ⌈i/K⌉ plus bulk slack across backends on
// bbproxy, and the keyed tiers' per-bin replica bounds — against
// consistent snapshots on a cadence (-watch-every), recording
// breaches and lifecycle transitions (EVICTION, REJOIN, REBALANCE,
// RECOVERY, DRAIN) in a bounded typed event journal served as GET
// /v1/events and counted as bb_invariant_violations_total on
// /metrics. Each tick also appends one aggregate point (gap, Ψ,
// ops/s, combining factor, ...) to a fixed-width time-series ring
// behind GET /v1/timeseries, which bbload folds into its bench
// envelopes as gap_over_time and cmd/bbtop renders as a live
// terminal dashboard (-once -format json for scripting). Checks are
// armed only under the conditions that make them sound — policy
// family, anonymous traffic, stable membership, no acceptance-loop
// fallbacks — so a reported violation is a real bound breach, not
// estimator noise; see the README's invariant table.
//
// When it does break, the flight recorder (internal/diag, armed with
// -diag-dir) captures the postmortem: on a watchdog violation, an
// operator SIGQUIT, a WAL recovery that truncated a torn tail, or a
// restart with a crash point still armed, the daemon snapshots a
// self-contained diagnostic bundle — full stats, event journal, time
// series, last check results, every retained trace across every tier,
// goroutine/heap profiles, and the build stamp — as one CRC-framed
// .bbdiag file written crash-safely (a dump that itself dies leaves a
// prefix-exact readable bundle), rate-limited and with bounded
// retention. One trace id can be assembled across tiers live too: GET
// /v1/trace/{id} on bbproxy gathers the ops from its own ring and
// every backend's and returns them as a containment tree (the serve
// dispatch nested under the proxy forward that caused it; wire TRACE
// message, HELLO v3). cmd/bbdoctor analyzes a bundle offline — or a
// live daemon over the same surfaces — rendering the violation
// timeline and assembled traces and exiting non-zero on violations,
// which is what CI gates on; see the README's Postmortem diagnostics
// section.
//
// # The two engines
//
// Every run executes on one of two placement engines (see Engine,
// WithEngine). EngineNaive simulates the rejection loops literally:
// one RNG draw and one load probe per sampled bin, over per-bin state.
// EngineFast — the default — simulates the same processes in O(1)
// amortized per ball: the number of rejected samples for a ball is
// drawn from the exact Geometric distribution implied by the current
// load histogram, and the accepted bin from a single bounded draw over
// the acceptable set, so the joint law of every observable (chosen
// bins, Samples, MaxLoad, Gap, Ψ, Φ) is exactly that of the naive
// loop; only the way the seed's random stream is consumed differs.
// When no per-ball snapshot observer is attached, the fast engine
// additionally runs histogram-only (O(#levels) working set instead of
// O(n)) and materializes the final per-bin loads once at the end — the
// protocols are symmetric under bin relabeling, so that materialized
// vector again has exactly the naive distribution. See README.md for
// the per-protocol complexity table and measured speedups; the naive
// engine remains selectable as the reference oracle, and the
// equivalence of the two is enforced by chi-square tests in
// internal/protocol.
//
// # Quick start
//
//	res := ballsbins.Run(ballsbins.Adaptive(), 1000, 100_000,
//		ballsbins.WithSeed(42))
//	fmt.Println(res.SamplesPerBall, res.MaxLoad, res.Gap)
//
// Replicated experiments with confidence intervals:
//
//	sum, err := ballsbins.Replicates(ctx, ballsbins.Threshold(),
//		10_000, 1_000_000, 100, ballsbins.WithSeed(1))
//
// # Beyond the sequential protocols
//
// The package also exposes the paper's wider context: a round-
// synchronous parallel allocation engine in the model of Adler et al.
// and Lenzen–Wattenhofer (LenzenWattenhofer, AdlerCollision,
// HeavyParallel), the self-balancing reallocation baseline of
// Czumaj–Riley–Scheideler (SelfBalance), and a d-ary bucketed cuckoo
// hash table (NewCuckoo) for the hashing application domain.
//
// Everything is deterministic under a seed, uses only the standard
// library, and is exercised by the benchmark harness in bench_test.go,
// one benchmark per table/figure of the paper (see EXPERIMENTS.md).
package ballsbins
