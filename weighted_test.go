package ballsbins

import "testing"

func TestRunWeightedFacade(t *testing.T) {
	res := RunWeighted(WeightedAdaptive(), 128, 4096, ExpWeights(1), WithSeed(3))
	if res.TotalWeight <= 0 || res.MaxWeight <= 0 {
		t.Fatalf("weight bookkeeping wrong: %+v", res)
	}
	bound := res.TotalWeight/128 + 2*res.MaxWeight
	if res.MaxLoad >= bound {
		t.Fatalf("max load %v violates W/n + 2wmax = %v", res.MaxLoad, bound)
	}
	if res.SamplesPerBall < 1 || res.SamplesPerBall > 4 {
		t.Fatalf("samples per ball %v", res.SamplesPerBall)
	}
	if res.Gap != res.MaxLoad-res.MinLoad {
		t.Fatal("gap inconsistent")
	}
}

func TestRunWeightedSameWeightsAcrossProtocols(t *testing.T) {
	// Same seed means the same weight sequence for every protocol, so
	// TotalWeight must agree exactly.
	a := RunWeighted(WeightedAdaptive(), 64, 640, UniformWeights(1, 2), WithSeed(9))
	g := RunWeighted(WeightedGreedy(2), 64, 640, UniformWeights(1, 2), WithSeed(9))
	if a.TotalWeight != g.TotalWeight || a.MaxWeight != g.MaxWeight {
		t.Fatalf("weight streams differ: %v/%v vs %v/%v",
			a.TotalWeight, a.MaxWeight, g.TotalWeight, g.MaxWeight)
	}
}

func TestRunWeightedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero spec":   func() { RunWeighted(WeightedSpec{}, 1, 1, ConstWeights(1)) },
		"nil sampler": func() { RunWeighted(WeightedAdaptive(), 1, 1, nil) },
		"bad greedy":  func() { WeightedGreedy(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWeightedSpecNames(t *testing.T) {
	cases := map[string]WeightedSpec{
		"wadaptive":  WeightedAdaptive(),
		"wthreshold": WeightedThreshold(),
		"wgreedy[2]": WeightedGreedy(2),
		"wsingle":    WeightedSingleChoice(),
	}
	for want, spec := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("Name = %q want %q", got, want)
		}
	}
}

func TestBatchedFacade(t *testing.T) {
	// batch=1 equals the sequential protocols exactly. The batched
	// engine consumes the RNG stream like the naive loop, so the
	// sequential side must pin EngineNaive for stream-level identity.
	seqG := Run(Greedy(2), 64, 640, WithSeed(5), WithEngine(EngineNaive))
	batG := RunBatchedGreedy(64, 640, 1, 2, WithSeed(5))
	if seqG.Samples != batG.Samples || seqG.MaxLoad != batG.MaxLoad {
		t.Fatalf("batched greedy b=1 differs: %+v vs %+v", batG, seqG)
	}
	seqA := Run(Adaptive(), 64, 640, WithSeed(5), WithEngine(EngineNaive))
	batA := RunBatchedAdaptive(64, 640, 1, WithSeed(5))
	if seqA.Samples != batA.Samples || seqA.MaxLoad != batA.MaxLoad {
		t.Fatalf("batched adaptive b=1 differs: %+v vs %+v", batA, seqA)
	}
	if batG.Batches != 640 {
		t.Fatalf("batches = %d", batG.Batches)
	}
}

func TestExtensionSpecs(t *testing.T) {
	const n, m = 100, 1000
	for _, spec := range []Spec{
		OnePlusBeta(0.5), StaleAdaptive(50), LaggedAdaptive(50),
	} {
		res := Run(spec, n, m, WithSeed(1))
		if res.Samples < m {
			t.Errorf("%s: samples %d < m", spec.Name(), res.Samples)
		}
	}
	// Counter-relaxed variants keep the guarantee.
	for _, spec := range []Spec{StaleAdaptive(50), LaggedAdaptive(50)} {
		res := Run(spec, n, m, WithSeed(2))
		if res.MaxLoad > int(MaxLoadGuarantee(n, m)) {
			t.Errorf("%s: max %d over guarantee", spec.Name(), res.MaxLoad)
		}
	}
}

func TestExtensionSpecPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"beta>1":  func() { OnePlusBeta(1.5) },
		"sync<1":  func() { StaleAdaptive(0) },
		"lag<0":   func() { LaggedAdaptive(-1) },
		"batch<1": func() { RunBatchedGreedy(4, 4, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
