package ballsbins

import (
	"context"
	"testing"
	"testing/quick"
)

func TestRunAdaptive(t *testing.T) {
	res := Run(Adaptive(), 100, 1000, WithSeed(7))
	if res.MaxLoad > int(MaxLoadGuarantee(100, 1000)) {
		t.Fatalf("max load %d exceeds guarantee", res.MaxLoad)
	}
	if res.Samples < 1000 {
		t.Fatalf("samples %d below m", res.Samples)
	}
	if res.SamplesPerBall < 1 || res.SamplesPerBall > 3 {
		t.Fatalf("samples per ball %v implausible", res.SamplesPerBall)
	}
	if res.Gap != res.MaxLoad-res.MinLoad {
		t.Fatal("gap inconsistent")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := Run(Threshold(), 64, 640, WithSeed(5))
	b := Run(Threshold(), 64, 640, WithSeed(5))
	if a != b {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
}

func TestSpecNames(t *testing.T) {
	cases := map[string]Spec{
		"adaptive":         Adaptive(),
		"threshold":        Threshold(),
		"adaptive-noslack": AdaptiveNoSlack(),
		"single":           SingleChoice(),
		"greedy[2]":        Greedy(2),
		"left[2]":          Left(2),
		"memory[1,1]":      Memory(1, 1),
		"fixed[<3]":        FixedThreshold(3),
	}
	for want, spec := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("Name = %q want %q", got, want)
		}
	}
}

func TestZeroSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero Spec did not panic")
		}
	}()
	Run(Spec{}, 1, 1)
}

func TestConstructorValidationIsEager(t *testing.T) {
	for name, f := range map[string]func(){
		"Greedy(0)":         func() { Greedy(0) },
		"Left(1)":           func() { Left(1) },
		"Memory(0,0)":       func() { Memory(0, 0) },
		"FixedThreshold(0)": func() { FixedThreshold(0) },
		"WithSnapshots bad": func() { WithSnapshots(0, func(Snapshot) {}) },
		"WithSnapshots nil": func() { WithSnapshots(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSnapshots(t *testing.T) {
	var snaps []Snapshot
	Run(Adaptive(), 32, 320, WithSeed(3), WithSnapshots(32, func(s Snapshot) {
		snaps = append(snaps, s)
	}))
	if len(snaps) != 1+10 {
		t.Fatalf("got %d snapshots, want 11", len(snaps))
	}
	if snaps[0].Ball != 1 || snaps[len(snaps)-1].Ball != 320 {
		t.Fatalf("snapshot boundaries wrong: %+v", snaps)
	}
	prev := int64(0)
	for _, s := range snaps {
		if s.Samples < prev {
			t.Fatal("cumulative samples decreased")
		}
		prev = s.Samples
	}
}

func TestReplicates(t *testing.T) {
	sum, err := Replicates(context.Background(), Adaptive(), 64, 640, 10, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reps != 10 || sum.Protocol != "adaptive" {
		t.Fatalf("summary header wrong: %+v", sum)
	}
	if sum.TimePerBall.Mean < 1 || sum.TimePerBall.Mean > 3 {
		t.Fatalf("time per ball %v", sum.TimePerBall.Mean)
	}
	if sum.Time.Min > sum.Time.Max {
		t.Fatal("min > max")
	}
	if sum.Time.CI95 <= 0 {
		t.Fatal("CI95 should be positive for 10 replicates")
	}
}

func TestReplicatesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Replicates(ctx, Adaptive(), 64, 640, 1000); err == nil {
		t.Fatal("cancelled context did not error")
	}
}

func TestMaxLoadGuaranteeProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 1 + int(nRaw%200)
		m := int64(mRaw % 4000)
		for _, spec := range []Spec{Adaptive(), Threshold()} {
			res := Run(spec, n, m, WithSeed(seed))
			if res.MaxLoad > int(MaxLoadGuarantee(n, m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelFacade(t *testing.T) {
	res, err := LenzenWattenhofer(1<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad > 2 || res.Placed != 1<<10 {
		t.Fatalf("LW result wrong: %+v", res)
	}
	ac, err := AdlerCollision(512, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ac.Placed != 512 {
		t.Fatalf("Adler result wrong: %+v", ac)
	}
	hp, err := HeavyParallel(256, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hp.MaxLoad > 17 {
		t.Fatalf("heavy parallel max load %d", hp.MaxLoad)
	}
}

func TestSelfBalanceFacade(t *testing.T) {
	res := SelfBalance(128, 1024, 6)
	if res.MaxLoad > 9 { // ceil(m/n)+1 = 9
		t.Fatalf("self-balance max load %d", res.MaxLoad)
	}
	if res.Samples != 2048 {
		t.Fatalf("samples %d want 2m", res.Samples)
	}
	if res.MaxLoad > res.InitialMaxLoad {
		t.Fatal("balancing made things worse")
	}
}

func TestCuckooFacade(t *testing.T) {
	tab := NewCuckoo(CuckooConfig{Buckets: 128, BucketSize: 4, D: 2, Seed: 7})
	for k := uint64(1); k <= 400; k++ {
		if _, err := tab.Insert(k, k*2); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if v, ok := tab.Lookup(200); !ok || v != 400 {
		t.Fatalf("lookup failed: %d %v", v, ok)
	}
	if tab.Len() != 400 {
		t.Fatalf("len %d", tab.Len())
	}
}

func TestSmoothnessHeadline(t *testing.T) {
	// The package-level claim: adaptive is smoother than threshold at
	// the same (n, m), at slightly higher allocation time.
	const n = 128
	m := int64(n) * int64(n)
	a := Run(Adaptive(), n, m, WithSeed(11))
	th := Run(Threshold(), n, m, WithSeed(11))
	if a.Psi >= th.Psi {
		t.Fatalf("adaptive Psi %v not below threshold %v", a.Psi, th.Psi)
	}
	if a.Samples <= th.Samples {
		t.Logf("note: adaptive used fewer samples (%d vs %d) this seed",
			a.Samples, th.Samples)
	}
}
