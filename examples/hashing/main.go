// Hashing: bucket occupancy in hash tables, the classical application
// of balls-into-bins processes.
//
// Two designs are contrasted:
//
//  1. A d-choice hash table (each key probes d buckets, goes to the
//     emptiest): bucket occupancy is exactly the greedy[d] process, so
//     the worst bucket holds m/n + ln ln n/ln d + O(1) keys.
//  2. A cuckoo hash table (d candidate buckets of size k, displacement
//     on conflict): near-perfect space utilization, but inserts move
//     existing keys around — reallocation cost the paper's protocols
//     are designed to avoid.
//
// Run with:
//
//	go run ./examples/hashing
package main

import (
	"errors"
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	const buckets = 4096

	fmt.Println("-- d-choice hash table: worst-bucket occupancy (greedy[d]) --")
	occ := table.New("design", "keys", "load factor", "worst bucket", "probes/insert")
	for _, d := range []int{1, 2, 3} {
		var spec ballsbins.Spec
		if d == 1 {
			spec = ballsbins.SingleChoice()
		} else {
			spec = ballsbins.Greedy(d)
		}
		for _, keys := range []int64{buckets, 8 * buckets} {
			res := ballsbins.Run(spec, buckets, keys, ballsbins.WithSeed(3))
			occ.AddRow(fmt.Sprintf("%d-choice", d), fmt.Sprint(keys),
				fmt.Sprintf("%.0f%%", 100*float64(keys)/float64(buckets)),
				fmt.Sprint(res.MaxLoad), fmt.Sprint(d))
		}
	}
	fmt.Print(occ.Render())

	fmt.Println("\n-- cuckoo hash table: utilization vs displacement cost --")
	ck := table.New("load factor", "keys", "displacements", "disp/insert", "stash")
	for _, target := range []float64{0.50, 0.80, 0.90, 0.95} {
		tab := ballsbins.NewCuckoo(ballsbins.CuckooConfig{
			Buckets: buckets, BucketSize: 4, D: 2, Seed: 11,
		})
		keys := int64(float64(buckets*4) * target)
		var failed bool
		for k := int64(1); k <= keys; k++ {
			if _, err := tab.Insert(uint64(k), uint64(k)); err != nil {
				if errors.Is(err, ballsbins.ErrCuckooFull) {
					failed = true
					break
				}
				panic(err)
			}
		}
		status := fmt.Sprintf("%.0f%%", 100*target)
		if failed {
			status += " (FULL)"
		}
		ck.AddRow(status, fmt.Sprint(tab.Len()),
			fmt.Sprint(tab.Displacements),
			fmt.Sprintf("%.4f", float64(tab.Displacements)/float64(tab.Len())),
			fmt.Sprint(tab.StashLen()))
	}
	fmt.Print(ck.Render())

	fmt.Println("\nReading: d-choice tables never move keys (like the paper's")
	fmt.Println("protocols) but waste space on the worst bucket; cuckoo reaches")
	fmt.Println("95% utilization at the price of displacements per insert —")
	fmt.Println("exactly the reallocation cost Table 1 charges to [6].")
}
