// Supermarket: the queueing-theory face of balls-into-bins. Jobs
// arrive at a 64-server cluster as a Poisson process and are served
// FIFO with exponential service times; the dispatcher picks the server
// using the allocation protocols:
//
//   - single: one random server — each queue is an independent M/M/1,
//     so sojourn times blow up like 1/(1−ρ) as load ρ → 1;
//   - greedy2: shorter of two random queues — Mitzenmacher's
//     supermarket model, double-exponential improvement in the tail;
//   - adaptive: resample until a queue is below jobs-in-system/n + 1 —
//     the paper's acceptance rule, which matches greedy2's tail with
//     fewer expected probes at moderate load.
//
// Run with:
//
//	go run ./examples/supermarket
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	const n = 64
	const mu = 1.0
	const jobs = 150_000

	for _, rho := range []float64{0.7, 0.9, 0.95} {
		fmt.Printf("offered load rho = %.2f (n=%d servers, %d jobs)\n",
			rho, n, jobs)
		tb := table.New("policy", "probes/job", "mean sojourn",
			"p50", "p99", "max queue")
		for _, policy := range []struct {
			name string
			p    ballsbins.QueueConfig
		}{
			{"single", ballsbins.QueueConfig{Policy: ballsbins.PickSingle}},
			{"greedy2", ballsbins.QueueConfig{Policy: ballsbins.PickGreedy2}},
			{"adaptive", ballsbins.QueueConfig{Policy: ballsbins.PickAdaptive}},
		} {
			cfg := policy.p
			cfg.N = n
			cfg.ArrivalRate = rho * n * mu
			cfg.ServiceRate = mu
			cfg.Jobs = jobs
			cfg.Seed = 21
			res := ballsbins.RunQueue(cfg)
			tb.AddRow(policy.name,
				fmt.Sprintf("%.3f", res.ProbesPerJob),
				fmt.Sprintf("%.2f", res.MeanSojourn),
				fmt.Sprintf("%.2f", res.P50Sojourn),
				fmt.Sprintf("%.2f", res.P99Sojourn),
				fmt.Sprint(res.MaxQueue))
		}
		fmt.Print(tb.Render())
		fmt.Println()
	}
	fmt.Println("reading: at rho=0.95 single-choice p99 is an order of magnitude")
	fmt.Println("worse; adaptive matches greedy2's tail with fewer probes per job.")
}
