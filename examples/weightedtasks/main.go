// Weighted tasks: allocation when balls carry unequal weights — the
// natural extension of the paper's model (cf. Talwar–Wieder, "Balanced
// allocations: the weighted case").
//
// A dispatcher assigns m tasks with random service costs to n servers.
// The weighted adaptive rule accepts a server whose current total cost
// is below (cost placed so far)/n + wmax. The example sweeps weight
// distributions of equal mean and shows:
//
//   - constant weights reproduce the unweighted picture (gap ~ wmax);
//   - heavier tails roughen the distribution (the gap tracks the
//     largest single task, which no allocation rule can split);
//   - the deterministic guarantee max ≤ W/n + 2·wmax holds throughout,
//     and the allocation stays ~1 probe per task because the slack is
//     proportional to wmax.
//
// Run with:
//
//	go run ./examples/weightedtasks
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	const n = 1000
	const m = 50_000

	workloads := []struct {
		name string
		s    ballsbins.WeightSampler
		desc string
	}{
		{"const(1)", ballsbins.ConstWeights(1), "all tasks equal"},
		{"uniform[0.5,1.5]", ballsbins.UniformWeights(0.5, 1.5), "mild variation"},
		{"exp(mean 1)", ballsbins.ExpWeights(1), "memoryless service times"},
		{"pareto(1.2)", ballsbins.ParetoWeights(1.2, 0.3, 30), "heavy tail, wmax=30"},
	}

	fmt.Printf("dispatching %d weighted tasks to %d servers (weighted adaptive)\n\n", m, n)
	tb := table.New("workload", "probes/task", "avg load", "max load",
		"gap", "guarantee W/n+2wmax", "held?")
	for _, w := range workloads {
		res := ballsbins.RunWeighted(ballsbins.WeightedAdaptive(), n, m, w.s,
			ballsbins.WithSeed(17))
		bound := res.TotalWeight/float64(n) + 2*res.MaxWeight
		tb.AddRow(w.name,
			fmt.Sprintf("%.3f", res.SamplesPerBall),
			fmt.Sprintf("%.1f", res.TotalWeight/float64(n)),
			fmt.Sprintf("%.1f", res.MaxLoad),
			fmt.Sprintf("%.1f", res.Gap),
			fmt.Sprintf("%.1f", bound),
			fmt.Sprint(res.MaxLoad <= bound))
	}
	fmt.Print(tb.Render())

	fmt.Println("\ncomparison at exp(1) weights: weighted adaptive vs alternatives")
	cmp := table.New("protocol", "probes/task", "max load", "gap", "Psi/n")
	for _, spec := range []ballsbins.WeightedSpec{
		ballsbins.WeightedSingleChoice(),
		ballsbins.WeightedGreedy(2),
		ballsbins.WeightedThreshold(),
		ballsbins.WeightedAdaptive(),
	} {
		res := ballsbins.RunWeighted(spec, n, m, ballsbins.ExpWeights(1),
			ballsbins.WithSeed(17))
		cmp.AddRow(spec.Name(),
			fmt.Sprintf("%.3f", res.SamplesPerBall),
			fmt.Sprintf("%.1f", res.MaxLoad),
			fmt.Sprintf("%.1f", res.Gap),
			fmt.Sprintf("%.2f", res.Psi/float64(n)))
	}
	fmt.Print(cmp.Render())
}
