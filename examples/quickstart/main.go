// Quickstart: the smallest useful tour of the ballsbins API.
//
// It allocates one million balls into ten thousand bins with the
// paper's two headline protocols and prints the numbers the paper's
// abstract talks about: allocation time (random choices), maximum
// load, and the smoothness of the final distribution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	ballsbins "repro"
)

func main() {
	const n = 10_000
	const m = 1_000_000

	fmt.Printf("allocating m=%d balls into n=%d bins (guarantee: max load <= %d)\n\n",
		m, n, ballsbins.MaxLoadGuarantee(n, m))

	for _, spec := range []ballsbins.Spec{
		ballsbins.Adaptive(),
		ballsbins.Threshold(),
		ballsbins.Greedy(2),
	} {
		res := ballsbins.Run(spec, n, m, ballsbins.WithSeed(2013))
		fmt.Printf("%-10s  time=%8d (%.3f per ball)  max=%3d  gap=%3d  psi=%10.1f\n",
			spec.Name(), res.Samples, res.SamplesPerBall, res.MaxLoad, res.Gap, res.Psi)
	}

	fmt.Println()
	fmt.Println("What to notice (the paper's Table 1 and Figure 3 in miniature):")
	fmt.Println("  - threshold uses ~m choices; adaptive a small constant more;")
	fmt.Println("    greedy[2] always uses exactly 2m.")
	fmt.Println("  - threshold and adaptive hit the optimal-ish max load ceil(m/n)+1,")
	fmt.Println("    far below greedy[2]'s m/n + log log n drift.")
	fmt.Println("  - adaptive's quadratic potential (smoothness) is far smaller than")
	fmt.Println("    threshold's: underloaded bins catch up stage by stage.")
}
