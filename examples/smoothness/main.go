// Smoothness: how the load distribution's shape evolves during a run —
// the contrast between Corollary 3.5 (adaptive stays smooth) and
// Lemma 4.2 (threshold ends rough).
//
// Both protocols place m = n² balls into n bins and snapshot the
// quadratic potential Ψ and the max-min gap after every stage (n
// balls). The chart shows threshold's Ψ growing like a random walk's
// square (the early balls land wherever, because the acceptance bound
// m/n+1 is far away), while adaptive's Ψ stays pinned at O(n) —
// underloaded bins catch up every stage.
//
// Run with:
//
//	go run ./examples/smoothness
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	const n = 128
	const m = int64(n) * int64(n)

	collect := func(spec ballsbins.Spec) (balls, psi, gap []float64, final ballsbins.Result) {
		final = ballsbins.Run(spec, n, m,
			ballsbins.WithSeed(42),
			ballsbins.WithSnapshots(n, func(s ballsbins.Snapshot) {
				balls = append(balls, float64(s.Ball))
				psi = append(psi, s.Psi)
				gap = append(gap, float64(s.Gap))
			}))
		return balls, psi, gap, final
	}

	ballsA, psiA, gapA, resA := collect(ballsbins.Adaptive())
	ballsT, psiT, gapT, resT := collect(ballsbins.Threshold())

	var c table.Chart
	c.Title = fmt.Sprintf("Quadratic potential during the run (n=%d, m=n²=%d)", n, m)
	c.XLabel = "balls placed"
	c.YLabel = "Psi"
	c.Height = 16
	c.Add(table.Series{Name: "ADAPTIVE  (ends smooth: Corollary 3.5)", X: ballsA, Y: psiA, Marker: 'A'})
	c.Add(table.Series{Name: "THRESHOLD (ends rough:  Lemma 4.2)", X: ballsT, Y: psiT, Marker: 'T'})
	fmt.Print(c.Render())

	var g table.Chart
	g.Title = "Max-min gap during the run"
	g.XLabel = "balls placed"
	g.YLabel = "gap"
	g.Height = 12
	g.Add(table.Series{Name: "ADAPTIVE: gap = O(log n)", X: ballsA, Y: gapA, Marker: 'A'})
	g.Add(table.Series{Name: "THRESHOLD: gap = Omega(n^{1/8})", X: ballsT, Y: gapT, Marker: 'T'})
	fmt.Print(g.Render())

	fmt.Println("final state:")
	tb := table.New("protocol", "time", "time/m", "max", "gap", "Psi", "Psi/n")
	tb.AddRow("adaptive", fmt.Sprint(resA.Samples),
		fmt.Sprintf("%.3f", resA.SamplesPerBall), fmt.Sprint(resA.MaxLoad),
		fmt.Sprint(resA.Gap), fmt.Sprintf("%.0f", resA.Psi),
		fmt.Sprintf("%.2f", resA.Psi/float64(n)))
	tb.AddRow("threshold", fmt.Sprint(resT.Samples),
		fmt.Sprintf("%.3f", resT.SamplesPerBall), fmt.Sprint(resT.MaxLoad),
		fmt.Sprint(resT.Gap), fmt.Sprintf("%.0f", resT.Psi),
		fmt.Sprintf("%.2f", resT.Psi/float64(n)))
	fmt.Print(tb.Render())
}
