// Parallel rounds: allocating all balls simultaneously over
// synchronous communication rounds, after Lenzen–Wattenhofer and Adler
// et al. — the parallel line of work the paper situates itself in.
//
// Balls and bins are modeled by goroutine workers and shards
// exchanging request/offer/commit messages with barriers between
// phases. The table shows the hallmark of the LW protocol: maximum
// load 2 with round counts that are essentially CONSTANT in n
// (log* n + O(1)) and O(n) total messages.
//
// Run with:
//
//	go run ./examples/parallelrounds
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	fmt.Println("-- Lenzen-Wattenhofer style: m=n balls, bin capacity 2 --")
	lw := table.New("n", "rounds", "messages", "messages/n", "max load")
	for _, logN := range []int{10, 12, 14, 16} {
		n := 1 << logN
		res, err := ballsbins.LenzenWattenhofer(n, 1)
		if err != nil {
			panic(err)
		}
		lw.AddRow(fmt.Sprintf("2^%d", logN), fmt.Sprint(res.Rounds),
			fmt.Sprint(res.Messages),
			fmt.Sprintf("%.2f", float64(res.Messages)/float64(n)),
			fmt.Sprint(res.MaxLoad))
	}
	fmt.Print(lw.Render())

	fmt.Println("\n-- Adler-style collision protocol: d fixed choices, one grant/bin/round --")
	ad := table.New("n", "d", "rounds", "messages/n", "max load")
	for _, d := range []int{2, 3, 4} {
		n := 1 << 14
		res, err := ballsbins.AdlerCollision(n, d, 2)
		if err != nil {
			panic(err)
		}
		ad.AddRow("2^14", fmt.Sprint(d), fmt.Sprint(res.Rounds),
			fmt.Sprintf("%.2f", float64(res.Messages)/float64(n)),
			fmt.Sprint(res.MaxLoad))
	}
	fmt.Print(ad.Render())

	fmt.Println("\n-- heavily loaded parallel: m = 64n, capacity ceil(m/n)+1 --")
	hp := table.New("n", "m", "rounds", "messages/m", "max load")
	for _, logN := range []int{10, 12} {
		n := 1 << logN
		m := int64(64 * n)
		res, err := ballsbins.HeavyParallel(n, m, 3)
		if err != nil {
			panic(err)
		}
		hp.AddRow(fmt.Sprintf("2^%d", logN), fmt.Sprint(m), fmt.Sprint(res.Rounds),
			fmt.Sprintf("%.2f", float64(res.Messages)/float64(m)),
			fmt.Sprint(res.MaxLoad))
	}
	fmt.Print(hp.Render())
}
