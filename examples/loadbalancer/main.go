// Load balancer: dispatching tasks to servers when the total number of
// tasks is NOT known in advance.
//
// This is the scenario that motivates the paper's adaptive protocol: a
// dispatcher assigns incoming tasks (balls) to servers (bins) by
// probing servers for their current queue length. threshold-style
// dispatching needs to know the total task count m up front to set its
// acceptance bound; adaptive only needs a running counter of tasks
// dispatched so far, yet achieves the same near-optimal worst queue
// and uses O(1) probes per task.
//
// The example replays the same task stream against four dispatch
// policies and reports probes (messages to servers), worst queue
// length, and queue imbalance. Snapshots show adaptive keeping the
// distribution smooth while the stream keeps growing — there is no
// point at which it needed to know how many tasks were coming.
//
// Run with:
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	const servers = 500
	const tasks = 50_000

	fmt.Printf("dispatching %d tasks to %d servers (m unknown to the dispatcher)\n\n",
		tasks, servers)

	policies := []struct {
		spec     ballsbins.Spec
		needsM   string
		perProbe string
	}{
		{ballsbins.SingleChoice(), "no", "1 probe/task, no feedback"},
		{ballsbins.Greedy(2), "no", "2 probes/task"},
		{ballsbins.Threshold(), "YES (m in bound)", "resample until below m/n+1"},
		{ballsbins.Adaptive(), "no (online)", "resample until below i/n+1"},
	}

	tb := table.New("policy", "needs m?", "probes", "probes/task",
		"worst queue", "imbalance (max-min)")
	for _, p := range policies {
		res := ballsbins.Run(p.spec, servers, tasks, ballsbins.WithSeed(7))
		tb.AddRow(p.spec.Name(), p.needsM,
			fmt.Sprint(res.Samples), fmt.Sprintf("%.3f", res.SamplesPerBall),
			fmt.Sprint(res.MaxLoad), fmt.Sprint(res.Gap))
		_ = p.perProbe
	}
	fmt.Print(tb.Render())

	// Watch adaptive in flight: the max queue tracks ceil(i/n)+1 — the
	// dispatcher is always within one task of perfectly balanced, no
	// matter when the stream stops.
	fmt.Println("\nadaptive mid-stream (snapshot every 10k tasks):")
	prog := table.New("tasks so far", "worst queue", "bound ceil(i/n)+1", "imbalance")
	ballsbins.Run(ballsbins.Adaptive(), servers, tasks,
		ballsbins.WithSeed(7),
		ballsbins.WithSnapshots(10_000, func(s ballsbins.Snapshot) {
			bound := (s.Ball+servers-1)/servers + 1
			prog.AddRow(fmt.Sprint(s.Ball), fmt.Sprint(s.MaxLoad),
				fmt.Sprint(bound), fmt.Sprint(s.Gap))
		}))
	fmt.Print(prog.Render())
}
