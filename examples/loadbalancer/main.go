// Load balancer: dispatching tasks to servers when the total number of
// tasks is NOT known in advance — driven through the online Allocator
// API, the way a real dispatcher would run it.
//
// This is the scenario that motivates the paper's adaptive protocol: a
// dispatcher assigns incoming tasks (balls) to servers (bins) by
// probing servers for their current queue length. threshold-style
// dispatching needs to know the total task count m up front to set its
// acceptance bound; adaptive only needs the number of tasks currently
// in flight, yet achieves the same near-optimal worst queue and uses
// O(1) probes per task.
//
// Each policy is a long-lived ballsbins.Allocator. The dispatcher
// feeds it one task at a time (Place), reads the live queue state
// whenever it wants (Snapshot), and — in the second part — retires
// finished tasks (Remove) while new ones keep arriving. There is no
// point at which the allocator needed to know how many tasks were
// coming.
//
// Run with:
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	const servers = 500
	const tasks = 50_000

	fmt.Printf("dispatching %d tasks to %d servers (m unknown to the dispatcher)\n\n",
		tasks, servers)

	policies := []struct {
		spec   ballsbins.Spec
		needsM string
		opts   []ballsbins.Option
	}{
		{ballsbins.SingleChoice(), "no", nil},
		{ballsbins.Greedy(2), "no", nil},
		// Threshold's bound is m/n + 1: it cannot even be constructed
		// without declaring the horizon.
		{ballsbins.Threshold(), "YES (m in bound)", []ballsbins.Option{ballsbins.WithHorizon(tasks)}},
		{ballsbins.Adaptive(), "no (online)", nil},
	}

	tb := table.New("policy", "needs m?", "probes", "probes/task",
		"worst queue", "imbalance (max-min)")
	for _, p := range policies {
		opts := append([]ballsbins.Option{ballsbins.WithSeed(7)}, p.opts...)
		lb := ballsbins.New(p.spec, servers, opts...)
		for task := 0; task < tasks; task++ {
			lb.Place()
		}
		res := lb.Metrics()
		tb.AddRow(lb.Name(), p.needsM,
			fmt.Sprint(res.Samples), fmt.Sprintf("%.3f", res.SamplesPerBall),
			fmt.Sprint(res.MaxLoad), fmt.Sprint(res.Gap))
	}
	fmt.Print(tb.Render())

	// Watch adaptive in flight: the worst queue tracks ceil(i/n)+1 —
	// the dispatcher is always within one task of perfectly balanced,
	// no matter when the stream stops.
	fmt.Println("\nadaptive mid-stream (Snapshot every 10k tasks):")
	prog := table.New("tasks so far", "worst queue", "bound ceil(i/n)+1", "imbalance")
	lb := ballsbins.New(ballsbins.Adaptive(), servers, ballsbins.WithSeed(7))
	for task := 1; task <= tasks; task++ {
		lb.Place()
		if task%10_000 == 0 || task == 1 {
			s := lb.Snapshot()
			bound := (s.Ball+servers-1)/servers + 1
			prog.AddRow(fmt.Sprint(s.Ball), fmt.Sprint(s.MaxLoad),
				fmt.Sprint(bound), fmt.Sprint(s.Gap))
		}
	}
	fmt.Print(prog.Render())

	// Live traffic: tasks also FINISH. Keep ~4 tasks/server in flight
	// with a FIFO of live tasks; the adaptive rule reads the live
	// count, so the worst queue stays pinned near the running average
	// through 100k arrivals and 98k completions.
	fmt.Println("\nadaptive under churn (arrivals + completions, ~4 tasks/server live):")
	churn := table.New("arrived", "live", "worst queue", "imbalance", "probes/task")
	live := make([]int, 0, 8*servers)
	lb = ballsbins.New(ballsbins.Adaptive(), servers, ballsbins.WithSeed(11))
	const arrivals = 100_000
	for task := 1; task <= arrivals; task++ {
		bin, _ := lb.Place()
		live = append(live, bin)
		if len(live) > 4*servers { // oldest task completes
			lb.Remove(live[0])
			live = live[1:]
		}
		if task%20_000 == 0 {
			churn.AddRow(fmt.Sprint(task), fmt.Sprint(lb.Balls()),
				fmt.Sprint(lb.MaxLoad()), fmt.Sprint(lb.Gap()),
				fmt.Sprintf("%.3f", float64(lb.Samples())/float64(lb.Placed())))
		}
	}
	fmt.Print(churn.Render())
}
