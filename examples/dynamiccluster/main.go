// Dynamic cluster: tasks arrive AND depart — live traffic, not batch
// replay. The cluster is a long-lived ballsbins.Allocator: every
// arrival is a Place, every completed task a Remove, and the load
// statistics are read off the allocator between steps.
//
// The example holds 512 servers at a steady state of ~6 tasks per
// server and compares three arrival policies under identical churn:
//
//   - single-choice arrivals (the baseline);
//   - greedy[2] arrivals (power of two choices);
//   - adaptive-rule arrivals (this paper's approach: the acceptance
//     bound reads the LIVE task count, so departures lower it and the
//     distribution stays smooth around the current average).
//
// No task ever migrates: the smoothness is bought entirely at arrival
// time, for ~1–2 probes per task. The classical alternative — move
// tasks after the fact — is quantified by RunDynamic's pairwise
// balancing mode (see internal/dynamic, which drives the same
// allocation core).
//
// Run with:
//
//	go run ./examples/dynamiccluster
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/rng"
	"repro/internal/table"
)

func main() {
	const (
		servers  = 512
		steps    = 600
		warmup   = steps / 4
		arrivals = 2.0  // mean arrivals per server per step
		departP  = 0.25 // per-task departure probability per step
	)

	type scenario struct {
		name string
		spec ballsbins.Spec
	}
	scenarios := []scenario{
		{"single-choice arrivals", ballsbins.SingleChoice()},
		{"greedy[2] arrivals", ballsbins.Greedy(2)},
		{"adaptive arrivals", ballsbins.Adaptive()},
	}

	fmt.Printf("cluster of %d servers, steady state ~%.0f tasks/server, %d steps\n\n",
		servers, arrivals*(1-departP)/departP, steps)

	tb := table.New("strategy", "avg gap", "worst gap", "Psi/n",
		"probes/arrival", "moved tasks")
	for _, sc := range scenarios {
		// The churn schedule (arrival counts, departure choices) comes
		// from its own stream, so every policy faces the same traffic.
		traffic := rng.New(42)
		cluster := ballsbins.New(sc.spec, servers, ballsbins.WithSeed(7))
		live := make([]int, 0, 4*servers*8)

		var meanGap, meanPsi float64
		maxGap, samplesTaken := 0, 0
		for step := 0; step < steps; step++ {
			// Arrivals: each Place probes servers and queues the task.
			n := traffic.Poisson(arrivals * servers)
			for a := int64(0); a < n; a++ {
				bin, _ := cluster.Place()
				live = append(live, bin)
			}
			// Departures: every live task finishes independently with
			// probability departP; finished tasks leave their server.
			keep := live[:0]
			for _, bin := range live {
				if traffic.Bernoulli(departP) {
					cluster.Remove(bin)
				} else {
					keep = append(keep, bin)
				}
			}
			live = keep

			if step >= warmup {
				samplesTaken++
				gap := cluster.Gap()
				meanGap += float64(gap)
				if gap > maxGap {
					maxGap = gap
				}
				meanPsi += cluster.Psi()
			}
		}
		meanGap /= float64(samplesTaken)
		meanPsi /= float64(samplesTaken)
		tb.AddRow(sc.name,
			fmt.Sprintf("%.2f", meanGap),
			fmt.Sprint(maxGap),
			fmt.Sprintf("%.2f", meanPsi/float64(servers)),
			fmt.Sprintf("%.3f", float64(cluster.Samples())/float64(cluster.Placed())),
			"0")
	}
	fmt.Print(tb.Render())

	fmt.Println("\nfor the move-tasks-after-the-fact baseline (pairwise migration), see:")
	fmt.Println("  RunDynamic(DynamicConfig{..., BalanceProb: 0.5})  — same allocation core, plus migrations")
}
