// Dynamic cluster: tasks arrive AND depart — the fully dynamic regime
// the paper's related work ([13] Lüling–Monien, and the reallocation
// schemes [3]) addresses with task migration.
//
// The example holds a cluster of 512 servers at a steady state of ~6
// tasks per server and compares four strategies:
//
//   - single-choice arrivals, no migration (the baseline);
//   - greedy[2] arrivals, no migration (power of two choices);
//   - adaptive-rule arrivals, no migration (this paper's approach:
//     spend a couple of probes at arrival time, never move a task);
//   - single-choice arrivals plus pairwise migration (the classical
//     dynamic load balancing answer: move tasks after the fact).
//
// The table shows the trade the paper's protocols make: smart arrivals
// buy most of the smoothness that migration buys, with zero moved
// tasks and ~1–2 probes per arrival.
//
// Run with:
//
//	go run ./examples/dynamiccluster
package main

import (
	"fmt"

	ballsbins "repro"
	"repro/internal/table"
)

func main() {
	base := ballsbins.DynamicConfig{
		N:             512,
		Steps:         600,
		ArrivalRate:   2,
		DepartureProb: 0.25,
		Seed:          7,
	}

	type scenario struct {
		name string
		cfg  ballsbins.DynamicConfig
	}
	mk := func(name string, edit func(*ballsbins.DynamicConfig)) scenario {
		cfg := base
		edit(&cfg)
		return scenario{name, cfg}
	}
	scenarios := []scenario{
		mk("single, no migration", func(c *ballsbins.DynamicConfig) {
			c.Arrival = ballsbins.ArriveSingle
		}),
		mk("greedy2, no migration", func(c *ballsbins.DynamicConfig) {
			c.Arrival = ballsbins.ArriveGreedy2
		}),
		mk("adaptive, no migration", func(c *ballsbins.DynamicConfig) {
			c.Arrival = ballsbins.ArriveAdaptive
		}),
		mk("single + migration", func(c *ballsbins.DynamicConfig) {
			c.Arrival = ballsbins.ArriveSingle
			c.BalanceProb = 0.5
		}),
	}

	fmt.Printf("cluster of %d servers, steady state ~%.0f tasks/server, %d steps\n\n",
		base.N, base.ArrivalRate*(1-base.DepartureProb)/base.DepartureProb, base.Steps)
	tb := table.New("strategy", "avg gap", "worst gap", "Psi/n",
		"probes/arrival", "migrated tasks")
	for _, s := range scenarios {
		res := ballsbins.RunDynamic(s.cfg)
		tb.AddRow(s.name,
			fmt.Sprintf("%.2f", res.MeanGap),
			fmt.Sprint(res.MaxGap),
			fmt.Sprintf("%.2f", res.MeanPsi/float64(s.cfg.N)),
			fmt.Sprintf("%.3f", float64(res.ArrivalSamples)/float64(res.Arrivals)),
			fmt.Sprint(res.Migrations))
	}
	fmt.Print(tb.Render())
}
