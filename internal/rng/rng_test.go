package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: %x != %x", i, av, bv)
		}
	}
}

func TestSplitMix64SeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times in 1000 draws", same)
	}
}

func TestSplitMix64SeedReset(t *testing.T) {
	s := NewSplitMix64(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d: got %x want %x", i, got, first[i])
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at step %d", i)
		}
	}
}

func TestXoshiroJumpDisjoint(t *testing.T) {
	// After a jump, the stream must not overlap the pre-jump prefix.
	a := NewXoshiro256(5)
	prefix := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		prefix[a.Uint64()] = true
	}
	b := NewXoshiro256(5)
	b.Jump()
	hits := 0
	for i := 0; i < 4096; i++ {
		if prefix[b.Uint64()] {
			hits++
		}
	}
	// Random 64-bit collisions among 2*4096 values are essentially
	// impossible; any hit indicates stream overlap.
	if hits != 0 {
		t.Fatalf("jumped stream overlapped prefix %d times", hits)
	}
}

func TestXoshiroJumpCommutesWithSteps(t *testing.T) {
	// jump then n steps == n steps then jump must NOT be equal in
	// general, but jump must be a pure function of state: two identical
	// generators jumped once must agree forever.
	a := NewXoshiro256(123)
	b := NewXoshiro256(123)
	a.Jump()
	b.Jump()
	for i := 0; i < 256; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("jumped twins diverged at %d", i)
		}
	}
}

func TestPCG32Deterministic(t *testing.T) {
	a := NewPCG32(2024, 54)
	b := NewPCG32(2024, 54)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at step %d", i)
		}
	}
}

func TestPCG32StreamsDiffer(t *testing.T) {
	a := NewPCG32(7, 1)
	b := NewPCG32(7, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 matched %d of 1000 draws", same)
	}
}

func TestPCG32Advance(t *testing.T) {
	a := NewPCG32(11, 3)
	b := NewPCG32(11, 3)
	const skip = 1000
	for i := 0; i < skip; i++ {
		a.next32()
	}
	b.Advance(skip)
	for i := 0; i < 64; i++ {
		if a.next32() != b.next32() {
			t.Fatalf("Advance(%d) disagrees with stepping at offset %d", skip, i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(1)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 20, (1 << 63) + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square goodness of fit over 16 buckets. With 160000 samples
	// and 15 degrees of freedom, chi2 > 60 has probability ~3e-7.
	r := New(77)
	const buckets = 16
	const samples = 160000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 60 {
		t.Fatalf("chi-square %.2f too large; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean %.4f deviates from 0.5", mean)
	}
}

func TestStreamIndependence(t *testing.T) {
	base := New(999)
	s1 := base.Stream(1)
	s2 := base.Stream(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 1 and 2 matched %d times", same)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := New(5).Stream(9)
	b := New(5).Stream(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed,stream) diverged at %d", i)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformSmall(t *testing.T) {
	// All 6 permutations of 3 elements should appear with roughly equal
	// frequency.
	r := New(8)
	counts := map[[3]int]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	for perm, c := range counts {
		if c < trials/6-800 || c > trials/6+800 {
			t.Fatalf("permutation %v frequency %d deviates from %d", perm, c, trials/6)
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	// Shuffle must preserve the multiset of elements.
	f := func(seed uint64, raw []byte) bool {
		r := New(seed)
		vals := make([]int, len(raw))
		for i, b := range raw {
			vals[i] = int(b)
		}
		orig := map[int]int{}
		for _, v := range vals {
			orig[v]++
		}
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		got := map[int]int{}
		for _, v := range vals {
			got[v]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(10)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(11)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		freq := float64(hits) / n
		if math.Abs(freq-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) frequency %.4f", p, freq)
		}
	}
}

func TestGeneratorFamiliesDisagree(t *testing.T) {
	// Same seed, different algorithms: the streams must be unrelated.
	x := NewXoshiro256(42)
	p := NewPCG32(42, 0)
	s := NewSplitMix64(42)
	same := 0
	for i := 0; i < 1000; i++ {
		a, b, c := x.Uint64(), p.Uint64(), s.Uint64()
		if a == b || b == c || a == c {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct generator families collided %d times", same)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkPCG32Uint64(b *testing.B) {
	r := NewPCG32(1, 0)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64n(10007)
	}
	_ = sink
}
