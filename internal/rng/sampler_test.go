package rng

import (
	"math"
	"testing"
)

// meanVar computes the sample mean and variance of draws.
func meanVar(draws []float64) (mean, variance float64) {
	for _, d := range draws {
		mean += d
	}
	mean /= float64(len(draws))
	for _, d := range draws {
		variance += (d - mean) * (d - mean)
	}
	variance /= float64(len(draws) - 1)
	return mean, variance
}

func TestPoissonMoments(t *testing.T) {
	r := New(21)
	for _, lambda := range []float64{0.5, 1, 199.0 / 198.0, 5, 30, 100, 250} {
		const n = 50000
		draws := make([]float64, n)
		for i := range draws {
			draws[i] = float64(r.Poisson(lambda))
		}
		mean, variance := meanVar(draws)
		// Mean and variance of Poisson(lambda) are both lambda.
		tol := 5 * math.Sqrt(lambda/float64(n)) * 3 // ~5 sigma on the mean
		if math.Abs(mean-lambda) > math.Max(tol, 0.05) {
			t.Errorf("lambda=%v: mean %.4f", lambda, mean)
		}
		if math.Abs(variance-lambda) > math.Max(0.15*lambda, 0.1) {
			t.Errorf("lambda=%v: variance %.4f", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(22)
	for i := 0; i < 100; i++ {
		if v := r.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d", v)
		}
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestPoissonSplitConsistency(t *testing.T) {
	// The recursive split used for lambda > 30 must produce the same
	// distribution as the direct method. Compare P(X <= k) empirically
	// for lambda=40 against the normal approximation to within generous
	// slack.
	r := New(23)
	const lambda = 40.0
	const n = 40000
	below := 0
	for i := 0; i < n; i++ {
		if float64(r.Poisson(lambda)) <= lambda {
			below++
		}
	}
	// P(Poi(40) <= 40) ~ 0.54 (slightly above 1/2 due to discreteness).
	frac := float64(below) / n
	if frac < 0.49 || frac > 0.60 {
		t.Fatalf("P(Poi(40)<=40) estimated at %.3f", frac)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(24)
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.5}, {100, 0.1}, {100, 0.9}, {1000, 0.01}, {5000, 0.5}, {7, 1.0 / 7.0},
	}
	for _, c := range cases {
		const reps = 30000
		draws := make([]float64, reps)
		for i := range draws {
			draws[i] = float64(r.Binomial(c.n, c.p))
		}
		mean, variance := meanVar(draws)
		wantMean := float64(c.n) * c.p
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(mean-wantMean) > math.Max(0.05*wantMean, 0.1) {
			t.Errorf("Bin(%d,%v): mean %.3f want %.3f", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > math.Max(0.15*wantVar, 0.2) {
			t.Errorf("Bin(%d,%v): var %.3f want %.3f", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(25)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Bin(0,1/2) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Fatalf("Bin(10,0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Fatalf("Bin(10,1) = %d", v)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Binomial(5, 0.3); v < 0 || v > 5 {
			t.Fatalf("Bin(5,0.3) = %d out of support", v)
		}
	}
}

func TestBinomialPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative n": func() { New(1).Binomial(-1, 0.5) },
		"p too big":  func() { New(1).Binomial(1, 1.5) },
		"p negative": func() { New(1).Binomial(1, -0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGeometricMoments(t *testing.T) {
	r := New(26)
	for _, p := range []float64{0.05, 0.2, 0.5, 0.9, 1.0} {
		const n = 50000
		sum := 0.0
		minv := int64(math.MaxInt64)
		for i := 0; i < n; i++ {
			g := r.Geometric(p)
			if g < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", p, g)
			}
			if g < minv {
				minv = g
			}
			sum += float64(g)
		}
		mean := sum / n
		want := 1 / p
		if math.Abs(mean-want) > 0.05*want+0.01 {
			t.Errorf("Geometric(%v): mean %.3f want %.3f", p, mean, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(27)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 1 {
			t.Fatalf("Geometric(1) = %d", v)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(28)
	for _, rate := range []float64{0.5, 1, 4} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Exponential(rate)
			if v < 0 {
				t.Fatalf("Exponential(%v) = %v < 0", rate, v)
			}
			sum += v
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want) > 0.03*want {
			t.Errorf("Exponential(%v): mean %.4f want %.4f", rate, mean, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(29)
	const n = 200000
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = r.Normal()
	}
	mean, variance := meanVar(draws)
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean %.4f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance %.4f", variance)
	}
}

func TestNormalMeanStd(t *testing.T) {
	r := New(30)
	const n = 100000
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = r.NormalMeanStd(10, 3)
	}
	mean, variance := meanVar(draws)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean %.3f want 10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Errorf("std %.3f want 3", math.Sqrt(variance))
	}
}

func TestNormalMeanStdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NormalMeanStd with std<0 did not panic")
		}
	}()
	New(1).NormalMeanStd(0, -1)
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(1.005)
	}
	_ = sink
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(100000, 0.0001)
	}
	_ = sink
}
