package rng_test

import (
	"testing"

	"repro/internal/rng"
)

// Uint64nXoshiro implements the same Lemire multiply-shift rejection
// as Uint64nFrom, so two identically-seeded generators must produce
// the identical output sequence through either entry point — including
// across the rare lo < n finish branch, which small n values of the
// form 2^k+delta exercise directly at word size 64 only with
// astronomically small probability, so the bulk of the guarantee comes
// from the algorithm equivalence over many draws and moduli.
func TestUint64nXoshiroMatchesUint64nFrom(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 6, 7, 1000, 1 << 31, (1 << 62) + 12345, 1<<64 - 59} {
		a := rng.NewXoshiro256(42)
		b := rng.NewXoshiro256(42)
		for i := 0; i < 5000; i++ {
			got := rng.Uint64nXoshiro(a, n)
			want := rng.Uint64nFrom(b, n)
			if got != want {
				t.Fatalf("n=%d draw %d: Uint64nXoshiro %d != Uint64nFrom %d", n, i, got, want)
			}
		}
	}
}

func TestUint64nXoshiroFinishExactThreshold(t *testing.T) {
	// The finish rule must accept a pending draw with lo in
	// [thresh, n) rather than discarding it: feed it a synthetic
	// pending pair and check the accepted hi comes straight back.
	x := rng.NewXoshiro256(7)
	n := uint64(6)
	thresh := -n % n // 4 for n=6 at 64-bit
	if got := rng.Uint64nXoshiroFinish(x, n, 3, thresh); got != 3 {
		t.Fatalf("pending (hi=3, lo=thresh) rejected: got %d", got)
	}
	// lo below the threshold must redraw (any in-range result is
	// acceptable; it just must not return the rejected hi blindly —
	// exercised by the value being in range).
	if got := rng.Uint64nXoshiroFinish(x, n, 99, thresh-1); got >= n {
		t.Fatalf("redraw returned out-of-range %d", got)
	}
}

func TestUint64nXoshiroPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64nXoshiro(x, 0) did not panic")
		}
	}()
	rng.Uint64nXoshiro(rng.NewXoshiro256(1), 0)
}
