// Package rng provides deterministic, splittable pseudo-random number
// generation for the balls-into-bins simulation engine.
//
// The package offers three generator families (SplitMix64, Xoshiro256
// and PCG32), bias-free bounded integers (Lemire's multiply-shift
// rejection), and exact samplers for the distributions the paper's
// analysis uses (Poisson, Binomial, Geometric, Exponential, Normal).
//
// Reproducibility is a first-class concern: a master seed can be split
// into arbitrarily many statistically independent streams via
// Rand.Stream, so every replicate of an experiment and every shard of
// the parallel engine draws from its own deterministic sequence. Two
// runs with the same seed produce identical results regardless of
// scheduling.
//
// Rand is NOT safe for concurrent use; give each goroutine its own
// stream.
package rng

import "math/bits"

// Source is the minimal interface a raw generator must implement.
// All generators in this package produce full-width 64-bit outputs.
type Source interface {
	// Uint64 returns the next 64 bits of the stream.
	Uint64() uint64
}

// goldenGamma is the 64-bit golden ratio increment used by SplitMix64
// and for deriving independent stream seeds.
const goldenGamma = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output function (Stafford's MurmurHash3
// variant 13). It is used both by SplitMix64 and to derive seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SplitMix64 is Steele, Lea and Flood's SplitMix64 generator. It has a
// tiny state, passes BigCrush, and is primarily used here to seed the
// larger-state generators and derive substreams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next output of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += goldenGamma
	return mix64(s.state)
}

// Seed resets the generator to the given seed.
func (s *SplitMix64) Seed(seed uint64) { s.state = seed }

// Rand wraps a Source with convenience methods for bounded integers,
// floats, permutations and distribution sampling. The zero value is not
// usable; construct with New or NewWith.
type Rand struct {
	src  Source
	seed uint64 // seed this Rand was derived from, for Stream splitting

	// cached spare normal variate from the polar method
	haveSpare bool
	spare     float64
}

// New returns a Rand backed by a Xoshiro256 generator seeded,
// via SplitMix64, from seed. This is the recommended general-purpose
// constructor.
func New(seed uint64) *Rand {
	return &Rand{src: NewXoshiro256(seed), seed: seed}
}

// NewWith returns a Rand backed by the given source. Stream splitting
// uses seed as the base, so distinct (seed, stream index) pairs yield
// independent sequences.
func NewWith(src Source, seed uint64) *Rand {
	return &Rand{src: src, seed: seed}
}

// Seed reports the seed this Rand was constructed from.
func (r *Rand) Seed() uint64 { return r.seed }

// Source returns the backing generator. Engine hot loops use it to
// devirtualize known generator families (see Uint64nXoshiro); the
// returned Source shares state with r, so interleaving draws through
// both views is well-defined and deterministic.
func (r *Rand) Source() Source { return r.src }

// Stream returns a new Rand whose sequence is statistically independent
// of r's and of every other stream index. It is deterministic: the same
// (seed, i) always yields the same stream. The returned Rand uses the
// same generator family as New.
func (r *Rand) Stream(i uint64) *Rand {
	return New(StreamSeed(r.seed, i))
}

// StreamSeed returns the seed that Stream(i) of a Rand constructed
// from master derives, without building any generator state. It lets
// callers that only need the derived seed (for example the replicate
// fan-out in internal/sim) skip the intermediate allocation.
func StreamSeed(master, i uint64) uint64 {
	return mix64(master + goldenGamma*(i+1))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.src.Uint64() >> 32) }

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// The implementation is Lemire's multiply-shift with rejection, which
// is bias-free and needs no divisions on the fast path.
func (r *Rand) Uint64n(n uint64) uint64 {
	return Uint64nFrom(r.src, n)
}

// Uint64nFrom draws a bias-free uniform value in [0, n) directly from
// src using Lemire's multiply-shift with rejection. It panics if
// n == 0. This is the building block for callers that manage raw
// sources themselves (for example, the parallel engine's per-ball
// derived streams).
func Uint64nFrom(src Source, n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		thresh := -n % n // == (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// Uint64nXoshiro draws a bias-free uniform value in [0, n) directly
// from a concrete Xoshiro256 — exactly Lemire's multiply-shift with
// rejection, the same algorithm and distribution as Uint64nFrom, with
// the generator call devirtualized so the common path inlines into
// tight simulation loops. It panics if n == 0.
func Uint64nXoshiro(x *Xoshiro256, n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64nXoshiro with n == 0")
	}
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		return Uint64nXoshiroFinish(x, n, hi, lo)
	}
	return hi
}

// Uint64nXoshiroFinish completes a Lemire attempt whose low word fell
// below n: the pending (hi, lo) is accepted iff lo clears the exact
// threshold (2⁶⁴−n) mod n, otherwise fresh draws are taken until one
// does — identical to Uint64nFrom's rejection rule, so the output is
// exactly uniform. (A draw with lo < n must NOT be unconditionally
// discarded: every hi bucket contains exactly one such value, so
// over-rejecting would reproduce plain multiply-shift bias.) It is
// exported for hot loops that inline the fast attempt themselves and
// only call out on this rare branch.
func Uint64nXoshiroFinish(x *Xoshiro256, n, hi, lo uint64) uint64 {
	thresh := -n % n
	for lo < thresh {
		hi, lo = bits.Mul64(x.Uint64(), n)
	}
	return hi
}

// Mix deterministically combines the given words into a single
// well-mixed 64-bit value (SplitMix64 finalizer over a running golden
// ratio accumulation). It is used to derive independent substream
// seeds from structured coordinates such as (seed, round, ball).
func Mix(vals ...uint64) uint64 {
	acc := uint64(goldenGamma)
	for _, v := range vals {
		acc = mix64(acc + v*goldenGamma)
	}
	return acc
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.src.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.src.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. Values p <= 0 never
// return true; p >= 1 always does.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap
// function, following the Fisher–Yates algorithm.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
