package rng_test

// Cross-family statistical validation: the three generator families
// (xoshiro256**, PCG32, SplitMix64) must all pass the same
// goodness-of-fit tests, and the exact samplers must match their
// target pmfs under a chi-square test. Using dist's chi-square
// machinery keeps these checks quantitative (explicit p-value floors)
// rather than ad hoc tolerances.

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

func sources() map[string]func(seed uint64) rng.Source {
	return map[string]func(seed uint64) rng.Source{
		"xoshiro":  func(s uint64) rng.Source { return rng.NewXoshiro256(s) },
		"pcg":      func(s uint64) rng.Source { return rng.NewPCG32(s, 54) },
		"splitmix": func(s uint64) rng.Source { return rng.NewSplitMix64(s) },
	}
}

func TestAllFamiliesUniformChiSquare(t *testing.T) {
	// 64 buckets, 64k draws, per family. Reject only below p = 1e-6 so
	// the test is robust yet still catches real bias (a broken
	// generator produces p ~ 0 immediately).
	const buckets = 64
	const draws = 1 << 16
	for name, mk := range sources() {
		t.Run(name, func(t *testing.T) {
			r := rng.NewWith(mk(12345), 12345)
			counts := make([]int64, buckets)
			for i := 0; i < draws; i++ {
				counts[r.Uint64n(buckets)]++
			}
			stat, p := dist.UniformChiSquare(counts)
			if p < 1e-6 {
				t.Fatalf("%s: chi2=%.1f p=%g — biased bounded sampling", name, stat, p)
			}
		})
	}
}

func TestFamiliesAgreeOnPoissonSampler(t *testing.T) {
	// The exact Poisson sampler must fit the analytic pmf regardless
	// of the backing generator.
	const lambda = 199.0 / 198.0 // the constant from Lemma 3.2
	const draws = 40000
	maxK := 9
	probs := make([]float64, maxK+2)
	for k := 0; k <= maxK; k++ {
		probs[k] = dist.PoissonPMF(lambda, k)
	}
	probs[maxK+1] = dist.PoissonTailGE(lambda, maxK+1)
	for name, mk := range sources() {
		t.Run(name, func(t *testing.T) {
			r := rng.NewWith(mk(777), 777)
			counts := make([]int64, maxK+2)
			for i := 0; i < draws; i++ {
				k := r.Poisson(lambda)
				if int(k) > maxK {
					counts[maxK+1]++
				} else {
					counts[k]++
				}
			}
			stat, p := dist.GoodnessOfFit(counts, probs)
			if p < 1e-6 {
				t.Fatalf("%s: Poisson GOF chi2=%.1f p=%g", name, stat, p)
			}
		})
	}
}

func TestBinomialSamplerMatchesPMF(t *testing.T) {
	const n, prob = 40, 0.3
	const draws = 40000
	probs := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		probs[k] = dist.BinomialPMF(n, prob, k)
	}
	r := rng.New(31)
	counts := make([]int64, n+1)
	for i := 0; i < draws; i++ {
		counts[r.Binomial(n, prob)]++
	}
	// Merge sparse tail buckets (expected < 5) into their neighbors to
	// keep the chi-square approximation valid.
	type bucket struct {
		c int64
		p float64
	}
	var merged []bucket
	var accC int64
	var accP float64
	for k := 0; k <= n; k++ {
		accC += counts[k]
		accP += probs[k]
		if accP*draws >= 5 {
			merged = append(merged, bucket{accC, accP})
			accC, accP = 0, 0
		}
	}
	if accP > 0 {
		merged[len(merged)-1].c += accC
		merged[len(merged)-1].p += accP
	}
	obs := make([]int64, len(merged))
	ps := make([]float64, len(merged))
	var total float64
	for i, b := range merged {
		obs[i], ps[i] = b.c, b.p
		total += b.p
	}
	for i := range ps {
		ps[i] /= total // renormalize truncation remainder
	}
	stat, p := dist.GoodnessOfFit(obs, ps)
	if p < 1e-6 {
		t.Fatalf("Binomial GOF chi2=%.1f p=%g", stat, p)
	}
}

func TestGeometricSamplerMatchesPMF(t *testing.T) {
	const prob = 0.35
	const draws = 40000
	maxK := 20
	probs := make([]float64, maxK+1)
	q := 1.0
	for k := 1; k <= maxK; k++ {
		probs[k-1] = q * prob
		q *= 1 - prob
	}
	probs[maxK] = q // tail bucket
	r := rng.New(32)
	counts := make([]int64, maxK+1)
	for i := 0; i < draws; i++ {
		k := r.Geometric(prob)
		if int(k) > maxK {
			counts[maxK]++
		} else {
			counts[k-1]++
		}
	}
	stat, p := dist.GoodnessOfFit(counts, probs)
	if p < 1e-6 {
		t.Fatalf("Geometric GOF chi2=%.1f p=%g", stat, p)
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	r := rng.New(33)
	const alpha, lo, hi = 1.5, 2.0, 50.0
	for i := 0; i < 50000; i++ {
		v := r.BoundedPareto(alpha, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("sample %v outside [%v,%v]", v, lo, hi)
		}
	}
}

func TestBoundedParetoCDFMatches(t *testing.T) {
	// Empirical CDF at a few points vs the truncated analytic CDF.
	r := rng.New(34)
	const alpha, lo, hi = 2.0, 1.0, 16.0
	const draws = 100000
	cdf := func(x float64) float64 {
		fx := 1 - math.Pow(lo/x, alpha)
		fh := 1 - math.Pow(lo/hi, alpha)
		return fx / fh
	}
	samples := make([]float64, draws)
	for i := range samples {
		samples[i] = r.BoundedPareto(alpha, lo, hi)
	}
	for _, x := range []float64{1.5, 2, 4, 8} {
		below := 0
		for _, s := range samples {
			if s <= x {
				below++
			}
		}
		emp := float64(below) / draws
		want := cdf(x)
		if diff := emp - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("CDF(%v): empirical %.4f analytic %.4f", x, emp, want)
		}
	}
}

func TestParetoPanics(t *testing.T) {
	r := rng.New(1)
	for name, f := range map[string]func(){
		"pareto alpha<=0":  func() { r.Pareto(0, 1) },
		"pareto xm<=0":     func() { r.Pareto(1, 0) },
		"bounded alpha<=0": func() { r.BoundedPareto(0, 1, 2) },
		"bounded hi<=lo":   func() { r.BoundedPareto(1, 2, 2) },
		"bounded lo<=0":    func() { r.BoundedPareto(1, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestParetoSupport(t *testing.T) {
	r := rng.New(35)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 3); v < 3 {
			t.Fatalf("Pareto sample %v below scale", v)
		}
	}
}
