package rng

import "math/bits"

// PCG32 implements O'Neill's PCG-XSH-RR 64/32 generator: 64 bits of
// LCG state with a permuted 32-bit output. It is included as an
// alternative generator family for cross-checking results; experiments
// run with two unrelated generators and agreeing statistics are strong
// evidence against generator artifacts.
type PCG32 struct {
	state uint64
	inc   uint64 // must be odd
}

const pcgMultiplier = 6364136223846793005

// NewPCG32 returns a PCG32 initialized from seed and the given stream
// selector. Distinct stream values yield independent sequences.
func NewPCG32(seed, stream uint64) *PCG32 {
	p := &PCG32{inc: (stream << 1) | 1}
	p.state = 0
	p.next32()
	p.state += seed
	p.next32()
	return p
}

// next32 returns the next 32-bit output.
func (p *PCG32) next32() uint32 {
	old := p.state
	p.state = old*pcgMultiplier + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := int(old >> 59)
	return bits.RotateLeft32(xorshifted, -rot)
}

// Uint64 returns the next 64 bits, assembled from two 32-bit outputs,
// so PCG32 satisfies Source.
func (p *PCG32) Uint64() uint64 {
	hi := uint64(p.next32())
	lo := uint64(p.next32())
	return hi<<32 | lo
}

// Advance skips the generator delta steps forward in O(log delta) time
// using LCG fast-forwarding.
func (p *PCG32) Advance(delta uint64) {
	curMult := uint64(pcgMultiplier)
	curPlus := p.inc
	accMult := uint64(1)
	accPlus := uint64(0)
	for delta > 0 {
		if delta&1 != 0 {
			accMult *= curMult
			accPlus = accPlus*curMult + curPlus
		}
		curPlus = (curMult + 1) * curPlus
		curMult *= curMult
		delta >>= 1
	}
	p.state = accMult*p.state + accPlus
}
