package rng

import "math"

// Poisson returns a sample from the Poisson distribution with mean
// lambda. It panics if lambda < 0; Poisson(0) is 0.
//
// For small lambda the sampler uses Knuth's product-of-uniforms method,
// which is exact. For large lambda it splits lambda in halves and sums
// two independent Poisson samples (Poi(a)+Poi(b) ~ Poi(a+b)), keeping
// the method exact at every scale, at O(lambda) expected cost. The
// experiments in this repository only need lambda up to a few hundred,
// where this is plenty fast.
func (r *Rand) Poisson(lambda float64) int64 {
	switch {
	case lambda < 0 || math.IsNaN(lambda):
		panic("rng: Poisson with lambda < 0")
	case lambda == 0:
		return 0
	case lambda <= 30:
		return r.poissonKnuth(lambda)
	default:
		half := lambda / 2
		return r.Poisson(half) + r.Poisson(lambda-half)
	}
}

// poissonKnuth is exact for moderate lambda: count uniforms whose
// running product stays above e^-lambda.
func (r *Rand) poissonKnuth(lambda float64) int64 {
	limit := math.Exp(-lambda)
	var k int64
	prod := r.Float64()
	for prod > limit {
		k++
		prod *= r.Float64()
	}
	return k
}

// Binomial returns a sample from Binomial(n, p): the number of
// successes in n independent trials with success probability p.
// It panics if n < 0 or p is outside [0, 1].
//
// The sampler uses geometric gap-skipping (O(np+1) expected time),
// exploiting symmetry for p > 1/2, and is exact for every (n, p).
func (r *Rand) Binomial(n int64, p float64) int64 {
	switch {
	case n < 0:
		panic("rng: Binomial with n < 0")
	case p < 0 || p > 1 || math.IsNaN(p):
		panic("rng: Binomial with p outside [0,1]")
	case n == 0 || p == 0:
		return 0
	case p == 1:
		return n
	case p > 0.5:
		return n - r.Binomial(n, 1-p)
	}
	// Skip over failures geometrically: the gap to the next success is
	// Geometric(p) distributed.
	logQ := math.Log1p(-p)
	var successes, trial int64
	for {
		// gap >= 1 is the index (1-based) of the next success among the
		// remaining trials.
		gap := int64(math.Ceil(math.Log1p(-r.Float64()) / logQ))
		if gap < 1 {
			gap = 1 // guards the measure-zero u==0 edge after rounding
		}
		trial += gap
		if trial > n {
			return successes
		}
		successes++
	}
}

// Geometric returns the number of Bernoulli(p) trials up to and
// including the first success. Support {1, 2, ...}, mean 1/p.
// It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int64 {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic("rng: Geometric with p outside (0,1]")
	}
	if p == 1 {
		return 1
	}
	k := int64(math.Ceil(math.Log1p(-r.Float64()) / math.Log1p(-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Exponential returns a sample from the exponential distribution with
// the given rate (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 || math.IsNaN(rate) {
		panic("rng: Exponential with rate <= 0")
	}
	return -math.Log1p(-r.Float64()) / rate
}

// Normal returns a sample from the standard normal distribution using
// the Marsaglia polar method with a cached spare variate.
func (r *Rand) Normal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// NormalMeanStd returns a normal sample with the given mean and
// standard deviation. It panics if std < 0.
func (r *Rand) NormalMeanStd(mean, std float64) float64 {
	if std < 0 {
		panic("rng: NormalMeanStd with std < 0")
	}
	return mean + std*r.Normal()
}

// Pareto returns a sample from the Pareto distribution with shape
// alpha and scale xm (support [xm, ∞), by inversion). It panics unless
// alpha > 0 and xm > 0.
func (r *Rand) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 || math.IsNaN(alpha) || math.IsNaN(xm) {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm * math.Pow(1-r.Float64(), -1/alpha)
}

// BoundedPareto returns a sample from the Pareto(alpha, lo)
// distribution truncated to [lo, hi], via exact inversion of the
// truncated CDF (no rejection, no clamping bias). It panics unless
// alpha > 0 and 0 < lo < hi.
func (r *Rand) BoundedPareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo ||
		math.IsNaN(alpha) || math.IsNaN(lo) || math.IsNaN(hi) {
		panic("rng: BoundedPareto with invalid parameters")
	}
	// F(hi) = 1 - (lo/hi)^alpha; invert u' = u * F(hi).
	fHi := 1 - math.Pow(lo/hi, alpha)
	u := r.Float64() * fHi
	return lo * math.Pow(1-u, -1/alpha)
}
