// Package wal is a write-ahead log with compacting snapshots — the
// durability layer under the keyed placement tier (internal/keyed).
//
// # Format
//
// A log directory holds numbered segment files and at most a handful
// of snapshot files (normally one):
//
//	wal-<firstseq>.log    append-only record segments
//	snap-<seq>.snap       full-state snapshot covering records ≤ seq
//
// Each record is framed as
//
//	[4B payload len][4B CRC-32 (IEEE) over seq+payload][8B seq][payload]
//
// with all integers little-endian and seq strictly increasing from 1.
// A snapshot file is [8B magic "BBSNAP1\n"][8B seq][4B CRC][payload].
//
// # Recovery contract
//
// Open loads the newest snapshot whose checksum verifies, then scans
// the segments for records with seq beyond it. Scanning is
// prefix-exact: the first frame that is short, fails its CRC, or
// carries a non-successor sequence number ends recovery — everything
// before it is replayed, everything at and after it (a torn append, a
// corrupted tail, a segment written after the torn one) is discarded
// and truncated away so subsequent appends extend the valid prefix.
// Recovery never panics on corrupt input; arbitrary bytes in the
// directory at worst shorten the recovered prefix.
//
// A snapshot is written to a temporary file, fsynced, and renamed into
// place before old segments are pruned, so a crash at any point —
// including between the rename and the prune, exercised by the
// crash-point tests — leaves either the old snapshot with its full log
// or the new snapshot with a redundant (skipped on replay) log prefix.
//
// # Fsync policy
//
// SyncAlways fsyncs every append before it is acknowledged (no
// acknowledged record is ever lost); SyncInterval fsyncs on a
// background tick (bounded data loss, near-zero overhead); SyncNever
// leaves flushing to the OS. Snapshots and renames are always fsynced
// regardless of mode.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Sync policies for Options.Fsync.
const (
	SyncAlways   = "always"
	SyncInterval = "interval"
	SyncNever    = "never"
)

const (
	frameHeader = 16 // len + crc + seq
	snapMagic   = "BBSNAP1\n"
	segPrefix   = "wal-"
	segSuffix   = ".log"
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"

	// MaxRecord bounds a single payload; a length field beyond it is
	// treated as corruption, so a torn length prefix cannot drive a
	// multi-gigabyte allocation during recovery.
	MaxRecord = 1 << 24
)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// Options configures Open.
type Options struct {
	// Fsync is the append durability policy: SyncAlways, SyncInterval
	// or SyncNever (default SyncInterval).
	Fsync string
	// FsyncEvery is the background flush period for SyncInterval
	// (default 100ms).
	FsyncEvery time.Duration
}

// Record is one recovered log entry.
type Record struct {
	Seq  uint64
	Data []byte
}

// Recovery describes what Open reconstructed from the directory.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload (nil if none) and
	// SnapshotSeq the sequence number it covers.
	Snapshot    []byte
	SnapshotSeq uint64
	// Records are the valid log records beyond the snapshot, in order.
	Records []Record
	// TornBytes counts bytes discarded from the log tail (torn or
	// corrupt frames and anything after them).
	TornBytes int64
}

// Stats is the durability monitoring block, served under "durability"
// in /v1/stats and as bb_wal_* Prometheus series.
type Stats struct {
	Fsync    string `json:"fsync"`
	LogBytes int64  `json:"log_bytes"`
	Segments int    `json:"segments"`
	// Records counts appends acknowledged this process lifetime;
	// RecordsSinceSnapshot resets at each snapshot.
	Records              int64 `json:"records"`
	RecordsSinceSnapshot int64 `json:"records_since_snapshot"`
	Snapshots            int64 `json:"snapshots"`
	// LastFsyncAgeMs is the age of the last fsync (-1 before any).
	LastFsyncAgeMs int64 `json:"last_fsync_age_ms"`
	// Recovery facts from Open: records replayed, snapshot sequence
	// they extended, bytes discarded at the torn tail, and the replay
	// wall time (set by the owner via SetRecoveryMs once the recovered
	// state is live).
	RecoveredRecords    int64  `json:"recovered_records"`
	RecoverySnapshotSeq uint64 `json:"recovery_snapshot_seq"`
	RecoveryTornBytes   int64  `json:"recovery_torn_bytes"`
	RecoveryReplayMs    int64  `json:"recovery_replay_ms"`
}

// Log is an append-only record log over a directory. Safe for
// concurrent use.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	f       *os.File // active segment
	size    int64    // active segment size
	allSize int64    // total bytes across segments
	segs    []string // live segment paths, oldest first (incl. active)
	lastSeq uint64
	snapSeq uint64 // seq covered by the newest durable snapshot

	records    int64
	sinceSnap  int64
	snapshots  int64
	lastFsync  time.Time
	recovered  int64
	recSnapSeq uint64
	tornBytes  int64
	replayMs   int64

	closed bool
	stopC  chan struct{}
	doneC  chan struct{}
}

// Open opens (creating if needed) the log directory, recovers its
// contents, truncates any torn tail, and returns a Log ready to
// append after the valid prefix.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	switch opts.Fsync {
	case "":
		opts.Fsync = SyncInterval
	case SyncAlways, SyncInterval, SyncNever:
	default:
		return nil, nil, fmt.Errorf("wal: unknown fsync policy %q", opts.Fsync)
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, stopC: make(chan struct{}), doneC: make(chan struct{})}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	if l.f == nil {
		if err := l.openSegment(l.lastSeq + 1); err != nil {
			return nil, nil, err
		}
	}
	if opts.Fsync == SyncInterval {
		go l.flushLoop()
	} else {
		close(l.doneC)
	}
	return l, rec, nil
}

// recover scans the directory: newest valid snapshot, then the valid
// record prefix of the segments, truncating the first invalid frame
// and deleting everything after it.
func (l *Log) recover() (*Recovery, error) {
	names, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var segStarts []uint64
	var snapSeqs []uint64
	for _, de := range names {
		n := de.Name()
		switch {
		case strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix):
			if v, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, segPrefix), segSuffix), 16, 64); perr == nil {
				segStarts = append(segStarts, v)
			}
		case strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix):
			if v, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, snapPrefix), snapSuffix), 16, 64); perr == nil {
				snapSeqs = append(snapSeqs, v)
			}
		}
	}
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] }) // newest first

	rec := &Recovery{}
	for _, sq := range snapSeqs {
		data, ok := readSnapshot(l.snapPath(sq))
		if ok {
			rec.Snapshot, rec.SnapshotSeq = data, sq
			break
		}
		// An unreadable snapshot (torn tmp-rename race, bit rot) is
		// skipped; an older snapshot plus a longer log replay covers
		// the same state.
	}
	l.snapSeq = rec.SnapshotSeq
	l.lastSeq = rec.SnapshotSeq

	// Scan segments in order for the contiguous valid record suffix.
	torn := false
	for i, start := range segStarts {
		path := l.segPath(start)
		if torn {
			// Everything after a torn segment is beyond the valid
			// prefix: count and delete.
			if fi, serr := os.Stat(path); serr == nil {
				rec.TornBytes += fi.Size()
			}
			os.Remove(path)
			continue
		}
		validLen, fileLen, recs := scanSegment(path, l.lastSeq, rec.SnapshotSeq)
		rec.Records = append(rec.Records, recs...)
		if n := len(recs); n > 0 {
			l.lastSeq = recs[n-1].Seq
		}
		if validLen < fileLen {
			torn = true
			rec.TornBytes += fileLen - validLen
			if validLen == 0 && i > 0 {
				os.Remove(path)
				continue
			}
			if err := os.Truncate(path, validLen); err != nil {
				return nil, err
			}
		}
		if validLen > 0 || i == len(segStarts)-1 {
			l.segs = append(l.segs, path)
			l.allSize += validLen
		} else {
			os.Remove(path)
		}
	}
	// Reopen the last surviving segment for appending.
	if n := len(l.segs); n > 0 {
		f, err := os.OpenFile(l.segs[n-1], os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.size = f, size
	}
	l.recovered = int64(len(rec.Records))
	l.recSnapSeq = rec.SnapshotSeq
	l.tornBytes = rec.TornBytes
	return rec, nil
}

// scanSegment reads the contiguous valid frame prefix of one segment.
// lastSeq is the sequence number of the last record accepted so far
// (records must continue lastSeq+1, lastSeq+2, ...); records with
// seq <= snapSeq are validated and skipped (already in the snapshot).
// It returns the valid byte length, the file length, and the records
// beyond the snapshot. A missing or unreadable file scans as empty.
func scanSegment(path string, lastSeq, snapSeq uint64) (validLen, fileLen int64, recs []Record) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		fileLen = fi.Size()
	}
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return validLen, fileLen, recs
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if n > MaxRecord {
			return validLen, fileLen, recs
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return validLen, fileLen, recs
		}
		if crc32.ChecksumIEEE(append(hdr[8:16:16], payload...)) != crc {
			return validLen, fileLen, recs
		}
		if seq <= snapSeq {
			// Pre-snapshot record in a not-yet-pruned segment: valid,
			// already covered by the snapshot.
			if seq > lastSeq {
				lastSeq = seq
			}
			validLen += frameHeader + int64(n)
			continue
		}
		if seq != lastSeq+1 {
			return validLen, fileLen, recs
		}
		lastSeq = seq
		recs = append(recs, Record{Seq: seq, Data: payload})
		validLen += frameHeader + int64(n)
	}
}

func readSnapshot(path string) ([]byte, bool) {
	b, err := os.ReadFile(path)
	if err != nil || len(b) < len(snapMagic)+12 || string(b[:len(snapMagic)]) != snapMagic {
		return nil, false
	}
	off := len(snapMagic)
	crc := binary.LittleEndian.Uint32(b[off+8 : off+12])
	data := b[off+12:]
	if crc32.ChecksumIEEE(data) != crc {
		return nil, false
	}
	return data, true
}

func (l *Log) segPath(start uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix))
}

func (l *Log) snapPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix))
}

// openSegment creates the segment whose first record will be seq and
// makes it the append target.
func (l *Log) openSegment(seq uint64) error {
	path := l.segPath(seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if l.f != nil {
		l.f.Sync()
		l.f.Close()
	}
	l.f, l.size = f, 0
	l.segs = append(l.segs, path)
	return syncDir(l.dir)
}

// Append writes one record and returns its sequence number. Under
// SyncAlways the record is fsynced before Append returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	seq := l.lastSeq + 1
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[frameHeader:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	// Crash point: persist a torn half-frame, then die — the disk
	// state a power cut mid-append leaves behind. The prelude runs
	// only on the firing hit, so earlier appends stay clean.
	if err := faultinject.HitWith("wal.append.partial", func() {
		l.f.Write(frame[:len(frame)/2])
		l.f.Sync()
	}); err != nil {
		return 0, err
	}
	if _, err := l.f.Write(frame); err != nil {
		return 0, err
	}
	l.size += int64(len(frame))
	l.allSize += int64(len(frame))
	l.lastSeq = seq
	l.records++
	l.sinceSnap++
	if l.opts.Fsync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

func (l *Log) syncLocked() error {
	if err := faultinject.Hit("wal.fsync"); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.lastFsync = time.Now()
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) flushLoop() {
	defer close(l.doneC)
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopC:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// WriteSnapshot makes data the log's new base state: it covers every
// record appended so far, so once it is durably in place the old
// segments are pruned and a fresh segment begins. The write is
// tmp-file + fsync + atomic rename + directory fsync; crash points
// cover each step.
func (l *Log) WriteSnapshot(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.writeSnapshotLocked(data)
}

func (l *Log) writeSnapshotLocked(data []byte) error {
	// The snapshot must cover every acknowledged record: flush the log
	// first so "snapshot covers seq" never outruns what is on disk.
	if err := l.syncLocked(); err != nil {
		return err
	}
	seq := l.lastSeq
	final := l.snapPath(seq)
	tmp := final + ".tmp"
	buf := make([]byte, len(snapMagic)+12+len(data))
	copy(buf, snapMagic)
	off := len(snapMagic)
	binary.LittleEndian.PutUint64(buf[off:off+8], seq)
	binary.LittleEndian.PutUint32(buf[off+8:off+12], crc32.ChecksumIEEE(data))
	copy(buf[off+12:], data)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := faultinject.HitWith("wal.snapshot.partial", func() {
		f.Write(buf[:len(buf)/2])
		f.Sync()
	}); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	f.Close()
	if err := faultinject.Hit("wal.snapshot.rename"); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	prevSnap := l.snapSeq
	l.snapSeq = seq
	l.snapshots++
	l.sinceSnap = 0
	if err := faultinject.Hit("wal.snapshot.prune"); err != nil {
		return err
	}
	// Rotate to a fresh segment, then prune everything the snapshot
	// covers: old segments and the previous snapshot.
	if err := l.openSegment(seq + 1); err != nil {
		return err
	}
	live := l.segs[len(l.segs)-1:]
	for _, p := range l.segs[:len(l.segs)-1] {
		os.Remove(p)
	}
	l.segs = append([]string(nil), live...)
	l.allSize = l.size
	if prevSnap != seq {
		os.Remove(l.snapPath(prevSnap))
	}
	return syncDir(l.dir)
}

// SetRecoveryMs records how long the owner's full recovery (snapshot
// decode + record replay) took, for the durability stats block.
func (l *Log) SetRecoveryMs(ms int64) {
	l.mu.Lock()
	l.replayMs = ms
	l.mu.Unlock()
}

// Stats returns the durability monitoring block.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Fsync:                l.opts.Fsync,
		LogBytes:             l.allSize,
		Segments:             len(l.segs),
		Records:              l.records,
		RecordsSinceSnapshot: l.sinceSnap,
		Snapshots:            l.snapshots,
		LastFsyncAgeMs:       -1,
		RecoveredRecords:     l.recovered,
		RecoverySnapshotSeq:  l.recSnapSeq,
		RecoveryTornBytes:    l.tornBytes,
		RecoveryReplayMs:     l.replayMs,
	}
	if !l.lastFsync.IsZero() {
		st.LastFsyncAgeMs = time.Since(l.lastFsync).Milliseconds()
	}
	return st
}

// Close flushes and closes the log. If finalSnapshot is non-nil its
// result becomes a final compacting snapshot first — the clean
// shutdown path, leaving recovery a snapshot and an empty log.
func (l *Log) Close(finalSnapshot func() []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if finalSnapshot != nil {
		// The state function runs outside our lock discipline concerns:
		// callers pass a closure that locks their own state.
		l.mu.Unlock()
		data := finalSnapshot()
		l.mu.Lock()
		if !l.closed {
			err = l.writeSnapshotLocked(data)
		}
	}
	l.closed = true
	close(l.stopC)
	if serr := l.f.Sync(); err == nil && serr != nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	l.mu.Unlock()
	<-l.doneC
	return err
}

// Abort closes file handles without flushing or snapshotting — the
// crash-simulation hook used by restart scenarios: recovery sees
// whatever the fsync policy happened to leave durable.
func (l *Log) Abort() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.stopC)
		l.f.Close()
	}
	l.mu.Unlock()
	<-l.doneC
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
