package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALTornTail is the torn-write recovery fuzzer: it builds a known
// log, then truncates it at an arbitrary byte offset and XORs an
// arbitrary byte, and asserts the recovery contract — replay never
// panics, recovers an exact prefix of the original records, and the
// reopened log accepts appends that survive a further clean reopen.
func FuzzWALTornTail(f *testing.F) {
	// Build one pristine segment to derive corpus mutations from.
	base := f.TempDir()
	l, _, err := Open(base, Options{Fsync: SyncAlways})
	if err != nil {
		f.Fatal(err)
	}
	const records = 16
	for i := 0; i < records; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			f.Fatal(err)
		}
	}
	l.Close(nil)
	segs, _ := filepath.Glob(filepath.Join(base, segPrefix+"*"+segSuffix))
	if len(segs) != 1 {
		f.Fatalf("segments = %v", segs)
	}
	pristine, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	f.Add(uint16(0), uint16(0), byte(0))                       // empty file
	f.Add(uint16(len(pristine)), uint16(0), byte(0))           // intact
	f.Add(uint16(len(pristine)-1), uint16(0), byte(0))         // torn last byte
	f.Add(uint16(frameHeader+3), uint16(0), byte(0))           // torn first payload
	f.Add(uint16(len(pristine)), uint16(5), byte(0xff))        // corrupt first CRC
	f.Add(uint16(len(pristine)), uint16(frameHeader), byte(1)) // corrupt first payload

	f.Fuzz(func(t *testing.T, cut uint16, flipAt uint16, flipWith byte) {
		data := append([]byte(nil), pristine...)
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 {
			data[int(flipAt)%len(data)] ^= flipWith
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data, 0o644); err != nil {
			t.Fatal(err)
		}

		l, rec, err := Open(dir, Options{})
		if err != nil {
			// Recovery may fail only on real I/O errors, which a byte
			// mutation cannot cause.
			t.Fatalf("Open on mutated log errored: %v", err)
		}
		// Prefix-exact: every recovered record matches the original at
		// its position; no reordering, no invention.
		if len(rec.Records) > records {
			t.Fatalf("recovered %d records from a %d-record log", len(rec.Records), records)
		}
		for i, r := range rec.Records {
			want := fmt.Sprintf("payload-%02d", i)
			if string(r.Data) != want || r.Seq != uint64(i+1) {
				t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, r.Seq, r.Data, i+1, want)
			}
		}
		// The log must be appendable after recovery, and the appended
		// record must survive a clean reopen right after the prefix.
		next := uint64(len(rec.Records) + 1)
		seq, err := l.Append([]byte("post-recovery"))
		if err != nil || seq != next {
			t.Fatalf("Append = (%d, %v), want (%d, nil)", seq, err, next)
		}
		if err := l.Close(nil); err != nil {
			t.Fatalf("Close: %v", err)
		}
		_, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if n := len(rec2.Records); n != len(rec.Records)+1 {
			t.Fatalf("second recovery found %d records, want %d", n, len(rec.Records)+1)
		}
		if got := rec2.Records[len(rec2.Records)-1]; !bytes.Equal(got.Data, []byte("post-recovery")) {
			t.Fatalf("appended record did not survive reopen: %q", got.Data)
		}
		if rec2.TornBytes != 0 {
			t.Fatalf("second recovery torn again: %d bytes", rec2.TornBytes)
		}
	})
}

// FuzzSnapshotBytes feeds arbitrary bytes as a snapshot file: recovery
// must either reject it (fall through to no snapshot) or accept a
// checksum-valid one, never panic.
func FuzzSnapshotBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	f.Add(append([]byte(snapMagic), make([]byte, 12)...))
	f.Fuzz(func(t *testing.T, blob []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapPrefix+"000000000000002a"+snapSuffix), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close(nil)
		if rec.Snapshot != nil && rec.SnapshotSeq != 0x2a {
			t.Fatalf("accepted snapshot with wrong seq %d", rec.SnapshotSeq)
		}
	})
}
