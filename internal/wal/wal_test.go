package wal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, rec *Recovery, from, to int) {
	t.Helper()
	if len(rec.Records) != to-from {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), to-from)
	}
	for i, r := range rec.Records {
		want := fmt.Sprintf("rec-%04d", from+i)
		if string(r.Data) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Data, want)
		}
	}
}

func TestAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{Fsync: SyncAlways})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	appendN(t, l, 0, 50)
	if err := l.Close(nil); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir, Options{Fsync: SyncAlways})
	defer l2.Close(nil)
	wantRecords(t, rec2, 0, 50)
	if rec2.Records[0].Seq != 1 || rec2.Records[49].Seq != 50 {
		t.Fatalf("seq range [%d,%d], want [1,50]", rec2.Records[0].Seq, rec2.Records[49].Seq)
	}
	// Appends must extend the recovered prefix.
	seq, err := l2.Append([]byte("rec-0050"))
	if err != nil || seq != 51 {
		t.Fatalf("post-recovery Append = (%d, %v), want (51, nil)", seq, err)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 30)
	if err := l.WriteSnapshot([]byte("state@30")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendN(t, l, 30, 40)
	st := l.Stats()
	if st.Snapshots != 1 || st.RecordsSinceSnapshot != 10 {
		t.Fatalf("stats after snapshot: %+v", st)
	}
	l.Close(nil)

	// Old segments are pruned: the directory holds one snapshot and the
	// post-snapshot segment only.
	var segs, snaps int
	ents, _ := os.ReadDir(dir)
	for _, de := range ents {
		switch {
		case strings.HasSuffix(de.Name(), segSuffix):
			segs++
		case strings.HasSuffix(de.Name(), snapSuffix):
			snaps++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after compaction: %d snapshots, %d segments (want 1, 1)", snaps, segs)
	}

	l2, rec := openT(t, dir, Options{})
	defer l2.Close(nil)
	if !bytes.Equal(rec.Snapshot, []byte("state@30")) || rec.SnapshotSeq != 30 {
		t.Fatalf("snapshot = %q seq %d, want state@30 seq 30", rec.Snapshot, rec.SnapshotSeq)
	}
	wantRecords(t, rec, 30, 40)
}

// TestCrashBetweenSnapshotAndPrune simulates the dangerous window: the
// new snapshot is durably renamed into place but the old segments were
// never pruned. Replay must skip the pre-snapshot records (validated,
// already covered) and recover exactly the post-snapshot suffix.
func TestCrashBetweenSnapshotAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 20)
	// Write the snapshot by hand next to the un-pruned log, exactly what
	// a crash between rename and prune leaves (the faultinject point
	// wal.snapshot.prune produces this state in the subprocess tests).
	l.mu.Lock()
	seq := l.lastSeq
	l.mu.Unlock()
	if err := writeRawSnapshot(dir, seq, []byte("state@20")); err != nil {
		t.Fatal(err)
	}
	l.Close(nil)

	l2, rec := openT(t, dir, Options{})
	defer l2.Close(nil)
	if !bytes.Equal(rec.Snapshot, []byte("state@20")) || rec.SnapshotSeq != 20 {
		t.Fatalf("snapshot = %q seq %d", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("replayed %d pre-snapshot records, want 0", len(rec.Records))
	}
	if seq, err := l2.Append([]byte("x")); err != nil || seq != 21 {
		t.Fatalf("Append = (%d, %v), want (21, nil)", seq, err)
	}
}

// writeRawSnapshot writes a valid snapshot file directly (test helper
// for crash-state construction).
func writeRawSnapshot(dir string, seq uint64, data []byte) error {
	l := &Log{dir: dir}
	buf := make([]byte, len(snapMagic)+12+len(data))
	copy(buf, snapMagic)
	off := len(snapMagic)
	putU64(buf[off:], seq)
	putU32(buf[off+8:], crc32.ChecksumIEEE(data))
	copy(buf[off+12:], data)
	return os.WriteFile(l.snapPath(seq), buf, 0o644)
}

// TestUnreadableSnapshotFallsBack corrupts the newest snapshot and
// checks recovery uses the older one plus the longer log replay.
func TestUnreadableSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 10)
	if err := writeRawSnapshot(dir, 5, []byte("older")); err != nil {
		t.Fatal(err)
	}
	// Newer snapshot with a corrupted payload byte.
	if err := writeRawSnapshot(dir, 8, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	p := (&Log{dir: dir}).snapPath(8)
	b, _ := os.ReadFile(p)
	b[len(b)-1] ^= 0xff
	os.WriteFile(p, b, 0o644)
	l.Close(nil)

	l2, rec := openT(t, dir, Options{})
	defer l2.Close(nil)
	if !bytes.Equal(rec.Snapshot, []byte("older")) || rec.SnapshotSeq != 5 {
		t.Fatalf("fell back to %q seq %d, want older seq 5", rec.Snapshot, rec.SnapshotSeq)
	}
	wantRecords(t, rec, 5, 10)
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 10)
	l.Close(nil)

	// Append garbage to the segment: recovery must keep the 10 valid
	// records, drop the garbage, and truncate the file back.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	f, _ := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("garbage garbage garbage"))
	f.Close()

	l2, rec := openT(t, dir, Options{})
	wantRecords(t, rec, 0, 10)
	if rec.TornBytes != int64(len("garbage garbage garbage")) {
		t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, len("garbage garbage garbage"))
	}
	// The torn bytes are physically gone: append + reopen yields a clean
	// contiguous log.
	if seq, err := l2.Append([]byte("rec-0010")); err != nil || seq != 11 {
		t.Fatalf("Append = (%d, %v), want (11, nil)", seq, err)
	}
	l2.Close(nil)
	l3, rec3 := openT(t, dir, Options{})
	defer l3.Close(nil)
	wantRecords(t, rec3, 0, 11)
	if rec3.TornBytes != 0 {
		t.Fatalf("second recovery still torn: %d bytes", rec3.TornBytes)
	}
}

// TestOversizedLengthRejected: a torn length prefix must not drive a
// giant allocation — the frame is treated as corruption.
func TestOversizedLengthRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 3)
	l.Close(nil)
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	f, _ := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	var hdr [frameHeader]byte
	putU32(hdr[0:], uint32(MaxRecord+1))
	putU64(hdr[8:], 4)
	f.Write(hdr[:])
	f.Close()

	l2, rec := openT(t, dir, Options{})
	defer l2.Close(nil)
	wantRecords(t, rec, 0, 3)
	if rec.TornBytes != frameHeader {
		t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, frameHeader)
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []string{SyncAlways, SyncInterval, SyncNever} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir, Options{Fsync: mode})
			appendN(t, l, 0, 5)
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			st := l.Stats()
			if st.Fsync != mode || st.Records != 5 {
				t.Fatalf("stats: %+v", st)
			}
			if st.LastFsyncAgeMs < 0 {
				t.Fatal("LastFsyncAgeMs sentinel after explicit Sync")
			}
			l.Close(nil)
			_, rec := openT(t, dir, Options{Fsync: mode})
			wantRecords(t, rec, 0, 5)
		})
	}
	if _, _, err := Open(t.TempDir(), Options{Fsync: "bogus"}); err == nil {
		t.Fatal("bogus fsync mode accepted")
	}
}

func TestCloseFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendN(t, l, 0, 7)
	if err := l.Close(func() []byte { return []byte("final") }); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	if !bytes.Equal(rec.Snapshot, []byte("final")) || rec.SnapshotSeq != 7 {
		t.Fatalf("final snapshot = %q seq %d", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("clean shutdown left %d records to replay", len(rec.Records))
	}
	// Close is idempotent and later ops fail cleanly.
	if err := l.Close(nil); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestAbortKeepsSyncedPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 12)
	l.Abort()
	_, rec := openT(t, dir, Options{})
	wantRecords(t, rec, 0, 12)
}

func TestMultiSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: SyncAlways})
	appendN(t, l, 0, 10)
	if err := l.WriteSnapshot([]byte("s@10")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 20)
	if err := l.WriteSnapshot([]byte("s@20")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, 25)
	st := l.Stats()
	if st.Snapshots != 2 {
		t.Fatalf("snapshots = %d, want 2", st.Snapshots)
	}
	l.Close(nil)
	l2, rec := openT(t, dir, Options{})
	defer l2.Close(nil)
	if !bytes.Equal(rec.Snapshot, []byte("s@20")) || rec.SnapshotSeq != 20 {
		t.Fatalf("snapshot %q seq %d", rec.Snapshot, rec.SnapshotSeq)
	}
	wantRecords(t, rec, 20, 25)
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
