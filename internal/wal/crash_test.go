package wal

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"testing"

	"repro/internal/faultinject"
)

// TestMain lets the test binary double as the crash victim: when
// re-exec'd with BB_WAL_CRASH_DIR set, it runs the workload below
// (which dies at the armed BB_CRASHPOINT) instead of the test suite.
func TestMain(m *testing.M) {
	if dir := os.Getenv("BB_WAL_CRASH_DIR"); dir != "" {
		crashWorkload(dir)
		os.Exit(0) // reached only if the armed point never fired
	}
	os.Exit(m.Run())
}

// crashWorkload appends records and snapshots mid-way — enough surface
// for every wal.* crash point to fire.
func crashWorkload(dir string) {
	l, _, err := Open(dir, Options{Fsync: SyncAlways})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash workload open:", err)
		os.Exit(1)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			fmt.Fprintln(os.Stderr, "crash workload append:", err)
			os.Exit(1)
		}
	}
	if err := l.WriteSnapshot([]byte("snap@10")); err != nil {
		fmt.Fprintln(os.Stderr, "crash workload snapshot:", err)
		os.Exit(1)
	}
	for i := 10; i < 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			fmt.Fprintln(os.Stderr, "crash workload append:", err)
			os.Exit(1)
		}
	}
	l.Close(nil)
}

// runCrashVictim re-execs this test binary with the given crash point
// armed and returns the WAL directory it died over.
func runCrashVictim(t *testing.T, point string) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BB_WAL_CRASH_DIR="+dir,
		faultinject.EnvVar+"="+point)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != faultinject.KillStatus {
		t.Fatalf("victim armed with %s exited %v (want status %d); output:\n%s",
			point, err, faultinject.KillStatus, out)
	}
	return dir
}

// checkRecoversPrefix opens the crashed directory and asserts the
// recovery contract: some contiguous prefix of the workload's state,
// never an error, never invented records.
func checkRecoversPrefix(t *testing.T, dir string) (*Recovery, int) {
	t.Helper()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer l.Close(nil)
	start := int(rec.SnapshotSeq)
	for i, r := range rec.Records {
		want := fmt.Sprintf("pre-%02d", start+i)
		if string(r.Data) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Data, want)
		}
	}
	return rec, start + len(rec.Records)
}

func TestCrashMidAppend(t *testing.T) {
	// Die on the 15th append with half a frame durably written: the
	// torn frame must be discarded, the 14 full records recovered.
	dir := runCrashVictim(t, "wal.append.partial:kill:15")
	rec, recovered := checkRecoversPrefix(t, dir)
	if recovered != 14 {
		t.Fatalf("recovered through record %d, want 14", recovered)
	}
	if rec.TornBytes == 0 {
		t.Fatal("no torn bytes counted for a mid-append crash")
	}
}

func TestCrashMidSnapshot(t *testing.T) {
	// Die with half the snapshot tmp file written: the rename never
	// happened, so recovery sees no snapshot and the full log.
	dir := runCrashVictim(t, "wal.snapshot.partial")
	rec, recovered := checkRecoversPrefix(t, dir)
	if rec.Snapshot != nil {
		t.Fatalf("recovered a snapshot that was never renamed: %q", rec.Snapshot)
	}
	if recovered != 10 {
		t.Fatalf("recovered through record %d, want 10", recovered)
	}
}

func TestCrashBeforeSnapshotRename(t *testing.T) {
	dir := runCrashVictim(t, "wal.snapshot.rename")
	rec, recovered := checkRecoversPrefix(t, dir)
	if rec.Snapshot != nil {
		t.Fatalf("recovered a snapshot from before its rename: %q", rec.Snapshot)
	}
	if recovered != 10 {
		t.Fatalf("recovered through record %d, want 10", recovered)
	}
}

func TestCrashBetweenRenameAndPrune(t *testing.T) {
	// The snapshot is durably in place but the old segments survive:
	// recovery must use the snapshot and skip the redundant records.
	dir := runCrashVictim(t, "wal.snapshot.prune")
	rec, _ := checkRecoversPrefix(t, dir)
	if string(rec.Snapshot) != "snap@10" || rec.SnapshotSeq != 10 {
		t.Fatalf("snapshot = %q seq %d, want snap@10 seq 10", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("replayed %d records already covered by the snapshot", len(rec.Records))
	}
}

func TestCrashOnFsync(t *testing.T) {
	// Kill at the 5th fsync (SyncAlways: one per append, so mid-run).
	dir := runCrashVictim(t, "wal.fsync:kill:5")
	_, recovered := checkRecoversPrefix(t, dir)
	// The 5th append's frame was written before its fsync; anywhere in
	// [4,5] is a correct prefix depending on what the OS persisted.
	if recovered < 4 || recovered > 5 {
		t.Fatalf("recovered through record %d, want 4 or 5", recovered)
	}
}

func TestInjectedFsyncError(t *testing.T) {
	// err mode: the 5th fsync fails without killing the process, so the
	// victim exercises its error path (Append surfaces the error, the
	// workload exits 1) — and the directory still recovers cleanly.
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BB_WAL_CRASH_DIR="+dir,
		faultinject.EnvVar+"=wal.fsync:err:5")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("err-mode victim exited %v (want status 1); output:\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("injected")) {
		t.Fatalf("victim error output missing injected fault:\n%s", out)
	}
	_, recovered := checkRecoversPrefix(t, dir)
	// The 5th frame was written before its failing fsync, so it may or
	// may not be durable — the classic unacknowledged-write ambiguity.
	if recovered < 4 || recovered > 5 {
		t.Fatalf("recovered through record %d, want 4 or 5", recovered)
	}
}
