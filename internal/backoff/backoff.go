// Package backoff provides seeded-jitter exponential backoff for the
// cluster tier's retry paths (membership re-probes, load-view polls).
//
// The schedule is exponential with equal-jitter: attempt k waits
// between cap(base·2ᵏ)/2 and cap(base·2ᵏ), the jitter drawn from a
// deterministic seeded stream — so two routers never synchronize
// their retries into a thundering herd against a recovering backend,
// yet a fixed seed reproduces the exact wait sequence in tests.
// Reset (called on success) restarts the schedule at the base delay.
package backoff

import (
	"time"

	"repro/internal/rng"
)

// Backoff produces one retry schedule. Not safe for concurrent use;
// give each probed target its own.
type Backoff struct {
	base, max time.Duration
	r         *rng.Rand
	attempt   int
}

// New returns a schedule rising from base to max (both required > 0;
// max below base is raised to base). seed drives the jitter stream.
func New(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, r: rng.New(seed)}
}

// Next returns the wait before the next retry and advances the
// schedule: uniformly drawn from [d/2, d) where d = min(base·2ᵏ, max)
// for the k-th consecutive failure.
func (b *Backoff) Next() time.Duration {
	d := b.max
	if shift := uint(b.attempt); shift < 32 {
		if e := b.base << shift; e < b.max {
			d = e
		}
	}
	if b.attempt < 62 {
		b.attempt++
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(b.r.Uint64n(uint64(half)))
}

// Reset restarts the schedule at the base delay — call on success.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports the consecutive-failure count so far.
func (b *Backoff) Attempt() int { return b.attempt }
