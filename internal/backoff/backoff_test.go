package backoff

import (
	"testing"
	"time"
)

// TestDeterministicSequence pins the contract the cluster retry paths
// rely on: a fixed seed reproduces the exact wait sequence, so flaky
// backend tests and cross-router herd analysis are reproducible.
func TestDeterministicSequence(t *testing.T) {
	const seed = 42
	a := New(100*time.Millisecond, 2*time.Second, seed)
	b := New(100*time.Millisecond, 2*time.Second, seed)
	for i := 0; i < 20; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
	c := New(100*time.Millisecond, 2*time.Second, seed+1)
	same := 0
	a.Reset()
	for i := 0; i < 20; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds produced an identical 20-draw sequence")
	}
}

// TestEnvelopeAndCap checks every draw lands in the equal-jitter
// envelope [d/2, d) with d = min(base·2^k, max), and that the schedule
// saturates at max instead of overflowing.
func TestEnvelopeAndCap(t *testing.T) {
	base, max := 50*time.Millisecond, 800*time.Millisecond
	b := New(base, max, 7)
	for k := 0; k < 100; k++ {
		d := max
		if k < 32 {
			if e := base << uint(k); e < max {
				d = e
			}
		}
		got := b.Next()
		if got < d/2 || got >= d {
			t.Fatalf("attempt %d: wait %v outside [%v, %v)", k, got, d/2, d)
		}
	}
}

// TestReset returns the schedule to the base delay after a success.
func TestReset(t *testing.T) {
	base, max := 10*time.Millisecond, 10*time.Second
	b := New(base, max, 3)
	for i := 0; i < 8; i++ {
		b.Next()
	}
	if b.Attempt() != 8 {
		t.Fatalf("attempt count = %d, want 8", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("attempt count after Reset = %d, want 0", b.Attempt())
	}
	if got := b.Next(); got < base/2 || got >= base {
		t.Fatalf("first wait after Reset = %v, want in [%v, %v)", got, base/2, base)
	}
}

// TestDegenerateConfig covers the defensive defaults: non-positive
// base and max below base must still yield a sane schedule.
func TestDegenerateConfig(t *testing.T) {
	b := New(0, 0, 1)
	if got := b.Next(); got <= 0 {
		t.Fatalf("degenerate config produced non-positive wait %v", got)
	}
	b = New(time.Second, time.Millisecond, 1)
	if got := b.Next(); got < time.Second/2 || got >= time.Second {
		t.Fatalf("max<base: first wait %v outside [500ms, 1s)", got)
	}
}
