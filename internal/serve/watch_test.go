package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/watch"
)

// newWatchedDispatcher builds a dispatcher with the watchdog armed but
// the collector goroutine unstarted — tests drive Tick themselves for
// determinism. NewDispatcher starts the collector; the fast cadence
// here just means it also runs, harmlessly, alongside manual ticks
// (Tick is serialized internally).
func newWatchedDispatcher(t *testing.T, n, shards int) *Dispatcher {
	t.Helper()
	d := NewDispatcher(Config{
		Spec:   ballsbins.Adaptive(),
		N:      n,
		Shards: shards,
		Seed:   1,
		Watch:  watch.Options{Cadence: time.Millisecond},
	})
	t.Cleanup(d.Close)
	return d
}

// TestWatchNoPhantomViolations is the consistency regression: hammer
// place/remove traffic while the watchdog evaluates as fast as it can,
// and assert that no invariant ever appears violated. The checks read
// post-batch shard rows and the lock-all metrics path, so a mid-batch
// read must be structurally impossible — any phantom here is a torn
// snapshot.
func TestWatchNoPhantomViolations(t *testing.T) {
	const n, shards = 128, 4
	d := newWatchedDispatcher(t, n, shards)
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%3 == 2 && len(mine) > 0 {
					bin := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := d.Remove(ctx, bin); err != nil {
						return
					}
					continue
				}
				bin, _, err := d.Place(ctx)
				if err != nil {
					return
				}
				mine = append(mine, bin)
			}
		}(w)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		d.Watch().Tick(time.Now())
	}
	close(stop)
	wg.Wait()
	// A final pass over the quiesced system must also hold.
	d.Watch().Tick(time.Now())

	if got := d.Watch().ViolationsTotal(); got != 0 {
		t.Fatalf("phantom violations under traffic: %d (%v)", got, d.Watch().ViolationCounts())
	}
	pts := d.Watch().Series(0)
	if len(pts) == 0 {
		t.Fatal("watchdog collected no points")
	}
	last := pts[len(pts)-1]
	if last.Balls != last.Placed-last.Removed {
		t.Fatalf("books don't balance in series point: %+v", last)
	}
}

// TestWatchKeyedCheckArmed proves the keyed invariant joins the sample
// once keyed traffic exists, with the bound from the same mutex hold.
func TestWatchKeyedCheckArmed(t *testing.T) {
	d := NewDispatcher(Config{
		Spec: ballsbins.Adaptive(), N: 64, Shards: 4, Seed: 1,
		Watch: watch.Options{Cadence: time.Hour}, // manual ticks only
	})
	t.Cleanup(d.Close)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if _, _, err := d.PlaceKeyed(ctx, "key-"+string(rune('a'+i%17))); err != nil {
			t.Fatalf("PlaceKeyed: %v", err)
		}
	}
	s := d.watchSample()
	var found bool
	for _, ck := range s.Checks {
		if ck.Invariant == "serve_keyed_max" {
			found = true
			if ck.Observed > ck.Bound {
				t.Fatalf("keyed check violated at rest: %+v", ck)
			}
		}
		if ck.Invariant == "serve_global_max" {
			t.Fatal("global max-load check armed despite keyed traffic")
		}
	}
	if !found {
		t.Fatalf("serve_keyed_max not armed; checks: %+v", s.Checks)
	}
	if s.Point.AffinityHitRate <= 0 {
		t.Fatalf("affinity hit rate not sampled: %+v", s.Point)
	}
}

// TestWatchGreedyUnarmed: a spec without a deterministic bound must
// not arm max-load checks (only the bookkeeping identity).
func TestWatchGreedyUnarmed(t *testing.T) {
	d := NewDispatcher(Config{
		Spec: ballsbins.Greedy(2), N: 64, Shards: 4, Seed: 1,
		Watch: watch.Options{Cadence: time.Hour},
	})
	t.Cleanup(d.Close)
	if _, _, err := d.PlaceMany(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	for _, ck := range d.watchSample().Checks {
		if ck.Invariant == "serve_shard_max" || ck.Invariant == "serve_global_max" {
			t.Fatalf("max-load check %q armed for greedy spec", ck.Invariant)
		}
	}
}

// TestWatchHTTPEndpoints covers the serve tier's /v1/events and
// /v1/timeseries surfaces plus the watch block in /v1/stats and the
// exported metrics.
func TestWatchHTTPEndpoints(t *testing.T) {
	d := NewDispatcher(Config{
		Spec: ballsbins.Adaptive(), N: 64, Shards: 4, Seed: 1,
		Watch: watch.Options{Cadence: time.Hour},
	})
	srv := newServerFor(t, d)
	if _, _, err := d.PlaceMany(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	d.Watch().Tick(time.Now())
	d.Watch().Record(watch.EventRecovery, "test recovery", map[string]int64{"snapshot_keys": 3})

	sdoc := decode[watch.SeriesResponse](t, get(t, srv.URL+"/v1/timeseries"), 200)
	if sdoc.Hop != "serve" || len(sdoc.Points) != 1 || sdoc.Points[0].Balls != 300 {
		t.Fatalf("timeseries doc = %+v", sdoc)
	}
	edoc := decode[watch.EventsResponse](t, get(t, srv.URL+"/v1/events"), 200)
	if len(edoc.Events) != 1 || edoc.Events[0].Type != watch.EventRecovery {
		t.Fatalf("events doc = %+v", edoc)
	}
	stats := decode[StatsResponse](t, get(t, srv.URL+"/v1/stats"), 200)
	if stats.Watch == nil || stats.Watch.LastEventSeq != 1 || stats.Watch.ViolationsTotal != 0 {
		t.Fatalf("stats watch block = %+v", stats.Watch)
	}

	resp := get(t, srv.URL+"/metrics")
	body := readBody(t, resp)
	for _, want := range []string{"bb_invariant_violations_total", `bb_event_total{type="RECOVERY"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestWatchInjectionThroughDispatcher: the end-to-end injection path —
// override a live invariant's bound on a running dispatcher and the
// violation must surface in events, stats and metrics within a tick.
func TestWatchInjectionThroughDispatcher(t *testing.T) {
	d := NewDispatcher(Config{
		Spec: ballsbins.Adaptive(), N: 64, Shards: 4, Seed: 1,
		Watch: watch.Options{Cadence: time.Hour},
	})
	srv := newServerFor(t, d)
	if _, _, err := d.PlaceMany(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	d.Watch().OverrideBound("serve_shard_max", -1)
	d.Watch().Tick(time.Now())

	if got := d.Watch().ViolationsTotal(); got != 1 {
		t.Fatalf("ViolationsTotal = %d, want 1", got)
	}
	edoc := decode[watch.EventsResponse](t, get(t, srv.URL+"/v1/events?type=BOUND_VIOLATION"), 200)
	if len(edoc.Events) != 1 || edoc.Events[0].Invariant != "serve_shard_max" {
		t.Fatalf("violation events = %+v", edoc.Events)
	}
	body := readBody(t, get(t, srv.URL+"/metrics"))
	if !strings.Contains(body, `bb_invariant_violations_total{invariant="serve_shard_max"} 1`) {
		t.Fatalf("violation metric missing:\n%s", body)
	}
}

// newServerFor serves an existing dispatcher over httptest.
func newServerFor(t *testing.T, d *Dispatcher) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(d, Info{Protocol: d.Name(), N: d.cfg.N, Shards: d.cfg.Shards}))
	t.Cleanup(func() { srv.Close(); d.Close() })
	return srv
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
