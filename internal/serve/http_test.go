package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	ballsbins "repro"
)

func newTestServer(t *testing.T, n, shards int) (*Dispatcher, *httptest.Server) {
	t.Helper()
	d := NewDispatcher(Config{Spec: ballsbins.Adaptive(), N: n, Shards: shards, Seed: 1})
	srv := httptest.NewServer(NewHandler(d, Info{
		Protocol: "adaptive", N: n, Shards: shards, Engine: "fast", Seed: 1,
	}))
	t.Cleanup(func() { srv.Close(); d.Close() })
	return d, srv
}

func decode[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d want %d; body: %s", resp.StatusCode, wantStatus, body)
	}
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	return v
}

func post(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

func TestHTTPPlaceRemoveRoundTrip(t *testing.T) {
	_, srv := newTestServer(t, 64, 4)

	pl := decode[PlaceResponse](t, post(t, srv.URL+"/v1/place"), http.StatusOK)
	if pl.Bin < 0 || pl.Bin >= 64 || pl.Count != 1 || pl.Samples < 1 {
		t.Fatalf("place: %+v", pl)
	}

	rm := decode[RemoveResponse](t,
		post(t, fmt.Sprintf("%s/v1/remove?bin=%d", srv.URL, pl.Bin)), http.StatusOK)
	if !rm.Removed || rm.Bin != pl.Bin {
		t.Fatalf("remove: %+v", rm)
	}

	// The ball is gone; removing again conflicts.
	resp := post(t, fmt.Sprintf("%s/v1/remove?bin=%d", srv.URL, pl.Bin))
	decode[map[string]string](t, resp, http.StatusConflict)
}

func TestHTTPBulkPlace(t *testing.T) {
	d, srv := newTestServer(t, 60, 7)
	const k = 50
	pl := decode[PlaceResponse](t, post(t, fmt.Sprintf("%s/v1/place?count=%d", srv.URL, k)), http.StatusOK)
	if len(pl.Bins) != k || pl.Count != k || pl.Bin != pl.Bins[0] {
		t.Fatalf("bulk place: count %d, %d bins", pl.Count, len(pl.Bins))
	}
	if d.Allocator().Balls() != k {
		t.Fatalf("allocator holds %d balls", d.Allocator().Balls())
	}
}

func TestHTTPMalformedInput(t *testing.T) {
	_, srv := newTestServer(t, 16, 2)
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"POST", "/v1/place?count=abc", http.StatusBadRequest},
		{"POST", "/v1/place?count=0", http.StatusBadRequest},
		{"POST", "/v1/place?count=-3", http.StatusBadRequest},
		{"POST", fmt.Sprintf("/v1/place?count=%d", MaxBulkPlace+1), http.StatusBadRequest},
		{"POST", "/v1/remove", http.StatusBadRequest},
		{"POST", "/v1/remove?bin=xyz", http.StatusBadRequest},
		{"POST", "/v1/remove?bin=-1", http.StatusBadRequest},
		{"POST", "/v1/remove?bin=16", http.StatusBadRequest},
		{"GET", "/v1/place", http.StatusMethodNotAllowed},
		{"GET", "/v1/remove", http.StatusMethodNotAllowed},
		{"POST", "/v1/stats", http.StatusMethodNotAllowed},
		{"GET", "/nosuch", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestHTTPStatsAndSnapshot(t *testing.T) {
	d, srv := newTestServer(t, 60, 7)
	const k = 420
	decode[PlaceResponse](t, post(t, fmt.Sprintf("%s/v1/place?count=%d", srv.URL, k)), http.StatusOK)

	st := decode[StatsResponse](t, get(t, srv.URL+"/v1/stats"), http.StatusOK)
	if st.Balls != k || st.Placed != k || st.Removed != 0 {
		t.Fatalf("stats balls/placed/removed = %d/%d/%d", st.Balls, st.Placed, st.Removed)
	}
	if st.Info.Protocol != "adaptive" || st.Info.N != 60 || st.Info.Shards != 7 {
		t.Fatalf("stats info: %+v", st.Info)
	}
	if st.MaxLoad < (k+59)/60 || st.Draining {
		t.Fatalf("stats: %+v", st.StatsView)
	}
	if st.LatencyNs.Count == 0 || st.LatencyNs.P50 < 0 || st.LatencyNs.P999 < st.LatencyNs.P50 {
		t.Fatalf("latency summary: %+v", st.LatencyNs)
	}
	if len(st.Shards) != 7 {
		t.Fatalf("stats has %d shard rows", len(st.Shards))
	}

	sn := decode[SnapshotResponse](t, get(t, srv.URL+"/v1/snapshot"), http.StatusOK)
	if sn.Balls != k || len(sn.Shards) != 7 {
		t.Fatalf("snapshot balls %d, %d shard results", sn.Balls, len(sn.Shards))
	}
	if sn.Metrics.MaxLoad != d.Allocator().MaxLoad() {
		t.Fatalf("snapshot max %d, allocator %d", sn.Metrics.MaxLoad, d.Allocator().MaxLoad())
	}
	// At quiescence the lock-free stats agree with the lock-all
	// snapshot exactly.
	if st.MaxLoad != sn.Metrics.MaxLoad || st.Psi != sn.Metrics.Psi {
		t.Fatalf("stats/snapshot diverge at quiescence: %d/%v vs %d/%v",
			st.MaxLoad, st.Psi, sn.Metrics.MaxLoad, sn.Metrics.Psi)
	}
}

// TestHTTPStatsShardQuery exercises GET /v1/stats?shard=s: every shard
// row must be retrievable on its own, agree with the full view, and —
// at quiescence — agree exactly with the lock-all ShardMetrics.
func TestHTTPStatsShardQuery(t *testing.T) {
	d, srv := newTestServer(t, 60, 7)
	const k = 333
	decode[PlaceResponse](t, post(t, fmt.Sprintf("%s/v1/place?count=%d", srv.URL, k)), http.StatusOK)

	full := decode[StatsResponse](t, get(t, srv.URL+"/v1/stats"), http.StatusOK)
	var balls int64
	for s := 0; s < 7; s++ {
		row := decode[ShardStatsResponse](t,
			get(t, fmt.Sprintf("%s/v1/stats?shard=%d", srv.URL, s)), http.StatusOK)
		if row.Info.Protocol != "adaptive" {
			t.Fatalf("shard %d info: %+v", s, row.Info)
		}
		if row.Shard != full.Shards[s] {
			t.Fatalf("shard %d row %+v, full view row %+v", s, row.Shard, full.Shards[s])
		}
		// Quiescent agreement with the lock-all per-shard metrics: the
		// published row is exactly the shard's true state.
		m := d.Allocator().ShardMetrics(s)
		if row.Shard.MaxLoad != m.MaxLoad || row.Shard.MinLoad != m.MinLoad {
			t.Fatalf("shard %d row max/min %d/%d, ShardMetrics %d/%d",
				s, row.Shard.MaxLoad, row.Shard.MinLoad, m.MaxLoad, m.MinLoad)
		}
		balls += row.Shard.Balls
	}
	if balls != k {
		t.Fatalf("shard rows sum to %d balls, want %d", balls, k)
	}

	for _, bad := range []string{"?shard=-1", "?shard=7", "?shard=abc"} {
		resp := get(t, srv.URL+"/v1/stats"+bad)
		decode[map[string]string](t, resp, http.StatusBadRequest)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	_, srv := newTestServer(t, 16, 2)
	resp := get(t, srv.URL+"/healthz")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	decode[PlaceResponse](t, post(t, srv.URL+"/v1/place?count=10"), http.StatusOK)
	resp = get(t, srv.URL+"/metrics")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"bb_place_total 10",
		"bb_balls 10",
		"bb_max_load ",
		`bb_shard_balls{shard="0"}`,
		`bb_shard_balls{shard="1"}`,
		`bb_dispatch_latency_seconds{quantile="0.99"}`,
		"bb_dispatch_latency_seconds_count ",
		"bb_combining_factor ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestHTTPDrainDuringTraffic closes the dispatcher while HTTP clients
// hammer it: in-flight requests finish with 200, later ones get 503,
// healthz flips to 503, and accounting matches what clients saw.
func TestHTTPDrainDuringTraffic(t *testing.T) {
	d, srv := newTestServer(t, 64, 4)
	var accepted, refused int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(srv.URL+"/v1/place", "", nil)
				if err != nil {
					t.Errorf("POST during drain: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					accepted++
				case http.StatusServiceUnavailable:
					refused++
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				mu.Unlock()
				// Each worker keeps hammering until the drain turns it
				// away — so every in-flight request either completed
				// or was cleanly refused, never dropped.
				if resp.StatusCode == http.StatusServiceUnavailable {
					return
				}
			}
		}()
	}
	for {
		mu.Lock()
		n := accepted
		mu.Unlock()
		if n >= 50 {
			break
		}
		runtime.Gosched()
	}
	d.Close()
	wg.Wait()

	resp := get(t, srv.URL+"/healthz")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if got := d.Allocator().Balls(); got != accepted {
		t.Fatalf("allocator holds %d balls, clients saw %d accepted", got, accepted)
	}
	if refused == 0 {
		t.Fatal("no client observed 503 during drain")
	}
}
