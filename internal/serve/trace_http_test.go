package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	ballsbins "repro"
	"repro/internal/obs"
)

// newTracedTestServer is newTestServer with head-sampling forced on,
// so every HTTP request's op lands in the retained ring.
func newTracedTestServer(t *testing.T) (*Dispatcher, *httptest.Server) {
	t.Helper()
	d := NewDispatcher(Config{
		Spec: ballsbins.Adaptive(), N: 64, Shards: 1, Seed: 1,
		Obs: obs.Options{SampleEvery: 1},
	})
	srv := httptest.NewServer(NewHandler(d, Info{
		Protocol: "adaptive", N: 64, Shards: 1, Engine: "fast", Seed: 1,
	}))
	t.Cleanup(func() { srv.Close(); d.Close() })
	return d, srv
}

func postTraced(t *testing.T, url, trace string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.Header, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestHTTPAssembledTraceByID exercises GET /v1/trace/{id} on the serve
// tier: a traced place must come back as a one-hop assembled tree read
// from the local ring.
func TestHTTPAssembledTraceByID(t *testing.T) {
	_, srv := newTracedTestServer(t)

	const id = uint64(0xfeedbeef)
	hex := obs.FormatTrace(id)
	decode[PlaceResponse](t, postTraced(t, srv.URL+"/v1/place", hex), http.StatusOK)

	at := decode[obs.AssembledTraceResponse](t,
		get(t, srv.URL+"/v1/trace/"+hex), http.StatusOK)
	if at.Trace != hex {
		t.Fatalf("trace = %q, want %q", at.Trace, hex)
	}
	if len(at.Sources) != 1 || at.Sources[0] != "serve" {
		t.Fatalf("sources = %v, want [serve]", at.Sources)
	}
	if len(at.Ops) != 1 || at.Ops[0].Op != "place" || at.Ops[0].Hop != "serve" {
		t.Fatalf("ops = %+v, want one serve/place", at.Ops)
	}
	if at.Assembled == nil || len(at.Assembled.Roots) != 1 {
		t.Fatalf("assembled = %+v, want a single-root tree", at.Assembled)
	}
	root := at.Assembled.Roots[0]
	if root.Op.Op != "place" || len(root.Op.Spans) == 0 {
		t.Fatalf("root = %+v, want the place op with its stage spans", root.Op)
	}
}

// TestHTTPAssembledTraceUnknownAndMalformed pins the edge responses:
// an unrecorded id is an empty 200 document, a malformed id a 400.
func TestHTTPAssembledTraceUnknownAndMalformed(t *testing.T) {
	_, srv := newTracedTestServer(t)

	at := decode[obs.AssembledTraceResponse](t,
		get(t, srv.URL+"/v1/trace/"+obs.FormatTrace(0xdead)), http.StatusOK)
	if len(at.Ops) != 0 || at.Assembled != nil {
		t.Fatalf("unknown id returned ops=%v assembled=%v, want empty", at.Ops, at.Assembled)
	}

	decode[map[string]string](t,
		get(t, srv.URL+"/v1/trace/not-hex"), http.StatusBadRequest)
}
