package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	ballsbins "repro"
)

func newKeyedTestServer(t *testing.T, n, shards int) (*Dispatcher, *httptest.Server) {
	t.Helper()
	d := NewDispatcher(Config{Spec: ballsbins.Adaptive(), N: n, Shards: shards, Seed: 42})
	srv := httptest.NewServer(NewHandler(d, Info{Protocol: "adaptive", N: n, Shards: shards}))
	t.Cleanup(func() {
		srv.Close()
		d.Close()
	})
	return d, srv
}

// TestHTTPBulkPlaceWithKeyRejected is the PR's serve satellite: a
// bulk place carrying a key is refused with a 400 and a clear error
// body — before this contract, the bulk would silently round-robin
// across shards and scatter the key's balls.
func TestHTTPBulkPlaceWithKeyRejected(t *testing.T) {
	_, srv := newKeyedTestServer(t, 1024, 4)
	resp, err := http.Post(srv.URL+"/v1/place?count=8&key=user-1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bulk+key: status %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if !strings.Contains(body.Error, "key") || !strings.Contains(body.Error, "count=1") {
		t.Fatalf("error body does not explain the contract: %q", body.Error)
	}
	// count=1 with a key is fine (it is not a bulk).
	resp2, err := http.Post(srv.URL+"/v1/place?count=1&key=user-1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("count=1 with key: status %d, want 200", resp2.StatusCode)
	}
}

func TestHTTPKeyedPlaceRemoveRoundTrip(t *testing.T) {
	d, srv := newKeyedTestServer(t, 1024, 4)
	var pr PlaceResponse
	shardOf := func(bin int) int { return d.Allocator().ShardOf(bin) }

	place := func() PlaceResponse {
		resp, err := http.Post(srv.URL+"/v1/place?key=sess-9", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("keyed place: status %d", resp.StatusCode)
		}
		var pr PlaceResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	pr = place()
	if pr.Key != "sess-9" {
		t.Fatalf("response key %q, want sess-9", pr.Key)
	}
	shard := shardOf(pr.Bin)
	bins := []int{pr.Bin}
	for i := 0; i < 15; i++ {
		p := place()
		if shardOf(p.Bin) != shard {
			t.Fatalf("keyed placement left its shard: bin %d shard %d, want shard %d", p.Bin, shardOf(p.Bin), shard)
		}
		bins = append(bins, p.Bin)
	}
	ks := d.KeyedStats()
	if ks.AffinityHits != 15 || ks.AffinityMisses != 1 || ks.LiveBalls != 16 {
		t.Fatalf("keyed stats hits/misses/balls = %d/%d/%d, want 15/1/16", ks.AffinityHits, ks.AffinityMisses, ks.LiveBalls)
	}
	for _, bin := range bins {
		resp, err := http.Post(fmt.Sprintf("%s/v1/remove?bin=%d&key=sess-9", srv.URL, bin), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("keyed remove: status %d", resp.StatusCode)
		}
	}
	if got := d.KeyedStats().LiveBalls; got != 0 {
		t.Fatalf("live balls after removals: %d, want 0", got)
	}

	// The stats envelope carries the keyed block.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Keyed == nil || sr.Keyed.Keys != 1 || sr.Keyed.Bins != 4 {
		t.Fatalf("stats keyed block: %+v", sr.Keyed)
	}
}

// TestKeyedRefusedForThresholdFamily: shard-pinned placement would
// break the threshold family's per-shard horizon split (a pinned
// shard past its bound spins the combiner forever), so PlaceKeyed
// refuses those specs outright — and the HTTP layer surfaces it as a
// 400, not a hang.
func TestKeyedRefusedForThresholdFamily(t *testing.T) {
	for _, spec := range []ballsbins.Spec{
		ballsbins.Threshold(),
		ballsbins.FixedThreshold(4),
	} {
		d := NewDispatcher(Config{Spec: spec, N: 64, Shards: 2, Seed: 1, Horizon: 128})
		if _, _, err := d.PlaceKeyed(context.Background(), "k"); err != ErrKeyedUnsupported {
			t.Fatalf("%s: PlaceKeyed err = %v, want ErrKeyedUnsupported", spec.Name(), err)
		}
		srv := httptest.NewServer(NewHandler(d, Info{Protocol: spec.Name(), N: 64}))
		resp, err := http.Post(srv.URL+"/v1/place?key=k", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: keyed place status %d, want 400", spec.Name(), resp.StatusCode)
		}
		srv.Close()
		d.Close()
	}
	// BoundedRetry's sample cap terminates at any load: keyed is fine.
	d := NewDispatcher(Config{Spec: ballsbins.BoundedRetry(3), N: 64, Shards: 2, Seed: 1, Horizon: 128})
	defer d.Close()
	if _, _, err := d.PlaceKeyed(context.Background(), "k"); err != nil {
		t.Fatalf("boundedretry PlaceKeyed: %v", err)
	}
}

// TestDispatcherKeyedAffinityUnderConcurrency hammers keyed and
// anonymous traffic together under -race: every ball of a key must
// land in the key's shard, while anonymous traffic keeps
// round-robining.
func TestDispatcherKeyedAffinityUnderConcurrency(t *testing.T) {
	d := NewDispatcher(Config{Spec: ballsbins.Adaptive(), N: 4096, Shards: 4, Seed: 3})
	defer d.Close()
	ctx := context.Background()
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			key := fmt.Sprintf("worker-%d", g)
			want := -1
			for i := 0; i < 500; i++ {
				bin, _, err := d.PlaceKeyed(ctx, key)
				if err != nil {
					done <- err
					return
				}
				s := d.Allocator().ShardOf(bin)
				if want == -1 {
					want = s
				} else if s != want {
					done <- fmt.Errorf("key %s bounced shard %d -> %d", key, want, s)
					return
				}
				if err := d.RemoveKeyed(ctx, bin, key); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 500; i++ {
				if _, _, err := d.Place(ctx); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
