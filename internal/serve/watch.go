package serve

import (
	"strings"

	"repro/internal/watch"
)

// adaptiveFamily reports whether the spec's acceptance rule gives the
// paper's deterministic max-load bound ("adaptive", "adaptive-noslack"
// — the ⌈m/n⌉+1 family). Greedy/single/memory have no hard bound, and
// the threshold family's bound is already a fixed horizon; only the
// adaptive family is armed for live max-load checks.
func adaptiveFamily(name string) bool { return strings.HasPrefix(name, "adaptive") }

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Watch returns the dispatcher's invariant monitor (nil when
// Config.Watch.Disabled).
func (d *Dispatcher) Watch() *watch.Monitor { return d.watch }

// watchSample assembles one watchdog sample for the serve tier. Every
// check reads from a consistency domain that cannot tear mid-batch:
//
//   - serve_shard_max and serve_books evaluate each shard's published
//     stats row — an immutable post-batch observation taken under the
//     shard lock (see Stats), so a mid-batch read is impossible by
//     construction: rows only ever show completed batches.
//
//   - serve_global_max evaluates the lock-all MetricsWithBalls path —
//     max load and ball count from a single linearizable acquisition.
//     Its horizon m is the cumulative placement count (read after the
//     lock-all: placements are monotone, so a later read only loosens
//     the bound, never fabricates a breach).
//
//   - serve_keyed_max evaluates the keyed tier's block, assembled
//     entirely under the KeyMap mutex; the policy bound is computed
//     under that same hold (keyed.Stats.PolicyBound), so observed and
//     bound describe one instant. One unit of slack covers churn
//     residuals (a key assigned at a high replica count legitimately
//     outlives the count's decline — the same slack the keyed churn
//     tests allow).
func (d *Dispatcher) watchSample() watch.Sample {
	var s watch.Sample
	adaptive := adaptiveFamily(d.sa.Name())

	// Per-shard checks from the post-batch rows. The worst shard
	// carries the serve_shard_max check; books aggregate exactly.
	var worst watch.Check
	worst.Invariant = "serve_shard_max"
	var booksSkew int64
	var viewPlaced, viewRemoved, viewBalls int64
	var batches, reqs int64
	for shard := 0; shard < d.cfg.Shards; shard++ {
		row := d.stats.ShardRow(shard)
		viewPlaced += row.Placed
		viewRemoved += row.Removed
		viewBalls += row.Balls
		batches += row.Batches
		reqs += row.Requests
		if skew := row.Balls - (row.Placed - row.Removed); skew != 0 {
			if skew < 0 {
				skew = -skew
			}
			booksSkew += skew
		}
		if adaptive {
			bins := int64(d.sa.ShardSize(shard))
			bound := ceilDiv(row.Placed, bins) + 1
			if worst.Fields == nil || int64(row.MaxLoad)-bound > worst.Observed-worst.Bound {
				worst.Observed = int64(row.MaxLoad)
				worst.Bound = bound
				worst.Fields = map[string]int64{
					"shard": int64(shard), "balls": row.Balls,
					"placed": row.Placed, "bins": bins,
				}
			}
		}
	}
	if adaptive && worst.Fields != nil {
		s.Checks = append(s.Checks, worst)
	}
	s.Checks = append(s.Checks, watch.Check{
		Invariant: "serve_books",
		Observed:  booksSkew,
		Bound:     0,
		Fields: map[string]int64{
			"balls": viewBalls, "placed": viewPlaced, "removed": viewRemoved,
		},
	})

	// The lock-all linearizable pass: the Point's load numbers and the
	// global sharded-composition bound from one acquisition.
	metrics, balls := d.sa.MetricsWithBalls()
	ks := d.km.Stats()
	keyedTraffic := ks.AffinityHits+ks.AffinityMisses > 0
	if adaptive && !keyedTraffic {
		// The sharded bound ⌈⌈m/P⌉/⌊n/P⌋⌉+1 is built on round-robin
		// ticket evenness; keyed traffic pins balls to shards by key
		// popularity instead, so the global form is armed only while
		// all traffic is anonymous (the per-shard form above stays
		// armed either way — shard-local acceptance is unconditional).
		shards := int64(d.cfg.Shards)
		placed := d.sa.Placed() // monotone: read-after only loosens
		bound := ceilDiv(ceilDiv(placed, shards), int64(d.cfg.N)/shards) + 1
		s.Checks = append(s.Checks, watch.Check{
			Invariant: "serve_global_max",
			Observed:  int64(metrics.MaxLoad),
			Bound:     bound,
			Fields:    map[string]int64{"balls": balls, "placed": placed},
		})
	}
	if ks.PolicyBound > 0 {
		s.Checks = append(s.Checks, watch.Check{
			Invariant: "serve_keyed_max",
			Observed:  ks.MaxKeyLoad,
			Bound:     ks.PolicyBound + 1,
			Fields: map[string]int64{
				"keys": ks.Keys, "replicas": ks.Replicas,
				"healthy_shards": int64(ks.Healthy),
			},
		})
	}

	s.Point = watch.Point{
		Balls:           balls,
		Placed:          viewPlaced,
		Removed:         viewRemoved,
		MaxLoad:         metrics.MaxLoad,
		MinLoad:         metrics.MinLoad,
		Gap:             metrics.Gap,
		Psi:             metrics.Psi,
		AffinityHitRate: ks.AffinityHitRate,
	}
	if batches > 0 {
		s.Point.CombiningFactor = float64(reqs) / float64(batches)
	}
	if sum := d.obs.StageSummaries(); len(sum) > 0 {
		s.Point.StageP99Ns = make(map[string]int64, len(sum))
		for stage, v := range sum {
			s.Point.StageP99Ns[stage] = v.P99Ns
		}
	}
	return s
}
