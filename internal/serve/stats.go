package serve

import (
	"math"
	"sync/atomic"

	ballsbins "repro"
)

// Stats is the dispatcher's monitoring pipeline: after each batch the
// combiner publishes its shard's state — read while it still holds
// the shard lock — as one immutable row behind an atomic pointer, so
// every row a monitor reads is an internally consistent post-batch
// observation, and reading costs zero locks and never blocks traffic.
// Different shards' rows may still be a few batches apart in time (the
// same shard-at-a-time tradeoff as ballsbins.ApproxMetrics, which see;
// use Dispatcher.Allocator().Metrics() when a lock-all linearizable
// snapshot is worth stalling the shards for).
type Stats struct {
	shards []shardCell
}

// shardCell holds one shard's latest published row. Written only by
// the owning shard's combiner; read by anyone.
type shardCell struct {
	row atomic.Pointer[shardRow]
	_   [56]byte // one cache line per combiner
}

// shardRow is an immutable post-batch observation of one shard.
type shardRow struct {
	balls, placed, removed, samples, sumSq int64
	maxLoad, minLoad                       int
	batches, reqs                          int64
}

func newStats(shards int) *Stats {
	return &Stats{shards: make([]shardCell, shards)}
}

// publish refreshes shard s's row from its allocator. Called by the
// combiner with the shard lock held, batchReqs being the number of
// requests the batch just applied combined.
func (st *Stats) publish(s int, a *ballsbins.Allocator, batchReqs int) {
	prev := st.shards[s].row.Load()
	row := &shardRow{
		balls:   a.Balls(),
		placed:  a.Placed(),
		removed: a.Removed(),
		samples: a.Samples(),
		sumSq:   a.SumSquares(),
		maxLoad: a.MaxLoad(),
		minLoad: a.MinLoad(),
		batches: 1,
		reqs:    int64(batchReqs),
	}
	if prev != nil {
		row.batches += prev.batches
		row.reqs += prev.reqs
	}
	st.shards[s].row.Store(row)
}

// ShardStat is one shard's row in a StatsView.
type ShardStat struct {
	Shard   int   `json:"shard"`
	Balls   int64 `json:"balls"`
	Placed  int64 `json:"placed"`
	Removed int64 `json:"removed"`
	Samples int64 `json:"samples"`
	MaxLoad int   `json:"max_load"`
	MinLoad int   `json:"min_load"`
	// Batches and Requests count combiner passes and the requests they
	// carried; Requests/Batches is the achieved combining factor.
	Batches  int64 `json:"batches"`
	Requests int64 `json:"requests"`
}

// StatsView is a monitoring snapshot assembled from the per-shard
// rows (see Stats for its consistency contract).
type StatsView struct {
	Balls   int64 `json:"balls"`
	Placed  int64 `json:"placed"`
	Removed int64 `json:"removed"`
	Samples int64 `json:"samples"`
	MaxLoad int   `json:"max_load"`
	MinLoad int   `json:"min_load"`
	Gap     int   `json:"gap"`
	// Psi is the quadratic potential combined exactly from the shard
	// rows (Σ sumSq − t²/n over the rows as read).
	Psi float64 `json:"psi"`
	// SamplesPerBall is cumulative samples over cumulative placements.
	SamplesPerBall float64 `json:"samples_per_ball"`
	// CombiningFactor is total requests over total combiner batches —
	// 1.0 means no combining is happening, higher means each lock
	// acquisition is amortized over that many requests.
	CombiningFactor float64     `json:"combining_factor"`
	Shards          []ShardStat `json:"shards"`
}

// ShardRow returns shard s's latest published row alone — the cheap
// single-shard read behind GET /v1/stats?shard= (one atomic load, no
// full-view assembly).
func (st *Stats) ShardRow(s int) ShardStat {
	g := st.shards[s].row.Load()
	if g == nil {
		g = &shardRow{} // no batch published yet: empty shard
	}
	return toShardStat(s, g)
}

func toShardStat(s int, g *shardRow) ShardStat {
	return ShardStat{
		Shard:    s,
		Balls:    g.balls,
		Placed:   g.placed,
		Removed:  g.removed,
		Samples:  g.samples,
		MaxLoad:  g.maxLoad,
		MinLoad:  g.minLoad,
		Batches:  g.batches,
		Requests: g.reqs,
	}
}

// View assembles a StatsView for n total bins.
func (st *Stats) View(n int) StatsView {
	v := StatsView{MinLoad: math.MaxInt}
	var sumSq, batches, reqs int64
	for s := range st.shards {
		g := st.shards[s].row.Load()
		if g == nil {
			g = &shardRow{} // no batch published yet: empty shard
		}
		v.Shards = append(v.Shards, toShardStat(s, g))
		v.Balls += g.balls
		v.Placed += g.placed
		v.Removed += g.removed
		v.Samples += g.samples
		sumSq += g.sumSq
		batches += g.batches
		reqs += g.reqs
		if g.maxLoad > v.MaxLoad {
			v.MaxLoad = g.maxLoad
		}
		if g.minLoad < v.MinLoad {
			v.MinLoad = g.minLoad
		}
	}
	if v.MinLoad == math.MaxInt {
		v.MinLoad = 0
	}
	v.Gap = v.MaxLoad - v.MinLoad
	t := float64(v.Balls)
	v.Psi = float64(sumSq) - t*t/float64(n)
	if v.Placed > 0 {
		v.SamplesPerBall = float64(v.Samples) / float64(v.Placed)
	}
	if batches > 0 {
		v.CombiningFactor = float64(reqs) / float64(batches)
	}
	return v
}

// Stats returns the dispatcher's current monitoring view.
func (d *Dispatcher) Stats() StatsView { return d.stats.View(d.cfg.N) }

// ShardStats returns shard s's row of the monitoring view.
func (d *Dispatcher) ShardStats(s int) ShardStat { return d.stats.ShardRow(s) }
