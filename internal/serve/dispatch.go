// Package serve is the network-serving layer over the ballsbins
// allocator core: an arrival-combining dispatcher that turns many
// concurrent Place/Remove callers into amortized batched work against
// a ShardedAllocator, a lock-free stats pipeline for monitoring reads,
// and the HTTP handlers cmd/bbserved mounts.
//
// # Dispatch core
//
// Each shard of the underlying ShardedAllocator gets a bounded arrival
// queue and one combiner goroutine. A caller's Place round-robins a
// ticket (the allocator's own cursor, so dispatcher traffic and direct
// allocator traffic share one arrival order), enqueues a request on
// the ticketed shard's queue and waits; the combiner drains whatever
// requests have accumulated — up to MaxBatch — and applies them under
// a single shard-lock acquisition via WithShardLocked. Under
// concurrency the mutex is therefore taken O(batches) times rather
// than O(requests), and each acquisition does O(1) amortized work per
// ball (the Session fast path), which is what lets lock traffic fall
// as load rises instead of growing with it. With a single caller every
// batch has size one and the dispatcher degenerates to a plain locked
// call — combining costs nothing when there is nothing to combine.
//
// Admission is the commit point: ctx is consulted once, before any
// round-robin ticket is claimed; a call past admission executes in
// full even if the caller's context is cancelled while it waits, and
// Close drains all admitted work before stopping. So a caller that
// got a bin really owns a ball, a caller that got an error knows
// nothing happened, and the per-shard evenness of the ticket cursor
// (which the sharded max-load bound is built on) can never be skewed
// by abandoned operations.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ballsbins "repro"
	"repro/internal/diag"
	"repro/internal/hdrhist"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/watch"
)

// ErrDraining is returned by Place/Remove once Close has begun: the
// dispatcher no longer accepts new arrivals (it is draining the ones
// already enqueued).
var ErrDraining = errors.New("serve: dispatcher draining")

// ErrEmptyBin is returned by Remove when the target bin holds no
// balls at execution time.
var ErrEmptyBin = errors.New("serve: remove from empty bin")

// ErrKeyedUnsupported is returned by PlaceKeyed for specs whose
// termination relies on round-robin shard evenness: the threshold
// family splits its horizon per shard as ceil(m/P) and FixedThreshold
// carries an absolute bound, so pinning a popular key's balls to one
// shard could push that shard past its acceptance bound and spin its
// combiner forever. Keyed traffic needs a fully online spec (the
// adaptive family, greedy, single, ...), whose acceptance bound
// tracks the shard's own load.
var ErrKeyedUnsupported = errors.New(
	"serve: spec cannot serve keyed traffic (shard-pinned placement would break its per-shard acceptance bound); use an online spec such as adaptive")

const (
	// DefaultQueueDepth bounds each shard's arrival queue; beyond it,
	// enqueues block (backpressure) rather than buffer without limit.
	DefaultQueueDepth = 1024
	// DefaultMaxBatch caps how many requests one combiner pass applies
	// under a single lock acquisition.
	DefaultMaxBatch = 256
)

// Config describes a dispatcher. Spec and N are required.
type Config struct {
	Spec   ballsbins.Spec
	N      int // total bins
	Shards int // default 1
	Seed   uint64
	Engine ballsbins.Engine
	// Horizon forwards ballsbins.WithHorizon for specs that need the
	// total ball count (threshold family).
	Horizon int64
	// QueueDepth and MaxBatch default to DefaultQueueDepth and
	// DefaultMaxBatch when zero.
	QueueDepth int
	MaxBatch   int
	// Keyed tunes the keyed placement tier (internal/keyed) mapping
	// keys to shards; Bins and, when zero, Policy (adaptive) and Seed
	// (derived from Seed) are filled in by the dispatcher. nil uses
	// all defaults.
	Keyed *keyed.Config
	// KeyedStore, when non-nil, persists the keyed tier to a WAL
	// directory (see keyed.OpenStore): OpenDispatcher recovers the
	// exact pre-crash key→shard assignment before returning, and
	// Close writes a final compacting snapshot.
	KeyedStore *keyed.StoreOptions
	// Obs tunes the observability recorder behind /v1/trace and the
	// bb_stage_* series (hop defaults to "serve"); zero values take the
	// obs defaults. Set Obs.Disabled to run without recording.
	Obs obs.Options
	// Watch tunes the invariant watchdog + time-series collector behind
	// /v1/events and /v1/timeseries (see internal/watch); zero values
	// take the watch defaults. Set Watch.Disabled to run without one.
	Watch watch.Options
}

type opKind uint8

const (
	opPlace opKind = iota
	opRemove
)

// request is one enqueued operation. The combiner fills the result
// fields, then closes done; the enqueuer owns the request until the
// channel send succeeds and reads results only after <-done.
type request struct {
	op    opKind
	count int   // balls to place (opPlace, ≥ 1)
	bin   int   // remove target (opRemove)
	bins  []int // assigned bins (opPlace), len == count
	// samples is the number of random bin choices the operation
	// consumed; err reports per-request failure (ErrEmptyBin).
	samples int64
	err     error
	t0      time.Time // enqueue time, for the dispatch-latency histogram
	// cap accumulates the request's queue/apply spans. A value field:
	// the request is heap-allocated anyway, so the untraced path pays
	// no extra allocation for it.
	cap  obs.Capture
	done chan struct{}
}

// Dispatcher is the arrival-combining front-end. Construct with
// NewDispatcher; all methods are safe for concurrent use.
type Dispatcher struct {
	sa      *ballsbins.ShardedAllocator
	cfg     Config
	queues  []chan *request
	stats   *Stats
	km      *keyed.KeyMap                 // key → shard affinity (keyed placements)
	store   *keyed.Store                  // nil unless Config.KeyedStore was set
	keyedOK bool                          // spec terminates under shard-pinned traffic
	latency *hdrhist.Hist                 // enqueue → completion, per request
	obs     *obs.Recorder                 // stage decomposition + slow-op ring (nilable)
	watch   *watch.Monitor                // invariant watchdog + time series (nilable)
	diag    atomic.Pointer[diag.Recorder] // flight recorder, bound late (nilable)
	// drainMu is held shared for the span of every enqueue and
	// exclusively by Close between setting draining and closing the
	// queues, so no send can race a close. (A WaitGroup would not do:
	// its counter legally hits zero mid-drain while admitted callers
	// keep arriving, and Add-from-zero concurrent with Wait panics.)
	drainMu  sync.RWMutex
	workers  sync.WaitGroup
	draining atomic.Bool
	closed   chan struct{} // closed when every combiner has exited
}

// NewDispatcher builds the sharded allocator and starts one combiner
// goroutine per shard. It panics on invalid Config (same rules as
// ballsbins.NewSharded) and on durability I/O errors — callers that
// can handle those use OpenDispatcher.
func NewDispatcher(cfg Config) *Dispatcher {
	d, _, err := OpenDispatcher(cfg)
	if err != nil {
		panic("serve: " + err.Error())
	}
	return d
}

// OpenDispatcher is NewDispatcher with the durability path surfaced:
// when cfg.KeyedStore is set, the keyed tier is recovered from its
// WAL directory before the dispatcher accepts traffic, and the
// returned RecoveryInfo says what was rebuilt (nil without a store).
// I/O failures return an error instead of panicking.
func OpenDispatcher(cfg Config) (*Dispatcher, *keyed.RecoveryInfo, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	opts := []ballsbins.Option{
		ballsbins.WithSeed(cfg.Seed),
		ballsbins.WithEngine(cfg.Engine),
	}
	if cfg.Horizon > 0 {
		opts = append(opts, ballsbins.WithHorizon(cfg.Horizon))
	}
	kc := keyed.Config{}
	if cfg.Keyed != nil {
		kc = *cfg.Keyed
	}
	kc.Bins = cfg.Shards
	if kc.Seed == 0 {
		// Decoupled from the allocator's shard streams so keyed probe
		// sequences cannot correlate with placement draws.
		kc.Seed = rng.Mix(cfg.Seed, 0x6b657965642f7372)
	}
	var km *keyed.KeyMap
	var store *keyed.Store
	var rec *keyed.RecoveryInfo
	if cfg.KeyedStore != nil {
		var err error
		store, rec, err = keyed.OpenStore(kc, *cfg.KeyedStore)
		if err != nil {
			return nil, nil, err
		}
		km = store.M
	} else {
		km = keyed.New(kc)
	}
	obsOpts := cfg.Obs
	if obsOpts.Hop == "" {
		obsOpts.Hop = "serve"
	}
	d := &Dispatcher{
		sa:      ballsbins.NewSharded(cfg.Spec, cfg.N, cfg.Shards, opts...),
		cfg:     cfg,
		queues:  make([]chan *request, cfg.Shards),
		stats:   newStats(cfg.Shards),
		km:      km,
		store:   store,
		latency: hdrhist.New(),
		obs:     obs.NewRecorder(obsOpts),
		closed:  make(chan struct{}),
	}
	// Threshold-family and fixed-bound specs reject keyed traffic (see
	// ErrKeyedUnsupported); "threshold-retry" (BoundedRetry) is safe —
	// its sample cap guarantees termination at any shard load.
	name := d.sa.Name()
	d.keyedOK = !(strings.HasPrefix(name, "fixed[") ||
		(strings.HasPrefix(name, "threshold") && !strings.HasPrefix(name, "threshold-retry")))
	for s := range d.queues {
		d.queues[s] = make(chan *request, cfg.QueueDepth)
		d.workers.Add(1)
		go d.combine(s)
	}
	go func() {
		d.workers.Wait()
		close(d.closed)
	}()
	d.watch = watch.New("serve", cfg.Watch, d.watchSample)
	if rec != nil {
		d.watch.Record(watch.EventRecovery, "keyed tier recovered from store", map[string]int64{
			"snapshot_keys":    rec.SnapshotKeys,
			"replayed_records": rec.ReplayedRecords,
			"replay_ms":        rec.ReplayMs,
		})
	}
	d.watch.Start()
	return d, rec, nil
}

// Allocator exposes the underlying ShardedAllocator for consistent
// lock-all reads (Metrics, Snapshot, Loads). Do not place or remove
// through it while the dispatcher is live — that would bypass the
// stats pipeline (the allocator itself stays correct either way).
func (d *Dispatcher) Allocator() *ballsbins.ShardedAllocator { return d.sa }

// N returns the total number of bins.
func (d *Dispatcher) N() int { return d.cfg.N }

// Shards returns the shard count.
func (d *Dispatcher) Shards() int { return d.cfg.Shards }

// Name returns the protocol's identifier.
func (d *Dispatcher) Name() string { return d.sa.Name() }

// Place allocates one ball and returns its global bin together with
// the number of random bin choices consumed. ctx is checked at
// admission only: a nil error past that point means the placement is
// committed, and Place blocks through any queue backpressure until
// its result is ready. (This is the allocation-free single-ball hot
// path — one ticket, one request, no per-shard planning.)
func (d *Dispatcher) Place(ctx context.Context) (bin int, samples int64, err error) {
	if err := d.admit(); err != nil {
		return 0, 0, err
	}
	defer d.drainMu.RUnlock()
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	req := &request{op: opPlace, count: 1, t0: time.Now(), done: make(chan struct{})}
	req.cap = d.obs.BeginAt(obs.TraceFrom(ctx), "place", req.t0)
	d.queues[d.sa.NextShard()] <- req
	<-req.done
	return req.bins[0], req.samples, nil
}

// PlaceKeyed allocates one ball for key. Instead of claiming a
// round-robin ticket, the ball is ticketed to the key's shard (the
// keyed tier's sticky affinity: internal/keyed assigns each key a
// shard under the keyed policy's bounded-load rule, and repeat
// traffic costs zero probes), so all of a key's balls share one
// shard's locality. Keyed traffic therefore skews per-shard ball
// counts by key popularity — bounded at the key level by the keyed
// policy, and at the traffic level by hot-key splitting — rather
// than obeying the round-robin evenness of anonymous placements.
// Admission and commit semantics are exactly Place's.
func (d *Dispatcher) PlaceKeyed(ctx context.Context, key string) (bin int, samples int64, err error) {
	if key == "" {
		return d.Place(ctx)
	}
	if !d.keyedOK {
		return 0, 0, ErrKeyedUnsupported
	}
	if err := d.admit(); err != nil {
		return 0, 0, err
	}
	defer d.drainMu.RUnlock()
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	shard, probes, hit, err := d.km.Route(key)
	if err != nil {
		return 0, 0, err // unreachable: serve shards never leave rotation
	}
	req := &request{op: opPlace, count: 1, t0: time.Now(), done: make(chan struct{})}
	req.cap = d.obs.BeginAt(obs.TraceFrom(ctx), "place", req.t0)
	req.cap.Attr("key_probes", int64(probes))
	if hit {
		req.cap.Attr("key_hit", 1)
	}
	d.queues[shard] <- req
	<-req.done
	return req.bins[0], req.samples, nil
}

// RemoveKeyed is Remove plus keyed bookkeeping: a successful removal
// releases one of key's balls from the bin's shard, so the keyed
// tier's live-ball accounting (idle eviction, hot-replica balancing)
// tracks departures.
func (d *Dispatcher) RemoveKeyed(ctx context.Context, bin int, key string) error {
	err := d.Remove(ctx, bin)
	if err == nil && key != "" {
		d.km.Release(key, d.sa.ShardOf(bin))
	}
	return err
}

// KeyedStats returns the keyed tier's monitoring block.
func (d *Dispatcher) KeyedStats() keyed.Stats { return d.km.Stats() }

// Durability returns the keyed tier's durability block, nil when the
// dispatcher runs without a store.
func (d *Dispatcher) Durability() *keyed.DurabilityStats {
	if d.store == nil {
		return nil
	}
	ds := d.store.Durability()
	return &ds
}

// PlaceMany allocates count balls spread round-robin over the shards
// (claiming count tickets at once) and returns their global bins in
// assignment order, plus the total random choices consumed. A bulk
// arrival is combined per shard: all balls ticketed to one shard are
// placed under one lock acquisition, together with whatever other
// requests the combiner has pending.
//
// ctx is checked at admission, before any ticket is claimed; past
// that point the whole bulk is committed and PlaceMany blocks until
// every ball is placed. (Aborting mid-bulk would leave already-
// claimed tickets without balls, skewing the per-shard evenness the
// max-load bound is built on — so there is deliberately no early
// exit.)
func (d *Dispatcher) PlaceMany(ctx context.Context, count int) ([]int, int64, error) {
	if count < 1 {
		return nil, 0, fmt.Errorf("serve: PlaceMany count %d < 1", count)
	}
	if err := d.admit(); err != nil {
		return nil, 0, err
	}
	defer d.drainMu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	counts := d.sa.NextShardBatch(int64(count))
	trace := obs.TraceFrom(ctx)
	reqs := make([]*request, 0, min(count, d.cfg.Shards))
	for s, c := range counts {
		if c == 0 {
			continue
		}
		req := &request{op: opPlace, count: int(c), t0: time.Now(), done: make(chan struct{})}
		// One capture per shard chunk, sharing the bulk's trace id —
		// a traced bulk shows how its chunks fanned out.
		req.cap = d.obs.BeginAt(trace, "place", req.t0)
		req.cap.Attr("bulk", int64(count))
		d.queues[s] <- req
		reqs = append(reqs, req)
	}
	var bins []int
	var samples int64
	for _, r := range reqs {
		<-r.done
		bins = append(bins, r.bins...)
		samples += r.samples
	}
	return bins, samples, nil
}

// Remove takes one ball out of global bin. It returns ErrEmptyBin if
// the bin holds no ball when the combiner executes the request, and an
// error for out-of-range bins. Like Place, ctx is checked at
// admission only; past that the removal is committed.
func (d *Dispatcher) Remove(ctx context.Context, bin int) error {
	if bin < 0 || bin >= d.cfg.N {
		return fmt.Errorf("serve: bin %d outside [0,%d)", bin, d.cfg.N)
	}
	if err := d.admit(); err != nil {
		return err
	}
	defer d.drainMu.RUnlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	req := &request{op: opRemove, bin: bin, t0: time.Now(), done: make(chan struct{})}
	req.cap = d.obs.BeginAt(obs.TraceFrom(ctx), "remove", req.t0)
	d.queues[d.sa.ShardOf(bin)] <- req
	<-req.done
	return req.err
}

// admit takes the shared drain lock for an enqueue (the caller
// releases it once its requests are on their queues) unless the
// dispatcher is draining. Close sets draining before taking the lock
// exclusively, so either we see the flag and back out, or Close waits
// for our queue sends to finish before closing any queue.
func (d *Dispatcher) admit() error {
	d.drainMu.RLock()
	if d.draining.Load() {
		d.drainMu.RUnlock()
		return ErrDraining
	}
	return nil
}

// Draining reports whether Close has begun.
func (d *Dispatcher) Draining() bool { return d.draining.Load() }

// Close drains the dispatcher: new arrivals are refused with
// ErrDraining, every already-enqueued request is executed and its
// caller released, then the combiners exit. With a keyed store, the
// drained state is sealed with a final compacting snapshot — a
// TERM/restart cycle loses zero assignments. Close blocks until the
// drain completes and is idempotent.
func (d *Dispatcher) Close() {
	if d.draining.CompareAndSwap(false, true) {
		d.watch.Record(watch.EventDrain, "dispatcher draining", nil)
		d.drainMu.Lock() // every admitted enqueue has reached its queue
		for _, q := range d.queues {
			close(q)
		}
		d.drainMu.Unlock()
	}
	<-d.closed
	d.watch.Close()
	if d.store != nil {
		d.store.Close()
	}
}

// combine is shard s's combiner loop: block for one request, then
// opportunistically drain whatever else has arrived (up to MaxBatch)
// and apply the whole batch under one shard-lock acquisition.
func (d *Dispatcher) combine(s int) {
	defer d.workers.Done()
	q := d.queues[s]
	batch := make([]*request, 0, d.cfg.MaxBatch)
	for {
		req, ok := <-q
		if !ok {
			return
		}
		batch = append(batch[:0], req)
	fill:
		for len(batch) < d.cfg.MaxBatch {
			select {
			case r, ok := <-q:
				if !ok {
					// Queue closed and empty: apply what we have,
					// then exit.
					d.apply(s, batch)
					return
				}
				batch = append(batch, r)
			default:
				break fill
			}
		}
		d.apply(s, batch)
	}
}

// apply executes one combined batch under a single lock acquisition
// and publishes fresh per-shard stats while the lock is still held (so
// the stats snapshot is exactly the post-batch shard state).
func (d *Dispatcher) apply(s int, batch []*request) {
	applyStart := time.Now()
	d.sa.WithShardLocked(s, func(a *ballsbins.Allocator, base int) {
		for _, r := range batch {
			switch r.op {
			case opPlace:
				r.bins = make([]int, r.count)
				for i := range r.bins {
					local, smp := a.Place()
					r.bins[i] = base + local
					r.samples += smp
				}
			case opRemove:
				local := r.bin - base
				if a.Load(local) == 0 {
					r.err = ErrEmptyBin
					continue
				}
				a.Remove(local)
			}
		}
		d.stats.publish(s, a, len(batch))
	})
	// One clock read closes the whole batch: queue is enqueue→apply
	// start (lock wait included in apply), so the two stages sum
	// exactly to the op total the capture ends with.
	end := time.Now()
	for _, r := range batch {
		d.latency.Record(end.Sub(r.t0).Nanoseconds())
		r.cap.StageAt("queue", r.t0, applyStart)
		r.cap.StageAt("apply", applyStart, end)
		r.cap.Attr("batch", int64(len(batch)))
		r.cap.EndAt(end, r.err)
		close(r.done)
	}
}

// Latency returns a snapshot of the dispatch-latency histogram: the
// time from a request's enqueue to its completion, covering queueing
// delay plus its share of the combined batch.
func (d *Dispatcher) Latency() hdrhist.Snapshot { return d.latency.Snapshot() }

// Obs returns the dispatcher's observability recorder (nil when
// Config.Obs.Disabled).
func (d *Dispatcher) Obs() *obs.Recorder { return d.obs }

// BindDiag attaches the flight recorder (built late by the daemon,
// since its capture closures need the assembled stats surface) and
// wires it to the watchdog's violation hook.
func (d *Dispatcher) BindDiag(rec *diag.Recorder) {
	if rec == nil {
		return
	}
	d.diag.Store(rec)
	d.watch.OnViolation(rec.OnViolation)
}

// Diag returns the bound flight recorder (nil when diagnostics are
// off).
func (d *Dispatcher) Diag() *diag.Recorder { return d.diag.Load() }
