package serve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	ballsbins "repro"
)

func newTestDispatcher(t *testing.T, n, shards int) *Dispatcher {
	t.Helper()
	d := NewDispatcher(Config{
		Spec:   ballsbins.Adaptive(),
		N:      n,
		Shards: shards,
		Seed:   1,
	})
	t.Cleanup(d.Close)
	return d
}

func TestDispatcherPlaceRemove(t *testing.T) {
	d := newTestDispatcher(t, 64, 4)
	ctx := context.Background()

	bin, samples, err := d.Place(ctx)
	if err != nil || bin < 0 || bin >= 64 || samples < 1 {
		t.Fatalf("Place = (%d, %d, %v)", bin, samples, err)
	}
	if err := d.Remove(ctx, bin); err != nil {
		t.Fatalf("Remove(%d) = %v", bin, err)
	}
	if err := d.Remove(ctx, bin); err != ErrEmptyBin {
		t.Fatalf("Remove from empty bin = %v, want ErrEmptyBin", err)
	}
	if err := d.Remove(ctx, -1); err == nil {
		t.Fatal("Remove(-1) accepted")
	}
	if err := d.Remove(ctx, 64); err == nil {
		t.Fatal("Remove(64) accepted")
	}
	if _, _, err := d.PlaceMany(ctx, 0); err == nil {
		t.Fatal("PlaceMany(0) accepted")
	}
}

func TestDispatcherPlaceMany(t *testing.T) {
	const n, shards, k = 60, 7, 100
	d := newTestDispatcher(t, n, shards)
	bins, samples, err := d.PlaceMany(context.Background(), k)
	if err != nil {
		t.Fatalf("PlaceMany: %v", err)
	}
	if len(bins) != k || samples < k {
		t.Fatalf("PlaceMany returned %d bins, %d samples", len(bins), samples)
	}
	for _, b := range bins {
		if b < 0 || b >= n {
			t.Fatalf("bin %d out of range", b)
		}
	}
	sa := d.Allocator()
	if sa.Balls() != k || sa.Samples() != samples {
		t.Fatalf("allocator holds %d balls / %d samples, want %d / %d",
			sa.Balls(), sa.Samples(), k, samples)
	}
	// Round-robin ticketing spreads a bulk arrival evenly: per-shard
	// ball counts stay within one of each other.
	minB, maxB := int64(1<<62), int64(0)
	for s := 0; s < shards; s++ {
		var balls int64
		sa.WithShardLocked(s, func(a *ballsbins.Allocator, base int) { balls = a.Balls() })
		if balls < minB {
			minB = balls
		}
		if balls > maxB {
			maxB = balls
		}
	}
	if maxB-minB > 1 {
		t.Fatalf("bulk placement skewed shards: min %d max %d", minB, maxB)
	}
}

// TestDispatcherCombines drives the dispatcher with enough concurrency
// that batches form, then checks the stats pipeline observed a
// combining factor above 1 and exact operation counts.
func TestDispatcherCombines(t *testing.T) {
	const n, workers, perWorker = 32, 16, 200
	d := newTestDispatcher(t, n, 1) // one shard: every request shares a queue
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, _, err := d.Place(ctx); err != nil {
					t.Errorf("Place: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v := d.Stats()
	if v.Placed != workers*perWorker || v.Balls != workers*perWorker {
		t.Fatalf("stats placed/balls = %d/%d, want %d", v.Placed, v.Balls, workers*perWorker)
	}
	if v.Shards[0].Requests != workers*perWorker {
		t.Fatalf("stats requests = %d, want %d", v.Shards[0].Requests, workers*perWorker)
	}
	if v.CombiningFactor < 1 {
		t.Fatalf("combining factor %v < 1", v.CombiningFactor)
	}
	if lat := d.Latency(); lat.Count != workers*perWorker {
		t.Fatalf("latency histogram recorded %d ops, want %d", lat.Count, workers*perWorker)
	}
	t.Logf("combining factor with %d workers: %.2f", workers, v.CombiningFactor)
}

// TestDispatcherHammer is the -race acceptance test for the dispatch
// core: mixed concurrent Place/PlaceMany/Remove plus monitoring reads,
// then exact bookkeeping and the sharded adaptive max-load bound
// ⌈⌈m/P⌉/⌊n/P⌋⌉ + 1 on the cumulative placements m (live load only
// ever being smaller, the bound holds a fortiori under churn).
func TestDispatcherHammer(t *testing.T) {
	const n, shards, workers, perWorker = 128, 8, 12, 600
	d := newTestDispatcher(t, n, shards)
	ctx := context.Background()
	var placed, removed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int
			for i := 0; i < perWorker; i++ {
				switch {
				case w%3 == 0 && i%5 == 4: // occasional small bulk
					bins, _, err := d.PlaceMany(ctx, 3)
					if err != nil {
						t.Errorf("PlaceMany: %v", err)
						return
					}
					mine = append(mine, bins...)
					placed.Add(int64(len(bins)))
				default:
					bin, _, err := d.Place(ctx)
					if err != nil {
						t.Errorf("Place: %v", err)
						return
					}
					mine = append(mine, bin)
					placed.Add(1)
				}
				if i%3 == 2 { // churn the oldest of our live balls
					if err := d.Remove(ctx, mine[0]); err != nil {
						t.Errorf("Remove(%d): %v", mine[0], err)
						return
					}
					mine = mine[1:]
					removed.Add(1)
				}
				if i%64 == 0 {
					_ = d.Stats()   // lock-free monitoring read under fire
					_ = d.Latency() // histogram read under fire
				}
			}
		}(w)
	}
	wg.Wait()

	sa := d.Allocator()
	if sa.Placed() != placed.Load() {
		t.Fatalf("Placed() = %d want %d", sa.Placed(), placed.Load())
	}
	if want := placed.Load() - removed.Load(); sa.Balls() != want {
		t.Fatalf("Balls() = %d want %d", sa.Balls(), want)
	}
	var sum int64
	for _, l := range sa.Loads() {
		sum += int64(l)
	}
	if sum != sa.Balls() {
		t.Fatalf("loads sum %d != Balls %d", sum, sa.Balls())
	}
	ceil := func(a, b int64) int64 { return (a + b - 1) / b }
	bound := ceil(ceil(placed.Load(), shards), n/shards) + 1
	if got := int64(sa.MaxLoad()); got > bound {
		t.Fatalf("max load %d beyond sharded adaptive bound %d", sa.MaxLoad(), bound)
	}
	// The eventually-consistent stats converge exactly at quiescence.
	v := d.Stats()
	if v.Placed != placed.Load() || v.Balls != sa.Balls() || v.Removed != removed.Load() {
		t.Fatalf("quiescent stats diverge: %+v", v)
	}
	if v.MaxLoad != sa.MaxLoad() || v.Psi != sa.Psi() {
		t.Fatalf("quiescent stats max/psi = %d/%v, allocator %d/%v",
			v.MaxLoad, v.Psi, sa.MaxLoad(), sa.Psi())
	}
}

// TestDispatcherDrain closes the dispatcher while traffic is in
// flight: every accepted request must complete, every refused request
// must report ErrDraining, and the books must balance exactly.
func TestDispatcherDrain(t *testing.T) {
	const n, shards, workers = 64, 4, 8
	d := NewDispatcher(Config{Spec: ballsbins.Adaptive(), N: n, Shards: shards, Seed: 3})
	ctx := context.Background()
	var accepted, refused atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				_, _, err := d.Place(ctx)
				switch err {
				case nil:
					accepted.Add(1)
				case ErrDraining:
					refused.Add(1)
					return
				default:
					t.Errorf("Place during drain: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	for accepted.Load() < 500 { // let traffic build before pulling the plug
		runtime.Gosched()
	}
	d.Close()
	wg.Wait()
	if refused.Load() != workers {
		t.Fatalf("refused %d workers, want %d", refused.Load(), workers)
	}
	if got := d.Allocator().Balls(); got != accepted.Load() {
		t.Fatalf("allocator holds %d balls, callers saw %d accepted", got, accepted.Load())
	}
	// Close is idempotent, and post-close traffic is refused.
	d.Close()
	if _, _, err := d.Place(ctx); err != ErrDraining {
		t.Fatalf("Place after Close = %v", err)
	}
	if err := d.Remove(ctx, 0); err != ErrDraining {
		t.Fatalf("Remove after Close = %v", err)
	}
}

// TestDispatcherThresholdHorizon checks the horizon plumbing: a
// threshold-family dispatcher must absorb its full declared horizon.
func TestDispatcherThresholdHorizon(t *testing.T) {
	const n, shards, m = 10, 3, 60
	d := NewDispatcher(Config{
		Spec: ballsbins.Threshold(), N: n, Shards: shards, Seed: 2, Horizon: m,
	})
	defer d.Close()
	bins, _, err := d.PlaceMany(context.Background(), m)
	if err != nil || len(bins) != m {
		t.Fatalf("PlaceMany(%d) = %d bins, %v", m, len(bins), err)
	}
}
