package serve

import (
	"context"
	"testing"

	ballsbins "repro"
	"repro/internal/diag"
	"repro/internal/obs"
)

// benchDispatcher builds the headline single-shard core used by the
// obs-overhead comparison; the allocator itself is O(1) per place, so
// the dispatcher/combiner path dominates and any tracing cost shows.
func benchDispatcher(b *testing.B, o obs.Options) *Dispatcher {
	b.Helper()
	d := NewDispatcher(Config{
		Spec:   ballsbins.Adaptive(),
		N:      1 << 16,
		Shards: 1,
		Seed:   1,
		Obs:    o,
	})
	b.Cleanup(d.Close)
	return d
}

func benchPlace(b *testing.B, d *Dispatcher) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := d.PlaceMany(ctx, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDispatcherPlace measures the combined dispatch path with
// observability off, on-but-untraced (the production default: every op
// feeds the stage histograms, ~1/1024 is materialized into the ring),
// and fully sampled (every op materialized — the worst case, used by
// tests and smoke jobs, not production). The ≤2% untraced-overhead
// gate compares obs=untraced against obs=off.
func BenchmarkDispatcherPlace(b *testing.B) {
	b.Run("obs=off", func(b *testing.B) {
		benchPlace(b, benchDispatcher(b, obs.Options{Disabled: true}))
	})
	b.Run("obs=untraced", func(b *testing.B) {
		benchPlace(b, benchDispatcher(b, obs.Options{}))
	})
	b.Run("obs=sampled", func(b *testing.B) {
		benchPlace(b, benchDispatcher(b, obs.Options{SampleEvery: 1}))
	})
	// The flight recorder is passive until something goes wrong:
	// arming it binds one atomic pointer and a violation hook, nothing
	// per-place, so this mode must match obs=untraced within noise
	// (the ≤2% diag-armed gate, BENCH_diag_<date>.json).
	b.Run("diag=armed", func(b *testing.B) {
		d := benchDispatcher(b, obs.Options{})
		rec, err := diag.New(diag.Options{Dir: b.TempDir(), Hop: "serve"},
			diag.Sources{Monitor: d.Watch(), Obs: d.Obs()})
		if err != nil {
			b.Fatal(err)
		}
		d.BindDiag(rec)
		benchPlace(b, d)
	})
}
