package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/wire"
)

// DispatcherWire adapts a Dispatcher to wire.Handler, enforcing the
// same bounds and mapping the same sentinel errors as the HTTP layer
// so both transports are interchangeable at equal correctness.
type DispatcherWire struct {
	d    *Dispatcher
	info Info
	ws   atomic.Pointer[wire.Server]
}

// NewDispatcherWire wraps d for wire serving. Call BindServer once the
// wire.Server exists so STATS replies can include the wire block (the
// server needs the handler first, hence the late bind).
func NewDispatcherWire(d *Dispatcher, info Info) *DispatcherWire {
	return &DispatcherWire{d: d, info: info}
}

// BindServer attaches the serving wire.Server whose counters the STATS
// reply reports.
func (h *DispatcherWire) BindServer(ws *wire.Server) { h.ws.Store(ws) }

// dispatchErr maps the dispatcher's sentinel errors onto wire codes —
// the same mapping place/remove use for HTTP status codes.
func dispatchErr(err error) error {
	switch err {
	case nil:
		return nil
	case ErrDraining:
		return &wire.Error{Code: wire.CodeDraining, Msg: err.Error()}
	case ErrKeyedUnsupported:
		return &wire.Error{Code: wire.CodeKeyedUnsupported, Msg: err.Error()}
	case ErrEmptyBin:
		return &wire.Error{Code: wire.CodeEmptyBin, Msg: err.Error()}
	}
	return err
}

// Place implements wire.Handler with /v1/place?count=k semantics.
func (h *DispatcherWire) Place(ctx context.Context, count int) ([]int, int64, error) {
	if count < 1 || count > MaxBulkPlace {
		return nil, 0, &wire.Error{
			Code: wire.CodeBadRequest,
			Msg:  fmt.Sprintf("count must be in [1,%d], got %d", MaxBulkPlace, count),
		}
	}
	bins, samples, err := h.d.PlaceMany(ctx, count)
	return bins, samples, dispatchErr(err)
}

// PlaceKeyed implements wire.Handler with /v1/place?key=k semantics.
func (h *DispatcherWire) PlaceKeyed(ctx context.Context, key string) ([]int, int64, error) {
	if key == "" {
		return nil, 0, &wire.Error{Code: wire.CodeBadRequest, Msg: "empty key"}
	}
	bin, samples, err := h.d.PlaceKeyed(ctx, key)
	if err != nil {
		return nil, 0, dispatchErr(err)
	}
	return []int{bin}, samples, nil
}

// Remove implements wire.Handler with /v1/remove semantics.
func (h *DispatcherWire) Remove(ctx context.Context, bin int, key string) error {
	if bin < 0 || bin >= h.d.N() {
		return &wire.Error{
			Code: wire.CodeBadRequest,
			Msg:  fmt.Sprintf("bin %d outside [0,%d)", bin, h.d.N()),
		}
	}
	return dispatchErr(h.d.RemoveKeyed(ctx, bin, key))
}

// StatsJSON implements wire.Handler: the exact /v1/stats document, so
// wire clients decode with the same structs as HTTP clients.
func (h *DispatcherWire) StatsJSON(ctx context.Context) ([]byte, error) {
	return json.Marshal(BuildStatsResponse(h.d, h.info, h.ws.Load()))
}

// TraceJSON implements wire.Handler (protocol ≥ 3): the dispatcher's
// retained ops for one trace id, as the GET /v1/trace?id= document.
func (h *DispatcherWire) TraceJSON(ctx context.Context, id uint64) ([]byte, error) {
	r := h.d.Obs()
	resp := obs.TraceResponse{Hop: r.Hop(), Ops: r.OpsByTrace(obs.FormatTrace(id))}
	if resp.Ops == nil {
		resp.Ops = []*obs.Op{}
	}
	return json.Marshal(resp)
}

// Hello implements wire.Handler for the n-agreement handshake.
func (h *DispatcherWire) Hello() wire.Hello {
	return wire.Hello{
		Protocol: h.info.Protocol,
		N:        h.info.N,
		Shards:   h.info.Shards,
	}
}

// Draining implements wire.Handler, mirroring /healthz.
func (h *DispatcherWire) Draining() bool { return h.d.Draining() }
