package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	ballsbins "repro"
	"repro/internal/diag"
	"repro/internal/hdrhist"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/watch"
	"repro/internal/wire"
)

// MaxBulkPlace caps the count accepted by one POST /v1/place, bounding
// the response size and the work one HTTP request can enqueue.
const MaxBulkPlace = 65536

// Info describes the served configuration; it is echoed in /v1/stats
// and /v1/snapshot so load generators can label their output.
type Info struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	Shards   int    `json:"shards"`
	Engine   string `json:"engine"`
	Seed     uint64 `json:"seed"`
	// WireAddr advertises the binary wire-protocol listener (the
	// -wire-addr flag value), empty when wire serving is off. Peers
	// that see it (bbproxy, bbload -transport wire) may dial it
	// instead of HTTP; see wire.ResolveAddr for host-less values.
	WireAddr string `json:"wire_addr,omitempty"`
}

// PlaceResponse is the body of POST /v1/place. Bin duplicates Bins[0]
// for the count=1 case so single-ball callers need not unpack a list.
// Key echoes the keyed placement's key, when one was given.
type PlaceResponse struct {
	Bin     int    `json:"bin"`
	Bins    []int  `json:"bins,omitempty"`
	Count   int    `json:"count"`
	Samples int64  `json:"samples"`
	Key     string `json:"key,omitempty"`
}

// RemoveResponse is the body of POST /v1/remove.
type RemoveResponse struct {
	Bin     int  `json:"bin"`
	Removed bool `json:"removed"`
}

// StatsResponse is the body of GET /v1/stats: the lock-free monitoring
// view plus dispatch-latency quantiles in nanoseconds and the keyed
// placement tier's block (key→shard affinity).
type StatsResponse struct {
	Info Info `json:"info"`
	StatsView
	Draining  bool         `json:"draining"`
	LatencyNs Latency      `json:"dispatch_latency_ns"`
	Keyed     *keyed.Stats `json:"keyed,omitempty"`
	// Durability is the keyed tier's WAL block (log bytes, records
	// since snapshot, fsync age, recovery replay time); omitted when
	// the process runs without -data-dir.
	Durability *keyed.DurabilityStats `json:"durability,omitempty"`
	// Wire is the binary protocol's server block (conns, frames,
	// reply batching); omitted when the process runs without
	// -wire-addr.
	Wire *wire.Stats `json:"wire,omitempty"`
	// Obs is the per-stage latency decomposition (queue, apply, op
	// totals) from the observability recorder; omitted when recording
	// is disabled. bbproxy's stats carry the same block for its own
	// stages (probe, forward).
	Obs map[string]obs.StageSummary `json:"obs,omitempty"`
	// Watch is the invariant watchdog's summary (violations, event
	// journal cursor); omitted when the watchdog is disabled. The full
	// journal and time series live at /v1/events and /v1/timeseries.
	Watch *watch.StatsBlock `json:"watch,omitempty"`
	// Diag is the flight recorder's summary (bundles written, drops,
	// last trigger); omitted when the process runs without -diag-dir.
	Diag *diag.Stats `json:"diag,omitempty"`
}

// Latency summarizes a latency histogram in nanoseconds.
type Latency struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// SnapshotResponse is the body of GET /v1/snapshot: a lock-all
// linearizable Metrics of the whole system plus one per-shard Result
// (read shard-at-a-time after the global snapshot).
type SnapshotResponse struct {
	Info    Info               `json:"info"`
	Balls   int64              `json:"balls"`
	Metrics ballsbins.Result   `json:"metrics"`
	Shards  []ballsbins.Result `json:"shards"`
}

type handler struct {
	d     *Dispatcher
	info  Info
	ws    *wire.Server // nil when wire serving is off
	build obs.BuildInfo
}

// NewHandler mounts the serving API over a dispatcher:
//
//	POST /v1/place[?count=k]  place 1 (default) or k balls
//	POST /v1/remove?bin=i     remove one ball from bin i
//	GET  /v1/stats[?shard=s]  lock-free monitoring view (one shard row)
//	GET  /v1/snapshot         lock-all consistent snapshot
//	GET  /healthz             200 ok, 503 once draining
//	GET  /metrics             Prometheus text format
func NewHandler(d *Dispatcher, info Info) http.Handler {
	return NewHandlerWire(d, info, nil)
}

// NewHandlerWire is NewHandler for a process that also serves the
// binary protocol: the wire server's counters join /v1/stats (wire
// block) and /metrics (bb_wire_* series). ws may be nil.
func NewHandlerWire(d *Dispatcher, info Info, ws *wire.Server) http.Handler {
	h := &handler{d: d, info: info, ws: ws, build: obs.Build(wire.Version)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", h.place)
	mux.HandleFunc("POST /v1/remove", h.remove)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /v1/snapshot", h.snapshot)
	mux.HandleFunc("GET /v1/trace", d.Obs().TraceHandler())
	mux.HandleFunc("GET /v1/trace/{id}", d.Obs().AssembledTraceHandler(nil))
	mux.HandleFunc("GET /v1/events", d.Watch().EventsHandler())
	mux.HandleFunc("GET /v1/timeseries", d.Watch().TimeseriesHandler())
	mux.HandleFunc("GET /v1/version", obs.VersionHandler(h.build))
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

// traceCtx threads an upstream X-BB-Trace header into the request
// context so the dispatcher's capture joins the caller's trace.
func traceCtx(r *http.Request) context.Context {
	return obs.WithTrace(r.Context(), obs.ParseTrace(r.Header.Get(obs.Header)))
}

// WriteJSON writes v as indented JSON with the given status. Shared by
// every HTTP surface in the system (bbserved, bbproxy) so the wire
// shape cannot drift between tiers.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError writes the canonical {"error": ...} body.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) { WriteJSON(w, status, v) }

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteError(w, status, format, args...)
}

// ParseBulkCount validates a /v1/place count query value: empty means
// 1, otherwise an integer in [1, MaxBulkPlace].
func ParseBulkCount(s string) (int, error) {
	if s == "" {
		return 1, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("count must be a positive integer, got %q", s)
	}
	if v > MaxBulkPlace {
		return 0, fmt.Errorf("count %d exceeds maximum %d", v, MaxBulkPlace)
	}
	return v, nil
}

func (h *handler) place(w http.ResponseWriter, r *http.Request) {
	count, err := ParseBulkCount(r.URL.Query().Get("count"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := r.URL.Query().Get("key")
	if key != "" && count > 1 {
		// Bulk + affinity is ambiguous: a bulk spreads round-robin
		// across shards, a key pins its shard. Refusing is the only
		// honest answer — silently round-robining a keyed bulk (the
		// pre-keyed behavior) would scatter a key's balls and destroy
		// the affinity contract without telling the caller.
		writeError(w, http.StatusBadRequest,
			"bulk place (count=%d) cannot carry a key: keyed placement is one ball per request; send count=1 requests for key %q", count, key)
		return
	}
	ctx := traceCtx(r)
	var bins []int
	var samples int64
	if key != "" {
		var bin int
		bin, samples, err = h.d.PlaceKeyed(ctx, key)
		bins = []int{bin}
	} else {
		bins, samples, err = h.d.PlaceMany(ctx, count)
	}
	if err != nil {
		// A cancelled bulk request may still have committed part of
		// its balls (enqueue is the commit point) — the client is gone
		// and cannot read any body, so there is no one to report them
		// to; they remain visible in /v1/stats like every placement.
		status := http.StatusInternalServerError
		switch err {
		case ErrDraining:
			status = http.StatusServiceUnavailable
		case ErrKeyedUnsupported:
			status = http.StatusBadRequest
		}
		writeError(w, status, "%v", err)
		return
	}
	resp := PlaceResponse{Bin: bins[0], Count: count, Samples: samples, Key: key}
	if count > 1 {
		resp.Bins = bins
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) remove(w http.ResponseWriter, r *http.Request) {
	s := r.URL.Query().Get("bin")
	if s == "" {
		writeError(w, http.StatusBadRequest, "missing bin parameter")
		return
	}
	bin, err := strconv.Atoi(s)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bin must be an integer, got %q", s)
		return
	}
	if bin < 0 || bin >= h.d.N() {
		writeError(w, http.StatusBadRequest, "bin %d outside [0,%d)", bin, h.d.N())
		return
	}
	switch err := h.d.RemoveKeyed(traceCtx(r), bin, r.URL.Query().Get("key")); err {
	case nil:
		writeJSON(w, http.StatusOK, RemoveResponse{Bin: bin, Removed: true})
	case ErrEmptyBin:
		writeError(w, http.StatusConflict, "bin %d is empty", bin)
	case ErrDraining:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// LatencySummary condenses a histogram snapshot into the quantile
// summary used by /v1/stats and the bench JSON records.
func LatencySummary(s hdrhist.Snapshot) Latency {
	return Latency{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.5),
		P90:   s.Quantile(0.9),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
	}
}

// ShardStatsResponse is the body of GET /v1/stats?shard=s: one shard's
// row from the lock-free monitoring view. Cluster load views and
// operators drilling into a hot shard use it to avoid shipping every
// row on each poll.
type ShardStatsResponse struct {
	Info  Info      `json:"info"`
	Shard ShardStat `json:"shard"`
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	if s := r.URL.Query().Get("shard"); s != "" {
		shard, err := strconv.Atoi(s)
		if err != nil || shard < 0 || shard >= h.d.Shards() {
			writeError(w, http.StatusBadRequest, "shard must be in [0,%d), got %q", h.d.Shards(), s)
			return
		}
		writeJSON(w, http.StatusOK, ShardStatsResponse{
			Info:  h.info,
			Shard: h.d.ShardStats(shard),
		})
		return
	}
	writeJSON(w, http.StatusOK, BuildStatsResponse(h.d, h.info, h.ws))
}

// BuildStatsResponse assembles the /v1/stats document. It is the
// single source for both transports: the HTTP stats handler and the
// wire adapter's STATS reply marshal exactly this.
func BuildStatsResponse(d *Dispatcher, info Info, ws *wire.Server) StatsResponse {
	ks := d.KeyedStats()
	resp := StatsResponse{
		Info:       info,
		StatsView:  d.Stats(),
		Draining:   d.Draining(),
		LatencyNs:  LatencySummary(d.Latency()),
		Keyed:      &ks,
		Durability: d.Durability(),
		Obs:        d.Obs().StageSummaries(),
		Watch:      d.Watch().StatsBlockDoc(),
		Diag:       d.Diag().StatsDoc(),
	}
	if ws != nil {
		s := ws.Stats()
		resp.Wire = &s
	}
	return resp
}

func (h *handler) snapshot(w http.ResponseWriter, r *http.Request) {
	sa := h.d.Allocator()
	metrics, balls := sa.MetricsWithBalls() // one lock-all: Balls and Metrics agree
	resp := SnapshotResponse{
		Info:    h.info,
		Balls:   balls,
		Metrics: metrics,
	}
	for s := 0; s < sa.Shards(); s++ {
		resp.Shards = append(resp.Shards, sa.ShardMetrics(s))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	if h.d.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// metrics renders the Prometheus text exposition format: counters and
// gauges from the lock-free stats view, per-shard ball/load gauges,
// and the dispatch latency as a summary in seconds.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	v := h.d.Stats()
	lat := h.d.Latency()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	g := func(name, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	c := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}
	c("bb_place_total", "Cumulative balls placed.", v.Placed)
	c("bb_remove_total", "Cumulative balls removed.", v.Removed)
	c("bb_samples_total", "Cumulative random bin choices (allocation time).", v.Samples)
	g("bb_balls", "Balls currently in the system.", v.Balls)
	g("bb_max_load", "Current maximum bin load.", v.MaxLoad)
	g("bb_min_load", "Current minimum bin load.", v.MinLoad)
	g("bb_gap", "Max minus min load.", v.Gap)
	g("bb_psi", "Quadratic potential of the load vector.", v.Psi)
	g("bb_samples_per_ball", "Cumulative samples per placed ball.", v.SamplesPerBall)
	g("bb_combining_factor", "Requests applied per combiner lock acquisition.", v.CombiningFactor)

	ks := h.d.KeyedStats()
	g("bb_keyed_keys", "Keys in the keyed placement table.", ks.Keys)
	g("bb_keyed_hot_keys", "Keys split to replica sets.", ks.HotKeys)
	g("bb_keyed_affinity_hit_rate", "Keyed requests answered from the affinity table.", ks.AffinityHitRate)
	c("bb_keyed_moved_total", "Key replicas moved by failures or rebalancing.", ks.MovedKeys)
	c("bb_keyed_shed_total", "Key replicas shed off overfull bins.", ks.ShedKeys)
	WriteDurabilityMetrics(w, h.d.Durability())
	if h.ws != nil {
		wire.WriteMetrics(w, h.ws.Stats())
	}

	fmt.Fprintf(w, "# HELP bb_shard_balls Balls per shard.\n# TYPE bb_shard_balls gauge\n")
	for _, row := range v.Shards {
		fmt.Fprintf(w, "bb_shard_balls{shard=%q} %d\n", strconv.Itoa(row.Shard), row.Balls)
	}
	fmt.Fprintf(w, "# HELP bb_shard_max_load Maximum load per shard.\n# TYPE bb_shard_max_load gauge\n")
	for _, row := range v.Shards {
		fmt.Fprintf(w, "bb_shard_max_load{shard=%q} %d\n", strconv.Itoa(row.Shard), row.MaxLoad)
	}

	fmt.Fprintf(w, "# HELP bb_dispatch_latency_seconds Request enqueue-to-completion latency.\n")
	fmt.Fprintf(w, "# TYPE bb_dispatch_latency_seconds summary\n")
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(w, "bb_dispatch_latency_seconds{quantile=%q} %g\n",
			trimFloat(q), float64(lat.Quantile(q))/1e9)
	}
	fmt.Fprintf(w, "bb_dispatch_latency_seconds_sum %g\n", float64(lat.Sum)/1e9)
	fmt.Fprintf(w, "bb_dispatch_latency_seconds_count %d\n", lat.Count)

	h.d.Watch().WriteMetrics(w)
	h.d.Obs().WriteStageMetrics(w)
	obs.WriteBuildMetrics(w, h.build)
	obs.WriteRuntimeMetrics(w)
}

func trimFloat(q float64) string { return strconv.FormatFloat(q, 'g', -1, 64) }

// WriteDurabilityMetrics renders the keyed tier's WAL block as
// bb_wal_* Prometheus series. Shared by bbserved and bbproxy (via
// internal/cluster) so the durability series cannot drift between
// tiers; a nil block (no -data-dir) writes nothing.
func WriteDurabilityMetrics(w io.Writer, ds *keyed.DurabilityStats) {
	if ds == nil {
		return
	}
	g := func(name, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	c := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}
	g("bb_wal_log_bytes", "Bytes across live WAL segments.", ds.LogBytes)
	c("bb_wal_records_total", "Journal records appended this process lifetime.", ds.Records)
	g("bb_wal_records_since_snapshot", "Journal records since the last compacting snapshot.", ds.RecordsSinceSnapshot)
	c("bb_wal_snapshots_total", "Compacting snapshots written this process lifetime.", ds.Snapshots)
	fsyncAge := float64(-1)
	if ds.LastFsyncAgeMs >= 0 {
		fsyncAge = float64(ds.LastFsyncAgeMs) / 1e3
	}
	g("bb_wal_last_fsync_age_seconds", "Age of the last fsync (-1 before any).", fsyncAge)
	g("bb_wal_recovery_replay_seconds", "Wall time of boot recovery (snapshot decode + journal replay).", float64(ds.RecoveryReplayMs)/1e3)
	c("bb_wal_recovered_records_total", "Journal records replayed at boot.", ds.RecoveredRecords)
	c("bb_wal_append_errors_total", "Journal appends that failed after their mutation applied.", ds.AppendErrors)
}
