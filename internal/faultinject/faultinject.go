// Package faultinject is a crash-point fault-injection harness for
// testing durability code. Production binaries compile it in but pay
// only an atomic load per crash point: injection is armed exclusively
// through the environment, so a process with no BB_CRASHPOINT set
// never takes the slow path.
//
// # Arming
//
// Set BB_CRASHPOINT to "name", "name:kill", or "name:err", optionally
// with a hit count: "name:kill:3" fires on the third time the named
// point is reached. Modes:
//
//   - kill (default): the process exits immediately with status 125 —
//     the in-process analogue of kill -9 at exactly that instruction.
//     No deferred functions run, no buffers flush.
//   - err: Hit returns ErrInjected, letting the caller exercise its
//     error path (a failed fsync, a short write) without dying.
//
// Crash points are named by the code they guard; the durability layer
// defines (see internal/wal):
//
//	wal.append.partial    after a partial record frame reaches the file
//	wal.fsync             an fsync of the log file
//	wal.snapshot.partial  after a partial snapshot tmp file is written
//	wal.snapshot.rename   before the snapshot's atomic rename
//	wal.snapshot.prune    between snapshot rename and old-segment prune
//
// and the flight recorder (see internal/diag):
//
//	diag.section.partial  after a partial bundle-section frame reaches
//	                      the file (half the frame durably written)
//
// Tests re-exec the binary with the variable set, wait for exit
// status 125, and then assert recovery — see internal/wal's and
// internal/diag's crash tests for the pattern.
package faultinject

import (
	"errors"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable that arms a crash point.
const EnvVar = "BB_CRASHPOINT"

// KillStatus is the exit status used by kill-mode injections; tests
// assert it to distinguish an injected crash from a genuine one.
const KillStatus = 125

// ErrInjected is returned by Hit in err mode.
var ErrInjected = errors.New("faultinject: injected fault")

type plan struct {
	point string
	kill  bool
	after int64 // fire on the after-th hit (1-based)
	hits  int64
}

var (
	once   sync.Once
	armed  atomic.Pointer[plan]
	exiter = os.Exit // swapped in-process by tests
)

func parseSpec(spec string) *plan {
	p := &plan{kill: true, after: 1}
	parts := strings.Split(spec, ":")
	p.point = parts[0]
	if len(parts) > 1 && parts[1] == "err" {
		p.kill = false
	}
	if len(parts) > 2 {
		if n, err := strconv.ParseInt(parts[2], 10, 64); err == nil && n > 0 {
			p.after = n
		}
	}
	return p
}

func load() *plan {
	once.Do(func() {
		if spec := os.Getenv(EnvVar); spec != "" {
			armed.Store(parseSpec(spec))
		}
	})
	return armed.Load()
}

// Hit marks a named crash point. With no injection armed for name it
// returns nil at the cost of one atomic load. An armed kill-mode point
// terminates the process with KillStatus; an err-mode point returns
// ErrInjected exactly once (on the configured hit).
func Hit(name string) error {
	return HitWith(name, nil)
}

// HitWith is Hit with a prelude: fn runs only when the point is about
// to fire — before the kill or the injected error — letting the caller
// stage the on-disk state the crash should leave behind (e.g. flush a
// half-written frame so the torn bytes are genuinely durable).
func HitWith(name string, fn func()) error {
	p := load()
	if p == nil || p.point != name {
		return nil
	}
	if atomic.AddInt64(&p.hits, 1) != p.after {
		return nil
	}
	if fn != nil {
		fn()
	}
	if p.kill {
		exiter(KillStatus)
	}
	return ErrInjected
}

// Armed reports the crash point currently armed via the environment,
// or "" when injection is off — for tests and diagnostics that need
// to know whether a run is fault-injected.
func Armed() string {
	if p := load(); p != nil {
		return p.point
	}
	return ""
}
