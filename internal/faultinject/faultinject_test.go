package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// arm installs a plan directly (bypassing the env-var parse, which is
// sync.Once-guarded per process) and restores the previous state.
func arm(t *testing.T, p *plan) {
	t.Helper()
	prev := armed.Load()
	once.Do(func() {}) // burn the parse so load() won't overwrite us
	armed.Store(p)
	t.Cleanup(func() { armed.Store(prev) })
}

func TestUnarmedIsNil(t *testing.T) {
	arm(t, nil)
	if err := Hit("wal.fsync"); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
	if got := Armed(); got != "" {
		t.Fatalf("Armed() = %q, want empty", got)
	}
}

func TestErrModeFiresOnce(t *testing.T) {
	arm(t, &plan{point: "wal.fsync", kill: false, after: 2})
	if err := Hit("wal.fsync"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Hit("wal.fsync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2 = %v, want ErrInjected", err)
	}
	if err := Hit("wal.fsync"); err != nil {
		t.Fatalf("hit 3 fired again: %v", err)
	}
	if err := Hit("other.point"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestKillModeCallsExiter(t *testing.T) {
	arm(t, &plan{point: "wal.append.partial", kill: true, after: 1})
	var status atomic.Int64
	status.Store(-1)
	prev := exiter
	exiter = func(code int) { status.Store(int64(code)) }
	defer func() { exiter = prev }()
	Hit("wal.append.partial")
	if got := status.Load(); got != KillStatus {
		t.Fatalf("exiter got status %d, want %d", got, KillStatus)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec  string
		point string
		kill  bool
		after int64
	}{
		{"wal.fsync", "wal.fsync", true, 1},
		{"wal.fsync:kill", "wal.fsync", true, 1},
		{"wal.fsync:err", "wal.fsync", false, 1},
		{"wal.fsync:kill:3", "wal.fsync", true, 3},
		{"wal.fsync:err:7", "wal.fsync", false, 7},
		{"wal.fsync:err:bogus", "wal.fsync", false, 1},
	}
	for _, tc := range cases {
		p := parseSpec(tc.spec)
		if p.point != tc.point || p.kill != tc.kill || p.after != tc.after {
			t.Errorf("parse %q = {%q kill=%v after=%d}, want {%q kill=%v after=%d}",
				tc.spec, p.point, p.kill, p.after, tc.point, tc.kill, tc.after)
		}
	}
}

// TestHitConcurrent hammers an armed err-mode point from many
// goroutines: exactly one must receive the injected error.
func TestHitConcurrent(t *testing.T) {
	arm(t, &plan{point: "p", kill: false, after: 50})
	var injected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if Hit("p") != nil {
					injected.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := injected.Load(); got != 1 {
		t.Fatalf("injected %d times, want exactly 1", got)
	}
}
