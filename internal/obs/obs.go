// Package obs is the serving stack's observability layer: request-
// scoped tracing, per-stage latency decomposition, slow-op capture,
// and the shared logging/metrics plumbing the daemons hang off it.
//
// The design goal is near-zero cost on the untraced path. Every
// operation carries a Capture — a plain value with fixed-size span
// and attr arrays, embedded in the per-request struct (serve) or kept
// on the stack (cluster) — so recording a stage is two clock reads
// and a couple of stores, and finishing an op is one atomic histogram
// record per stage. Nothing allocates unless the op is actually
// retained: head-sampled (1/SampleEvery), or slower than the tail
// threshold. Retained ops are materialized once and published into a
// bounded ring of atomic pointers; readers snapshot the ring without
// locks, so a torn span is structurally impossible (an Op is
// immutable after publication).
//
// Trace identity is a uint64, rendered as 16 hex digits. It
// propagates bbload → bbproxy → bbserved over HTTP in the X-BB-Trace
// header and over the wire protocol as the optional trailing trace
// field negotiated by the HELLO version bump (internal/wire). A tier
// that decides to capture an op mints an id if the caller didn't send
// one, so every retained op is joinable.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hdrhist"
	"repro/internal/rng"
)

// Defaults for Options zero values.
const (
	DefaultSlowThreshold = 10 * time.Millisecond
	DefaultSampleEvery   = 1024
	DefaultRingSize      = 256
)

// Capture capacity. Ops that record more spans/attrs than fit drop
// the extras silently — the arrays are sized for the deepest real
// path (queue+apply on serve; probe plus a few failover forwards on
// the proxy) and kept small because every request carries them.
const (
	maxSpans = 6
	maxAttrs = 6
)

// Options configures a Recorder. Zero values take the defaults above.
type Options struct {
	// Hop tags every captured op with the component that recorded it
	// ("serve", "proxy").
	Hop string
	// SlowThreshold is the tail-capture bound: ops at least this slow
	// are retained regardless of sampling. 0 means
	// DefaultSlowThreshold; negative disables tail capture.
	SlowThreshold time.Duration
	// SampleEvery head-samples one op in N (its whole downstream path
	// is captured too, because the minted id propagates). 0 means
	// DefaultSampleEvery; 1 captures every op; negative disables
	// head sampling.
	SampleEvery int
	// RingSize bounds the retained-op ring. 0 means DefaultRingSize.
	RingSize int
	// Disabled makes NewRecorder return nil (all Recorder and Capture
	// methods are nil-safe no-ops) — the benchmark baseline.
	Disabled bool
}

// Recorder owns one component's observability state: the per-stage
// histograms behind the bb_stage_* series and the bounded ring of
// retained ops behind /v1/trace. All methods are safe for concurrent
// use and safe on a nil receiver.
type Recorder struct {
	hop     string
	slowNs  int64  // 0 = tail capture off
	sampleN uint64 // 0 = head sampling off
	seq     atomic.Uint64

	ring   []atomic.Pointer[Op]
	cursor atomic.Uint64

	mu     sync.Mutex // guards copy-on-write of stages
	stages atomic.Pointer[map[string]*hdrhist.Hist]
}

// NewRecorder builds a Recorder, or nil when o.Disabled.
func NewRecorder(o Options) *Recorder {
	if o.Disabled {
		return nil
	}
	r := &Recorder{hop: o.Hop}
	switch {
	case o.SlowThreshold == 0:
		r.slowNs = int64(DefaultSlowThreshold)
	case o.SlowThreshold > 0:
		r.slowNs = int64(o.SlowThreshold)
	}
	switch {
	case o.SampleEvery == 0:
		r.sampleN = DefaultSampleEvery
	case o.SampleEvery > 0:
		r.sampleN = uint64(o.SampleEvery)
	}
	size := o.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	r.ring = make([]atomic.Pointer[Op], size)
	empty := make(map[string]*hdrhist.Hist)
	r.stages.Store(&empty)
	return r
}

// Hop returns the recorder's component tag ("" on nil).
func (r *Recorder) Hop() string {
	if r == nil {
		return ""
	}
	return r.hop
}

// Op is one retained operation: immutable after publication.
type Op struct {
	Trace      string           `json:"trace"`
	Hop        string           `json:"hop"`
	Op         string           `json:"op"`
	Start      int64            `json:"start_unix_nano"`
	DurationNs int64            `json:"duration_ns"`
	Err        string           `json:"err,omitempty"`
	Spans      []Span           `json:"spans"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
}

// Span is one stage of an Op.
type Span struct {
	Stage      string `json:"stage"`
	Start      int64  `json:"start_unix_nano"`
	DurationNs int64  `json:"duration_ns"`
}

// spanRec holds a stage in flight. start is the monotonic offset from
// the op's begin time, not a wall timestamp: wall nanos are minted once
// at EndAt from the op's base clock, so a span's [start, start+dur)
// can never drift outside its parent by wall/monotonic rounding.
type spanRec struct {
	stage      string
	start, dur int64
}

type attrRec struct {
	key string
	val int64
}

// Capture accumulates one in-flight operation's spans and attrs. It
// is a plain value — embed it in the request struct or keep it on the
// stack; the zero Capture (nil recorder) is a no-op on every method.
type Capture struct {
	rec    *Recorder
	trace  uint64
	op     string
	start  time.Time
	forced bool
	nspans uint8
	nattrs uint8
	spans  [maxSpans]spanRec
	attrs  [maxAttrs]attrRec
}

// BeginAt opens a Capture for op starting at t0. trace is the
// caller-propagated id (0 = none). A head-sampled op with no upstream
// id gets one minted here, so the decision to trace is made at the
// first hop and the id can propagate downstream.
func (r *Recorder) BeginAt(trace uint64, op string, t0 time.Time) Capture {
	if r == nil {
		return Capture{}
	}
	c := Capture{rec: r, trace: trace, op: op, start: t0}
	if r.sampleN > 0 && r.seq.Add(1)%r.sampleN == 0 {
		c.forced = true
		if c.trace == 0 {
			c.trace = NewTraceID()
		}
	}
	return c
}

// Begin is BeginAt starting now.
func (r *Recorder) Begin(trace uint64, op string) Capture {
	return r.BeginAt(trace, op, time.Now())
}

// Trace returns the capture's trace id (0 when untraced) — forward it
// downstream so the hops share one id.
func (c *Capture) Trace() uint64 { return c.trace }

// Active reports whether the capture records anything at all.
func (c *Capture) Active() bool { return c.rec != nil }

// StageAt records one [start, end) span for stage.
func (c *Capture) StageAt(stage string, start, end time.Time) {
	if c.rec == nil || c.nspans >= maxSpans {
		return
	}
	d := end.Sub(start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	off := start.Sub(c.start).Nanoseconds()
	if off < 0 {
		off = 0
	}
	c.spans[c.nspans] = spanRec{stage: stage, start: off, dur: d}
	c.nspans++
}

// Stage records a span for stage from start until now.
func (c *Capture) Stage(stage string, start time.Time) {
	c.StageAt(stage, start, time.Now())
}

// Attr attaches an integer attribute (probes, failovers, batch size,
// staleness_ms_at_pick, ...).
func (c *Capture) Attr(key string, val int64) {
	if c.rec == nil || c.nattrs >= maxAttrs {
		return
	}
	c.attrs[c.nattrs] = attrRec{key: key, val: val}
	c.nattrs++
}

// EndAt closes the op at end: every span plus the op total is
// recorded into the per-stage histograms (the op total under the op
// name itself), and the op is materialized into the ring when it was
// head-sampled, carries an upstream trace id and crossed the tail
// threshold, or is simply slow enough.
func (c *Capture) EndAt(end time.Time, err error) {
	r := c.rec
	if r == nil {
		return
	}
	total := end.Sub(c.start).Nanoseconds()
	if total < 0 {
		total = 0
	}
	r.stageHist(c.op).Record(total)
	for i := 0; i < int(c.nspans); i++ {
		r.stageHist(c.spans[i].stage).Record(c.spans[i].dur)
	}
	if !c.forced && (r.slowNs == 0 || total < r.slowNs) {
		return
	}
	if c.trace == 0 {
		c.trace = NewTraceID() // tail-captured with no upstream id
	}
	base := c.start.UnixNano()
	op := &Op{
		Trace:      FormatTrace(c.trace),
		Hop:        r.hop,
		Op:         c.op,
		Start:      base,
		DurationNs: total,
		Spans:      make([]Span, c.nspans),
	}
	if err != nil {
		op.Err = err.Error()
	}
	for i := 0; i < int(c.nspans); i++ {
		op.Spans[i] = Span{Stage: c.spans[i].stage, Start: base + c.spans[i].start, DurationNs: c.spans[i].dur}
	}
	if c.nattrs > 0 {
		op.Attrs = make(map[string]int64, c.nattrs)
		for i := 0; i < int(c.nattrs); i++ {
			op.Attrs[c.attrs[i].key] = c.attrs[i].val
		}
	}
	i := (r.cursor.Add(1) - 1) % uint64(len(r.ring))
	r.ring[i].Store(op)
}

// End is EndAt now.
func (c *Capture) End(err error) {
	c.EndAt(time.Now(), err)
}

// Ops snapshots the retained ring: every op at least minDur slow,
// oldest first. Lock-free; safe on nil (returns nil).
func (r *Recorder) Ops(minDur time.Duration) []*Op {
	if r == nil {
		return nil
	}
	out := make([]*Op, 0, len(r.ring))
	for i := range r.ring {
		if op := r.ring[i].Load(); op != nil && op.DurationNs >= minDur.Nanoseconds() {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// OpsByTrace snapshots the retained ring filtered to one trace id
// (the 16-hex-digit rendering), oldest first. Lock-free; safe on nil.
func (r *Recorder) OpsByTrace(trace string) []*Op {
	if r == nil {
		return nil
	}
	var out []*Op
	for i := range r.ring {
		if op := r.ring[i].Load(); op != nil && op.Trace == trace {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// stageHist returns (creating on first use) the histogram for stage.
// The stage set is tiny and fixed per component, so the copy-on-write
// map settles after the first few requests and the hot path is one
// atomic load plus a map read.
func (r *Recorder) stageHist(stage string) *hdrhist.Hist {
	m := r.stages.Load()
	if h, ok := (*m)[stage]; ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m = r.stages.Load()
	if h, ok := (*m)[stage]; ok {
		return h
	}
	next := make(map[string]*hdrhist.Hist, len(*m)+1)
	for k, v := range *m {
		next[k] = v
	}
	h := hdrhist.New()
	next[stage] = h
	r.stages.Store(&next)
	return h
}

// StageSnapshots returns a consistent-enough snapshot of every
// per-stage histogram (nil-safe).
func (r *Recorder) StageSnapshots() map[string]hdrhist.Snapshot {
	if r == nil {
		return nil
	}
	m := r.stages.Load()
	out := make(map[string]hdrhist.Snapshot, len(*m))
	for k, h := range *m {
		out[k] = h.Snapshot()
	}
	return out
}

// StageSummary is the JSON-facing digest of one stage histogram — the
// obs block in both daemons' /v1/stats.
type StageSummary struct {
	Count  int64 `json:"count"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// StageSummaries digests every stage histogram (nil map on nil).
func (r *Recorder) StageSummaries() map[string]StageSummary {
	if r == nil {
		return nil
	}
	snaps := r.StageSnapshots()
	out := make(map[string]StageSummary, len(snaps))
	for k, s := range snaps {
		if s.Count == 0 {
			continue
		}
		out[k] = StageSummary{
			Count:  s.Count,
			P50Ns:  s.Quantile(0.50),
			P99Ns:  s.Quantile(0.99),
			P999Ns: s.Quantile(0.999),
			MaxNs:  s.Max,
		}
	}
	return out
}

// Trace id minting: a process-unique base mixed with a counter, so
// ids are unique across restarts without coordination and never 0.
var (
	traceBase = rng.Mix(uint64(time.Now().UnixNano()), 0x6f62732f7472) // "obs/tr"
	traceSeq  atomic.Uint64
)

// NewTraceID mints a fresh nonzero trace id.
func NewTraceID() uint64 {
	id := rng.Mix(traceBase, traceSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}
