package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: what /v1/version serves,
// what bb_build_info exposes, and what every diagnostic bundle is
// stamped with so a postmortem names the exact build it came from.
type BuildInfo struct {
	Module      string `json:"module"`
	GoVersion   string `json:"go_version"`
	Commit      string `json:"commit"`
	Dirty       bool   `json:"dirty"`
	WireVersion int    `json:"wire_version"`
}

var (
	buildOnce sync.Once
	buildBase BuildInfo
)

// Build returns the binary's build identity with the given negotiated
// wire protocol version stamped in. The VCS fields come from
// debug.ReadBuildInfo and degrade to "unknown" for test binaries and
// builds outside a checkout. obs cannot import internal/wire (wire
// imports obs), so the caller passes wire.Version down.
func Build(wireVersion int) BuildInfo {
	buildOnce.Do(func() {
		buildBase = BuildInfo{
			Module:    "unknown",
			GoVersion: runtime.Version(),
			Commit:    "unknown",
		}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Path != "" {
			buildBase.Module = bi.Main.Path
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildBase.Commit = s.Value
			case "vcs.modified":
				buildBase.Dirty = s.Value == "true"
			}
		}
	})
	b := buildBase
	b.WireVersion = wireVersion
	return b
}

// VersionHandler serves the build identity as GET /v1/version.
func VersionHandler(b BuildInfo) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(b)
	}
}

// WriteBuildMetrics emits the bb_build_info gauge: a constant 1 whose
// labels carry the build identity, the standard Prometheus idiom for
// joining versions onto every other series.
func WriteBuildMetrics(w io.Writer, b BuildInfo) {
	fmt.Fprintf(w, "# HELP bb_build_info Build identity (constant 1; the labels are the data).\n")
	fmt.Fprintf(w, "# TYPE bb_build_info gauge\n")
	fmt.Fprintf(w, "bb_build_info{commit=%q,go_version=%q,wire_version=\"%d\",dirty=%q} 1\n",
		b.Commit, b.GoVersion, b.WireVersion, fmt.Sprintf("%t", b.Dirty))
}
