package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/hdrhist"
)

// WriteStageMetrics renders the per-stage latency decomposition as
// bb_stage_latency_seconds{stage=...} Prometheus summaries. Shared by
// bbserved and bbproxy so the stage series cannot drift between
// tiers; a nil recorder writes nothing.
func (r *Recorder) WriteStageMetrics(w io.Writer) {
	if r == nil {
		return
	}
	snaps := r.StageSnapshots()
	if len(snaps) == 0 {
		return
	}
	stages := make([]string, 0, len(snaps))
	for k := range snaps {
		stages = append(stages, k)
	}
	sort.Strings(stages)
	fmt.Fprintf(w, "# HELP bb_stage_latency_seconds Per-stage request latency decomposition (op totals under the op name).\n")
	fmt.Fprintf(w, "# TYPE bb_stage_latency_seconds summary\n")
	for _, stage := range stages {
		s := snaps[stage]
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			fmt.Fprintf(w, "bb_stage_latency_seconds{stage=%q,quantile=%q} %g\n",
				stage, strconv.FormatFloat(q, 'g', -1, 64), float64(s.Quantile(q))/1e9)
		}
		fmt.Fprintf(w, "bb_stage_latency_seconds_sum{stage=%q} %g\n", stage, float64(s.Sum)/1e9)
		fmt.Fprintf(w, "bb_stage_latency_seconds_count{stage=%q} %d\n", stage, s.Count)
	}
}

// WritePickStaleness renders a staleness-at-pick histogram snapshot
// (recorded in milliseconds, exported as bb_pick_staleness_ms) — the
// per-decision visibility of how old the load view was when the
// routing policy used it.
func WritePickStaleness(w io.Writer, s hdrhist.Snapshot) {
	if s.Count == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP bb_pick_staleness_ms Load-view age at the moment of each routing pick.\n")
	fmt.Fprintf(w, "# TYPE bb_pick_staleness_ms summary\n")
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(w, "bb_pick_staleness_ms{quantile=%q} %d\n",
			strconv.FormatFloat(q, 'g', -1, 64), s.Quantile(q))
	}
	fmt.Fprintf(w, "bb_pick_staleness_ms_sum %d\n", s.Sum)
	fmt.Fprintf(w, "bb_pick_staleness_ms_count %d\n", s.Count)
}

// WriteRuntimeMetrics renders Go runtime health as bb_go_* series:
// goroutine count, heap, and GC activity. ReadMemStats stops the
// world briefly, which is fine at metrics-scrape cadence.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := func(name, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	c := func(name, help string, value uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}
	g("bb_go_goroutines", "Live goroutines.", runtime.NumGoroutine())
	g("bb_go_heap_alloc_bytes", "Heap bytes allocated and in use.", ms.HeapAlloc)
	g("bb_go_heap_objects", "Live heap objects.", ms.HeapObjects)
	g("bb_go_sys_bytes", "Bytes obtained from the OS.", ms.Sys)
	c("bb_go_gc_cycles_total", "Completed GC cycles.", uint64(ms.NumGC))
	fmt.Fprintf(w, "# HELP bb_go_gc_pause_seconds_total Cumulative stop-the-world GC pause.\n")
	fmt.Fprintf(w, "# TYPE bb_go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "bb_go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
}
