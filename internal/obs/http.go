package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// TraceResponse is the body of GET /v1/trace: the component's
// retained-op ring, oldest first.
type TraceResponse struct {
	Hop string `json:"hop"`
	Ops []*Op  `json:"ops"`
}

// TraceHandler serves the recorder's ring as GET /v1/trace. Query
// parameters: min_ns or min_ms filter to ops at least that slow;
// id= filters to the ops of one trace (exact 16-hex-digit match).
// A nil recorder serves an empty document.
func (r *Recorder) TraceHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		minDur, err := parseMinDur(req)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		var resp TraceResponse
		if s := req.URL.Query().Get("id"); s != "" {
			id := ParseTrace(s)
			if id == 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "id must be 1-16 hex digits"})
				return
			}
			resp = TraceResponse{Hop: r.Hop(), Ops: r.OpsByTrace(FormatTrace(id))}
		} else {
			resp = TraceResponse{Hop: r.Hop(), Ops: r.Ops(minDur)}
		}
		if resp.Ops == nil {
			resp.Ops = []*Op{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	}
}

func parseMinDur(req *http.Request) (time.Duration, error) {
	q := req.URL.Query()
	if s := q.Get("min_ns"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("min_ns must be a non-negative integer, got %q", s)
		}
		return time.Duration(v), nil
	}
	if s := q.Get("min_ms"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("min_ms must be a non-negative number, got %q", s)
		}
		return time.Duration(v * float64(time.Millisecond)), nil
	}
	return 0, nil
}
