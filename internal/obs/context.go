package obs

import (
	"context"
	"strconv"
)

// Header carries the trace id hop-to-hop over HTTP: 16 lowercase hex
// digits. The wire protocol carries the same id in the optional
// trailing trace field (internal/wire, protocol version 2).
const Header = "X-BB-Trace"

type ctxKey struct{}

// WithTrace returns ctx tagged with the trace id; id 0 returns ctx
// unchanged (no allocation for the untraced path).
func WithTrace(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceFrom extracts the trace id from ctx (0 when untraced).
func TraceFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(ctxKey{}).(uint64)
	return id
}

// FormatTrace renders a trace id as the canonical 16-hex-digit form.
func FormatTrace(id uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseTrace parses a header value back into an id; malformed or
// empty values are 0 (untraced), never an error — a bad header must
// not fail the request it rides on.
func ParseTrace(s string) uint64 {
	if s == "" || len(s) > 16 {
		return 0
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return id
}
