package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemons' structured logger: level is one of
// debug/info/warn/error, format one of text/json. The returned logger
// is component-tagged by the caller (logger.With("component", ...))
// and usually also installed as slog's default so library packages
// (cluster, wire) log through it.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
	return slog.New(h), nil
}
