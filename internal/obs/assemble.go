package obs

import (
	"encoding/json"
	"net/http"
	"sort"
)

// TraceNode is one op in an assembled trace tree. Children are the
// downstream ops whose wall-clock window nests inside this op's —
// a proxy forward parents the serve dispatch it triggered.
type TraceNode struct {
	*Op
	Children []*TraceNode `json:"children,omitempty"`
}

// AssembledTrace is one trace id's complete cross-tier picture: every
// matching op from every contributing ring, merged into a forest by
// time containment.
type AssembledTrace struct {
	Trace         string       `json:"trace"`
	Hops          []string     `json:"hops"`
	StartUnixNano int64        `json:"start_unix_nano"`
	DurationNs    int64        `json:"duration_ns"`
	Ops           int          `json:"ops"`
	Roots         []*TraceNode `json:"roots"`
}

// containSlackNs absorbs cross-host clock skew and the gap between a
// parent recording its end and a child stamping its start: a child
// whose window pokes out by at most this much still nests.
const containSlackNs = int64(2e6) // 2ms

// Assemble merges ops (any order, any mix of hops, possibly several
// trace ids) into per-trace trees. Parenting is by time containment:
// each op hangs under the tightest earlier-starting op whose
// [start, end) covers it within containSlackNs; ops nothing covers
// become roots. Traces are returned sorted by start time.
func Assemble(ops []*Op) []AssembledTrace {
	byTrace := make(map[string][]*Op)
	for _, op := range ops {
		if op != nil {
			byTrace[op.Trace] = append(byTrace[op.Trace], op)
		}
	}
	out := make([]AssembledTrace, 0, len(byTrace))
	for trace, group := range byTrace {
		out = append(out, assembleOne(trace, group))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano < out[j].StartUnixNano })
	return out
}

func assembleOne(trace string, ops []*Op) AssembledTrace {
	// Start ascending; ties break longest-first so a container sorts
	// before the ops it contains.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		return ops[i].DurationNs > ops[j].DurationNs
	})
	nodes := make([]*TraceNode, len(ops))
	for i, op := range ops {
		nodes[i] = &TraceNode{Op: op}
	}
	at := AssembledTrace{Trace: trace, Ops: len(ops)}
	hops := make(map[string]bool)
	var end int64
	for i, n := range nodes {
		hops[n.Hop] = true
		if e := n.Start + n.DurationNs; e > end {
			end = e
		}
		// The tightest container is the latest-starting earlier node
		// that still covers this one — scan backwards, first hit wins.
		var parent *TraceNode
		for j := i - 1; j >= 0; j-- {
			c := nodes[j]
			if n.Start >= c.Start-containSlackNs &&
				n.Start+n.DurationNs <= c.Start+c.DurationNs+containSlackNs {
				parent = c
				break
			}
		}
		if parent != nil {
			parent.Children = append(parent.Children, n)
		} else {
			at.Roots = append(at.Roots, n)
		}
	}
	if len(ops) > 0 {
		at.StartUnixNano = ops[0].Start
		at.DurationNs = end - ops[0].Start
	}
	for h := range hops {
		at.Hops = append(at.Hops, h)
	}
	sort.Strings(at.Hops)
	return at
}

// AssembledTraceResponse is the body of GET /v1/trace/{id}: the ops
// gathered for one trace id (cross-tier on the proxy, the local ring
// on serve) plus their assembled tree.
type AssembledTraceResponse struct {
	Trace     string          `json:"trace"`
	Sources   []string        `json:"sources"`
	Ops       []*Op           `json:"ops"`
	Assembled *AssembledTrace `json:"assembled"`
}

// NewAssembledTraceResponse builds the /v1/trace/{id} document from
// gathered ops. sources names the rings consulted (for debugging a
// partial assembly when a backend was down).
func NewAssembledTraceResponse(id uint64, sources []string, ops []*Op) AssembledTraceResponse {
	resp := AssembledTraceResponse{Trace: FormatTrace(id), Sources: sources, Ops: ops}
	if resp.Ops == nil {
		resp.Ops = []*Op{}
	}
	if ts := Assemble(ops); len(ts) > 0 {
		resp.Assembled = &ts[0]
	}
	return resp
}

// AssembledTraceHandler serves GET /v1/trace/{id}. gather pulls the
// ops for one id — the serve tier passes nil to read its own ring;
// the proxy passes its cross-tier fan-out.
func (r *Recorder) AssembledTraceHandler(gather func(req *http.Request, id uint64) ([]string, []*Op)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := ParseTrace(req.PathValue("id"))
		w.Header().Set("Content-Type", "application/json")
		if id == 0 {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "trace id must be 1-16 hex digits"})
			return
		}
		var sources []string
		var ops []*Op
		if gather != nil {
			sources, ops = gather(req, id)
		} else {
			sources, ops = []string{r.Hop()}, r.OpsByTrace(FormatTrace(id))
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(NewAssembledTraceResponse(id, sources, ops))
	}
}
