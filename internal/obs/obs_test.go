package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDFormatParse(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0), NewTraceID()} {
		s := FormatTrace(id)
		if len(s) != 16 {
			t.Fatalf("FormatTrace(%x) = %q, want 16 hex digits", id, s)
		}
		if got := ParseTrace(s); got != id {
			t.Fatalf("ParseTrace(FormatTrace(%x)) = %x", id, got)
		}
	}
	for _, bad := range []string{"", "zz", "12345678901234567", "0x12"} {
		if got := ParseTrace(bad); got != 0 {
			t.Fatalf("ParseTrace(%q) = %x, want 0", bad, got)
		}
	}
	if NewTraceID() == NewTraceID() {
		t.Fatal("NewTraceID returned the same id twice")
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != 0 {
		t.Fatal("untagged context has a trace id")
	}
	if WithTrace(ctx, 0) != ctx {
		t.Fatal("WithTrace(ctx, 0) should return ctx unchanged")
	}
	ctx2 := WithTrace(ctx, 42)
	if TraceFrom(ctx2) != 42 {
		t.Fatalf("TraceFrom = %d, want 42", TraceFrom(ctx2))
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	c := r.Begin(7, "place")
	c.Stage("queue", time.Now())
	c.Attr("batch", 3)
	c.End(nil)
	if r.Ops(0) != nil || r.StageSummaries() != nil || r.Hop() != "" {
		t.Fatal("nil recorder leaked state")
	}
	if NewRecorder(Options{Disabled: true}) != nil {
		t.Fatal("Disabled should yield a nil recorder")
	}
	var sb strings.Builder
	r.WriteStageMetrics(&sb) // must not panic
}

func TestTailCapture(t *testing.T) {
	r := NewRecorder(Options{Hop: "serve", SlowThreshold: time.Millisecond, SampleEvery: -1})
	// Fast op: histograms record, ring stays empty.
	t0 := time.Now()
	c := r.BeginAt(0, "place", t0)
	c.StageAt("queue", t0, t0.Add(10*time.Microsecond))
	c.EndAt(t0.Add(50*time.Microsecond), nil)
	if got := len(r.Ops(0)); got != 0 {
		t.Fatalf("fast op retained: %d ops in ring", got)
	}
	sum := r.StageSummaries()
	if sum["place"].Count != 1 || sum["queue"].Count != 1 {
		t.Fatalf("stage summaries missing fast op: %+v", sum)
	}
	// Slow op: retained, minted id, error string, attrs carried.
	c = r.BeginAt(0, "remove", t0)
	c.StageAt("apply", t0, t0.Add(2*time.Millisecond))
	c.Attr("batch", 5)
	c.EndAt(t0.Add(2*time.Millisecond), errors.New("boom"))
	ops := r.Ops(0)
	if len(ops) != 1 {
		t.Fatalf("slow op not retained: %d ops", len(ops))
	}
	op := ops[0]
	if op.Trace == "" || ParseTrace(op.Trace) == 0 {
		t.Fatalf("slow op got no minted trace id: %+v", op)
	}
	if op.Hop != "serve" || op.Op != "remove" || op.Err != "boom" || op.Attrs["batch"] != 5 {
		t.Fatalf("op fields wrong: %+v", op)
	}
	if len(op.Spans) != 1 || op.Spans[0].Stage != "apply" || op.Spans[0].DurationNs != int64(2*time.Millisecond) {
		t.Fatalf("span wrong: %+v", op.Spans)
	}
	// min-duration filter.
	if got := len(r.Ops(3 * time.Millisecond)); got != 0 {
		t.Fatalf("min-duration filter kept %d ops", got)
	}
}

func TestHeadSamplingMintsAndForwards(t *testing.T) {
	r := NewRecorder(Options{Hop: "proxy", SlowThreshold: -1, SampleEvery: 1})
	c := r.Begin(0, "place")
	if c.Trace() == 0 {
		t.Fatal("sampled capture did not mint a trace id for downstream propagation")
	}
	c.End(nil)
	if len(r.Ops(0)) != 1 {
		t.Fatal("sampled op not retained")
	}
	// Upstream id is preserved, not replaced.
	c = r.Begin(99, "place")
	if c.Trace() != 99 {
		t.Fatalf("upstream id replaced: %x", c.Trace())
	}
	c.End(nil)
	ops := r.Ops(0)
	if ops[len(ops)-1].Trace != FormatTrace(99) {
		t.Fatalf("retained op lost the upstream id: %+v", ops[len(ops)-1])
	}
}

func TestSpanAndAttrOverflowDropped(t *testing.T) {
	r := NewRecorder(Options{SampleEvery: 1, SlowThreshold: -1})
	c := r.Begin(0, "place")
	now := time.Now()
	for i := 0; i < maxSpans+4; i++ {
		c.StageAt("s", now, now.Add(time.Microsecond))
	}
	for i := 0; i < maxAttrs+4; i++ {
		c.Attr("k", int64(i))
	}
	c.End(nil)
	op := r.Ops(0)[0]
	if len(op.Spans) != maxSpans {
		t.Fatalf("spans = %d, want capped at %d", len(op.Spans), maxSpans)
	}
	if len(op.Attrs) != 1 || op.Attrs["k"] != int64(maxAttrs-1) {
		t.Fatalf("attr overflow not dropped past the cap: %+v", op.Attrs)
	}
}

func TestTraceHandler(t *testing.T) {
	r := NewRecorder(Options{Hop: "serve", SampleEvery: 1, SlowThreshold: -1})
	t0 := time.Now()
	c := r.BeginAt(5, "place", t0)
	c.StageAt("queue", t0, t0.Add(time.Millisecond))
	c.EndAt(t0.Add(4*time.Millisecond), nil)
	c = r.BeginAt(6, "place", t0)
	c.EndAt(t0.Add(100*time.Microsecond), nil)

	get := func(url string) TraceResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		r.TraceHandler()(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body)
		}
		var resp TraceResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad trace JSON: %v", err)
		}
		return resp
	}
	resp := get("/v1/trace")
	if resp.Hop != "serve" || len(resp.Ops) != 2 {
		t.Fatalf("got %+v", resp)
	}
	if resp := get("/v1/trace?min_ms=1"); len(resp.Ops) != 1 || resp.Ops[0].Trace != FormatTrace(5) {
		t.Fatalf("min_ms filter: %+v", resp.Ops)
	}
	if resp := get("/v1/trace?min_ns=3000000"); len(resp.Ops) != 1 {
		t.Fatalf("min_ns filter: %+v", resp.Ops)
	}
	rec := httptest.NewRecorder()
	r.TraceHandler()(rec, httptest.NewRequest("GET", "/v1/trace?min_ns=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bogus min_ns = %d, want 400", rec.Code)
	}
	// Nil recorder serves an empty document, not a panic.
	var nr *Recorder
	rec = httptest.NewRecorder()
	nr.TraceHandler()(rec, httptest.NewRequest("GET", "/v1/trace", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ops": []`) {
		t.Fatalf("nil recorder: %d %s", rec.Code, rec.Body)
	}
}

func TestStageMetricsExposition(t *testing.T) {
	r := NewRecorder(Options{Hop: "serve"})
	c := r.Begin(0, "place")
	c.Stage("queue", time.Now())
	c.End(nil)
	var sb strings.Builder
	r.WriteStageMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		`bb_stage_latency_seconds{stage="place",quantile="0.99"}`,
		`bb_stage_latency_seconds{stage="queue",quantile="0.5"}`,
		`bb_stage_latency_seconds_count{stage="queue"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteRuntimeMetrics(&sb)
	out = sb.String()
	for _, want := range []string{"bb_go_goroutines", "bb_go_heap_alloc_bytes", "bb_go_gc_pause_seconds_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime metrics missing %q:\n%s", want, out)
		}
	}
}

// TestRingHammer is the -race hammer from the issue: concurrent
// recording and snapshotting of one small ring. Correctness here is
// (a) the race detector stays quiet, (b) no snapshot ever observes a
// torn op — every op's spans and attrs are internally consistent with
// the writer that published it — and (c) memory stays bounded by the
// ring size.
func TestRingHammer(t *testing.T) {
	const (
		writers = 8
		perW    = 2000
		readers = 4
	)
	r := NewRecorder(Options{Hop: "serve", SampleEvery: 1, SlowThreshold: -1, RingSize: 64})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, op := range r.Ops(0) {
					// A torn op would mix one writer's id with
					// another's payload: every field is derived from
					// the op's attr "w", so they must agree.
					w, ok := op.Attrs["w"]
					if !ok {
						t.Errorf("op missing writer attr: %+v", op)
						return
					}
					if op.DurationNs != w*1000 {
						t.Errorf("torn op: writer %d with duration %d", w, op.DurationNs)
						return
					}
					if len(op.Spans) != 1 || op.Spans[0].DurationNs != w*500 {
						t.Errorf("torn span: writer %d spans %+v", w, op.Spans)
						return
					}
				}
				_ = r.StageSummaries()
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(id int64) {
			defer ww.Done()
			for i := 0; i < perW; i++ {
				t0 := time.Now()
				c := r.BeginAt(0, "place", t0)
				c.StageAt("queue", t0, t0.Add(time.Duration(id*500)))
				c.Attr("w", id)
				c.EndAt(t0.Add(time.Duration(id*1000)), nil)
			}
		}(int64(g + 1))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := len(r.Ops(0)); got > 64 {
		t.Fatalf("ring grew past its bound: %d ops", got)
	}
	// The ring holds pointers to at most RingSize ops no matter how
	// many were recorded — a second full pass must not grow it.
	runtime.GC()
	for i := 0; i < 1000; i++ {
		c := r.Begin(0, "place")
		c.End(nil)
	}
	if got := len(r.Ops(0)); got > 64 {
		t.Fatalf("ring unbounded after refill: %d", got)
	}
}

func TestLogger(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger(&sb, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", 1)
	lg.Debug("dropped")
	if !strings.Contains(sb.String(), `"msg":"hello"`) || strings.Contains(sb.String(), "dropped") {
		t.Fatalf("unexpected log output: %s", sb.String())
	}
	if _, err := NewLogger(&sb, "bogus", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&sb, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
}
