package wire

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipeliningHammer is the -race workout for the coalescing client:
// many concurrent callers pipeline varied-size placements (and removes)
// over a small connection pool while the server's connections are
// repeatedly force-killed mid-stream. It asserts
//
//   - per-request reply matching: caller i always gets exactly the
//     number of bins it asked for (a demux mix-up would hand a caller
//     some other request's reply body);
//   - book bounds under ambiguity: every ball the client saw confirmed
//     is on the server, and the server holds at most confirmed +
//     ambiguous (calls that errored after possibly reaching the wire);
//   - exact accounting once the faults stop: a quiesced sequential
//     phase must move the server's books by precisely its op count.
func TestPipeliningHammer(t *testing.T) {
	h := newTestHandler(256)
	srv, addr := startServer(t, h, ServerOptions{})
	c, err := Dial(addr, ClientOptions{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		workers = 16
		iters   = 200
	)
	var (
		okBalls     atomic.Int64 // balls confirmed placed
		lostBalls   atomic.Int64 // balls from errored placements (ambiguous)
		okRemoves   atomic.Int64
		lostRemoves atomic.Int64
		wg          sync.WaitGroup
		stopKills   = make(chan struct{})
		killsDone   = make(chan struct{})
	)

	// Fault injector: kill every live server connection a few times
	// while the workers run.
	go func() {
		defer close(killsDone)
		for i := 0; i < 8; i++ {
			select {
			case <-stopKills:
				return
			case <-time.After(30 * time.Millisecond):
				srv.CloseConns()
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				count := (w+i)%3 + 1
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				bins, samples, err := c.Place(ctx, count)
				cancel()
				if err != nil {
					// errConnDead / redial races: the outcome is
					// ambiguous, the server may hold these balls.
					lostBalls.Add(int64(count))
					continue
				}
				if len(bins) != count {
					t.Errorf("worker %d iter %d: asked for %d bins, got %d — reply demux mismatch", w, i, count, len(bins))
					return
				}
				if samples != int64(count) {
					t.Errorf("worker %d iter %d: samples = %d, want %d", w, i, samples, count)
					return
				}
				okBalls.Add(int64(count))
				// Give roughly a third of the balls back so removes race
				// the kills too.
				if i%3 == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					err := c.Remove(ctx, bins[0], "")
					cancel()
					switch {
					case err == nil:
						okRemoves.Add(1)
					case ErrCode(err) == CodeEmptyBin:
						// Another worker drained the bin first — a real
						// reply, not an ambiguous loss.
					default:
						lostRemoves.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopKills)
	<-killsDone

	placed, removed, balls := h.books()
	if placed < okBalls.Load() {
		t.Fatalf("server placed %d balls, client confirmed %d — confirmed work vanished", placed, okBalls.Load())
	}
	if max := okBalls.Load() + lostBalls.Load(); placed > max {
		t.Fatalf("server placed %d balls, client sent at most %d", placed, max)
	}
	if removed < okRemoves.Load() {
		t.Fatalf("server removed %d, client confirmed %d", removed, okRemoves.Load())
	}
	if max := okRemoves.Load() + lostRemoves.Load(); removed > max {
		t.Fatalf("server removed %d, client sent at most %d", removed, max)
	}
	if int64(balls) != placed-removed {
		t.Fatalf("book imbalance: %d balls in bins, placed-removed = %d", balls, placed-removed)
	}

	// Quiesced phase: no faults, sequential ops, exact deltas.
	ctx := context.Background()
	p0, r0, _ := h.books()
	const quiet = 100
	for i := 0; i < quiet; i++ {
		count := i%3 + 1
		bins, _, err := c.Place(ctx, count)
		if err != nil {
			t.Fatalf("quiesced place %d: %v", i, err)
		}
		if len(bins) != count {
			t.Fatalf("quiesced place %d: got %d bins, want %d", i, len(bins), count)
		}
		if err := c.Remove(ctx, bins[0], ""); err != nil {
			t.Fatalf("quiesced remove %d: %v", i, err)
		}
	}
	p1, r1, _ := h.books()
	wantPlaced := int64(0)
	for i := 0; i < quiet; i++ {
		wantPlaced += int64(i%3 + 1)
	}
	if p1-p0 != wantPlaced || r1-r0 != quiet {
		t.Fatalf("quiesced deltas: placed %d (want %d), removed %d (want %d)",
			p1-p0, wantPlaced, r1-r0, quiet)
	}
	if c.Stats().Redials == 0 {
		t.Fatal("hammer never exercised a redial — fault injection did not land")
	}
}

// TestPipeliningConcurrency proves a single connection really pipelines:
// with a handler that sleeps per placement, W concurrent callers must
// finish in far less than W sequential sleeps.
func TestPipeliningConcurrency(t *testing.T) {
	h := newTestHandler(64)
	h.slow = 20 * time.Millisecond
	_, addr := startServer(t, h, ServerOptions{})
	c, err := Dial(addr, ClientOptions{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers = 16
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Place(context.Background(), 1)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if sequential := time.Duration(callers) * h.slow; elapsed > sequential/2 {
		t.Fatalf("16 pipelined calls took %v — not concurrent (sequential would be %v)", elapsed, sequential)
	}
	if f := c.Stats().CoalescingFactor; f <= 1 {
		t.Logf("coalescing factor %.2f (timing-dependent; >1 expected under load)", f)
	}
}
