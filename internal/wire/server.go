package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"repro/internal/obs"
)

// Handler is what a wire server serves. The serve and cluster tiers
// provide adapters (serve.DispatcherWire, cluster.RouterWire) so this
// package stays free of upward imports.
//
// Handlers return *Error for typed failures; any other error is
// reported to the client as CodeInternal.
type Handler interface {
	// Place places count balls and returns their bins plus the total
	// probes spent. count has already passed frame-level sanity but
	// not tier-level bounds — the handler owns those.
	Place(ctx context.Context, count int) ([]int, int64, error)
	// PlaceKeyed places one ball under a routing key.
	PlaceKeyed(ctx context.Context, key string) ([]int, int64, error)
	// Remove deletes one ball from bin; key is empty for unkeyed
	// removes.
	Remove(ctx context.Context, bin int, key string) error
	// StatsJSON returns the same JSON document the tier's /v1/stats
	// endpoint serves, so wire clients reuse the HTTP decode structs.
	StatsJSON(ctx context.Context) ([]byte, error)
	// TraceJSON returns the tier's retained ops for one trace id as
	// the same JSON document GET /v1/trace?id= serves (protocol ≥ 3).
	TraceJSON(ctx context.Context, id uint64) ([]byte, error)
	// Hello identifies the server for the version + n-agreement
	// handshake.
	Hello() Hello
	// Draining reports whether the tier is shutting down; PING
	// mirrors it so wire health checks match HTTP /healthz.
	Draining() bool
}

// ServerOptions tune a Server; zero values select the defaults.
type ServerOptions struct {
	// MaxInflight bounds concurrently-executing requests per
	// connection (default 1024). Beyond it the reader stalls, which
	// backpressures the client through TCP.
	MaxInflight int
	// ReplyQueue is the per-connection buffered reply channel depth
	// (default 1024).
	ReplyQueue int
	// MaxBatch caps reply frames coalesced into one socket write
	// (default 256).
	MaxBatch int
	// Logger receives structured connection-lifecycle and decode-error
	// events (default slog.Default).
	Logger *slog.Logger
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 1024
	}
	if o.ReplyQueue <= 0 {
		o.ReplyQueue = 1024
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Server accepts wire connections and dispatches decoded requests to a
// Handler. Each request runs in its own goroutine (bounded by
// MaxInflight) so the dispatcher's arrival combining sees genuinely
// concurrent arrivals from a single pipelined connection.
type Server struct {
	h    Handler
	opts ServerOptions
	c    counters

	mu     sync.Mutex
	ln     net.Listener
	active map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer returns a Server for h. Call Serve with a listener to
// start accepting.
func NewServer(h Handler, opts ServerOptions) *Server {
	return &Server{h: h, opts: opts.withDefaults(), active: make(map[net.Conn]struct{})}
}

// Stats snapshots the server's wire counters.
func (s *Server) Stats() Stats { return s.c.snapshot() }

// Serve accepts connections on ln until Close. It returns nil after a
// clean Close, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.active[nc] = struct{}{}
		s.mu.Unlock()
		s.c.conns.Add(1)
		s.c.connsTotal.Add(1)
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// Close stops accepting, closes every active connection, and waits for
// their handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for nc := range s.active {
		nc.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// CloseConns force-closes every active connection while leaving the
// listener up — a fault-injection hook for tests that assert clients
// redial and rebalance their books after a mid-stream kill.
func (s *Server) CloseConns() {
	s.mu.Lock()
	for nc := range s.active {
		nc.Close()
	}
	s.mu.Unlock()
}

func (s *Server) dropConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.active, nc)
	s.mu.Unlock()
	s.c.conns.Add(-1)
	nc.Close()
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(nc)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	replies := make(chan []byte, s.opts.ReplyQueue)
	writerDone := make(chan struct{})
	go s.writeLoop(nc, replies, writerDone)

	sem := make(chan struct{}, s.opts.MaxInflight)
	var inflight sync.WaitGroup
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			// io.EOF at a frame boundary is a clean hangup; anything
			// else means the stream lost sync.
			if err == ErrBadCRC || err == ErrFrameTooLarge || err == ErrTruncated {
				s.c.decodeErrors.Add(1)
				s.opts.Logger.Warn("wire: dropping connection on frame decode error",
					"remote", nc.RemoteAddr(), "err", err)
			} else if err != io.EOF {
				s.opts.Logger.Debug("wire: connection read ended",
					"remote", nc.RemoteAddr(), "err", err)
			}
			break
		}
		s.c.framesIn.Add(1)
		req, err := ParseRequest(payload)
		if err != nil {
			s.c.decodeErrors.Add(1)
			s.opts.Logger.Warn("wire: dropping connection on request decode error",
				"remote", nc.RemoteAddr(), "err", err)
			break
		}
		switch req.Type {
		case MsgHello, MsgPing, MsgStats:
			// Cheap control-plane requests run inline on the reader.
			replies <- s.handle(ctx, req)
		default:
			sem <- struct{}{}
			inflight.Add(1)
			go func(req Request) {
				defer inflight.Done()
				defer func() { <-sem }()
				replies <- s.handle(ctx, req)
			}(req)
		}
	}
	// Reader is done: cancel stragglers (un-admitted work aborts; work
	// the dispatcher already committed completes), let them enqueue
	// their replies, then release the writer.
	cancel()
	inflight.Wait()
	close(replies)
	<-writerDone
}

// writeLoop drains the reply channel into coalesced socket writes —
// the server-side twin of the client's send loop. After a write error
// it keeps draining (discarding) so handlers never block on a dead
// connection.
func (s *Server) writeLoop(nc net.Conn, replies <-chan []byte, done chan<- struct{}) {
	defer close(done)
	var buf []byte
	broken := false
	for p := range replies {
		buf = AppendFrame(buf[:0], p)
		n := 1
	fill:
		for n < s.opts.MaxBatch {
			select {
			case p2, ok := <-replies:
				if !ok {
					break fill
				}
				buf = AppendFrame(buf, p2)
				n++
			default:
				break fill
			}
		}
		if broken {
			continue
		}
		if _, err := nc.Write(buf); err != nil {
			broken = true
			continue
		}
		s.c.writes.Add(1)
		s.c.framesOut.Add(int64(n))
	}
}

// handle executes one request and returns the encoded reply payload.
func (s *Server) handle(ctx context.Context, req Request) []byte {
	var body []byte
	var err error
	if req.Trace != 0 {
		// Propagate the trace id into the tier's own recorder (the
		// dispatcher or router reads it back with obs.TraceFrom).
		ctx = obs.WithTrace(ctx, req.Trace)
	}
	switch req.Type {
	case MsgHello:
		// Negotiate down: answer min(client, server) so a v1 peer
		// keeps its exact v1 stream; refuse only clients newer than
		// this server or older than MinVersion.
		if req.Version > Version || req.Version < MinVersion {
			err = &Error{Code: CodeBadRequest,
				Msg: fmt.Sprintf("protocol version %d outside supported [%d,%d]", req.Version, MinVersion, Version)}
			break
		}
		h := s.h.Hello()
		h.Version = min(req.Version, Version)
		body = AppendHelloBody(nil, h)
	case MsgPing:
		if s.h.Draining() {
			err = &Error{Code: CodeDraining, Msg: "draining"}
		}
	case MsgStats:
		body, err = s.h.StatsJSON(ctx)
	case MsgTrace:
		// Dispatched on the bounded-goroutine path, not inline: the
		// proxy's TraceJSON fans out to its backends over the network.
		body, err = s.h.TraceJSON(ctx, req.Query)
	case MsgPlace:
		var bins []int
		var samples int64
		bins, samples, err = s.h.Place(ctx, req.Count)
		if err == nil {
			body = AppendPlaceBody(nil, bins, samples)
		}
	case MsgPlaceKeyed:
		var bins []int
		var samples int64
		bins, samples, err = s.h.PlaceKeyed(ctx, req.Key)
		if err == nil {
			body = AppendPlaceBody(nil, bins, samples)
		}
	case MsgRemove, MsgRemoveKeyed:
		err = s.h.Remove(ctx, req.Bin, req.Key)
	}
	if err != nil {
		s.c.errorReplies.Add(1)
		code := CodeInternal
		msg := err.Error()
		var we *Error
		if errors.As(err, &we) {
			code, msg = we.Code, we.Msg
		}
		return AppendReply(nil, req.ID, code, errBody(nil, msg))
	}
	return AppendReply(nil, req.ID, CodeOK, body)
}
