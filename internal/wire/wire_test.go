package wire

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testHandler is a minimal in-memory book: balls per bin, placements
// round-robin, keyed placements hashed. It gives the protocol tests an
// exact ground truth without pulling the serve tier into this package.
type testHandler struct {
	n        int
	draining atomic.Bool
	slow     time.Duration // optional per-place delay (pipelining tests)

	mu      sync.Mutex
	loads   []int
	placed  int64
	removed int64
}

func newTestHandler(n int) *testHandler {
	return &testHandler{n: n, loads: make([]int, n)}
}

func (h *testHandler) Place(ctx context.Context, count int) ([]int, int64, error) {
	if h.draining.Load() {
		return nil, 0, &Error{Code: CodeDraining, Msg: "draining"}
	}
	if count < 1 || count > MaxFrame {
		return nil, 0, &Error{Code: CodeBadRequest, Msg: "bad count"}
	}
	if h.slow > 0 {
		select {
		case <-time.After(h.slow):
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bins := make([]int, count)
	for i := range bins {
		bin := int(h.placed) % h.n
		h.loads[bin]++
		h.placed++
		bins[i] = bin
	}
	return bins, int64(count), nil
}

func (h *testHandler) PlaceKeyed(ctx context.Context, key string) ([]int, int64, error) {
	if key == "unsupported" {
		return nil, 0, &Error{Code: CodeKeyedUnsupported, Msg: "no keyed tier"}
	}
	f := fnv.New32a()
	f.Write([]byte(key))
	bin := int(f.Sum32()) % h.n
	h.mu.Lock()
	h.loads[bin]++
	h.placed++
	h.mu.Unlock()
	return []int{bin}, 1, nil
}

func (h *testHandler) Remove(ctx context.Context, bin int, key string) error {
	if bin < 0 || bin >= h.n {
		return &Error{Code: CodeBadRequest, Msg: "bin out of range"}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.loads[bin] == 0 {
		return &Error{Code: CodeEmptyBin, Msg: fmt.Sprintf("bin %d is empty", bin)}
	}
	h.loads[bin]--
	h.removed++
	return nil
}

func (h *testHandler) StatsJSON(ctx context.Context) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return []byte(fmt.Sprintf(`{"placed":%d,"removed":%d}`, h.placed, h.removed)), nil
}

func (h *testHandler) TraceJSON(ctx context.Context, id uint64) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"hop":"test","trace":"%016x","ops":[]}`, id)), nil
}

func (h *testHandler) Hello() Hello {
	return Hello{Protocol: "test", N: h.n, Shards: 1}
}

func (h *testHandler) Draining() bool { return h.draining.Load() }

func (h *testHandler) books() (placed, removed int64, balls int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, l := range h.loads {
		balls += l
	}
	return h.placed, h.removed, balls
}

// startServer boots a Server on a loopback listener and returns it
// with its address; cleanup closes it.
func startServer(t *testing.T, h Handler, opts ServerOptions) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(h, opts)
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, {0}, []byte("hello"), bytes.Repeat([]byte{0xab}, 4096)}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := AppendFrame(nil, []byte("payload"))
	flip := append([]byte(nil), frame...)
	flip[len(flip)-1] ^= 0x01
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(flip))); err != ErrBadCRC {
		t.Fatalf("flipped payload: err = %v, want ErrBadCRC", err)
	}
	big := append([]byte(nil), frame...)
	big[3] = 0xff // length prefix now > MaxFrame
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(big))); err != ErrFrameTooLarge {
		t.Fatalf("oversize length: err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame[:len(frame)-2]))); err != ErrTruncated {
		t.Fatalf("torn payload: err = %v, want ErrTruncated", err)
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	cases := []Request{
		{Type: MsgHello, ID: 0, Version: Version},
		{Type: MsgPing, ID: 1},
		{Type: MsgPlace, ID: 2, Count: 1},
		{Type: MsgPlace, ID: 1 << 40, Count: 65536},
		{Type: MsgPlaceKeyed, ID: 3, Key: "user:42"},
		{Type: MsgPlaceKeyed, ID: 4, Key: ""},
		{Type: MsgRemove, ID: 5, Bin: 99999},
		{Type: MsgRemoveKeyed, ID: 6, Bin: 0, Key: "k"},
		{Type: MsgStats, ID: 7},
	}
	for _, want := range cases {
		got, err := ParseRequest(AppendRequest(nil, want))
		if err != nil {
			t.Fatalf("%v: %v", want.Type, err)
		}
		if got != want {
			t.Fatalf("round trip %v: got %+v, want %+v", want.Type, got, want)
		}
	}
}

func TestReplyCodecRoundTrip(t *testing.T) {
	bins := []int{0, 7, 99999, 3}
	body := AppendPlaceBody(nil, bins, 42)
	payload := AppendReply(nil, 77, CodeOK, body)
	rep, err := ParseReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != 77 || rep.Code != CodeOK {
		t.Fatalf("reply = %+v", rep)
	}
	gotBins, samples, err := ParsePlaceBody(rep.Body)
	if err != nil || samples != 42 {
		t.Fatalf("place body: bins=%v samples=%d err=%v", gotBins, samples, err)
	}
	for i := range bins {
		if gotBins[i] != bins[i] {
			t.Fatalf("bins = %v, want %v", gotBins, bins)
		}
	}

	h := Hello{Version: Version, Protocol: "greedy[2]", N: 1000, Shards: 8}
	got, err := ParseHelloBody(AppendHelloBody(nil, h))
	if err != nil || got != h {
		t.Fatalf("hello round trip = %+v, %v; want %+v", got, err, h)
	}
}

func TestClientServerOps(t *testing.T) {
	h := newTestHandler(64)
	_, addr := startServer(t, h, ServerOptions{})
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if hello := c.Hello(); hello.N != 64 || hello.Protocol != "test" || hello.Version != Version {
		t.Fatalf("hello = %+v", hello)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}

	bins, samples, err := c.Place(ctx, 5)
	if err != nil || len(bins) != 5 || samples != 5 {
		t.Fatalf("place 5 = %v, %d, %v", bins, samples, err)
	}
	kbins, _, err := c.PlaceKeyed(ctx, "user:1")
	if err != nil || len(kbins) != 1 {
		t.Fatalf("keyed place = %v, %v", kbins, err)
	}
	if err := c.Remove(ctx, bins[0], ""); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := c.Remove(ctx, kbins[0], "user:1"); err != nil {
		t.Fatalf("keyed remove: %v", err)
	}

	// Typed errors map back code-for-code.
	h.mu.Lock()
	empty := -1
	for i, l := range h.loads {
		if l == 0 {
			empty = i
			break
		}
	}
	h.mu.Unlock()
	if err := c.Remove(ctx, empty, ""); ErrCode(err) != CodeEmptyBin {
		t.Fatalf("empty bin: err = %v, want CodeEmptyBin", err)
	}
	if _, _, err := c.PlaceKeyed(ctx, "unsupported"); ErrCode(err) != CodeKeyedUnsupported {
		t.Fatalf("keyed unsupported: err = %v", err)
	}
	if err := c.Remove(ctx, 1<<20, ""); ErrCode(err) != CodeBadRequest {
		t.Fatalf("out-of-range bin: err = %v", err)
	}

	blob, err := c.StatsJSON(ctx)
	if err != nil || !bytes.Contains(blob, []byte(`"placed":6`)) {
		t.Fatalf("stats = %s, %v", blob, err)
	}

	// Draining flips PING and new placements, like /healthz + 503s.
	h.draining.Store(true)
	if err := c.Ping(ctx); ErrCode(err) != CodeDraining {
		t.Fatalf("draining ping: err = %v", err)
	}
	if _, _, err := c.Place(ctx, 1); ErrCode(err) != CodeDraining {
		t.Fatalf("draining place: err = %v", err)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	_, addr := startServer(t, newTestHandler(8), ServerOptions{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	req := AppendRequest(nil, Request{Type: MsgHello, ID: 0, Version: Version + 1})
	if _, err := nc.Write(AppendFrame(nil, req)); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bufio.NewReader(nc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ParseReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != CodeBadRequest {
		t.Fatalf("version mismatch reply code = %v, want CodeBadRequest", rep.Code)
	}
}

func TestGarbageDropsConnection(t *testing.T) {
	s, addr := startServer(t, newTestHandler(8), ServerOptions{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A frame whose CRC lies is connection-fatal.
	frame := AppendFrame(nil, []byte{byte(MsgPing), 1})
	frame[4] ^= 0xff
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(nc).ReadByte(); err == nil {
		t.Fatal("server kept the connection after a CRC mismatch")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().DecodeErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("decode error not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsCounters(t *testing.T) {
	h := newTestHandler(16)
	s, addr := startServer(t, h, ServerOptions{})
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	const ops = 50
	for i := 0; i < ops; i++ {
		if _, _, err := c.Place(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	ss := s.Stats()
	if ss.Conns != 1 || ss.ConnsTotal != 1 {
		t.Fatalf("conns = %d/%d, want 1/1", ss.Conns, ss.ConnsTotal)
	}
	if ss.FramesIn != ops+1 || ss.FramesOut != ops+1 { // +1 HELLO
		t.Fatalf("frames = %d in / %d out, want %d", ss.FramesIn, ss.FramesOut, ops+1)
	}
	cs := c.Stats()
	if cs.Requests != ops {
		t.Fatalf("client requests = %d, want %d", cs.Requests, ops)
	}
	if cs.BytesPerOp <= 0 || cs.CoalescingFactor < 1 {
		t.Fatalf("client stats = %+v", cs)
	}
}
