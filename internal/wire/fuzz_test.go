package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// fuzzStream builds a pristine multi-frame stream of request payloads —
// the wire twin of the WAL fuzzer's pristine segment.
func fuzzStream() (frames [][]byte, stream []byte) {
	reqs := []Request{
		{Type: MsgHello, ID: 0, Version: Version},
		{Type: MsgPlace, ID: 1, Count: 1},
		{Type: MsgPlace, ID: 2, Count: 65536},
		{Type: MsgPlaceKeyed, ID: 3, Key: "user:42"},
		{Type: MsgRemove, ID: 4, Bin: 12345},
		{Type: MsgRemoveKeyed, ID: 5, Bin: 7, Key: "user:42"},
		{Type: MsgStats, ID: 6},
		{Type: MsgPing, ID: 1 << 40},
	}
	for _, r := range reqs {
		p := AppendRequest(nil, r)
		frames = append(frames, p)
		stream = AppendFrame(stream, p)
	}
	return frames, stream
}

// FuzzWireFrameRoundTrip mirrors FuzzWALTornTail: mutate a pristine
// frame stream by truncation and a single byte flip, then assert the
// reader never panics, never invents frames, and that every frame it
// does return is prefix-exact — byte-identical to the pristine frame at
// that index — with the payload still round-tripping through the
// request codec. An untouched stream must decode completely.
func FuzzWireFrameRoundTrip(f *testing.F) {
	_, pristine := fuzzStream()
	f.Add(uint16(0), uint16(0), byte(0))                   // untouched
	f.Add(uint16(1), uint16(0), byte(0))                   // torn tail
	f.Add(uint16(0), uint16(2), byte(0xff))                // length-prefix flip
	f.Add(uint16(0), uint16(5), byte(0x01))                // CRC flip
	f.Add(uint16(0), uint16(9), byte(0x80))                // payload flip
	f.Add(uint16(len(pristine)/2), uint16(12), byte(0x55)) // cut + flip

	f.Fuzz(func(t *testing.T, cut uint16, flipAt uint16, flipWith byte) {
		frames, pristine := fuzzStream()
		mutated := append([]byte(nil), pristine...)
		if int(cut) < len(mutated) {
			mutated = mutated[:len(mutated)-int(cut)]
		}
		if int(flipAt) < len(mutated) {
			mutated[flipAt] ^= flipWith
		}
		intact := bytes.Equal(mutated, pristine)

		r := bufio.NewReader(bytes.NewReader(mutated))
		got := 0
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				if intact && got != len(frames) {
					t.Fatalf("pristine stream failed at frame %d: %v", got, err)
				}
				break
			}
			if got >= len(frames) {
				t.Fatalf("decoded %d frames, pristine stream has only %d", got+1, len(frames))
			}
			if !bytes.Equal(payload, frames[got]) {
				t.Fatalf("frame %d = %x, want pristine %x", got, payload, frames[got])
			}
			// The surviving payload must still speak the request codec,
			// and re-encoding must reproduce it byte-for-byte.
			req, err := ParseRequest(payload)
			if err != nil {
				t.Fatalf("frame %d survived CRC but failed parse: %v", got, err)
			}
			if re := AppendRequest(nil, req); !bytes.Equal(re, payload) {
				t.Fatalf("frame %d re-encode = %x, want %x", got, re, payload)
			}
			got++
		}
		if intact && got != len(frames) {
			t.Fatalf("pristine stream decoded %d of %d frames", got, len(frames))
		}
	})
}

// FuzzWireReplyParse feeds arbitrary bytes to the reply-side parsers —
// they must reject garbage with an error, never panic or over-read.
func FuzzWireReplyParse(f *testing.F) {
	f.Add(AppendReply(nil, 1, CodeOK, AppendPlaceBody(nil, []int{3, 1, 4}, 9)))
	f.Add(AppendReply(nil, 2, CodeEmptyBin, []byte("bin 3 is empty")))
	f.Add(AppendHelloBody(nil, Hello{Version: 1, Protocol: "greedy[2]", N: 100, Shards: 8}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if rep, err := ParseReply(data); err == nil {
			ParsePlaceBody(rep.Body)
			ParseHelloBody(rep.Body)
		}
		ParseRequest(data)
	})
}
