// Package wire is the binary streaming protocol that closes the gap
// between the in-proc dispatcher (~375k ops/s) and the JSON-over-HTTP
// tier (~1.5k ops/s single-connection): persistent connections,
// length-prefixed CRC-guarded frames, request IDs for out-of-order
// pipelining, and batch coalescing on both ends of the socket.
//
// Framing reuses the WAL's idiom — every frame is
//
//	[4B payload len][4B CRC-32 (IEEE) of payload][payload]
//
// little-endian, with payload length bounded by MaxFrame so a corrupt
// or torn length prefix can never drive a huge allocation. A frame
// that fails its CRC or bound is connection-fatal (the stream has lost
// sync; clients redial), exactly like a torn WAL tail ends replay.
//
// The payload is a compact fixed-header + varint body:
//
//	request:  [1B msg type][uvarint request id][body...]
//	reply:    [1B MsgReply][uvarint request id][1B code][body...]
//
// Request IDs are per-connection and chosen by the client; the server
// may reply out of order (each request is handled concurrently, so a
// slow bulk PLACE does not head-of-line-block a PING behind it) and
// the client demuxes replies back to waiting callers by ID. Typed
// error codes (CodeEmptyBin, CodeKeyedUnsupported, ...) map 1:1 onto
// the HTTP tier's status semantics so both transports are
// interchangeable at equal correctness.
//
// Both ends coalesce: the server funnels replies through a per-conn
// writer that packs everything pending into one write, and Client runs
// the same loop for requests — concurrent callers enqueue onto a
// per-connection send loop that drains the queue into a single
// write/syscall per flush. This is the client-side twin of
// serve.Dispatcher's arrival combining, and the measured
// requests-per-write factor is exported just like the dispatcher's
// combining factor.
package wire

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Version is the protocol version exchanged in the HELLO handshake.
// The handshake negotiates down: the server answers min(client,
// server) and refuses only clients NEWER than itself (they know
// features it cannot honor); a client likewise accepts any server
// reply ≤ its own version. Both sides then speak the negotiated
// version for the life of the connection.
//
// Version history:
//
//	1: initial protocol.
//	2: op requests may carry an optional trailing trace-id uvarint
//	   (obs propagation). The field is strictly additive — a v2 peer
//	   never sends it on a connection negotiated at 1, so v1 parsers
//	   (which reject trailing bytes) are unaffected.
//	3: TRACE request (MsgTrace): fetch a daemon's retained ops for one
//	   trace id as a JSON TraceResponse body. Same append-only rule — a
//	   v3 client never sends TRACE on a connection negotiated below 3
//	   (Client.TraceJSON returns ErrTraceUnsupported instead), and no
//	   existing message changed shape.
const Version = 3

// MinVersion is the oldest peer version still accepted.
const MinVersion = 1

// MaxFrame bounds a frame payload, mirroring wal.MaxRecord: a torn or
// corrupt length prefix is detected by bound before it can drive a
// multi-gigabyte allocation.
const MaxFrame = 1 << 24

// frameHeader is the fixed per-frame overhead: 4B length + 4B CRC-32.
const frameHeader = 8

// MsgType identifies a message within a frame payload.
type MsgType uint8

const (
	// Client → server.
	MsgHello       MsgType = 1 // body: uvarint version
	MsgPing        MsgType = 2 // body: empty
	MsgPlace       MsgType = 3 // body: uvarint count (1 = single)
	MsgPlaceKeyed  MsgType = 4 // body: string key
	MsgRemove      MsgType = 5 // body: uvarint bin
	MsgRemoveKeyed MsgType = 6 // body: uvarint bin, string key
	MsgStats       MsgType = 7 // body: empty
	MsgTrace       MsgType = 8 // body: uvarint trace id (protocol ≥ 3)

	// Server → client. The reply does not repeat the request type —
	// the client knows what it sent under each ID.
	MsgReply MsgType = 64
)

// String names the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "HELLO"
	case MsgPing:
		return "PING"
	case MsgPlace:
		return "PLACE"
	case MsgPlaceKeyed:
		return "PLACE_KEYED"
	case MsgRemove:
		return "REMOVE"
	case MsgRemoveKeyed:
		return "REMOVE_KEYED"
	case MsgStats:
		return "STATS"
	case MsgTrace:
		return "TRACE"
	case MsgReply:
		return "REPLY"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Code is the typed result of a request, mapping 1:1 onto the HTTP
// tier's status semantics so either transport yields the same errors.
type Code uint8

const (
	CodeOK               Code = 0
	CodeEmptyBin         Code = 1 // HTTP 409: remove from an empty bin
	CodeDraining         Code = 2 // HTTP 503: server is draining
	CodeKeyedUnsupported Code = 3 // HTTP 400: engine has no keyed tier
	CodeBadRequest       Code = 4 // HTTP 400: malformed count/bin/key
	CodeBackendDown      Code = 5 // HTTP 503: proxy lost the backend mid-flight
	CodeNoBackends       Code = 6 // HTTP 503: proxy has no live backends
	CodeInternal         Code = 7 // HTTP 502/500: anything else
)

// String names the code for diagnostics.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeEmptyBin:
		return "empty-bin"
	case CodeDraining:
		return "draining"
	case CodeKeyedUnsupported:
		return "keyed-unsupported"
	case CodeBadRequest:
		return "bad-request"
	case CodeBackendDown:
		return "backend-down"
	case CodeNoBackends:
		return "no-backends"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("Code(%d)", uint8(c))
}

// Error is a typed error reply. Adapters construct these from their
// tier's sentinel errors (serve.ErrEmptyBin → CodeEmptyBin, ...) and
// clients map them back, so sentinel comparisons work across the wire.
type Error struct {
	Code Code
	Msg  string
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return "wire: " + e.Code.String()
	}
	return "wire: " + e.Code.String() + ": " + e.Msg
}

// ErrCode extracts the typed code from an error chain, or CodeInternal
// if the error carries none.
func ErrCode(err error) Code {
	var we *Error
	if errors.As(err, &we) {
		return we.Code
	}
	return CodeInternal
}

// Hello is the handshake exchanged on every new connection: the client
// announces its protocol version, the server answers with its version
// plus the identity a peer needs for n-agreement — bbproxy refuses
// backends whose n differs, and it can do so from the handshake alone.
type Hello struct {
	Version  int    `json:"version"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	Shards   int    `json:"shards"`
}

// Stats is the server-side wire block surfaced in /v1/stats and (via
// WriteMetrics) as bb_wire_* Prometheus series.
type Stats struct {
	Conns           int64   `json:"conns"`
	ConnsTotal      int64   `json:"conns_total"`
	FramesIn        int64   `json:"frames_in"`
	FramesOut       int64   `json:"frames_out"`
	Writes          int64   `json:"writes"`
	BatchedPerWrite float64 `json:"batched_per_write"`
	DecodeErrors    int64   `json:"decode_errors"`
	ErrorReplies    int64   `json:"error_replies"`
}

// WriteMetrics renders s in Prometheus text exposition format under
// the bb_wire_* namespace. Both tiers (bbserved and bbproxy) call this
// from their /metrics handlers so the series are uniform.
func WriteMetrics(w io.Writer, s Stats) {
	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g("bb_wire_conns", "Open wire-protocol connections.", float64(s.Conns))
	c("bb_wire_conns_opened_total", "Wire connections accepted since start.", s.ConnsTotal)
	c("bb_wire_frames_in_total", "Request frames decoded.", s.FramesIn)
	c("bb_wire_frames_out_total", "Reply frames sent.", s.FramesOut)
	c("bb_wire_writes_total", "Socket writes (each may carry many coalesced reply frames).", s.Writes)
	g("bb_wire_batched_per_write", "Mean reply frames coalesced into one socket write.", s.BatchedPerWrite)
	c("bb_wire_decode_errors_total", "Connection-fatal frame decode failures (bad CRC, oversize, garbage header).", s.DecodeErrors)
	c("bb_wire_error_replies_total", "Replies carrying a non-OK code.", s.ErrorReplies)
}

// counters is the lock-free backing store for Stats, shared by Server.
type counters struct {
	conns        atomic.Int64
	connsTotal   atomic.Int64
	framesIn     atomic.Int64
	framesOut    atomic.Int64
	writes       atomic.Int64
	decodeErrors atomic.Int64
	errorReplies atomic.Int64
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Conns:        c.conns.Load(),
		ConnsTotal:   c.connsTotal.Load(),
		FramesIn:     c.framesIn.Load(),
		FramesOut:    c.framesOut.Load(),
		Writes:       c.writes.Load(),
		DecodeErrors: c.decodeErrors.Load(),
		ErrorReplies: c.errorReplies.Load(),
	}
	if s.Writes > 0 {
		s.BatchedPerWrite = float64(s.FramesOut) / float64(s.Writes)
	}
	return s
}
