package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClientClosed is returned for calls after Close.
var ErrClientClosed = errors.New("wire: client closed")

// ErrTraceUnsupported is returned by TraceJSON when the connection
// negotiated a protocol below 3 — the peer has no TRACE message, and
// sending one would drop the connection. Callers fall back to HTTP.
var ErrTraceUnsupported = errors.New("wire: peer protocol has no TRACE message")

// errConnDead fails calls stranded on a connection that died before
// their reply arrived. The outcome of such a call is ambiguous — the
// server may or may not have applied it — exactly like an HTTP request
// whose connection dropped mid-response.
var errConnDead = errors.New("wire: connection lost")

// ClientOptions tune a Client; zero values select the defaults.
type ClientOptions struct {
	// Conns is the connection-pool size (default 1: the headline
	// configuration — one pipelined, coalescing connection).
	Conns int
	// DialTimeout bounds connection establishment (default
	// netutil.DefaultDialTimeout's value, 3s — spelled literally here
	// to keep this package import-free).
	DialTimeout time.Duration
	// SendQueue is the per-connection submit channel depth (default
	// 4096). Full queue blocks callers — natural backpressure.
	SendQueue int
	// MaxInflight bounds outstanding requests per connection
	// (default 8192).
	MaxInflight int
	// MaxBatch caps request frames coalesced into one socket write
	// (default 256).
	MaxBatch int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.SendQueue <= 0 {
		o.SendQueue = 4096
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 8192
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	return o
}

// ClientStats snapshots a client's transport-efficiency counters: the
// coalescing factor (requests per socket write — the client-side twin
// of the dispatcher's combining factor) and raw socket bytes.
type ClientStats struct {
	Requests         int64   `json:"requests"`
	Writes           int64   `json:"writes"`
	BytesOut         int64   `json:"bytes_out"`
	BytesIn          int64   `json:"bytes_in"`
	Redials          int64   `json:"redials"`
	CoalescingFactor float64 `json:"coalescing_factor"`
	BytesPerOp       float64 `json:"bytes_per_op"`
}

// Client is a coalescing wire-protocol connection pool. Concurrent
// callers enqueue onto a per-connection send loop that packs every
// pending request into one write per flush; a demux loop matches
// replies to waiting callers by request ID, so a single connection
// carries arbitrarily many in-flight requests out of order.
type Client struct {
	addr string
	opts ClientOptions

	requests atomic.Int64
	writes   atomic.Int64
	framesW  atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	redials  atomic.Int64

	mu     sync.Mutex
	slots  []*clientConn
	hello  Hello
	closed bool
	rr     atomic.Uint64
}

type call struct {
	id   uint64
	req  []byte
	done chan struct{}
	code Code
	body []byte
	err  error
}

type clientConn struct {
	c         *Client
	nc        net.Conn
	sendq     chan *call
	deadc     chan struct{}
	tokens    chan struct{}
	helloInfo Hello
	// version is the negotiated protocol version for this connection
	// (min of both peers); trace ids are only sent at ≥ 2.
	version int
	mu      sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	dead    bool
}

// Dial connects to a wire server at addr (host:port), performs the
// HELLO handshake on the first connection, and returns a ready Client.
// Remaining pool connections are dialed lazily on first use.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.slots = make([]*clientConn, c.opts.Conns)
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.slots[0] = cc
	c.hello = cc.helloInfo
	return c, nil
}

// ResolveAddr turns an advertised wire address into a dialable
// host:port. Servers often advertise just their listen flag (":9090"),
// so a missing host is filled from the HTTP base URL the advertisement
// came with.
func ResolveAddr(baseURL, advertised string) (string, error) {
	if advertised == "" {
		return "", errors.New("wire: no wire address advertised")
	}
	host, port, err := net.SplitHostPort(advertised)
	if err != nil {
		return "", fmt.Errorf("wire: bad advertised address %q: %w", advertised, err)
	}
	if host != "" && host != "0.0.0.0" && host != "::" {
		return advertised, nil
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Hostname() == "" {
		return "", fmt.Errorf("wire: cannot resolve host for %q from base %q", advertised, baseURL)
	}
	return net.JoinHostPort(u.Hostname(), port), nil
}

// Hello returns the server identity captured during the handshake.
func (c *Client) Hello() Hello {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hello
}

// Addr returns the dialed address.
func (c *Client) Addr() string { return c.addr }

// Stats snapshots the client's transport counters.
func (c *Client) Stats() ClientStats {
	s := ClientStats{
		Requests: c.requests.Load(),
		Writes:   c.writes.Load(),
		BytesOut: c.bytesOut.Load(),
		BytesIn:  c.bytesIn.Load(),
		Redials:  c.redials.Load(),
	}
	if s.Writes > 0 {
		s.CoalescingFactor = float64(c.framesW.Load()) / float64(s.Writes)
	}
	if s.Requests > 0 {
		s.BytesPerOp = float64(s.BytesOut+s.BytesIn) / float64(s.Requests)
	}
	return s
}

// Close tears down every pooled connection and fails outstanding
// calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	slots := append([]*clientConn(nil), c.slots...)
	c.mu.Unlock()
	for _, cc := range slots {
		if cc != nil {
			cc.fail(ErrClientClosed)
		}
	}
	return nil
}

// dial opens and handshakes one connection.
func (c *Client) dial() (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cc := &clientConn{
		c:       c,
		nc:      nc,
		sendq:   make(chan *call, c.opts.SendQueue),
		deadc:   make(chan struct{}),
		tokens:  make(chan struct{}, c.opts.MaxInflight),
		pending: make(map[uint64]*call),
	}
	// Handshake synchronously before the loops start: one HELLO frame
	// out, one reply in.
	nc.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	hreq := AppendRequest(nil, Request{Type: MsgHello, ID: 0, Version: Version})
	if _, err := nc.Write(AppendFrame(nil, hreq)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake write: %w", err)
	}
	payload, err := ReadFrame(bufio.NewReader(nc))
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake read: %w", err)
	}
	rep, err := ParseReply(payload)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	if rep.Code != CodeOK {
		nc.Close()
		return nil, &Error{Code: rep.Code, Msg: string(rep.Body)}
	}
	hello, err := ParseHelloBody(rep.Body)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	// The server answers min(client, server): accept anything in our
	// supported range and speak the negotiated version on this
	// connection; only a server claiming a version above our own (or
	// below MinVersion) is unusable.
	if hello.Version > Version || hello.Version < MinVersion {
		nc.Close()
		return nil, fmt.Errorf("wire: server negotiated version %d, supported [%d,%d]", hello.Version, MinVersion, Version)
	}
	cc.version = hello.Version
	cc.helloInfo = hello
	nc.SetDeadline(time.Time{})
	go cc.sendLoop()
	go cc.readLoop()
	return cc, nil
}

// conn returns a live pooled connection, redialing dead slots.
func (c *Client) conn() (*clientConn, error) {
	i := int(c.rr.Add(1)) % len(c.slots)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	cc := c.slots[i]
	if cc != nil && !cc.isDead() {
		c.mu.Unlock()
		return cc, nil
	}
	redial := cc != nil
	c.mu.Unlock()
	// Dial outside the lock; racing callers may dial the same slot
	// twice, in which case the loser's connection is torn down.
	ncc, err := c.dial()
	if err != nil {
		return nil, err
	}
	if redial {
		c.redials.Add(1)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ncc.fail(ErrClientClosed)
		return nil, ErrClientClosed
	}
	if cur := c.slots[i]; cur != nil && !cur.isDead() {
		c.mu.Unlock()
		ncc.fail(errConnDead)
		return cur, nil
	}
	c.slots[i] = ncc
	c.hello = ncc.helloInfo
	c.mu.Unlock()
	return ncc, nil
}

// roundTrip submits one request and waits for its reply.
func (c *Client) roundTrip(ctx context.Context, req Request) (Reply, error) {
	cc, err := c.conn()
	if err != nil {
		return Reply{}, err
	}
	if req.Type == MsgTrace && cc.version < 3 {
		// TRACE does not exist below protocol 3; an old server would
		// drop the whole connection on the unknown type.
		return Reply{}, ErrTraceUnsupported
	}
	// Inflight token: bounds pending map growth; released when the
	// call completes (reply, failure, or abandoned-then-replied).
	select {
	case cc.tokens <- struct{}{}:
	case <-cc.deadc:
		return Reply{}, errConnDead
	case <-ctx.Done():
		return Reply{}, ctx.Err()
	}
	ca := &call{done: make(chan struct{})}
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		<-cc.tokens
		return Reply{}, errConnDead
	}
	cc.nextID++
	ca.id = cc.nextID
	cc.pending[ca.id] = ca
	cc.mu.Unlock()
	req.ID = ca.id
	if cc.version < 2 {
		// A v1 peer rejects trailing bytes; the trace id stays local.
		req.Trace = 0
	}
	ca.req = AppendRequest(nil, req)

	select {
	case cc.sendq <- ca:
		c.requests.Add(1)
	case <-cc.deadc:
		return Reply{}, errConnDead
	case <-ctx.Done():
		cc.abandon(ca)
		return Reply{}, ctx.Err()
	}
	select {
	case <-ca.done:
		if ca.err != nil {
			return Reply{}, ca.err
		}
		return Reply{ID: ca.id, Code: ca.code, Body: ca.body}, nil
	case <-ctx.Done():
		// The request may already be on the wire; its outcome is
		// ambiguous (same as cancelling an HTTP request mid-flight).
		// The demux drops the late reply when it arrives.
		cc.abandon(ca)
		return Reply{}, ctx.Err()
	}
}

// op runs a round trip and maps non-OK codes to *Error.
func (c *Client) op(ctx context.Context, req Request) ([]byte, error) {
	rep, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if rep.Code != CodeOK {
		return nil, &Error{Code: rep.Code, Msg: string(rep.Body)}
	}
	return rep.Body, nil
}

// Place places count balls in one request and returns their bins and
// the probes spent. A ctx trace id (obs.WithTrace) rides along on
// connections negotiated at protocol ≥ 2.
func (c *Client) Place(ctx context.Context, count int) ([]int, int64, error) {
	body, err := c.op(ctx, Request{Type: MsgPlace, Count: count, Trace: obs.TraceFrom(ctx)})
	if err != nil {
		return nil, 0, err
	}
	return ParsePlaceBody(body)
}

// PlaceKeyed places one ball under a routing key.
func (c *Client) PlaceKeyed(ctx context.Context, key string) ([]int, int64, error) {
	body, err := c.op(ctx, Request{Type: MsgPlaceKeyed, Key: key, Trace: obs.TraceFrom(ctx)})
	if err != nil {
		return nil, 0, err
	}
	return ParsePlaceBody(body)
}

// Remove deletes one ball from bin; a non-empty key routes the removal
// through the keyed tier.
func (c *Client) Remove(ctx context.Context, bin int, key string) error {
	t := MsgRemove
	if key != "" {
		t = MsgRemoveKeyed
	}
	_, err := c.op(ctx, Request{Type: t, Bin: bin, Key: key, Trace: obs.TraceFrom(ctx)})
	return err
}

// StatsJSON fetches the server's /v1/stats document over the wire.
func (c *Client) StatsJSON(ctx context.Context) ([]byte, error) {
	return c.op(ctx, Request{Type: MsgStats})
}

// TraceJSON fetches the server's retained ops for one trace id (the
// GET /v1/trace?id= document) over the wire. On connections negotiated
// below protocol 3 it returns ErrTraceUnsupported without sending
// anything; callers fall back to the HTTP endpoint.
func (c *Client) TraceJSON(ctx context.Context, id uint64) ([]byte, error) {
	return c.op(ctx, Request{Type: MsgTrace, Query: id})
}

// Ping checks liveness; a draining server answers CodeDraining, so
// Ping matches HTTP /healthz semantics.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.op(ctx, Request{Type: MsgPing})
	return err
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

// abandon drops an outstanding call after caller cancellation. The
// token is released by whoever removes the call from pending — here,
// or complete via the demux/fail paths — exactly once per call; a late
// reply for an abandoned ID is dropped without touching tokens.
func (cc *clientConn) abandon(ca *call) {
	cc.mu.Lock()
	if _, ok := cc.pending[ca.id]; ok {
		delete(cc.pending, ca.id)
		cc.mu.Unlock()
		<-cc.tokens
		return
	}
	cc.mu.Unlock()
}

// complete finishes a call and releases its token.
func (cc *clientConn) complete(ca *call, rep Reply, err error) {
	ca.code = rep.Code
	ca.body = rep.Body // aliases a per-frame buffer; never reused
	ca.err = err
	close(ca.done)
	<-cc.tokens
}

// fail marks the connection dead, closes it, and fails every
// outstanding call. Queued-but-unsent calls are failed too (they are
// in pending from submission). Safe to call multiple times.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	stranded := make([]*call, 0, len(cc.pending))
	for id, ca := range cc.pending {
		delete(cc.pending, id)
		stranded = append(stranded, ca)
	}
	cc.mu.Unlock()
	close(cc.deadc)
	cc.nc.Close()
	for _, ca := range stranded {
		cc.complete(ca, Reply{}, err)
	}
}

// sendLoop is the coalescing writer: block for one call, drain
// everything else queued, frame the lot, one write.
func (cc *clientConn) sendLoop() {
	var buf []byte
	for {
		var ca *call
		select {
		case ca = <-cc.sendq:
		case <-cc.deadc:
			return
		}
		buf = AppendFrame(buf[:0], ca.req)
		n := 1
	fill:
		for n < cc.c.opts.MaxBatch {
			select {
			case ca2 := <-cc.sendq:
				buf = AppendFrame(buf, ca2.req)
				n++
			default:
				break fill
			}
		}
		if _, err := cc.nc.Write(buf); err != nil {
			cc.fail(errConnDead)
			return
		}
		cc.c.writes.Add(1)
		cc.c.framesW.Add(int64(n))
		cc.c.bytesOut.Add(int64(len(buf)))
	}
}

// readLoop is the demux: match each reply frame's ID to its waiting
// caller. Unknown IDs are abandoned calls; their late replies are
// dropped (and their tokens released).
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.nc, 64<<10)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			cc.fail(errConnDead)
			return
		}
		cc.c.bytesIn.Add(int64(len(payload)) + frameHeader)
		rep, err := ParseReply(payload)
		if err != nil {
			cc.fail(errConnDead)
			return
		}
		cc.mu.Lock()
		ca, ok := cc.pending[rep.ID]
		delete(cc.pending, rep.ID)
		cc.mu.Unlock()
		if ok {
			cc.complete(ca, rep, nil)
		}
		// Unknown ID: late reply for an abandoned call — drop it (its
		// token was already released by abandon).
	}
}
