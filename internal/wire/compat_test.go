package wire

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestRequestTraceCodec pins the v2 wire extension: the trace id is a
// trailing uvarint, absent when zero, so a v1 encoding is byte-for-byte
// a prefix of the v2 encoding of the same request.
func TestRequestTraceCodec(t *testing.T) {
	cases := []Request{
		{Type: MsgPlace, ID: 9, Count: 3},
		{Type: MsgPlaceKeyed, ID: 10, Key: "user:7"},
		{Type: MsgRemove, ID: 11, Bin: 42},
		{Type: MsgRemoveKeyed, ID: 12, Bin: 0, Key: "k"},
	}
	for _, base := range cases {
		v1 := AppendRequest(nil, base)
		traced := base
		traced.Trace = 0xdeadbeefcafe
		v2 := AppendRequest(nil, traced)
		if !bytes.HasPrefix(v2, v1) {
			t.Fatalf("%v: traced encoding is not an extension of the untraced one", base.Type)
		}
		if len(v2) == len(v1) {
			t.Fatalf("%v: trace id encoded nothing", base.Type)
		}
		got, err := ParseRequest(v2)
		if err != nil {
			t.Fatalf("%v: parse traced: %v", base.Type, err)
		}
		if got != traced {
			t.Fatalf("%v: round trip = %+v, want %+v", base.Type, got, traced)
		}
		// A v1 peer's encoding (no trailing field) must parse with
		// Trace 0 — old clients keep working against a v2 server.
		got, err = ParseRequest(v1)
		if err != nil {
			t.Fatalf("%v: parse untraced: %v", base.Type, err)
		}
		if got != base {
			t.Fatalf("%v: untraced round trip = %+v, want %+v", base.Type, got, base)
		}
	}
}

// TestHandshakeNegotiatesMin checks the server answers min(client,
// server) for supported versions and rejects versions outside
// [MinVersion, Version].
func TestHandshakeNegotiatesMin(t *testing.T) {
	_, addr := startServer(t, newTestHandler(8), ServerOptions{})
	hello := func(version int) (Reply, Hello) {
		t.Helper()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		req := AppendRequest(nil, Request{Type: MsgHello, ID: 0, Version: version})
		if _, err := nc.Write(AppendFrame(nil, req)); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(bufio.NewReader(nc))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ParseReply(payload)
		if err != nil {
			t.Fatal(err)
		}
		var h Hello
		if rep.Code == CodeOK {
			if h, err = ParseHelloBody(rep.Body); err != nil {
				t.Fatal(err)
			}
		}
		return rep, h
	}
	if rep, h := hello(MinVersion); rep.Code != CodeOK || h.Version != MinVersion {
		t.Fatalf("HELLO(v%d) = code %v version %d, want OK v%d", MinVersion, rep.Code, h.Version, MinVersion)
	}
	if rep, h := hello(Version); rep.Code != CodeOK || h.Version != Version {
		t.Fatalf("HELLO(v%d) = code %v version %d, want OK v%d", Version, rep.Code, h.Version, Version)
	}
	if rep, _ := hello(MinVersion - 1); rep.Code != CodeBadRequest {
		t.Fatalf("HELLO(v%d) = code %v, want CodeBadRequest", MinVersion-1, rep.Code)
	}
	if rep, _ := hello(Version + 1); rep.Code != CodeBadRequest {
		t.Fatalf("HELLO(v%d) = code %v, want CodeBadRequest", Version+1, rep.Code)
	}
}

// tracingHandler records the trace id the server hands Place via ctx.
type tracingHandler struct {
	*testHandler
	got atomic.Uint64
}

func (h *tracingHandler) Place(ctx context.Context, count int) ([]int, int64, error) {
	h.got.Store(obs.TraceFrom(ctx))
	return h.testHandler.Place(ctx, count)
}

// TestTraceReachesHandler sends a traced place over a v2↔v2 connection
// and asserts the id surfaces in the handler's context.
func TestTraceReachesHandler(t *testing.T) {
	h := &tracingHandler{testHandler: newTestHandler(8)}
	_, addr := startServer(t, h, ServerOptions{})
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const id = uint64(0xfeedface)
	if _, _, err := c.Place(obs.WithTrace(context.Background(), id), 1); err != nil {
		t.Fatal(err)
	}
	if got := h.got.Load(); got != id {
		t.Fatalf("handler saw trace %#x, want %#x", got, id)
	}
}

// TestClientDowngradesToV1 fakes an old server that negotiates the
// handshake down to version 1 and asserts the client then strips trace
// ids from its requests — the payload must be byte-identical to a
// v1 encoding even though the caller's ctx carries a trace id.
func TestClientDowngradesToV1(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serverErr := make(chan error, 1)
	gotPayload := make(chan []byte, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer nc.Close()
		br := bufio.NewReader(nc)
		// Handshake: whatever the client proposes, answer version 1.
		payload, err := ReadFrame(br)
		if err != nil {
			serverErr <- err
			return
		}
		req, err := ParseRequest(payload)
		if err != nil || req.Type != MsgHello {
			serverErr <- err
			return
		}
		body := AppendHelloBody(nil, Hello{Version: 1, N: 8, Shards: 1, Protocol: "old"})
		if _, err := nc.Write(AppendFrame(nil, AppendReply(nil, req.ID, CodeOK, body))); err != nil {
			serverErr <- err
			return
		}
		// First op: capture the raw payload, answer a place body.
		payload, err = ReadFrame(br)
		if err != nil {
			serverErr <- err
			return
		}
		gotPayload <- append([]byte(nil), payload...)
		req, err = ParseRequest(payload)
		if err != nil {
			serverErr <- err
			return
		}
		body = AppendPlaceBody(nil, []int{3}, 1)
		if _, err := nc.Write(AppendFrame(nil, AppendReply(nil, req.ID, CodeOK, body))); err != nil {
			serverErr <- err
			return
		}
		serverErr <- nil
	}()

	c, err := Dial(ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if h := c.Hello(); h.Version != 1 {
		t.Fatalf("negotiated version = %d, want 1", h.Version)
	}
	ctx := obs.WithTrace(context.Background(), 0xabcdef)
	bins, _, err := c.Place(ctx, 1)
	if err != nil || len(bins) != 1 || bins[0] != 3 {
		t.Fatalf("place over v1 = %v, %v", bins, err)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("fake v1 server: %v", err)
	}
	payload := <-gotPayload
	req, err := ParseRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := AppendRequest(nil, Request{Type: MsgPlace, ID: req.ID, Count: 1})
	if !bytes.Equal(payload, want) {
		t.Fatalf("v1 connection carried extra bytes: got %x, want %x", payload, want)
	}
}
