package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame and payload decode errors. All of them are connection-fatal:
// once a length or checksum lies, the stream has lost sync and the
// only safe move is to drop the connection (the client redials).
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrBadCRC        = errors.New("wire: frame CRC mismatch")
	ErrTruncated     = errors.New("wire: truncated message")
)

// AppendFrame appends one [len][crc][payload] frame to dst and returns
// the extended slice. Batching loops call this repeatedly on a reused
// buffer and issue a single write for the lot.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// ReadFrame reads one frame from r and returns its payload. Errors
// other than a clean io.EOF at a frame boundary mean the stream is
// unusable. The returned slice is freshly allocated (safe to retain).
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, ErrTruncated
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrBadCRC
	}
	return payload, nil
}

// Request is a decoded client→server message. Only the fields relevant
// to Type are populated.
type Request struct {
	Type    MsgType
	ID      uint64
	Version int    // MsgHello
	Count   int    // MsgPlace
	Bin     int    // MsgRemove, MsgRemoveKeyed
	Key     string // MsgPlaceKeyed, MsgRemoveKeyed
	// Trace is the optional obs trace id (protocol ≥ 2). Encoded as a
	// trailing uvarint when nonzero; 0 means untraced and encodes
	// nothing, so v1 peers never see the field.
	Trace uint64
	// Query is the trace id a MsgTrace request asks for (protocol ≥ 3).
	// Unlike Trace it is part of the typed body and always encoded, so
	// it can never be confused with the optional trailing field.
	Query uint64
}

// appendHeader writes the common [type][uvarint id] request prefix.
func appendHeader(dst []byte, t MsgType, id uint64) []byte {
	dst = append(dst, byte(t))
	return binary.AppendUvarint(dst, id)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendRequest encodes req (ignoring fields irrelevant to its type)
// and appends the payload — not yet framed — to dst.
func AppendRequest(dst []byte, req Request) []byte {
	dst = appendHeader(dst, req.Type, req.ID)
	switch req.Type {
	case MsgHello:
		dst = binary.AppendUvarint(dst, uint64(req.Version))
	case MsgPlace:
		dst = binary.AppendUvarint(dst, uint64(req.Count))
	case MsgPlaceKeyed:
		dst = appendString(dst, req.Key)
	case MsgRemove:
		dst = binary.AppendUvarint(dst, uint64(req.Bin))
	case MsgRemoveKeyed:
		dst = binary.AppendUvarint(dst, uint64(req.Bin))
		dst = appendString(dst, req.Key)
	case MsgTrace:
		dst = binary.AppendUvarint(dst, req.Query)
	}
	// The trailing trace id (protocol ≥ 2). Callers must leave Trace 0
	// on connections negotiated at version 1: a v1 parser rejects any
	// trailing bytes.
	if req.Trace != 0 {
		dst = binary.AppendUvarint(dst, req.Trace)
	}
	return dst
}

// cursor is a forgiving varint reader over a payload slice.
type cursor struct {
	b  []byte
	ok bool
}

func (c *cursor) uvarint() uint64 {
	if !c.ok {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.ok = false
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) bytes(n uint64) []byte {
	if !c.ok || n > uint64(len(c.b)) {
		c.ok = false
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) str() string {
	n := c.uvarint()
	return string(c.bytes(n))
}

// maxKeyLen bounds a keyed op's key, matching the HTTP tier's implicit
// URL-length limit with room to spare.
const maxKeyLen = 4096

// ParseRequest decodes a frame payload into a Request. An error means
// the peer is speaking garbage and the connection should drop.
func ParseRequest(payload []byte) (Request, error) {
	if len(payload) == 0 {
		return Request{}, ErrTruncated
	}
	req := Request{Type: MsgType(payload[0])}
	c := &cursor{b: payload[1:], ok: true}
	req.ID = c.uvarint()
	switch req.Type {
	case MsgHello:
		req.Version = int(c.uvarint())
	case MsgPing, MsgStats:
	case MsgPlace:
		v := c.uvarint()
		if v > MaxFrame {
			return Request{}, fmt.Errorf("wire: absurd place count %d", v)
		}
		req.Count = int(v)
	case MsgPlaceKeyed:
		req.Key = c.str()
	case MsgRemove:
		req.Bin = int(c.uvarint())
	case MsgRemoveKeyed:
		req.Bin = int(c.uvarint())
		req.Key = c.str()
	case MsgTrace:
		req.Query = c.uvarint()
	default:
		return Request{}, fmt.Errorf("wire: unknown message type %d", payload[0])
	}
	// Optional trailing trace id (protocol ≥ 2). Parsed leniently —
	// the field is self-delimiting, so a v2 server accepts it from any
	// op message without per-type dispatch; bytes beyond it are still
	// a framing error.
	if c.ok && len(c.b) != 0 {
		req.Trace = c.uvarint()
	}
	if !c.ok || len(c.b) != 0 {
		return Request{}, ErrTruncated
	}
	if len(req.Key) > maxKeyLen {
		return Request{}, fmt.Errorf("wire: key exceeds %d bytes", maxKeyLen)
	}
	return req, nil
}

// Reply is a decoded server→client message. Body interpretation
// depends on what the client sent under ID.
type Reply struct {
	ID   uint64
	Code Code
	Body []byte
}

// AppendReply encodes a reply payload — not yet framed — to dst.
func AppendReply(dst []byte, id uint64, code Code, body []byte) []byte {
	dst = appendHeader(dst, MsgReply, id)
	dst = append(dst, byte(code))
	return append(dst, body...)
}

// ParseReply decodes a frame payload into a Reply. The Body aliases
// the input payload.
func ParseReply(payload []byte) (Reply, error) {
	if len(payload) == 0 || MsgType(payload[0]) != MsgReply {
		return Reply{}, fmt.Errorf("wire: expected reply frame")
	}
	c := &cursor{b: payload[1:], ok: true}
	id := c.uvarint()
	if !c.ok || len(c.b) < 1 {
		return Reply{}, ErrTruncated
	}
	return Reply{ID: id, Code: Code(c.b[0]), Body: c.b[1:]}, nil
}

// AppendPlaceBody encodes a successful PLACE/PLACE_KEYED reply body:
// uvarint samples, uvarint bin count, then each bin as a uvarint.
func AppendPlaceBody(dst []byte, bins []int, samples int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(samples))
	dst = binary.AppendUvarint(dst, uint64(len(bins)))
	for _, b := range bins {
		dst = binary.AppendUvarint(dst, uint64(b))
	}
	return dst
}

// ParsePlaceBody decodes a PLACE reply body.
func ParsePlaceBody(body []byte) (bins []int, samples int64, err error) {
	c := &cursor{b: body, ok: true}
	samples = int64(c.uvarint())
	n := c.uvarint()
	if !c.ok || n > uint64(len(c.b)) { // each bin takes ≥1 byte
		return nil, 0, ErrTruncated
	}
	bins = make([]int, n)
	for i := range bins {
		bins[i] = int(c.uvarint())
	}
	if !c.ok || len(c.b) != 0 {
		return nil, 0, ErrTruncated
	}
	return bins, samples, nil
}

// AppendHelloBody encodes a HELLO reply body.
func AppendHelloBody(dst []byte, h Hello) []byte {
	dst = binary.AppendUvarint(dst, uint64(h.Version))
	dst = binary.AppendUvarint(dst, uint64(h.N))
	dst = binary.AppendUvarint(dst, uint64(h.Shards))
	return appendString(dst, h.Protocol)
}

// ParseHelloBody decodes a HELLO reply body.
func ParseHelloBody(body []byte) (Hello, error) {
	c := &cursor{b: body, ok: true}
	h := Hello{
		Version: int(c.uvarint()),
		N:       int(c.uvarint()),
		Shards:  int(c.uvarint()),
	}
	h.Protocol = c.str()
	if !c.ok || len(c.b) != 0 {
		return Hello{}, ErrTruncated
	}
	return h, nil
}

// errBody renders an error reply body (just the message string bytes).
func errBody(dst []byte, msg string) []byte { return append(dst, msg...) }
