package dist

import (
	"math"
	"testing"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPoissonPMF(t *testing.T) {
	// Poisson(2): P(0)=e^-2, P(1)=2e^-2, P(2)=2e^-2, P(3)=4/3 e^-2.
	e2 := math.Exp(-2)
	cases := []struct {
		k    int
		want float64
	}{{0, e2}, {1, 2 * e2}, {2, 2 * e2}, {3, 4.0 / 3 * e2}, {-1, 0}}
	for _, c := range cases {
		if got := PoissonPMF(2, c.k); !close(got, c.want, 1e-12) {
			t.Errorf("PoissonPMF(2,%d) = %v want %v", c.k, got, c.want)
		}
	}
	var sum float64
	for k := 0; k < 200; k++ {
		sum += PoissonPMF(7.5, k)
	}
	if !close(sum, 1, 1e-10) {
		t.Errorf("Poisson(7.5) pmf sums to %v", sum)
	}
}

func TestPoissonTailGE(t *testing.T) {
	if got := PoissonTailGE(3, 0); got != 1 {
		t.Errorf("tail at k=0 should be 1, got %v", got)
	}
	// P(X >= 1) = 1 - e^-lambda.
	if got := PoissonTailGE(3, 1); !close(got, 1-math.Exp(-3), 1e-12) {
		t.Errorf("PoissonTailGE(3,1) = %v", got)
	}
	// Tail must equal the summed pmf.
	for _, k := range []int{1, 2, 5, 10} {
		var sum float64
		for j := k; j < 300; j++ {
			sum += PoissonPMF(4.2, j)
		}
		if got := PoissonTailGE(4.2, k); !close(got, sum, 1e-10) {
			t.Errorf("PoissonTailGE(4.2,%d) = %v want %v", k, got, sum)
		}
	}
}

func TestBinomialPMF(t *testing.T) {
	// Binomial(4, 1/2): 1,4,6,4,1 over 16.
	for k, want := range []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16} {
		if got := BinomialPMF(4, 0.5, k); !close(got, want, 1e-12) {
			t.Errorf("BinomialPMF(4,0.5,%d) = %v want %v", k, got, want)
		}
	}
	if BinomialPMF(4, 0.5, 5) != 0 || BinomialPMF(4, 0.5, -1) != 0 {
		t.Error("out-of-support pmf not zero")
	}
	if BinomialPMF(3, 0, 0) != 1 || BinomialPMF(3, 1, 3) != 1 {
		t.Error("degenerate p not handled")
	}
}

func TestGeometricPMF(t *testing.T) {
	p := 0.3
	var sum float64
	for k := 1; k < 300; k++ {
		want := math.Pow(1-p, float64(k-1)) * p
		if got := GeometricPMF(p, k); !close(got, want, 1e-12) {
			t.Fatalf("GeometricPMF(%v,%d) = %v want %v", p, k, got, want)
		}
		sum += GeometricPMF(p, k)
	}
	if !close(sum, 1, 1e-10) {
		t.Errorf("geometric pmf sums to %v", sum)
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// Known critical values: P(X >= 3.841) ~ 0.05 for df=1,
	// P(X >= 18.307) ~ 0.05 for df=10.
	if got := ChiSquareSurvival(3.841, 1); !close(got, 0.05, 2e-4) {
		t.Errorf("df=1 survival at 3.841 = %v", got)
	}
	if got := ChiSquareSurvival(18.307, 10); !close(got, 0.05, 2e-4) {
		t.Errorf("df=10 survival at 18.307 = %v", got)
	}
	if got := ChiSquareSurvival(0, 5); got != 1 {
		t.Errorf("survival at 0 = %v", got)
	}
	// df=2 is Exponential(1/2): P(X >= x) = e^{-x/2}.
	for _, x := range []float64{0.5, 2, 8} {
		if got := ChiSquareSurvival(x, 2); !close(got, math.Exp(-x/2), 1e-10) {
			t.Errorf("df=2 survival at %v = %v", x, got)
		}
	}
}

func TestUniformChiSquareDetectsBias(t *testing.T) {
	uniform := []int64{100, 104, 96, 100, 98, 102, 101, 99}
	if _, p := UniformChiSquare(uniform); p < 0.1 {
		t.Errorf("near-uniform counts rejected: p = %v", p)
	}
	biased := []int64{400, 50, 50, 50, 50, 50, 50, 100}
	if _, p := UniformChiSquare(biased); p > 1e-6 {
		t.Errorf("biased counts accepted: p = %v", p)
	}
}

func TestGoodnessOfFitZeroProbBucket(t *testing.T) {
	counts := []int64{10, 0, 10}
	probs := []float64{0.5, 0, 0.5}
	if stat, p := GoodnessOfFit(counts, probs); p < 0.5 || stat != 0 {
		t.Errorf("perfect fit rejected: stat=%v p=%v", stat, p)
	}
	counts[1] = 3
	if _, p := GoodnessOfFit(counts, probs); p != 0 {
		t.Errorf("mass on zero-probability bucket accepted: p = %v", p)
	}
}

func TestTwoSampleChiSquare(t *testing.T) {
	a := []int64{120, 240, 120, 20}
	b := []int64{118, 239, 125, 18}
	if _, p := TwoSampleChiSquare(a, b); p < 0.1 {
		t.Errorf("matching samples rejected: p = %v", p)
	}
	c := []int64{240, 120, 120, 20}
	if _, p := TwoSampleChiSquare(a, c); p > 1e-6 {
		t.Errorf("mismatched samples accepted: p = %v", p)
	}
	// Shared empty buckets are ignored.
	if _, p := TwoSampleChiSquare([]int64{50, 0, 50}, []int64{47, 0, 53}); p < 0.1 {
		t.Errorf("empty bucket distorted test: p = %v", p)
	}
	// Different sample sizes are fine.
	if _, p := TwoSampleChiSquare([]int64{100, 100}, []int64{1000, 1010}); p < 0.1 {
		t.Errorf("unequal sizes rejected: p = %v", p)
	}
}
