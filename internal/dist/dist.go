// Package dist provides the exact discrete distributions and
// chi-square goodness-of-fit machinery the test suites use to validate
// samplers and protocol outputs quantitatively (explicit p-values
// instead of ad hoc tolerances).
//
// All PMFs are computed in log space via math.Lgamma, so they are
// accurate far into the tails; the chi-square p-values come from the
// regularized incomplete gamma function (series expansion for small
// arguments, continued fraction otherwise — the classical gammp/gammq
// split).
package dist

import "math"

// PoissonPMF returns P(X = k) for X ~ Poisson(lambda). It panics if
// lambda < 0; k < 0 returns 0.
func PoissonPMF(lambda float64, k int) float64 {
	if lambda < 0 || math.IsNaN(lambda) {
		panic("dist: PoissonPMF with lambda < 0")
	}
	if k < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(lambda) - lambda - lg)
}

// PoissonTailGE returns P(X >= k) for X ~ Poisson(lambda), via the
// identity P(X >= k) = P(Gamma(k, 1) <= lambda) = gammp(k, lambda).
func PoissonTailGE(lambda float64, k int) float64 {
	if lambda < 0 || math.IsNaN(lambda) {
		panic("dist: PoissonTailGE with lambda < 0")
	}
	if k <= 0 {
		return 1
	}
	if lambda == 0 {
		return 0
	}
	return gammaP(float64(k), lambda)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p). It panics if
// n < 0 or p is outside [0, 1]; k outside [0, n] returns 0.
func BinomialPMF(n int, p float64, k int) float64 {
	if n < 0 {
		panic("dist: BinomialPMF with n < 0")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("dist: BinomialPMF with p outside [0,1]")
	}
	if k < 0 || k > n {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return math.Exp(lgN - lgK - lgNK +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// GeometricPMF returns P(X = k) for X ~ Geometric(p) with support
// {1, 2, ...} (number of trials up to and including the first
// success), matching rng.Geometric. It panics unless 0 < p <= 1.
func GeometricPMF(p float64, k int) float64 {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic("dist: GeometricPMF with p outside (0,1]")
	}
	if k < 1 {
		return 0
	}
	return math.Exp(float64(k-1)*math.Log1p(-p)) * p
}

// UniformChiSquare tests the null hypothesis that counts are uniform
// draws over len(counts) equiprobable buckets. It returns the
// chi-square statistic and its p-value (len(counts)-1 degrees of
// freedom). It panics on fewer than 2 buckets.
func UniformChiSquare(counts []int64) (stat, p float64) {
	k := len(counts)
	if k < 2 {
		panic("dist: UniformChiSquare needs >= 2 buckets")
	}
	probs := make([]float64, k)
	for i := range probs {
		probs[i] = 1 / float64(k)
	}
	return GoodnessOfFit(counts, probs)
}

// GoodnessOfFit tests observed bucket counts against the expected
// probabilities probs (which must sum to ~1). It returns Pearson's
// chi-square statistic and the p-value with len(counts)-1 degrees of
// freedom. Buckets with zero expected probability must have zero
// counts (they contribute nothing); it panics on length mismatch or
// fewer than 2 buckets.
func GoodnessOfFit(counts []int64, probs []float64) (stat, p float64) {
	if len(counts) != len(probs) {
		panic("dist: GoodnessOfFit length mismatch")
	}
	if len(counts) < 2 {
		panic("dist: GoodnessOfFit needs >= 2 buckets")
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	for i, c := range counts {
		exp := probs[i] * float64(total)
		if exp == 0 {
			if c != 0 {
				return math.Inf(1), 0
			}
			continue
		}
		d := float64(c) - exp
		stat += d * d / exp
	}
	return stat, ChiSquareSurvival(stat, len(counts)-1)
}

// TwoSampleChiSquare tests the null hypothesis that two observed
// bucket-count vectors are drawn from the same (unknown) distribution,
// via the 2×k contingency-table chi-square with expected counts from
// the pooled margins. Buckets empty in both samples contribute nothing
// and are excluded from the degrees of freedom. It returns the
// statistic and its p-value; it panics on length mismatch, fewer than
// 2 buckets, or an empty sample.
func TwoSampleChiSquare(a, b []int64) (stat, p float64) {
	if len(a) != len(b) {
		panic("dist: TwoSampleChiSquare length mismatch")
	}
	if len(a) < 2 {
		panic("dist: TwoSampleChiSquare needs >= 2 buckets")
	}
	var na, nb int64
	for i := range a {
		na += a[i]
		nb += b[i]
	}
	if na == 0 || nb == 0 {
		panic("dist: TwoSampleChiSquare with an empty sample")
	}
	total := float64(na + nb)
	fa, fb := float64(na)/total, float64(nb)/total
	occupied := 0
	for i := range a {
		ti := a[i] + b[i]
		if ti == 0 {
			continue
		}
		occupied++
		expA := float64(ti) * fa
		expB := float64(ti) * fb
		da := float64(a[i]) - expA
		db := float64(b[i]) - expB
		stat += da*da/expA + db*db/expB
	}
	if occupied < 2 {
		return 0, 1
	}
	return stat, ChiSquareSurvival(stat, occupied-1)
}

// ChiSquareSurvival returns P(X >= x) for X ~ ChiSquare(df).
func ChiSquareSurvival(x float64, df int) float64 {
	if df <= 0 {
		panic("dist: ChiSquareSurvival with df <= 0")
	}
	if x <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, x/2)
}

// gammaP is the regularized lower incomplete gamma function P(a, x).
func gammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic("dist: gammaP domain error")
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaQ is the regularized upper incomplete gamma function Q(a, x).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic("dist: gammaQ domain error")
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 1000
)

// gammaSeries evaluates P(a, x) by its power series, accurate for
// x < a+1.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a, x) by its continued fraction (modified
// Lentz's method), accurate for x >= a+1.
func gammaCF(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
