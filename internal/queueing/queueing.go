// Package queueing is a discrete-event simulation of a dispatching
// cluster — the "supermarket model" that motivates balls-into-bins
// processes in the load-balancing literature: jobs arrive as a Poisson
// process, a dispatcher assigns each job to one of n FIFO servers with
// exponential service times, and the figure of merit is the sojourn
// time distribution.
//
// The dispatcher policies mirror the allocation protocols: one random
// server (single choice), the shorter of d random queues (greedy[d],
// Mitzenmacher's supermarket model), and the paper's adaptive
// acceptance rule transplanted to queues (resample until a server's
// queue is below jobs-in-system/n + 1).
//
// The engine is a classic event-heap simulation; determinism under a
// seed is preserved by drawing all randomness from a single stream in
// event order.
package queueing

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Policy selects the dispatching rule.
type Policy int

const (
	// PickSingle sends each job to one uniform random server.
	PickSingle Policy = iota
	// PickGreedy2 sends each job to the shorter of two random queues.
	PickGreedy2
	// PickAdaptive resamples servers until one has queue length below
	// (jobs in system)/n + 1 — the paper's acceptance rule on queues.
	PickAdaptive
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PickSingle:
		return "single"
	case PickGreedy2:
		return "greedy2"
	case PickAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	N           int     // servers; required > 0
	ArrivalRate float64 // total job arrival rate Λ (jobs per unit time); required > 0
	ServiceRate float64 // per-server service rate μ; required > 0
	Jobs        int64   // jobs to complete; required > 0
	Policy      Policy
	Seed        uint64
	// WarmupJobs are completed jobs excluded from statistics
	// (default Jobs/5).
	WarmupJobs int64
}

// Result summarizes a run.
type Result struct {
	Completed     int64
	MeanSojourn   float64 // time from arrival to completion
	P50Sojourn    float64
	P99Sojourn    float64
	MaxQueue      int     // max queue length observed at arrivals
	MeanQueueSeen float64 // average queue length at the chosen server on arrival
	Probes        int64   // server probes spent by the dispatcher
	ProbesPerJob  float64
	Utilization   float64 // Λ/(n·μ), the offered load ρ
}

// event kinds, ordered so ties at equal time process arrivals first
// (deterministic; the exact choice only matters for reproducibility).
const (
	evArrival = iota
	evDeparture
)

type event struct {
	time   float64
	kind   int
	server int
	seq    int64 // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the simulation until cfg.Jobs jobs have completed and
// returns sojourn-time statistics. It panics on invalid configuration,
// including an unstable offered load (Λ >= n·μ), for which no steady
// state exists.
func Run(cfg Config) Result {
	switch {
	case cfg.N <= 0:
		panic("queueing: Config.N must be positive")
	case cfg.ArrivalRate <= 0 || math.IsNaN(cfg.ArrivalRate):
		panic("queueing: Config.ArrivalRate must be positive")
	case cfg.ServiceRate <= 0 || math.IsNaN(cfg.ServiceRate):
		panic("queueing: Config.ServiceRate must be positive")
	case cfg.Jobs <= 0:
		panic("queueing: Config.Jobs must be positive")
	case cfg.ArrivalRate >= float64(cfg.N)*cfg.ServiceRate:
		panic("queueing: offered load >= 1; the system is unstable")
	}
	warmup := cfg.WarmupJobs
	if warmup == 0 {
		warmup = cfg.Jobs / 5
	}
	if warmup >= cfg.Jobs {
		panic("queueing: warm-up consumes every job")
	}

	r := rng.New(cfg.Seed)
	queues := make([][]float64, cfg.N) // arrival times of queued jobs (FIFO)
	inSystem := int64(0)
	var seq int64

	h := &eventHeap{}
	heap.Init(h)
	push := func(t float64, kind, server int) {
		seq++
		heap.Push(h, event{time: t, kind: kind, server: server, seq: seq})
	}
	now := 0.0
	push(r.Exponential(cfg.ArrivalRate), evArrival, -1)

	res := Result{Utilization: cfg.ArrivalRate / (float64(cfg.N) * cfg.ServiceRate)}
	sojourns := make([]float64, 0, cfg.Jobs-warmup)
	var queueSeenSum float64
	var arrivalsCounted int64

	for res.Completed < cfg.Jobs {
		ev := heap.Pop(h).(event)
		now = ev.time
		switch ev.kind {
		case evArrival:
			server, probes := dispatch(cfg, queues, inSystem, r)
			res.Probes += probes
			qlen := len(queues[server])
			queueSeenSum += float64(qlen)
			arrivalsCounted++
			if qlen > res.MaxQueue {
				res.MaxQueue = qlen
			}
			queues[server] = append(queues[server], now)
			inSystem++
			if qlen == 0 {
				push(now+r.Exponential(cfg.ServiceRate), evDeparture, server)
			}
			push(now+r.Exponential(cfg.ArrivalRate), evArrival, -1)
		case evDeparture:
			q := queues[ev.server]
			arrived := q[0]
			queues[ev.server] = q[1:]
			inSystem--
			res.Completed++
			if res.Completed > warmup {
				sojourns = append(sojourns, now-arrived)
			}
			if len(queues[ev.server]) > 0 {
				push(now+r.Exponential(cfg.ServiceRate), evDeparture, ev.server)
			}
		}
	}

	if len(sojourns) > 0 {
		var sum float64
		for _, s := range sojourns {
			sum += s
		}
		res.MeanSojourn = sum / float64(len(sojourns))
		sort.Float64s(sojourns)
		res.P50Sojourn = quantile(sojourns, 0.50)
		res.P99Sojourn = quantile(sojourns, 0.99)
	}
	if arrivalsCounted > 0 {
		res.MeanQueueSeen = queueSeenSum / float64(arrivalsCounted)
		res.ProbesPerJob = float64(res.Probes) / float64(arrivalsCounted)
	}
	return res
}

// dispatch picks a server per the policy and returns it plus probes.
func dispatch(cfg Config, queues [][]float64, inSystem int64, r *rng.Rand) (int, int64) {
	n := cfg.N
	switch cfg.Policy {
	case PickGreedy2:
		a, b := r.Intn(n), r.Intn(n)
		if len(queues[b]) < len(queues[a]) {
			a = b
		}
		return a, 2
	case PickAdaptive:
		var probes int64
		for {
			j := r.Intn(n)
			probes++
			// Accept iff queue length < inSystem/n + 1, in integers:
			// n*(len-1) < inSystem. Some server is always at or below
			// the average, so this terminates.
			if int64(n)*int64(len(queues[j])-1) < inSystem {
				return j, probes
			}
		}
	default:
		return r.Intn(n), 1
	}
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
