package queueing

import (
	"math"
	"testing"
)

func TestMM1SojournMatchesTheory(t *testing.T) {
	// n=1 is an M/M/1 queue: E[sojourn] = 1/(mu - lambda).
	cfg := Config{
		N: 1, ArrivalRate: 0.5, ServiceRate: 1, Jobs: 200000, Seed: 4,
	}
	res := Run(cfg)
	want := 1 / (cfg.ServiceRate - cfg.ArrivalRate) // = 2
	if math.Abs(res.MeanSojourn-want) > 0.12*want {
		t.Fatalf("M/M/1 mean sojourn %.3f want ~%.3f", res.MeanSojourn, want)
	}
	if res.Completed != cfg.Jobs {
		t.Fatalf("completed %d want %d", res.Completed, cfg.Jobs)
	}
}

func TestSingleChoiceClusterIsNIndependentMM1(t *testing.T) {
	// With single-choice dispatch each server is M/M/1 at rate
	// lambda = Lambda/n, so mean sojourn is 1/(mu - lambda) again.
	cfg := Config{
		N: 16, ArrivalRate: 16 * 0.7, ServiceRate: 1, Jobs: 200000, Seed: 5,
		Policy: PickSingle,
	}
	res := Run(cfg)
	want := 1 / (1 - 0.7)
	if math.Abs(res.MeanSojourn-want) > 0.15*want {
		t.Fatalf("cluster mean sojourn %.3f want ~%.3f", res.MeanSojourn, want)
	}
}

func TestPowerOfTwoChoicesCutsSojourn(t *testing.T) {
	// The supermarket-model effect at high load: greedy2 slashes mean
	// and tail sojourn versus single choice.
	base := Config{
		N: 64, ArrivalRate: 64 * 0.9, ServiceRate: 1, Jobs: 150000, Seed: 6,
	}
	single := base
	single.Policy = PickSingle
	greedy := base
	greedy.Policy = PickGreedy2
	s := Run(single)
	g := Run(greedy)
	if g.MeanSojourn >= s.MeanSojourn {
		t.Fatalf("greedy2 mean %.2f not below single %.2f", g.MeanSojourn, s.MeanSojourn)
	}
	if g.P99Sojourn >= s.P99Sojourn {
		t.Fatalf("greedy2 p99 %.2f not below single %.2f", g.P99Sojourn, s.P99Sojourn)
	}
	if g.MaxQueue >= s.MaxQueue {
		t.Fatalf("greedy2 max queue %d not below single %d", g.MaxQueue, s.MaxQueue)
	}
}

func TestAdaptiveDispatchCompetitive(t *testing.T) {
	// The paper's acceptance rule on queues: much better than single
	// choice, with ~1.something probes per job at moderate load.
	base := Config{
		N: 64, ArrivalRate: 64 * 0.9, ServiceRate: 1, Jobs: 150000, Seed: 7,
	}
	single := base
	single.Policy = PickSingle
	adaptive := base
	adaptive.Policy = PickAdaptive
	s := Run(single)
	a := Run(adaptive)
	if a.MeanSojourn >= s.MeanSojourn {
		t.Fatalf("adaptive mean %.2f not below single %.2f", a.MeanSojourn, s.MeanSojourn)
	}
	if a.ProbesPerJob > 4 {
		t.Fatalf("adaptive used %.2f probes/job", a.ProbesPerJob)
	}
	if a.MaxQueue >= s.MaxQueue {
		t.Fatalf("adaptive max queue %d not below single %d", a.MaxQueue, s.MaxQueue)
	}
}

func TestProbeAccounting(t *testing.T) {
	cfg := Config{
		N: 8, ArrivalRate: 4, ServiceRate: 1, Jobs: 5000, Seed: 8,
	}
	cfg.Policy = PickSingle
	if res := Run(cfg); res.ProbesPerJob != 1 {
		t.Fatalf("single probes/job = %v", res.ProbesPerJob)
	}
	cfg.Policy = PickGreedy2
	if res := Run(cfg); res.ProbesPerJob != 2 {
		t.Fatalf("greedy2 probes/job = %v", res.ProbesPerJob)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		N: 16, ArrivalRate: 8, ServiceRate: 1, Jobs: 20000, Seed: 9,
		Policy: PickAdaptive,
	}
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 10
	if c := Run(cfg); a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestUtilizationReported(t *testing.T) {
	cfg := Config{N: 10, ArrivalRate: 7, ServiceRate: 1, Jobs: 1000, Seed: 1}
	res := Run(cfg)
	if math.Abs(res.Utilization-0.7) > 1e-12 {
		t.Fatalf("utilization %v want 0.7", res.Utilization)
	}
}

func TestPolicyString(t *testing.T) {
	if PickSingle.String() != "single" || PickGreedy2.String() != "greedy2" ||
		PickAdaptive.String() != "adaptive" {
		t.Fatal("policy names wrong")
	}
	if Policy(42).String() == "" {
		t.Fatal("unknown policy should render")
	}
}

func TestSojournQuantilesOrdered(t *testing.T) {
	cfg := Config{
		N: 32, ArrivalRate: 32 * 0.8, ServiceRate: 1, Jobs: 60000, Seed: 11,
		Policy: PickGreedy2,
	}
	res := Run(cfg)
	if !(res.P50Sojourn <= res.MeanSojourn*2 && res.P50Sojourn <= res.P99Sojourn) {
		t.Fatalf("quantiles out of order: p50=%.2f mean=%.2f p99=%.2f",
			res.P50Sojourn, res.MeanSojourn, res.P99Sojourn)
	}
	if res.P99Sojourn <= 0 {
		t.Fatal("p99 missing")
	}
}

func TestConfigPanics(t *testing.T) {
	ok := Config{N: 2, ArrivalRate: 1, ServiceRate: 1, Jobs: 10, Seed: 1}
	mutate := func(f func(*Config)) Config {
		c := ok
		f(&c)
		return c
	}
	cases := map[string]Config{
		"n=0":        mutate(func(c *Config) { c.N = 0 }),
		"lambda<=0":  mutate(func(c *Config) { c.ArrivalRate = 0 }),
		"mu<=0":      mutate(func(c *Config) { c.ServiceRate = 0 }),
		"jobs=0":     mutate(func(c *Config) { c.Jobs = 0 }),
		"unstable":   mutate(func(c *Config) { c.ArrivalRate = 2 }),
		"warmup=all": mutate(func(c *Config) { c.WarmupJobs = 10 }),
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

func BenchmarkSupermarketGreedy2(b *testing.B) {
	cfg := Config{
		N: 64, ArrivalRate: 64 * 0.9, ServiceRate: 1,
		Jobs: int64(b.N) + 10, WarmupJobs: 1, Policy: PickGreedy2, Seed: 1,
	}
	b.ResetTimer()
	Run(cfg)
}
