// Package dynamic implements a time-stepped dynamic load-balancing
// simulation in the spirit of Lüling and Monien [13], the dynamic
// reallocation baseline the paper cites: tasks arrive and depart over
// time, and bins (processors) periodically balance with random
// partners. The paper's protocols handle the arrival side without any
// reallocation; this package exists to quantify the steady-state
// smoothness that pairwise migration buys in the fully dynamic
// setting, completing the related-work inventory.
//
// Model, per time step:
//
//  1. Arrivals: Poisson(ArrivalRate·n) new tasks are placed by the
//     configured arrival rule (single random bin, greedy[2], or the
//     adaptive acceptance rule against the current average).
//  2. Departures: every task currently in the system departs
//     independently with probability DepartureProb (so the steady
//     state holds ≈ ArrivalRate·n/DepartureProb tasks).
//  3. Balancing: each bin, with probability BalanceProb, contacts one
//     uniformly random partner; if their loads differ by more than
//     one, tasks migrate from the heavier to the lighter until the
//     difference is at most one. Every migrated task counts as one
//     reallocation.
package dynamic

import (
	"fmt"
	"math"

	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Arrival selects the placement rule for new tasks.
type Arrival int

const (
	// ArriveSingle places each arrival into a uniform random bin.
	ArriveSingle Arrival = iota
	// ArriveGreedy2 places each arrival into the lesser loaded of two
	// uniform bins.
	ArriveGreedy2
	// ArriveAdaptive resamples until a bin is below (current total)/n
	// + 1 — the paper's acceptance rule transplanted to the dynamic
	// setting (the "ball count" is the live task count).
	ArriveAdaptive
)

// String returns the rule's name.
func (a Arrival) String() string {
	switch a {
	case ArriveSingle:
		return "single"
	case ArriveGreedy2:
		return "greedy2"
	case ArriveAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// Config parameterizes a dynamic simulation.
type Config struct {
	N             int     // bins; required > 0
	Steps         int     // time steps; required > 0
	ArrivalRate   float64 // mean arrivals per bin per step; required > 0
	DepartureProb float64 // per-task departure probability; required in (0, 1]
	BalanceProb   float64 // per-bin balancing probability; in [0, 1]
	Arrival       Arrival
	Seed          uint64
	WarmupSteps   int // steps before statistics are collected (default Steps/4)
}

// Result holds steady-state statistics (collected after warm-up).
type Result struct {
	// MeanTasks is the time-averaged number of live tasks.
	MeanTasks float64
	// MeanGap and MaxGap summarize max−min load over sampled steps.
	MeanGap float64
	MaxGap  int
	// MeanPsi is the time-averaged quadratic potential.
	MeanPsi float64
	// Migrations counts reallocated tasks (the balancing cost).
	Migrations int64
	// ArrivalSamples counts bin probes spent placing arrivals.
	ArrivalSamples int64
	// Arrivals and Departures count total task movements.
	Arrivals, Departures int64
}

// Run executes the simulation and returns steady-state statistics.
// It panics on invalid configuration.
func Run(cfg Config) Result {
	switch {
	case cfg.N <= 0:
		panic("dynamic: Config.N must be positive")
	case cfg.Steps <= 0:
		panic("dynamic: Config.Steps must be positive")
	case cfg.ArrivalRate <= 0 || math.IsNaN(cfg.ArrivalRate):
		panic("dynamic: Config.ArrivalRate must be positive")
	case cfg.DepartureProb <= 0 || cfg.DepartureProb > 1 || math.IsNaN(cfg.DepartureProb):
		panic("dynamic: Config.DepartureProb must be in (0,1]")
	case cfg.BalanceProb < 0 || cfg.BalanceProb > 1 || math.IsNaN(cfg.BalanceProb):
		panic("dynamic: Config.BalanceProb must be in [0,1]")
	}
	warmup := cfg.WarmupSteps
	if warmup == 0 {
		warmup = cfg.Steps / 4
	}
	if warmup >= cfg.Steps {
		panic("dynamic: warm-up consumes every step")
	}

	r := rng.New(cfg.Seed)
	// Arrivals run through the incremental allocation primitive —
	// protocol.Session, the same code path behind the batch runners
	// and the public Allocator. The session's ball index is the live
	// task count plus one, so the adaptive acceptance rule tracks the
	// number of tasks currently in the system, and departures are
	// session removals. The naive engine keeps the probe accounting
	// literal: ArrivalSamples counts actual bin contacts.
	sess := protocol.NewSession(arrivalProtocol(cfg.Arrival), cfg.N, 0, r, protocol.EngineNaive)
	v := sess.Vector()
	var res Result
	samples := 0

	for step := 0; step < cfg.Steps; step++ {
		// 1. Arrivals.
		arrivals := r.Poisson(cfg.ArrivalRate * float64(cfg.N))
		for a := int64(0); a < arrivals; a++ {
			_, probes := sess.Step()
			res.ArrivalSamples += probes
		}
		res.Arrivals += arrivals

		// 2. Departures: per-bin binomial thinning is equivalent to
		// independent per-task departures and costs O(n) per step.
		for bin := 0; bin < cfg.N; bin++ {
			leaving := r.Binomial(int64(v.Load(bin)), cfg.DepartureProb)
			for d := int64(0); d < leaving; d++ {
				sess.Remove(bin)
			}
			res.Departures += leaving
		}

		// 3. Pairwise balancing.
		if cfg.BalanceProb > 0 {
			for bin := 0; bin < cfg.N; bin++ {
				if !r.Bernoulli(cfg.BalanceProb) {
					continue
				}
				partner := r.Intn(cfg.N)
				if partner == bin {
					continue
				}
				res.Migrations += balancePair(v, bin, partner)
			}
		}

		if step >= warmup {
			samples++
			res.MeanTasks += float64(v.Balls())
			gap := v.Gap()
			res.MeanGap += float64(gap)
			if gap > res.MaxGap {
				res.MaxGap = gap
			}
			res.MeanPsi += v.QuadraticPotential()
		}
	}
	if samples > 0 {
		res.MeanTasks /= float64(samples)
		res.MeanGap /= float64(samples)
		res.MeanPsi /= float64(samples)
	}
	return res
}

// arrivalProtocol maps an arrival rule to the sequential protocol that
// implements it. ArriveAdaptive is protocol.Adaptive driven with the
// live task count: accept a bin iff its load is below (live tasks)/n
// + 1 — some bin is always at or below the average, so it terminates.
func arrivalProtocol(rule Arrival) protocol.Protocol {
	switch rule {
	case ArriveGreedy2:
		return protocol.NewGreedy(2)
	case ArriveAdaptive:
		return protocol.NewAdaptive()
	default:
		return protocol.NewSingleChoice()
	}
}

// balancePair equalizes two bins to within one task, moving tasks from
// the heavier to the lighter, and returns the number of migrations.
func balancePair(v *loadvec.Vector, a, b int) int64 {
	var moved int64
	for v.Load(a) > v.Load(b)+1 {
		v.Decrement(a)
		v.Increment(b)
		moved++
	}
	for v.Load(b) > v.Load(a)+1 {
		v.Decrement(b)
		v.Increment(a)
		moved++
	}
	return moved
}
