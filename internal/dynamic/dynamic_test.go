package dynamic

import (
	"math"
	"testing"
)

func baseConfig() Config {
	return Config{
		N:             256,
		Steps:         400,
		ArrivalRate:   2,
		DepartureProb: 0.25,
		BalanceProb:   0,
		Arrival:       ArriveSingle,
		Seed:          1,
	}
}

func TestSteadyStateTaskCount(t *testing.T) {
	// Birth-death equilibrium: statistics are sampled after the
	// departure phase, and arrivals of a step are exposed to that
	// step's departures, so T = (T + λn)(1−p) at the fixed point,
	// i.e. λ(1−p)/p = 6 tasks per bin.
	cfg := baseConfig()
	res := Run(cfg)
	p := cfg.DepartureProb
	wantPerBin := cfg.ArrivalRate * (1 - p) / p
	gotPerBin := res.MeanTasks / float64(cfg.N)
	if math.Abs(gotPerBin-wantPerBin) > 0.15*wantPerBin {
		t.Fatalf("steady-state %.2f tasks/bin, want ~%.2f", gotPerBin, wantPerBin)
	}
	if res.Arrivals == 0 || res.Departures == 0 {
		t.Fatal("no movement recorded")
	}
}

func TestBalancingSmooths(t *testing.T) {
	// Pairwise balancing must reduce both the mean gap and Psi versus
	// no balancing, at the cost of migrations.
	cfg := baseConfig()
	noBalance := Run(cfg)
	cfg.BalanceProb = 0.5
	balanced := Run(cfg)
	if balanced.MeanGap >= noBalance.MeanGap {
		t.Fatalf("balancing did not reduce gap: %.2f vs %.2f",
			balanced.MeanGap, noBalance.MeanGap)
	}
	if balanced.MeanPsi >= noBalance.MeanPsi {
		t.Fatalf("balancing did not reduce Psi: %.1f vs %.1f",
			balanced.MeanPsi, noBalance.MeanPsi)
	}
	if balanced.Migrations == 0 {
		t.Fatal("balancing reported no migrations")
	}
	if noBalance.Migrations != 0 {
		t.Fatal("migrations counted without balancing")
	}
}

func TestAdaptiveArrivalsBeatSingleWithoutMigrations(t *testing.T) {
	// The paper's acceptance rule, used only at arrival time, keeps
	// the dynamic system smoother than single-choice arrivals with no
	// reallocation at all.
	cfg := baseConfig()
	single := Run(cfg)
	cfg.Arrival = ArriveAdaptive
	adaptive := Run(cfg)
	if adaptive.MeanGap >= single.MeanGap {
		t.Fatalf("adaptive arrivals gap %.2f not below single %.2f",
			adaptive.MeanGap, single.MeanGap)
	}
	if adaptive.Migrations != 0 {
		t.Fatal("adaptive arrivals should not migrate tasks")
	}
	// And greedy2 sits between single and adaptive in probe cost.
	cfg.Arrival = ArriveGreedy2
	greedy := Run(cfg)
	if greedy.MeanGap >= single.MeanGap {
		t.Fatalf("greedy2 arrivals gap %.2f not below single %.2f",
			greedy.MeanGap, single.MeanGap)
	}
}

func TestAdaptiveArrivalProbesBounded(t *testing.T) {
	cfg := baseConfig()
	cfg.Arrival = ArriveAdaptive
	res := Run(cfg)
	probesPerArrival := float64(res.ArrivalSamples) / float64(res.Arrivals)
	if probesPerArrival > 4 {
		t.Fatalf("adaptive arrivals used %.2f probes each", probesPerArrival)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.BalanceProb = 0.3
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Fatal("same config+seed produced different results")
	}
	cfg.Seed = 2
	c := Run(cfg)
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestArrivalString(t *testing.T) {
	if ArriveSingle.String() != "single" || ArriveGreedy2.String() != "greedy2" ||
		ArriveAdaptive.String() != "adaptive" {
		t.Fatal("arrival names wrong")
	}
	if Arrival(99).String() == "" {
		t.Fatal("unknown arrival should still render")
	}
}

func TestConfigPanics(t *testing.T) {
	base := baseConfig()
	mutate := func(f func(*Config)) Config {
		c := base
		f(&c)
		return c
	}
	cases := map[string]Config{
		"n=0":        mutate(func(c *Config) { c.N = 0 }),
		"steps=0":    mutate(func(c *Config) { c.Steps = 0 }),
		"rate<=0":    mutate(func(c *Config) { c.ArrivalRate = 0 }),
		"depart=0":   mutate(func(c *Config) { c.DepartureProb = 0 }),
		"depart>1":   mutate(func(c *Config) { c.DepartureProb = 1.5 }),
		"balance<0":  mutate(func(c *Config) { c.BalanceProb = -0.1 }),
		"warmup>all": mutate(func(c *Config) { c.WarmupSteps = c.Steps }),
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

func BenchmarkDynamicStep(b *testing.B) {
	cfg := baseConfig()
	cfg.Steps = b.N + 2
	cfg.WarmupSteps = 1
	cfg.BalanceProb = 0.25
	b.ResetTimer()
	Run(cfg)
}
