// Package stats provides the streaming and batch statistics used to
// aggregate simulation replicates: Welford mean/variance accumulators
// (mergeable, for parallel reduction), exact quantiles, normal-theory
// confidence intervals, and integer histograms.
//
// The paper reports averages over 100 simulations per configuration
// (Section 5); this package is the reduction step of that methodology.
package stats

import (
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in a single pass using
// Welford's numerically stable recurrence. The zero value is ready to
// use. Welford values can be merged, enabling parallel aggregation.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds other into w, as if all of other's observations had been
// added to w (Chan et al. parallel variance update).
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.mean += delta * float64(other.n) / float64(n)
	w.n = n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean, Std/√n.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of a ~95% confidence interval for the
// mean using the normal approximation with a small-sample t correction.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return tCritical95(w.n-1) * w.StdErr()
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// with df degrees of freedom, from a table for small df and the normal
// limit 1.96 for large df.
func tCritical95(df int64) float64 {
	table := []float64{
		0, // df 0 unused
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if int(df) < len(table) {
		return table[df]
	}
	switch {
	case df < 40:
		return 2.03
	case df < 60:
		return 2.01
	case df < 120:
		return 1.99
	default:
		return 1.96
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of data using linear
// interpolation between order statistics. It sorts a copy and does not
// modify data. It panics on empty data or q outside [0, 1].
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: Quantile with q outside [0,1]")
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the q-quantile of already-sorted data.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds batch statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P10    float64
	P90    float64
	CI95   float64 // half-width of the 95% CI of the mean
}

// Summarize computes a Summary of data. It panics on empty data.
func Summarize(data []float64) Summary {
	if len(data) == 0 {
		panic("stats: Summarize of empty data")
	}
	var w Welford
	for _, x := range data {
		w.Add(x)
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return Summary{
		Count:  len(data),
		Mean:   w.Mean(),
		Std:    w.Std(),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: quantileSorted(sorted, 0.5),
		P10:    quantileSorted(sorted, 0.1),
		P90:    quantileSorted(sorted, 0.9),
		CI95:   w.CI95(),
	}
}

// IntHistogram counts occurrences of small non-negative integers,
// growing its backing store as needed. The zero value is ready to use.
type IntHistogram struct {
	counts []int64
	total  int64
}

// Add records one occurrence of value v. It panics if v < 0.
func (h *IntHistogram) Add(v int) {
	if v < 0 {
		panic("stats: IntHistogram.Add with negative value")
	}
	for v >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Count returns how many times v has been added.
func (h *IntHistogram) Count(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of observations.
func (h *IntHistogram) Total() int64 { return h.total }

// MaxValue returns the largest value with a non-zero count, or -1 when
// the histogram is empty.
func (h *IntHistogram) MaxValue() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Mean returns the mean of the recorded values (0 when empty).
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Merge folds other's counts into h.
func (h *IntHistogram) Merge(other *IntHistogram) {
	for v, c := range other.counts {
		if c == 0 {
			continue
		}
		for v >= len(h.counts) {
			h.counts = append(h.counts, 0)
		}
		h.counts[v] += c
		h.total += c
	}
}
