package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero Welford not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if !almost(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Variance() != 0 || w.Std() != 0 || w.StdErr() != 0 || w.CI95() != 0 {
		t.Error("single observation should have zero spread statistics")
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Error("min/max of single observation wrong")
	}
}

func TestWelfordMergeEquivalence(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		if len(rawA) == 0 && len(rawB) == 0 {
			return true
		}
		var whole, a, b Welford
		for _, v := range rawA {
			whole.Add(float64(v))
			a.Add(float64(v))
		}
		for _, v := range rawB {
			whole.Add(float64(v))
			b.Add(float64(v))
		}
		a.Merge(b)
		return a.Count() == whole.Count() &&
			almost(a.Mean(), whole.Mean(), 1e-9) &&
			almost(a.Variance(), whole.Variance(), 1e-6) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 2 || !almost(b.Mean(), 2, 1e-12) {
		t.Error("merge into empty incorrect")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	mkW := func(n int) Welford {
		var w Welford
		for i := 0; i < n; i++ {
			w.Add(float64(i % 10))
		}
		return w
	}
	small := mkW(10)
	big := mkW(1000)
	if small.CI95() <= big.CI95() {
		t.Errorf("CI95 did not shrink: n=10 %v vs n=1000 %v", small.CI95(), big.CI95())
	}
}

func TestTCritical(t *testing.T) {
	if !almost(tCritical95(1), 12.706, 1e-9) {
		t.Error("t(1) wrong")
	}
	if !almost(tCritical95(10), 2.228, 1e-9) {
		t.Error("t(10) wrong")
	}
	if tCritical95(1000) != 1.96 {
		t.Error("t(large) should be 1.96")
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestQuantileKnown(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almost(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	data := []float64{3, 1, 2}
	Quantile(data, 0.5)
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"q<0":   func() { Quantile([]float64{1}, -0.1) },
		"q>1":   func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, q1Raw, q2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v)
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(data, q1) <= Quantile(data, q2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	s := Summarize(data)
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary basics wrong: %+v", s)
	}
	if !almost(s.Mean, 3, 1e-12) || !almost(s.Median, 3, 1e-12) {
		t.Errorf("mean/median wrong: %+v", s)
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if !almost(s.P10, quantileSorted(sorted, 0.1), 1e-12) {
		t.Errorf("P10 wrong: %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestIntHistogram(t *testing.T) {
	var h IntHistogram
	if h.MaxValue() != -1 {
		t.Error("empty histogram MaxValue should be -1")
	}
	for _, v := range []int{0, 1, 1, 2, 2, 2, 7} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(2) != 3 || h.Count(7) != 1 || h.Count(5) != 0 || h.Count(-1) != 0 {
		t.Error("counts wrong")
	}
	if h.MaxValue() != 7 {
		t.Errorf("MaxValue = %d", h.MaxValue())
	}
	want := (0.0 + 1 + 1 + 2 + 2 + 2 + 7) / 7
	if !almost(h.Mean(), want, 1e-12) {
		t.Errorf("Mean = %v want %v", h.Mean(), want)
	}
}

func TestIntHistogramMerge(t *testing.T) {
	var a, b IntHistogram
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(9)
	a.Merge(&b)
	if a.Total() != 4 || a.Count(2) != 2 || a.Count(9) != 1 {
		t.Errorf("merge wrong: total=%d", a.Total())
	}
}

func TestIntHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var h IntHistogram
	h.Add(-1)
}
