package batched

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestBatchSizeOneIsSequentialGreedy(t *testing.T) {
	// With b = 1 the snapshot is always fresh: decisions must coincide
	// exactly with the sequential greedy[d] on the same stream.
	const n, m, d = 64, 640, 2
	seq := protocol.Run(protocol.NewGreedy(d), n, m, rng.New(3))
	bat := RunGreedy(n, m, 1, d, rng.New(3))
	if seq.Samples != bat.Samples {
		t.Fatalf("samples differ: %d vs %d", seq.Samples, bat.Samples)
	}
	ls, lb := seq.Vector.Loads(), bat.Vector.Loads()
	for i := range ls {
		if ls[i] != lb[i] {
			t.Fatalf("loads differ at bin %d", i)
		}
	}
	if bat.Batches != m {
		t.Fatalf("batches = %d want %d", bat.Batches, m)
	}
}

func TestGreedyGapDegradesWithBatchSize(t *testing.T) {
	// Stale information hurts: the max load for b = n (one full stage
	// per batch) must exceed the sequential b = 1 value in the heavily
	// loaded regime, approaching single-choice as b -> m.
	const n = 512
	const m = int64(64 * n)
	const reps = 3
	var fresh, stale, blind float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(100 + rep)
		fresh += float64(RunGreedy(n, m, 1, 2, rng.New(seed)).Vector.MaxLoad())
		stale += float64(RunGreedy(n, m, int64(n), 2, rng.New(seed)).Vector.MaxLoad())
		blind += float64(RunGreedy(n, m, m, 2, rng.New(seed)).Vector.MaxLoad())
	}
	if !(fresh < stale) {
		t.Errorf("b=n max load %.1f not above b=1 %.1f", stale/reps, fresh/reps)
	}
	if !(stale <= blind) {
		t.Errorf("b=m max load %.1f below b=n %.1f", blind/reps, stale/reps)
	}
}

func TestBatchedAdaptiveGuaranteeDegradesGracefully(t *testing.T) {
	// Within-batch pile-up can push a bin past ceil(m/n)+1, but only
	// by a little: the acceptance bound still caps each batch's
	// snapshot, so the overshoot is bounded by the per-batch pile-up,
	// which concentrates around b/n + O(1).
	const n = 256
	const m = int64(32 * n)
	for _, b := range []int64{1, 16, n} {
		out := RunAdaptive(n, m, b, rng.New(7))
		if out.Vector.Balls() != m {
			t.Fatalf("b=%d: placed %d", b, out.Vector.Balls())
		}
		bound := int(protocol.MaxLoadBound(n, m)) + int(b/int64(n)) + 3
		if out.Vector.MaxLoad() > bound {
			t.Errorf("b=%d: max load %d beyond degraded bound %d",
				b, out.Vector.MaxLoad(), bound)
		}
		if err := out.Vector.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBatchedAdaptiveBatchOneIsAdaptive(t *testing.T) {
	const n, m = 64, 640
	seq := protocol.Run(protocol.NewAdaptive(), n, m, rng.New(5))
	bat := RunAdaptive(n, m, 1, rng.New(5))
	if seq.Samples != bat.Samples {
		t.Fatalf("samples differ: %d vs %d", seq.Samples, bat.Samples)
	}
	ls, lb := seq.Vector.Loads(), bat.Vector.Loads()
	for i := range ls {
		if ls[i] != lb[i] {
			t.Fatalf("loads differ at bin %d", i)
		}
	}
}

func TestBatchedAdaptiveCostStaysLinear(t *testing.T) {
	// Even with full-stage batches the adaptive rule stays O(m):
	// the stale rule is the stage-synchronized one (cf. the sequential
	// StaleAdaptive equivalence).
	const n = 1000
	const m = int64(32 * n)
	out := RunAdaptive(n, m, int64(n), rng.New(9))
	if perBall := float64(out.Samples) / float64(m); perBall > 3 {
		t.Fatalf("samples/ball %.2f not O(1)", perBall)
	}
}

func TestBatchCounting(t *testing.T) {
	out := RunGreedy(16, 100, 30, 2, rng.New(1))
	if out.Batches != 4 { // 30+30+30+10
		t.Fatalf("batches = %d want 4", out.Batches)
	}
	out = RunAdaptive(16, 0, 5, rng.New(1))
	if out.Batches != 0 || out.Samples != 0 {
		t.Fatal("empty run should have no batches")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"greedy n=0":   func() { RunGreedy(0, 1, 1, 2, rng.New(1)) },
		"greedy m<0":   func() { RunGreedy(1, -1, 1, 2, rng.New(1)) },
		"greedy b<1":   func() { RunGreedy(1, 1, 0, 2, rng.New(1)) },
		"greedy d<1":   func() { RunGreedy(1, 1, 1, 0, rng.New(1)) },
		"adaptive b>n": func() { RunAdaptive(4, 8, 5, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkBatchedGreedy(b *testing.B) {
	const n = 4096
	for i := 0; i < b.N; i++ {
		RunGreedy(n, int64(8*n), int64(n), 2, rng.New(uint64(i)))
	}
}
