// Package batched implements the b-batched arrival model: balls
// arrive in batches of size b, and every ball in a batch makes its
// decisions against the load vector as it was at the START of the
// batch. This models parallel dispatchers whose load information is
// refreshed only periodically — the bridge between the paper's
// sequential protocols (b = 1) and the fully parallel single-round
// model (b = m), studied for greedy[d] by Berenbrink et al.
//
// Two families are provided:
//
//   - BatchedGreedy: greedy[d] decisions against the stale snapshot.
//     With b = 1 it coincides exactly with the sequential greedy[d]
//     (verified by tests); as b grows the gap degrades towards
//     single-choice behaviour, since intra-batch placements are
//     invisible.
//   - BatchedAdaptive: the paper's adaptive rule with both the load
//     vector and the ball counter frozen at the batch start. The
//     ⌈m/n⌉+1 guarantee degrades gracefully: a bin that looks
//     acceptable can receive several balls in one batch, so the bound
//     weakens by the number of accepting balls that can pile on — the
//     experiments quantify the actual degradation, which is far milder
//     than the worst case.
package batched

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Outcome summarizes a batched run.
type Outcome struct {
	Vector  *loadvec.Vector
	Samples int64
	Batches int
}

// RunGreedy places m balls into n bins in batches of size b, each ball
// choosing the least loaded of d bins according to the batch-start
// snapshot. It panics if n <= 0, m < 0, b < 1, or d < 1.
func RunGreedy(n int, m int64, b int64, d int, r *rng.Rand) Outcome {
	if d < 1 {
		panic("batched: RunGreedy with d < 1")
	}
	validate(n, m, b)
	v := loadvec.New(n)
	snapshot := make([]int32, n)
	var samples int64
	batches := 0
	for placed := int64(0); placed < m; {
		batches++
		for i := range snapshot {
			snapshot[i] = int32(v.Load(i))
		}
		batch := b
		if m-placed < batch {
			batch = m - placed
		}
		for i := int64(0); i < batch; i++ {
			best := r.Intn(n)
			bestLoad := snapshot[best]
			for j := 1; j < d; j++ {
				c := r.Intn(n)
				if snapshot[c] < bestLoad {
					best, bestLoad = c, snapshot[c]
				}
			}
			samples += int64(d)
			v.Increment(best)
		}
		placed += batch
	}
	return Outcome{Vector: v, Samples: samples, Batches: batches}
}

// RunAdaptive places m balls in batches of size b using the adaptive
// acceptance rule evaluated against the batch-start snapshot (both
// loads and the ball counter are stale within a batch). Acceptance is
// always possible within a batch: the snapshot is a legal adaptive
// state, so at least one bin satisfies the stale bound. It panics if
// n <= 0, m < 0, or b < 1; b must be at most n (beyond one stage the
// stale counter rule can reject every bin, exactly as for the lagged
// sequential variant).
func RunAdaptive(n int, m int64, b int64, r *rng.Rand) Outcome {
	validate(n, m, b)
	if b > int64(n) {
		panic(fmt.Sprintf("batched: RunAdaptive needs b <= n (%d > %d)", b, n))
	}
	v := loadvec.New(n)
	snapshot := make([]int32, n)
	nn := int64(n)
	var samples int64
	batches := 0
	for placed := int64(0); placed < m; {
		batches++
		for i := range snapshot {
			snapshot[i] = int32(v.Load(i))
		}
		known := placed + 1 // the counter as of the batch start
		batch := b
		if m-placed < batch {
			batch = m - placed
		}
		for i := int64(0); i < batch; i++ {
			for {
				j := r.Intn(n)
				samples++
				if nn*int64(snapshot[j]-1) < known {
					v.Increment(j)
					break
				}
			}
		}
		placed += batch
	}
	return Outcome{Vector: v, Samples: samples, Batches: batches}
}

func validate(n int, m, b int64) {
	if n <= 0 {
		panic("batched: n must be positive")
	}
	if m < 0 {
		panic("batched: m must be non-negative")
	}
	if b < 1 {
		panic("batched: batch size must be at least 1")
	}
}
