// Package batched implements the b-batched arrival model: balls
// arrive in batches of size b, and every ball in a batch makes its
// decisions against the load vector as it was at the START of the
// batch. This models parallel dispatchers whose load information is
// refreshed only periodically — the bridge between the paper's
// sequential protocols (b = 1) and the fully parallel single-round
// model (b = m), studied for greedy[d] by Berenbrink et al.
//
// Two families are provided, both as protocol.Protocol implementations
// so they run through the same allocation code path (protocol.Session)
// as every sequential protocol and can be driven incrementally by the
// public Allocator:
//
//   - Greedy: greedy[d] decisions against the stale snapshot. With
//     b = 1 it coincides exactly with the sequential greedy[d]
//     (verified by tests); as b grows the gap degrades towards
//     single-choice behaviour, since intra-batch placements are
//     invisible.
//   - Adaptive: the paper's adaptive rule with both the load vector
//     and the ball counter frozen at the batch start. The ⌈m/n⌉+1
//     guarantee degrades gracefully: a bin that looks acceptable can
//     receive several balls in one batch, so the bound weakens by the
//     number of accepting balls that can pile on — the experiments
//     quantify the actual degradation, which is far milder than the
//     worst case.
package batched

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Outcome summarizes a batched run.
type Outcome struct {
	Vector  *loadvec.Vector
	Samples int64
	Batches int
}

// Greedy is greedy[d] against a load snapshot refreshed every b balls.
// It implements protocol.Protocol; the refresh counts the protocol's
// own placements (not the session ball index, which under Allocator
// churn tracks the live count and could otherwise stall the refresh
// forever), so every b-th placement starts a fresh batch.
type Greedy struct {
	b        int64
	d        int
	placed   int64
	snapshot []int32
}

// NewGreedy returns batched greedy[d] with batch size b. It panics if
// b < 1 or d < 1.
func NewGreedy(b int64, d int) *Greedy {
	if b < 1 {
		panic("batched: batch size must be at least 1")
	}
	if d < 1 {
		panic("batched: NewGreedy with d < 1")
	}
	return &Greedy{b: b, d: d}
}

// Name implements protocol.Protocol.
func (g *Greedy) Name() string { return fmt.Sprintf("batched-greedy[%d,b=%d]", g.d, g.b) }

// Reset implements protocol.Protocol.
func (g *Greedy) Reset(n int, _ int64) {
	g.snapshot = make([]int32, n)
	g.placed = 0
}

// Place implements protocol.Protocol, using exactly d random choices
// evaluated against the batch-start snapshot.
func (g *Greedy) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	if g.placed%g.b == 0 {
		refresh(g.snapshot, v)
	}
	g.placed++
	n := v.N()
	best := r.Intn(n)
	bestLoad := g.snapshot[best]
	for j := 1; j < g.d; j++ {
		c := r.Intn(n)
		if g.snapshot[c] < bestLoad {
			best, bestLoad = c, g.snapshot[c]
		}
	}
	v.Increment(best)
	return int64(g.d)
}

// Adaptive is the paper's adaptive rule with the load vector and the
// ball counter both frozen at the batch start. Acceptance is always
// possible within a batch: the snapshot is a legal adaptive state, so
// at least one bin satisfies the stale bound. It implements
// protocol.Protocol; Reset panics if b > n (beyond one stage the stale
// counter rule can reject every bin, exactly as for the lagged
// sequential variant).
type Adaptive struct {
	b        int64
	n        int64
	placed   int64
	known    int64 // ball counter as of the batch start
	snapshot []int32
}

// NewAdaptive returns the batched adaptive protocol with batch size b.
// It panics if b < 1.
func NewAdaptive(b int64) *Adaptive {
	if b < 1 {
		panic("batched: batch size must be at least 1")
	}
	return &Adaptive{b: b}
}

// Name implements protocol.Protocol.
func (a *Adaptive) Name() string { return fmt.Sprintf("batched-adaptive[b=%d]", a.b) }

// Reset implements protocol.Protocol. It panics if b > n.
func (a *Adaptive) Reset(n int, _ int64) {
	if a.b > int64(n) {
		panic(fmt.Sprintf("batched: adaptive needs b <= n (%d > %d)", a.b, n))
	}
	a.n = int64(n)
	a.snapshot = make([]int32, n)
	a.placed = 0
	a.known = 0
}

// Place implements protocol.Protocol: resample until the batch-start
// snapshot shows a load below known/n + 1, refreshing both the
// snapshot and the frozen counter every b placements (placement count,
// not session ball index — see Greedy).
func (a *Adaptive) Place(v *loadvec.Vector, r *rng.Rand, i int64) int64 {
	if a.placed%a.b == 0 {
		refresh(a.snapshot, v)
		a.known = i
	}
	a.placed++
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if a.n*int64(a.snapshot[j]-1) < a.known {
			v.Increment(j)
			return samples
		}
	}
}

// refresh copies the live loads into the snapshot.
func refresh(snapshot []int32, v *loadvec.Vector) {
	for i := range snapshot {
		snapshot[i] = int32(v.Load(i))
	}
}

// RunGreedy places m balls into n bins in batches of size b, each ball
// choosing the least loaded of d bins according to the batch-start
// snapshot. It is a driver over protocol.Run. It panics if n <= 0,
// m < 0, b < 1, or d < 1.
func RunGreedy(n int, m int64, b int64, d int, r *rng.Rand) Outcome {
	p := NewGreedy(b, d)
	validate(n, m)
	out := protocol.Run(p, n, m, r)
	return Outcome{Vector: out.Vector, Samples: out.Samples, Batches: batches(m, b)}
}

// RunAdaptive places m balls in batches of size b using the adaptive
// acceptance rule evaluated against the batch-start snapshot. It is a
// driver over protocol.Run. It panics if n <= 0, m < 0, or b < 1;
// b must be at most n.
func RunAdaptive(n int, m int64, b int64, r *rng.Rand) Outcome {
	p := NewAdaptive(b)
	validate(n, m)
	out := protocol.Run(p, n, m, r)
	return Outcome{Vector: out.Vector, Samples: out.Samples, Batches: batches(m, b)}
}

// batches returns ⌈m/b⌉ — the number of snapshot refreshes a run of m
// balls performs.
func batches(m, b int64) int {
	if m <= 0 {
		return 0
	}
	return int(protocol.CeilDiv(m, b))
}

func validate(n int, m int64) {
	if n <= 0 {
		panic("batched: n must be positive")
	}
	if m < 0 {
		panic("batched: m must be non-negative")
	}
}
