package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("proto", "time", "max")
	tb.AddRow("adaptive", "1.2m", "3")
	tb.AddRow("threshold", "1.0m", "3")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "proto") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing:\n%s", out)
	}
	// Columns align: every line has the same prefix width up to col 2.
	idx0 := strings.Index(lines[0], "time")
	idx2 := strings.Index(lines[2], "1.2m")
	if idx0 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx0, idx2, out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := New("a", "b")
	tb.AddRowf(42, 3.14159)
	out := tb.Render()
	if !strings.Contains(out, "42") || !strings.Contains(out, "3.142") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTablePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no headers": func() { New() },
		"bad arity":  func() { New("a", "b").AddRow("only-one") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("x", "y")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	want := "| x | y |\n|---|---|\n| 1 | 2 |\n"
	if md != want {
		t.Fatalf("markdown = %q want %q", md, want)
	}
}

func TestCSV(t *testing.T) {
	tb := New("x", "y")
	tb.AddRow("1", "hello, world")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `"hello, world"`) {
		t.Fatalf("csv quoting wrong: %q", got)
	}
	if !strings.HasPrefix(got, "x,y\n") {
		t.Fatalf("csv header wrong: %q", got)
	}
}

func TestChartRender(t *testing.T) {
	var c Chart
	c.Title = "runtime vs m"
	c.XLabel = "m"
	c.YLabel = "time"
	c.Add(Series{Name: "adaptive", X: []float64{1, 2, 3}, Y: []float64{1.3, 2.5, 3.6}, Marker: 'a'})
	c.Add(Series{Name: "threshold", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}, Marker: 't'})
	out := c.Render()
	if !strings.Contains(out, "runtime vs m") {
		t.Fatalf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "a adaptive") || !strings.Contains(out, "t threshold") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.ContainsRune(out, 'a') || !strings.ContainsRune(out, 't') {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	var c Chart
	c.Add(Series{Name: "flat", X: []float64{5}, Y: []float64{7}, Marker: '*'})
	out := c.Render() // must not divide by zero
	if !strings.ContainsRune(out, '*') {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestChartPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatched": func() {
			var c Chart
			c.Add(Series{X: []float64{1}, Y: []float64{1, 2}, Marker: '*'})
		},
		"empty series": func() {
			var c Chart
			c.Add(Series{Marker: '*'})
		},
		"no marker": func() {
			var c Chart
			c.Add(Series{X: []float64{1}, Y: []float64{1}})
		},
		"render empty": func() {
			var c Chart
			c.Render()
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500000: "1.50e+06",
		250:     "250",
		3.14159: "3.14",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q want %q", v, got, want)
		}
	}
}
