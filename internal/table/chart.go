package table

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points in a Chart.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune
}

// Chart renders one or more series as an ASCII scatter/line chart, in
// the spirit of the paper's Figure 3 plots.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns; default 64
	Height int // plot area rows; default 20

	series []Series
}

// Add appends a series. It panics if X and Y lengths differ, the
// series is empty, or the marker is zero.
func (c *Chart) Add(s Series) {
	if len(s.X) != len(s.Y) {
		panic("table: series X and Y lengths differ")
	}
	if len(s.X) == 0 {
		panic("table: empty series")
	}
	if s.Marker == 0 {
		panic("table: series needs a marker rune")
	}
	c.series = append(c.series, s)
}

// Render draws the chart. It panics if no series were added.
func (c *Chart) Render() string {
	if len(c.series) == 0 {
		panic("table: Render with no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			grid[height-1-row][col] = s.Marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	yLo, yHi := formatTick(ymin), formatTick(ymax)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, yLo)
		}
		b.WriteString(label + " |" + string(grid[r]) + "\n")
	}
	b.WriteString(strings.Repeat(" ", labelW) + " +" + strings.Repeat("-", width) + "\n")
	xLo, xHi := formatTick(xmin), formatTick(xmax)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	b.WriteString(strings.Repeat(" ", labelW+2) + xLo + strings.Repeat(" ", gap) + xHi + "\n")
	if c.XLabel != "" || c.YLabel != "" {
		b.WriteString(fmt.Sprintf("x: %s    y: %s\n", c.XLabel, c.YLabel))
	}
	for _, s := range c.series {
		b.WriteString(fmt.Sprintf("  %c %s\n", s.Marker, s.Name))
	}
	return b.String()
}

// formatTick renders an axis endpoint compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.2e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
