// Package table renders experiment results as fixed-width text tables,
// Markdown tables, CSV, and ASCII line charts — the presentation layer
// for regenerating the paper's Table 1 and Figure 3.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells under a fixed header.
type Table struct {
	headers []string
	rows    [][]string
}

// New returns a table with the given column headers. It panics when no
// headers are given.
func New(headers ...string) *Table {
	if len(headers) == 0 {
		panic("table: New with no headers")
	}
	return &Table{headers: headers}
}

// AddRow appends a row. It panics if the cell count does not match the
// header count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("table: row has %d cells, header has %d",
			len(cells), len(t.headers)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with %v.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// widths returns per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render returns the table as aligned fixed-width text with a header
// separator line.
func (t *Table) Render() string {
	w := t.widths()
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for i, wi := range w {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wi))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown returns the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV writes the table (header first) to w in CSV format.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
