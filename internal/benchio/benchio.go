// Package benchio is the shared envelope and writer for the repo's
// BENCH_*.json records, so every benchmark binary (cmd/bbbench,
// cmd/bbload) emits machine-comparable files: one Env block describing
// the machine plus tool-specific case sections, all under a named
// schema version.
//
// Known schemas:
//
//   - bbbench/v1   — cmd/bbbench engine grid (ns/ball, speedups)
//   - bbserve/v1   — cmd/bbload serving runs (throughput, latency
//     quantiles, end-state); records additionally stamp the transport
//     columns when driving a remote target: transport ("http" or
//     "wire"), client_coalescing_factor (requests packed per socket
//     write — 1.0 for HTTP) and client_bytes_per_op (socket bytes per
//     operation, both directions)
//   - bbcluster/v1 — bbserve/v1 plus the cluster-routing fields
//     (policy, backends, cluster_gap, probes_per_pick, failovers)
//   - bbkeyed/v1   — bbserve/bbcluster records plus the keyed-tier
//     fields (keyed_policy, key_space, key_zipf_s, keys, hot_keys,
//     affinity_hit_rate, keys_moved, keys_shed, max_key_load,
//     killed_backend); restart-scenario runs (keyed-restart)
//     additionally stamp proxy_restarted, recovery_ms,
//     assignments_recovered and affinity_hit_rate_post_restart —
//     the WAL recovery columns (zero values on a restart run are
//     measurements; proxy_restarted discriminates)
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Env stamps the machine and toolchain a benchmark ran on — the
// fields shared by every BENCH_*.json schema.
type Env struct {
	// Schema names the record layout, e.g. "bbbench/v1" or
	// "bbserve/v1", so readers can dispatch without guessing.
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
}

// NewEnv stamps the current machine under the given schema name.
func NewEnv(schema string) Env {
	return Env{
		Schema:    schema,
		Generated: time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// WriteJSON marshals v with indentation and writes it to path with a
// trailing newline.
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("benchio: marshal %s: %w", path, err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("benchio: %w", err)
	}
	return nil
}

// DefaultPath returns "BENCH_<prefix><today>.json" — the conventional
// location bench tools default to; prefix distinguishes families
// (e.g. "serve_").
func DefaultPath(prefix string) string {
	return fmt.Sprintf("BENCH_%s%s.json", prefix, time.Now().Format("2006-01-02"))
}
