package watch

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// staticProbe builds a probe returning a fixed point and checks.
func staticProbe(p Point, checks ...Check) func() Sample {
	return func() Sample {
		cs := make([]Check, len(checks))
		copy(cs, checks)
		return Sample{Point: p, Checks: cs}
	}
}

// capturingHandler counts slog records at Error level and keeps the
// last message's attributes, so the injection test can assert the
// violation was logged with its snapshot.
type capturingHandler struct {
	mu     sync.Mutex
	errors int
	attrs  map[string]string
}

func (h *capturingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *capturingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if r.Level >= slog.LevelError {
		h.errors++
		h.attrs = map[string]string{"msg": r.Message}
		r.Attrs(func(a slog.Attr) bool {
			h.attrs[a.Key] = a.Value.String()
			return true
		})
	}
	return nil
}
func (h *capturingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *capturingHandler) WithGroup(string) slog.Handler      { return h }

func TestDisabledReturnsNilAndNilIsSafe(t *testing.T) {
	var m *Monitor = New("serve", Options{Disabled: true}, nil)
	if m != nil {
		t.Fatal("Disabled option did not yield nil monitor")
	}
	// Every read and write path must be a no-op, not a panic.
	m.Start()
	m.Tick(time.Now())
	m.Record(EventDrain, "x", nil)
	m.ReportViolation("inv", 1, 0, nil)
	m.OverrideBound("inv", -1)
	m.ClearOverride("inv")
	m.Close()
	if m.Hop() != "" || m.Cadence() != 0 || m.LastSeq() != 0 || m.ViolationsTotal() != 0 {
		t.Fatal("nil monitor returned nonzero state")
	}
	if m.Events(0) != nil || m.Series(0) != nil || m.EventCounts() != nil || m.ViolationCounts() != nil {
		t.Fatal("nil monitor returned non-nil collections")
	}
	if m.StatsBlockDoc() != nil {
		t.Fatal("nil monitor returned a stats block")
	}
	if doc := m.EventsDoc(0, ""); len(doc.Events) != 0 {
		t.Fatal("nil monitor returned events")
	}
	if doc := m.SeriesDoc(0); len(doc.Points) != 0 {
		t.Fatal("nil monitor returned points")
	}
}

// TestEventRingHammer drives concurrent writers through the journal
// ring while readers snapshot it — the -race proof for the
// atomic-pointer publish/load protocol.
func TestEventRingHammer(t *testing.T) {
	const writers, perWriter = 8, 500
	m := New("serve", Options{EventRing: 64}, nil)
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				evs := m.Events(0)
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Error("Events not strictly ordered by seq")
						return
					}
				}
				m.EventCounts()
				m.LastSeq()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			types := EventTypes()
			for i := 0; i < perWriter; i++ {
				m.Record(types[(w+i)%len(types)], "hammer", map[string]int64{"w": int64(w)})
			}
		}(w)
	}
	ww.Wait()
	close(stopRead)
	wg.Wait()

	if got := m.LastSeq(); got != writers*perWriter {
		t.Fatalf("LastSeq = %d, want %d", got, writers*perWriter)
	}
	var total int64
	for _, n := range m.EventCounts() {
		total += n
	}
	if total != writers*perWriter {
		t.Fatalf("EventCounts sum = %d, want %d", total, writers*perWriter)
	}
	evs := m.Events(0)
	if len(evs) == 0 || len(evs) > 64 {
		t.Fatalf("ring snapshot has %d events, want 1..64", len(evs))
	}
}

// TestSeriesRingHammer races Tick against Series reads.
func TestSeriesRingHammer(t *testing.T) {
	var placed atomic.Int64
	m := New("serve", Options{SeriesSlots: 32}, func() Sample {
		return Sample{Point: Point{Balls: placed.Load(), Placed: placed.Load()}}
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pts := m.Series(0)
				for i := 1; i < len(pts); i++ {
					if pts[i].Seq <= pts[i-1].Seq {
						t.Error("Series not ordered by seq")
						return
					}
				}
				m.Series(5)
			}
		}()
	}
	base := time.Now()
	var tw sync.WaitGroup
	for w := 0; w < 4; w++ {
		tw.Add(1)
		go func() {
			defer tw.Done()
			for i := 0; i < 200; i++ {
				placed.Add(7)
				m.Tick(base.Add(time.Duration(i) * time.Millisecond))
			}
		}()
	}
	tw.Wait()
	close(stop)
	wg.Wait()
	if pts := m.Series(0); len(pts) != 32 {
		t.Fatalf("series retained %d points, want full ring of 32", len(pts))
	}
	if pts := m.Series(3); len(pts) != 3 {
		t.Fatalf("Series(3) returned %d points", len(pts))
	}
}

// TestViolationInjection is the deterministic detection proof: inject
// a bogus bound via the test hook and the next tick must produce
// exactly one BOUND_VIOLATION event, one counter increment, and one
// slog error carrying the snapshot — then stay quiet (edge-triggered)
// until the invariant recovers and breaks again.
func TestViolationInjection(t *testing.T) {
	h := &capturingHandler{}
	m := New("serve", Options{Logger: slog.New(h)},
		staticProbe(Point{Balls: 100},
			Check{Invariant: "serve_shard_max", Observed: 5, Bound: 10,
				Fields: map[string]int64{"shard": 2}}))

	m.Tick(time.Now())
	if m.ViolationsTotal() != 0 {
		t.Fatal("violation before injection")
	}

	m.OverrideBound("serve_shard_max", -1)
	m.Tick(time.Now())
	if got := m.ViolationsTotal(); got != 1 {
		t.Fatalf("ViolationsTotal = %d after injection, want 1", got)
	}
	if got := m.ViolationCounts()["serve_shard_max"]; got != 1 {
		t.Fatalf("ledger[serve_shard_max] = %d, want 1", got)
	}
	evs := m.Events(0)
	var viol []Event
	for _, ev := range evs {
		if ev.Type == EventBoundViolation {
			viol = append(viol, ev)
		}
	}
	if len(viol) != 1 {
		t.Fatalf("journal has %d BOUND_VIOLATION events, want 1", len(viol))
	}
	ev := viol[0]
	if ev.Invariant != "serve_shard_max" || ev.Fields["observed"] != 5 || ev.Fields["bound"] != -1 || ev.Fields["shard"] != 2 {
		t.Fatalf("violation event = %+v", ev)
	}
	h.mu.Lock()
	if h.errors != 1 || h.attrs["invariant"] != "serve_shard_max" || h.attrs["hop"] != "serve" {
		t.Fatalf("slog capture = errors %d attrs %v", h.errors, h.attrs)
	}
	h.mu.Unlock()

	// Still violated on later ticks: edge-triggered, no re-fire.
	m.Tick(time.Now())
	m.Tick(time.Now())
	if got := m.ViolationsTotal(); got != 1 {
		t.Fatalf("ViolationsTotal = %d after repeat ticks, want 1 (edge-triggered)", got)
	}

	// Recover, then break again: exactly one more.
	m.ClearOverride("serve_shard_max")
	m.Tick(time.Now())
	m.OverrideBound("serve_shard_max", 0)
	m.Tick(time.Now())
	if got := m.ViolationsTotal(); got != 2 {
		t.Fatalf("ViolationsTotal = %d after recover+rebreak, want 2", got)
	}

	// The time series carries the running violation count.
	pts := m.Series(1)
	if len(pts) != 1 || pts[0].Violations != 2 {
		t.Fatalf("last point violations = %+v, want 2", pts)
	}
}

// TestReprobeSuppressesTransient feeds a probe whose first read shows
// a bound breach that a fresh re-read contradicts — the cross-read
// skew case — and asserts no violation fires.
func TestReprobeSuppressesTransient(t *testing.T) {
	var calls atomic.Int64
	m := New("serve", Options{}, func() Sample {
		// First probe: observed 20 > bound 10. Every re-probe: clean.
		if calls.Add(1) == 1 {
			return Sample{Checks: []Check{{Invariant: "serve_global_max", Observed: 20, Bound: 10}}}
		}
		return Sample{Checks: []Check{{Invariant: "serve_global_max", Observed: 5, Bound: 10}}}
	})
	m.Tick(time.Now())
	if got := m.ViolationsTotal(); got != 0 {
		t.Fatalf("transient skew fired %d violations, want 0", got)
	}
	if calls.Load() < 2 {
		t.Fatal("violated check was not re-probed")
	}
}

// TestReprobeConfirmsPersistent: a breach that survives the re-probe
// fires within that same tick.
func TestReprobeConfirmsPersistent(t *testing.T) {
	m := New("serve", Options{},
		staticProbe(Point{}, Check{Invariant: "x", Observed: 20, Bound: 10}))
	m.Tick(time.Now())
	if got := m.ViolationsTotal(); got != 1 {
		t.Fatalf("persistent breach fired %d violations, want 1", got)
	}
}

// TestCheckDisarmedBetweenReads: the re-probe no longer carries the
// invariant (e.g. keyed tier went idle) — not a breach.
func TestCheckDisarmedBetweenReads(t *testing.T) {
	var calls atomic.Int64
	m := New("serve", Options{}, func() Sample {
		if calls.Add(1) == 1 {
			return Sample{Checks: []Check{{Invariant: "serve_keyed_max", Observed: 9, Bound: 1}}}
		}
		return Sample{}
	})
	m.Tick(time.Now())
	if got := m.ViolationsTotal(); got != 0 {
		t.Fatalf("disarmed check fired %d violations, want 0", got)
	}
}

func TestTickDerivesOpsPerSec(t *testing.T) {
	var placed atomic.Int64
	m := New("serve", Options{}, func() Sample {
		return Sample{Point: Point{Placed: placed.Load()}}
	})
	base := time.Now()
	m.Tick(base)
	placed.Store(2000)
	m.Tick(base.Add(2 * time.Second))
	pts := m.Series(1)
	if len(pts) != 1 {
		t.Fatal("no points")
	}
	if got := pts[0].OpsPerSec; got < 999 || got > 1001 {
		t.Fatalf("OpsPerSec = %v, want ~1000", got)
	}
}

func TestStartCloseIdempotent(t *testing.T) {
	m := New("serve", Options{Cadence: time.Millisecond}, staticProbe(Point{Balls: 1}))
	m.Start()
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(m.Series(0)) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(m.Series(0)) == 0 {
		t.Fatal("collector never ticked")
	}
	m.Close()
	m.Close()
	// Journal stays readable after Close.
	m.Record(EventDrain, "post-close", nil)
	if m.LastSeq() == 0 {
		t.Fatal("journal not writable after Close")
	}
}

func TestEventsSinceAndTypeFilter(t *testing.T) {
	m := New("proxy", Options{}, nil)
	m.Record(EventEviction, "backend 1 evicted", nil)
	m.Record(EventRebalance, "moved keys", nil)
	m.Record(EventRejoin, "backend 1 rejoined", nil)

	if got := len(m.Events(1)); got != 2 {
		t.Fatalf("Events(since=1) = %d events, want 2", got)
	}
	doc := m.EventsDoc(0, EventRebalance)
	if len(doc.Events) != 1 || doc.Events[0].Type != EventRebalance {
		t.Fatalf("type filter returned %+v", doc.Events)
	}
	if doc.Hop != "proxy" || doc.EventCounts[string(EventEviction)] != 1 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestHTTPHandlers(t *testing.T) {
	m := New("serve", Options{},
		staticProbe(Point{Balls: 42, Gap: 3}, Check{Invariant: "x", Observed: 1, Bound: 10}))
	for i := 0; i < 5; i++ {
		m.Tick(time.Now())
	}
	m.Record(EventRecovery, "replayed", map[string]int64{"snapshot_keys": 7})

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/events", m.EventsHandler())
	mux.HandleFunc("GET /v1/timeseries", m.TimeseriesHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var edoc EventsResponse
	resp, err := http.Get(srv.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&edoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if edoc.Hop != "serve" || len(edoc.Events) != 1 || edoc.Events[0].Type != EventRecovery {
		t.Fatalf("events doc = %+v", edoc)
	}
	if _, ok := edoc.EventCounts[string(EventBoundViolation)]; !ok {
		t.Fatal("event_counts missing BOUND_VIOLATION label")
	}

	var sdoc SeriesResponse
	resp, err = http.Get(srv.URL + "/v1/timeseries?window=3")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sdoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sdoc.Points) != 3 || sdoc.Points[2].Balls != 42 || sdoc.Points[2].Gap != 3 {
		t.Fatalf("series doc = %+v", sdoc)
	}

	for _, bad := range []string{"/v1/events?since=zebra", "/v1/events?type=EXPLOSION", "/v1/timeseries?window=x"} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestWriteMetrics(t *testing.T) {
	m := New("serve", Options{},
		staticProbe(Point{}, Check{Invariant: "serve_books", Observed: 1, Bound: 0}))
	m.Tick(time.Now())
	m.Record(EventDrain, "bye", nil)

	var b strings.Builder
	m.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		`bb_invariant_violations_total{invariant="serve_books"} 1`,
		`bb_event_total{type="BOUND_VIOLATION"} 1`,
		`bb_event_total{type="DRAIN"} 1`,
		`bb_event_total{type="REJOIN"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
	// Nil monitor writes nothing.
	var nb strings.Builder
	(*Monitor)(nil).WriteMetrics(&nb)
	if nb.Len() != 0 {
		t.Fatalf("nil monitor wrote metrics: %q", nb.String())
	}
}

func TestStatsBlockDoc(t *testing.T) {
	m := New("serve", Options{Cadence: 250 * time.Millisecond}, nil)
	m.Record(EventEviction, "x", nil)
	m.ReportViolation("inv", 2, 1, nil)
	sb := m.StatsBlockDoc()
	if sb == nil || sb.ViolationsTotal != 1 || sb.EventsTotal != 2 || sb.LastEventSeq != 2 || sb.CadenceMs != 250 {
		t.Fatalf("stats block = %+v", sb)
	}
}

func TestRingWrapsOldestOut(t *testing.T) {
	m := New("serve", Options{EventRing: 4}, nil)
	for i := 0; i < 10; i++ {
		m.Record(EventRebalance, fmt.Sprintf("ev %d", i), nil)
	}
	evs := m.Events(0)
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("ring kept seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
}
