package watch

import (
	"sort"
	"sync/atomic"
)

// Point is one time-series sample: the per-window aggregates the
// collector reads from the tier's stats each tick. Fields that a tier
// cannot report (pick staleness on a bbserved, combining factor on a
// bbproxy) stay zero.
type Point struct {
	Seq        int64 `json:"seq"`
	TimeUnixMs int64 `json:"t_ms"`
	Balls      int64 `json:"balls"`
	// Placed/Removed are the cumulative books at sample time; the
	// monitor derives OpsPerSec from their deltas between ticks.
	Placed          int64   `json:"placed"`
	Removed         int64   `json:"removed"`
	MaxLoad         int     `json:"max_load"`
	MinLoad         int     `json:"min_load"`
	Gap             int     `json:"gap"`
	Psi             float64 `json:"psi"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	CombiningFactor float64 `json:"combining_factor"`
	AffinityHitRate float64 `json:"affinity_hit_rate"`
	// PickStalenessP99Ms is the routing tier's staleness-at-decision
	// p99 (the Benjamini–Makarychev cost-of-stale-views metric), here
	// to be correlated against Gap over the same axis.
	PickStalenessP99Ms int64            `json:"pick_staleness_p99_ms"`
	StageP99Ns         map[string]int64 `json:"stage_p99_ns,omitempty"`
	// Violations is the cumulative violation count at sample time — a
	// step in this series marks exactly when a bound broke.
	Violations int64 `json:"violations_total"`
}

// series is the fixed-width time-series ring: single writer (the
// collector), lock-free concurrent readers — the same atomic-pointer
// ring as the event journal.
type series struct {
	slots  []atomic.Pointer[Point]
	cursor atomic.Uint64
	seq    atomic.Int64
}

func newSeries(n int) *series {
	return &series{slots: make([]atomic.Pointer[Point], n)}
}

func (s *series) add(p *Point) {
	p.Seq = s.seq.Add(1)
	i := (s.cursor.Add(1) - 1) % uint64(len(s.slots))
	s.slots[i].Store(p)
}

// last snapshots the newest n points, oldest first (n<=0: all).
func (s *series) last(n int) []Point {
	out := make([]Point, 0, len(s.slots))
	for i := range s.slots {
		if p := s.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
