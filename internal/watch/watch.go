// Package watch is the invariant watchdog and time-series engine: the
// runtime face of the paper's guarantee. The allocator proves its
// bounds at test time; watch re-proves them continuously against the
// live system, on a configurable cadence, and keeps the history.
//
// A Monitor owns three bounded structures, all lock-free on the read
// side (the obs.Recorder atomic-pointer-ring idiom, so scrapers never
// block traffic):
//
//   - An event journal: a ring of typed events (BOUND_VIOLATION,
//     EVICTION, REJOIN, REBALANCE, RECOVERY, DRAIN) served as
//     GET /v1/events and counted in bb_event_total{type=}.
//
//   - A violation ledger: per-invariant counters behind
//     bb_invariant_violations_total{invariant=}. Violations are
//     edge-triggered — one event per transition into violation, not
//     one per tick — and every violation is slog-logged with the
//     offending snapshot.
//
//   - A time-series ring: per-tick Points (gap, max load, psi, ops/s,
//     combining factor, affinity hit rate, pick staleness, per-stage
//     p99s) served as GET /v1/timeseries?window= and joined by bbload
//     into the gap_over_time result column.
//
// The tier under watch supplies a Probe closure returning one Sample:
// a Point plus the armed Checks, all read from that tier's own
// consistent stats paths (per-shard post-batch rows and lock-all
// Metrics on serve; the single-pass Stats aggregation on cluster; the
// mutex-consistent keyed block). A Check that appears violated is
// re-probed once before it fires, so a transient cross-read skew can
// never alarm — a real breach (or an injected test bound) persists
// and is reported within one cadence.
package watch

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventType classifies journal entries.
type EventType string

// The journal's event vocabulary.
const (
	EventBoundViolation EventType = "BOUND_VIOLATION"
	EventEviction       EventType = "EVICTION"
	EventRejoin         EventType = "REJOIN"
	EventRebalance      EventType = "REBALANCE"
	EventRecovery       EventType = "RECOVERY"
	EventDrain          EventType = "DRAIN"
)

// EventTypes lists every event type in a fixed order (the metrics
// exposition order, so bb_event_total always carries all labels).
func EventTypes() []EventType {
	return []EventType{
		EventBoundViolation, EventEviction, EventRejoin,
		EventRebalance, EventRecovery, EventDrain,
	}
}

func typeIndex(t EventType) int {
	for i, k := range EventTypes() {
		if k == t {
			return i
		}
	}
	return -1
}

// Event is one journal entry. Fields carries the offending snapshot's
// integer facts (observed/bound for violations, slot/keys_moved for
// rebalances, ...).
type Event struct {
	Seq        int64            `json:"seq"`
	TimeUnixMs int64            `json:"t_ms"`
	Type       EventType        `json:"type"`
	Invariant  string           `json:"invariant,omitempty"`
	Detail     string           `json:"detail"`
	Fields     map[string]int64 `json:"fields,omitempty"`
}

// Check is one armed invariant evaluation: the predicate is
// Observed <= Bound. The tier arms only the checks whose bound its
// configuration actually guarantees (a greedy spec has no hard max-
// load bound, so its tier simply omits that check).
type Check struct {
	Invariant string `json:"invariant"`
	Observed  int64  `json:"observed"`
	Bound     int64  `json:"bound"`
	// Fields is the snapshot context attached to a violation event.
	Fields map[string]int64 `json:"fields,omitempty"`
}

// Sample is one probe result: the time-series Point plus the armed
// checks, read from one consistent pass over the tier's stats.
type Sample struct {
	Point  Point
	Checks []Check
}

// Defaults for Options zero values.
const (
	DefaultCadence     = time.Second
	DefaultEventRing   = 256
	DefaultSeriesSlots = 512
)

// Options configures a Monitor. Zero values take the defaults above.
type Options struct {
	// Cadence is the watchdog/collector tick period.
	Cadence time.Duration
	// EventRing bounds the event journal; SeriesSlots the time-series
	// ring.
	EventRing   int
	SeriesSlots int
	// Logger receives violation records (default slog.Default).
	Logger *slog.Logger
	// Disabled makes New return nil (all Monitor methods are nil-safe
	// no-ops).
	Disabled bool
}

// Monitor is one tier's watchdog. Construct with New, then Start to
// run the collector goroutine; Tick evaluates one pass synchronously
// (the deterministic path tests use). All methods are safe for
// concurrent use and safe on a nil receiver.
type Monitor struct {
	hop     string
	cadence time.Duration
	logger  *slog.Logger
	probe   func() Sample

	ring    []atomic.Pointer[Event]
	cursor  atomic.Uint64
	seq     atomic.Int64
	typeCnt [6]atomic.Int64
	violCnt atomic.Int64

	series *series

	// onViolation, when set, is invoked (in the reporting goroutine)
	// with every violation event just after it is booked — the flight
	// recorder's trigger hook.
	onViolation atomic.Pointer[func(Event)]

	// mu guards the violation ledger, the edge-trigger state, the
	// test-hook bound overrides and the last-checks snapshot.
	mu          sync.Mutex
	violations  map[string]int64
	inViolation map[string]bool
	overrides   map[string]int64
	lastChecks  []Check

	// tickMu serializes Tick (collector goroutine vs. a test's manual
	// ticks) and guards the ops/s derivation state.
	tickMu   sync.Mutex
	lastOps  int64
	lastTick time.Time

	startMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}
}

// New builds a Monitor for the given hop ("serve", "proxy"), or nil
// when o.Disabled. probe may be nil for an events-only monitor.
func New(hop string, o Options, probe func() Sample) *Monitor {
	if o.Disabled {
		return nil
	}
	if o.Cadence <= 0 {
		o.Cadence = DefaultCadence
	}
	if o.EventRing <= 0 {
		o.EventRing = DefaultEventRing
	}
	if o.SeriesSlots <= 0 {
		o.SeriesSlots = DefaultSeriesSlots
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return &Monitor{
		hop:         hop,
		cadence:     o.Cadence,
		logger:      o.Logger,
		probe:       probe,
		ring:        make([]atomic.Pointer[Event], o.EventRing),
		series:      newSeries(o.SeriesSlots),
		violations:  make(map[string]int64),
		inViolation: make(map[string]bool),
		overrides:   make(map[string]int64),
	}
}

// Hop returns the tier tag the monitor was built with.
func (m *Monitor) Hop() string {
	if m == nil {
		return ""
	}
	return m.hop
}

// Cadence returns the tick period (0 on nil).
func (m *Monitor) Cadence() time.Duration {
	if m == nil {
		return 0
	}
	return m.cadence
}

// Start launches the collector goroutine. Idempotent; a no-op without
// a probe.
func (m *Monitor) Start() {
	if m == nil || m.probe == nil {
		return
	}
	m.startMu.Lock()
	defer m.startMu.Unlock()
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.run(m.stop, m.done)
}

func (m *Monitor) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(m.cadence)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			m.Tick(now)
		}
	}
}

// Close stops the collector goroutine. The journal and series remain
// readable (handlers may serve during shutdown). Idempotent.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.startMu.Lock()
	defer m.startMu.Unlock()
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop, m.done = nil, nil
}

// Tick runs one sample-and-check pass: probe the tier, derive ops/s,
// evaluate the armed invariants edge-triggered, and record the Point.
// Exported so tests drive the watchdog deterministically without the
// collector goroutine.
func (m *Monitor) Tick(now time.Time) {
	if m == nil || m.probe == nil {
		return
	}
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	s := m.probe()
	p := s.Point
	p.TimeUnixMs = now.UnixMilli()
	ops := p.Placed + p.Removed
	if !m.lastTick.IsZero() {
		if dt := now.Sub(m.lastTick).Seconds(); dt > 0 && ops >= m.lastOps {
			p.OpsPerSec = float64(ops-m.lastOps) / dt
		}
	}
	m.lastOps, m.lastTick = ops, now
	m.rememberChecks(s.Checks)
	m.evaluate(now, s.Checks)
	p.Violations = m.violCnt.Load()
	m.series.add(&p)
}

// rememberChecks stores this tick's armed checks (with any override
// bounds applied) for LastChecks — the diagnostic-bundle view of how
// close each invariant sat to its bound at capture time.
func (m *Monitor) rememberChecks(checks []Check) {
	snap := make([]Check, len(checks))
	for i, ck := range checks {
		ck.Bound = m.boundFor(ck)
		snap[i] = ck
	}
	m.mu.Lock()
	m.lastChecks = snap
	m.mu.Unlock()
}

// LastChecks returns the most recent tick's armed checks, override
// bounds applied (nil before the first tick or on a nil monitor).
func (m *Monitor) LastChecks() []Check {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Check, len(m.lastChecks))
	copy(out, m.lastChecks)
	return out
}

// OnViolation installs fn as the violation hook: it runs synchronously
// after each violation is booked (journal, ledger, log), receiving the
// event just appended. One hook at a time; nil clears it. Nil-safe.
func (m *Monitor) OnViolation(fn func(Event)) {
	if m == nil {
		return
	}
	if fn == nil {
		m.onViolation.Store(nil)
		return
	}
	m.onViolation.Store(&fn)
}

// boundFor applies a test-hook override to a check's bound.
func (m *Monitor) boundFor(ck Check) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.overrides[ck.Invariant]; ok {
		return b
	}
	return ck.Bound
}

// evaluate runs the edge-triggered violation detector over one tick's
// checks. A check entering violation is confirmed by one fresh
// re-probe before it fires (transient cross-read skew clears on the
// second read; a genuine breach persists), then emits exactly one
// BOUND_VIOLATION event, one counter increment, and one slog record —
// and nothing more until the invariant recovers and breaks again.
func (m *Monitor) evaluate(now time.Time, checks []Check) {
	for _, ck := range checks {
		bound := m.boundFor(ck)
		violated := ck.Observed > bound
		m.mu.Lock()
		was := m.inViolation[ck.Invariant]
		m.mu.Unlock()
		if violated && !was {
			if fresh, ok := m.reprobe(ck.Invariant); ok {
				ck = fresh
				bound = m.boundFor(ck)
				violated = ck.Observed > bound
			} else {
				violated = false // disarmed between reads: not a breach
			}
		}
		switch {
		case violated && !was:
			m.mu.Lock()
			m.inViolation[ck.Invariant] = true
			m.mu.Unlock()
			m.reportViolation(now, ck.Invariant, ck.Observed, bound, ck.Fields)
		case !violated && was:
			m.mu.Lock()
			delete(m.inViolation, ck.Invariant)
			m.mu.Unlock()
		}
	}
}

// reprobe re-reads the named invariant from a fresh sample.
func (m *Monitor) reprobe(invariant string) (Check, bool) {
	for _, ck := range m.probe().Checks {
		if ck.Invariant == invariant {
			return ck, true
		}
	}
	return Check{}, false
}

// reportViolation books one violation: ledger, journal, metrics, log.
func (m *Monitor) reportViolation(now time.Time, invariant string, observed, bound int64, fields map[string]int64) {
	m.mu.Lock()
	m.violations[invariant]++
	m.mu.Unlock()
	m.violCnt.Add(1)
	f := make(map[string]int64, len(fields)+2)
	for k, v := range fields {
		f[k] = v
	}
	f["observed"], f["bound"] = observed, bound
	detail := fmt.Sprintf("%s: observed %d > bound %d", invariant, observed, bound)
	ev := m.appendAt(now, EventBoundViolation, invariant, detail, f)
	attrs := []any{"hop", m.hop, "invariant", invariant, "observed", observed, "bound", bound}
	for k, v := range fields {
		attrs = append(attrs, k, v)
	}
	m.logger.Error("watch: invariant violated", attrs...)
	if fn := m.onViolation.Load(); fn != nil {
		(*fn)(*ev)
	}
}

// ReportViolation books a violation detected outside the tick loop —
// the rebalance-time moved<=resident check fires here, at the moment
// the rebalance runs, rather than waiting for a cadence.
func (m *Monitor) ReportViolation(invariant string, observed, bound int64, fields map[string]int64) {
	if m == nil {
		return
	}
	m.reportViolation(time.Now(), invariant, observed, bound, fields)
}

// OverrideBound is the violation-injection test hook: it replaces the
// named invariant's bound on every subsequent evaluation, so a bogus
// bound (say, -1) forces a deterministic BOUND_VIOLATION within one
// cadence without corrupting any real state.
func (m *Monitor) OverrideBound(invariant string, bound int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.overrides[invariant] = bound
}

// ClearOverride removes an injected bound.
func (m *Monitor) ClearOverride(invariant string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.overrides, invariant)
}

// Record appends an external lifecycle event (EVICTION, REJOIN,
// REBALANCE, RECOVERY, DRAIN) to the journal.
func (m *Monitor) Record(t EventType, detail string, fields map[string]int64) {
	if m == nil {
		return
	}
	m.appendAt(time.Now(), t, "", detail, fields)
}

// appendAt publishes one event into the journal ring (the
// obs.Recorder idiom: claim a slot with the cursor, store the
// immutable entry behind an atomic pointer).
func (m *Monitor) appendAt(now time.Time, t EventType, invariant, detail string, fields map[string]int64) *Event {
	ev := &Event{
		Seq:        m.seq.Add(1),
		TimeUnixMs: now.UnixMilli(),
		Type:       t,
		Invariant:  invariant,
		Detail:     detail,
		Fields:     fields,
	}
	if i := typeIndex(t); i >= 0 {
		m.typeCnt[i].Add(1)
	}
	slot := (m.cursor.Add(1) - 1) % uint64(len(m.ring))
	m.ring[slot].Store(ev)
	return ev
}

// Events snapshots the journal: every retained event with Seq >
// since, oldest first. since=0 returns the whole ring.
func (m *Monitor) Events(since int64) []Event {
	if m == nil {
		return nil
	}
	out := make([]Event, 0, len(m.ring))
	for i := range m.ring {
		if ev := m.ring[i].Load(); ev != nil && ev.Seq > since {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// LastSeq returns the newest event's sequence number (0 when empty).
func (m *Monitor) LastSeq() int64 {
	if m == nil {
		return 0
	}
	return m.seq.Load()
}

// EventCounts returns cumulative appends per event type — every type
// is present, zero or not, so metric label sets are stable.
func (m *Monitor) EventCounts() map[EventType]int64 {
	if m == nil {
		return nil
	}
	out := make(map[EventType]int64, len(m.typeCnt))
	for i, t := range EventTypes() {
		out[t] = m.typeCnt[i].Load()
	}
	return out
}

// ViolationsTotal returns the cumulative violation count across all
// invariants.
func (m *Monitor) ViolationsTotal() int64 {
	if m == nil {
		return 0
	}
	return m.violCnt.Load()
}

// ViolationCounts returns the per-invariant violation ledger.
func (m *Monitor) ViolationCounts() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.violations))
	for k, v := range m.violations {
		out[k] = v
	}
	return out
}

// Series returns the last n time-series points, oldest first (n<=0
// returns everything retained).
func (m *Monitor) Series(n int) []Point {
	if m == nil {
		return nil
	}
	return m.series.last(n)
}
