package watch

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// EventsResponse is the body of GET /v1/events.
type EventsResponse struct {
	Hop             string           `json:"hop"`
	ViolationsTotal int64            `json:"violations_total"`
	Violations      map[string]int64 `json:"violations,omitempty"`
	EventCounts     map[string]int64 `json:"event_counts"`
	Events          []Event          `json:"events"`
}

// EventsDoc assembles the /v1/events document (empty doc on nil).
func (m *Monitor) EventsDoc(since int64, typ EventType) EventsResponse {
	resp := EventsResponse{
		Hop:             m.Hop(),
		ViolationsTotal: m.ViolationsTotal(),
		Violations:      m.ViolationCounts(),
		EventCounts:     map[string]int64{},
		Events:          []Event{},
	}
	for t, n := range m.EventCounts() {
		resp.EventCounts[string(t)] = n
	}
	for _, ev := range m.Events(since) {
		if typ != "" && ev.Type != typ {
			continue
		}
		resp.Events = append(resp.Events, ev)
	}
	return resp
}

// EventsHandler serves GET /v1/events. Query parameters:
//
//	since=SEQ   only events with seq > SEQ (incremental tailing)
//	type=NAME   only events of that type (e.g. type=EVICTION)
//
// Safe on a nil monitor (serves the empty document).
func (m *Monitor) EventsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var since int64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil || v < 0 {
				httpError(w, "since must be a non-negative integer, got %q", s)
				return
			}
			since = v
		}
		typ := EventType(r.URL.Query().Get("type"))
		if typ != "" && typeIndex(typ) < 0 {
			httpError(w, "unknown event type %q", string(typ))
			return
		}
		httpJSON(w, m.EventsDoc(since, typ))
	}
}

// SeriesResponse is the body of GET /v1/timeseries.
type SeriesResponse struct {
	Hop             string  `json:"hop"`
	CadenceMs       int64   `json:"cadence_ms"`
	ViolationsTotal int64   `json:"violations_total"`
	Points          []Point `json:"points"`
}

// SeriesDoc assembles the /v1/timeseries document: the last window
// points (window<=0: everything retained). Empty doc on nil.
func (m *Monitor) SeriesDoc(window int) SeriesResponse {
	points := m.Series(window)
	if points == nil {
		points = []Point{}
	}
	return SeriesResponse{
		Hop:             m.Hop(),
		CadenceMs:       m.Cadence().Milliseconds(),
		ViolationsTotal: m.ViolationsTotal(),
		Points:          points,
	}
}

// TimeseriesHandler serves GET /v1/timeseries?window=N (the last N
// points; absent or 0 means all retained). Safe on a nil monitor.
func (m *Monitor) TimeseriesHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		window := 0
		if s := r.URL.Query().Get("window"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				httpError(w, "window must be a non-negative integer, got %q", s)
				return
			}
			window = v
		}
		httpJSON(w, m.SeriesDoc(window))
	}
}

// WriteMetrics renders the watchdog's Prometheus series: the
// per-invariant violation counters and the per-type event counters.
// Shared by bbserved and bbproxy so the series cannot drift between
// tiers; a nil monitor writes nothing.
func (m *Monitor) WriteMetrics(w io.Writer) {
	if m == nil {
		return
	}
	fmt.Fprintf(w, "# HELP bb_invariant_violations_total Paper-bound violations detected by the watchdog.\n# TYPE bb_invariant_violations_total counter\n")
	for inv, n := range m.ViolationCounts() {
		fmt.Fprintf(w, "bb_invariant_violations_total{invariant=%q} %d\n", inv, n)
	}
	fmt.Fprintf(w, "# HELP bb_event_total Watchdog journal events by type.\n# TYPE bb_event_total counter\n")
	for _, t := range EventTypes() {
		fmt.Fprintf(w, "bb_event_total{type=%q} %d\n", string(t), m.EventCounts()[t])
	}
}

// StatsBlock is the watch summary embedded in both tiers' /v1/stats
// documents (jq-friendly: violations without scraping /metrics).
type StatsBlock struct {
	ViolationsTotal int64 `json:"violations_total"`
	EventsTotal     int64 `json:"events_total"`
	LastEventSeq    int64 `json:"last_event_seq"`
	CadenceMs       int64 `json:"cadence_ms"`
}

// StatsBlockDoc returns the stats-embedded summary, nil on a nil
// monitor (the block is omitted when the watchdog is off).
func (m *Monitor) StatsBlockDoc() *StatsBlock {
	if m == nil {
		return nil
	}
	var events int64
	for _, n := range m.EventCounts() {
		events += n
	}
	return &StatsBlock{
		ViolationsTotal: m.ViolationsTotal(),
		EventsTotal:     events,
		LastEventSeq:    m.LastSeq(),
		CadenceMs:       m.Cadence().Milliseconds(),
	}
}

// OverrideHandler serves POST /debug/watch/override — the out-of-
// process face of OverrideBound, mounted on the daemons' debug
// listeners (never the public API). The CI smoke test posts
// invariant=NAME&bound=-1 to force a deterministic violation through
// the real watchdog → flight-recorder path; bound may be any int64,
// and posting without clear resets nothing (use clear=1 to remove the
// override). A nil monitor answers 503.
func OverrideHandler(m *Monitor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if m == nil {
			http.Error(w, "watchdog disabled", http.StatusServiceUnavailable)
			return
		}
		inv := r.URL.Query().Get("invariant")
		if inv == "" {
			httpError(w, "missing invariant parameter")
			return
		}
		if r.URL.Query().Get("clear") != "" {
			m.ClearOverride(inv)
			httpJSON(w, map[string]any{"invariant": inv, "cleared": true})
			return
		}
		s := r.URL.Query().Get("bound")
		bound, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			httpError(w, "bound must be an integer, got %q", s)
			return
		}
		m.OverrideBound(inv, bound)
		httpJSON(w, map[string]any{"invariant": inv, "bound": bound})
	}
}

// httpJSON/httpError mirror the serve helpers without importing
// internal/serve (watch sits below both tiers in the package graph).
func httpJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
