package sim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/protocol"
)

func adaptiveSpec(reps int) Spec {
	return Spec{
		Factory: func() protocol.Protocol { return protocol.NewAdaptive() },
		N:       64, M: 640, Reps: reps, Seed: 7,
	}
}

func TestRunAggregates(t *testing.T) {
	agg, err := Run(context.Background(), adaptiveSpec(20), 4)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Time.Count() != 20 {
		t.Fatalf("count = %d", agg.Time.Count())
	}
	if agg.Time.Mean() < 640 {
		t.Fatalf("mean time %v below m", agg.Time.Mean())
	}
	if agg.TimePerBall.Mean() < 1 || agg.TimePerBall.Mean() > 3 {
		t.Fatalf("time per ball %v implausible", agg.TimePerBall.Mean())
	}
	if agg.MaxLoad.Max() > 12 {
		t.Fatalf("max load %v exceeds ceil(m/n)+1", agg.MaxLoad.Max())
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := Run(context.Background(), adaptiveSpec(16), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), adaptiveSpec(16), 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time.Mean() != b.Time.Mean() || a.Psi.Mean() != b.Psi.Mean() {
		t.Fatal("aggregation depends on worker count")
	}
	if a.Time.Variance() != b.Time.Variance() {
		t.Fatal("variance depends on worker count")
	}
}

func TestRunReplicatesDiffer(t *testing.T) {
	agg, err := Run(context.Background(), adaptiveSpec(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Time.Variance() == 0 {
		t.Fatal("replicates produced identical times; seeding is broken")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := adaptiveSpec(1000)
	if _, err := Run(ctx, spec, 2); err == nil {
		t.Fatal("cancelled context did not error")
	}
}

func TestRunPanicsOnBadSpec(t *testing.T) {
	bad := []Spec{
		{N: 1, M: 1, Reps: 1},                             // nil factory
		{Factory: adaptiveSpec(1).Factory, M: 1, Reps: 1}, // N=0
		{Factory: adaptiveSpec(1).Factory, N: 1, M: -1, Reps: 1},
		{Factory: adaptiveSpec(1).Factory, N: 1, M: 1, Reps: 0},
	}
	for i, s := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("spec %d did not panic", i)
				}
			}()
			Run(context.Background(), s, 1)
		}()
	}
}

func TestReplicatePanicIsCaptured(t *testing.T) {
	spec := Spec{
		Name: "boom",
		Factory: func() protocol.Protocol {
			// left[4] with n=2 panics at Reset: n < d.
			return protocol.NewLeft(4)
		},
		N: 2, M: 2, Reps: 3, Seed: 1,
	}
	_, err := Run(context.Background(), spec, 2)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected captured panic error, got %v", err)
	}
}

func TestRunAll(t *testing.T) {
	specs := []Spec{adaptiveSpec(3), adaptiveSpec(3)}
	aggs, err := RunAll(context.Background(), specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("got %d aggregates", len(aggs))
	}
	// Identical specs (same seed) must agree exactly.
	if aggs[0].Time.Mean() != aggs[1].Time.Mean() {
		t.Fatal("identical specs disagreed")
	}
}

func TestSweepM(t *testing.T) {
	f := adaptiveSpec(1).Factory
	specs := SweepM("adaptive", f, 64, []int64{64, 128, 256}, 5, 3)
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	seen := map[uint64]bool{}
	for i, s := range specs {
		if s.M != int64(64<<i) {
			t.Errorf("spec %d has m=%d", i, s.M)
		}
		if s.Reps != 5 || s.N != 64 {
			t.Errorf("spec %d lost shared params", i)
		}
		if seen[s.Seed] {
			t.Error("duplicate seed across sweep points")
		}
		seen[s.Seed] = true
		if !strings.Contains(s.Label(), "m=") {
			t.Errorf("label %q missing m", s.Label())
		}
	}
}

func TestLabelDefaultsToProtocolName(t *testing.T) {
	s := adaptiveSpec(1)
	if s.Label() != "adaptive" {
		t.Fatalf("label = %q", s.Label())
	}
}
