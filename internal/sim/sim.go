// Package sim is the experiment harness: it runs replicated allocation
// experiments across a worker pool, with deterministic per-replicate
// seeding and mergeable statistics, reproducing the paper's Section 5
// methodology ("every point is the average over 100 simulations").
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Spec describes one experiment configuration.
type Spec struct {
	// Name labels the configuration in outputs (defaults to the
	// protocol name when empty).
	Name string
	// Factory builds a fresh protocol instance per replicate.
	Factory protocol.Factory
	// N and M are the bins and balls of each replicate.
	N int
	M int64
	// Reps is the number of replicates (the paper uses 100).
	Reps int
	// Seed is the master seed; replicate r uses stream r, so results
	// are reproducible and independent of scheduling.
	Seed uint64
	// Engine selects the placement implementation. The zero value is
	// protocol.EngineFast; use protocol.EngineNaive for the reference
	// rejection loop.
	Engine protocol.Engine
}

// Aggregate holds per-metric statistics over the replicates of one
// Spec.
type Aggregate struct {
	Spec Spec

	Time        stats.Welford // allocation time (samples)
	TimePerBall stats.Welford
	MaxLoad     stats.Welford
	Gap         stats.Welford
	Psi         stats.Welford
	Phi         stats.Welford
}

// Label returns the spec's display name.
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Factory().Name()
}

// validate panics on malformed specs, which are programming errors.
func (s Spec) validate() {
	if s.Factory == nil {
		panic("sim: Spec without Factory")
	}
	if s.N <= 0 {
		panic("sim: Spec with N <= 0")
	}
	if s.M < 0 {
		panic("sim: Spec with M < 0")
	}
	if s.Reps <= 0 {
		panic("sim: Spec with Reps <= 0")
	}
}

// Run executes all replicates of spec, fanning out over `workers`
// goroutines (0 = GOMAXPROCS), and returns merged statistics. The
// aggregation order is fixed by replicate index, so results are
// bit-for-bit reproducible for a given seed regardless of workers.
// ctx cancellation aborts pending replicates and returns ctx.Err().
func Run(ctx context.Context, spec Spec, workers int) (Aggregate, error) {
	spec.validate()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Reps {
		workers = spec.Reps
	}

	metrics := make([]core.Metrics, spec.Reps)
	errs := make([]error, spec.Reps)
	var wg sync.WaitGroup
	next := make(chan int)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[rep] = fmt.Errorf("replicate %d panicked: %v", rep, r)
						}
					}()
					seed := rng.StreamSeed(spec.Seed, uint64(rep))
					metrics[rep] = core.RunOneEngine(spec.Factory, spec.N, spec.M, seed, spec.Engine)
				}()
			}
		}()
	}

feed:
	for rep := 0; rep < spec.Reps; rep++ {
		select {
		case next <- rep:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Aggregate{}, err
	}
	for _, err := range errs {
		if err != nil {
			return Aggregate{}, err
		}
	}

	agg := Aggregate{Spec: spec}
	for _, m := range metrics {
		agg.Time.Add(float64(m.Samples))
		agg.TimePerBall.Add(m.SamplesPerBall)
		agg.MaxLoad.Add(float64(m.MaxLoad))
		agg.Gap.Add(float64(m.Gap))
		agg.Psi.Add(m.Psi)
		agg.Phi.Add(m.Phi)
	}
	return agg, nil
}

// RunAll runs every spec in order and returns the aggregates. It stops
// at the first error (including context cancellation).
func RunAll(ctx context.Context, specs []Spec, workers int) ([]Aggregate, error) {
	out := make([]Aggregate, 0, len(specs))
	for _, s := range specs {
		agg, err := Run(ctx, s, workers)
		if err != nil {
			return out, err
		}
		out = append(out, agg)
	}
	return out, nil
}

// SweepM builds one spec per m value, sharing every other parameter —
// the shape of the paper's Figure 3 sweeps.
func SweepM(name string, f protocol.Factory, n int, ms []int64, reps int, seed uint64) []Spec {
	specs := make([]Spec, len(ms))
	for i, m := range ms {
		specs[i] = Spec{
			Name:    fmt.Sprintf("%s m=%d", name, m),
			Factory: f,
			N:       n,
			M:       m,
			Reps:    reps,
			Seed:    rng.Mix(seed, uint64(i)),
		}
	}
	return specs
}
