package diag

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// TestMain lets the test binary double as the crash victim: re-exec'd
// with BB_DIAG_CRASH_DIR set, it dumps a bundle (dying at the armed
// BB_CRASHPOINT) instead of running the suite — the same harness shape
// as the WAL's crash tests.
func TestMain(m *testing.M) {
	if dir := os.Getenv("BB_DIAG_CRASH_DIR"); dir != "" {
		crashWorkload(dir)
		os.Exit(0) // reached only if the armed point never fired
	}
	os.Exit(m.Run())
}

// crashWorkload writes one bundle of known sections, so the surviving
// prefix after a kill is exactly predictable per section index.
func crashWorkload(dir string) {
	w, err := Create(filepath.Join(dir, "crash.bbdiag"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash workload create:", err)
		os.Exit(1)
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("sec-%d", i)
		if err := w.WriteSection(name, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			fmt.Fprintln(os.Stderr, "crash workload section:", err)
			os.Exit(1)
		}
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "crash workload close:", err)
		os.Exit(1)
	}
}

// runCrashVictim re-execs this binary with the crash point armed and
// returns the path of the bundle it died over.
func runCrashVictim(t *testing.T, point string) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BB_DIAG_CRASH_DIR="+dir,
		faultinject.EnvVar+"="+point)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != faultinject.KillStatus {
		t.Fatalf("victim armed with %s exited %v (want status %d); output:\n%s",
			point, err, faultinject.KillStatus, out)
	}
	return filepath.Join(dir, "crash.bbdiag")
}

// checkPrefix asserts the bundle decodes an exact prefix of the
// workload's sections: never an error, never an invented or reordered
// section, never a complete marker.
func checkPrefix(t *testing.T, path string) *Bundle {
	t.Helper()
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle after crash: %v", err)
	}
	for i, s := range b.Sections {
		wantName := fmt.Sprintf("sec-%d", i)
		wantData := fmt.Sprintf("payload-%d", i)
		if s.Name != wantName || string(s.Data) != wantData {
			t.Fatalf("section %d = %q/%q, want %q/%q", i, s.Name, s.Data, wantName, wantData)
		}
	}
	if b.Complete {
		t.Fatal("crashed bundle reports complete")
	}
	return b
}

func TestCrashMidSection(t *testing.T) {
	// Die on the 3rd section with half its frame durably written: the
	// two complete sections must read back, the torn half counted.
	b := checkPrefix(t, runCrashVictim(t, "diag.section.partial:kill:3"))
	if len(b.Sections) != 2 {
		t.Fatalf("recovered %d sections, want 2", len(b.Sections))
	}
	if b.TornBytes == 0 {
		t.Fatal("no torn bytes counted for a mid-section crash")
	}
}

func TestCrashOnFirstSection(t *testing.T) {
	// Die on the very first section: magic only, zero sections, still
	// a readable (empty, incomplete) bundle.
	b := checkPrefix(t, runCrashVictim(t, "diag.section.partial:kill:1"))
	if len(b.Sections) != 0 {
		t.Fatalf("recovered %d sections, want 0", len(b.Sections))
	}
}

func TestCrashOnEndMarker(t *testing.T) {
	// Die writing the end marker itself: every payload section is
	// intact but the bundle must still report incomplete.
	b := checkPrefix(t, runCrashVictim(t, "diag.section.partial:kill:7"))
	if len(b.Sections) != 6 {
		t.Fatalf("recovered %d sections, want all 6", len(b.Sections))
	}
}

func TestInjectedSectionError(t *testing.T) {
	// err mode: the 4th section write fails without killing the
	// process; the writer's sticky error path must surface it and the
	// prefix must still read back.
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BB_DIAG_CRASH_DIR="+dir,
		faultinject.EnvVar+"=diag.section.partial:err:4")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("err-mode victim exited %v (want status 1); output:\n%s", err, out)
	}
	b := checkPrefix(t, filepath.Join(dir, "crash.bbdiag"))
	if len(b.Sections) != 3 {
		t.Fatalf("recovered %d sections, want 3", len(b.Sections))
	}
}
