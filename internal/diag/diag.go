package diag

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/watch"
)

// Schema versions the bundle's section contents (the container framing
// is versioned separately by the file magic).
const Schema = "bbdiag/v1"

// Defaults for Options zero values.
const (
	DefaultMaxBundles  = 16
	DefaultMinInterval = 30 * time.Second
)

// Trigger names. Every bundle's meta section records which path
// captured it.
const (
	TriggerViolation  = "violation"  // watch invariant breach
	TriggerSignal     = "sigquit"    // operator kill -QUIT
	TriggerRecovery   = "recovery"   // WAL replay found torn bytes
	TriggerCrashPoint = "crashpoint" // restarted with a fault armed
	TriggerManual     = "manual"     // explicit Dump call (bbdoctor, tests)
)

// Options configures a Recorder. Zero values take the defaults above.
type Options struct {
	// Dir is where bundles land; "" disables the recorder (New returns
	// nil, and all methods are nil-safe no-ops) — the -diag-dir flag's
	// default, mirroring -data-dir.
	Dir string
	// Hop tags bundles with the capturing tier ("serve", "proxy").
	Hop string
	// MaxBundles bounds retention: beyond it the oldest bundles are
	// pruned after each dump, so a flapping trigger cannot fill the
	// disk. Default DefaultMaxBundles.
	MaxBundles int
	// MinInterval rate-limits async triggers; a trigger landing inside
	// the window is counted dropped, not queued. Synchronous Dump
	// bypasses it (an operator's SIGQUIT always dumps). Default
	// DefaultMinInterval.
	MinInterval time.Duration
	// Build is stamped into every bundle's meta section.
	Build obs.BuildInfo
	// Logger receives dump lifecycle records (default slog.Default).
	Logger *slog.Logger
}

// Sources are the capture closures the owning tier wires in. Any nil
// source simply omits its section — a bundle is best-effort by design
// (it is written while the process may be dying).
type Sources struct {
	// Monitor supplies the event journal, time series and last checks.
	Monitor *watch.Monitor
	// Obs supplies the local retained-op ring (and its hop tag).
	Obs *obs.Recorder
	// StatsJSON returns the tier's full /v1/stats document.
	StatsJSON func(ctx context.Context) ([]byte, error)
	// TraceOps overrides the trace section's op gather — the proxy
	// wires its cross-tier fan-out here so bundles hold the complete
	// op path, not the proxy fragment. Nil reads Obs's ring.
	TraceOps func(ctx context.Context) (sources []string, ops []*obs.Op)
	// Durability returns the tier's durability block (any JSON-
	// marshalable value), or nil when the tier runs without a WAL.
	Durability func() any
}

// Meta is the bundle's first section: why, when, where, and what build.
type Meta struct {
	Schema          string           `json:"schema"`
	Hop             string           `json:"hop"`
	Trigger         string           `json:"trigger"`
	Reason          string           `json:"reason"`
	TimeUnixMs      int64            `json:"t_ms"`
	Fields          map[string]int64 `json:"fields,omitempty"`
	Build           obs.BuildInfo    `json:"build"`
	ArmedCrashPoint string           `json:"armed_crash_point,omitempty"`
}

// TraceSection is the bundle's trace section: the gathered ops plus
// their cross-tier assembly.
type TraceSection struct {
	Sources   []string             `json:"sources"`
	Ops       []*obs.Op            `json:"ops"`
	Assembled []obs.AssembledTrace `json:"assembled"`
}

// Stats is the diag block embedded in both tiers' /v1/stats.
type Stats struct {
	Dir                string `json:"dir"`
	BundlesWritten     int64  `json:"bundles_written"`
	DroppedRateLimited int64  `json:"dropped_rate_limited"`
	Errors             int64  `json:"errors"`
	LastTrigger        string `json:"last_trigger,omitempty"`
	LastPath           string `json:"last_path,omitempty"`
	LastUnixMs         int64  `json:"last_unix_ms,omitempty"`
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use and safe on a nil receiver (the disabled configuration).
type Recorder struct {
	opts Options
	src  Sources

	written atomic.Int64
	dropped atomic.Int64
	errors  atomic.Int64
	lastNs  atomic.Int64 // unixnano of last successful dump start

	mu sync.Mutex // serializes dumps

	// The last* fields live under their own lock, NOT mu: a dump holds
	// mu while calling the StatsJSON source, and the daemons' stats
	// documents embed StatsDoc — sharing mu would self-deadlock every
	// dump (and hang /v1/stats behind it).
	lastMu      sync.Mutex
	lastTrigger string
	lastPath    string
	lastMs      int64
	seq         atomic.Int64 // disambiguates same-millisecond filenames
}

// New builds a Recorder, or nil when o.Dir is empty. The directory is
// created eagerly so a misconfigured path fails at startup, not at the
// first crash.
func New(o Options, src Sources) (*Recorder, error) {
	if o.Dir == "" {
		return nil, nil
	}
	if o.MaxBundles <= 0 {
		o.MaxBundles = DefaultMaxBundles
	}
	if o.MinInterval <= 0 {
		o.MinInterval = DefaultMinInterval
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Recorder{opts: o, src: src}, nil
}

// Enabled reports whether the recorder captures anything.
func (r *Recorder) Enabled() bool { return r != nil }

// StatsDoc returns the stats-embedded diag block, nil on nil (the
// block is omitted when the recorder is off).
func (r *Recorder) StatsDoc() *Stats {
	if r == nil {
		return nil
	}
	r.lastMu.Lock()
	defer r.lastMu.Unlock()
	return &Stats{
		Dir:                r.opts.Dir,
		BundlesWritten:     r.written.Load(),
		DroppedRateLimited: r.dropped.Load(),
		Errors:             r.errors.Load(),
		LastTrigger:        r.lastTrigger,
		LastPath:           r.lastPath,
		LastUnixMs:         r.lastMs,
	}
}

// Trigger requests an asynchronous rate-limited dump: the capture runs
// on its own goroutine so the triggering path (the watchdog tick, a
// recovery check) never blocks on disk. Triggers inside MinInterval of
// the previous dump are dropped and counted — a flapping invariant
// cannot fill the disk or stall the watchdog.
func (r *Recorder) Trigger(trigger, reason string, fields map[string]int64) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	last := r.lastNs.Load()
	if last != 0 && now-last < int64(r.opts.MinInterval) {
		r.dropped.Add(1)
		return
	}
	if !r.lastNs.CompareAndSwap(last, now) {
		r.dropped.Add(1) // lost the race: someone else is dumping
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := r.dump(ctx, trigger, reason, fields); err != nil {
			r.opts.Logger.Error("diag: bundle dump failed", "trigger", trigger, "err", err)
		}
	}()
}

// OnViolation adapts the recorder to watch.Monitor's violation hook:
//
//	mon.OnViolation(rec.OnViolation)
//
// Nil-safe, so the daemons wire it unconditionally.
func (r *Recorder) OnViolation(ev watch.Event) {
	if r == nil {
		return
	}
	r.Trigger(TriggerViolation, ev.Detail, ev.Fields)
}

// Dump captures a bundle synchronously, bypassing the rate limit — the
// SIGQUIT path and tests. It returns the bundle's path.
func (r *Recorder) Dump(ctx context.Context, trigger, reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.lastNs.Store(time.Now().UnixNano())
	return r.dump(ctx, trigger, reason, nil)
}

// CheckStartup fires the restart-time triggers: an armed fault-
// injection crash point (the process is being crash-tested; capture
// the post-recovery state before the fault fires again) and a WAL
// replay that found torn bytes (the previous process died mid-append;
// preserve what recovery saw). Call it once after recovery completes.
func (r *Recorder) CheckStartup(ctx context.Context, recoveryTornBytes int64) {
	if r == nil {
		return
	}
	if recoveryTornBytes > 0 {
		r.Trigger(TriggerRecovery,
			fmt.Sprintf("WAL recovery dropped %d torn tail bytes", recoveryTornBytes),
			map[string]int64{"recovery_torn_bytes": recoveryTornBytes})
		return
	}
	if point := faultinject.Armed(); point != "" {
		r.Trigger(TriggerCrashPoint, "restarted with crash point armed: "+point, nil)
	}
}

// dump writes one bundle. Section order is stable (meta first, end
// marker last) so readers and the crash tests can reason about
// prefixes.
func (r *Recorder) dump(ctx context.Context, trigger, reason string, fields map[string]int64) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	name := fmt.Sprintf("diag-%s-%d-%04d-%s.bbdiag",
		r.opts.Hop, now.UnixMilli(), r.seq.Add(1)%10000, sanitize(trigger))
	path := filepath.Join(r.opts.Dir, name)
	w, err := Create(path)
	if err != nil {
		r.errors.Add(1)
		return "", err
	}

	meta := Meta{
		Schema: Schema, Hop: r.opts.Hop, Trigger: trigger, Reason: reason,
		TimeUnixMs: now.UnixMilli(), Fields: fields, Build: r.opts.Build,
		ArmedCrashPoint: faultinject.Armed(),
	}
	writeJSON(w, "meta", meta)

	if r.src.StatsJSON != nil {
		if doc, err := r.src.StatsJSON(ctx); err == nil {
			w.WriteSection("stats", doc)
		}
	}
	if m := r.src.Monitor; m != nil {
		writeJSON(w, "events", m.EventsDoc(0, ""))
		writeJSON(w, "timeseries", m.SeriesDoc(0))
		writeJSON(w, "checks", m.LastChecks())
	}
	var sources []string
	var ops []*obs.Op
	if r.src.TraceOps != nil {
		sources, ops = r.src.TraceOps(ctx)
	} else if r.src.Obs != nil {
		sources, ops = []string{r.src.Obs.Hop()}, r.src.Obs.Ops(0)
	}
	if sources != nil {
		ts := TraceSection{Sources: sources, Ops: ops, Assembled: obs.Assemble(ops)}
		if ts.Ops == nil {
			ts.Ops = []*obs.Op{}
		}
		if ts.Assembled == nil {
			ts.Assembled = []obs.AssembledTrace{}
		}
		writeJSON(w, "trace", ts)
	}
	if r.src.Durability != nil {
		if d := r.src.Durability(); d != nil {
			writeJSON(w, "durability", d)
		}
	}
	w.WriteSection("goroutines", profileText("goroutine", 2))
	w.WriteSection("heap", profileText("heap", 1))
	writeJSON(w, "buildinfo", r.opts.Build)

	if err := w.Close(); err != nil {
		r.errors.Add(1)
		return path, err
	}
	r.written.Add(1)
	r.lastMu.Lock()
	r.lastTrigger, r.lastPath, r.lastMs = trigger, path, now.UnixMilli()
	r.lastMu.Unlock()
	r.opts.Logger.Info("diag: bundle written",
		"path", path, "trigger", trigger, "reason", reason)
	r.prune()
	return path, nil
}

// prune enforces MaxBundles, deleting oldest-first by filename (the
// embedded unix-millisecond timestamp makes lexical order temporal
// within one hop). Called under mu.
func (r *Recorder) prune() {
	matches, err := filepath.Glob(filepath.Join(r.opts.Dir, "*.bbdiag"))
	if err != nil || len(matches) <= r.opts.MaxBundles {
		return
	}
	sort.Strings(matches)
	for _, path := range matches[:len(matches)-r.opts.MaxBundles] {
		os.Remove(path)
	}
}

func writeJSON(w *Writer, name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return // best-effort: skip the section, keep the bundle
	}
	w.WriteSection(name, data)
}

func profileText(name string, debug int) []byte {
	p := pprof.Lookup(name)
	if p == nil {
		return nil
	}
	var sb strings.Builder
	if err := p.WriteTo(&sb, debug); err != nil {
		return nil
	}
	return []byte(sb.String())
}

func sanitize(s string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			return c
		case c >= 'A' && c <= 'Z':
			return c + ('a' - 'A')
		}
		return '-'
	}, s)
}
