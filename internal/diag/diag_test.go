package diag

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/watch"
)

// testSources builds a live monitor + recorder pair with one retained
// traced op and one armed check, the minimum a bundle needs to hold
// every section.
func testSources(t *testing.T, observed, bound int64) (*watch.Monitor, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder(obs.Options{Hop: "serve", SampleEvery: 1})
	c := rec.Begin(0, "place")
	c.Stage("queue", time.Now().Add(-time.Millisecond))
	c.End(nil)

	mon := watch.New("serve", watch.Options{}, func() watch.Sample {
		return watch.Sample{
			Checks: []watch.Check{{Invariant: "test_max_load", Observed: observed, Bound: bound}},
		}
	})
	mon.Tick(time.Now())
	return mon, rec
}

func newTestRecorder(t *testing.T, o Options, src Sources) *Recorder {
	t.Helper()
	if o.Dir == "" {
		o.Dir = t.TempDir()
	}
	r, err := New(o, src)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestDumpWritesEverySection(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	r := newTestRecorder(t, Options{
		Hop:   "serve",
		Build: obs.BuildInfo{Module: "repro", GoVersion: "go-test", Commit: "abc123", WireVersion: 3},
	}, Sources{
		Monitor:    mon,
		Obs:        orec,
		StatsJSON:  func(context.Context) ([]byte, error) { return []byte(`{"balls":1}`), nil },
		Durability: func() any { return map[string]int64{"log_bytes": 42} },
	})

	path, err := r.Dump(context.Background(), TriggerManual, "test dump")
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if !b.Complete {
		t.Fatal("dumped bundle not complete")
	}
	for _, name := range []string{
		"meta", "stats", "events", "timeseries", "checks",
		"trace", "durability", "goroutines", "heap", "buildinfo",
	} {
		if b.Section(name) == nil {
			t.Errorf("bundle missing section %q", name)
		}
	}

	var meta Meta
	if err := json.Unmarshal(b.Section("meta"), &meta); err != nil {
		t.Fatalf("meta decode: %v", err)
	}
	if meta.Schema != Schema || meta.Hop != "serve" || meta.Trigger != TriggerManual {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Build.Commit != "abc123" || meta.Build.WireVersion != 3 {
		t.Fatalf("meta build = %+v, want the stamped identity", meta.Build)
	}

	var ts TraceSection
	if err := json.Unmarshal(b.Section("trace"), &ts); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if len(ts.Ops) != 1 || ts.Ops[0].Op != "place" {
		t.Fatalf("trace ops = %+v, want the one captured place", ts.Ops)
	}
	if len(ts.Assembled) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(ts.Assembled))
	}

	var checks []watch.Check
	if err := json.Unmarshal(b.Section("checks"), &checks); err != nil {
		t.Fatalf("checks decode: %v", err)
	}
	if len(checks) != 1 || checks[0].Invariant != "test_max_load" {
		t.Fatalf("checks = %+v", checks)
	}

	st := r.StatsDoc()
	if st.BundlesWritten != 1 || st.LastTrigger != TriggerManual || st.LastPath != path {
		t.Fatalf("StatsDoc = %+v", st)
	}
}

func TestViolationHookTriggersBundle(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	dir := t.TempDir()
	r := newTestRecorder(t, Options{Dir: dir, Hop: "serve"}, Sources{Monitor: mon, Obs: orec})
	mon.OnViolation(r.OnViolation)

	// Force the breach through the real watchdog machinery, exactly
	// like the CI smoke test does out of process.
	mon.OverrideBound("test_max_load", -1)
	mon.Tick(time.Now())

	path := waitForBundle(t, dir)
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	var meta Meta
	json.Unmarshal(b.Section("meta"), &meta)
	if meta.Trigger != TriggerViolation {
		t.Fatalf("trigger = %q, want %q", meta.Trigger, TriggerViolation)
	}
	var events watch.EventsResponse
	json.Unmarshal(b.Section("events"), &events)
	found := false
	for _, ev := range events.Events {
		if ev.Type == watch.EventBoundViolation {
			found = true
		}
	}
	if !found {
		t.Fatal("violation bundle's journal holds no BOUND_VIOLATION event")
	}
}

// waitForBundle polls for the async trigger path's bundle.
func waitForBundle(t *testing.T, dir string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if path, err := NewestBundle(dir); err == nil {
			return path
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no bundle appeared within 5s")
	return ""
}

func TestTriggerRateLimit(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	dir := t.TempDir()
	r := newTestRecorder(t, Options{Dir: dir, Hop: "serve", MinInterval: time.Hour},
		Sources{Monitor: mon, Obs: orec})

	r.Trigger(TriggerViolation, "first", nil)
	waitForBundle(t, dir)
	for i := 0; i < 3; i++ {
		r.Trigger(TriggerViolation, "flap", nil)
	}
	st := r.StatsDoc()
	if st.DroppedRateLimited != 3 {
		t.Fatalf("dropped = %d, want 3", st.DroppedRateLimited)
	}
	// The synchronous path must bypass the window: SIGQUIT always dumps.
	if _, err := r.Dump(context.Background(), TriggerSignal, "operator"); err != nil {
		t.Fatalf("Dump inside rate window: %v", err)
	}
	if got := r.StatsDoc().BundlesWritten; got != 2 {
		t.Fatalf("bundles written = %d, want 2", got)
	}
}

func TestRetentionPrune(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	dir := t.TempDir()
	r := newTestRecorder(t, Options{Dir: dir, Hop: "serve", MaxBundles: 2},
		Sources{Monitor: mon, Obs: orec})
	var last string
	for i := 0; i < 5; i++ {
		p, err := r.Dump(context.Background(), TriggerManual, "fill")
		if err != nil {
			t.Fatalf("Dump %d: %v", i, err)
		}
		last = p
		time.Sleep(2 * time.Millisecond) // distinct unix-ms filenames
	}
	newest, err := NewestBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if newest != last {
		t.Fatalf("newest = %s, want the last dump %s", newest, last)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.bbdiag"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(entries))
	}
}

func TestCheckStartupRecovery(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	dir := t.TempDir()
	r := newTestRecorder(t, Options{Dir: dir, Hop: "serve"}, Sources{Monitor: mon, Obs: orec})
	r.CheckStartup(context.Background(), 37)
	path := waitForBundle(t, dir)
	b, _ := ReadBundle(path)
	var meta Meta
	json.Unmarshal(b.Section("meta"), &meta)
	if meta.Trigger != TriggerRecovery || meta.Fields["recovery_torn_bytes"] != 37 {
		t.Fatalf("meta = %+v, want recovery trigger with 37 torn bytes", meta)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.StatsDoc() != nil {
		t.Fatal("nil recorder returns a stats block")
	}
	r.Trigger(TriggerManual, "x", nil)
	r.OnViolation(watch.Event{})
	r.CheckStartup(context.Background(), 99)
	if path, err := r.Dump(context.Background(), TriggerManual, "x"); path != "" || err != nil {
		t.Fatalf("nil Dump = %q, %v", path, err)
	}
	if rec, err := New(Options{Dir: ""}, Sources{}); rec != nil || err != nil {
		t.Fatalf("New with empty dir = %v, %v; want nil, nil", rec, err)
	}
}

func TestDoctorAnalyzeViolationBundle(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	dir := t.TempDir()
	r := newTestRecorder(t, Options{Dir: dir, Hop: "serve"}, Sources{
		Monitor:   mon,
		Obs:       orec,
		StatsJSON: func(context.Context) ([]byte, error) { return []byte(`{"obs":{}}`), nil },
	})
	mon.OnViolation(r.OnViolation)
	mon.OverrideBound("test_max_load", -1)
	mon.Tick(time.Now())
	path := waitForBundle(t, dir)

	b, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(b)
	if len(rep.Violations) == 0 {
		t.Fatal("report holds no violations")
	}
	if rep.ExitCode() != 1 {
		t.Fatalf("ExitCode = %d, want 1 (the CI gate)", rep.ExitCode())
	}
	hasExceeded := false
	for _, a := range rep.Anomalies {
		if a.Kind == "bound-exceeded" && a.Severity == "critical" {
			hasExceeded = true
		}
	}
	if !hasExceeded {
		t.Fatalf("anomalies %+v missing critical bound-exceeded", rep.Anomalies)
	}
	if len(rep.Traces) == 0 {
		t.Fatal("report holds no assembled traces")
	}

	var out bytes.Buffer
	WriteText(&out, rep)
	for _, want := range []string{"trigger  violation", "!!", "test_max_load", "VIOLATED", "serve/place"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, out.String())
		}
	}
}

func TestDoctorCleanBundleExitsZero(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	r := newTestRecorder(t, Options{Hop: "serve"}, Sources{Monitor: mon, Obs: orec})
	path, err := r.Dump(context.Background(), TriggerSignal, "operator SIGQUIT")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ReadBundle(path)
	rep := Analyze(b)
	if rep.ExitCode() != 0 {
		t.Fatalf("clean bundle ExitCode = %d (violations %v, anomalies %+v)",
			rep.ExitCode(), rep.Violations, rep.Anomalies)
	}
}

func TestDoctorFlagsTornBundle(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	dir := t.TempDir()
	r := newTestRecorder(t, Options{Dir: dir, Hop: "serve"}, Sources{Monitor: mon, Obs: orec})
	path, err := r.Dump(context.Background(), TriggerManual, "to be torn")
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-30); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(b)
	found := false
	for _, a := range rep.Anomalies {
		if a.Kind == "torn-bundle" || a.Kind == "incomplete-bundle" {
			found = true
		}
	}
	if !found {
		t.Fatalf("anomalies %+v missing integrity flag for a torn bundle", rep.Anomalies)
	}
}

// TestDumpWithReentrantStatsSource reproduces the daemons' real
// wiring: their StatsJSON closure builds the full stats document,
// which embeds the recorder's own StatsDoc. A dump holding its
// serialization lock while calling back into the recorder must not
// deadlock (it did: StatsDoc once shared the dump mutex, and every
// violation dump hung itself and /v1/stats behind it forever).
func TestDumpWithReentrantStatsSource(t *testing.T) {
	mon, orec := testSources(t, 5, 10)
	var r *Recorder
	r = newTestRecorder(t, Options{Hop: "serve"}, Sources{
		Monitor: mon,
		Obs:     orec,
		StatsJSON: func(context.Context) ([]byte, error) {
			return json.Marshal(map[string]any{"diag": r.StatsDoc()})
		},
	})

	done := make(chan error, 1)
	go func() {
		_, err := r.Dump(context.Background(), TriggerManual, "reentrant stats")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Dump: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dump deadlocked calling back into StatsDoc")
	}
	if st := r.StatsDoc(); st.BundlesWritten != 1 {
		t.Fatalf("stats after dump = %+v, want one bundle written", st)
	}
}
