// Package diag is the flight recorder: an always-armed postmortem
// capture path that, on trigger (invariant violation, SIGQUIT, WAL
// recovery anomaly, armed crash point), snapshots everything the
// in-memory rings know — event journal, time series, trace ring, the
// full stats document, durability block, goroutine and heap profiles,
// build identity — into one self-contained bundle file before the
// context ages out of the bounded rings or dies with the process.
//
// A bundle is a versioned, CRC-framed file reusing the WAL's frame
// idiom: an 8-byte magic, then one frame per named section,
//
//	[4B payload len][4B CRC-32 (IEEE) of payload][payload]
//	payload = uvarint(len(name)) + name + data
//
// little-endian, terminated by an empty section named "end". Sections
// are written straight to the final file in one pass — no tmp/rename —
// so a crash mid-dump leaves a prefix-exact readable bundle: the
// reader replays sections until the first torn or corrupt frame,
// counts the tail as torn bytes, and reports Complete only when it saw
// the end marker. That is the same torn-tail contract the WAL gives
// replay, and the same crash-test harness proves it (crash point
// diag.section.partial).
package diag

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/faultinject"
)

// Magic opens every bundle file; the trailing byte versions the
// container format (sections version themselves via the meta schema).
var Magic = [8]byte{'B', 'B', 'D', 'I', 'A', 'G', '1', '\n'}

// MaxSection bounds one section's frame payload, mirroring
// wal.MaxRecord: a torn length prefix cannot drive a huge allocation.
const MaxSection = 1 << 24

// EndSection is the empty terminator section; its presence is what
// distinguishes a complete bundle from a truncated one.
const EndSection = "end"

// ErrNotBundle reports a file that does not start with Magic.
var ErrNotBundle = errors.New("diag: not a bundle file (bad magic)")

// Section is one named blob inside a bundle.
type Section struct {
	Name string
	Data []byte
}

// A Writer streams sections into a bundle file. Each section is one
// frame and one file write, so every prefix of the file up to the last
// complete frame is readable no matter where a crash lands.
type Writer struct {
	f   *os.File
	err error
}

// Create opens path (which must not exist) and writes the magic.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(Magic[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &Writer{f: f}, nil
}

// WriteSection appends one named section frame. The first error is
// sticky. Crash point diag.section.partial fires here: its prelude
// flushes half the frame to disk so the torn tail is genuinely
// durable, exactly like wal.append.partial.
func (w *Writer) WriteSection(name string, data []byte) error {
	if w.err != nil {
		return w.err
	}
	payload := make([]byte, 0, len(name)+len(data)+4)
	payload = binary.AppendUvarint(payload, uint64(len(name)))
	payload = append(payload, name...)
	payload = append(payload, data...)
	if len(payload) > MaxSection {
		w.err = fmt.Errorf("diag: section %q exceeds %d bytes", name, MaxSection)
		return w.err
	}
	frame := make([]byte, 0, len(payload)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if err := faultinject.HitWith("diag.section.partial", func() {
		w.f.Write(frame[:len(frame)/2])
		w.f.Sync()
	}); err != nil {
		w.err = err
		return err
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close writes the end marker, fsyncs, and closes the file. A sticky
// write error skips the marker (the bundle stays readable but reports
// incomplete) and is returned.
func (w *Writer) Close() error {
	if w.err == nil {
		w.WriteSection(EndSection, nil)
	}
	if err := w.f.Sync(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Bundle is one decoded bundle file.
type Bundle struct {
	Path string
	// Sections in file order, end marker excluded.
	Sections []Section
	// Complete reports the end marker was present — the dump finished.
	Complete bool
	// TornBytes counts the unreadable tail after the last complete
	// frame (0 for a clean file).
	TornBytes int64
}

// Section returns the named section's data, or nil when absent.
func (b *Bundle) Section(name string) []byte {
	for _, s := range b.Sections {
		if s.Name == name {
			return s.Data
		}
	}
	return nil
}

// ReadBundle decodes a bundle file with the WAL's torn-tail contract:
// sections are replayed until the first torn or corrupt frame, which
// ends the read (counted in TornBytes) rather than failing it. Only a
// missing or wrong magic is an error — that file was never a bundle.
func ReadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 256<<10)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != Magic {
		return nil, ErrNotBundle
	}
	b := &Bundle{Path: path}
	read := int64(len(Magic))
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				b.TornBytes = st.Size() - read
			}
			return b, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > MaxSection {
			b.TornBytes = st.Size() - read
			return b, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			b.TornBytes = st.Size() - read
			return b, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			b.TornBytes = st.Size() - read
			return b, nil
		}
		read += 8 + int64(n)
		nameLen, k := binary.Uvarint(payload)
		if k <= 0 || nameLen > uint64(len(payload)-k) {
			b.TornBytes = st.Size() - read
			return b, nil
		}
		name := string(payload[k : k+int(nameLen)])
		if name == EndSection {
			b.Complete = true
			return b, nil
		}
		b.Sections = append(b.Sections, Section{Name: name, Data: payload[k+int(nameLen):]})
	}
}
