package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/watch"
)

// Report is bbdoctor's analysis of one bundle: the decoded sections
// plus the anomalies flagged over them. It is built offline from the
// bundle alone — no live daemon needed.
type Report struct {
	Path      string `json:"path"`
	Complete  bool   `json:"complete"`
	TornBytes int64  `json:"torn_bytes"`
	Meta      Meta   `json:"meta"`
	// Violations are the BOUND_VIOLATION entries of the journal.
	Violations []watch.Event `json:"violations"`
	Events     []watch.Event `json:"events"`
	Checks     []watch.Check `json:"checks,omitempty"`
	// Traces are the assembled cross-tier trees from the trace section.
	Traces    []obs.AssembledTrace `json:"traces"`
	Anomalies []Anomaly            `json:"anomalies"`
}

// Anomaly is one flagged oddity. Severity is "warn" or "critical";
// violations are always critical.
type Anomaly struct {
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	Detail   string `json:"detail"`
}

// ExitCode maps a report onto bbdoctor's CI contract: 1 when the
// bundle holds violations or critical anomalies, 0 otherwise.
func (r *Report) ExitCode() int {
	if len(r.Violations) > 0 {
		return 1
	}
	for _, a := range r.Anomalies {
		if a.Severity == "critical" {
			return 1
		}
	}
	return 0
}

// NewestBundle returns the lexically-last *.bbdiag in dir (filenames
// embed a millisecond timestamp, so lexical order is temporal).
func NewestBundle(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.bbdiag"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("diag: no bundles in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// Analyze decodes a bundle's sections and runs every anomaly check
// over them. Missing or undecodable sections degrade to absent data,
// never to failure — a torn bundle from a dying process must still
// analyze as far as it goes.
func Analyze(b *Bundle) *Report {
	r := &Report{Path: b.Path, Complete: b.Complete, TornBytes: b.TornBytes}
	if data := b.Section("meta"); data != nil {
		json.Unmarshal(data, &r.Meta)
	}
	var events watch.EventsResponse
	if data := b.Section("events"); data != nil {
		json.Unmarshal(data, &events)
	}
	r.Events = events.Events
	for _, ev := range r.Events {
		if ev.Type == watch.EventBoundViolation {
			r.Violations = append(r.Violations, ev)
		}
	}
	if data := b.Section("checks"); data != nil {
		json.Unmarshal(data, &r.Checks)
	}
	var trace TraceSection
	if data := b.Section("trace"); data != nil {
		json.Unmarshal(data, &trace)
	}
	r.Traces = trace.Assembled
	if r.Traces == nil && len(trace.Ops) > 0 {
		r.Traces = obs.Assemble(trace.Ops)
	}

	var series watch.SeriesResponse
	if data := b.Section("timeseries"); data != nil {
		json.Unmarshal(data, &series)
	}
	// The stats document's shape differs per tier; decode just the
	// blocks the checks need with a tolerant anonymous struct.
	var stats struct {
		Obs        map[string]obs.StageSummary `json:"obs"`
		Durability *struct {
			RecoveryTornBytes int64 `json:"recovery_torn_bytes"`
			AppendErrors      int64 `json:"append_errors"`
		} `json:"durability"`
	}
	if data := b.Section("stats"); data != nil {
		json.Unmarshal(data, &stats)
	}

	r.Anomalies = append(r.Anomalies, flagIntegrity(b)...)
	r.Anomalies = append(r.Anomalies, flagBoundProximity(r.Checks)...)
	r.Anomalies = append(r.Anomalies, flagQueueApplySkew(stats.Obs)...)
	r.Anomalies = append(r.Anomalies, flagStalenessSpike(series.Points)...)
	if d := stats.Durability; d != nil {
		if d.RecoveryTornBytes > 0 {
			r.Anomalies = append(r.Anomalies, Anomaly{
				Kind: "wal-torn-tail", Severity: "warn",
				Detail: fmt.Sprintf("WAL recovery dropped %d torn tail bytes (a prior process died mid-append)", d.RecoveryTornBytes),
			})
		}
		if d.AppendErrors > 0 {
			r.Anomalies = append(r.Anomalies, Anomaly{
				Kind: "wal-append-errors", Severity: "critical",
				Detail: fmt.Sprintf("%d WAL append errors: recent placements may not be durable", d.AppendErrors),
			})
		}
	}
	return r
}

func flagIntegrity(b *Bundle) []Anomaly {
	var out []Anomaly
	if b.TornBytes > 0 {
		out = append(out, Anomaly{
			Kind: "torn-bundle", Severity: "warn",
			Detail: fmt.Sprintf("bundle has %d torn tail bytes — the dumping process died mid-capture; sections up to the tear are intact", b.TornBytes),
		})
	} else if !b.Complete {
		out = append(out, Anomaly{
			Kind: "incomplete-bundle", Severity: "warn",
			Detail: "bundle has no end marker — the dump was interrupted at a section boundary",
		})
	}
	return out
}

// flagBoundProximity warns when an armed invariant sat at ≥80% of its
// bound at capture time: not a breach, but the regime the paper's
// w.h.p. analysis says should be vanishingly rare under the configured
// policy, so sustained proximity usually means a misconfigured bound.
func flagBoundProximity(checks []watch.Check) []Anomaly {
	var out []Anomaly
	for _, ck := range checks {
		switch {
		case ck.Observed > ck.Bound:
			// Any bound, including 0 (the exact-equality checks) and an
			// injected override: an exceedance at capture is critical.
			out = append(out, Anomaly{
				Kind: "bound-exceeded", Severity: "critical",
				Detail: fmt.Sprintf("%s: observed %d > bound %d at capture", ck.Invariant, ck.Observed, ck.Bound),
			})
		case ck.Bound > 0 && ck.Observed*5 >= ck.Bound*4:
			// Proximity is only meaningful against a real positive bound.
			out = append(out, Anomaly{
				Kind: "bound-proximity", Severity: "warn",
				Detail: fmt.Sprintf("%s: observed %d is within 20%% of bound %d", ck.Invariant, ck.Observed, ck.Bound),
			})
		}
	}
	return out
}

// flagQueueApplySkew flags a queue-dominated latency profile: queue
// p99 over 10× apply p99 and above 1ms means requests spent their time
// waiting for the shard, not placing — an arrival-rate or shard-count
// problem, not an allocator one.
func flagQueueApplySkew(stages map[string]obs.StageSummary) []Anomaly {
	q, qok := stages["queue"]
	a, aok := stages["apply"]
	if !qok || !aok || a.P99Ns == 0 {
		return nil
	}
	if q.P99Ns > 10*a.P99Ns && q.P99Ns > int64(time.Millisecond) {
		return []Anomaly{{
			Kind: "queue-apply-skew", Severity: "warn",
			Detail: fmt.Sprintf("queue p99 %.2fms is %.0f× apply p99 %.3fms — latency is contention, not placement",
				float64(q.P99Ns)/1e6, float64(q.P99Ns)/float64(a.P99Ns), float64(a.P99Ns)/1e6),
		}}
	}
	return nil
}

// flagStalenessSpike flags a pick-staleness excursion in the series:
// max p99 over 5× the median and past 250ms means the proxy was
// routing on a badly outdated view for part of the window (the paper's
// bound degrades with view staleness).
func flagStalenessSpike(points []watch.Point) []Anomaly {
	var vals []float64
	for _, p := range points {
		if p.PickStalenessP99Ms > 0 {
			vals = append(vals, float64(p.PickStalenessP99Ms))
		}
	}
	if len(vals) < 4 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	max := sorted[len(sorted)-1]
	if med > 0 && max > 5*med && max > 250 {
		return []Anomaly{{
			Kind: "staleness-spike", Severity: "warn",
			Detail: fmt.Sprintf("pick staleness p99 spiked to %.0fms (median %.0fms) — the load view lagged badly for part of the window", max, med),
		}}
	}
	return nil
}

// WriteText renders the report for a terminal: meta header, violation
// and gap timeline, assembled trace trees, anomaly list.
func WriteText(w io.Writer, r *Report) {
	fmt.Fprintf(w, "bundle   %s\n", r.Path)
	status := "complete"
	if r.TornBytes > 0 {
		status = fmt.Sprintf("TORN (%d trailing bytes lost)", r.TornBytes)
	} else if !r.Complete {
		status = "INCOMPLETE (no end marker)"
	}
	fmt.Fprintf(w, "status   %s\n", status)
	fmt.Fprintf(w, "hop      %s\n", r.Meta.Hop)
	fmt.Fprintf(w, "trigger  %s: %s\n", r.Meta.Trigger, r.Meta.Reason)
	if r.Meta.TimeUnixMs > 0 {
		fmt.Fprintf(w, "time     %s\n", time.UnixMilli(r.Meta.TimeUnixMs).UTC().Format(time.RFC3339Nano))
	}
	fmt.Fprintf(w, "build    %s go=%s wire=v%d dirty=%t\n",
		short(r.Meta.Build.Commit), r.Meta.Build.GoVersion, r.Meta.Build.WireVersion, r.Meta.Build.Dirty)
	if r.Meta.ArmedCrashPoint != "" {
		fmt.Fprintf(w, "armed    crash point %s\n", r.Meta.ArmedCrashPoint)
	}

	fmt.Fprintf(w, "\n== events (%d, %d violations) ==\n", len(r.Events), len(r.Violations))
	for _, ev := range r.Events {
		mark := "  "
		if ev.Type == watch.EventBoundViolation {
			mark = "!!"
		}
		fmt.Fprintf(w, "%s %s seq=%d %s %s\n", mark,
			time.UnixMilli(ev.TimeUnixMs).UTC().Format("15:04:05.000"), ev.Seq, ev.Type, ev.Detail)
	}

	if len(r.Checks) > 0 {
		fmt.Fprintf(w, "\n== invariants at capture ==\n")
		for _, ck := range r.Checks {
			state := "ok"
			if ck.Observed > ck.Bound {
				state = "VIOLATED"
			}
			fmt.Fprintf(w, "   %-20s observed %d / bound %d  %s\n", ck.Invariant, ck.Observed, ck.Bound, state)
		}
	}

	fmt.Fprintf(w, "\n== traces (%d assembled) ==\n", len(r.Traces))
	for i := range r.Traces {
		writeTraceTree(w, &r.Traces[i])
	}

	fmt.Fprintf(w, "\n== anomalies (%d) ==\n", len(r.Anomalies))
	for _, a := range r.Anomalies {
		fmt.Fprintf(w, "   [%s] %s: %s\n", a.Severity, a.Kind, a.Detail)
	}
	if len(r.Anomalies) == 0 {
		fmt.Fprintf(w, "   none\n")
	}
}

// writeTraceTree renders one assembled trace: ops as an indented tree,
// spans as leaves under their op, offsets relative to the trace start.
func writeTraceTree(w io.Writer, at *obs.AssembledTrace) {
	fmt.Fprintf(w, "-- trace %s  hops=%s  ops=%d  %.3fms\n",
		at.Trace, strings.Join(at.Hops, ","), at.Ops, float64(at.DurationNs)/1e6)
	for _, root := range at.Roots {
		writeTraceNode(w, root, at.StartUnixNano, 1)
	}
}

func writeTraceNode(w io.Writer, n *obs.TraceNode, base int64, depth int) {
	indent := strings.Repeat("  ", depth)
	errTag := ""
	if n.Err != "" {
		errTag = "  err=" + n.Err
	}
	fmt.Fprintf(w, "%s%s/%s  +%.3fms  %.3fms%s\n", indent, n.Hop, n.Op.Op,
		float64(n.Start-base)/1e6, float64(n.DurationNs)/1e6, errTag)
	for _, sp := range n.Spans {
		fmt.Fprintf(w, "%s  · %-12s +%.3fms  %.3fms\n", indent, sp.Stage,
			float64(sp.Start-base)/1e6, float64(sp.DurationNs)/1e6)
	}
	for _, c := range n.Children {
		writeTraceNode(w, c, base, depth+1)
	}
}

func short(commit string) string {
	if len(commit) > 12 {
		return commit[:12]
	}
	return commit
}
