package diag

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeBundle(t *testing.T, sections []Section) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "b.bbdiag")
	w, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, s := range sections {
		if err := w.WriteSection(s.Name, s.Data); err != nil {
			t.Fatalf("WriteSection(%q): %v", s.Name, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestBundleRoundTrip(t *testing.T) {
	sections := []Section{
		{Name: "meta", Data: []byte(`{"schema":"bbdiag/v1"}`)},
		{Name: "empty", Data: nil},
		{Name: "blob", Data: bytes.Repeat([]byte{0xAB}, 100_000)},
	}
	path := writeBundle(t, sections)

	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if !b.Complete || b.TornBytes != 0 {
		t.Fatalf("clean bundle: complete=%t torn=%d, want complete, 0 torn", b.Complete, b.TornBytes)
	}
	if len(b.Sections) != len(sections) {
		t.Fatalf("read %d sections, want %d", len(b.Sections), len(sections))
	}
	for i, s := range sections {
		got := b.Sections[i]
		if got.Name != s.Name || !bytes.Equal(got.Data, s.Data) {
			t.Fatalf("section %d = %q (%d bytes), want %q (%d bytes)",
				i, got.Name, len(got.Data), s.Name, len(s.Data))
		}
	}
	if got := b.Section("meta"); !bytes.Equal(got, sections[0].Data) {
		t.Fatalf("Section(meta) = %q", got)
	}
	if got := b.Section("missing"); got != nil {
		t.Fatalf("Section(missing) = %q, want nil", got)
	}
}

func TestBundleCreateRefusesExisting(t *testing.T) {
	path := writeBundle(t, nil)
	if _, err := Create(path); err == nil {
		t.Fatal("Create over an existing bundle succeeded; bundles must never be clobbered")
	}
}

func TestBundleBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-bundle")
	if err := os.WriteFile(path, []byte("definitely not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err != ErrNotBundle {
		t.Fatalf("ReadBundle(garbage) = %v, want ErrNotBundle", err)
	}
}

// TestBundleTruncatedEveryPrefix is the exhaustive torn-tail check: a
// bundle truncated at every possible byte offset must read without
// error and decode an exact prefix of the original sections — the same
// contract FuzzWALTornTail proves for the WAL.
func TestBundleTruncatedEveryPrefix(t *testing.T) {
	sections := []Section{
		{Name: "meta", Data: []byte(`{"hop":"serve"}`)},
		{Name: "events", Data: bytes.Repeat([]byte("e"), 300)},
		{Name: "trace", Data: []byte("0123456789")},
	}
	path := writeBundle(t, sections)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(dir, "cut.bbdiag")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := ReadBundle(p)
		if cut < len(Magic) {
			if err != ErrNotBundle {
				t.Fatalf("cut=%d: err = %v, want ErrNotBundle", cut, err)
			}
			os.Remove(p)
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: ReadBundle failed: %v", cut, err)
		}
		if len(b.Sections) > len(sections) {
			t.Fatalf("cut=%d: read %d sections from a prefix of %d", cut, len(b.Sections), len(sections))
		}
		for i, got := range b.Sections {
			if got.Name != sections[i].Name || !bytes.Equal(got.Data, sections[i].Data) {
				t.Fatalf("cut=%d: section %d = %q, not a prefix of the original", cut, i, got.Name)
			}
		}
		if b.Complete && cut < len(full) {
			t.Fatalf("cut=%d: truncated bundle reports complete", cut)
		}
		if !b.Complete && cut == len(full) {
			t.Fatal("full bundle reports incomplete")
		}
		os.Remove(p)
	}
}

// FuzzBundleTornTail mirrors FuzzWALTornTail: arbitrary tail bytes
// (truncation, garbage, bit flips) after a valid prefix must never
// error, never invent a section, and never mark the bundle complete
// unless the end marker genuinely survived.
func FuzzBundleTornTail(f *testing.F) {
	base := func() []byte {
		path := filepath.Join(f.TempDir(), "seed.bbdiag")
		w, err := Create(path)
		if err != nil {
			f.Fatal(err)
		}
		w.WriteSection("meta", []byte(`{"hop":"serve","trigger":"manual"}`))
		w.WriteSection("events", bytes.Repeat([]byte("x"), 64))
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()

	f.Add(len(base), []byte(nil))
	f.Add(len(base)-3, []byte(nil))
	f.Add(len(base), []byte{0xFF, 0x00, 0x12})
	f.Add(10, []byte("garbage"))
	f.Fuzz(func(t *testing.T, cut int, tail []byte) {
		if cut < 0 || cut > len(base) {
			t.Skip()
		}
		data := append(append([]byte(nil), base[:cut]...), tail...)
		path := filepath.Join(t.TempDir(), "fuzz.bbdiag")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := ReadBundle(path)
		if err != nil {
			if err == ErrNotBundle {
				return // magic damaged: correctly rejected
			}
			t.Fatalf("ReadBundle: %v", err)
		}
		if len(b.Sections) > 2 {
			t.Fatalf("invented sections: got %d", len(b.Sections))
		}
		for _, s := range b.Sections {
			if s.Name != "meta" && s.Name != "events" {
				t.Fatalf("invented section %q", s.Name)
			}
		}
	})
}
