package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/netutil"
	"repro/internal/obs"
	"repro/internal/serve"
)

// InprocBackend adapts an in-process dispatch core to the Backend
// interface. It lets the routing comparison run honestly on one CPU
// (no real network parallelism required) and gives tests deterministic
// backends.
type InprocBackend struct {
	D     *serve.Dispatcher
	Label string
}

// Name implements Backend.
func (b *InprocBackend) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return "inproc"
}

// Place implements Backend.
func (b *InprocBackend) Place(ctx context.Context, count int) ([]int, int64, error) {
	return b.D.PlaceMany(ctx, count)
}

// Remove implements Backend. The dispatcher's empty-bin error is
// already serve.ErrEmptyBin.
func (b *InprocBackend) Remove(ctx context.Context, bin int) error {
	return b.D.Remove(ctx, bin)
}

// PlaceKey implements KeyedBackend via the dispatcher's keyed tier.
func (b *InprocBackend) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	bin, samples, err := b.D.PlaceKeyed(ctx, key)
	if err != nil {
		return nil, 0, err
	}
	return []int{bin}, samples, nil
}

// RemoveKey implements KeyedBackend.
func (b *InprocBackend) RemoveKey(ctx context.Context, bin int, key string) error {
	return b.D.RemoveKeyed(ctx, bin, key)
}

// Stats implements Backend.
func (b *InprocBackend) Stats(context.Context) (serve.StatsView, error) {
	return b.D.Stats(), nil
}

// Health implements Backend: healthy until the dispatcher drains.
func (b *InprocBackend) Health(context.Context) error {
	if b.D.Draining() {
		return serve.ErrDraining
	}
	return nil
}

// ReadTrace implements TraceBackend straight off the dispatcher's
// retained-op ring. id "" returns the whole ring.
func (b *InprocBackend) ReadTrace(ctx context.Context, id string) ([]*obs.Op, error) {
	if id == "" {
		return b.D.Obs().Ops(0), nil
	}
	return b.D.Obs().OpsByTrace(id), nil
}

// HTTPBackend drives a remote bbserved over its HTTP API with a
// per-backend pooled transport (keep-alive connections are reused
// across requests, so steady routing to a backend costs no handshakes).
type HTTPBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend returns a backend for the bbserved at base (e.g.
// "http://127.0.0.1:8081"), with its own connection pool.
func NewHTTPBackend(base string) *HTTPBackend {
	return &HTTPBackend{
		base:   base,
		client: &http.Client{Transport: netutil.PooledTransport(256, 0), Timeout: 30 * time.Second},
	}
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.base }

func (b *HTTPBackend) do(ctx context.Context, method, path string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, nil)
	if err != nil {
		return 0, err
	}
	if id := obs.TraceFrom(ctx); id != 0 {
		// Propagate the request's trace downstream so the backend's
		// spans land under the same trace id.
		req.Header.Set(obs.Header, obs.FormatTrace(id))
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: decode %s%s: %w", b.base, path, err)
		}
	}
	return resp.StatusCode, nil
}

// Place implements Backend via POST /v1/place.
func (b *HTTPBackend) Place(ctx context.Context, count int) ([]int, int64, error) {
	path := "/v1/place"
	if count != 1 {
		path = fmt.Sprintf("/v1/place?count=%d", count)
	}
	var pr serve.PlaceResponse
	status, err := b.do(ctx, http.MethodPost, path, &pr)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, 0, fmt.Errorf("cluster: place on %s: status %d", b.base, status)
	}
	bins := pr.Bins
	if len(bins) == 0 {
		bins = []int{pr.Bin}
	}
	return bins, pr.Samples, nil
}

// Remove implements Backend via POST /v1/remove, mapping the 409
// conflict back to serve.ErrEmptyBin.
func (b *HTTPBackend) Remove(ctx context.Context, bin int) error {
	return b.RemoveKey(ctx, bin, "")
}

// PlaceKey implements KeyedBackend via POST /v1/place?key=.
func (b *HTTPBackend) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	var pr serve.PlaceResponse
	status, err := b.do(ctx, http.MethodPost, "/v1/place?key="+url.QueryEscape(key), &pr)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, 0, fmt.Errorf("cluster: keyed place on %s: status %d", b.base, status)
	}
	return []int{pr.Bin}, pr.Samples, nil
}

// RemoveKey implements KeyedBackend via POST /v1/remove?bin=&key=.
func (b *HTTPBackend) RemoveKey(ctx context.Context, bin int, key string) error {
	path := fmt.Sprintf("/v1/remove?bin=%d", bin)
	if key != "" {
		path += "&key=" + url.QueryEscape(key)
	}
	status, err := b.do(ctx, http.MethodPost, path, nil)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return serve.ErrEmptyBin
	default:
		return fmt.Errorf("cluster: remove on %s: status %d", b.base, status)
	}
}

// Stats implements Backend via GET /v1/stats.
func (b *HTTPBackend) Stats(ctx context.Context) (serve.StatsView, error) {
	var sr serve.StatsResponse
	status, err := b.do(ctx, http.MethodGet, "/v1/stats", &sr)
	if err != nil {
		return serve.StatsView{}, err
	}
	if status != http.StatusOK {
		return serve.StatsView{}, fmt.Errorf("cluster: stats on %s: status %d", b.base, status)
	}
	return sr.StatsView, nil
}

// Info fetches the backend's configuration block (used at startup to
// verify every backend serves the same number of bins).
func (b *HTTPBackend) Info(ctx context.Context) (serve.Info, error) {
	var sr serve.StatsResponse
	status, err := b.do(ctx, http.MethodGet, "/v1/stats", &sr)
	if err != nil {
		return serve.Info{}, err
	}
	if status != http.StatusOK {
		return serve.Info{}, fmt.Errorf("cluster: stats on %s: status %d", b.base, status)
	}
	return sr.Info, nil
}

// ReadTrace implements TraceBackend via GET /v1/trace (optionally
// ?id= filtered): the backend's retained-op ring, for cross-tier
// trace assembly and bundle capture.
func (b *HTTPBackend) ReadTrace(ctx context.Context, id string) ([]*obs.Op, error) {
	path := "/v1/trace"
	if id != "" {
		path += "?id=" + url.QueryEscape(id)
	}
	var tr obs.TraceResponse
	status, err := b.do(ctx, http.MethodGet, path, &tr)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: trace on %s: status %d", b.base, status)
	}
	return tr.Ops, nil
}

// Health implements Backend via GET /healthz.
func (b *HTTPBackend) Health(ctx context.Context) error {
	status, err := b.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster: healthz on %s: status %d", b.base, status)
	}
	return nil
}
