package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

func newProxyServer(t *testing.T, k, n int, policy Policy) (*Router, []*serve.Dispatcher, *httptest.Server) {
	t.Helper()
	rt, ds := newInprocCluster(t, k, n, policy, 1)
	srv := httptest.NewServer(NewHandler(rt, serve.Info{
		Protocol: "cluster/" + policy.Name(), N: k * n, Shards: k, Seed: 1,
	}))
	t.Cleanup(srv.Close)
	return rt, ds, srv
}

func decode[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d want %d; body: %s", resp.StatusCode, wantStatus, body)
	}
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	return v
}

func post(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestProxyHTTPRoundTrip drives the proxy surface end to end: bulk
// place lands across backends, stats aggregate matches backend truth
// at quiescence, removes by global bin succeed and then conflict.
func TestProxyHTTPRoundTrip(t *testing.T) {
	const k, n = 3, 64
	_, ds, srv := newProxyServer(t, k, n, greedy{d: 2})

	pl := decode[serve.PlaceResponse](t, post(t, srv.URL+"/v1/place?count=30"), http.StatusOK)
	if pl.Count != 30 || len(pl.Bins) != 30 || pl.Bin != pl.Bins[0] {
		t.Fatalf("bulk place: %+v", pl)
	}
	var held int64
	for _, d := range ds {
		held += d.Allocator().Balls()
	}
	if held != 30 {
		t.Fatalf("backends hold %d balls, want 30", held)
	}

	st := decode[StatsResponse](t, get(t, srv.URL+"/v1/stats"), http.StatusOK)
	if st.Balls != 30 || st.Cluster.Balls != 30 {
		t.Fatalf("stats balls %d / cluster %d, want 30", st.Balls, st.Cluster.Balls)
	}
	if st.Cluster.Policy != "greedy[2]" || st.Cluster.Backends != k || st.Cluster.Healthy != k {
		t.Fatalf("cluster block: %+v", st.Cluster)
	}
	if st.Cluster.Picks == 0 || st.Cluster.Probes < 2*st.Cluster.Picks {
		t.Fatalf("probe accounting: picks=%d probes=%d", st.Cluster.Picks, st.Cluster.Probes)
	}
	if len(st.Cluster.Rows) != k || len(st.Shards) != k {
		t.Fatalf("rows: %d cluster, %d pseudo-shards", len(st.Cluster.Rows), len(st.Shards))
	}
	if st.LatencyNs.Count == 0 {
		t.Fatalf("latency summary empty: %+v", st.LatencyNs)
	}

	rm := decode[serve.RemoveResponse](t,
		post(t, fmt.Sprintf("%s/v1/remove?bin=%d", srv.URL, pl.Bins[7])), http.StatusOK)
	if !rm.Removed || rm.Bin != pl.Bins[7] {
		t.Fatalf("remove: %+v", rm)
	}
	// A bin that never got a ball conflicts... find one: total bins
	// k*n = 192 >> 30 placed, so scan for an empty global bin.
	empty := -1
	for g := 0; g < k*n; g++ {
		if ds[g/n].Allocator().Load(g%n) == 0 {
			empty = g
			break
		}
	}
	decode[map[string]string](t, post(t, fmt.Sprintf("%s/v1/remove?bin=%d", srv.URL, empty)),
		http.StatusConflict)
}

// TestProxyHTTPMalformed pins the input validation of the proxy
// surface.
func TestProxyHTTPMalformed(t *testing.T) {
	const k, n = 2, 16
	_, _, srv := newProxyServer(t, k, n, single{})
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"POST", "/v1/place?count=abc", http.StatusBadRequest},
		{"POST", "/v1/place?count=0", http.StatusBadRequest},
		{"POST", fmt.Sprintf("/v1/place?count=%d", serve.MaxBulkPlace+1), http.StatusBadRequest},
		{"POST", "/v1/remove", http.StatusBadRequest},
		{"POST", "/v1/remove?bin=xyz", http.StatusBadRequest},
		{"POST", fmt.Sprintf("/v1/remove?bin=%d", k*n), http.StatusBadRequest},
		{"GET", "/v1/place", http.StatusMethodNotAllowed},
		{"GET", "/nosuch", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

// TestProxyHealthAndMetrics checks /healthz transitions (ok → 503 when
// every backend is gone → 503 when draining) and the Prometheus
// surface.
func TestProxyHealthAndMetrics(t *testing.T) {
	const k, n = 2, 32
	rt, ds, srv := newProxyServer(t, k, n, single{})

	resp := get(t, srv.URL+"/healthz")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	decode[serve.PlaceResponse](t, post(t, srv.URL+"/v1/place?count=10"), http.StatusOK)
	resp = get(t, srv.URL+"/metrics")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"bb_proxy_backends 2",
		"bb_proxy_healthy_backends 2",
		"bb_proxy_balls 10",
		// One bulk of 10 balls is one routing decision and (under
		// single-choice) one probe.
		"bb_proxy_picks_total 1",
		"bb_proxy_probes_total 1",
		`bb_proxy_backend_up{slot="0"} 1`,
		`bb_proxy_backend_balls{slot="1"}`,
		`bb_proxy_place_latency_seconds{quantile="0.99"}`,
		"bb_proxy_place_latency_seconds_count 1",
		"bb_proxy_backend_gap ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Kill both backends: traffic errors evict them and healthz flips
	// to 503 with every slot out of rotation.
	ds[0].Close()
	ds[1].Close()
	for i := 0; i < 8; i++ {
		resp := post(t, srv.URL+"/v1/place")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if len(rt.Membership().Healthy()) != 0 {
		t.Fatalf("healthy = %v after killing all backends", rt.Membership().Healthy())
	}
	resp = get(t, srv.URL+"/healthz")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no backends: %d", resp.StatusCode)
	}
	// With no healthy backend, placing answers 503 (retryable), not 5xx
	// internal.
	decode[map[string]string](t, post(t, srv.URL+"/v1/place"), http.StatusServiceUnavailable)

	// Draining answers 503 regardless.
	rt.Close()
	resp = get(t, srv.URL+"/healthz")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz draining: %d", resp.StatusCode)
	}
}
