package cluster

import (
	"context"
	"fmt"
	"testing"

	ballsbins "repro"
	"repro/internal/keyed"
	"repro/internal/serve"
	"repro/internal/wal"
)

// newDurableCluster builds K in-proc backends and a Config pointing
// the keyed tier at dir. The backends outlive any one router, so a
// test can Close/Crash and reopen against the same directory — the
// in-proc analogue of restarting bbproxy under live bbserveds.
func newDurableCluster(t *testing.T, k int, dir, fsync string) (Config, []*serve.Dispatcher) {
	t.Helper()
	const n = 512
	backends := make([]Backend, k)
	ds := make([]*serve.Dispatcher, k)
	for i := range backends {
		ds[i] = serve.NewDispatcher(serve.Config{
			Spec: ballsbins.Adaptive(), N: n, Shards: 2, Seed: uint64(50 + i),
		})
		backends[i] = &InprocBackend{D: ds[i], Label: fmt.Sprintf("b%d", i)}
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.Close()
		}
	})
	return Config{
		Backends:       backends,
		BinsPerBackend: n,
		Policy:         single{},
		Seed:           7,
		Keyed:          &keyed.Config{HotShare: 1},
		KeyedStore:     &keyed.StoreOptions{Dir: dir, Fsync: fsync},
	}, ds
}

// placeKeys routes count keys and returns each key's backend slot.
func placeKeys(t *testing.T, rt *Router, count int) map[string]int {
	t.Helper()
	ctx := context.Background()
	slots := make(map[string]int, count)
	for i := 0; i < count; i++ {
		key := fmt.Sprintf("k%d", i)
		bins, _, err := rt.PlaceKeyed(ctx, key)
		if err != nil {
			t.Fatalf("place %s: %v", key, err)
		}
		slots[key] = bins[0] / rt.BinsPerBackend()
	}
	return slots
}

// TestRouterTermRestartZeroLoss is the satellite's clean-shutdown
// gate: SIGTERM drain (Router.Close) seals a final snapshot, and the
// restarted router recovers every assignment with zero journal replay
// and zero affinity loss.
func TestRouterTermRestartZeroLoss(t *testing.T) {
	cfg, _ := newDurableCluster(t, 3, t.TempDir(), wal.SyncInterval)
	rt, rec, err := OpenRouter(cfg)
	if err != nil {
		t.Fatalf("OpenRouter: %v", err)
	}
	if rec == nil || rec.SnapshotKeys != 0 || rec.ReplayedRecords != 0 {
		t.Fatalf("fresh directory recovered %+v", rec)
	}

	const keys = 200
	pre := placeKeys(t, rt, keys)
	preMirror := rt.Keyed().Mirror()
	rt.Close() // TERM drain: final compacting snapshot

	rt2, rec2, err := OpenRouter(cfg)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer rt2.Close()
	if rec2.ReplayedRecords != 0 {
		t.Fatalf("clean shutdown still replayed %d records", rec2.ReplayedRecords)
	}
	if rec2.SnapshotKeys == 0 {
		t.Fatal("final snapshot restored no keys")
	}
	if got := rt2.Keyed().Mirror(); !got.Equal(preMirror) {
		t.Fatalf("restart diverged from pre-shutdown state:\npre:  %+v\npost: %+v", preMirror, got)
	}

	post := placeKeys(t, rt2, keys)
	for key, slot := range pre {
		if post[key] != slot {
			t.Fatalf("key %s moved across restart: backend %d -> %d", key, slot, post[key])
		}
	}
	st := rt2.Keyed().Stats()
	if st.AffinityMisses != 0 {
		t.Fatalf("restart lost %d assignments (affinity misses on known keys)", st.AffinityMisses)
	}
	if ds := rt2.Durability(); ds == nil || ds.Fsync != wal.SyncInterval {
		t.Fatalf("durability block after restart: %+v", ds)
	}
}

// TestRouterCrashRestartReplaysExact is the kill -9 analogue: no
// drain, no final snapshot — under SyncAlways the journal alone must
// rebuild the exact pre-crash assignment.
func TestRouterCrashRestartReplaysExact(t *testing.T) {
	cfg, _ := newDurableCluster(t, 3, t.TempDir(), wal.SyncAlways)
	rt, _, err := OpenRouter(cfg)
	if err != nil {
		t.Fatalf("OpenRouter: %v", err)
	}

	const keys = 200
	pre := placeKeys(t, rt, keys)
	preMirror := rt.Keyed().Mirror()
	rt.Crash() // kill -9: nothing flushed beyond the fsync policy

	rt2, rec2, err := OpenRouter(cfg)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer rt2.Close()
	if rec2.ReplayedRecords == 0 {
		t.Fatal("crash recovery replayed nothing")
	}
	if got := rt2.Keyed().Mirror(); !got.Equal(preMirror) {
		t.Fatalf("crash recovery diverged:\npre:  %+v\npost: %+v", preMirror, got)
	}
	post := placeKeys(t, rt2, keys)
	for key, slot := range pre {
		if post[key] != slot {
			t.Fatalf("key %s moved across crash: backend %d -> %d", key, slot, post[key])
		}
	}
}
