// Package cluster is the routing tier that scales the serving
// subsystem past one node: it treats backend bbserved processes as the
// bins of a balls-into-bins process and reuses the paper's allocation
// protocols as live load-balancing policies.
//
// # Architecture
//
//	bbload ──► bbproxy ──► bbserved #0 (n bins)
//	              │  ╲───► bbserved #1 (n bins)
//	              │   ╲──► bbserved #2 (n bins)
//	           Router + Membership + LoadView
//
// Three cooperating pieces:
//
//   - Membership is the backend registry: a static slot list with
//     health-check eviction and rejoin. A backend that fails
//     consecutive health probes (or errors under live traffic) is
//     evicted from routing; it rejoins automatically after consecutive
//     successful probes. Slots are stable, so the global bin numbering
//     (slot·n + local bin) survives flaps.
//
//   - LoadView is the router's approximate knowledge of each backend's
//     load: refreshed asynchronously from GET /v1/stats on a
//     configurable staleness window, and corrected between polls by
//     local accounting of the balls this router itself placed and
//     removed. This is exactly the "stale information" regime of the
//     two-choices literature: decisions are made against load values
//     up to one staleness window old.
//
//   - Router picks a backend per request using a Policy — the paper's
//     protocol specs transplanted to routing, where a protocol "retry"
//     becomes a probe of another backend against the stale load view
//     (see Policy for the exact mapping) — then forwards the request
//     over a per-backend pooled connection, failing over to another
//     backend when the chosen one errors. Latency is accounted in
//     internal/hdrhist histograms, both cumulative and per staleness
//     window (SnapshotAndReset).
//
// The proxy HTTP layer (NewHandler, mounted by cmd/bbproxy) serves the
// same surface as bbserved — /v1/place, /v1/remove, /v1/stats,
// /healthz, /metrics — so clients and load generators cannot tell a
// proxy from a single node, except that /v1/stats additionally carries
// the aggregated cluster block (cross-backend max load and gap, probe
// counts per policy, per-backend rows).
package cluster

import (
	"context"
	"errors"

	"repro/internal/serve"
)

// Errors returned by the Router.
var (
	// ErrNoBackends means no healthy backend was available to route to.
	ErrNoBackends = errors.New("cluster: no healthy backends")
	// ErrDraining is returned once Close has begun.
	ErrDraining = errors.New("cluster: router draining")
	// ErrBackendDown is returned by Remove when the backend owning the
	// target bin is currently evicted (the ball is unreachable until the
	// backend rejoins).
	ErrBackendDown = errors.New("cluster: backend down")
)

// Backend is one routable serving node. Implementations must be safe
// for concurrent use. The two implementations are HTTPBackend (a remote
// bbserved) and InprocBackend (an in-process dispatch core, used for
// single-machine routing experiments and CI).
type Backend interface {
	// Name identifies the backend in stats and metrics (e.g. its URL).
	Name() string
	// Place allocates count balls and returns their backend-local bins.
	Place(ctx context.Context, count int) (bins []int, samples int64, err error)
	// Remove takes one ball out of backend-local bin. It returns
	// serve.ErrEmptyBin when the bin holds no ball.
	Remove(ctx context.Context, bin int) error
	// Stats reports the backend's serving stats view (the LoadView
	// refresh source).
	Stats(ctx context.Context) (serve.StatsView, error)
	// Health reports nil when the backend is serving.
	Health(ctx context.Context) error
}

// KeyedBackend is implemented by backends that accept keyed
// operations, forwarding the key so the backend's own keyed tier
// (its key→shard affinity) sees it too — end-to-end affinity:
// bbproxy pins the key's backend, the backend pins the key's shard.
// The router falls back to anonymous Place/Remove when a backend
// does not implement it.
type KeyedBackend interface {
	// PlaceKey places one ball for key and returns its backend-local
	// bin.
	PlaceKey(ctx context.Context, key string) (bins []int, samples int64, err error)
	// RemoveKey removes one of key's balls from backend-local bin.
	RemoveKey(ctx context.Context, bin int, key string) error
}
