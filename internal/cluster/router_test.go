package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	ballsbins "repro"
	"repro/internal/serve"
)

// newInprocCluster builds k in-proc backends (n bins, 1 shard each)
// and a router with the given policy and no background loops — fully
// deterministic under the seed.
func newInprocCluster(t testing.TB, k, n int, policy Policy, seed uint64) (*Router, []*serve.Dispatcher) {
	t.Helper()
	backends := make([]Backend, k)
	ds := make([]*serve.Dispatcher, k)
	for i := range backends {
		d := serve.NewDispatcher(serve.Config{
			Spec: ballsbins.Adaptive(), N: n, Shards: 1, Seed: seed + uint64(i),
		})
		ds[i] = d
		backends[i] = &InprocBackend{D: d, Label: fmt.Sprintf("b%d", i)}
	}
	rt := NewRouter(Config{
		Backends:       backends,
		BinsPerBackend: n,
		Policy:         policy,
		Seed:           seed,
	})
	t.Cleanup(func() {
		rt.Close()
		for _, d := range ds {
			d.Close()
		}
	})
	return rt, ds
}

// skewBulks reproduces the skew scenario's arrival pattern
// deterministically: Zipf(1.5) bulk sizes on [1,32], totalling at
// least total balls.
func skewBulks(seed int64, total int) []int {
	rnd := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rnd, 1.5, 1, 31)
	var bulks []int
	for placed := 0; placed < total; {
		b := int(zipf.Uint64()) + 1
		bulks = append(bulks, b)
		placed += b
	}
	return bulks
}

// routeBulks drives the router with the bulk sequence and returns the
// cross-backend gap it ends with.
func routeBulks(t *testing.T, rt *Router, bulks []int) Stats {
	t.Helper()
	ctx := context.Background()
	for _, b := range bulks {
		if _, _, err := rt.Place(ctx, b); err != nil {
			t.Fatalf("Place(%d): %v", b, err)
		}
	}
	return rt.Stats()
}

// TestPolicyGapOrdering is the acceptance gate: with 8 in-proc
// backends under the skew arrival pattern (Zipf bulks, the same
// distribution the load generator's skew scenario uses), 2-choice and
// adaptive routing must each achieve a strictly lower cross-backend
// max-load gap than random routing, under fixed seeds.
func TestPolicyGapOrdering(t *testing.T) {
	const (
		k     = 8
		n     = 4096
		total = 20000
		seed  = 42
	)
	bulks := skewBulks(7, total)

	gaps := map[string]int64{}
	balls := map[string]int64{}
	for _, tc := range []struct {
		key    string
		policy Policy
	}{
		{"single", single{}},
		{"greedy2", greedy{d: 2}},
		{"adaptive", adaptive{}},
	} {
		rt, _ := newInprocCluster(t, k, n, tc.policy, seed)
		st := routeBulks(t, rt, bulks)
		gaps[tc.key] = st.BackendGap
		balls[tc.key] = st.Balls
		t.Logf("%-8s gap=%4d max=%d min=%d probes/pick=%.2f",
			tc.key, st.BackendGap, st.MaxBackendBalls, st.MinBackendBalls, st.ProbesPerPick)
	}

	// All policies routed the same ball total.
	if balls["single"] != balls["greedy2"] || balls["single"] != balls["adaptive"] {
		t.Fatalf("ball totals differ: %v", balls)
	}
	if gaps["greedy2"] >= gaps["single"] {
		t.Errorf("2-choice gap %d not strictly below random gap %d", gaps["greedy2"], gaps["single"])
	}
	if gaps["adaptive"] >= gaps["single"] {
		t.Errorf("adaptive gap %d not strictly below random gap %d", gaps["adaptive"], gaps["single"])
	}
}

// TestAdaptiveRoutingBound pins the transplanted guarantee: with an
// exact local view (no staleness, single router), adaptive routing
// keeps every backend within the protocol's deterministic max-load
// bound ⌈i/K⌉+1 at every prefix — per-ball routing is the protocol
// itself running on K "bins".
func TestAdaptiveRoutingBound(t *testing.T) {
	const (
		k     = 5
		n     = 2048
		total = 7500
	)
	rt, _ := newInprocCluster(t, k, n, adaptive{}, 3)
	ctx := context.Background()
	for i := 1; i <= total; i++ {
		if _, _, err := rt.Place(ctx, 1); err != nil {
			t.Fatalf("Place #%d: %v", i, err)
		}
		if i%500 == 0 || i == total {
			st := rt.Stats()
			bound := int64((i+k-1)/k) + 1
			if st.MaxBackendBalls > bound {
				t.Fatalf("after %d balls: max backend balls %d exceeds ⌈i/K⌉+1 = %d",
					i, st.MaxBackendBalls, bound)
			}
		}
	}
}

// TestRouterPlaceRemoveRoundTrip checks global bin numbering: a placed
// ball's global bin maps back to the right backend, Remove drains it
// there, and the view's local accounting follows both directions.
func TestRouterPlaceRemoveRoundTrip(t *testing.T) {
	const k, n = 3, 64
	rt, ds := newInprocCluster(t, k, n, greedy{d: 2}, 9)
	ctx := context.Background()

	bins, samples, err := rt.Place(ctx, 10)
	if err != nil || len(bins) != 10 || samples < 10 {
		t.Fatalf("Place: bins=%v samples=%d err=%v", bins, samples, err)
	}
	var total int64
	for _, d := range ds {
		total += d.Allocator().Balls()
	}
	if total != 10 {
		t.Fatalf("backends hold %d balls, want 10", total)
	}
	// Every global bin decodes to a backend actually holding a ball
	// there, and Remove via the global number succeeds.
	for _, g := range bins {
		slot, local := g/n, g%n
		if ds[slot].Allocator().Load(local) < 1 {
			t.Fatalf("global bin %d: backend %d local %d empty", g, slot, local)
		}
		if err := rt.Remove(ctx, g); err != nil {
			t.Fatalf("Remove(%d): %v", g, err)
		}
	}
	st := rt.Stats()
	if st.Balls != 0 {
		t.Fatalf("cluster still holds %d balls after removes", st.Balls)
	}
	// Removing again conflicts with the canonical empty-bin error.
	if err := rt.Remove(ctx, bins[0]); err != serve.ErrEmptyBin {
		t.Fatalf("double remove: %v, want serve.ErrEmptyBin", err)
	}
	// Out-of-range bins are rejected.
	if err := rt.Remove(ctx, k*n); err == nil {
		t.Fatal("Remove out of range succeeded")
	}
}

// TestRouterFailover kills a backend and checks that placements fail
// over transparently: no client-visible error, traffic redistributes,
// and the dead slot is evicted by its own traffic.
func TestRouterFailover(t *testing.T) {
	const k, n = 3, 64
	rt, ds := newInprocCluster(t, k, n, single{}, 11)
	ctx := context.Background()

	// Kill backend 1: its dispatcher drains, so Place returns errors.
	ds[1].Close()
	for i := 0; i < 60; i++ {
		if _, _, err := rt.Place(ctx, 1); err != nil {
			t.Fatalf("Place #%d during failover: %v", i, err)
		}
	}
	if rt.ms.IsUp(1) {
		t.Fatal("backend 1 still in rotation after traffic failures")
	}
	st := rt.Stats()
	if st.Healthy != 2 || st.Failovers == 0 || st.Evictions != 1 {
		t.Fatalf("stats after failover: healthy=%d failovers=%d evictions=%d",
			st.Healthy, st.Failovers, st.Evictions)
	}
	// Books balance on the survivors.
	if got := ds[0].Allocator().Balls() + ds[2].Allocator().Balls(); got != 60 {
		t.Fatalf("survivors hold %d balls, want 60", got)
	}
	// A remove routed to the dead slot reports it down.
	if err := rt.Remove(ctx, n+1); err != ErrBackendDown {
		t.Fatalf("Remove on dead backend: %v, want ErrBackendDown", err)
	}
}

// TestRouterConcurrent hammers Place/Remove from many goroutines (the
// -race acceptance test for the routing tier) and checks conservation.
func TestRouterConcurrent(t *testing.T) {
	const k, n, workers, perWorker = 4, 256, 8, 300
	rt, ds := newInprocCluster(t, k, n, greedy{d: 2}, 21)
	ctx := context.Background()

	var wg sync.WaitGroup
	var mu sync.Mutex
	kept := make([]int, 0, workers*perWorker/2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				bins, _, err := rt.Place(ctx, 1)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%2 == 0 {
					if err := rt.Remove(ctx, bins[0]); err != nil {
						t.Errorf("worker %d remove: %v", w, err)
						return
					}
				} else {
					mu.Lock()
					kept = append(kept, bins[0])
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	var held int64
	for _, d := range ds {
		held += d.Allocator().Balls()
	}
	if held != int64(len(kept)) {
		t.Fatalf("backends hold %d balls, clients kept %d", held, len(kept))
	}
	st := rt.Stats()
	if st.Balls != held {
		t.Fatalf("view estimates %d balls, backends hold %d", st.Balls, held)
	}
	if st.Picks != workers*perWorker {
		t.Fatalf("picks %d, want %d", st.Picks, workers*perWorker)
	}
}

// cancellingBackend simulates a client hanging up mid-forward: Place
// cancels the caller's context and fails with it.
type cancellingBackend struct {
	cancel context.CancelFunc
}

func (b *cancellingBackend) Name() string { return "cancelling" }

func (b *cancellingBackend) Place(ctx context.Context, count int) ([]int, int64, error) {
	b.cancel()
	return nil, 0, ctx.Err()
}

func (b *cancellingBackend) Remove(context.Context, int) error { return nil }

func (b *cancellingBackend) Stats(context.Context) (serve.StatsView, error) {
	return serve.StatsView{}, nil
}

func (b *cancellingBackend) Health(context.Context) error { return nil }

// TestClientCancelIsNotBackendEvidence pins the eviction evidence
// rule: a placement that failed because the CALLER's context died is
// not reported against the backend — otherwise two client disconnects
// could evict a healthy node.
func TestClientCancelIsNotBackendEvidence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cb := &cancellingBackend{cancel: cancel}
	rt := NewRouter(Config{
		Backends:       []Backend{cb},
		BinsPerBackend: 8,
		Policy:         single{},
		Seed:           1,
		FailAfter:      1, // a single real failure would evict
	})
	defer rt.Close()
	if _, _, err := rt.Place(ctx, 1); err == nil {
		t.Fatal("Place succeeded against the cancelling backend")
	}
	if !rt.ms.IsUp(0) {
		t.Fatal("client cancellation evicted the backend")
	}
	if f := rt.failovers.Load(); f != 0 {
		t.Fatalf("client cancellation counted %d failovers", f)
	}
}

// TestPolicyByName pins the name → policy mapping and its validation.
func TestPolicyByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		d, r int
		b    int
		m    int64
		want string
	}{
		{"single", 2, 3, 0, 0, "single"},
		{"random", 2, 3, 0, 0, "single"},
		{"greedy", 2, 3, 0, 0, "greedy[2]"},
		{"greedy", 4, 3, 0, 0, "greedy[4]"},
		{"adaptive", 2, 3, 0, 0, "adaptive"},
		{"threshold", 2, 3, 0, 5000, "threshold[5000]"},
		{"boundedretry", 2, 3, 0, 0, "threshold-retry[3]"},
		{"fixed", 2, 3, 7, 0, "fixed[<7]"},
	} {
		p, err := PolicyByName(tc.name, tc.d, tc.r, tc.b, tc.m)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", tc.name, err)
		}
		if p.Name() != tc.want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", tc.name, p.Name(), tc.want)
		}
	}
	for _, bad := range []struct {
		name string
		d, r int
		b    int
		m    int64
	}{
		{"nosuch", 2, 3, 0, 0},
		{"greedy", 0, 3, 0, 0},
		{"threshold", 2, 3, 0, 0}, // horizon required
		{"boundedretry", 2, 0, 0, 0},
		{"fixed", 2, 3, 0, 0},
	} {
		if _, err := PolicyByName(bad.name, bad.d, bad.r, bad.b, bad.m); err == nil {
			t.Errorf("PolicyByName(%q, d=%d, r=%d, b=%d, m=%d) accepted", bad.name, bad.d, bad.r, bad.b, bad.m)
		}
	}
}

// TestBoundedRetryProbeCap pins the retry budget: threshold-retry[R]
// never spends more than R probes on a pick, while adaptive may spend
// more (and both keep picking successfully when the view says all
// backends are over threshold).
func TestBoundedRetryProbeCap(t *testing.T) {
	const k, n, total = 4, 1024, 3000
	rt, _ := newInprocCluster(t, k, n, boundedRetry{r: 2}, 17)
	st := routeBulks(t, rt, skewBulks(5, total))
	if st.ProbesPerPick > 2 {
		t.Fatalf("threshold-retry[2] spent %.3f probes/pick, cap is 2", st.ProbesPerPick)
	}
	if st.Balls < total {
		t.Fatalf("routed %d balls, want >= %d", st.Balls, total)
	}
}
