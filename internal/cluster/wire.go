package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wire"
)

// RouterWire adapts a Router to wire.Handler so bbproxy serves the
// binary protocol with exactly the HTTP tier's semantics (same bounds,
// same error mapping, same stats document).
type RouterWire struct {
	rt   *Router
	info serve.Info
	ws   atomic.Pointer[wire.Server]
}

// NewRouterWire wraps rt for wire serving. Call BindServer once the
// wire.Server exists so STATS replies include the wire block.
func NewRouterWire(rt *Router, info serve.Info) *RouterWire {
	return &RouterWire{rt: rt, info: info}
}

// BindServer attaches the serving wire.Server whose counters the STATS
// reply reports.
func (h *RouterWire) BindServer(ws *wire.Server) { h.ws.Store(ws) }

// routeErr maps routing errors onto wire codes — the same mapping the
// proxy's HTTP handler uses for status codes.
func routeErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrDraining):
		return &wire.Error{Code: wire.CodeDraining, Msg: err.Error()}
	case errors.Is(err, ErrNoBackends):
		return &wire.Error{Code: wire.CodeNoBackends, Msg: err.Error()}
	case errors.Is(err, ErrBackendDown):
		return &wire.Error{Code: wire.CodeBackendDown, Msg: err.Error()}
	case errors.Is(err, serve.ErrEmptyBin):
		return &wire.Error{Code: wire.CodeEmptyBin, Msg: err.Error()}
	case errors.Is(err, serve.ErrKeyedUnsupported):
		return &wire.Error{Code: wire.CodeKeyedUnsupported, Msg: err.Error()}
	}
	return err
}

// Place implements wire.Handler.
func (h *RouterWire) Place(ctx context.Context, count int) ([]int, int64, error) {
	if count < 1 || count > serve.MaxBulkPlace {
		return nil, 0, &wire.Error{
			Code: wire.CodeBadRequest,
			Msg:  fmt.Sprintf("count must be in [1,%d], got %d", serve.MaxBulkPlace, count),
		}
	}
	bins, samples, err := h.rt.Place(ctx, count)
	return bins, samples, routeErr(err)
}

// PlaceKeyed implements wire.Handler.
func (h *RouterWire) PlaceKeyed(ctx context.Context, key string) ([]int, int64, error) {
	if key == "" {
		return nil, 0, &wire.Error{Code: wire.CodeBadRequest, Msg: "empty key"}
	}
	bins, samples, err := h.rt.PlaceKeyed(ctx, key)
	return bins, samples, routeErr(err)
}

// Remove implements wire.Handler on global bin numbers (slot·n +
// local), exactly like the proxy's /v1/remove.
func (h *RouterWire) Remove(ctx context.Context, bin int, key string) error {
	if bin < 0 || bin >= h.rt.N() {
		return &wire.Error{
			Code: wire.CodeBadRequest,
			Msg:  fmt.Sprintf("bin %d outside [0,%d)", bin, h.rt.N()),
		}
	}
	return routeErr(h.rt.RemoveKeyed(ctx, bin, key))
}

// StatsJSON implements wire.Handler with the exact proxy /v1/stats
// document.
func (h *RouterWire) StatsJSON(ctx context.Context) ([]byte, error) {
	return json.Marshal(BuildStatsResponse(h.rt, h.info, h.ws.Load()))
}

// TraceJSON implements wire.Handler (protocol ≥ 3): the proxy's own
// retained ops for one trace id. Cross-tier assembly stays on the HTTP
// GET /v1/trace/{id} route; the wire message keeps one uniform meaning
// on both tiers — "this daemon's ring, filtered".
func (h *RouterWire) TraceJSON(ctx context.Context, id uint64) ([]byte, error) {
	r := h.rt.Obs()
	resp := obs.TraceResponse{Hop: r.Hop(), Ops: r.OpsByTrace(obs.FormatTrace(id))}
	if resp.Ops == nil {
		resp.Ops = []*obs.Op{}
	}
	return json.Marshal(resp)
}

// Hello implements wire.Handler for the n-agreement handshake.
func (h *RouterWire) Hello() wire.Hello {
	return wire.Hello{
		Protocol: h.info.Protocol,
		N:        h.info.N,
		Shards:   h.info.Shards,
	}
}

// Draining implements wire.Handler, mirroring the proxy's /healthz
// drain bit (backend health stays with the router's membership).
func (h *RouterWire) Draining() bool { return h.rt.Draining() }

// WireBackend drives a bbserved over the binary protocol when the
// backend advertises a wire listener. Routing semantics are identical
// to HTTPBackend — wire codes map back onto the same sentinel errors —
// so failover and eviction behave the same on either transport. The
// HTTP backend is retained for construction fallback and naming.
type WireBackend struct {
	hb *HTTPBackend
	wc *wire.Client
}

// NewWireBackend dials the wire listener advertised by the backend at
// base. wantN > 0 enforces n-agreement from the HELLO handshake alone.
// A dial or agreement failure returns an error; callers typically fall
// back to the HTTP backend and log.
func NewWireBackend(hb *HTTPBackend, wireAddr string, wantN int) (*WireBackend, error) {
	addr, err := wire.ResolveAddr(hb.Name(), wireAddr)
	if err != nil {
		return nil, err
	}
	wc, err := wire.Dial(addr, wire.ClientOptions{})
	if err != nil {
		return nil, err
	}
	if hello := wc.Hello(); wantN > 0 && hello.N != wantN {
		wc.Close()
		return nil, fmt.Errorf("cluster: backend %s serves n=%d, want %d", hb.Name(), hello.N, wantN)
	}
	return &WireBackend{hb: hb, wc: wc}, nil
}

// Name implements Backend: the HTTP base URL, so membership rows and
// logs name the backend the same on either transport.
func (b *WireBackend) Name() string { return b.hb.Name() }

// wireErr maps typed wire errors back onto the sentinel errors the
// router's failover logic matches on.
func wireErr(err error) error {
	if err == nil {
		return nil
	}
	switch wire.ErrCode(err) {
	case wire.CodeEmptyBin:
		return serve.ErrEmptyBin
	case wire.CodeDraining:
		return serve.ErrDraining
	case wire.CodeKeyedUnsupported:
		return serve.ErrKeyedUnsupported
	}
	return err
}

// Place implements Backend.
func (b *WireBackend) Place(ctx context.Context, count int) ([]int, int64, error) {
	bins, samples, err := b.wc.Place(ctx, count)
	return bins, samples, wireErr(err)
}

// Remove implements Backend.
func (b *WireBackend) Remove(ctx context.Context, bin int) error {
	return wireErr(b.wc.Remove(ctx, bin, ""))
}

// PlaceKey implements KeyedBackend.
func (b *WireBackend) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	bins, samples, err := b.wc.PlaceKeyed(ctx, key)
	return bins, samples, wireErr(err)
}

// RemoveKey implements KeyedBackend.
func (b *WireBackend) RemoveKey(ctx context.Context, bin int, key string) error {
	return wireErr(b.wc.Remove(ctx, bin, key))
}

// Stats implements Backend over a wire STATS request (the same JSON
// document /v1/stats serves).
func (b *WireBackend) Stats(ctx context.Context) (serve.StatsView, error) {
	body, err := b.wc.StatsJSON(ctx)
	if err != nil {
		return serve.StatsView{}, wireErr(err)
	}
	var sr serve.StatsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return serve.StatsView{}, fmt.Errorf("cluster: decode wire stats from %s: %w", b.Name(), err)
	}
	return sr.StatsView, nil
}

// Health implements Backend via wire PING, which reports draining just
// like GET /healthz.
func (b *WireBackend) Health(ctx context.Context) error {
	return wireErr(b.wc.Ping(ctx))
}

// ReadTrace implements TraceBackend. An exact-id lookup rides the wire
// TRACE message when the connection negotiated protocol ≥ 3; a v2
// backend (or a whole-ring read, which the wire message does not
// carry) falls back to the retained HTTP backend.
func (b *WireBackend) ReadTrace(ctx context.Context, id string) ([]*obs.Op, error) {
	if id != "" {
		body, err := b.wc.TraceJSON(ctx, obs.ParseTrace(id))
		if err == nil {
			var tr obs.TraceResponse
			if err := json.Unmarshal(body, &tr); err != nil {
				return nil, fmt.Errorf("cluster: decode wire trace from %s: %w", b.Name(), err)
			}
			return tr.Ops, nil
		}
		if !errors.Is(err, wire.ErrTraceUnsupported) {
			return nil, wireErr(err)
		}
	}
	return b.hb.ReadTrace(ctx, id)
}

// Close tears down the wire connection pool.
func (b *WireBackend) Close() error { return b.wc.Close() }
