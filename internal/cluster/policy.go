package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Policy chooses a backend for one request. It is the paper's protocol
// spec transplanted to routing: the "bins" are healthy backends, a
// bin's "load" is the stale LoadView estimate of the backend's ball
// count, and a protocol "retry" (one more sampled bin) becomes one
// more probe of a random backend against the view. The mapping:
//
//	protocol spec          routing policy
//	─────────────────────  ────────────────────────────────────────────
//	single                 one uniform probe (random routing)
//	greedy[d]              d uniform probes, least loaded wins
//	adaptive               probe until load < t/K + 1, t = live total
//	                       (capped; fall back to least-loaded probed)
//	threshold (horizon m)  probe until load < m/K + 1 (same cap)
//	threshold-retry[R]     at most R probes against t/K + 1, fall back
//	                       to least loaded of the R
//	fixed[<b]              probe until load < b (same cap)
//
// Acceptance tests use the same exact integer arithmetic as the
// protocols (K·(load−1) < i). Unlike a simulation, a routing policy
// must terminate even when the stale view claims every backend is
// over threshold, so the unbounded protocols carry a probe cap with a
// greedy fallback — exactly the BoundedRetry construction, with a cap
// generous enough (4·K) that it is hit only when the view is wrong.
//
// Pick must only be called from one goroutine at a time (the Router
// serializes on its RNG).
type Policy interface {
	// Name identifies the policy, mirroring protocol naming ("single",
	// "greedy[2]", "adaptive", ...).
	Name() string
	// Pick chooses a slot from healthy (non-empty) for a bulk of count
	// balls, reading stale loads from view. probes is the number of
	// load-view probes consumed — the routing analogue of the paper's
	// allocation time. fallback reports that an acceptance loop
	// exhausted its probe cap and took the least-loaded probe instead:
	// the chosen backend did NOT pass the policy's acceptance test, so
	// load-bound invariants derived from that test do not cover this
	// pick. Policies without an acceptance loop never set it.
	Pick(r *rng.Rand, view *LoadView, healthy []int, count int) (slot int, probes int, fallback bool)
}

// probeCap bounds the sampling loop of the unbounded policies: beyond
// 4 probes per healthy backend the view is evidently out of date and
// the greedy fallback takes over.
func probeCap(k int) int {
	c := 4 * k
	if c < 8 {
		c = 8
	}
	return c
}

// single is random routing: the SingleChoice baseline.
type single struct{}

func (single) Name() string { return "single" }

func (single) Pick(r *rng.Rand, _ *LoadView, healthy []int, _ int) (int, int, bool) {
	return healthy[r.Intn(len(healthy))], 1, false
}

// greedy is d-choice routing: the Greedy(d) baseline (probes with
// replacement, like the protocol; first minimum wins).
type greedy struct{ d int }

func (g greedy) Name() string { return fmt.Sprintf("greedy[%d]", g.d) }

func (g greedy) Pick(r *rng.Rand, view *LoadView, healthy []int, _ int) (int, int, bool) {
	best := healthy[r.Intn(len(healthy))]
	bestLoad := view.Load(best)
	for j := 1; j < g.d; j++ {
		c := healthy[r.Intn(len(healthy))]
		if l := view.Load(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	// Min-of-d IS greedy's contract, not a fallback.
	return best, g.d, false
}

// accepting implements the shared rejection loop of the threshold
// family: sample until K·(load−1) < bound(i), up to cap probes, then
// fall back to the least loaded backend probed.
func accepting(r *rng.Rand, view *LoadView, healthy []int, bound int64, maxProbes int) (int, int, bool) {
	k := int64(len(healthy))
	best := -1
	var bestLoad int64
	for probe := 1; probe <= maxProbes; probe++ {
		s := healthy[r.Intn(len(healthy))]
		load := view.Load(s)
		if k*(load-1) < bound {
			return s, probe, false
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = s, load
		}
	}
	return best, maxProbes, true
}

// adaptive is the paper's protocol as a routing policy: accept a
// backend whose (stale) load is < i/K + 1, where i is the live total
// ball estimate including the incoming bulk — no horizon needed, and
// departures lower the bound automatically.
type adaptive struct{}

func (adaptive) Name() string { return "adaptive" }

func (adaptive) Pick(r *rng.Rand, view *LoadView, healthy []int, count int) (int, int, bool) {
	i := view.Total(healthy) + int64(count)
	return accepting(r, view, healthy, i, probeCap(len(healthy)))
}

// threshold is Czumaj–Stemann routing: a fixed acceptance bound m/K+1
// from a declared horizon m (total balls the cluster will hold).
type threshold struct{ m int64 }

func (t threshold) Name() string { return fmt.Sprintf("threshold[%d]", t.m) }

func (t threshold) Pick(r *rng.Rand, view *LoadView, healthy []int, _ int) (int, int, bool) {
	return accepting(r, view, healthy, t.m, probeCap(len(healthy)))
}

// boundedRetry caps the adaptive acceptance loop at R probes with the
// greedy-among-R fallback — the Czumaj–Stemann tradeoff family.
type boundedRetry struct{ r int }

func (b boundedRetry) Name() string { return fmt.Sprintf("threshold-retry[%d]", b.r) }

func (b boundedRetry) Pick(r *rng.Rand, view *LoadView, healthy []int, count int) (int, int, bool) {
	i := view.Total(healthy) + int64(count)
	return accepting(r, view, healthy, i, b.r)
}

// fixed accepts any backend under an absolute ball bound — capacity
// routing. (K·(load−1) < K·(bound−1) ⟺ load < bound.)
type fixed struct{ bound int64 }

func (f fixed) Name() string { return fmt.Sprintf("fixed[<%d]", f.bound) }

func (f fixed) Pick(r *rng.Rand, view *LoadView, healthy []int, _ int) (int, int, bool) {
	k := int64(len(healthy))
	return accepting(r, view, healthy, k*(f.bound-1), probeCap(len(healthy)))
}

// Policies lists the names PolicyByName accepts, sorted.
func Policies() []string {
	names := []string{"single", "random", "greedy", "adaptive", "threshold", "boundedretry", "fixed"}
	sort.Strings(names)
	return names
}

// PolicyByName resolves a routing policy from the shared protocol
// vocabulary: single (alias random), greedy (uses d), adaptive,
// threshold (requires horizon > 0), boundedretry (uses retries), fixed
// (uses bound).
func PolicyByName(name string, d, retries, bound int, horizon int64) (Policy, error) {
	switch strings.ToLower(name) {
	case "single", "random":
		return single{}, nil
	case "greedy":
		if d < 1 {
			return nil, fmt.Errorf("cluster: greedy policy needs d >= 1, got %d", d)
		}
		return greedy{d: d}, nil
	case "adaptive":
		return adaptive{}, nil
	case "threshold":
		if horizon <= 0 {
			return nil, fmt.Errorf("cluster: threshold policy needs a positive horizon (declared total balls)")
		}
		return threshold{m: horizon}, nil
	case "boundedretry", "retry":
		if retries < 1 {
			return nil, fmt.Errorf("cluster: boundedretry policy needs retries >= 1, got %d", retries)
		}
		return boundedRetry{r: retries}, nil
	case "fixed":
		if bound < 1 {
			return nil, fmt.Errorf("cluster: fixed policy needs bound >= 1, got %d", bound)
		}
		return fixed{bound: int64(bound)}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (want one of %s)",
			name, strings.Join(Policies(), ", "))
	}
}
