package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/watch"
	"repro/internal/wire"
)

// StatsResponse is the body of the proxy's GET /v1/stats: the same
// envelope a bbserved serves (so bbload and other serve clients work
// against a proxy unmodified — backends appear as pseudo-shards) plus
// the aggregated cluster block.
type StatsResponse struct {
	Info serve.Info `json:"info"`
	serve.StatsView
	Draining  bool          `json:"draining"`
	LatencyNs serve.Latency `json:"dispatch_latency_ns"`
	// WindowLatencyNs covers only the last completed staleness window
	// (WindowSec long), for per-interval monitoring.
	WindowLatencyNs serve.Latency `json:"window_latency_ns"`
	WindowSec       float64       `json:"window_sec,omitempty"`
	Cluster         Stats         `json:"cluster"`
	// Wire is the proxy's binary-protocol server block; omitted when
	// the proxy runs without -wire-addr.
	Wire *wire.Stats `json:"wire,omitempty"`
	// Obs is the routing hop's per-stage latency decomposition.
	Obs map[string]obs.StageSummary `json:"obs,omitempty"`
	// Watch is the invariant watchdog's summary; omitted when the
	// watchdog is disabled. The full journal and time series live at
	// /v1/events and /v1/timeseries.
	Watch *watch.StatsBlock `json:"watch,omitempty"`
	// Diag is the flight recorder's summary; omitted when the proxy
	// runs without -diag-dir.
	Diag *diag.Stats `json:"diag,omitempty"`
}

type handler struct {
	rt    *Router
	info  serve.Info
	ws    *wire.Server // nil when wire serving is off
	build obs.BuildInfo
}

// NewHandler mounts the proxy API over a router — the same surface as
// a single bbserved:
//
//	POST /v1/place[?count=k]  route 1 (default) or k balls to a backend
//	POST /v1/remove?bin=g     remove from global bin g (slot·n + local)
//	GET  /v1/stats            aggregated cluster view
//	GET  /healthz             200 while routable, 503 when draining or
//	                          no backend is healthy
//	GET  /metrics             Prometheus text format
func NewHandler(rt *Router, info serve.Info) http.Handler {
	return NewHandlerWire(rt, info, nil)
}

// NewHandlerWire is NewHandler for a proxy that also serves the binary
// protocol: the wire server's counters join /v1/stats (wire block) and
// /metrics (bb_wire_* series). ws may be nil.
func NewHandlerWire(rt *Router, info serve.Info, ws *wire.Server) http.Handler {
	h := &handler{rt: rt, info: info, ws: ws, build: obs.Build(wire.Version)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", h.place)
	mux.HandleFunc("POST /v1/remove", h.remove)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /v1/trace", rt.Obs().TraceHandler())
	mux.HandleFunc("GET /v1/trace/{id}", rt.Obs().AssembledTraceHandler(
		func(req *http.Request, id uint64) ([]string, []*obs.Op) {
			return rt.GatherTrace(req.Context(), id)
		}))
	mux.HandleFunc("GET /v1/events", rt.Watch().EventsHandler())
	mux.HandleFunc("GET /v1/timeseries", rt.Watch().TimeseriesHandler())
	mux.HandleFunc("GET /v1/version", obs.VersionHandler(h.build))
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

// traceCtx lifts an inbound X-BB-Trace header into the request context
// so the router records its spans under the caller's trace id.
func traceCtx(r *http.Request) context.Context {
	return obs.WithTrace(r.Context(), obs.ParseTrace(r.Header.Get(obs.Header)))
}

// writeJSON/writeError delegate to the serve helpers so the two HTTP
// surfaces (bbserved, bbproxy) share one wire shape.
func writeJSON(w http.ResponseWriter, status int, v any) { serve.WriteJSON(w, status, v) }

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	serve.WriteError(w, status, format, args...)
}

func (h *handler) place(w http.ResponseWriter, r *http.Request) {
	count, err := serve.ParseBulkCount(r.URL.Query().Get("count"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := r.URL.Query().Get("key")
	if key != "" && count > 1 {
		// Same contract as bbserved: a bulk cannot carry a key (see
		// the serve handler for why).
		writeError(w, http.StatusBadRequest,
			"bulk place (count=%d) cannot carry a key: keyed placement is one ball per request; send count=1 requests for key %q", count, key)
		return
	}
	var bins []int
	var samples int64
	ctx := traceCtx(r)
	if key != "" {
		bins, samples, err = h.rt.PlaceKeyed(ctx, key)
	} else {
		bins, samples, err = h.rt.Place(ctx, count)
	}
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrNoBackends) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	resp := serve.PlaceResponse{Bin: bins[0], Count: count, Samples: samples, Key: key}
	if count > 1 {
		resp.Bins = bins
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) remove(w http.ResponseWriter, r *http.Request) {
	s := r.URL.Query().Get("bin")
	if s == "" {
		writeError(w, http.StatusBadRequest, "missing bin parameter")
		return
	}
	bin, err := strconv.Atoi(s)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bin must be an integer, got %q", s)
		return
	}
	if bin < 0 || bin >= h.rt.N() {
		writeError(w, http.StatusBadRequest, "bin %d outside [0,%d)", bin, h.rt.N())
		return
	}
	switch err := h.rt.RemoveKeyed(traceCtx(r), bin, r.URL.Query().Get("key")); {
	case err == nil:
		writeJSON(w, http.StatusOK, serve.RemoveResponse{Bin: bin, Removed: true})
	case errors.Is(err, serve.ErrEmptyBin):
		writeError(w, http.StatusConflict, "bin %d is empty", bin)
	case errors.Is(err, ErrBackendDown), errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadGateway, "%v", err)
	}
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, BuildStatsResponse(h.rt, h.info, h.ws))
}

// BuildStatsResponse assembles the proxy's /v1/stats document — the
// single source for both transports (HTTP handler and wire adapter).
func BuildStatsResponse(rt *Router, info serve.Info, ws *wire.Server) StatsResponse {
	win, secs := rt.WindowLatency()
	cs := rt.Stats() // one aggregation pass serves both blocks
	resp := StatsResponse{
		Info:            info,
		StatsView:       cs.View(),
		Draining:        rt.Draining(),
		LatencyNs:       serve.LatencySummary(rt.PlaceLatency()),
		WindowLatencyNs: serve.LatencySummary(win),
		WindowSec:       secs,
		Cluster:         cs,
		Obs:             rt.Obs().StageSummaries(),
		Watch:           rt.Watch().StatsBlockDoc(),
		Diag:            rt.Diag().StatsDoc(),
	}
	if ws != nil {
		s := ws.Stats()
		resp.Wire = &s
	}
	return resp
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	if h.rt.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if len(h.rt.Membership().Healthy()) == 0 {
		http.Error(w, "no healthy backends", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// metrics renders the routing tier in Prometheus text format: the
// cluster aggregates, per-backend gauges, and the place latency as a
// summary in seconds.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	cs := h.rt.Stats()
	lat := h.rt.PlaceLatency()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	g := func(name, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
	}
	c := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}
	g("bb_proxy_backends", "Configured backend slots.", cs.Backends)
	g("bb_proxy_healthy_backends", "Backends currently in rotation.", cs.Healthy)
	g("bb_proxy_balls", "Estimated balls across healthy backends.", cs.Balls)
	g("bb_proxy_backend_gap", "Max minus min estimated backend ball count.", cs.BackendGap)
	g("bb_proxy_max_load", "Maximum single-bin load across healthy backends.", cs.MaxLoad)
	g("bb_proxy_probes_per_pick", "Load-view probes per routing decision.", cs.ProbesPerPick)
	c("bb_proxy_picks_total", "Cumulative routing decisions.", cs.Picks)
	c("bb_proxy_probes_total", "Cumulative load-view probes.", cs.Probes)
	c("bb_proxy_failovers_total", "Placements retried on another backend.", cs.Failovers)
	c("bb_proxy_evictions_total", "Backends evicted from rotation.", cs.Evictions)
	c("bb_proxy_rejoins_total", "Backends re-admitted to rotation.", cs.Rejoins)

	if ks := cs.Keyed; ks != nil {
		g("bb_proxy_keyed_keys", "Keys in the keyed placement table.", ks.Keys)
		g("bb_proxy_keyed_hot_keys", "Keys split to replica sets.", ks.HotKeys)
		g("bb_proxy_keyed_affinity_hit_rate", "Keyed requests answered from the affinity table.", ks.AffinityHitRate)
		c("bb_proxy_keyed_moved_total", "Key replicas moved by failures or rebalancing.", ks.MovedKeys)
		c("bb_proxy_keyed_shed_total", "Key replicas shed off overfull bins.", ks.ShedKeys)
	}
	serve.WriteDurabilityMetrics(w, cs.Durability)
	if h.ws != nil {
		wire.WriteMetrics(w, h.ws.Stats())
	}

	fmt.Fprintf(w, "# HELP bb_proxy_backend_up Backend in rotation (1) or evicted (0).\n# TYPE bb_proxy_backend_up gauge\n")
	for _, row := range cs.Rows {
		up := 0
		if row.Up {
			up = 1
		}
		fmt.Fprintf(w, "bb_proxy_backend_up{slot=%q} %d\n", strconv.Itoa(row.Slot), up)
	}
	fmt.Fprintf(w, "# HELP bb_proxy_backend_balls Estimated balls per backend.\n# TYPE bb_proxy_backend_balls gauge\n")
	for _, row := range cs.Rows {
		fmt.Fprintf(w, "bb_proxy_backend_balls{slot=%q} %d\n", strconv.Itoa(row.Slot), row.Balls)
	}
	fmt.Fprintf(w, "# HELP bb_proxy_backend_poll_age_seconds Age of each backend's load view.\n# TYPE bb_proxy_backend_poll_age_seconds gauge\n")
	for _, row := range cs.Rows {
		if row.AgeMs >= 0 {
			fmt.Fprintf(w, "bb_proxy_backend_poll_age_seconds{slot=%q} %g\n",
				strconv.Itoa(row.Slot), float64(row.AgeMs)/1e3)
		}
	}

	fmt.Fprintf(w, "# HELP bb_proxy_place_latency_seconds Proxied place latency (incl. failover).\n")
	fmt.Fprintf(w, "# TYPE bb_proxy_place_latency_seconds summary\n")
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(w, "bb_proxy_place_latency_seconds{quantile=%q} %g\n",
			strconv.FormatFloat(q, 'g', -1, 64), float64(lat.Quantile(q))/1e9)
	}
	fmt.Fprintf(w, "bb_proxy_place_latency_seconds_sum %g\n", float64(lat.Sum)/1e9)
	fmt.Fprintf(w, "bb_proxy_place_latency_seconds_count %d\n", lat.Count)

	h.rt.Watch().WriteMetrics(w)
	h.rt.Obs().WriteStageMetrics(w)
	obs.WritePickStaleness(w, h.rt.PickStaleness())
	obs.WriteBuildMetrics(w, h.build)
	obs.WriteRuntimeMetrics(w)
}
