package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wire"
)

// newTracedTier builds the full two-hop path — router over 2 backends,
// each a real serve dispatcher behind the chosen transport — with both
// recorders head-sampling every op, so every request's spans land in
// both rings.
func newTracedTier(t *testing.T, transport string) (*Router, []*serve.Dispatcher) {
	t.Helper()
	const k, n = 2, 64
	ds := make([]*serve.Dispatcher, k)
	backends := make([]Backend, k)
	for i := range ds {
		d := serve.NewDispatcher(serve.Config{
			Spec: ballsbins.Adaptive(), N: n, Shards: 1, Seed: uint64(i + 1),
			Obs: obs.Options{SampleEvery: 1},
		})
		ds[i] = d
		t.Cleanup(d.Close)
		info := serve.Info{Protocol: d.Name(), N: n, Shards: 1}
		hs := httptest.NewServer(serve.NewHandler(d, info))
		t.Cleanup(hs.Close)
		hb := NewHTTPBackend(hs.URL)
		switch transport {
		case "http":
			backends[i] = hb
		case "wire":
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			ws := wire.NewServer(serve.NewDispatcherWire(d, info), wire.ServerOptions{})
			go ws.Serve(ln)
			t.Cleanup(func() { ws.Close() })
			wb, err := NewWireBackend(hb, ln.Addr().String(), n)
			if err != nil {
				t.Fatal(err)
			}
			backends[i] = wb
		default:
			t.Fatalf("unknown transport %q", transport)
		}
	}
	policy, err := PolicyByName("greedy", 2, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(Config{
		Backends:       backends,
		BinsPerBackend: n,
		Policy:         policy,
		Seed:           7,
		Obs:            obs.Options{SampleEvery: 1},
	})
	t.Cleanup(rt.Close)
	return rt, ds
}

// traceSignature renders one trace's two-hop shape ("proxy/place:
// probe+forward|serve/place:queue+apply") after verifying span
// containment and cross-hop ordering.
func traceSignature(t *testing.T, id uint64, proxyOps, serveOps []*obs.Op) string {
	t.Helper()
	want := obs.FormatTrace(id)
	find := func(ops []*obs.Op, hop string) *obs.Op {
		var got *obs.Op
		for _, op := range ops {
			if op.Trace != want {
				continue
			}
			if got != nil {
				t.Fatalf("trace %s recorded twice on hop %s", want, hop)
			}
			got = op
		}
		if got == nil {
			t.Fatalf("trace %s missing on hop %s", want, hop)
		}
		return got
	}
	check := func(op *obs.Op) string {
		sig := op.Hop + "/" + op.Op + ":"
		end := op.Start + op.DurationNs
		for i, sp := range op.Spans {
			if sp.Start < op.Start || sp.Start+sp.DurationNs > end {
				t.Errorf("trace %s %s span %s [%d,+%d] escapes parent [%d,+%d]",
					want, op.Hop, sp.Stage, sp.Start, sp.DurationNs, op.Start, op.DurationNs)
			}
			if i > 0 {
				sig += "+"
			}
			sig += sp.Stage
		}
		return sig
	}
	po, so := find(proxyOps, "proxy"), find(serveOps, "serve")
	if so.Start < po.Start {
		t.Errorf("trace %s: serve hop started (%d) before proxy hop (%d)", want, so.Start, po.Start)
	}
	return check(po) + "|" + check(so)
}

// TestTracePropagationEquivalence drives the same seeded script
// through proxy + 2 backends over HTTP and over the wire protocol and
// asserts each trace id shows up exactly once per hop with the same
// hop/stage topology on both transports, with span timestamps
// contained in their parents and ordered across hops.
func TestTracePropagationEquivalence(t *testing.T) {
	const places, removes = 8, 2
	sigs := make(map[string][]string) // transport -> per-script-slot signature
	for _, transport := range []string{"http", "wire"} {
		rt, ds := newTracedTier(t, transport)
		ctx := context.Background()
		var traces []uint64
		var bins []int
		for i := 0; i < places; i++ {
			id := uint64(0xA000 + i + 1)
			bs, _, err := rt.Place(obs.WithTrace(ctx, id), 1)
			if err != nil {
				t.Fatalf("%s place %d: %v", transport, i, err)
			}
			traces = append(traces, id)
			bins = append(bins, bs[0])
		}
		for i := 0; i < removes; i++ {
			id := uint64(0xB000 + i + 1)
			if err := rt.Remove(obs.WithTrace(ctx, id), bins[i]); err != nil {
				t.Fatalf("%s remove %d: %v", transport, i, err)
			}
			traces = append(traces, id)
		}
		proxyOps := rt.Obs().Ops(0)
		var serveOps []*obs.Op
		for _, d := range ds {
			serveOps = append(serveOps, d.Obs().Ops(0)...)
		}
		for _, id := range traces {
			sigs[transport] = append(sigs[transport], traceSignature(t, id, proxyOps, serveOps))
		}
	}
	for i := range sigs["http"] {
		if sigs["http"][i] != sigs["wire"][i] {
			t.Errorf("script slot %d: topology differs across transports:\n  http: %s\n  wire: %s",
				i, sigs["http"][i], sigs["wire"][i])
		}
	}
}

// toggleBackend is a Backend whose health and traffic flip with one
// atomic — the eviction/rejoin fixture for the staleness test.
type toggleBackend struct {
	d    *serve.Dispatcher
	down atomic.Bool
}

func (b *toggleBackend) Name() string { return "toggle" }

func (b *toggleBackend) Place(ctx context.Context, count int) ([]int, int64, error) {
	if b.down.Load() {
		return nil, 0, fmt.Errorf("toggle: down")
	}
	return b.d.PlaceMany(ctx, count)
}

func (b *toggleBackend) Remove(ctx context.Context, bin int) error {
	if b.down.Load() {
		return fmt.Errorf("toggle: down")
	}
	return b.d.Remove(ctx, bin)
}

func (b *toggleBackend) Stats(context.Context) (serve.StatsView, error) {
	if b.down.Load() {
		return serve.StatsView{}, fmt.Errorf("toggle: down")
	}
	return b.d.Stats(), nil
}

func (b *toggleBackend) Health(context.Context) error {
	if b.down.Load() {
		return fmt.Errorf("toggle: down")
	}
	return nil
}

// TestRejoinResetsPickStaleness pins the rejoin re-poll contract: with
// no periodic refresh (huge staleness window), the load view only ages
// — until an evicted backend rejoins, whose onChange hook forces a
// fresh poll, so the first picks after rejoin see ~0 staleness instead
// of the age accumulated before the eviction.
func TestRejoinResetsPickStaleness(t *testing.T) {
	d := serve.NewDispatcher(serve.Config{Spec: ballsbins.Adaptive(), N: 64, Shards: 1, Seed: 1})
	defer d.Close()
	b := &toggleBackend{d: d}
	policy, err := PolicyByName("single", 1, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(Config{
		Backends:       []Backend{b},
		BinsPerBackend: 64,
		Policy:         policy,
		Seed:           1,
		Staleness:      time.Hour, // no periodic re-poll: the view only ages
		HealthEvery:    2 * time.Millisecond,
		FailAfter:      2,
		RiseAfter:      2,
	})
	defer rt.Close()

	ctx := context.Background()
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1: let the startup poll age, then pick — staleness at pick
	// reflects the view's age.
	aged := 60 * time.Millisecond
	time.Sleep(aged)
	if _, _, err := rt.Place(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if snap := rt.pickStaleness.SnapshotAndReset(); snap.Max < (aged / 2).Milliseconds() {
		t.Fatalf("pre-rejoin pick staleness %dms, want >= %dms (view should have aged)",
			snap.Max, (aged / 2).Milliseconds())
	}

	// Phase 2: evict, rejoin, and pick again immediately. The rejoin
	// hook's forced re-poll must have reset the view's age — without
	// it, staleness would exceed everything elapsed since startup.
	b.down.Store(true)
	waitFor(func() bool { return !rt.Membership().IsUp(0) }, "eviction")
	b.down.Store(false)
	waitFor(func() bool { return rt.Membership().IsUp(0) }, "rejoin")
	// The forced re-poll runs async off the membership lock; give it a
	// beat, then verify it landed rather than sleeping blind.
	waitFor(func() bool {
		_, age, ok := rt.View().Polled(0)
		return ok && age < 40*time.Millisecond
	}, "forced re-poll after rejoin")
	if _, _, err := rt.Place(ctx, 1); err != nil {
		t.Fatal(err)
	}
	snap := rt.pickStaleness.SnapshotAndReset()
	if snap.Count == 0 {
		t.Fatal("post-rejoin pick recorded no staleness sample")
	}
	if max := snap.Max; max > 50 {
		t.Fatalf("post-rejoin pick staleness %dms, want ~0 (rejoin re-poll should reset the view)", max)
	}
}
