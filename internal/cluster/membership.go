package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/rng"
)

// Membership is the backend registry: a fixed list of slots, each
// either in rotation (up) or evicted. Backends never change slots, so
// the global bin numbering slot·n + local is stable across eviction
// and rejoin — a ball placed on a backend that later flaps is
// reachable again at the same global bin once the backend returns.
//
// Eviction and rejoin are driven by consecutive evidence: FailAfter
// consecutive failures (health probes or live-traffic errors reported
// by the Router) evict a slot, RiseAfter consecutive successful health
// probes re-admit it. Counters reset on contrary evidence, so a flappy
// backend needs a genuine streak to change state.
type Membership struct {
	members []*member
	// mu guards the evidence counters and state transitions; the
	// healthy-set snapshot is read lock-free.
	mu      sync.Mutex
	healthy atomic.Pointer[[]int]

	failAfter int
	riseAfter int

	// probeSeed drives the per-slot re-probe backoff jitter (set by
	// the Router before the health loop starts; same package).
	probeSeed uint64

	evictions atomic.Int64
	rejoins   atomic.Int64

	// onChange, when set (before the health loop starts), is invoked
	// after every state transition with the slot and its new state.
	onChange func(slot int, up bool)
}

type member struct {
	slot    int
	backend Backend
	up      atomic.Bool
	// suspect mirrors fails > 0, so the traffic hot path can skip the
	// lock when there is no streak to clear.
	suspect atomic.Bool
	// fails counts consecutive failures (probe or traffic) while up;
	// rises counts consecutive probe successes while down. Guarded by
	// Membership.mu.
	fails, rises int
	// bo / nextProbe implement jittered exponential backoff for
	// re-probing a down slot, so a recovering backend is not hammered
	// by every health tick (and, across routers, not by all of them at
	// once). Touched only inside probeAll rounds, which never overlap.
	bo        *backoff.Backoff
	nextProbe time.Time
}

// NewMembership registers the backends, all initially in rotation.
// failAfter and riseAfter default to 2 when ≤ 0.
func NewMembership(backends []Backend, failAfter, riseAfter int) *Membership {
	if failAfter <= 0 {
		failAfter = 2
	}
	if riseAfter <= 0 {
		riseAfter = 2
	}
	m := &Membership{failAfter: failAfter, riseAfter: riseAfter}
	for i, b := range backends {
		mem := &member{slot: i, backend: b}
		mem.up.Store(true)
		m.members = append(m.members, mem)
	}
	m.rebuild()
	return m
}

// Size returns the number of slots.
func (m *Membership) Size() int { return len(m.members) }

// Backend returns the backend at slot.
func (m *Membership) Backend(slot int) Backend { return m.members[slot].backend }

// IsUp reports whether slot is currently in rotation.
func (m *Membership) IsUp(slot int) bool { return m.members[slot].up.Load() }

// Healthy returns the slots currently in rotation, ascending. The
// slice is a shared snapshot — callers must not modify it.
func (m *Membership) Healthy() []int { return *m.healthy.Load() }

// Evictions and Rejoins report cumulative state transitions.
func (m *Membership) Evictions() int64 { return m.evictions.Load() }

// Rejoins reports cumulative rejoin transitions.
func (m *Membership) Rejoins() int64 { return m.rejoins.Load() }

// rebuild recomputes the healthy snapshot. Callers hold mu (or are the
// constructor).
func (m *Membership) rebuild() {
	healthy := make([]int, 0, len(m.members))
	for _, mem := range m.members {
		if mem.up.Load() {
			healthy = append(healthy, mem.slot)
		}
	}
	m.healthy.Store(&healthy)
}

// ReportFailure records a live-traffic failure against slot — the
// Router calls it when a place or remove errors. Traffic errors count
// toward the same consecutive-failure threshold as probe failures, so
// a dead backend is evicted by its own traffic without waiting for the
// next health tick.
func (m *Membership) ReportFailure(slot int) {
	m.observe(slot, false, false)
}

// ReportSuccess records a live-traffic success against slot, clearing
// any partial failure streak — without it, a router running with no
// health loop (HealthEvery 0) would fold transient errors hours apart
// into one "consecutive" streak and evict a backend that served
// thousands of requests in between. Costs one atomic load when there
// is no streak to clear.
func (m *Membership) ReportSuccess(slot int) {
	if m.members[slot].suspect.Load() {
		m.observe(slot, true, false)
	}
}

// observe folds one piece of evidence (probe or traffic) into slot's
// state machine.
func (m *Membership) observe(slot int, ok, probe bool) {
	mem := m.members[slot]
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case mem.up.Load() && !ok:
		mem.fails++
		mem.suspect.Store(true)
		if mem.fails >= m.failAfter {
			mem.up.Store(false)
			mem.fails, mem.rises = 0, 0
			mem.suspect.Store(false)
			m.evictions.Add(1)
			m.rebuild()
			if m.onChange != nil {
				m.onChange(slot, false)
			}
		}
	case mem.up.Load() && ok:
		mem.fails = 0
		mem.suspect.Store(false)
	case !mem.up.Load() && ok && probe:
		// Only health probes rejoin a backend: traffic is not routed to
		// a down slot (except Remove, whose success says little about
		// capacity), so probes are the recovery signal.
		mem.rises++
		if mem.rises >= m.riseAfter {
			mem.up.Store(true)
			mem.fails, mem.rises = 0, 0
			m.rejoins.Add(1)
			m.rebuild()
			if m.onChange != nil {
				m.onChange(slot, true)
			}
		}
	case !mem.up.Load() && !ok:
		mem.rises = 0
	}
}

// probeAll health-checks every due slot concurrently, each probe
// bounded by timeout, and folds the results into the state machines.
// Up slots are always due (supervision stays fixed-interval); a down
// slot is due only once its re-probe backoff has elapsed — failures
// push its next probe out exponentially (with seeded jitter, capped
// at 16 periods), and any successful probe resets the schedule.
func (m *Membership) probeAll(ctx context.Context, timeout, every time.Duration) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, mem := range m.members {
		if !mem.up.Load() && now.Before(mem.nextProbe) {
			continue // backing off a down slot
		}
		wg.Add(1)
		go func(mem *member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			err := mem.backend.Health(pctx)
			if ctx.Err() != nil {
				return // shutdown, not evidence
			}
			m.observe(mem.slot, err == nil, true)
			if mem.bo == nil {
				mem.bo = backoff.New(every, 16*every, rng.Mix(m.probeSeed, uint64(mem.slot)))
			}
			if err == nil {
				mem.bo.Reset()
				mem.nextProbe = time.Time{}
			} else if !mem.up.Load() {
				mem.nextProbe = time.Now().Add(mem.bo.Next())
			}
		}(mem)
	}
	wg.Wait()
}

// run is the health loop: probe all due backends every `every` until
// ctx is cancelled.
func (m *Membership) run(ctx context.Context, every time.Duration) {
	timeout := every
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.probeAll(ctx, timeout, every)
		}
	}
}
