package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/serve"
)

// flappyBackend is an httptest-backed bbserved whose availability can
// be flipped: while down, every request (health checks included) gets
// a 500, like a process behind a dead load-balancer port.
type flappyBackend struct {
	d    *serve.Dispatcher
	srv  *httptest.Server
	down atomic.Bool
}

func newFlappyBackend(t *testing.T, n int, seed uint64) *flappyBackend {
	t.Helper()
	fb := &flappyBackend{}
	fb.d = serve.NewDispatcher(serve.Config{
		Spec: ballsbins.Adaptive(), N: n, Shards: 1, Seed: seed,
	})
	inner := serve.NewHandler(fb.d, serve.Info{Protocol: "adaptive", N: n, Shards: 1})
	fb.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fb.down.Load() {
			http.Error(w, "flapped", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { fb.srv.Close(); fb.d.Close() })
	return fb
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMembershipEvictRejoin is the flap test: a backend that fails
// health checks is evicted from the LoadView's rotation and its
// traffic share redistributes to the survivors; after recovery it is
// re-admitted and serves again.
func TestMembershipEvictRejoin(t *testing.T) {
	const k, n = 3, 128
	fbs := make([]*flappyBackend, k)
	backends := make([]Backend, k)
	for i := range fbs {
		fbs[i] = newFlappyBackend(t, n, uint64(100+i))
		backends[i] = NewHTTPBackend(fbs[i].srv.URL)
	}
	rt := NewRouter(Config{
		Backends:       backends,
		BinsPerBackend: n,
		Policy:         greedy{d: 2},
		Seed:           1,
		Staleness:      25 * time.Millisecond,
		HealthEvery:    10 * time.Millisecond,
		FailAfter:      2,
		RiseAfter:      2,
	})
	defer rt.Close()
	ctx := context.Background()

	if got := len(rt.Membership().Healthy()); got != k {
		t.Fatalf("healthy at start: %d, want %d", got, k)
	}

	// Take down backend 2; the health loop evicts it within a few
	// probe periods without any traffic.
	fbs[2].down.Store(true)
	waitFor(t, "eviction of backend 2", func() bool { return !rt.Membership().IsUp(2) })
	if rt.Membership().Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", rt.Membership().Evictions())
	}

	// Traffic redistributes entirely onto the survivors: no errors,
	// and backend 2 receives nothing while down.
	before2 := fbs[2].d.Allocator().Balls()
	for i := 0; i < 40; i++ {
		if _, _, err := rt.Place(ctx, 1); err != nil {
			t.Fatalf("Place during eviction: %v", err)
		}
	}
	if got := fbs[2].d.Allocator().Balls(); got != before2 {
		t.Fatalf("evicted backend received %d balls", got-before2)
	}
	if got := fbs[0].d.Allocator().Balls() + fbs[1].d.Allocator().Balls(); got != 40 {
		t.Fatalf("survivors hold %d balls, want 40", got)
	}

	// Recovery: the backend rejoins after consecutive healthy probes
	// and traffic reaches it again (greedy[2] prefers it — it is far
	// emptier than the survivors).
	fbs[2].down.Store(false)
	waitFor(t, "rejoin of backend 2", func() bool { return rt.Membership().IsUp(2) })
	if rt.Membership().Rejoins() != 1 {
		t.Fatalf("rejoins = %d, want 1", rt.Membership().Rejoins())
	}
	waitFor(t, "traffic reaching rejoined backend 2", func() bool {
		if _, _, err := rt.Place(ctx, 1); err != nil {
			t.Fatalf("Place after rejoin: %v", err)
		}
		return fbs[2].d.Allocator().Balls() > before2
	})

	// The rejoined backend's view cell was re-polled, not inherited
	// from before the flap.
	waitFor(t, "fresh poll of backend 2", func() bool {
		_, age, ok := rt.View().Polled(2)
		return ok && age < time.Second
	})
}

// TestMembershipFlapNeedsStreak checks the consecutive-evidence rule:
// a single failed probe (or one traffic error) does not evict when
// FailAfter is 2, and a single good probe does not rejoin when
// RiseAfter is 2.
func TestMembershipFlapNeedsStreak(t *testing.T) {
	ms := NewMembership([]Backend{&InprocBackend{}, &InprocBackend{}}, 2, 2)
	ms.observe(0, false, true)
	if !ms.IsUp(0) {
		t.Fatal("one failure evicted with FailAfter=2")
	}
	ms.observe(0, true, true) // success resets the streak
	ms.observe(0, false, true)
	if !ms.IsUp(0) {
		t.Fatal("non-consecutive failures evicted")
	}
	ms.observe(0, false, true)
	if ms.IsUp(0) {
		t.Fatal("two consecutive failures did not evict")
	}
	if got := ms.Healthy(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("healthy = %v, want [1]", got)
	}

	ms.observe(0, true, true)
	if ms.IsUp(0) {
		t.Fatal("one good probe rejoined with RiseAfter=2")
	}
	ms.observe(0, false, true) // failure resets the rise streak
	ms.observe(0, true, true)
	if ms.IsUp(0) {
		t.Fatal("non-consecutive successes rejoined")
	}
	ms.observe(0, true, true)
	if !ms.IsUp(0) {
		t.Fatal("two consecutive good probes did not rejoin")
	}

	// Traffic reports do not rejoin a down backend (only probes do).
	ms.observe(1, false, true)
	ms.observe(1, false, true)
	if ms.IsUp(1) {
		t.Fatal("backend 1 should be down")
	}
	ms.observe(1, true, false)
	ms.observe(1, true, false)
	if ms.IsUp(1) {
		t.Fatal("traffic successes rejoined a down backend")
	}
}

// TestReportSuccessClearsStreak pins the no-health-loop regime: a
// router running on traffic evidence alone must not fold transient
// errors arbitrarily far apart into one "consecutive" streak — a
// success in between resets it.
func TestReportSuccessClearsStreak(t *testing.T) {
	ms := NewMembership([]Backend{&InprocBackend{}}, 2, 2)
	ms.ReportFailure(0)
	ms.ReportSuccess(0) // thousands of these happen between real faults
	ms.ReportFailure(0)
	if !ms.IsUp(0) {
		t.Fatal("two failures separated by a success evicted the backend")
	}
	ms.ReportFailure(0)
	if ms.IsUp(0) {
		t.Fatal("two consecutive traffic failures did not evict")
	}
	// A success on a down backend does not rejoin it (probe-only).
	ms.ReportSuccess(0)
	if ms.IsUp(0) {
		t.Fatal("ReportSuccess rejoined a down backend")
	}
}
