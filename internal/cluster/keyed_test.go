package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/keyed"
	"repro/internal/serve"
)

func doReq(t *testing.T, h http.Handler, method, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	return rec
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// newKeyedCluster builds K in-proc backends behind a keyed router.
func newKeyedCluster(t *testing.T, k int, kc *keyed.Config) (*Router, []*serve.Dispatcher) {
	t.Helper()
	const n = 512
	backends := make([]Backend, k)
	ds := make([]*serve.Dispatcher, k)
	for i := range backends {
		ds[i] = serve.NewDispatcher(serve.Config{
			Spec: ballsbins.Adaptive(), N: n, Shards: 2, Seed: uint64(50 + i),
		})
		backends[i] = &InprocBackend{D: ds[i], Label: fmt.Sprintf("b%d", i)}
	}
	rt := NewRouter(Config{
		Backends:       backends,
		BinsPerBackend: n,
		Policy:         single{},
		Seed:           7,
		Keyed:          kc,
	})
	t.Cleanup(func() {
		rt.Close()
		for _, d := range ds {
			d.Close()
		}
	})
	return rt, ds
}

func TestRouterKeyedAffinity(t *testing.T) {
	rt, _ := newKeyedCluster(t, 3, &keyed.Config{HotShare: 1})
	ctx := context.Background()
	bins1, _, err := rt.PlaceKeyed(ctx, "user-1")
	if err != nil {
		t.Fatal(err)
	}
	slot := bins1[0] / rt.BinsPerBackend()
	for i := 0; i < 20; i++ {
		bins, _, err := rt.PlaceKeyed(ctx, "user-1")
		if err != nil {
			t.Fatal(err)
		}
		if got := bins[0] / rt.BinsPerBackend(); got != slot {
			t.Fatalf("repeat %d: key routed to backend %d, want sticky %d", i, got, slot)
		}
	}
	st := rt.Stats()
	if st.Keyed == nil {
		t.Fatal("cluster stats missing keyed block")
	}
	if st.Keyed.AffinityHits != 20 || st.Keyed.AffinityMisses != 1 {
		t.Fatalf("affinity hits/misses %d/%d, want 20/1", st.Keyed.AffinityHits, st.Keyed.AffinityMisses)
	}
	// Removing every ball releases the keyed tier's books.
	for i := 0; i < 21; i++ {
		bins, _, err := rt.PlaceKeyed(ctx, "user-2")
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.RemoveKeyed(ctx, bins[0], "user-2"); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Keyed().Stats().LiveBalls; got != 21 {
		// user-1 still holds 21 balls; user-2's are all released.
		t.Fatalf("live balls %d, want 21", got)
	}
}

// TestRouterKeyedKillDisruption is the cluster half of the PR's
// disruption gate: kill a backend under keyed traffic and (a) no
// client-visible place error escapes — failovers move exactly the
// affected keys; (b) the keys moved stay ≤ the keys resident on the
// dead slot (+ sheds, counted separately); (c) keys on surviving
// backends keep their assignment.
func TestRouterKeyedKillDisruption(t *testing.T) {
	rt, ds := newKeyedCluster(t, 3, &keyed.Config{HotShare: 1})
	ctx := context.Background()

	const keys = 300
	for i := 0; i < keys; i++ {
		if _, _, err := rt.PlaceKeyed(ctx, fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("warmup key %d: %v", i, err)
		}
	}
	pre := rt.Keyed().Stats()
	if pre.MovedKeys != 0 {
		t.Fatalf("keys moved before any failure: %d", pre.MovedKeys)
	}
	const victim = 1
	resident := pre.PerBinKeys[victim]
	if resident == 0 {
		t.Fatalf("no keys resident on victim backend")
	}

	// kill -9: the dispatcher stops serving; traffic errors evict the
	// slot (FailAfter default 2) and the keyed tier rebalances.
	ds[victim].Close()

	assignedPre := make(map[string]int)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		if bins, _, err := rt.PlaceKeyed(ctx, key); err == nil {
			assignedPre[key] = bins[0] / rt.BinsPerBackend()
		} else {
			t.Fatalf("keyed place after kill: client-visible error for %s: %v", key, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.ms.IsUp(victim) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rt.ms.IsUp(victim) {
		t.Fatal("victim backend was not evicted by its own traffic")
	}

	post := rt.Keyed().Stats()
	if post.MovedKeys > resident {
		t.Fatalf("moved %d keys, only %d were resident on the dead slot (shed %d is separate)",
			post.MovedKeys, resident, post.ShedKeys)
	}
	if post.PerBinKeys[victim] != 0 {
		t.Fatalf("dead slot still holds %d keys", post.PerBinKeys[victim])
	}
	if post.Healthy != 2 {
		t.Fatalf("keyed tier sees %d healthy bins, want 2", post.Healthy)
	}

	// Survivors keep their assignment, and not one placement errors.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		bins, _, err := rt.PlaceKeyed(ctx, key)
		if err != nil {
			t.Fatalf("keyed place after eviction: %v", err)
		}
		slot := bins[0] / rt.BinsPerBackend()
		if slot == victim {
			t.Fatalf("key %s routed to the dead backend", key)
		}
		if prev, ok := assignedPre[key]; ok && prev != victim && prev != slot {
			t.Fatalf("key %s moved from surviving backend %d to %d — disruption is not minimal", key, prev, slot)
		}
	}
}

// TestRouterKeyedBulkRejectedByHTTP asserts the proxy handler's
// bulk+key 400 contract.
func TestRouterKeyedEndToEndHTTP(t *testing.T) {
	rt, _ := newKeyedCluster(t, 2, &keyed.Config{HotShare: 1})
	h := NewHandler(rt, serve.Info{Protocol: "cluster/keyed[adaptive]+single", N: rt.N()})

	rec := doReq(t, h, "POST", "/v1/place?key=alpha&count=8")
	if rec.Code != 400 {
		t.Fatalf("bulk+key: status %d, want 400", rec.Code)
	}
	rec = doReq(t, h, "POST", "/v1/place?key=alpha&count=1")
	if rec.Code != 200 {
		t.Fatalf("keyed place count=1: status %d body %s", rec.Code, rec.Body)
	}
	rec = doReq(t, h, "POST", "/v1/place?key=alpha")
	if rec.Code != 200 {
		t.Fatalf("keyed place: status %d", rec.Code)
	}
	rec = doReq(t, h, "GET", "/v1/stats")
	if rec.Code != 200 {
		t.Fatalf("stats: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"keyed"`, `"affinity_hit_rate"`, `"per_bin_keys"`} {
		if !contains(body, want) {
			t.Fatalf("stats body missing %s: %s", want, body)
		}
	}
}
