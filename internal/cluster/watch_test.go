package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/keyed"
	"repro/internal/serve"
	"repro/internal/watch"
)

// newWatchedCluster builds K in-proc backends behind a watched router
// with the health loop on — the kill-scenario shape, with a keyed tier
// so evictions also rebalance.
func newWatchedCluster(t *testing.T, k int, pol Policy, kc *keyed.Config) (*Router, []*serve.Dispatcher) {
	t.Helper()
	const n = 256
	backends := make([]Backend, k)
	ds := make([]*serve.Dispatcher, k)
	for i := range backends {
		ds[i] = serve.NewDispatcher(serve.Config{
			Spec: ballsbins.Adaptive(), N: n, Shards: 2, Seed: uint64(90 + i),
		})
		backends[i] = &InprocBackend{D: ds[i], Label: fmt.Sprintf("b%d", i)}
	}
	rt := NewRouter(Config{
		Backends:       backends,
		BinsPerBackend: n,
		Policy:         pol,
		Seed:           7,
		Keyed:          kc,
		Staleness:      10 * time.Millisecond,
		HealthEvery:    5 * time.Millisecond,
		FailAfter:      2,
		RiseAfter:      2,
		Watch:          watch.Options{Cadence: time.Hour}, // manual ticks
	})
	t.Cleanup(func() {
		rt.Close()
		for _, d := range ds {
			d.Close()
		}
	})
	return rt, ds
}

// TestWatchEvictionRebalanceRejoinEvents kills a backend under keyed
// traffic and asserts the journal records the full lifecycle: an
// EVICTION and a REBALANCE on the way down — with no bound violation —
// and a REJOIN if the backend returns. This is the jq contract the CI
// watch-smoke job asserts over HTTP.
func TestWatchEvictionRebalanceRejoinEvents(t *testing.T) {
	rt, ds := newWatchedCluster(t, 3, single{}, &keyed.Config{HotShare: 1})
	ctx := context.Background()

	for i := 0; i < 60; i++ {
		if _, _, err := rt.PlaceKeyed(ctx, fmt.Sprintf("user-%d", i)); err != nil {
			t.Fatalf("PlaceKeyed: %v", err)
		}
	}

	// kill -9 analogue: the dispatcher dies, health probes evict it.
	ds[2].Close()
	waitFor(t, "eviction of backend 2", func() bool { return !rt.Membership().IsUp(2) })

	waitFor(t, "EVICTION and REBALANCE in journal", func() bool {
		c := rt.Watch().EventCounts()
		return c[watch.EventEviction] >= 1 && c[watch.EventRebalance] >= 1
	})
	var rebalance *watch.Event
	for _, ev := range rt.Watch().Events(0) {
		if ev.Type == watch.EventRebalance {
			rebalance = &ev
			break
		}
	}
	if rebalance == nil || rebalance.Fields["slot"] != 2 {
		t.Fatalf("rebalance event = %+v", rebalance)
	}
	if moved, resident := rebalance.Fields["keys_moved"], rebalance.Fields["resident"]; moved > resident {
		t.Fatalf("rebalance moved %d > resident %d", moved, resident)
	}

	// The kill must not register as a bound violation on any tier.
	rt.Watch().Tick(time.Now())
	if got := rt.Watch().ViolationsTotal(); got != 0 {
		t.Fatalf("violations after kill = %d (%v)", got, rt.Watch().ViolationCounts())
	}
}

// TestWatchClusterBoundHolds drives anonymous traffic under the
// adaptive routing policy and asserts the cross-backend bound check is
// armed and holding on every manual tick.
func TestWatchClusterBoundHolds(t *testing.T) {
	rt, _ := newWatchedCluster(t, 3, adaptive{}, nil)
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if _, _, err := rt.Place(ctx, 25); err != nil {
			t.Fatalf("Place: %v", err)
		}
		rt.Watch().Tick(time.Now())
	}
	if got := rt.Watch().ViolationsTotal(); got != 0 {
		t.Fatalf("violations = %d (%v)", got, rt.Watch().ViolationCounts())
	}
	var armed bool
	for _, ck := range rt.watchSample().Checks {
		if ck.Invariant == "cluster_backend_max" {
			armed = true
			if ck.Observed > ck.Bound {
				t.Fatalf("cluster bound broken at rest: %+v", ck)
			}
		}
	}
	if !armed {
		t.Fatal("cluster_backend_max not armed under adaptive policy")
	}
	pts := rt.Watch().Series(0)
	// Balls is the load-view estimate (polled + local delta), so it can
	// transiently over- or under-count by a few in-flight bulks.
	if len(pts) != 40 || pts[len(pts)-1].Balls <= 0 {
		t.Fatalf("series = %d points, last %+v", len(pts), pts[len(pts)-1])
	}
}

// TestWatchClusterInjection proves detection end to end on the proxy
// tier: a bogus injected bound must fire exactly one violation within
// one tick, visible in the journal, the ledger and the metrics text.
func TestWatchClusterInjection(t *testing.T) {
	rt, _ := newWatchedCluster(t, 2, adaptive{}, nil)
	if _, _, err := rt.Place(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	rt.Watch().OverrideBound("cluster_backend_max", -1)
	rt.Watch().Tick(time.Now())
	rt.Watch().Tick(time.Now()) // edge-triggered: no second fire

	if got := rt.Watch().ViolationsTotal(); got != 1 {
		t.Fatalf("ViolationsTotal = %d, want 1", got)
	}

	h := NewHandler(rt, serve.Info{Protocol: "cluster/adaptive", N: rt.N()})
	rec := doReq(t, h, "GET", "/v1/events?type=BOUND_VIOLATION")
	if rec.Code != 200 || !contains(rec.Body.String(), `"invariant": "cluster_backend_max"`) {
		t.Fatalf("events = %d %s", rec.Code, rec.Body.String())
	}
	rec = doReq(t, h, "GET", "/metrics")
	if !contains(rec.Body.String(), `bb_invariant_violations_total{invariant="cluster_backend_max"} 1`) {
		t.Fatalf("metrics missing violation counter:\n%s", rec.Body.String())
	}
}

// TestWatchClusterHTTPEndpoints covers the proxy's watch surfaces.
func TestWatchClusterHTTPEndpoints(t *testing.T) {
	rt, _ := newWatchedCluster(t, 2, single{}, &keyed.Config{HotShare: 1})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, _, err := rt.PlaceKeyed(ctx, fmt.Sprintf("k-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rt.Watch().Tick(time.Now())
	h := NewHandler(rt, serve.Info{Protocol: "cluster/single", N: rt.N()})

	rec := doReq(t, h, "GET", "/v1/timeseries?window=5")
	if rec.Code != 200 || !contains(rec.Body.String(), `"hop": "proxy"`) {
		t.Fatalf("timeseries = %d %s", rec.Code, rec.Body.String())
	}
	rec = doReq(t, h, "GET", "/v1/events")
	if rec.Code != 200 || !contains(rec.Body.String(), `"event_counts"`) {
		t.Fatalf("events = %d %s", rec.Code, rec.Body.String())
	}
	rec = doReq(t, h, "GET", "/v1/stats")
	if !contains(rec.Body.String(), `"watch"`) || !contains(rec.Body.String(), `"violations_total"`) {
		t.Fatalf("stats missing watch block: %s", rec.Body.String())
	}
	rec = doReq(t, h, "GET", "/v1/events?since=bogus")
	if rec.Code != 400 {
		t.Fatalf("bad since = %d, want 400", rec.Code)
	}
}

// TestWatchDrainEventOnce: Close records exactly one DRAIN even when
// called twice.
func TestWatchDrainEventOnce(t *testing.T) {
	rt, _ := newWatchedCluster(t, 2, single{}, nil)
	rt.Close()
	rt.Close()
	if got := rt.Watch().EventCounts()[watch.EventDrain]; got != 1 {
		t.Fatalf("DRAIN events = %d, want 1", got)
	}
	if !strings.Contains(rt.Watch().Events(0)[len(rt.Watch().Events(0))-1].Detail, "draining") {
		t.Fatal("drain detail missing")
	}
}
