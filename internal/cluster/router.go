package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/hdrhist"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/watch"
)

// Config describes a Router.
type Config struct {
	// Backends are the routable nodes, one fixed slot each. Required.
	Backends []Backend
	// BinsPerBackend is every backend's bin count n; global bin
	// numbering is slot·n + local bin. Required.
	BinsPerBackend int
	// Policy picks backends. Required (see PolicyByName).
	Policy Policy
	// Seed drives the policy's random probes.
	Seed uint64
	// Staleness is the LoadView refresh period — how stale the routing
	// decisions are allowed to be. 0 disables polling: the view then
	// relies on local accounting alone (exact for a single router over
	// in-proc backends; deterministic for tests).
	Staleness time.Duration
	// HealthEvery is the health-probe period; 0 disables the health
	// loop (backends only leave rotation via traffic errors).
	HealthEvery time.Duration
	// FailAfter / RiseAfter are the consecutive-evidence thresholds for
	// eviction and rejoin (default 2 each).
	FailAfter, RiseAfter int
	// Keyed, when non-nil, enables the keyed placement tier: requests
	// carrying a key route through an internal/keyed KeyMap over the
	// backend slots (sticky affinity, hot-key splitting,
	// minimal-disruption rebalancing on evict/rejoin) instead of the
	// anonymous Policy. Bins and, when zero, Seed are filled in by the
	// router. Anonymous traffic still uses Policy.
	Keyed *keyed.Config
	// KeyedStore, when non-nil (and Keyed is set), persists the keyed
	// tier to a WAL directory: OpenRouter recovers the exact pre-crash
	// key→backend assignment before routing, and Close seals it with a
	// final compacting snapshot.
	KeyedStore *keyed.StoreOptions
	// Obs tunes the router's trace recorder (hop defaults to "proxy");
	// the zero value enables it with package defaults.
	Obs obs.Options
	// Watch tunes the invariant watchdog + time-series collector behind
	// /v1/events and /v1/timeseries (see internal/watch); zero values
	// take the watch defaults. Set Watch.Disabled to run without one.
	Watch watch.Options
	// Logger receives structured membership and lifecycle events
	// (default slog.Default).
	Logger *slog.Logger
}

// Router routes place/remove traffic across the backends: the cluster
// tier's dispatch core. Construct with NewRouter; all methods are safe
// for concurrent use; Close stops the background loops.
type Router struct {
	cfg    Config
	ms     *Membership
	view   *LoadView
	policy Policy
	km     *keyed.KeyMap // nil unless Config.Keyed was set
	store  *keyed.Store  // nil unless Config.KeyedStore was set
	n      int           // bins per backend

	// mu serializes policy picks over the shared RNG stream (kept
	// single so fixed seeds give reproducible routing).
	mu  sync.Mutex
	rnd *rng.Rand

	picks     atomic.Int64
	probes    atomic.Int64
	failovers atomic.Int64
	// fallbacks counts picks that exhausted the acceptance probe cap
	// and took the least-loaded probe: those backends never passed the
	// policy's acceptance test, so the watchdog's cross-backend bound
	// is disarmed once any pick has fallen back.
	fallbacks atomic.Int64
	// maxBulk is the largest ball count one pick has carried: the
	// acceptance rule admits a backend before the whole bulk lands on
	// it, so the provable cross-backend bound is ⌈i/K⌉+maxBulk (the
	// paper's ⌈i/K⌉+1 exactly when traffic is single-ball).
	maxBulk atomic.Int64
	// ledger is the router's own per-slot routing record (cumulative
	// balls placed/removed through this router). Unlike the LoadView —
	// whose polled+delta estimate has transient double- and under-count
	// windows around refreshes — the ledger is exact at operation
	// completion, so the watchdog checks its bound against it.
	ledger []slotLedger

	obs    *obs.Recorder
	watch  *watch.Monitor                // invariant watchdog + time series (nilable)
	diag   atomic.Pointer[diag.Recorder] // flight recorder, bound late (nilable)
	logger *slog.Logger
	// pickStaleness records, per pick, how old the chosen backend's
	// polled load was (milliseconds) — the routing tier's staleness-at-
	// decision distribution. Picks of never-polled backends are skipped.
	pickStaleness *hdrhist.Hist

	placeLat  *hdrhist.Hist
	removeLat *hdrhist.Hist
	// window accumulates place latency for the current staleness
	// window; the poll loop rotates it into lastWindow.
	window      *hdrhist.Hist
	lastWindow  atomic.Pointer[windowSummary]
	windowBegan atomic.Int64 // unixnano

	draining atomic.Bool
	cancel   context.CancelFunc
	loops    sync.WaitGroup
}

type windowSummary struct {
	snap hdrhist.Snapshot
	secs float64
}

// NewRouter validates cfg, takes a best-effort initial load poll of
// every backend, and starts the health and refresh loops. It panics on
// structurally invalid configuration (no backends, missing policy) —
// same contract as the allocator constructors — and on durability I/O
// errors; callers that can handle those use OpenRouter.
func NewRouter(cfg Config) *Router {
	rt, _, err := OpenRouter(cfg)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	return rt
}

// OpenRouter is NewRouter with the durability path surfaced: when
// cfg.KeyedStore is set, the keyed tier is recovered from its WAL
// directory before any traffic routes, and the returned RecoveryInfo
// says what was rebuilt (nil without a store). I/O failures return an
// error instead of panicking.
func OpenRouter(cfg Config) (*Router, *keyed.RecoveryInfo, error) {
	if len(cfg.Backends) == 0 {
		panic("cluster: NewRouter with no backends")
	}
	if cfg.BinsPerBackend <= 0 {
		panic("cluster: NewRouter with BinsPerBackend <= 0")
	}
	if cfg.Policy == nil {
		panic("cluster: NewRouter with nil Policy")
	}
	obsOpts := cfg.Obs
	if obsOpts.Hop == "" {
		obsOpts.Hop = "proxy"
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	rt := &Router{
		cfg:           cfg,
		ms:            NewMembership(cfg.Backends, cfg.FailAfter, cfg.RiseAfter),
		view:          NewLoadView(len(cfg.Backends)),
		ledger:        make([]slotLedger, len(cfg.Backends)),
		policy:        cfg.Policy,
		n:             cfg.BinsPerBackend,
		rnd:           rng.New(cfg.Seed),
		obs:           obs.NewRecorder(obsOpts),
		logger:        logger,
		pickStaleness: hdrhist.New(),
		placeLat:      hdrhist.New(),
		removeLat:     hdrhist.New(),
		window:        hdrhist.New(),
	}
	rt.ms.probeSeed = rng.Mix(cfg.Seed, 0x70726f6265)  // "probe"
	rt.view.pollSeed = rng.Mix(cfg.Seed, 0x6c6f616470) // "loadp"
	rt.windowBegan.Store(time.Now().UnixNano())
	var rec *keyed.RecoveryInfo
	if cfg.Keyed != nil {
		kc := *cfg.Keyed
		kc.Bins = len(cfg.Backends)
		if kc.Seed == 0 {
			kc.Seed = rng.Mix(cfg.Seed, 0x6b657965642f636c)
		}
		if cfg.KeyedStore != nil {
			store, info, err := keyed.OpenStore(kc, *cfg.KeyedStore)
			if err != nil {
				return nil, nil, err
			}
			rt.store, rt.km, rec = store, store.M, info
			// The recovered map may remember bins as down, but this
			// process's membership starts every slot in rotation:
			// reconcile (SetUp is a no-op for already-up bins). A
			// backend that is genuinely still dead is re-evicted by
			// probes/traffic, which journals a fresh OpDown.
			for slot := range cfg.Backends {
				rt.km.SetUp(slot)
			}
		} else {
			rt.km = keyed.New(kc)
		}
	}
	// A rejoining backend may have lost or served balls we never saw:
	// re-poll it immediately (asynchronously — onChange runs under the
	// membership lock) so the next picks see its real load rather than
	// the pre-eviction estimate. The keyed tier follows membership
	// synchronously: an eviction rebalances exactly the keys resident
	// on the dead slot (the KeyMap has its own lock and never calls
	// back into Membership, so nesting under the membership lock is
	// safe), a rejoin only reopens the slot for future picks.
	rt.ms.onChange = func(slot int, up bool) {
		if rt.km != nil && !up {
			t0 := time.Now()
			// resident (the dead slot's replica count) is read before
			// SetDown from the same KeyMap the rebalance mutates; the
			// paper's minimal-disruption claim is that a rebalance moves
			// only what was resident on the lost bin, so moved > resident
			// is a violation worth reporting the moment it happens rather
			// than on the next watchdog cadence.
			var resident int64
			if st := rt.km.Stats(); slot < len(st.PerBinKeys) {
				resident = st.PerBinKeys[slot]
			}
			moved, shed := rt.km.SetDown(slot)
			c := rt.obs.BeginAt(0, "rebalance", t0)
			c.Attr("slot", int64(slot))
			c.Attr("keys_moved", moved)
			c.End(nil)
			rt.watch.Record(watch.EventRebalance, fmt.Sprintf("slot %d down: %d key replicas moved", slot, moved),
				map[string]int64{"slot": int64(slot), "keys_moved": moved, "keys_shed": shed, "resident": resident})
			if moved > resident {
				rt.watch.ReportViolation("keyed_rebalance_moved", moved, resident,
					map[string]int64{"slot": int64(slot)})
			}
		}
		if up {
			if rt.km != nil {
				rt.km.SetUp(slot)
			}
			rt.watch.Record(watch.EventRejoin, fmt.Sprintf("backend %d rejoined", slot),
				map[string]int64{"slot": int64(slot)})
			rt.logger.Info("cluster: backend rejoined, forcing load re-poll", "slot", slot)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_ = rt.view.Refresh(ctx, slot, rt.ms.Backend(slot))
			}()
		} else {
			rt.watch.Record(watch.EventEviction, fmt.Sprintf("backend %d evicted", slot),
				map[string]int64{"slot": int64(slot)})
			rt.logger.Warn("cluster: backend evicted", "slot", slot)
		}
	}

	rt.watch = watch.New("proxy", cfg.Watch, rt.watchSample)
	if rec != nil {
		rt.watch.Record(watch.EventRecovery, "keyed tier recovered from store", map[string]int64{
			"snapshot_keys":    rec.SnapshotKeys,
			"replayed_records": rec.ReplayedRecords,
			"replay_ms":        rec.ReplayMs,
		})
	}

	// Seed the view so the first picks are informed (best-effort; a
	// backend that is down simply stays unpolled).
	initCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	rt.view.refreshAll(initCtx, rt.ms.Healthy(), rt.ms.Backend, 2*time.Second)
	cancel()

	loopCtx, loopCancel := context.WithCancel(context.Background())
	rt.cancel = loopCancel
	if cfg.HealthEvery > 0 {
		rt.loops.Add(1)
		go func() {
			defer rt.loops.Done()
			rt.ms.run(loopCtx, cfg.HealthEvery)
		}()
	}
	if cfg.Staleness > 0 {
		rt.loops.Add(1)
		go func() {
			defer rt.loops.Done()
			rt.refreshLoop(loopCtx)
		}()
	}
	rt.watch.Start()
	return rt, rec, nil
}

// refreshLoop re-polls every healthy backend's stats each staleness
// window and rotates the windowed latency histogram.
func (rt *Router) refreshLoop(ctx context.Context) {
	t := time.NewTicker(rt.cfg.Staleness)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.view.refreshAll(ctx, rt.ms.Healthy(), rt.ms.Backend, rt.cfg.Staleness)
			rt.rotateWindow()
		}
	}
}

// rotateWindow publishes the current latency window and starts the
// next one.
func (rt *Router) rotateWindow() {
	began := rt.windowBegan.Swap(time.Now().UnixNano())
	snap := rt.window.SnapshotAndReset()
	rt.lastWindow.Store(&windowSummary{
		snap: snap,
		secs: float64(time.Now().UnixNano()-began) / 1e9,
	})
}

// Membership exposes the backend registry (read-side: Healthy, IsUp).
func (rt *Router) Membership() *Membership { return rt.ms }

// View exposes the load view (read-side: Load, Polled).
func (rt *Router) View() *LoadView { return rt.view }

// N returns the cluster's total bin count (backends × bins each).
func (rt *Router) N() int { return len(rt.cfg.Backends) * rt.n }

// BinsPerBackend returns each backend's bin count.
func (rt *Router) BinsPerBackend() int { return rt.n }

// Policy returns the routing policy's name.
func (rt *Router) Policy() string { return rt.policy.Name() }

// Keyed returns the router's KeyMap, nil when keyed routing is not
// configured.
func (rt *Router) Keyed() *keyed.KeyMap { return rt.km }

// Durability returns the keyed tier's durability block, nil when the
// router runs without a store.
func (rt *Router) Durability() *keyed.DurabilityStats {
	if rt.store == nil {
		return nil
	}
	ds := rt.store.Durability()
	return &ds
}

// Draining reports whether Close has begun.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// pick runs one policy decision under the RNG lock. Alongside the
// chosen slot it returns the probes spent and the staleness of the
// load information the decision saw (-1 when the slot was never
// polled, i.e. the view ran on local accounting alone).
func (rt *Router) pick(healthy []int, count int) (slot int, probes int, staleMs int64) {
	rt.mu.Lock()
	slot, probes, fallback := rt.policy.Pick(rt.rnd, rt.view, healthy, count)
	rt.mu.Unlock()
	rt.picks.Add(1)
	rt.probes.Add(int64(probes))
	if fallback {
		rt.fallbacks.Add(1)
	}
	for {
		cur := rt.maxBulk.Load()
		if int64(count) <= cur || rt.maxBulk.CompareAndSwap(cur, int64(count)) {
			break
		}
	}
	return slot, probes, rt.noteStaleness(slot)
}

// slotLedger is one backend's entry in the router ledger: cumulative
// balls placed on and removed from the slot, counted at operation
// completion. Kept as separate monotone counters (not one live gauge)
// so readers can order their loads — placed before removed — and a
// torn read can only under-state the live count, never inflate it.
type slotLedger struct {
	placed  atomic.Int64
	removed atomic.Int64
}

// note records a completed backend operation (n > 0 balls placed,
// n < 0 one removed) in both load accounts: the LoadView delta that
// steers routing picks, and the exact ledger the watchdog reads.
func (rt *Router) note(slot int, n int64) {
	rt.view.Note(slot, n)
	if n > 0 {
		rt.ledger[slot].placed.Add(n)
	} else {
		rt.ledger[slot].removed.Add(-n)
	}
}

// noteStaleness records how old slot's polled load is right now into
// the pick-staleness histogram and returns it in milliseconds (-1 and
// no record when the slot has never been polled).
func (rt *Router) noteStaleness(slot int) int64 {
	_, age, ok := rt.view.Polled(slot)
	if !ok {
		return -1
	}
	ms := age.Milliseconds()
	rt.pickStaleness.Record(ms)
	return ms
}

// Place routes count balls to one policy-chosen backend and returns
// their global bins plus the backend-reported allocation samples. When
// the chosen backend errors the request fails over to another healthy
// backend (the error is reported to Membership, so a dead backend is
// evicted by its own traffic); Place fails only when every healthy
// backend has been tried.
func (rt *Router) Place(ctx context.Context, count int) ([]int, int64, error) {
	if count < 1 {
		return nil, 0, fmt.Errorf("cluster: Place count %d < 1", count)
	}
	if rt.draining.Load() {
		return nil, 0, ErrDraining
	}
	t0 := time.Now()
	upstream := obs.TraceFrom(ctx)
	c := rt.obs.BeginAt(upstream, "place", t0)
	if id := c.Trace(); id != upstream {
		// Head-sampled here: propagate the minted id downstream so the
		// serve hop records its spans under the same trace.
		ctx = obs.WithTrace(ctx, id)
	}
	var probesTotal, failovers int
	staleMs := int64(-1)
	finish := func(err error) {
		c.Attr("count", int64(count))
		c.Attr("probes", int64(probesTotal))
		c.Attr("failovers", int64(failovers))
		if staleMs >= 0 {
			c.Attr("staleness_ms_at_pick", staleMs)
		}
		c.End(err)
	}
	candidates := rt.ms.Healthy()
	var lastErr error
	for len(candidates) > 0 {
		if err := ctx.Err(); err != nil {
			finish(err)
			return nil, 0, err
		}
		pickStart := time.Now()
		slot, probes, ms := rt.pick(candidates, count)
		c.Stage("probe", pickStart)
		probesTotal += probes
		staleMs = ms
		fwdStart := time.Now()
		bins, samples, err := rt.ms.Backend(slot).Place(ctx, count)
		c.Stage("forward", fwdStart)
		if err == nil {
			rt.ms.ReportSuccess(slot)
			rt.note(slot, int64(count))
			for i := range bins {
				bins[i] += slot * rt.n
			}
			el := int64(time.Since(t0))
			rt.placeLat.Record(el)
			rt.window.Record(el)
			finish(nil)
			return bins, samples, nil
		}
		// A dead caller is not evidence against the backend: when the
		// failure is the caller's own context (disconnect, deadline),
		// return it without reporting or failing over — otherwise two
		// client disconnects could evict a healthy backend.
		if ctx.Err() != nil {
			finish(ctx.Err())
			return nil, 0, ctx.Err()
		}
		lastErr = err
		failovers++
		rt.failovers.Add(1)
		rt.ms.ReportFailure(slot)
		candidates = without(candidates, slot)
	}
	if lastErr == nil {
		finish(ErrNoBackends)
		return nil, 0, ErrNoBackends
	}
	err := fmt.Errorf("cluster: place failed on every healthy backend: %w", lastErr)
	finish(err)
	return nil, 0, err
}

// PlaceKeyed routes one ball for key to the key's assigned backend —
// the keyed tier's dispatch path. First contact probes an assignment
// under the keyed policy's bounded-load rule; repeat traffic hits the
// same backend with zero probes; a hot key spreads over its replica
// set. When the assigned backend errors, the key's replica is moved
// (one deterministic re-probe of its own sequence, counted in
// moved_keys) and the placement retries there — like Place, keyed
// placements fail only when every healthy candidate has been tried,
// so a backend death costs zero client-visible place errors. Falls
// back to anonymous Place when the router has no keyed tier or key
// is empty.
func (rt *Router) PlaceKeyed(ctx context.Context, key string) ([]int, int64, error) {
	if rt.km == nil || key == "" {
		return rt.Place(ctx, 1)
	}
	if rt.draining.Load() {
		return nil, 0, ErrDraining
	}
	t0 := time.Now()
	upstream := obs.TraceFrom(ctx)
	c := rt.obs.BeginAt(upstream, "place", t0)
	if id := c.Trace(); id != upstream {
		ctx = obs.WithTrace(ctx, id)
	}
	var failovers int
	staleMs := int64(-1)
	// Keyed decisions and their probes are accounted in the keyed
	// stats block, not in picks/probes — mixing them would corrupt
	// probes_per_pick, whose denominator is anonymous policy picks.
	slot, keyProbes, hit, err := rt.km.Route(key)
	c.Stage("probe", t0)
	c.Attr("key_probes", int64(keyProbes))
	if hit {
		c.Attr("key_hit", 1)
	}
	finish := func(err error) {
		c.Attr("failovers", int64(failovers))
		if staleMs >= 0 {
			c.Attr("staleness_ms_at_pick", staleMs)
		}
		c.End(err)
	}
	if err != nil {
		finish(ErrNoBackends)
		return nil, 0, ErrNoBackends
	}
	staleMs = rt.noteStaleness(slot)
	// Route counted the incoming ball against the key; every exit that
	// does NOT place it must release that ref, or a failed request
	// would leave the key looking busy forever (immune to idle
	// eviction, inflating live-ball balancing).
	var lastErr error
	var tried []int
	for len(tried) <= rt.ms.Size() {
		if err := ctx.Err(); err != nil {
			rt.km.Release(key, slot)
			finish(err)
			return nil, 0, err
		}
		fwdStart := time.Now()
		bins, samples, perr := placeKeyOn(ctx, rt.ms.Backend(slot), key)
		c.Stage("forward", fwdStart)
		if perr == nil {
			rt.ms.ReportSuccess(slot)
			rt.note(slot, 1)
			for i := range bins {
				bins[i] += slot * rt.n
			}
			el := int64(time.Since(t0))
			rt.placeLat.Record(el)
			rt.window.Record(el)
			finish(nil)
			return bins, samples, nil
		}
		// A dead caller is not evidence against the backend (see Place).
		if ctx.Err() != nil {
			rt.km.Release(key, slot)
			finish(ctx.Err())
			return nil, 0, ctx.Err()
		}
		lastErr = perr
		failovers++
		rt.failovers.Add(1)
		rt.ms.ReportFailure(slot)
		tried = append(tried, slot)
		next, merr := rt.km.MoveOff(key, slot, tried)
		if merr != nil {
			break // no healthy bin outside the tried set remains
		}
		slot = next
	}
	rt.km.Release(key, slot)
	if lastErr == nil {
		finish(ErrNoBackends)
		return nil, 0, ErrNoBackends
	}
	err = fmt.Errorf("cluster: keyed place failed on every candidate backend: %w", lastErr)
	finish(err)
	return nil, 0, err
}

// placeKeyOn forwards a keyed placement, passing the key through to
// backends that understand it (end-to-end affinity) and degrading to
// an anonymous single place otherwise.
func placeKeyOn(ctx context.Context, b Backend, key string) ([]int, int64, error) {
	if kb, ok := b.(KeyedBackend); ok {
		return kb.PlaceKey(ctx, key)
	}
	return b.Place(ctx, 1)
}

// without returns candidates minus slot, copying (the healthy snapshot
// is shared and must not be mutated).
func without(candidates []int, slot int) []int {
	out := make([]int, 0, len(candidates)-1)
	for _, c := range candidates {
		if c != slot {
			out = append(out, c)
		}
	}
	return out
}

// Remove takes one ball out of global bin. The owning backend is
// determined by the bin numbering — there is no failover: if that
// backend is evicted the ball is unreachable until it rejoins, and
// Remove returns ErrBackendDown.
func (rt *Router) Remove(ctx context.Context, bin int) error {
	return rt.RemoveKeyed(ctx, bin, "")
}

// RemoveKeyed is Remove with keyed bookkeeping: the key is forwarded
// to the owning backend (so its shard-level keyed tier releases the
// ball too) and a successful removal releases the ball from the
// router's own KeyMap. Departures of balls stranded on a dead
// backend still fail with ErrBackendDown — honest accounting, same
// as the anonymous path.
func (rt *Router) RemoveKeyed(ctx context.Context, bin int, key string) error {
	if rt.draining.Load() {
		return ErrDraining
	}
	if bin < 0 || bin >= rt.N() {
		return fmt.Errorf("cluster: bin %d outside [0,%d)", bin, rt.N())
	}
	slot, local := bin/rt.n, bin%rt.n
	if !rt.ms.IsUp(slot) {
		return ErrBackendDown
	}
	t0 := time.Now()
	upstream := obs.TraceFrom(ctx)
	c := rt.obs.BeginAt(upstream, "remove", t0)
	if id := c.Trace(); id != upstream {
		ctx = obs.WithTrace(ctx, id)
	}
	var err error
	if kb, ok := rt.ms.Backend(slot).(KeyedBackend); ok && key != "" {
		err = kb.RemoveKey(ctx, local, key)
	} else {
		err = rt.ms.Backend(slot).Remove(ctx, local)
	}
	c.Stage("forward", t0)
	defer c.End(err)
	switch {
	case err == nil:
		rt.ms.ReportSuccess(slot)
		rt.note(slot, -1)
		rt.removeLat.RecordSince(t0)
		if rt.km != nil && key != "" {
			rt.km.Release(key, slot)
		}
	case errors.Is(err, serve.ErrEmptyBin):
		// A well-formed answer from a healthy backend — the caller's
		// books are wrong, not the backend.
		rt.ms.ReportSuccess(slot)
	case ctx.Err() != nil:
		// The caller's own context died: not evidence (see Place).
	default:
		// Transport-level failure: removes count toward eviction just
		// like placements, so a dead backend serving only departures
		// still leaves rotation.
		rt.ms.ReportFailure(slot)
	}
	return err
}

// Obs returns the router's trace recorder.
func (rt *Router) Obs() *obs.Recorder { return rt.obs }

// BindDiag attaches the flight recorder (built late by the daemon,
// since its capture closures need the assembled stats surface) and
// wires it to the watchdog's violation hook.
func (rt *Router) BindDiag(rec *diag.Recorder) {
	if rec == nil {
		return
	}
	rt.diag.Store(rec)
	rt.watch.OnViolation(rec.OnViolation)
}

// Diag returns the bound flight recorder (nil when diagnostics are
// off).
func (rt *Router) Diag() *diag.Recorder { return rt.diag.Load() }

// PickStaleness returns the staleness-at-pick distribution snapshot
// (milliseconds of load-view age at each routing decision).
func (rt *Router) PickStaleness() hdrhist.Snapshot { return rt.pickStaleness.Snapshot() }

// PlaceLatency returns the cumulative place-latency snapshot.
func (rt *Router) PlaceLatency() hdrhist.Snapshot { return rt.placeLat.Snapshot() }

// RemoveLatency returns the cumulative remove-latency snapshot.
func (rt *Router) RemoveLatency() hdrhist.Snapshot { return rt.removeLat.Snapshot() }

// WindowLatency returns the last completed staleness window's place
// latency and the window length in seconds (zero before the first
// rotation).
func (rt *Router) WindowLatency() (hdrhist.Snapshot, float64) {
	if w := rt.lastWindow.Load(); w != nil {
		return w.snap, w.secs
	}
	return hdrhist.Snapshot{}, 0
}

// Close stops routing: subsequent Place/Remove return ErrDraining, the
// background loops exit, and in-flight requests run to completion
// against their backends. With a keyed store, the drained assignment
// table is sealed with a final compacting snapshot — a TERM/restart
// cycle loses zero assignments. It does not close the backends
// themselves (the proxy does not own the cluster's data). Idempotent.
func (rt *Router) Close() {
	if rt.draining.CompareAndSwap(false, true) {
		rt.watch.Record(watch.EventDrain, "router draining", nil)
	}
	rt.cancel()
	rt.loops.Wait()
	rt.watch.Close()
	if rt.store != nil {
		rt.store.Close()
	}
}

// Crash stops the router WITHOUT the final snapshot or log flush —
// the crash-simulation hook restart scenarios use as the in-proc
// analogue of kill -9: recovery from the data directory sees only
// what the fsync policy already made durable. Idempotent.
func (rt *Router) Crash() {
	rt.draining.Store(true)
	rt.cancel()
	rt.loops.Wait()
	rt.watch.Close()
	if rt.store != nil {
		rt.store.Crash()
	}
}
