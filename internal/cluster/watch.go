package cluster

import (
	"repro/internal/watch"
)

// Watch returns the router's invariant monitor (nil when
// Config.Watch.Disabled).
func (rt *Router) Watch() *watch.Monitor { return rt.watch }

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// watchSample assembles one watchdog sample for the cluster tier. The
// time-series point comes from one rt.Stats() aggregation pass; the
// cross-backend bound check reads the router's own ledger instead —
// the LoadView's polled+delta estimate has transient double- and
// under-count windows around refreshes (a Note landing after a poll
// already captured the bulk is counted twice until the next refresh),
// which would fabricate violations.
//
// The cross-backend bound needs care on four axes:
//
//   - Horizon. The paper's ⌈i/K⌉+1 is stated for insertions, and live
//     ball counts are not monotone — a ball placed legitimately at a
//     high horizon persists while others drain, so checking against
//     the current live total would fabricate violations during removal
//     phases. The horizon is Σ cumulative placements from the ledger,
//     which is monotone and read after the per-slot live loads, so
//     concurrent traffic can only raise the bound relative to what was
//     observed, never lower it.
//
//   - Bulk slack. One accepted pick lands the whole bulk on the chosen
//     backend; acceptance admitted the backend before the bulk, so the
//     provable form is ⌈i/K⌉+maxBulk (exactly the paper's +1 when
//     every pick carries one ball). The slack here is 2·maxBulk: the
//     acceptance test itself runs against the stale view, whose error
//     around a refresh is bounded by the in-flight bulk it double- or
//     under-counts.
//
//   - Membership. The bound assumes a fixed K: an eviction strands the
//     survivors' mass (placed when K was larger), and a rejoin can
//     return a backend empty while its peers are full — both make the
//     current-K form unsound. The check is therefore armed only while
//     the membership has never churned (zero evictions); the kill
//     scenarios keep their own invariants (rebalance accounting, zero
//     phantom violations) through the event journal instead.
//
//   - Fallback picks. The acceptance loop carries a probe cap for
//     termination; a pick that exhausts it takes the least-loaded
//     probe, which never passed the acceptance test — so the bound is
//     disarmed once any pick has fallen back (cs.Fallbacks counts
//     them in /v1/stats).
//
// It is also armed only for the pure adaptive policy with no keyed
// traffic: keyed routing pins balls to backends by key popularity
// (bounded per key, not per pick), so the anonymous-pick evenness the
// bound rests on does not apply.
func (rt *Router) watchSample() watch.Sample {
	cs := rt.Stats()
	var s watch.Sample

	var placed, removed int64
	var minLoad = -1
	var psi float64
	for _, row := range cs.Rows {
		if !row.Up {
			continue
		}
		placed += row.Placed
		removed += row.Removed
		psi += row.Psi
		if row.AgeMs >= 0 && (minLoad < 0 || row.MinLoad < minLoad) {
			minLoad = row.MinLoad
		}
	}
	if minLoad < 0 {
		minLoad = 0
	}

	keyedTraffic := cs.Keyed != nil && cs.Keyed.AffinityHits+cs.Keyed.AffinityMisses > 0
	if cs.Policy == "adaptive" && !keyedTraffic && cs.Healthy > 0 && cs.Evictions == 0 && cs.Fallbacks == 0 {
		// Ledger read order matters: per-slot placed before removed (a
		// torn read under-states the live count), and the horizon pass
		// after the observed pass (concurrent placements can only raise
		// the bound, never shrink it under the observation).
		var observed int64
		for slot := range rt.ledger {
			if !rt.ms.IsUp(slot) {
				continue
			}
			live := rt.ledger[slot].placed.Load() - rt.ledger[slot].removed.Load()
			if live > observed {
				observed = live
			}
		}
		var horizon int64
		for slot := range rt.ledger {
			if rt.ms.IsUp(slot) {
				horizon += rt.ledger[slot].placed.Load()
			}
		}
		maxBulk := rt.maxBulk.Load()
		if maxBulk < 1 {
			maxBulk = 1
		}
		slack := 2 * maxBulk
		s.Checks = append(s.Checks, watch.Check{
			Invariant: "cluster_backend_max",
			Observed:  observed,
			Bound:     ceilDiv(horizon, int64(cs.Healthy)) + slack,
			Fields: map[string]int64{
				"balls": cs.Balls, "horizon": horizon,
				"healthy": int64(cs.Healthy), "bulk_slack": slack,
			},
		})
	}
	if cs.Keyed != nil && cs.Keyed.PolicyBound > 0 {
		// Same consistent pair as the serve tier: MaxKeyLoad and
		// PolicyBound come from one KeyMap lock hold, plus one unit of
		// churn-residual slack.
		s.Checks = append(s.Checks, watch.Check{
			Invariant: "cluster_keyed_max",
			Observed:  cs.Keyed.MaxKeyLoad,
			Bound:     cs.Keyed.PolicyBound + 1,
			Fields: map[string]int64{
				"keys": cs.Keyed.Keys, "replicas": cs.Keyed.Replicas,
				"healthy_backends": int64(cs.Keyed.Healthy),
			},
		})
	}

	s.Point = watch.Point{
		Balls:              cs.Balls,
		Placed:             placed,
		Removed:            removed,
		MaxLoad:            cs.MaxLoad,
		MinLoad:            minLoad,
		Gap:                cs.Gap,
		Psi:                psi,
		PickStalenessP99Ms: rt.pickStaleness.Snapshot().Quantile(0.99),
	}
	if cs.Keyed != nil {
		s.Point.AffinityHitRate = cs.Keyed.AffinityHitRate
	}
	if sum := rt.obs.StageSummaries(); len(sum) > 0 {
		s.Point.StageP99Ns = make(map[string]int64, len(sum))
		for stage, v := range sum {
			s.Point.StageP99Ns[stage] = v.P99Ns
		}
	}
	return s
}
