package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// TraceBackend is the optional Backend capability behind cross-tier
// trace assembly: read the backend daemon's retained-op ring, filtered
// to one trace id (id "" returns the whole ring — the bundle path).
// HTTPBackend serves it over GET /v1/trace, WireBackend over the TRACE
// message (protocol ≥ 3) with HTTP fallback, InprocBackend straight
// off the dispatcher's recorder.
type TraceBackend interface {
	ReadTrace(ctx context.Context, id string) ([]*obs.Op, error)
}

// gatherTimeout bounds each backend's trace read during assembly — a
// dead backend must not stall a diagnostic query.
const gatherTimeout = 2 * time.Second

// GatherTrace pulls every op recorded for one trace id across the
// whole cluster: the proxy's own ring plus each live backend's ring,
// fetched concurrently. sources names each ring consulted; backends
// that are down or predate the trace endpoint contribute nothing
// (a partial assembly beats a failed one during an incident).
func (rt *Router) GatherTrace(ctx context.Context, id uint64) (sources []string, ops []*obs.Op) {
	hex := obs.FormatTrace(id)
	sources = append(sources, "proxy")
	ops = append(ops, rt.obs.OpsByTrace(hex)...)

	var mu sync.Mutex
	var wg sync.WaitGroup
	for slot, b := range rt.cfg.Backends {
		tb, ok := b.(TraceBackend)
		if !ok || !rt.ms.IsUp(slot) {
			continue
		}
		wg.Add(1)
		go func(name string, tb TraceBackend) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, gatherTimeout)
			defer cancel()
			got, err := tb.ReadTrace(cctx, hex)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				sources = append(sources, name)
				ops = append(ops, got...)
			}
		}(b.Name(), tb)
	}
	wg.Wait()
	return sources, ops
}

// GatherAllTraces snapshots every ring in the cluster unfiltered — the
// proxy's plus each live backend's — for the diagnostic bundle's trace
// section, so a postmortem holds the complete cross-tier picture even
// for ids nobody asked about before the crash.
func (rt *Router) GatherAllTraces(ctx context.Context) (sources []string, ops []*obs.Op) {
	sources = append(sources, "proxy")
	ops = append(ops, rt.obs.Ops(0)...)

	var mu sync.Mutex
	var wg sync.WaitGroup
	for slot, b := range rt.cfg.Backends {
		tb, ok := b.(TraceBackend)
		if !ok || !rt.ms.IsUp(slot) {
			continue
		}
		wg.Add(1)
		go func(name string, tb TraceBackend) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, gatherTimeout)
			defer cancel()
			got, err := tb.ReadTrace(cctx, "")
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				sources = append(sources, name)
				ops = append(ops, got...)
			}
		}(b.Name(), tb)
	}
	wg.Wait()
	return sources, ops
}
