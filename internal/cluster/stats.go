package cluster

import (
	"math"

	"repro/internal/keyed"
	"repro/internal/serve"
)

// BackendRow is one backend's row in the aggregated cluster stats.
type BackendRow struct {
	Slot int    `json:"slot"`
	Name string `json:"name"`
	Up   bool   `json:"up"`
	// Balls is the LoadView estimate (polled + local delta) — the value
	// the routing policies actually see.
	Balls int64 `json:"balls"`
	// PolledBalls and AgeMs describe the last successful stats poll;
	// AgeMs is -1 when the backend has never been polled.
	PolledBalls int64   `json:"polled_balls"`
	Delta       int64   `json:"delta"`
	AgeMs       int64   `json:"age_ms"`
	MaxLoad     int     `json:"max_load"`
	MinLoad     int     `json:"min_load"`
	Placed      int64   `json:"placed"`
	Removed     int64   `json:"removed"`
	Samples     int64   `json:"samples"`
	Psi         float64 `json:"psi"`
}

// Stats is the aggregated cross-backend view the proxy exposes: the
// routing tier's own counters plus per-backend rows. Load aggregates
// (MaxLoad, Gap, BackendGap) cover healthy backends only — an evicted
// backend's balls are unreachable and its stats frozen.
type Stats struct {
	Policy   string `json:"policy"`
	Backends int    `json:"backends"`
	Healthy  int    `json:"healthy"`
	BinsPer  int    `json:"bins_per_backend"`

	// Balls is the estimated live total across healthy backends.
	Balls int64 `json:"balls"`
	// MaxBackendBalls/MinBackendBalls/BackendGap describe the
	// cross-backend ball distribution — the quantity the routing
	// policies balance (the cluster-level max load and gap, in the
	// balls-into-bins sense where backends are the bins).
	MaxBackendBalls int64 `json:"max_backend_balls"`
	MinBackendBalls int64 `json:"min_backend_balls"`
	BackendGap      int64 `json:"backend_gap"`
	// MaxLoad and Gap descend into bins: the maximum single-bin load
	// across healthy backends, and max − min across all their bins
	// (from the last polls).
	MaxLoad int `json:"max_load"`
	Gap     int `json:"gap"`

	// Picks counts routing decisions; Probes the load-view probes they
	// consumed (ProbesPerPick is the routing analogue of the paper's
	// samples per ball); Failovers the placements retried on another
	// backend after an error.
	Picks         int64   `json:"picks"`
	Probes        int64   `json:"probes"`
	ProbesPerPick float64 `json:"probes_per_pick"`
	// Fallbacks counts picks whose acceptance loop exhausted its probe
	// cap (the chosen backend never passed the acceptance test).
	Fallbacks int64 `json:"fallbacks"`
	Failovers int64 `json:"failovers"`
	Evictions int64 `json:"evictions"`
	Rejoins   int64 `json:"rejoins"`

	// Keyed is the keyed placement tier's block (key→backend
	// affinity), present when the router runs one.
	Keyed *keyed.Stats `json:"keyed,omitempty"`

	// Durability is the keyed tier's WAL block, present when the
	// router persists its assignments (-data-dir).
	Durability *keyed.DurabilityStats `json:"durability,omitempty"`

	Rows []BackendRow `json:"rows"`
}

// Stats assembles the aggregated cluster view. It reads only local
// state (the LoadView and counters) — no backend round-trips — so it
// is as stale as the view itself.
func (rt *Router) Stats() Stats {
	st := Stats{
		Policy:          rt.policy.Name(),
		Backends:        rt.ms.Size(),
		BinsPer:         rt.n,
		MinBackendBalls: math.MaxInt64,
		Picks:           rt.picks.Load(),
		Probes:          rt.probes.Load(),
		Fallbacks:       rt.fallbacks.Load(),
		Failovers:       rt.failovers.Load(),
		Evictions:       rt.ms.Evictions(),
		Rejoins:         rt.ms.Rejoins(),
	}
	if st.Picks > 0 {
		st.ProbesPerPick = float64(st.Probes) / float64(st.Picks)
	}
	if rt.km != nil {
		ks := rt.km.Stats()
		st.Keyed = &ks
	}
	st.Durability = rt.Durability()
	minLoad := math.MaxInt
	for slot := 0; slot < rt.ms.Size(); slot++ {
		row := BackendRow{
			Slot:  slot,
			Name:  rt.ms.Backend(slot).Name(),
			Up:    rt.ms.IsUp(slot),
			Balls: rt.view.Load(slot),
			Delta: rt.view.Delta(slot),
			AgeMs: -1,
		}
		if polled, age, ok := rt.view.Polled(slot); ok {
			row.PolledBalls = polled.Balls
			row.AgeMs = age.Milliseconds()
			row.MaxLoad = polled.MaxLoad
			row.MinLoad = polled.MinLoad
			row.Placed = polled.Placed
			row.Removed = polled.Removed
			row.Samples = polled.Samples
			row.Psi = polled.Psi
		}
		st.Rows = append(st.Rows, row)
		if !row.Up {
			continue
		}
		st.Healthy++
		st.Balls += row.Balls
		if row.Balls > st.MaxBackendBalls {
			st.MaxBackendBalls = row.Balls
		}
		if row.Balls < st.MinBackendBalls {
			st.MinBackendBalls = row.Balls
		}
		if row.MaxLoad > st.MaxLoad {
			st.MaxLoad = row.MaxLoad
		}
		if row.AgeMs >= 0 && row.MinLoad < minLoad {
			minLoad = row.MinLoad
		}
	}
	if st.Healthy == 0 {
		st.MinBackendBalls = 0
	}
	st.BackendGap = st.MaxBackendBalls - st.MinBackendBalls
	if minLoad == math.MaxInt {
		minLoad = 0
	}
	st.Gap = st.MaxLoad - minLoad
	return st
}

// View flattens the cluster stats into the serve monitoring shape, so
// load generators built for a single bbserved can read the proxy
// unmodified: backends appear as pseudo-shards, and the aggregate
// counters sum the healthy backends' last polled stats (plus local
// deltas for Balls). Psi is the sum of backend-local potentials — an
// approximation, since the cross-backend mean is not each backend's
// mean. Deriving the view from an already-assembled Stats keeps the
// two blocks of one /v1/stats response internally consistent (a
// single aggregation pass, not two racing ones).
func (cs Stats) View() serve.StatsView {
	v := serve.StatsView{MinLoad: math.MaxInt}
	for _, row := range cs.Rows {
		if row.Up {
			v.Balls += row.Balls
			v.Placed += row.Placed
			v.Removed += row.Removed
			v.Samples += row.Samples
			v.Psi += row.Psi
			if row.AgeMs >= 0 {
				if row.MaxLoad > v.MaxLoad {
					v.MaxLoad = row.MaxLoad
				}
				if row.MinLoad < v.MinLoad {
					v.MinLoad = row.MinLoad
				}
			}
		}
		v.Shards = append(v.Shards, serve.ShardStat{
			Shard:   row.Slot,
			Balls:   row.Balls,
			Placed:  row.Placed,
			Removed: row.Removed,
			Samples: row.Samples,
			MaxLoad: row.MaxLoad,
			MinLoad: row.MinLoad,
		})
	}
	if v.MinLoad == math.MaxInt {
		v.MinLoad = 0
	}
	v.Gap = v.MaxLoad - v.MinLoad
	if v.Placed > 0 {
		v.SamplesPerBall = float64(v.Samples) / float64(v.Placed)
	}
	return v
}

// StatsView is rt.Stats().View() — the flattened single-node shape.
func (rt *Router) StatsView() serve.StatsView { return rt.Stats().View() }
