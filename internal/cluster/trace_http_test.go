package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

func postTraced(t *testing.T, url, trace string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.Header, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestProxyAssembledTraceByID exercises GET /v1/trace/{id} on the
// proxy over real HTTP backends: one traced place through the proxy's
// public handler must assemble into a two-hop tree — the proxy op
// parenting the serve op it forwarded to — gathered from the proxy's
// own ring plus the backend rings.
func TestProxyAssembledTraceByID(t *testing.T) {
	rt, _ := newTracedTier(t, "http")
	ps := httptest.NewServer(NewHandler(rt, serve.Info{Protocol: "greedy"}))
	t.Cleanup(ps.Close)

	const id = uint64(0xabcd1234)
	hex := obs.FormatTrace(id)
	decode[serve.PlaceResponse](t, postTraced(t, ps.URL+"/v1/place", hex), http.StatusOK)

	at := decode[obs.AssembledTraceResponse](t,
		get(t, ps.URL+"/v1/trace/"+hex), http.StatusOK)
	if at.Trace != hex {
		t.Fatalf("trace = %q, want %q", at.Trace, hex)
	}
	// Every ring was consulted: the proxy's plus both live backends.
	if len(at.Sources) != 3 || at.Sources[0] != "proxy" {
		t.Fatalf("sources = %v, want proxy + 2 backends", at.Sources)
	}
	// Both hops recorded the request exactly once.
	hops := map[string]int{}
	for _, op := range at.Ops {
		hops[op.Hop]++
	}
	if hops["proxy"] != 1 || hops["serve"] != 1 {
		t.Fatalf("hop counts = %v, want one proxy and one serve op", hops)
	}
	if at.Assembled == nil {
		t.Fatal("no assembled tree for a recorded trace")
	}
	if got := at.Assembled.Hops; len(got) != 2 || got[0] != "proxy" || got[1] != "serve" {
		t.Fatalf("assembled hops = %v, want [proxy serve]", got)
	}
	// The cross-tier parenting is the whole point: the serve dispatch
	// must hang under the proxy op that forwarded to it.
	if len(at.Assembled.Roots) != 1 {
		t.Fatalf("roots = %d, want the proxy op as the single root", len(at.Assembled.Roots))
	}
	root := at.Assembled.Roots[0]
	if root.Op.Hop != "proxy" {
		t.Fatalf("root hop = %q, want proxy", root.Op.Hop)
	}
	if len(root.Children) != 1 || root.Children[0].Op.Hop != "serve" {
		t.Fatalf("root children = %+v, want the serve op nested under the proxy op", root.Children)
	}
}

// TestProxyAssembledTraceMalformed pins the proxy-side 400 path.
func TestProxyAssembledTraceMalformed(t *testing.T) {
	rt, _ := newTracedTier(t, "http")
	ps := httptest.NewServer(NewHandler(rt, serve.Info{Protocol: "greedy"}))
	t.Cleanup(ps.Close)

	decode[map[string]string](t,
		get(t, ps.URL+"/v1/trace/zzzz"), http.StatusBadRequest)
}
