package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/rng"
	"repro/internal/serve"
)

// LoadView is the router's approximate, possibly stale knowledge of
// every backend's load — the quantity the routing policies probe. Each
// slot holds the backend's last polled stats view plus a local delta:
// the net balls this router has placed on (or removed from) the
// backend since that poll. Load(slot) = polled balls + local delta, so
// between polls the view tracks the router's own traffic exactly and
// drifts only by what it cannot see — other routers' traffic, and
// operations that landed during the poll round-trip itself. Every
// successful refresh snaps the view back to the backend's truth.
//
// The staleness window (how often Refresh runs) is the experiment
// knob: a long window with several routers reproduces the classical
// stale-information regime where greedy routing can herd; a short
// window approaches the ideal live view. A single router with local
// accounting is accurate even with no polling at all.
type LoadView struct {
	cells []loadCell
	// pollSeed drives the per-slot poll-retry backoff jitter (set by
	// the Router before the refresh loop starts; same package).
	pollSeed uint64
}

type loadCell struct {
	stats    atomic.Pointer[serve.StatsView]
	delta    atomic.Int64
	polledAt atomic.Int64 // unixnano of last successful poll; 0 = never
	_        [8]byte
	// bo / nextPoll implement jittered exponential backoff for
	// re-polling a slot whose stats endpoint is failing, so a
	// recovering backend is not hammered by every refresh window.
	// Touched only inside refreshAll rounds, which never overlap.
	bo       *backoff.Backoff
	nextPoll time.Time
}

// NewLoadView returns a view over k backend slots, all unpolled.
func NewLoadView(k int) *LoadView {
	return &LoadView{cells: make([]loadCell, k)}
}

// Load returns the estimated ball count on slot: last polled balls
// plus the local delta since.
func (v *LoadView) Load(slot int) int64 {
	c := &v.cells[slot]
	var polled int64
	if st := c.stats.Load(); st != nil {
		polled = st.Balls
	}
	return polled + c.delta.Load()
}

// Total returns the estimated total balls across the given slots (the
// policies' live ball count i).
func (v *LoadView) Total(slots []int) int64 {
	var t int64
	for _, s := range slots {
		t += v.Load(s)
	}
	return t
}

// Note records local traffic against slot: +count for placements,
// negative for removals.
func (v *LoadView) Note(slot int, count int64) {
	v.cells[slot].delta.Add(count)
}

// Polled returns slot's last polled stats view and its age, with
// ok=false when the slot has never been polled.
func (v *LoadView) Polled(slot int) (st serve.StatsView, age time.Duration, ok bool) {
	c := &v.cells[slot]
	p := c.stats.Load()
	if p == nil {
		return serve.StatsView{}, 0, false
	}
	return *p, time.Duration(time.Now().UnixNano() - c.polledAt.Load()), true
}

// Delta returns slot's local delta since the last poll.
func (v *LoadView) Delta(slot int) int64 { return v.cells[slot].delta.Load() }

// Refresh polls slot's stats from its backend and, on success, snaps
// the view to the backend's truth, zeroing the local delta. Traffic
// noted between the poll request and its response is absorbed by the
// snap (it is already included in the backend's answer, or will be
// corrected by the next refresh) — the view is approximate by design.
func (v *LoadView) Refresh(ctx context.Context, slot int, b Backend) error {
	st, err := b.Stats(ctx)
	if err != nil {
		return err
	}
	c := &v.cells[slot]
	c.stats.Store(&st)
	c.delta.Store(0)
	c.polledAt.Store(time.Now().UnixNano())
	return nil
}

// refreshAll refreshes the due slots concurrently, each poll bounded
// by timeout; failures leave the slot's previous view in place and
// push its next poll out by jittered exponential backoff (capped at
// 16 windows, reset by any successful poll), so a struggling stats
// endpoint is not hammered every window.
func (v *LoadView) refreshAll(ctx context.Context, slots []int, backend func(int) Backend, timeout time.Duration) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, s := range slots {
		c := &v.cells[s]
		if now.Before(c.nextPoll) {
			continue // backing off a failing slot
		}
		wg.Add(1)
		go func(s int, c *loadCell) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			err := v.Refresh(pctx, s, backend(s))
			if ctx.Err() != nil {
				return // shutdown, not a poll verdict
			}
			if c.bo == nil {
				c.bo = backoff.New(timeout, 16*timeout, rng.Mix(v.pollSeed, uint64(s)))
			}
			if err == nil {
				c.bo.Reset()
				c.nextPoll = time.Time{}
			} else {
				c.nextPoll = time.Now().Add(c.bo.Next())
			}
		}(s, c)
	}
	wg.Wait()
}
