package keyed

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// Dir is the WAL directory. Required.
	Dir string
	// SnapshotEvery is how many journal records accumulate before a
	// compacting snapshot is written in the background (default 4096;
	// negative disables auto-snapshots).
	SnapshotEvery int
	// Fsync is the append durability policy (wal.SyncAlways,
	// wal.SyncInterval, wal.SyncNever; default interval).
	Fsync string
	// FsyncEvery is the interval-mode flush period (default 100ms).
	FsyncEvery time.Duration
}

// DefaultSnapshotEvery is StoreOptions.SnapshotEvery's zero-value
// default.
const DefaultSnapshotEvery = 4096

// Store is a durable KeyMap: every structural mutation is journaled
// to a WAL before the mutex is released, and periodic compacting
// snapshots bound both log growth and recovery time. OpenStore
// recovers the exact pre-crash assignment (see Mirror for the precise
// contract) before returning, so the map is ready to route.
type Store struct {
	// M is the recovered, journaling KeyMap. Route/Release/SetDown/…
	// on it persist automatically.
	M *KeyMap

	log        *wal.Log
	every      int64
	pending    int64 // records since last snapshot (atomic)
	appendErrs int64 // journal appends that failed (atomic)
	recoverMs  int64
	closed     atomic.Bool

	snapC chan struct{}
	stopC chan struct{}
	doneC chan struct{}
}

// RecoveryInfo summarizes what OpenStore reconstructed.
type RecoveryInfo struct {
	// SnapshotKeys is the number of keys restored from the snapshot;
	// ReplayedRecords the journal records applied on top.
	SnapshotKeys    int64
	ReplayedRecords int64
	// ReplayMs is the wall time of the whole recovery (snapshot decode
	// + replay).
	ReplayMs int64
}

// OpenStore opens (creating if needed) the WAL in o.Dir, rebuilds the
// KeyMap from its newest snapshot plus journal replay, and returns a
// Store whose map journals every further mutation. Recovery is
// complete when OpenStore returns — callers should not serve traffic
// while it runs (daemons hold /healthz at 503 until then).
func OpenStore(cfg Config, o StoreOptions) (*Store, *RecoveryInfo, error) {
	if o.Dir == "" {
		return nil, nil, fmt.Errorf("keyed: OpenStore needs a directory")
	}
	every := int64(o.SnapshotEvery)
	if every == 0 {
		every = DefaultSnapshotEvery
	}
	l, rec, err := wal.Open(o.Dir, wal.Options{Fsync: o.Fsync, FsyncEvery: o.FsyncEvery})
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	m := New(cfg)
	info := &RecoveryInfo{}
	if rec.Snapshot != nil {
		if err := m.RestoreSnapshot(rec.Snapshot); err != nil {
			l.Close(nil)
			return nil, nil, err
		}
		info.SnapshotKeys = int64(len(m.entries))
	}
	for _, r := range rec.Records {
		op, derr := DecodeOp(r.Data)
		if derr != nil {
			l.Close(nil)
			return nil, nil, fmt.Errorf("keyed: journal record %d: %w", r.Seq, derr)
		}
		if aerr := m.Apply(op); aerr != nil {
			l.Close(nil)
			return nil, nil, fmt.Errorf("keyed: journal record %d: %w", r.Seq, aerr)
		}
		info.ReplayedRecords++
	}
	info.ReplayMs = time.Since(start).Milliseconds()
	l.SetRecoveryMs(info.ReplayMs)
	s := &Store{
		M:         m,
		log:       l,
		every:     every,
		recoverMs: info.ReplayMs,
		snapC:     make(chan struct{}, 1),
		stopC:     make(chan struct{}),
		doneC:     make(chan struct{}),
	}
	m.SetJournal(s.append)
	go s.snapshotLoop()
	return s, info, nil
}

// append is the journal hook: called under the KeyMap's mutex for
// every structural mutation. Append errors cannot unwind the mutation
// (it already happened), so they are counted and surfaced in the
// durability stats instead — the operator's signal that the disk is
// no longer keeping up with the map.
func (s *Store) append(op Op) {
	if _, err := s.log.Append(EncodeOp(op)); err != nil {
		atomic.AddInt64(&s.appendErrs, 1)
		return
	}
	if atomic.AddInt64(&s.pending, 1) >= s.every && s.every > 0 {
		select {
		case s.snapC <- struct{}{}:
		default:
		}
	}
}

// snapshotLoop writes compacting snapshots when enough records have
// accumulated. It runs outside the map's mutex and takes it only for
// the encode+persist critical section (SnapshotTo).
func (s *Store) snapshotLoop() {
	defer close(s.doneC)
	for {
		select {
		case <-s.stopC:
			return
		case <-s.snapC:
			if atomic.LoadInt64(&s.pending) < s.every {
				continue // already compacted by a racing snapshot
			}
			s.Snapshot()
		}
	}
}

// Snapshot writes a compacting snapshot now. The map's mutex is held
// across encode and persist, so the snapshot is exactly consistent
// with the log position it claims to cover.
func (s *Store) Snapshot() error {
	err := s.M.SnapshotTo(s.log.WriteSnapshot)
	if err == nil {
		atomic.StoreInt64(&s.pending, 0)
	}
	return err
}

// Durability returns the monitoring block: the WAL's stats plus the
// store's journal-append error count.
func (s *Store) Durability() DurabilityStats {
	return DurabilityStats{
		Stats:        s.log.Stats(),
		AppendErrors: atomic.LoadInt64(&s.appendErrs),
	}
}

// DurabilityStats is the JSON durability block served by /v1/stats.
type DurabilityStats struct {
	wal.Stats
	// AppendErrors counts journal appends that failed after their
	// mutation was already applied — should stay 0.
	AppendErrors int64 `json:"append_errors"`
}

// Close writes a final compacting snapshot and closes the log — the
// clean-shutdown (SIGTERM drain) path. After Close the map keeps
// working in memory but no longer persists; callers stop traffic
// first. Close is idempotent.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stopC)
	<-s.doneC
	err := s.Snapshot()
	s.M.SetJournal(nil)
	if cerr := s.log.Close(nil); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the store without flushing or snapshotting — the
// crash-simulation hook for restart scenarios: recovery sees only
// what the fsync policy already made durable. Idempotent.
func (s *Store) Crash() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.stopC)
	<-s.doneC
	s.M.SetJournal(nil)
	s.log.Abort()
}
