package keyed

import (
	"fmt"
	"testing"
)

// FuzzKeyMapInvariants drives a KeyMap (and a mirror fed the same
// operations) through byte-encoded route/release/down/up sequences
// and asserts the subsystem's contract: every live key maps to
// healthy, distinct bins with exact per-bin accounting; the
// assignment is deterministic under the same seed; and after every
// rebalance the adaptive bound holds on the healthy bins.
func FuzzKeyMapInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint64(1))
	f.Add([]byte{0, 10, 0, 10, 2, 1, 0, 42, 3, 1, 0, 7, 2, 0, 2, 2, 2, 3}, uint64(9))
	f.Add([]byte{2, 0, 2, 1, 2, 2, 2, 3, 0, 1, 3, 0, 0, 2}, uint64(1234))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		const K = 4
		mk := func() *KeyMap {
			return New(Config{Bins: K, Policy: Adaptive(), Seed: seed,
				Replicas: 2, HotShare: 0.3, HotMinHits: 16, MaxKeys: 64})
		}
		m, mirror := mk(), mk()
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%4, int(ops[i+1])
			switch op {
			case 0: // route
				key := fmt.Sprintf("k%d", arg%32)
				bin, probes, hit, err := m.Route(key)
				bin2, probes2, hit2, err2 := mirror.Route(key)
				if bin != bin2 || probes != probes2 || hit != hit2 || (err == nil) != (err2 == nil) {
					t.Fatalf("op %d: maps diverged on %s: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
						i, key, bin, probes, hit, err, bin2, probes2, hit2, err2)
				}
			case 1: // release
				key := fmt.Sprintf("k%d", arg%32)
				m.Release(key, arg%K)
				mirror.Release(key, arg%K)
			case 2: // down + rebalance
				healthyBefore := m.Stats().Healthy
				moved, shed := m.SetDown(arg % K)
				moved2, shed2 := mirror.SetDown(arg % K)
				if moved != moved2 || shed != shed2 {
					t.Fatalf("op %d: divergent rebalance: %d/%d vs %d/%d", i, moved, shed, moved2, shed2)
				}
				st := m.Stats()
				// The bound is enforced by the rebalance itself, so it is
				// asserted only when this call transitioned the bin (a
				// later rejoin tightens the bound without reshuffling —
				// by design).
				if st.Healthy == healthyBefore-1 && st.Healthy > 0 {
					bound := (st.Replicas+int64(st.Healthy)-1)/int64(st.Healthy) + 1
					if st.MaxKeyLoad > bound {
						t.Fatalf("op %d: post-rebalance max load %d exceeds adaptive bound %d (healthy %d, replicas %d)",
							i, st.MaxKeyLoad, bound, st.Healthy, st.Replicas)
					}
				}
			case 3: // up
				m.SetUp(arg % K)
				mirror.SetUp(arg % K)
			}
		}
		checkInvariants(t, m)
	})
}

// FuzzKeyMapRecovery is the recovery-equivalence property test: a live
// KeyMap is driven through arbitrary route/release/down/up sequences
// while its journal is captured byte-for-byte (with a snapshot taken
// partway, like the Store's compaction), then a fresh map is rebuilt
// from snapshot + journal replay and must Mirror-equal the live one —
// the exact contract OpenStore relies on after a crash.
func FuzzKeyMapRecovery(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint64(1))
	f.Add([]byte{0, 10, 0, 10, 2, 1, 0, 42, 3, 1, 0, 7, 2, 0, 2, 2, 2, 3}, uint64(9))
	f.Add([]byte{2, 0, 2, 1, 2, 2, 2, 3, 0, 1, 3, 0, 0, 2}, uint64(1234))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		const K = 4
		mk := func() *KeyMap {
			return New(Config{Bins: K, Policy: Adaptive(), Seed: seed,
				Replicas: 2, HotShare: 0.3, HotMinHits: 16, MaxKeys: 64})
		}
		m := mk()
		var journal [][]byte
		var snapshot []byte
		m.SetJournal(func(op Op) {
			journal = append(journal, EncodeOp(op))
		})
		snapAt := len(ops) / 2 // mid-sequence compaction point
		for i := 0; i+1 < len(ops); i += 2 {
			if i >= snapAt && snapshot == nil {
				if err := m.SnapshotTo(func(b []byte) error {
					snapshot = append([]byte(nil), b...)
					return nil
				}); err != nil {
					t.Fatalf("snapshot at op %d: %v", i, err)
				}
				journal = journal[:0] // the snapshot covers everything so far
			}
			op, arg := ops[i]%4, int(ops[i+1])
			switch op {
			case 0:
				m.Route(fmt.Sprintf("k%d", arg%32))
			case 1:
				m.Release(fmt.Sprintf("k%d", arg%32), arg%K)
			case 2:
				m.SetDown(arg % K)
			case 3:
				m.SetUp(arg % K)
			}
		}

		rebuilt := mk()
		if snapshot != nil {
			if err := rebuilt.RestoreSnapshot(snapshot); err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
		}
		for i, raw := range journal {
			op, err := DecodeOp(raw)
			if err != nil {
				t.Fatalf("journal record %d: %v", i, err)
			}
			if err := rebuilt.Apply(op); err != nil {
				t.Fatalf("journal record %d (%+v): %v", i, op, err)
			}
		}
		if a, b := m.Mirror(), rebuilt.Mirror(); !a.Equal(b) {
			t.Fatalf("recovery diverged from live map:\nlive:    %+v\nrebuilt: %+v", a, b)
		}
		checkInvariants(t, rebuilt)
	})
}
