package keyed

import (
	"fmt"
	"strconv"
	"strings"
)

// Policy is a keyed placement rule: the paper's protocol acceptance
// tests transplanted to key→bin assignment, where a bin's "load" is
// the number of key replicas resident on it and a protocol "retry"
// is one more draw from the key's deterministic probe sequence. The
// acceptance arithmetic is the protocols' exact integer test
// K·(load−1) < i — no floats, no thresholds to tune.
//
//	policy            assignment behavior
//	────────────────  ──────────────────────────────────────────────
//	hash              first healthy probe wins (pure hash affinity —
//	                  consistent hashing with zero balance guarantee)
//	greedy[d]         d probes, least-loaded wins (two-choices at d=2)
//	adaptive          probe until K·(load−1) < i, i = live replicas
//	threshold[m]      probe until K·(load−1) < m, m a declared horizon
//	boundedretry[R]   adaptive bound, at most R probes, least-loaded
//	                  fallback
//
// Probe caps apply per pick (one assignment decision), not per
// request: repeat traffic for an assigned key costs zero probes, and
// a rebalance re-probes each affected key as one fresh pick.
type Policy interface {
	// Name identifies the policy, mirroring protocol naming ("hash",
	// "greedy[2]", "adaptive", ...).
	Name() string
	// Accept reports whether a healthy bin currently holding load key
	// replicas may take one more, when the map will hold i live
	// replicas (including the one being placed) across k healthy bins.
	Accept(k int, load, i int64) bool
	// MaxProbes caps the probe loop of one pick; past it the
	// least-loaded probed bin wins (the BoundedRetry construction).
	MaxProbes(k int) int
	// Bound returns the largest per-bin replica count the policy
	// defends at i live replicas over k healthy bins — the
	// rebalancer's shedding threshold. ok is false for policies with
	// no load guarantee (hash, greedy) and for boundedretry (whose
	// fallback may legitimately exceed the adaptive bound).
	Bound(k int, i int64) (bound int64, ok bool)
}

// probeCap mirrors the cluster routing tier: 4 probes per healthy bin
// before the greedy fallback takes over, at least 8.
func probeCap(k int) int {
	c := 4 * k
	if c < 8 {
		c = 8
	}
	return c
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// hashAffinity is the baseline every affinity scheme starts from: the
// key's first healthy probe, unconditionally.
type hashAffinity struct{}

func (hashAffinity) Name() string                  { return "hash" }
func (hashAffinity) Accept(int, int64, int64) bool { return true }
func (hashAffinity) MaxProbes(int) int             { return 1 }
func (hashAffinity) Bound(int, int64) (int64, bool) {
	return 0, false
}

// greedy is d-choice assignment: never accept early, so the pick
// falls back to the least loaded of d probes.
type greedy struct{ d int }

func (g greedy) Name() string                 { return fmt.Sprintf("greedy[%d]", g.d) }
func (greedy) Accept(int, int64, int64) bool  { return false }
func (g greedy) MaxProbes(int) int            { return g.d }
func (greedy) Bound(int, int64) (int64, bool) { return 0, false }

// adaptive is the paper's rule on live replica counts: accept a bin
// whose load is < i/K + 1 — exactly K·(load−1) < i in integers.
type adaptive struct{}

func (adaptive) Name() string { return "adaptive" }
func (adaptive) Accept(k int, load, i int64) bool {
	return int64(k)*(load-1) < i
}
func (adaptive) MaxProbes(k int) int { return probeCap(k) }
func (adaptive) Bound(k int, i int64) (int64, bool) {
	if k <= 0 {
		return 0, false
	}
	return ceilDiv(i, int64(k)) + 1, true
}

// threshold is the Czumaj–Stemann rule with a declared horizon m.
type threshold struct{ m int64 }

func (t threshold) Name() string { return fmt.Sprintf("threshold[%d]", t.m) }
func (t threshold) Accept(k int, load, _ int64) bool {
	return int64(k)*(load-1) < t.m
}
func (t threshold) MaxProbes(k int) int { return probeCap(k) }
func (t threshold) Bound(k int, _ int64) (int64, bool) {
	if k <= 0 {
		return 0, false
	}
	return ceilDiv(t.m, int64(k)) + 1, true
}

// boundedRetry caps the adaptive loop at R probes.
type boundedRetry struct{ r int }

func (b boundedRetry) Name() string { return fmt.Sprintf("boundedretry[%d]", b.r) }
func (boundedRetry) Accept(k int, load, i int64) bool {
	return int64(k)*(load-1) < i
}
func (b boundedRetry) MaxProbes(int) int            { return b.r }
func (boundedRetry) Bound(int, int64) (int64, bool) { return 0, false }

// Adaptive returns the adaptive policy — the default for every keyed
// tier in the system.
func Adaptive() Policy { return adaptive{} }

// Hash returns the hash-affinity baseline.
func Hash() Policy { return hashAffinity{} }

// Greedy returns the d-choice policy.
func Greedy(d int) Policy {
	if d < 1 {
		panic("keyed: Greedy needs d >= 1")
	}
	return greedy{d: d}
}

// Policies lists the names PolicyByName accepts, sorted.
func Policies() []string {
	return []string{"adaptive", "boundedretry", "greedy", "hash", "threshold"}
}

// PolicyByName resolves a keyed policy from the shared protocol
// vocabulary: hash (alias affinity), greedy (uses d; a trailing digit
// like "greedy2" overrides it), adaptive, threshold (requires
// horizon > 0), boundedretry (uses retries).
func PolicyByName(name string, d, retries int, horizon int64) (Policy, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if rest, ok := strings.CutPrefix(name, "greedy"); ok && rest != "" {
		if v, err := strconv.Atoi(rest); err == nil {
			name, d = "greedy", v
		}
	}
	switch name {
	case "hash", "affinity":
		return hashAffinity{}, nil
	case "greedy":
		if d < 1 {
			return nil, fmt.Errorf("keyed: greedy policy needs d >= 1, got %d", d)
		}
		return greedy{d: d}, nil
	case "adaptive":
		return adaptive{}, nil
	case "threshold":
		if horizon <= 0 {
			return nil, fmt.Errorf("keyed: threshold policy needs a positive horizon (declared total keys)")
		}
		return threshold{m: horizon}, nil
	case "boundedretry", "retry":
		if retries < 1 {
			return nil, fmt.Errorf("keyed: boundedretry policy needs retries >= 1, got %d", retries)
		}
		return boundedRetry{r: retries}, nil
	default:
		return nil, fmt.Errorf("keyed: unknown policy %q (want one of %s)",
			name, strings.Join(Policies(), ", "))
	}
}

// AnonAnalogue maps a keyed inner policy name to the anonymous
// routing policy that unkeyed traffic should use alongside it: hash
// has none (its analogue is single-choice), a greedyN suffix unfolds
// into d, every other name maps to itself. Shared by bbproxy and
// bbload so the two binaries cannot diverge.
func AnonAnalogue(inner string, d int) (name string, outD int) {
	name = strings.ToLower(strings.TrimSpace(inner))
	if rest, ok := strings.CutPrefix(name, "greedy"); ok && rest != "" {
		if v, err := strconv.Atoi(rest); err == nil {
			name, d = "greedy", v
		}
	}
	if name == "hash" || name == "affinity" {
		name = "single"
	}
	return name, d
}

// SplitName recognizes the keyed policy spellings used by the CLI
// tools — "keyed[adaptive]", "keyed-greedy2", "keyed" (bare: the
// default adaptive) — and returns the inner policy name. ok is false
// for plain (anonymous-routing) policy names.
func SplitName(name string) (inner string, ok bool) {
	name = strings.TrimSpace(name)
	lower := strings.ToLower(name)
	switch {
	case strings.HasPrefix(lower, "keyed[") && strings.HasSuffix(name, "]"):
		return name[len("keyed[") : len(name)-1], true
	case strings.HasPrefix(lower, "keyed-"):
		return name[len("keyed-"):], true
	case lower == "keyed":
		return "adaptive", true
	default:
		return "", false
	}
}
