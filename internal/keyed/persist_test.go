package keyed

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/wal"
)

func TestEncodeDecodeOpRoundtrip(t *testing.T) {
	ops := []Op{
		{Type: OpAssign, Key: "user:42", To: 3},
		{Type: OpAssign, Key: "", To: 0},
		{Type: OpAttach, Key: "hot", To: 7},
		{Type: OpMove, Key: "k", From: 1, To: 2},
		{Type: OpShed, Key: "shed-me", From: 9, To: 0},
		{Type: OpDrop, Key: "gone", From: 4},
		{Type: OpForget, Key: "bye"},
		{Type: OpDown, Bin: 5},
		{Type: OpUp, Bin: 0},
	}
	for _, want := range ops {
		got, err := DecodeOp(EncodeOp(want))
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("roundtrip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeOpRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{0},                              // unknown type 0
		{99},                             // unknown type
		{byte(OpAssign)},                 // missing bin
		{byte(OpAssign), 3},              // missing key length
		{byte(OpAssign), 3, 5, 'a'},      // key shorter than declared
		{byte(OpAssign), 3, 1, 'a', 'b'}, // trailing bytes
		{byte(OpDown), 1, 0},             // trailing bytes on binary op
		{byte(OpMove), 1},                // missing To
		{byte(OpForget), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // overflowing uvarint
	}
	for _, b := range bad {
		if op, err := DecodeOp(b); err == nil {
			t.Fatalf("DecodeOp(%v) accepted as %+v", b, op)
		}
	}
}

// journalPair builds a KeyMap whose ops feed a replica via Apply, the
// core recovery-equivalence harness: every mutation to live is
// replayed structurally into rep, and their Mirrors must stay equal.
func journalPair(seed uint64) (live, rep *KeyMap, replayErr *error) {
	cfg := Config{Bins: 4, Policy: Adaptive(), Seed: seed,
		Replicas: 2, HotShare: 0.3, HotMinHits: 16, MaxKeys: 64}
	live, rep = New(cfg), New(cfg)
	var err error
	replayErr = &err
	live.SetJournal(func(op Op) {
		// Decode what would hit the disk, then apply — the full path.
		decoded, derr := DecodeOp(EncodeOp(op))
		if derr != nil {
			err = derr
			return
		}
		if aerr := rep.Apply(decoded); aerr != nil && err == nil {
			err = aerr
		}
	})
	return live, rep, replayErr
}

func TestJournalReplayTracksLive(t *testing.T) {
	live, rep, replayErr := journalPair(11)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i%37)
		if _, _, _, err := live.Route(key); err != nil {
			t.Fatalf("route %s: %v", key, err)
		}
		// Down one bin at a time and restore it before the next, so the
		// map always has healthy bins while still journaling OpDown,
		// OpUp, and the failover moves they trigger.
		if i%20 == 10 {
			live.SetDown(i / 20 % 4)
		}
		if i%20 == 19 {
			live.SetUp(i / 20 % 4)
		}
	}
	if *replayErr != nil {
		t.Fatalf("replay error: %v", *replayErr)
	}
	if a, b := live.Mirror(), rep.Mirror(); !a.Equal(b) {
		t.Fatalf("mirror diverged after journal replay:\nlive: %+v\nrep:  %+v", a, b)
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	cfg := Config{Bins: 8, Policy: Adaptive(), Seed: 5,
		Replicas: 3, HotShare: 0.1, HotMinHits: 4, MaxKeys: 128}
	m := New(cfg)
	for i := 0; i < 300; i++ {
		m.Route(fmt.Sprintf("k%d", i%90))
	}
	m.SetDown(2)
	for i := 0; i < 100; i++ {
		m.Route(fmt.Sprintf("k%d", i%90))
	}

	var snap []byte
	if err := m.SnapshotTo(func(b []byte) error { snap = b; return nil }); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg)
	if err := m2.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if a, b := m.Mirror(), m2.Mirror(); !a.Equal(b) {
		t.Fatalf("snapshot roundtrip diverged:\n%+v\nvs\n%+v", a, b)
	}
	checkInvariants(t, m2)

	// Two maps restored from the same snapshot share both durable and
	// ephemeral state, so they must route every known key identically.
	m3 := New(cfg)
	if err := m3.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot (second copy): %v", err)
	}
	for i := 0; i < 90; i++ {
		key := fmt.Sprintf("k%d", i)
		b2, _, _, e2 := m2.Route(key)
		b3, _, _, e3 := m3.Route(key)
		if b2 != b3 || (e2 == nil) != (e3 == nil) {
			t.Fatalf("restored twins route %s to %d (%v) vs %d (%v)", key, b2, e2, b3, e3)
		}
	}
}

func TestRestoreSnapshotRejects(t *testing.T) {
	cfg := Config{Bins: 4, Policy: Adaptive(), Seed: 1}
	m := New(cfg)
	m.Route("a")
	var snap []byte
	m.SnapshotTo(func(b []byte) error { snap = b; return nil })

	// Non-empty target.
	full := New(cfg)
	full.Route("x")
	if err := full.RestoreSnapshot(snap); err == nil {
		t.Fatal("RestoreSnapshot on a non-empty map accepted")
	}
	// Identity mismatches.
	for _, other := range []Config{
		{Bins: 5, Policy: Adaptive(), Seed: 1},
		{Bins: 4, Policy: Adaptive(), Seed: 2},
		{Bins: 4, Policy: Hash(), Seed: 1},
	} {
		if err := New(other).RestoreSnapshot(snap); err == nil {
			t.Fatalf("snapshot accepted under mismatched config %+v", other)
		}
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(snap); cut++ {
		New(cfg).RestoreSnapshot(snap[:cut])
	}
	// Arbitrary corruption must error or restore something sane, never panic.
	for i := 0; i < len(snap); i++ {
		mutated := append([]byte(nil), snap...)
		mutated[i] ^= 0x55
		New(cfg).RestoreSnapshot(mutated)
	}
}

func TestStoreRecoversExactState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Bins: 4, Policy: Adaptive(), Seed: 9,
		Replicas: 2, HotShare: 0.3, HotMinHits: 8, MaxKeys: 64}
	open := func() (*Store, *RecoveryInfo) {
		s, info, err := OpenStore(cfg, StoreOptions{Dir: dir, Fsync: wal.SyncAlways})
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		return s, info
	}

	s, info := open()
	if info.SnapshotKeys != 0 || info.ReplayedRecords != 0 {
		t.Fatalf("fresh store recovered %+v", info)
	}
	for i := 0; i < 150; i++ {
		s.M.Route(fmt.Sprintf("k%d", i%40))
		if i == 70 {
			s.M.SetDown(1)
		}
	}
	want := s.M.Mirror()

	// Crash (no final snapshot): SyncAlways means every journaled op is
	// durable, so recovery must be mirror-exact.
	s.Crash()
	s2, info2 := open()
	if info2.ReplayedRecords == 0 {
		t.Fatal("crash recovery replayed nothing")
	}
	if got := s2.M.Mirror(); !got.Equal(want) {
		t.Fatalf("post-crash mirror diverged:\n%+v\nvs\n%+v", got, want)
	}

	// More traffic, then a clean Close: final snapshot, empty journal.
	for i := 0; i < 50; i++ {
		s2.M.Route(fmt.Sprintf("x%d", i))
	}
	want2 := s2.M.Mirror()
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, info3 := open()
	defer s3.Close()
	if info3.ReplayedRecords != 0 {
		t.Fatalf("clean shutdown still replayed %d records", info3.ReplayedRecords)
	}
	if info3.SnapshotKeys == 0 {
		t.Fatal("clean shutdown lost the snapshot")
	}
	if got := s3.M.Mirror(); !got.Equal(want2) {
		t.Fatalf("post-Close mirror diverged:\n%+v\nvs\n%+v", got, want2)
	}
}

func TestStoreAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Bins: 4, Policy: Adaptive(), Seed: 3, MaxKeys: 4096}
	s, _, err := OpenStore(cfg, StoreOptions{Dir: dir, SnapshotEvery: 32, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		s.M.Route(fmt.Sprintf("k%d", i))
	}
	deadline := 200 // ~2s of 10ms polls for the background snapshot loop
	for ; deadline > 0; deadline-- {
		if s.Durability().Snapshots > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ds := s.Durability()
	if ds.Snapshots == 0 {
		t.Fatalf("no auto-snapshot after 400 records with SnapshotEvery=32: %+v", ds)
	}
	if ds.AppendErrors != 0 {
		t.Fatalf("append errors: %d", ds.AppendErrors)
	}
	s.Close()
}

func TestStoreDurabilityStats(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Bins: 2, Policy: Hash(), Seed: 1}
	s, _, err := OpenStore(cfg, StoreOptions{Dir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.M.Route("a")
	s.M.Route("b")
	ds := s.Durability()
	if ds.Records != 2 || ds.LogBytes == 0 || ds.Fsync != wal.SyncAlways {
		t.Fatalf("durability stats: %+v", ds)
	}
	if ds.LastFsyncAgeMs < 0 {
		t.Fatal("no fsync recorded under SyncAlways")
	}
}
