package keyed

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// checkInvariants asserts the structural invariants the fuzz target
// and the gate tests rely on: per-bin accounting matches a recount
// from the entries, every replica of every live key sits on a healthy
// bin (while any bin is healthy), replica sets hold distinct bins,
// and the LRU list tracks the table exactly.
func checkInvariants(t *testing.T, m *KeyMap) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	recount := make([]int64, m.cfg.Bins)
	var reps int64
	var hot int64
	var balls int64
	for key, e := range m.entries {
		balls += e.refs
		if len(e.replicas) == 0 {
			t.Fatalf("key %q has no replicas", key)
		}
		if len(e.replicas) > 1 {
			hot++
		}
		seen := make(map[int]bool)
		for _, rp := range e.replicas {
			if rp.bin < 0 || rp.bin >= m.cfg.Bins {
				t.Fatalf("key %q replica bin %d out of range", key, rp.bin)
			}
			if seen[rp.bin] {
				t.Fatalf("key %q has duplicate replica bin %d", key, rp.bin)
			}
			seen[rp.bin] = true
			if m.healthy > 0 && !m.up[rp.bin] {
				t.Fatalf("key %q maps to down bin %d", key, rp.bin)
			}
			recount[rp.bin]++
			reps++
		}
	}
	for b := range recount {
		if recount[b] != m.binLoad[b] {
			t.Fatalf("bin %d: binLoad %d, recount %d", b, m.binLoad[b], recount[b])
		}
	}
	if reps != m.reps {
		t.Fatalf("total replicas %d, recount %d", m.reps, reps)
	}
	if hot != m.hotCount {
		t.Fatalf("hotCount %d, recount %d", m.hotCount, hot)
	}
	if balls != m.liveBalls {
		t.Fatalf("liveBalls %d, recount %d", m.liveBalls, balls)
	}
	if m.lru.Len() != len(m.entries) {
		t.Fatalf("lru length %d, entries %d", m.lru.Len(), len(m.entries))
	}
}

func maxBinLoad(m *KeyMap) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max int64
	for b, l := range m.binLoad {
		if m.up[b] && l > max {
			max = l
		}
	}
	return max
}

func TestRouteDeterministic(t *testing.T) {
	mk := func() *KeyMap {
		return New(Config{Bins: 8, Policy: Adaptive(), Seed: 42})
	}
	a, b := mk(), mk()
	r := rand.New(rand.NewSource(3))
	for op := 0; op < 5000; op++ {
		key := fmt.Sprintf("k%d", r.Intn(400))
		ba, _, ha, ea := a.Route(key)
		bb, _, hb, eb := b.Route(key)
		if ba != bb || ha != hb || (ea == nil) != (eb == nil) {
			t.Fatalf("op %d key %s: diverged (%d,%v,%v) vs (%d,%v,%v)", op, key, ba, ha, ea, bb, hb, eb)
		}
		if r.Intn(3) == 0 {
			a.Release(key, ba)
			b.Release(key, bb)
		}
	}
	checkInvariants(t, a)
	checkInvariants(t, b)
}

func TestAffinityZeroProbes(t *testing.T) {
	m := New(Config{Bins: 8, Policy: Adaptive(), Seed: 1, HotShare: 1})
	first, probes, hit, err := m.Route("user-7")
	if err != nil || hit || probes == 0 {
		t.Fatalf("first contact: bin %d probes %d hit %v err %v", first, probes, hit, err)
	}
	for i := 0; i < 100; i++ {
		bin, probes, hit, err := m.Route("user-7")
		if err != nil || !hit || probes != 0 || bin != first {
			t.Fatalf("repeat %d: bin %d (want %d) probes %d hit %v err %v", i, bin, first, probes, hit, err)
		}
	}
	st := m.Stats()
	if st.AffinityHits != 100 || st.AffinityMisses != 1 {
		t.Fatalf("hits %d misses %d, want 100/1", st.AffinityHits, st.AffinityMisses)
	}
	if got := st.AffinityHitRate; got < 0.99*(100.0/101) || got > 1 {
		t.Fatalf("hit rate %v", got)
	}
}

// TestAdaptiveEnvelopeVsHash is the PR's deterministic balance gate:
// at fixed seeds with K=8 bins under Zipf key traffic, the
// keyed-adaptive assignment keeps the max per-bin key count within
// ceil(i/K)+2 at every prefix (i = live keys), while pure hash
// affinity blows past that envelope at the same seeds.
func TestAdaptiveEnvelopeVsHash(t *testing.T) {
	const K = 8
	adaptiveMap := New(Config{Bins: K, Policy: Adaptive(), Seed: 99, HotShare: 1})
	hashMap := New(Config{Bins: K, Policy: Hash(), Seed: 99, HotShare: 1})
	zipf := rand.NewZipf(rand.New(rand.NewSource(7)), 1.3, 1, 20000)
	hashExceeded := false
	var keys int64
	for op := 0; op < 12000; op++ {
		key := fmt.Sprintf("k%d", zipf.Uint64())
		_, _, hit, err := adaptiveMap.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := hashMap.Route(key); err != nil {
			t.Fatal(err)
		}
		if !hit {
			keys++
		}
		bound := (keys+K-1)/K + 2
		if got := maxBinLoad(adaptiveMap); got > bound {
			t.Fatalf("op %d: adaptive max key load %d exceeds ceil(%d/%d)+2 = %d", op, got, keys, K, bound)
		}
		if maxBinLoad(hashMap) > bound {
			hashExceeded = true
		}
	}
	if keys < 1000 {
		t.Fatalf("only %d distinct keys drawn; gate needs more", keys)
	}
	if !hashExceeded {
		t.Fatalf("hash affinity stayed within ceil(i/%d)+2 over %d keys — gate not discriminating", K, keys)
	}
	checkInvariants(t, adaptiveMap)
	checkInvariants(t, hashMap)
}

// TestSetDownDisruptionBound is the PR's deterministic disruption
// gate: killing a bin moves only the keys resident on it (moved ≤
// resident, shed accounted separately), every key still maps to
// healthy bins, and the post-rebalance max load respects the policy
// bound.
func TestSetDownDisruptionBound(t *testing.T) {
	const K = 8
	m := New(Config{Bins: K, Policy: Adaptive(), Seed: 5, HotShare: 1})
	for i := 0; i < 2000; i++ {
		if _, _, _, err := m.Route(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	resident := m.Stats().PerBinKeys[3]
	total := m.Stats().Keys
	moved, shed := m.SetDown(3)
	if moved > resident {
		t.Fatalf("moved %d keys, only %d were resident on the dead bin", moved, resident)
	}
	if moved+shed >= total/2 {
		t.Fatalf("disruption %d+%d is not minimal against %d total keys", moved, shed, total)
	}
	checkInvariants(t, m)
	st := m.Stats()
	if st.PerBinKeys[3] != 0 {
		t.Fatalf("dead bin still holds %d keys", st.PerBinKeys[3])
	}
	bound := (st.Replicas+K-2)/(K-1) + 1
	if st.MaxKeyLoad > bound {
		t.Fatalf("post-rebalance max key load %d exceeds policy bound %d", st.MaxKeyLoad, bound)
	}
	if st.MovedKeys != moved || st.ShedKeys != shed {
		t.Fatalf("stats moved/shed %d/%d, returns %d/%d", st.MovedKeys, st.ShedKeys, moved, shed)
	}
	// Keys away from the dead bin kept their assignment: spot-check
	// that affinity still answers (hit, healthy bin).
	for i := 0; i < 2000; i += 37 {
		bin, _, hit, err := m.Route(fmt.Sprintf("k%d", i))
		if err != nil || !hit {
			t.Fatalf("key k%d after rebalance: hit %v err %v", i, hit, err)
		}
		if bin == 3 {
			t.Fatalf("key k%d routed to the dead bin", i)
		}
	}
}

func TestSetUpNoReassignment(t *testing.T) {
	m := New(Config{Bins: 4, Policy: Adaptive(), Seed: 11, HotShare: 1})
	for i := 0; i < 200; i++ {
		m.Route(fmt.Sprintf("k%d", i))
	}
	m.SetDown(1)
	movedBefore := m.Stats().MovedKeys
	m.SetUp(1)
	if got := m.Stats().MovedKeys; got != movedBefore {
		t.Fatalf("SetUp moved keys: %d -> %d", movedBefore, got)
	}
	if m.Stats().PerBinKeys[1] != 0 {
		t.Fatalf("rejoined bin gained keys without traffic")
	}
	// New keys can land on the rejoined (emptiest) bin again.
	landed := false
	for i := 200; i < 600; i++ {
		if bin, _, _, _ := m.Route(fmt.Sprintf("k%d", i)); bin == 1 {
			landed = true
			break
		}
	}
	if !landed {
		t.Fatalf("no new key landed on the rejoined bin")
	}
	checkInvariants(t, m)
}

func TestMoveOffFailover(t *testing.T) {
	m := New(Config{Bins: 6, Policy: Adaptive(), Seed: 2, HotShare: 1})
	bin, _, _, err := m.Route("payments")
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.MoveOff("payments", bin, []int{bin})
	if err != nil || next == bin {
		t.Fatalf("MoveOff: %d -> %d, %v", bin, next, err)
	}
	got, _, hit, _ := m.Route("payments")
	if !hit || got != next {
		t.Fatalf("after MoveOff, Route gave %d (hit %v), want %d", got, hit, next)
	}
	if m.Stats().MovedKeys != 1 {
		t.Fatalf("moved %d, want 1", m.Stats().MovedKeys)
	}
	// Unknown keys are assigned fresh, avoiding the failed bins.
	fresh, err := m.MoveOff("unseen", 0, []int{0, 1, 2})
	if err != nil || fresh == 0 || fresh == 1 || fresh == 2 {
		t.Fatalf("fresh MoveOff gave %d, %v", fresh, err)
	}
	checkInvariants(t, m)
}

func TestHotKeyPromotion(t *testing.T) {
	m := New(Config{Bins: 8, Policy: Adaptive(), Seed: 17, Replicas: 2, HotShare: 0.2, HotMinHits: 64})
	for i := 0; i < 60; i++ {
		m.Route(fmt.Sprintf("cold%d", i))
	}
	bins := make(map[int]int64)
	for i := 0; i < 400; i++ {
		bin, _, _, err := m.Route("celebrity")
		if err != nil {
			t.Fatal(err)
		}
		bins[bin]++
	}
	st := m.Stats()
	if st.HotKeys != 1 || st.Promoted != 1 {
		t.Fatalf("hot keys %d promoted %d, want 1/1", st.HotKeys, st.Promoted)
	}
	if len(bins) != 2 {
		t.Fatalf("hot key hit %d bins, want its 2 replicas (%v)", len(bins), bins)
	}
	for bin, n := range bins {
		if n < 100 {
			t.Fatalf("replica %d took only %d of 400 requests — two-choices not balancing (%v)", bin, n, bins)
		}
	}
	// Cold keys stay single-replica.
	if st.Replicas != st.Keys+1 {
		t.Fatalf("replicas %d keys %d: expected exactly one extra replica", st.Replicas, st.Keys)
	}
	checkInvariants(t, m)
}

func TestReleaseAndIdleEviction(t *testing.T) {
	m := New(Config{Bins: 4, Policy: Adaptive(), Seed: 3, MaxKeys: 4, HotShare: 1})
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		bin, _, _, _ := m.Route(key)
		m.Release(key, bin)
	}
	// Key k4 pushes the table over MaxKeys: the least recently routed
	// idle key (k0) is evicted.
	m.Route("k4")
	st := m.Stats()
	if st.Keys != 4 || st.IdleEvicted != 1 {
		t.Fatalf("keys %d idleEvicted %d, want 4/1", st.Keys, st.IdleEvicted)
	}
	if _, ok := m.entries["k0"]; ok {
		t.Fatalf("k0 survived idle eviction")
	}
	// Busy keys (live balls) are never evicted: k1..k4 hold a ball
	// each; adding more keys exceeds the cap rather than evicting them.
	for i := 1; i <= 4; i++ {
		m.Route(fmt.Sprintf("k%d", i))
	}
	m.Route("k5")
	if _, ok := m.entries["k1"]; !ok {
		t.Fatalf("busy key k1 was evicted")
	}
	if m.Stats().Keys != 5 {
		t.Fatalf("keys %d, want 5 (cap exceeded rather than evicting busy keys)", m.Stats().Keys)
	}
	checkInvariants(t, m)
}

func TestLiveBallBooks(t *testing.T) {
	m := New(Config{Bins: 4, Policy: Adaptive(), Seed: 9, HotShare: 1})
	bins := make([]int, 0, 10)
	for i := 0; i < 10; i++ {
		bin, _, _, _ := m.Route("sess")
		bins = append(bins, bin)
	}
	if got := m.Stats().LiveBalls; got != 10 {
		t.Fatalf("live balls %d, want 10", got)
	}
	for _, bin := range bins {
		m.Release("sess", bin)
	}
	if got := m.Stats().LiveBalls; got != 0 {
		t.Fatalf("live balls %d after releases, want 0", got)
	}
	m.Release("sess", bins[0]) // over-release: clamped, not negative
	if got := m.Stats().LiveBalls; got != 0 {
		t.Fatalf("live balls %d after over-release", got)
	}
}

func TestThresholdAndBoundedRetryPolicies(t *testing.T) {
	th, err := PolicyByName("threshold", 2, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Bins: 4, Policy: th, Seed: 1, HotShare: 1})
	for i := 0; i < 100; i++ {
		m.Route(fmt.Sprintf("k%d", i))
	}
	if got, bound := maxBinLoad(m), int64(100/4+1+1); got > bound {
		t.Fatalf("threshold max load %d > %d", got, bound)
	}
	br, err := PolicyByName("boundedretry", 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br.MaxProbes(8) != 2 {
		t.Fatalf("boundedretry cap %d, want 2", br.MaxProbes(8))
	}
	checkInvariants(t, m)
}

func TestPolicyNames(t *testing.T) {
	cases := []struct{ in, want string }{
		{"hash", "hash"},
		{"affinity", "hash"},
		{"greedy", "greedy[2]"},
		{"greedy3", "greedy[3]"},
		{"adaptive", "adaptive"},
		{"boundedretry", "boundedretry[3]"},
	}
	for _, c := range cases {
		p, err := PolicyByName(c.in, 2, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if p.Name() != c.want {
			t.Fatalf("%s -> %s, want %s", c.in, p.Name(), c.want)
		}
	}
	if _, err := PolicyByName("bogus", 2, 3, 0); err == nil {
		t.Fatalf("bogus policy accepted")
	}
	if _, err := PolicyByName("threshold", 2, 3, 0); err == nil {
		t.Fatalf("threshold without horizon accepted")
	}
	for in, want := range map[string]string{
		"keyed[adaptive]": "adaptive",
		"keyed-greedy2":   "greedy2",
		"keyed":           "adaptive",
		"KEYED[hash]":     "hash",
	} {
		inner, ok := SplitName(in)
		if !ok || inner != want {
			t.Fatalf("SplitName(%q) = %q,%v want %q", in, inner, ok, want)
		}
	}
	if _, ok := SplitName("adaptive"); ok {
		t.Fatalf("SplitName claimed plain policy is keyed")
	}
}

// TestConcurrentOps exercises the mutex under -race: routes, releases
// and membership flaps from many goroutines.
func TestConcurrentOps(t *testing.T) {
	m := New(Config{Bins: 8, Policy: Adaptive(), Seed: 21})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", r.Intn(200))
				bin, _, _, err := m.Route(key)
				if err == nil && r.Intn(2) == 0 {
					m.Release(key, bin)
				}
				if i%500 == 0 {
					m.Stats()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.SetDown(i % 4)
			m.SetUp(i % 4)
		}
	}()
	wg.Wait()
	for b := 0; b < 4; b++ {
		m.SetUp(b)
	}
	checkInvariants(t, m)
}
