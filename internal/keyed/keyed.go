// Package keyed is the keyed placement tier: a bounded-load,
// consistent key→bin assignment built from the paper's exact integer
// acceptance rule. Where the anonymous tiers (internal/serve,
// internal/cluster) route each ball independently, a KeyMap gives
// every key a home bin that repeat traffic hits with zero probes —
// the locality contract a keyed workload (users, sessions, cache
// keys) needs — while still defending the protocols' per-bin load
// bound, which naive hash affinity cannot (Θ(log n/log log n) max
// load, zero balance guarantee).
//
// # Construction
//
// Each key owns a deterministic pseudo-random probe sequence: a
// per-key RNG stream seeded from (map seed, key hash), drawing bins
// uniformly with replacement — the same construction as the
// protocols' bin draws, so the whole assignment is a pure function of
// (seed, operation sequence). A key is placed at the first probed bin
// passing the active Policy's acceptance rule (the protocols' exact
// integer test K·(load−1) < i over key-replica counts), with the
// probe cap + least-loaded-probed fallback of the BoundedRetry
// construction; the cap applies per pick, not per request.
//
// Three mechanisms ride on top:
//
//   - Sticky affinity: an assignment table. Repeat traffic for an
//     assigned key returns its bin with zero probes (one map lookup);
//     the affinity hit rate is exported. Assignments persist while a
//     key is idle (its balls all departed) so a returning key keeps
//     its locality; idle keys are evicted least-recently-routed only
//     when the table exceeds MaxKeys.
//
//   - Hot-key splitting: per-key traffic accounting. A key whose
//     request share exceeds HotShare (after HotMinHits total requests)
//     is promoted to a set of Replicas bins — the next accepting bins
//     of its own probe sequence — and each subsequent request picks
//     the replica with the fewest outstanding balls (the d-choices
//     rule among replicas, two-choices at the default d=2). A single
//     flash-crowd key therefore spreads over d bins instead of
//     melting one.
//
//   - Minimal-disruption rebalancing: on SetDown(bin) only the keys
//     resident on that bin re-probe (continuing their own probe
//     sequences, so the move is deterministic), and bins left over
//     the policy bound shed their most recently assigned keys until
//     they fit — the paper's no-reallocation ethos: bound the moves,
//     never reshuffle globally. Moved and shed counts are exported so
//     the disruption bound (moved ≤ keys resident on the dead bin,
//     shed accounted separately) is checkable from the outside.
//     SetUp performs no reassignment at all: a rejoining bin simply
//     becomes the emptiest target for future picks.
//
// A KeyMap is safe for concurrent use (one mutex; every operation is
// O(probes) with small constants). It does not itself talk to the
// network — internal/serve maps keys to allocator shards with it, and
// internal/cluster maps keys to backends.
package keyed

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/rng"
)

// ErrNoBins is returned when no healthy bin is available to assign to.
var ErrNoBins = errors.New("keyed: no healthy bins")

// Defaults for Config's zero values.
const (
	DefaultReplicas   = 2
	DefaultHotShare   = 0.10
	DefaultHotMinHits = 256
	DefaultMaxKeys    = 1 << 20
)

// Config describes a KeyMap.
type Config struct {
	// Bins is the number of assignable bins (allocator shards, cluster
	// backends). Required.
	Bins int
	// Policy is the acceptance rule (default Adaptive).
	Policy Policy
	// Seed drives every key's probe sequence.
	Seed uint64
	// Replicas is the replica-set size hot keys are split to
	// (default 2; 1 disables splitting).
	Replicas int
	// HotShare is the request-share threshold for hot-key promotion
	// (default 0.10; ≥ 1 disables splitting).
	HotShare float64
	// HotMinHits is the minimum total request count before any
	// promotion (default 256) — a warmup guard so the first few
	// requests cannot promote spuriously.
	HotMinHits int64
	// MaxKeys caps the assignment table; beyond it, least-recently
	// routed idle keys are evicted (default 1<<20). Keys with live
	// balls are never evicted.
	MaxKeys int
}

// replica is one bin of a key's assignment set. refs and hits are
// balancing heuristics: refs approximates the key's live balls placed
// via this replica (a replica that moves carries them along, so after
// failover moves they are estimates, not books), hits its cumulative
// request count.
type replica struct {
	bin  int
	refs int64
	hits int64
}

type entry struct {
	key string
	// r is the key's probe stream. Every probe — initial assignment,
	// promotion, rebalance — continues the same deterministic
	// sequence.
	r        *rng.Rand
	replicas []replica
	refs     int64 // live balls across all replicas
	hits     int64 // cumulative requests for this key
	el       *list.Element
}

// KeyMap is the keyed placement tier. Construct with New.
type KeyMap struct {
	mu  sync.Mutex
	cfg Config

	entries map[string]*entry
	binLoad []int64    // key replicas resident per bin
	binKeys [][]string // per-bin keys in assignment order (lazily compacted)
	up      []bool
	healthy int
	reps    int64 // total live replicas (Σ binLoad)

	lru *list.List // front = most recently routed key

	// journal, when installed via SetJournal, receives every
	// structural mutation under mu — the durability hook (persist.go).
	journal func(Op)

	// liveBalls mirrors Σ entry.refs incrementally, so Stats never
	// walks the table under the routing mutex.
	liveBalls int64

	totalHits int64
	probes    int64
	hits      int64
	misses    int64
	moved     int64
	shed      int64
	idle      int64
	promoted  int64
	hotCount  int64
}

// New validates cfg and returns an empty KeyMap with every bin
// healthy. It panics on structurally invalid configuration, same
// contract as the allocator constructors.
func New(cfg Config) *KeyMap {
	if cfg.Bins <= 0 {
		panic("keyed: New with Bins <= 0")
	}
	if cfg.Policy == nil {
		cfg.Policy = Adaptive()
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.HotShare == 0 {
		cfg.HotShare = DefaultHotShare
	}
	if cfg.HotMinHits == 0 {
		cfg.HotMinHits = DefaultHotMinHits
	}
	if cfg.MaxKeys == 0 {
		cfg.MaxKeys = DefaultMaxKeys
	}
	m := &KeyMap{
		cfg:     cfg,
		entries: make(map[string]*entry),
		binLoad: make([]int64, cfg.Bins),
		binKeys: make([][]string, cfg.Bins),
		up:      make([]bool, cfg.Bins),
		healthy: cfg.Bins,
		lru:     list.New(),
	}
	for b := range m.up {
		m.up[b] = true
	}
	return m
}

// keyStream derives the seed of a key's probe stream: SplitMix64
// finalization over an FNV-1a hash of the key bytes mixed with the
// map seed — deterministic, and independent streams for distinct
// (seed, key) pairs.
func keyStream(seed uint64, key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return rng.Mix(seed, h)
}

// Bins returns the configured bin count.
func (m *KeyMap) Bins() int { return m.cfg.Bins }

// PolicyName returns the acceptance policy's identifier.
func (m *KeyMap) PolicyName() string { return m.cfg.Policy.Name() }

// Route returns the bin one request for key should go to, assigning
// the key on first contact (hit=false, probes>0) and answering from
// the affinity table afterwards (hit=true, zero probes unless a
// defensive repair or promotion ran). Each Route counts one live ball
// against the returned bin's replica until a matching Release.
func (m *KeyMap) Route(key string) (bin int, probes int, hit bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.healthy == 0 {
		return 0, 0, false, ErrNoBins
	}
	e := m.entries[key]
	if e == nil {
		b, p, perr := m.assignNewLocked(key, nil)
		if perr != nil {
			return 0, p, false, perr
		}
		return b, p, false, nil
	}
	m.lru.MoveToFront(e.el)
	// Defensive repair: a replica on a bin that went down outside the
	// SetDown path is re-probed here rather than served dead.
	for ri := 0; ri < len(e.replicas); ri++ {
		if !m.up[e.replicas[ri].bin] {
			p, merr := m.moveReplicaLocked(e, ri, nil, true)
			probes += p
			if merr != nil {
				// Every healthy bin already holds another replica of
				// this key (only possible for multi-replica keys, since
				// healthy > 0): shrink the set instead.
				m.dropReplicaLocked(e, ri)
				ri--
				continue
			}
			m.moved++
		}
	}
	m.hits++
	e.hits++
	m.totalHits++
	probes += m.maybePromoteLocked(e)
	ri := chooseReplica(e)
	e.refs++
	m.liveBalls++
	e.replicas[ri].refs++
	e.replicas[ri].hits++
	return e.replicas[ri].bin, probes, true, nil
}

// Release records the departure of one of key's balls from bin. It is
// a no-op for unknown keys (the key may have been idle-evicted or its
// replica moved since the ball was placed — the per-replica counters
// are balancing heuristics, not books).
func (m *KeyMap) Release(key string, bin int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[key]
	if e == nil {
		return
	}
	if e.refs > 0 {
		e.refs--
		m.liveBalls--
	}
	for ri := range e.replicas {
		if e.replicas[ri].bin == bin {
			if e.replicas[ri].refs > 0 {
				e.replicas[ri].refs--
			}
			return
		}
	}
}

// MoveOff reassigns the key's replica living on `from` to another
// healthy bin, additionally avoiding the bins in avoid (a caller's
// already-failed candidates) — the failover path of a keyed router:
// the caller observed `from` failing before any membership transition.
// The move continues the key's own probe sequence and counts toward
// the moved-keys disruption metric. An unknown key is assigned fresh.
func (m *KeyMap) MoveOff(key string, from int, avoid []int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.healthy == 0 {
		return 0, ErrNoBins
	}
	e := m.entries[key]
	if e == nil {
		// Unknown key (idle-evicted since Route, or a restarted map):
		// assign it fresh with the same accounting as Route's miss
		// path — the caller is about to place a ball for it.
		b, _, perr := m.assignNewLocked(key, avoid)
		return b, perr
	}
	for ri := range e.replicas {
		if e.replicas[ri].bin == from {
			if _, err := m.moveReplicaLocked(e, ri, avoid, false); err != nil {
				return 0, err
			}
			m.moved++
			return e.replicas[ri].bin, nil
		}
	}
	// The replica already moved (eviction rebalance won the race):
	// answer with a surviving replica outside the avoid set, or move
	// one if every replica has been tried.
	for ri := range e.replicas {
		if m.up[e.replicas[ri].bin] && !containsBin(avoid, e.replicas[ri].bin) {
			return e.replicas[ri].bin, nil
		}
	}
	if _, err := m.moveReplicaLocked(e, 0, avoid, false); err != nil {
		return 0, err
	}
	m.moved++
	return e.replicas[0].bin, nil
}

// SetDown marks bin unhealthy and rebalances: every key replica
// resident on it re-probes to a healthy bin (its stranded balls are
// written off the per-replica counters — they are unreachable until
// the bin returns, exactly the cluster tier's remove_errors
// accounting), then overfull healthy bins shed their most recent
// keys down to the policy bound. It returns the number of replica
// moves the eviction itself caused and the number of shed moves —
// together the complete disruption: moved ≤ keys resident on bin.
func (m *KeyMap) SetDown(bin int) (moved, shedMoves int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if bin < 0 || bin >= m.cfg.Bins || !m.up[bin] {
		return 0, 0
	}
	m.up[bin] = false
	m.healthy--
	m.logOp(Op{Type: OpDown, Bin: bin})
	if m.healthy == 0 {
		// Nothing to move to; assignments freeze until a bin returns
		// (Route answers ErrNoBins meanwhile; SetUp recovers them).
		return 0, 0
	}
	moved = m.rebalanceBinLocked(bin)
	shedMoves = m.shedLocked()
	m.shed += shedMoves
	return moved, shedMoves
}

// rebalanceBinLocked re-probes every key replica resident on (down)
// bin onto healthy bins, stranding their balls. Shared by SetDown and
// the post-outage recovery in SetUp.
func (m *KeyMap) rebalanceBinLocked(bin int) (moved int64) {
	keys := m.binKeys[bin]
	m.binKeys[bin] = nil
	for _, key := range keys {
		e := m.entries[key]
		if e == nil {
			continue // tombstone: key was evicted or moved away
		}
		ri := replicaIndex(e, bin)
		if ri < 0 {
			continue
		}
		if _, err := m.moveReplicaLocked(e, ri, nil, true); err != nil {
			// Every healthy bin already holds another replica of this
			// key: shrink the replica set instead of moving.
			m.dropReplicaLocked(e, ri)
			continue
		}
		m.moved++
		moved++
	}
	return moved
}

// SetUp marks bin healthy again. Keys resident on healthy bins are
// never reassigned — the no-reallocation ethos: the rejoined bin is
// simply the emptiest candidate for future picks and sheds. The one
// exception is recovery from a total outage: replicas frozen on
// still-down bins (a SetDown with no healthy target leaves them in
// place) are rebalanced now that a target exists.
func (m *KeyMap) SetUp(bin int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if bin < 0 || bin >= m.cfg.Bins || m.up[bin] {
		return
	}
	m.up[bin] = true
	m.healthy++
	m.logOp(Op{Type: OpUp, Bin: bin})
	for b := 0; b < m.cfg.Bins; b++ {
		if !m.up[b] && m.binLoad[b] > 0 {
			m.rebalanceBinLocked(b)
		}
	}
}

// assignNewLocked performs a first-contact assignment for key: probe
// a bin outside avoid, insert the entry, and count the incoming ball
// (one ref, one hit, one miss). Shared by Route's miss path and
// MoveOff's unknown-key path so the two cannot drift.
func (m *KeyMap) assignNewLocked(key string, avoid []int) (bin, probes int, err error) {
	e := &entry{key: key, r: rng.New(keyStream(m.cfg.Seed, key))}
	b, p, perr := m.probeLocked(e, m.reps+1, avoid)
	if perr != nil {
		return 0, p, perr
	}
	m.misses++
	m.entries[key] = e
	e.el = m.lru.PushFront(key)
	m.attachLocked(e, b)
	m.logOp(Op{Type: OpAssign, Key: key, To: b})
	e.refs, e.hits = 1, 1
	e.replicas[0].refs, e.replicas[0].hits = 1, 1
	m.liveBalls++
	m.totalHits++
	m.evictIdleLocked()
	return b, p, nil
}

// probeLocked walks e's deterministic bin stream until a healthy,
// non-avoided bin passes the policy's acceptance rule at live total
// i, up to the policy's probe cap, then falls back to the least
// loaded bin probed. Draws landing on down or avoided bins are
// skipped without counting as probes; a separate draw budget bounds
// the skip loop, after which a deterministic least-loaded scan
// decides. Returns ErrNoBins when no healthy non-avoided bin exists.
func (m *KeyMap) probeLocked(e *entry, i int64, avoid []int) (bin, probes int, err error) {
	k := m.healthy
	maxProbes := m.cfg.Policy.MaxProbes(k)
	budget := maxProbes + 8*m.cfg.Bins
	best := -1
	var bestLoad int64
	for probes < maxProbes && budget > 0 {
		budget--
		b := e.r.Intn(m.cfg.Bins)
		if !m.up[b] || containsBin(avoid, b) {
			continue
		}
		probes++
		m.probes++
		load := m.binLoad[b]
		if m.cfg.Policy.Accept(k, load, i) {
			return b, probes, nil
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	if best >= 0 {
		return best, probes, nil
	}
	for b := 0; b < m.cfg.Bins; b++ {
		if !m.up[b] || containsBin(avoid, b) {
			continue
		}
		if best < 0 || m.binLoad[b] < bestLoad {
			best, bestLoad = b, m.binLoad[b]
		}
	}
	if best < 0 {
		return 0, probes, ErrNoBins
	}
	return best, probes, nil
}

// attachLocked adds bin to e's replica set.
func (m *KeyMap) attachLocked(e *entry, bin int) {
	e.replicas = append(e.replicas, replica{bin: bin})
	if len(e.replicas) == 2 {
		m.hotCount++
	}
	m.binLoad[bin]++
	m.reps++
	m.appendBinKeyLocked(bin, e.key)
}

// dropReplicaLocked removes replica ri from e entirely (only taken
// when no healthy bin can host it), writing off its balls.
func (m *KeyMap) dropReplicaLocked(e *entry, ri int) {
	rp := e.replicas[ri]
	m.logOp(Op{Type: OpDrop, Key: e.key, From: rp.bin})
	m.binLoad[rp.bin]--
	m.reps--
	before := e.refs
	e.refs -= rp.refs
	if e.refs < 0 {
		e.refs = 0
	}
	m.liveBalls -= before - e.refs
	e.replicas = append(e.replicas[:ri], e.replicas[ri+1:]...)
	if len(e.replicas) == 1 {
		m.hotCount--
	}
}

// moveReplicaLocked re-probes replica ri of e to a new bin, avoiding
// the key's other replicas, the replica's current bin, and the bins
// in avoid. strand writes off the replica's balls (the source bin is
// unreachable); otherwise the refs travel with the assignment as a
// balancing estimate.
func (m *KeyMap) moveReplicaLocked(e *entry, ri int, avoid []int, strand bool) (int, error) {
	from := e.replicas[ri].bin
	all := make([]int, 0, len(e.replicas)+len(avoid))
	for _, rp := range e.replicas {
		all = append(all, rp.bin)
	}
	all = append(all, avoid...)
	b, probes, err := m.probeLocked(e, m.reps, all)
	if err != nil {
		return probes, err
	}
	m.binLoad[from]--
	e.replicas[ri].bin = b
	if strand {
		before := e.refs
		e.refs -= e.replicas[ri].refs
		if e.refs < 0 {
			e.refs = 0
		}
		m.liveBalls -= before - e.refs
		e.replicas[ri].refs = 0
	}
	m.binLoad[b]++
	m.appendBinKeyLocked(b, e.key)
	m.logOp(Op{Type: OpMove, Key: e.key, From: from, To: b})
	return probes, nil
}

// maybePromoteLocked grows a hot key's replica set to cfg.Replicas
// accepting bins of its own probe sequence. Hot = request share above
// HotShare after the HotMinHits warmup.
func (m *KeyMap) maybePromoteLocked(e *entry) (probes int) {
	if m.cfg.Replicas < 2 || len(e.replicas) >= m.cfg.Replicas {
		return 0
	}
	if m.cfg.HotShare >= 1 || m.totalHits < m.cfg.HotMinHits {
		return 0
	}
	if float64(e.hits) < m.cfg.HotShare*float64(m.totalHits) {
		return 0
	}
	was := len(e.replicas)
	for len(e.replicas) < m.cfg.Replicas {
		avoid := make([]int, 0, len(e.replicas))
		for _, rp := range e.replicas {
			avoid = append(avoid, rp.bin)
		}
		b, p, err := m.probeLocked(e, m.reps+1, avoid)
		probes += p
		if err != nil {
			break // fewer healthy bins than replicas: stay partial
		}
		m.attachLocked(e, b)
		m.logOp(Op{Type: OpAttach, Key: e.key, To: b})
	}
	if len(e.replicas) > was {
		m.promoted++
	}
	return probes
}

// chooseReplica picks the replica with the fewest outstanding balls —
// the d-choices rule among the key's own replicas (two-choices at
// d=2). Ties break to the lowest index, keeping the choice
// deterministic.
func chooseReplica(e *entry) int {
	best := 0
	for ri := 1; ri < len(e.replicas); ri++ {
		if e.replicas[ri].refs < e.replicas[best].refs {
			best = ri
		}
	}
	return best
}

// shedLocked moves the most recently assigned keys off every healthy
// bin above the policy bound, until each fits or no under-bound
// target remains. A shed always lands strictly under the bound
// (targeted probe with a least-loaded scan fallback), so one pass
// cannot create a new overfull bin and the loop terminates.
func (m *KeyMap) shedLocked() int64 {
	bound, ok := m.cfg.Policy.Bound(m.healthy, m.reps)
	if !ok {
		return 0
	}
	var count int64
	for b := 0; b < m.cfg.Bins; b++ {
		if !m.up[b] {
			continue
		}
		for m.binLoad[b] > bound {
			key, ri, found := m.popRecentLocked(b)
			if !found {
				break
			}
			e := m.entries[key]
			target := m.underBoundTargetLocked(e, bound, b)
			if target < 0 {
				// No room anywhere: put the key back and stop — the
				// overfull bin keeps its residents rather than
				// ping-ponging them.
				m.appendBinKeyLocked(b, key)
				return count
			}
			m.binLoad[b]--
			e.replicas[ri].bin = target
			m.binLoad[target]++
			m.appendBinKeyLocked(target, e.key)
			m.logOp(Op{Type: OpShed, Key: e.key, From: b, To: target})
			count++
		}
	}
	return count
}

// underBoundTargetLocked picks the shed destination: the first draw
// of e's probe stream landing on a healthy bin with load+1 ≤ bound
// that holds no other replica of e, falling back to a deterministic
// least-loaded scan. Returns -1 when no bin strictly under the bound
// exists.
func (m *KeyMap) underBoundTargetLocked(e *entry, bound int64, from int) int {
	ok := func(b int) bool {
		if !m.up[b] || b == from || m.binLoad[b] >= bound {
			return false
		}
		return replicaIndex(e, b) < 0
	}
	for tries := 0; tries < 4*m.cfg.Bins; tries++ {
		if b := e.r.Intn(m.cfg.Bins); ok(b) {
			m.probes++
			return b
		}
	}
	best := -1
	var bestLoad int64
	for b := 0; b < m.cfg.Bins; b++ {
		if ok(b) && (best < 0 || m.binLoad[b] < bestLoad) {
			best, bestLoad = b, m.binLoad[b]
		}
	}
	return best
}

// popRecentLocked pops the most recently assigned key still resident
// on bin b, returning its entry's replica index for b. Stale
// occurrences (keys evicted or moved away) are discarded as they
// surface.
func (m *KeyMap) popRecentLocked(b int) (key string, ri int, ok bool) {
	for l := m.binKeys[b]; len(l) > 0; l = m.binKeys[b] {
		key = l[len(l)-1]
		m.binKeys[b] = l[:len(l)-1]
		if e := m.entries[key]; e != nil {
			if ri = replicaIndex(e, b); ri >= 0 {
				return key, ri, true
			}
		}
	}
	return "", -1, false
}

// appendBinKeyLocked records key's assignment to bin in arrival
// order, compacting the list when tombstones (moved or evicted
// occurrences) dominate.
func (m *KeyMap) appendBinKeyLocked(bin int, key string) {
	l := append(m.binKeys[bin], key)
	if int64(len(l)) > 2*m.binLoad[bin]+16 {
		compact := l[:0]
		for _, k := range l {
			if e := m.entries[k]; e != nil && replicaIndex(e, bin) >= 0 {
				compact = append(compact, k)
			}
		}
		l = compact
	}
	m.binKeys[bin] = l
}

// evictIdleLocked enforces MaxKeys by forgetting the least recently
// routed idle key (no live balls). The scan is bounded so a table
// full of busy keys cannot stall the hot path; if no idle key
// surfaces, the table temporarily exceeds the cap.
func (m *KeyMap) evictIdleLocked() {
	if m.cfg.MaxKeys <= 0 || len(m.entries) <= m.cfg.MaxKeys {
		return
	}
	el := m.lru.Back()
	for scanned := 0; el != nil && scanned < 64; scanned++ {
		prev := el.Prev()
		if e := m.entries[el.Value.(string)]; e != nil && e.refs <= 0 {
			m.forgetLocked(e)
			m.idle++
			return
		}
		el = prev
	}
}

// forgetLocked removes e from the table entirely.
func (m *KeyMap) forgetLocked(e *entry) {
	m.logOp(Op{Type: OpForget, Key: e.key})
	m.liveBalls -= e.refs
	for _, rp := range e.replicas {
		m.binLoad[rp.bin]--
		m.reps--
	}
	if len(e.replicas) > 1 {
		m.hotCount--
	}
	m.lru.Remove(e.el)
	delete(m.entries, e.key)
}

func replicaIndex(e *entry, bin int) int {
	for ri := range e.replicas {
		if e.replicas[ri].bin == bin {
			return ri
		}
	}
	return -1
}

func containsBin(bins []int, b int) bool {
	for _, x := range bins {
		if x == b {
			return true
		}
	}
	return false
}

// Stats is the keyed tier's monitoring block, served under "keyed" in
// /v1/stats by both bbserved (bins = shards) and bbproxy (bins =
// backends).
type Stats struct {
	Policy   string `json:"policy"`
	Bins     int    `json:"bins"`
	Healthy  int    `json:"healthy"`
	Keys     int64  `json:"keys"`
	Replicas int64  `json:"replicas"`
	HotKeys  int64  `json:"hot_keys"`
	// LiveBalls sums the per-key outstanding-ball estimates.
	LiveBalls int64 `json:"live_balls"`
	// AffinityHits/Misses/HitRate: a hit answers from the table with
	// zero probes; a miss is a first-contact assignment. Moves count
	// in neither.
	AffinityHits    int64   `json:"affinity_hits"`
	AffinityMisses  int64   `json:"affinity_misses"`
	AffinityHitRate float64 `json:"affinity_hit_rate"`
	Probes          int64   `json:"probes"`
	// MovedKeys counts replica reassignments forced by failures
	// (SetDown rebalance, failover MoveOff, defensive repair);
	// ShedKeys the bound-restoring sheds; IdleEvicted the MaxKeys
	// evictions of idle keys; Promoted the hot-key promotions.
	MovedKeys   int64 `json:"moved_keys"`
	ShedKeys    int64 `json:"shed_keys"`
	IdleEvicted int64 `json:"idle_evicted"`
	Promoted    int64 `json:"promoted"`
	// MaxKeyLoad/MinKeyLoad cover healthy bins.
	MaxKeyLoad int64 `json:"max_key_load"`
	MinKeyLoad int64 `json:"min_key_load"`
	// PolicyBound is the per-bin replica bound the policy guarantees
	// for the current healthy-bin and replica counts, 0 for policies
	// with no load guarantee (hash, greedy, boundedretry). Computed
	// under the same lock as MaxKeyLoad, so the pair is a consistent
	// observation — what the invariant watchdog checks against.
	PolicyBound int64 `json:"policy_bound,omitempty"`
	// PerBinKeys is the resident replica count per bin (index = bin;
	// down bins report 0 — their keys have been rebalanced away).
	PerBinKeys []int64 `json:"per_bin_keys"`
}

// Stats assembles the monitoring block. It reads only local state.
func (m *KeyMap) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Policy:         m.cfg.Policy.Name(),
		Bins:           m.cfg.Bins,
		Healthy:        m.healthy,
		Keys:           int64(len(m.entries)),
		Replicas:       m.reps,
		HotKeys:        m.hotCount,
		AffinityHits:   m.hits,
		AffinityMisses: m.misses,
		Probes:         m.probes,
		MovedKeys:      m.moved,
		ShedKeys:       m.shed,
		IdleEvicted:    m.idle,
		Promoted:       m.promoted,
		LiveBalls:      m.liveBalls,
		PerBinKeys:     append([]int64(nil), m.binLoad...),
	}
	if t := st.AffinityHits + st.AffinityMisses; t > 0 {
		st.AffinityHitRate = float64(st.AffinityHits) / float64(t)
	}
	if m.healthy > 0 {
		if b, ok := m.cfg.Policy.Bound(m.healthy, m.reps); ok {
			st.PolicyBound = b
		}
	}
	first := true
	for b := 0; b < m.cfg.Bins; b++ {
		if !m.up[b] {
			continue
		}
		if l := m.binLoad[b]; first {
			st.MaxKeyLoad, st.MinKeyLoad = l, l
			first = false
		} else {
			if l > st.MaxKeyLoad {
				st.MaxKeyLoad = l
			}
			if l < st.MinKeyLoad {
				st.MinKeyLoad = l
			}
		}
	}
	return st
}
