package keyed

// This file is the KeyMap's persistence surface: the mutation journal
// (Op), the snapshot codec, structural replay (Apply), and the
// canonical Mirror used to verify recovery equivalence. The WAL
// machinery itself lives in internal/wal; the Store in store.go binds
// the two.
//
// What is and is not durable: the journal carries every structural
// mutation — assignments, replica attaches, moves, sheds, drops,
// forgets, bin up/down — so replay reconstructs the exact pre-crash
// assignment: same key→bin replica sets, same per-bin residency
// order (which makes future sheds deterministic), same bin health.
// Ephemeral per-process state is deliberately NOT durable: live-ball
// refs die with the process's balls, traffic counters (hits, probes,
// moved, …) restart at zero, per-key probe-stream positions restart
// at the stream head, and the recently-routed (LRU) order is
// approximated by snapshot order. None of that affects where an
// existing key routes.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/rng"
)

// OpType enumerates journaled mutations.
type OpType byte

// Journal record types. The numeric values are the on-disk encoding;
// never renumber.
const (
	// OpAssign: first-contact assignment of Key to bin To.
	OpAssign OpType = 1
	// OpAttach: hot-key promotion attached bin To to Key's replica set.
	OpAttach OpType = 2
	// OpMove: Key's replica on From re-probed to To (failover,
	// rebalance, defensive repair).
	OpMove OpType = 3
	// OpShed: Key's replica on From shed to To to restore the bound.
	OpShed OpType = 4
	// OpDrop: Key's replica on From was removed (no healthy host).
	OpDrop OpType = 5
	// OpForget: Key was evicted from the table entirely.
	OpForget OpType = 6
	// OpDown / OpUp: bin Bin changed health. The moves a SetDown
	// causes are journaled separately (as OpMove/OpShed), so replay
	// applies records structurally and never re-probes.
	OpDown OpType = 7
	OpUp   OpType = 8
)

// Op is one journaled KeyMap mutation.
type Op struct {
	Type     OpType
	Key      string
	From, To int
	Bin      int
}

// EncodeOp renders op in the journal's byte format:
// [1B type][bin fields as uvarint][uvarint key len][key bytes].
func EncodeOp(op Op) []byte {
	b := make([]byte, 1, 1+2*binary.MaxVarintLen64+len(op.Key))
	b[0] = byte(op.Type)
	switch op.Type {
	case OpAssign, OpAttach:
		b = binary.AppendUvarint(b, uint64(op.To))
	case OpMove, OpShed:
		b = binary.AppendUvarint(b, uint64(op.From))
		b = binary.AppendUvarint(b, uint64(op.To))
	case OpDrop:
		b = binary.AppendUvarint(b, uint64(op.From))
	case OpForget:
	case OpDown, OpUp:
		b = binary.AppendUvarint(b, uint64(op.Bin))
	}
	switch op.Type {
	case OpDown, OpUp:
	default:
		b = binary.AppendUvarint(b, uint64(len(op.Key)))
		b = append(b, op.Key...)
	}
	return b
}

var errTruncatedOp = errors.New("keyed: truncated journal op")

// DecodeOp parses one journal record. It never panics: malformed
// input returns an error (the WAL's CRC makes this unreachable for
// real logs; fuzzing reaches it on purpose).
func DecodeOp(b []byte) (Op, error) {
	if len(b) == 0 {
		return Op{}, errTruncatedOp
	}
	op := Op{Type: OpType(b[0])}
	b = b[1:]
	next := func() (int, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 || v > 1<<31 {
			return 0, errTruncatedOp
		}
		b = b[n:]
		return int(v), nil
	}
	var err error
	switch op.Type {
	case OpAssign, OpAttach:
		op.To, err = next()
	case OpMove, OpShed:
		if op.From, err = next(); err == nil {
			op.To, err = next()
		}
	case OpDrop:
		op.From, err = next()
	case OpForget:
	case OpDown, OpUp:
		op.Bin, err = next()
	default:
		return Op{}, fmt.Errorf("keyed: unknown journal op type %d", op.Type)
	}
	if err != nil {
		return Op{}, err
	}
	switch op.Type {
	case OpDown, OpUp:
		if len(b) != 0 {
			return Op{}, errTruncatedOp
		}
	default:
		kl, kerr := next()
		if kerr != nil || kl != len(b) {
			return Op{}, errTruncatedOp
		}
		op.Key = string(b)
	}
	return op, nil
}

// SetJournal installs fn to receive every structural mutation, called
// synchronously under the KeyMap's mutex (so journal order IS
// mutation order). Install it on a freshly recovered map before any
// traffic; replay via Apply must happen first, since Apply does not
// re-journal only because no journal is installed yet.
func (m *KeyMap) SetJournal(fn func(Op)) {
	m.mu.Lock()
	m.journal = fn
	m.mu.Unlock()
}

func (m *KeyMap) logOp(op Op) {
	if m.journal != nil {
		m.journal(op)
	}
}

// Apply replays one journaled mutation structurally — no probing, no
// journaling, no traffic accounting. It is the recovery path: a valid
// journal applies without error; an op that does not fit the current
// state (wrong directory, mixed configs) returns an error naming it.
func (m *KeyMap) Apply(op Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	bad := func(what string) error {
		return fmt.Errorf("keyed: replay %s: op %d key %q from %d to %d bin %d", what, op.Type, op.Key, op.From, op.To, op.Bin)
	}
	checkBin := func(b int) bool { return b >= 0 && b < m.cfg.Bins }
	switch op.Type {
	case OpAssign:
		if m.entries[op.Key] != nil || !checkBin(op.To) {
			return bad("assign")
		}
		e := &entry{key: op.Key, r: rng.New(keyStream(m.cfg.Seed, op.Key))}
		m.entries[op.Key] = e
		e.el = m.lru.PushFront(op.Key)
		m.attachLocked(e, op.To)
	case OpAttach:
		e := m.entries[op.Key]
		if e == nil || !checkBin(op.To) {
			return bad("attach")
		}
		m.attachLocked(e, op.To)
	case OpMove, OpShed:
		e := m.entries[op.Key]
		if e == nil || !checkBin(op.From) || !checkBin(op.To) {
			return bad("move")
		}
		ri := replicaIndex(e, op.From)
		if ri < 0 {
			return bad("move source")
		}
		m.binLoad[op.From]--
		e.replicas[ri].bin = op.To
		e.replicas[ri].refs = 0
		m.binLoad[op.To]++
		m.appendBinKeyLocked(op.To, op.Key)
	case OpDrop:
		e := m.entries[op.Key]
		if e == nil || !checkBin(op.From) {
			return bad("drop")
		}
		ri := replicaIndex(e, op.From)
		if ri < 0 {
			return bad("drop source")
		}
		m.dropReplicaLocked(e, ri)
	case OpForget:
		e := m.entries[op.Key]
		if e == nil {
			return bad("forget")
		}
		m.forgetLocked(e)
	case OpDown:
		if !checkBin(op.Bin) {
			return bad("down")
		}
		if m.up[op.Bin] {
			m.up[op.Bin] = false
			m.healthy--
		}
	case OpUp:
		if !checkBin(op.Bin) {
			return bad("up")
		}
		if !m.up[op.Bin] {
			m.up[op.Bin] = true
			m.healthy++
		}
	default:
		return bad("unknown op")
	}
	return nil
}

// Snapshot format: a version byte, the identity triple (bins, seed,
// policy name) guarding against pointing a differently-configured
// process at the directory, the bin health bitmap, the entries in
// recently-routed order with their replica bin lists, and the
// canonical per-bin residency order.
const snapVersion = 1

// EncodeSnapshotLocked renders the full durable state. Callers hold
// m.mu (see SnapshotTo).
func (m *KeyMap) encodeSnapshotLocked() []byte {
	b := []byte{snapVersion}
	b = binary.AppendUvarint(b, uint64(m.cfg.Bins))
	b = binary.AppendUvarint(b, m.cfg.Seed)
	name := m.cfg.Policy.Name()
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	for bin := 0; bin < m.cfg.Bins; bin++ {
		if m.up[bin] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(m.entries)))
	for el := m.lru.Front(); el != nil; el = el.Next() {
		e := m.entries[el.Value.(string)]
		b = binary.AppendUvarint(b, uint64(len(e.key)))
		b = append(b, e.key...)
		b = binary.AppendUvarint(b, uint64(len(e.replicas)))
		for _, rp := range e.replicas {
			b = binary.AppendUvarint(b, uint64(rp.bin))
		}
	}
	for bin := 0; bin < m.cfg.Bins; bin++ {
		keys := m.canonicalBinKeysLocked(bin)
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = binary.AppendUvarint(b, uint64(len(k)))
			b = append(b, k...)
		}
	}
	return b
}

// canonicalBinKeysLocked is bin's residency list with tombstones
// (moved or evicted occurrences) filtered out and each resident key
// reduced to its LAST occurrence — the one popRecentLocked would pop
// first. Earlier occurrences are stale history: a key that left the
// bin and came back appends a fresh occurrence, and whether its old
// one was physically removed (live pop / rebalance) or left behind as
// a tombstone (journal replay) must not change the canonical state.
// Two maps with equal canonical lists shed identically.
func (m *KeyMap) canonicalBinKeysLocked(bin int) []string {
	raw := m.binKeys[bin]
	var keys []string
	var seen map[string]bool
	for i := len(raw) - 1; i >= 0; i-- {
		k := raw[i]
		if e := m.entries[k]; e == nil || replicaIndex(e, bin) < 0 {
			continue
		}
		if seen[k] {
			continue
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		seen[k] = true
		keys = append(keys, k)
	}
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// SnapshotTo encodes the map's durable state and hands it to write
// while still holding the map's mutex, so the snapshot is exactly
// consistent with the journal position write observes — no mutation
// can slip between encode and persist. write must not call back into
// the map.
func (m *KeyMap) SnapshotTo(write func(data []byte) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return write(m.encodeSnapshotLocked())
}

// RestoreSnapshot loads a snapshot into a freshly constructed KeyMap
// (it errors on a non-empty one). The snapshot's identity triple must
// match the map's configuration.
func (m *KeyMap) RestoreSnapshot(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.entries) != 0 {
		return errors.New("keyed: RestoreSnapshot on non-empty map")
	}
	r := snapReader{b: data}
	if v := r.byte(); v != snapVersion {
		return fmt.Errorf("keyed: snapshot version %d not supported", v)
	}
	bins := int(r.uvarint())
	seed := r.uvarint()
	policy := r.str()
	if r.err != nil {
		return r.err
	}
	if bins != m.cfg.Bins || seed != m.cfg.Seed || policy != m.cfg.Policy.Name() {
		return fmt.Errorf("keyed: snapshot identity (bins=%d seed=%d policy=%q) does not match config (bins=%d seed=%d policy=%q)",
			bins, seed, policy, m.cfg.Bins, m.cfg.Seed, m.cfg.Policy.Name())
	}
	healthy := 0
	for bin := 0; bin < bins; bin++ {
		up := r.byte() != 0
		m.up[bin] = up
		if up {
			healthy++
		}
	}
	m.healthy = healthy
	n := int(r.uvarint())
	if r.err != nil {
		return r.err
	}
	for i := 0; i < n; i++ {
		key := r.str()
		reps := int(r.uvarint())
		if r.err != nil || reps < 1 || reps > bins {
			return fmt.Errorf("keyed: corrupt snapshot entry %d", i)
		}
		e := &entry{key: key, r: rng.New(keyStream(m.cfg.Seed, key))}
		for j := 0; j < reps; j++ {
			bin := int(r.uvarint())
			if r.err != nil || bin < 0 || bin >= bins {
				return fmt.Errorf("keyed: corrupt snapshot replica for %q", key)
			}
			e.replicas = append(e.replicas, replica{bin: bin})
			m.binLoad[bin]++
			m.reps++
		}
		if len(e.replicas) > 1 {
			m.hotCount++
		}
		if m.entries[key] != nil {
			return fmt.Errorf("keyed: duplicate snapshot key %q", key)
		}
		m.entries[key] = e
		// Entries are encoded most-recently-routed first; appending
		// keeps that order.
		e.el = m.lru.PushBack(key)
	}
	for bin := 0; bin < bins; bin++ {
		cnt := int(r.uvarint())
		if r.err != nil || cnt < 0 || cnt > len(data) {
			return fmt.Errorf("keyed: corrupt snapshot residency list for bin %d", bin)
		}
		keys := make([]string, 0, cnt)
		for j := 0; j < cnt; j++ {
			keys = append(keys, r.str())
		}
		if r.err != nil {
			return r.err
		}
		m.binKeys[bin] = keys
	}
	return r.err
}

type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) byte() byte {
	if r.err != nil || len(r.b) == 0 {
		r.err = errors.New("keyed: truncated snapshot")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = errors.New("keyed: truncated snapshot")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.err = errors.New("keyed: truncated snapshot")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// Mirror is the canonical durable state of a KeyMap: everything
// recovery promises to reproduce exactly. Two maps with equal Mirrors
// route every known key identically and shed identically under
// pressure. Ephemeral state (live-ball refs, traffic counters,
// probe-stream positions, LRU order) is excluded by design — see the
// file comment.
type Mirror struct {
	Bins    int
	Policy  string
	Up      []bool
	Healthy int
	// Keys maps each key to its replica bin list in replica order.
	Keys map[string][]int
	// BinKeys is the canonical (tombstone-free) residency order per
	// bin — the state that makes shedding deterministic.
	BinKeys [][]string
}

// Mirror captures the map's canonical durable state.
func (m *KeyMap) Mirror() Mirror {
	m.mu.Lock()
	defer m.mu.Unlock()
	mir := Mirror{
		Bins:    m.cfg.Bins,
		Policy:  m.cfg.Policy.Name(),
		Up:      append([]bool(nil), m.up...),
		Healthy: m.healthy,
		Keys:    make(map[string][]int, len(m.entries)),
		BinKeys: make([][]string, m.cfg.Bins),
	}
	for k, e := range m.entries {
		bins := make([]int, len(e.replicas))
		for i, rp := range e.replicas {
			bins[i] = rp.bin
		}
		mir.Keys[k] = bins
	}
	for bin := 0; bin < m.cfg.Bins; bin++ {
		mir.BinKeys[bin] = m.canonicalBinKeysLocked(bin)
	}
	return mir
}

// Equal reports whether two Mirrors describe the same durable state.
func (a Mirror) Equal(b Mirror) bool {
	if a.Bins != b.Bins || a.Policy != b.Policy || a.Healthy != b.Healthy || len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Up {
		if a.Up[i] != b.Up[i] {
			return false
		}
	}
	for k, bins := range a.Keys {
		other, ok := b.Keys[k]
		if !ok || len(bins) != len(other) {
			return false
		}
		for i := range bins {
			if bins[i] != other[i] {
				return false
			}
		}
	}
	for bin := range a.BinKeys {
		if len(a.BinKeys[bin]) != len(b.BinKeys[bin]) {
			return false
		}
		for i := range a.BinKeys[bin] {
			if a.BinKeys[bin][i] != b.BinKeys[bin][i] {
				return false
			}
		}
	}
	return true
}
