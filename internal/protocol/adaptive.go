package protocol

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Adaptive is the paper's new protocol (Figure 1): ball i repeatedly
// samples bins uniformly at random until it finds one with load
// strictly less than i/n + 1, and is placed there. The threshold
// adapts to the number of balls placed so far, so m need not be known
// in advance. The maximum load is at most ⌈m/n⌉ + 1 by construction;
// Theorem 3.1 shows the expected allocation time is O(m), and
// Corollary 3.5 that the final distribution is smooth:
// E[Φ] = O(n), E[Ψ] = O(n), and max − min = O(log n) w.h.p.
type Adaptive struct {
	n int64
}

// NewAdaptive returns the adaptive protocol.
func NewAdaptive() *Adaptive { return &Adaptive{} }

// Name implements Protocol.
func (a *Adaptive) Name() string { return "adaptive" }

// Reset implements Protocol. m is deliberately unused: the protocol is
// online.
func (a *Adaptive) Reset(n int, _ int64) { a.n = int64(n) }

// Place implements Protocol. The acceptance test load < i/n + 1 is
// evaluated in exact integer arithmetic as n·(load−1) < i.
func (a *Adaptive) Place(v *loadvec.Vector, r *rng.Rand, i int64) int64 {
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if a.n*int64(v.Load(j)-1) < i {
			v.Increment(j)
			return samples
		}
	}
}

// AdaptiveNoSlack is the ablation discussed in Section 2 of the paper:
// replacing the adaptive threshold i/n + 1 by i/n makes the allocation
// of each batch of n consecutive balls a coupon-collector process, so
// the overall allocation time degrades to Θ(m·log n). It demonstrates
// that the "+1" slack is what buys the O(m) running time.
type AdaptiveNoSlack struct {
	n int64
}

// NewAdaptiveNoSlack returns the slack-free adaptive ablation.
func NewAdaptiveNoSlack() *AdaptiveNoSlack { return &AdaptiveNoSlack{} }

// Name implements Protocol.
func (a *AdaptiveNoSlack) Name() string { return "adaptive-noslack" }

// Reset implements Protocol.
func (a *AdaptiveNoSlack) Reset(n int, _ int64) { a.n = int64(n) }

// Place implements Protocol. The acceptance test load < i/n is
// n·load < i in integer arithmetic. Every stage τ ends with all bins
// at exactly load τ, so acceptance is always eventually possible and
// the run terminates.
func (a *AdaptiveNoSlack) Place(v *loadvec.Vector, r *rng.Rand, i int64) int64 {
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if a.n*int64(v.Load(j)) < i {
			v.Increment(j)
			return samples
		}
	}
}
