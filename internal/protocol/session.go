package protocol

import (
	"fmt"
	"math"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Session is the incremental allocation primitive: a long-lived,
// stateful run of one protocol over one set of bins, advanced one ball
// (Step) or one batch (StepBatch) at a time, with support for
// departures (Remove). Every batch entry point in this package — Run,
// RunEngine, RunWithObserverEngine — is a thin driver over a Session,
// so there is exactly one allocation code path.
//
// Under the fast engine, a Session for a HistPlacer protocol starts in
// histogram mode: StepBatch executes on a loadvec.Hist (O(#levels)
// working set, fused PlaceBelowBatch hot loop for the rejection
// protocols), and the per-bin Vector is materialized lazily, the first
// time an operation needs bin identities (Step's return value, Remove,
// Vector). Materialization of a non-empty histogram draws the uniform
// identity assignment from the session's RNG (see Hist.ToVector);
// materializing before any ball has been placed is free and consumes
// no randomness. After materialization — and always under the naive
// engine or for protocols without a histogram path — the session runs
// on the exact per-bin Vector, using the O(1) bucket-index fast path
// (FastPlacer) when the engine and protocol support it.
//
// The ball index passed to the protocol is always the live ball count
// plus one. For pure arrival sequences this is exactly the 1-based
// ball index of the batch runners; under removals it makes the
// adaptive family's acceptance bound track the number of balls
// currently in the system — the natural online reading of the paper's
// rule, matching the dynamic-arrival transplant in internal/dynamic.
//
// A Session is not safe for concurrent use; see the public
// ballsbins.ShardedAllocator for a concurrent composition.
type Session struct {
	p      Protocol
	fast   FastPlacer // non-nil iff engine is fast and p implements it
	hp     HistPlacer // non-nil iff engine is fast and p implements it
	r      *rng.Rand
	engine Engine

	h *loadvec.Hist   // histogram mode; nil once materialized
	v *loadvec.Vector // nil while h is non-nil

	samples int64 // cumulative random bin choices
	placed  int64 // cumulative placements (not reduced by Remove)
	removed int64 // cumulative removals
}

// HorizonRequirer marks protocols whose acceptance rule depends on the
// total number of balls m (the Reset horizon): driving them with an
// unknown horizon (m = 0) deadlocks once every bin reaches the trivial
// bound. The public Allocator refuses to construct such a session
// without an explicit horizon.
type HorizonRequirer interface {
	RequiresHorizon()
}

// RequiresHorizon marks Threshold's acceptance bound m/n + 1 as
// horizon-dependent.
func (t *Threshold) RequiresHorizon() {}

// RequiresHorizon marks BoundedRetry's acceptance bound m/n + 1 as
// horizon-dependent.
func (b *BoundedRetry) RequiresHorizon() {}

// NewSession resets p for a run of up to m balls into n bins (m = 0
// declares the horizon unknown — valid for online protocols whose rule
// does not depend on m) and returns a session drawing randomness from
// r under the given engine. It panics if n <= 0 or m < 0, and
// propagates any Reset panic (infeasible bounds, parameter checks).
func NewSession(p Protocol, n int, m int64, r *rng.Rand, e Engine) *Session {
	if n <= 0 {
		panic("protocol: NewSession with n <= 0")
	}
	if m < 0 {
		panic("protocol: NewSession with m < 0")
	}
	p.Reset(n, m)
	s := &Session{p: p, r: r, engine: e}
	if e == EngineFast {
		if hp, ok := p.(HistPlacer); ok {
			s.hp = hp
			s.h = loadvec.NewHist(n)
		}
		if fp, ok := p.(FastPlacer); ok {
			s.fast = fp
		}
	}
	if s.h == nil {
		s.v = loadvec.New(n)
	}
	return s
}

// Vector returns the live per-bin load vector, materializing it from
// the histogram if the session is still in histogram mode. The caller
// may read it freely; writes other than through the session (as the
// dynamic simulator's migration step does) are visible to subsequent
// placements, which is well-defined for every protocol in this
// package. The returned pointer stays valid for the session's
// lifetime.
func (s *Session) Vector() *loadvec.Vector {
	if s.v == nil {
		if s.h.Balls() == 0 {
			// Nothing placed yet: the uniform identity assignment is
			// trivial, so skip ToVector and its permutation draw. This
			// keeps observer-driven runs and ball-by-ball sessions on
			// exactly the RNG stream of the pre-Session engine code.
			s.v = loadvec.New(s.h.N())
		} else {
			s.v = s.h.ToVector(s.r)
		}
		s.h = nil
	}
	return s.v
}

// HistMode reports whether the session is still running histogram-only
// (no bin identities materialized yet).
func (s *Session) HistMode() bool { return s.h != nil }

// Step places one ball and returns the chosen bin and the number of
// random bin choices consumed. It materializes the per-bin vector if
// the session was in histogram mode.
func (s *Session) Step() (bin int, samples int64) {
	v := s.Vector()
	i := v.Balls() + 1
	if s.fast != nil {
		samples = s.fast.PlaceFast(v, s.r, i)
	} else {
		samples = s.p.Place(v, s.r, i)
	}
	s.samples += samples
	s.placed++
	return v.LastPlaced(), samples
}

// StepBatch places k balls without reporting their individual bins and
// returns the total number of random bin choices consumed. In
// histogram mode the rejection-sampling protocols execute through the
// fused Hist.PlaceBelowBatch hot loop (one call per span of balls
// sharing an acceptance threshold); otherwise the balls are stepped
// one at a time on the vector. k <= 0 is a no-op.
func (s *Session) StepBatch(k int64) int64 {
	if k <= 0 {
		return 0
	}
	var total int64
	if s.h != nil {
		total = s.stepBatchHist(k)
	} else {
		v := s.v
		for j := int64(0); j < k; j++ {
			i := v.Balls() + 1
			if s.fast != nil {
				total += s.fast.PlaceFast(v, s.r, i)
			} else {
				total += s.p.Place(v, s.r, i)
			}
		}
	}
	s.samples += total
	s.placed += k
	return total
}

// stepBatchHist advances the histogram-mode session by k balls. The
// uniform rejection-sampling protocols keep their acceptance threshold
// constant across long spans of balls (a whole run for Threshold /
// FixedThreshold / SingleChoice, one n-ball stage for the adaptive
// variants), so they execute as a few calls into Hist.PlaceBelowBatch
// instead of one dynamic dispatch per ball. Other HistPlacer
// implementations fall back to per-ball PlaceHist calls. The stage
// arithmetic is anchored at the current ball count, so successive
// batches compose exactly like one big batch.
func (s *Session) stepBatchHist(k int64) int64 {
	h := s.h
	r := s.r
	end := h.Balls() + k
	var total int64
	switch q := s.p.(type) {
	case *Adaptive:
		// Balls (s−1)·n+1 … s·n share the threshold ⌈i/n⌉+1 = s+1.
		for placed := h.Balls(); placed < end; {
			stage := placed/q.n + 1
			count := min(stage*q.n, end) - placed
			total += h.PlaceBelowBatch(r, count, int(stage)+1)
			placed += count
		}
	case *AdaptiveNoSlack:
		// Balls c·n+1 … (c+1)·n share the threshold ⌊(i−1)/n⌋+1 = c+1.
		for placed := h.Balls(); placed < end; {
			c := placed / q.n
			count := min((c+1)*q.n, end) - placed
			total += h.PlaceBelowBatch(r, count, int(c)+1)
			placed += count
		}
	case *Threshold:
		total = h.PlaceBelowBatch(r, k, int(CeilDiv(q.m, q.n))+1)
	case *FixedThreshold:
		total = h.PlaceBelowBatch(r, k, f32cap(q.Bound))
	case *SingleChoice:
		total = h.PlaceBelowBatch(r, k, math.MaxInt32)
	default:
		for j := int64(0); j < k; j++ {
			total += s.hp.PlaceHist(h, r, h.Balls()+1)
		}
	}
	return total
}

// Remove takes one ball out of bin i — a departure. It materializes
// the per-bin vector if needed and panics if bin i is empty. The
// protocol is not consulted: removals are a property of the load
// state, and every protocol's next acceptance decision simply sees the
// reduced loads (and, for the adaptive family, the reduced live ball
// count).
func (s *Session) Remove(bin int) {
	s.Vector().Decrement(bin)
	s.removed++
}

// N returns the number of bins.
func (s *Session) N() int {
	if s.h != nil {
		return s.h.N()
	}
	return s.v.N()
}

// Balls returns the number of balls currently in the system.
func (s *Session) Balls() int64 {
	if s.h != nil {
		return s.h.Balls()
	}
	return s.v.Balls()
}

// Placed returns the cumulative number of placements (not reduced by
// removals).
func (s *Session) Placed() int64 { return s.placed }

// Removed returns the cumulative number of removals.
func (s *Session) Removed() int64 { return s.removed }

// Samples returns the cumulative number of random bin choices — the
// paper's allocation-time metric, summed over every Step and
// StepBatch so far.
func (s *Session) Samples() int64 { return s.samples }

// MaxLoad returns the current maximum load without materializing.
func (s *Session) MaxLoad() int {
	if s.h != nil {
		return s.h.MaxLoad()
	}
	return s.v.MaxLoad()
}

// MinLoad returns the current minimum load without materializing.
func (s *Session) MinLoad() int {
	if s.h != nil {
		return s.h.MinLoad()
	}
	return s.v.MinLoad()
}

// Gap returns MaxLoad − MinLoad without materializing.
func (s *Session) Gap() int {
	if s.h != nil {
		return s.h.Gap()
	}
	return s.v.Gap()
}

// SumSquares returns Σ loads² without materializing. Shard
// aggregations use it to combine exact global potentials.
func (s *Session) SumSquares() int64 {
	if s.h != nil {
		return s.h.SumSquares()
	}
	return s.v.SumSquares()
}

// LevelCount returns the number of bins with load exactly l without
// materializing.
func (s *Session) LevelCount(l int) int64 {
	if s.h != nil {
		return s.h.LevelCount(l)
	}
	return s.v.LevelCount(l)
}

// Psi returns the quadratic potential Ψ without materializing.
func (s *Session) Psi() float64 {
	if s.h != nil {
		return s.h.QuadraticPotential()
	}
	return s.v.QuadraticPotential()
}

// Phi returns the exponential potential Φ with the given ε without
// materializing.
func (s *Session) Phi(eps float64) float64 {
	if s.h != nil {
		return s.h.ExponentialPotential(eps)
	}
	return s.v.ExponentialPotential(eps)
}

// Name returns the protocol's identifier.
func (s *Session) Name() string { return s.p.Name() }

// String returns a compact human-readable description.
func (s *Session) String() string {
	mode := "vector"
	if s.h != nil {
		mode = "hist"
	}
	return fmt.Sprintf("session{%s engine=%s mode=%s n=%d live=%d placed=%d samples=%d}",
		s.p.Name(), s.engine, mode, s.N(), s.Balls(), s.placed, s.samples)
}
