package protocol

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// This file implements the histogram-mode fast engine. The naive Place
// methods simulate the paper's rejection loops literally: one RNG draw
// and one load probe per sampled bin, so a ball that rejects k bins
// costs Θ(k) work. The fast path collapses the whole loop into O(1)
// work while preserving the exact output distribution, using two
// facts:
//
//  1. In the loop "sample bins u.a.r. until load < T", the number of
//     samples S is Geometric(p) with p = CountBelow(T)/n, and —
//     independently of S — the accepted bin is uniform over the bins
//     with load < T. So drawing S from rng.Geometric (exact inversion
//     sampling) and the bin from a single bounded draw over the
//     CountBelow(T) acceptable positions yields the same joint
//     distribution of (reported samples, chosen bin) as the loop.
//  2. loadvec's bucket index makes both CountBelow(T) and "bin at a
//     uniform rank among the acceptable set" O(1).
//
// The two engines consume their RNG stream differently, so runs with
// the same seed differ between engines — but ball for ball the
// distributions of every observable (chosen bins, reported Samples,
// and hence MaxLoad/Gap/Ψ/Φ) are identical. One caveat on "exact":
// when acceptance is likely (p ≥ 1/4) the sample count is produced by
// literally counting Bernoulli trials, which is bit-exact; when it is
// rare the count comes from rng.Geometric's float64 inversion, whose
// per-quantile rounding error is O(2⁻⁵³) — identical for every
// practical purpose but not bit-level equal in the extreme tail. The
// equivalence tests in fast_test.go verify the engines agree with
// chi-square goodness of fit against the naive oracle.

// FastPlacer is implemented by protocols with a histogram-mode O(1)
// placement fast path. PlaceFast must produce the same distribution of
// (chosen bin, returned sample count) as Place on every reachable load
// vector, differing only in how it consumes the RNG stream.
type FastPlacer interface {
	Protocol
	// PlaceFast allocates ball i like Place, in O(1) amortized time.
	PlaceFast(v *loadvec.Vector, r *rng.Rand, i int64) int64
}

// HistPlacer is implemented by protocols whose dynamics depend on the
// load vector only through its level histogram — true of every uniform
// rejection-sampling protocol, which is symmetric under bin
// relabeling. PlaceHist must produce the same distribution of (chosen
// bin's level, returned sample count) as Place. When no per-ball
// observer needs bin identities, the fast engine runs the whole
// placement loop against a loadvec.Hist (O(#levels) working set, no
// random memory accesses) and materializes the per-bin Vector once at
// the end via Hist.ToVector — see that method for why the resulting
// load-vector distribution is exactly the naive engine's.
type HistPlacer interface {
	Protocol
	// PlaceHist allocates ball i on the histogram alone.
	PlaceHist(h *loadvec.Hist, r *rng.Rand, i int64) int64
}

// Engine selects the placement implementation for a run.
type Engine uint8

const (
	// EngineFast (the default) uses PlaceFast for protocols that
	// implement FastPlacer and falls back to the naive loop otherwise.
	EngineFast Engine = iota
	// EngineNaive always runs the literal rejection-sampling loop —
	// the reference oracle the fast path is validated against.
	EngineNaive
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineNaive:
		return "naive"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine resolves "fast" or "naive" (case-insensitive).
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(s) {
	case "fast":
		return EngineFast, nil
	case "naive":
		return EngineNaive, nil
	default:
		return EngineFast, fmt.Errorf("unknown engine %q (want fast or naive)", s)
	}
}

// RunEngine is Run with an explicit engine selection.
func RunEngine(p Protocol, n int, m int64, r *rng.Rand, e Engine) Outcome {
	return RunWithObserverEngine(p, n, m, r, e, nil)
}

// RunWithObserverEngine is RunWithObserver with an explicit engine
// selection (nil observer behaves as RunEngine). It is a thin driver
// over Session — the incremental single-ball primitive.
//
// With EngineFast the session runs histogram-only when no observer is
// attached (the batched StepBatch path); an observer forces the
// per-ball bucket-index path (PlaceFast) so it can watch an exact
// Vector after every ball. Protocols implementing neither fast
// interface fall back to the naive loop under either engine.
func RunWithObserverEngine(p Protocol, n int, m int64, r *rng.Rand, e Engine, obs Observer) Outcome {
	if n <= 0 {
		panic("protocol: Run with n <= 0")
	}
	if m < 0 {
		panic("protocol: Run with m < 0")
	}
	s := NewSession(p, n, m, r, e)
	if obs == nil {
		s.StepBatch(m)
		return Outcome{Vector: s.Vector(), Samples: s.Samples()}
	}
	// Materialize before the first ball (free on an empty session) so
	// the observer sees an exact per-bin vector after every placement.
	v := s.Vector()
	for i := int64(1); i <= m; i++ {
		_, samples := s.Step()
		obs(i, samples, v)
	}
	return Outcome{Vector: v, Samples: s.Samples()}
}

// f32cap clamps a bound to the int32 load domain.
func f32cap(b int) int {
	if b > math.MaxInt32 {
		return math.MaxInt32
	}
	return b
}

// sampleBelow draws the outcome of "sample bins u.a.r. until one of
// the cb acceptable bins (out of n) is hit": the number of samples s
// (Geometric with p = cb/n) and the rank of the accepted bin (uniform
// on [0, cb), independent of s). When acceptance is likely it counts
// literal Bernoulli trials — one bounded draw each, no logarithms, and
// the accepting draw doubles as the rank. When acceptance is rare
// (4·cb < n) it switches to the exact Geometric inversion sampler so
// the cost stays O(1) regardless of the rejection rate. Both branches
// produce exactly the (Geometric, independent uniform) pair of the
// naive loop, so the choice of branch — a deterministic function of
// (cb, n) — never changes the distribution. It panics if cb <= 0
// (where the naive loop would spin forever).
func sampleBelow(r *rng.Rand, cb, n int64) (s, rank int64) {
	if cb <= 0 {
		panic("protocol: rejection sampling with no acceptable bin")
	}
	if 4*cb >= n {
		for {
			s++
			if j := int64(r.Uint64n(uint64(n))); j < cb {
				return s, j
			}
		}
	}
	return r.Geometric(float64(cb) / float64(n)), int64(r.Uint64n(uint64(cb)))
}

// placeBelow performs the fast-path equivalent of "sample bins u.a.r.
// until one has load < T, place the ball there" on the full vector.
func placeBelow(v *loadvec.Vector, r *rng.Rand, T int) int64 {
	s, rank := sampleBelow(r, v.CountBelow(T), int64(v.N()))
	v.Increment(v.BinAtRank(rank))
	return s
}

// placeBelowHist is placeBelow on the histogram alone: the accepted
// rank is mapped to its load level and the level count moved up.
func placeBelowHist(h *loadvec.Hist, r *rng.Rand, T int) int64 {
	s, rank := sampleBelow(r, h.CountBelow(T), int64(h.N()))
	h.IncrementLevel(h.LevelOfRank(rank))
	return s
}

// PlaceFast implements FastPlacer. The acceptance bound load < i/n + 1
// equals load < ⌈i/n⌉ + 1 in integers.
func (a *Adaptive) PlaceFast(v *loadvec.Vector, r *rng.Rand, i int64) int64 {
	return placeBelow(v, r, int(CeilDiv(i, a.n))+1)
}

// PlaceHist implements HistPlacer.
func (a *Adaptive) PlaceHist(h *loadvec.Hist, r *rng.Rand, i int64) int64 {
	return placeBelowHist(h, r, int(CeilDiv(i, a.n))+1)
}

// PlaceFast implements FastPlacer. The acceptance bound load < i/n
// equals load < ⌊(i−1)/n⌋ + 1 in integers. A bin below the bound
// always exists (the i−1 balls placed so far average below i/n), so
// even the ablation's coupon-collector tail costs O(1) per ball here —
// its Θ(m log n) allocation time shows up only in the Samples
// statistic, no longer in wall-clock time.
func (a *AdaptiveNoSlack) PlaceFast(v *loadvec.Vector, r *rng.Rand, i int64) int64 {
	return placeBelow(v, r, int((i-1)/a.n)+1)
}

// PlaceHist implements HistPlacer.
func (a *AdaptiveNoSlack) PlaceHist(h *loadvec.Hist, r *rng.Rand, i int64) int64 {
	return placeBelowHist(h, r, int((i-1)/a.n)+1)
}

// PlaceFast implements FastPlacer. The acceptance bound load < m/n + 1
// equals load < ⌈m/n⌉ + 1 in integers.
func (t *Threshold) PlaceFast(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	return placeBelow(v, r, int(CeilDiv(t.m, t.n))+1)
}

// PlaceHist implements HistPlacer.
func (t *Threshold) PlaceHist(h *loadvec.Hist, r *rng.Rand, _ int64) int64 {
	return placeBelowHist(h, r, int(CeilDiv(t.m, t.n))+1)
}

// PlaceFast implements FastPlacer.
func (f *FixedThreshold) PlaceFast(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	return placeBelow(v, r, f.Bound)
}

// PlaceHist implements HistPlacer.
func (f *FixedThreshold) PlaceHist(h *loadvec.Hist, r *rng.Rand, _ int64) int64 {
	return placeBelowHist(h, r, f.Bound)
}

// PlaceFast implements FastPlacer. Single choice is already O(1); the
// draw selects a uniform RANK of the by-level permutation rather than
// a uniform bin identity — the two are the same distribution (a
// permutation of a uniform variable is uniform), but the rank
// formulation makes PlaceFast consume the RNG identically to PlaceHist
// and hit the same load level, so a ball-by-ball session reproduces
// the histogram-mode batch run value for value. (This deliberately
// changed the fast-engine observer path's stream for single-choice
// relative to the pre-Session code, which reused the draw as a bin
// identity: same seed, different — identically distributed — run. The
// no-observer fast path and the naive engine are unaffected.)
func (s *SingleChoice) PlaceFast(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	v.Increment(v.BinAtRank(int64(r.Uint64n(uint64(v.N())))))
	return 1
}

// PlaceHist implements HistPlacer: a uniform rank is a uniform bin.
func (s *SingleChoice) PlaceHist(h *loadvec.Hist, r *rng.Rand, _ int64) int64 {
	h.IncrementLevel(h.LevelOfRank(int64(r.Uint64n(uint64(h.N())))))
	return 1
}

// PlaceFast implements FastPlacer. If the Geometric sample count
// exceeds the retry cap — probability (1−p)^R, exactly the chance the
// naive loop rejects all R samples — the R samples were i.i.d. uniform
// over the bins with load ≥ T, so the fallback draws them from the
// rejected bucket and keeps the first one attaining the minimum load,
// matching the naive rule. The fallback costs O(R), the same as naive;
// only the (typical) accepting case is O(1).
func (b *BoundedRetry) PlaceFast(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	n := int64(v.N())
	T := int(CeilDiv(b.m, b.n)) + 1
	cb := v.CountBelow(T)
	retries := int64(b.retries)
	if cb > 0 {
		s := r.Geometric(float64(cb) / float64(n))
		if s <= retries {
			v.Increment(v.BinAtRank(int64(r.Uint64n(uint64(cb)))))
			return s
		}
	}
	reject := uint64(n - cb)
	best := -1
	bestLoad := 0
	for k := int64(0); k < retries; k++ {
		j := v.BinAtRank(cb + int64(r.Uint64n(reject)))
		if load := v.Load(j); best < 0 || load < bestLoad {
			best, bestLoad = j, load
		}
	}
	v.Increment(best)
	return retries
}

// PlaceHist implements HistPlacer. The histogram needs only the chosen
// bin's level: in the fallback, the level of the minimum sampled rank
// is exactly the minimum sampled load, i.e. the level of the bin the
// naive first-minimum rule selects.
func (b *BoundedRetry) PlaceHist(h *loadvec.Hist, r *rng.Rand, _ int64) int64 {
	n := int64(h.N())
	T := int(CeilDiv(b.m, b.n)) + 1
	cb := h.CountBelow(T)
	retries := int64(b.retries)
	if cb > 0 {
		s := r.Geometric(float64(cb) / float64(n))
		if s <= retries {
			h.IncrementLevel(h.LevelOfRank(int64(r.Uint64n(uint64(cb)))))
			return s
		}
	}
	reject := uint64(n - cb)
	minRank := n
	for k := int64(0); k < retries; k++ {
		if j := cb + int64(r.Uint64n(reject)); j < minRank {
			minRank = j
		}
	}
	h.IncrementLevel(h.LevelOfRank(minRank))
	return retries
}
