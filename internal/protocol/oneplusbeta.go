package protocol

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// OnePlusBeta is the (1+β)-choice process of Peres, Talwar and Wieder:
// with probability β the ball uses two choices (greedy[2]), otherwise
// a single uniform choice. It interpolates between single-choice
// (β = 0) and greedy[2] (β = 1); for 0 < β < 1 the max−min gap is
// Θ(log n / β) independent of m — already a fraction of two-choice
// decisions smooths the distribution dramatically.
//
// It is included as an extension baseline: like the paper's adaptive
// protocol it buys smoothness cheaply, but with a weaker guarantee
// (O(log n/β) above average rather than ⌈m/n⌉+1) at a comparable
// expected cost of 1+β choices per ball.
type OnePlusBeta struct {
	beta float64
}

// NewOnePlusBeta returns the (1+β)-choice process. It panics unless
// 0 <= beta <= 1.
func NewOnePlusBeta(beta float64) *OnePlusBeta {
	if beta < 0 || beta > 1 || beta != beta {
		panic("protocol: NewOnePlusBeta with beta outside [0,1]")
	}
	return &OnePlusBeta{beta: beta}
}

// Beta returns the two-choice probability.
func (p *OnePlusBeta) Beta() float64 { return p.beta }

// Name implements Protocol.
func (p *OnePlusBeta) Name() string { return fmt.Sprintf("oneplusbeta[%.2f]", p.beta) }

// Reset implements Protocol; the process is stateless.
func (p *OnePlusBeta) Reset(n int, m int64) {}

// Place implements Protocol. The coin flip for "one or two choices" is
// bookkeeping randomness, not a bin choice, so it does not count
// toward allocation time; the bin samples (1 or 2) do.
func (p *OnePlusBeta) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	n := v.N()
	first := r.Intn(n)
	if !r.Bernoulli(p.beta) {
		v.Increment(first)
		return 1
	}
	second := r.Intn(n)
	if v.Load(second) < v.Load(first) {
		first = second
	}
	v.Increment(first)
	return 2
}
