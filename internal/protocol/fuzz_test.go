package protocol

import (
	"testing"

	"repro/internal/rng"
)

// FuzzMaxLoadInvariant checks the paper's deterministic guarantee on
// arbitrary (n, m, seed) triples for both headline protocols, plus the
// internal consistency of the final vector.
func FuzzMaxLoadInvariant(f *testing.F) {
	f.Add(uint16(10), uint16(100), uint64(1))
	f.Add(uint16(1), uint16(1), uint64(0))
	f.Add(uint16(128), uint16(0), uint64(42))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed uint64) {
		n := 1 + int(nRaw%256)
		m := int64(mRaw % 4096)
		bound := int(MaxLoadBound(n, m))
		for _, fac := range []Factory{
			func() Protocol { return NewAdaptive() },
			func() Protocol { return NewThreshold() },
			func() Protocol { return NewStaleAdaptive(1 + int64(seed%uint64(n))) },
		} {
			out := Run(fac(), n, m, rng.New(seed))
			if out.Vector.Balls() != m {
				t.Fatalf("placed %d of %d", out.Vector.Balls(), m)
			}
			if out.Vector.MaxLoad() > bound {
				t.Fatalf("max load %d exceeds %d", out.Vector.MaxLoad(), bound)
			}
			if err := out.Vector.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
