package protocol

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// The fast engine's contract is distributional: for every protocol
// with a fast path, every observable of a run — Samples, MaxLoad, Gap,
// Σℓ² (hence Ψ) — must have exactly the same law as under the naive
// rejection loop. These tests drive both engines over a seed/shape
// grid and compare the observed distributions with the two-sample
// chi-square machinery in internal/dist. The engines consume their RNG
// streams differently, so values are compared in distribution, never
// run by run.

// fastProtocols enumerates every protocol with a fast path, with
// shapes chosen so all code paths (stage boundaries, high and low
// acceptance fractions, the bounded-retry fallback) are exercised.
func fastProtocols() []struct {
	name string
	mk   Factory
} {
	return []struct {
		name string
		mk   Factory
	}{
		{"adaptive", func() Protocol { return NewAdaptive() }},
		{"adaptive-noslack", func() Protocol { return NewAdaptiveNoSlack() }},
		{"threshold", func() Protocol { return NewThreshold() }},
		{"fixed", func() Protocol { return NewFixedThreshold(8) }},
		{"single", func() Protocol { return NewSingleChoice() }},
		{"retry3", func() Protocol { return NewBoundedRetry(3) }},
	}
}

func TestFastPathsImplementInterfaces(t *testing.T) {
	for _, tc := range fastProtocols() {
		p := tc.mk()
		if _, ok := p.(FastPlacer); !ok {
			t.Errorf("%s does not implement FastPlacer", tc.name)
		}
		if _, ok := p.(HistPlacer); !ok {
			t.Errorf("%s does not implement HistPlacer", tc.name)
		}
	}
}

// engineFlavors runs one replicate under each placement implementation:
// the naive loop, the histogram mode (fast engine, no observer), and
// the per-ball bucket-index mode (fast engine with an observer).
func engineFlavors() map[string]func(f Factory, n int, m int64, seed uint64) Outcome {
	return map[string]func(f Factory, n int, m int64, seed uint64) Outcome{
		"naive": func(f Factory, n int, m int64, seed uint64) Outcome {
			return RunEngine(f(), n, m, rng.New(seed), EngineNaive)
		},
		"fast-hist": func(f Factory, n int, m int64, seed uint64) Outcome {
			return RunEngine(f(), n, m, rng.New(seed), EngineFast)
		},
		"fast-bucket": func(f Factory, n int, m int64, seed uint64) Outcome {
			obs := func(int64, int64, *loadvec.Vector) {}
			return RunWithObserverEngine(f(), n, m, rng.New(seed), EngineFast, obs)
		},
	}
}

// TestFastEnginesInvariants checks, across a shape grid, that every
// engine flavor produces structurally valid outcomes: the right ball
// count, a consistent load vector, and — for the protocols that carry
// the paper's deterministic guarantee — max load at most ⌈m/n⌉+1.
func TestFastEnginesInvariants(t *testing.T) {
	guaranteed := map[string]bool{"adaptive": true, "adaptive-noslack": true, "threshold": true}
	for _, tc := range fastProtocols() {
		for _, n := range []int{1, 7, 64} {
			for _, ratio := range []int64{1, 5, 33} {
				m := ratio * int64(n)
				if tc.name == "fixed" && int64(n)*8 < m {
					continue // infeasible bound: Reset panics by design
				}
				for flavor, run := range engineFlavors() {
					out := run(tc.mk, n, m, 42)
					if out.Vector.Balls() != m {
						t.Fatalf("%s/%s n=%d m=%d: placed %d balls",
							tc.name, flavor, n, m, out.Vector.Balls())
					}
					if err := out.Vector.Validate(); err != nil {
						t.Fatalf("%s/%s n=%d m=%d: invalid vector: %v",
							tc.name, flavor, n, m, err)
					}
					if out.Samples < m {
						t.Fatalf("%s/%s n=%d m=%d: samples %d < m",
							tc.name, flavor, n, m, out.Samples)
					}
					if guaranteed[tc.name] {
						if bound := MaxLoadBound(n, m); int64(out.Vector.MaxLoad()) > bound {
							t.Fatalf("%s/%s n=%d m=%d: max load %d exceeds guarantee %d",
								tc.name, flavor, n, m, out.Vector.MaxLoad(), bound)
						}
					}
				}
			}
		}
	}
}

// chiCompare histograms two integer samples and runs the two-sample
// chi-square, merging adjacent sparse buckets (pooled count < 16) so
// the chi-square approximation holds. The p-value floor of 1e-6
// matches the rng crosscheck suite: tight enough to catch any real
// distributional drift over thousands of replicates, loose enough to
// be deterministic-seed stable.
func chiCompare(t *testing.T, label string, a, b []int64) {
	t.Helper()
	lo, hi := a[0], a[0]
	for _, v := range append(append([]int64(nil), a...), b...) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	width := hi - lo + 1
	ca := make([]int64, width)
	cb := make([]int64, width)
	for _, v := range a {
		ca[v-lo]++
	}
	for _, v := range b {
		cb[v-lo]++
	}
	// Merge adjacent sparse buckets.
	var ma, mb []int64
	var accA, accB int64
	for i := int64(0); i < width; i++ {
		accA += ca[i]
		accB += cb[i]
		if accA+accB >= 16 {
			ma = append(ma, accA)
			mb = append(mb, accB)
			accA, accB = 0, 0
		}
	}
	if accA+accB > 0 && len(ma) > 0 {
		ma[len(ma)-1] += accA
		mb[len(mb)-1] += accB
	}
	if len(ma) < 2 {
		// Degenerate support: both engines must then agree exactly.
		if accA != accB {
			t.Errorf("%s: degenerate support with unequal masses %d vs %d", label, accA, accB)
		}
		return
	}
	stat, p := dist.TwoSampleChiSquare(ma, mb)
	if p < 1e-6 {
		t.Errorf("%s: distributions differ: chi2=%.1f p=%g (df=%d)", label, stat, p, len(ma)-1)
	}
}

// TestFastMatchesNaiveDistributions is the core equivalence suite:
// thousands of small replicates per engine, compared metric by metric.
func TestFastMatchesNaiveDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite needs thousands of replicates")
	}
	const (
		n    = 24
		m    = int64(3 * n)
		reps = 4000
	)
	flavors := engineFlavors()
	for _, tc := range fastProtocols() {
		metrics := map[string]map[string][]int64{}
		for flavor, run := range flavors {
			samples := make([]int64, reps)
			maxload := make([]int64, reps)
			gap := make([]int64, reps)
			sumsq := make([]int64, reps)
			for rep := 0; rep < reps; rep++ {
				out := run(tc.mk, n, m, rng.Mix(uint64(rep), 77))
				samples[rep] = out.Samples
				maxload[rep] = int64(out.Vector.MaxLoad())
				gap[rep] = int64(out.Vector.Gap())
				sumsq[rep] = out.Vector.SumSquares()
			}
			metrics[flavor] = map[string][]int64{
				"samples": samples, "maxload": maxload, "gap": gap, "sumsq": sumsq,
			}
		}
		for _, flavor := range []string{"fast-hist", "fast-bucket"} {
			for metric := range metrics["naive"] {
				chiCompare(t, fmt.Sprintf("%s/%s/%s", tc.name, flavor, metric),
					metrics["naive"][metric], metrics[flavor][metric])
			}
		}
	}
}

// TestFastHistLowAcceptanceRegime drives the Geometric branch of the
// fast path hard: a fixed threshold exactly at capacity makes the
// acceptable fraction collapse toward 1/n at the end of the run, where
// the naive loop needs Θ(n) samples per ball.
func TestFastHistLowAcceptanceRegime(t *testing.T) {
	const n = 16
	m := int64(n) * 4 // fills bound=4 exactly: last ball sees one open slot
	mk := func() Protocol { return NewFixedThreshold(4) }
	var naive, fast []int64
	for rep := 0; rep < 3000; rep++ {
		naive = append(naive, RunEngine(mk(), n, m, rng.New(uint64(rep+1)), EngineNaive).Samples)
		fast = append(fast, RunEngine(mk(), n, m, rng.New(uint64(rep+1)), EngineFast).Samples)
	}
	chiCompare(t, "fixed-at-capacity/samples", naive, fast)
}

// TestFastEngineObserverSeesExactVectors confirms the observer-mode
// fast path maintains a per-ball-consistent vector: every callback
// sees i balls placed and a vector that validates.
func TestFastEngineObserverSeesExactVectors(t *testing.T) {
	var calls int64
	obs := func(ball, samples int64, v *loadvec.Vector) {
		calls++
		if v.Balls() != ball {
			t.Fatalf("observer at ball %d sees %d balls", ball, v.Balls())
		}
		if ball%17 == 0 {
			if err := v.Validate(); err != nil {
				t.Fatalf("observer at ball %d: %v", ball, err)
			}
		}
	}
	out := RunWithObserverEngine(NewAdaptive(), 32, 320, rng.New(9), EngineFast, obs)
	if calls != 320 || out.Vector.Balls() != 320 {
		t.Fatalf("observer called %d times, vector has %d balls", calls, out.Vector.Balls())
	}
}

// TestEngineParsing covers the CLI-facing engine name round trip.
func TestEngineParsing(t *testing.T) {
	for _, e := range []Engine{EngineFast, EngineNaive} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("round trip of %v failed: %v %v", e, got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("unknown engine accepted")
	}
	if Engine(7).String() == "" {
		t.Error("unknown engine String empty")
	}
}

// TestFastDefaultUsedByRunEngine ensures the engine selector actually
// switches implementations: with a stub protocol that implements
// HistPlacer, EngineFast must take the histogram path and EngineNaive
// must not.
func TestFastDefaultUsedByRunEngine(t *testing.T) {
	p := &pathProbe{}
	RunEngine(p, 4, 4, rng.New(1), EngineNaive)
	if p.histCalls != 0 || p.naiveCalls != 4 {
		t.Fatalf("naive engine used hist path: %+v", p)
	}
	p = &pathProbe{}
	RunEngine(p, 4, 4, rng.New(1), EngineFast)
	if p.histCalls != 4 || p.naiveCalls != 0 {
		t.Fatalf("fast engine skipped hist path: %+v", p)
	}
	// An observer forces the per-ball fast path (PlaceFast here).
	p = &pathProbe{}
	RunWithObserverEngine(p, 4, 4, rng.New(1), EngineFast,
		func(int64, int64, *loadvec.Vector) {})
	if p.fastCalls != 4 || p.histCalls != 0 {
		t.Fatalf("observer run did not use bucket fast path: %+v", p)
	}
}

// pathProbe counts which placement implementation the engine invoked.
type pathProbe struct {
	naiveCalls, fastCalls, histCalls int
}

func (p *pathProbe) Name() string     { return "probe" }
func (p *pathProbe) Reset(int, int64) {}
func (p *pathProbe) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	p.naiveCalls++
	v.Increment(r.Intn(v.N()))
	return 1
}
func (p *pathProbe) PlaceFast(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	p.fastCalls++
	v.Increment(r.Intn(v.N()))
	return 1
}
func (p *pathProbe) PlaceHist(h *loadvec.Hist, r *rng.Rand, _ int64) int64 {
	p.histCalls++
	h.IncrementLevel(h.LevelOfRank(int64(r.Intn(h.N()))))
	return 1
}
