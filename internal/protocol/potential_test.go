package protocol

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// These tests validate the inner machinery of the paper's proofs — the
// stage-wise potential drop of Lemma 3.4 / Corollary 3.5 and the
// Poissonization step of Theorem 4.1 — not just the end-to-end
// statements.

// buildStageVector constructs a legal end-of-stage-tau load vector
// with a prescribed set of "holes": bins[i] gets load tau+1-holes[i]
// (holes may be negative meaning up to the tau+1 cap), such that the
// total is exactly tau*n. It fails the test if the prescription is
// inconsistent.
func buildStageVector(t *testing.T, n, tau int, loads []int) *loadvec.Vector {
	t.Helper()
	if len(loads) != n {
		t.Fatalf("loads length %d != n %d", len(loads), n)
	}
	total := 0
	v := loadvec.New(n)
	for i, l := range loads {
		if l < 0 || l > tau+1 {
			t.Fatalf("bin %d load %d outside [0, tau+1]", i, l)
		}
		for k := 0; k < l; k++ {
			v.Increment(i)
		}
		total += l
	}
	if total != tau*n {
		t.Fatalf("stage vector holds %d balls, want %d", total, tau*n)
	}
	return v
}

func TestLemma34CatchUpMechanism(t *testing.T) {
	// Lemma 3.4's drop factor kappa is ~1e-5 with the paper's
	// eps = 1/200 — a deliberately razor-thin margin that no
	// laptop-scale experiment can resolve directly (and the Phi >= rho·n
	// regime itself needs asymptotic n: a hole of depth n-1 contributes
	// only (1+eps)^n ≈ 147 at n = 1000). What IS measurable is the
	// mechanism the drop rests on: underloaded bins receive strictly
	// more than one ball per stage in expectation (Lemma 3.2 gives
	// >= 199/198; the true steady-state rate is ≈ samples/stage/n ≈
	// 1.3), so hole depths shrink stage over stage and the potential's
	// hole terms decay.
	const (
		n        = 1000
		tau      = 20
		deep     = 10
		holeBins = 50
		reps     = 100
	)
	loads := make([]int, n)
	deficit := holeBins * deep // = 500 <= n - holeBins, so legal
	for i := 0; i < holeBins; i++ {
		loads[i] = tau - deep
	}
	for i := holeBins; i < n; i++ {
		loads[i] = tau
	}
	for i := holeBins; i < holeBins+deficit; i++ {
		loads[i] = tau + 1
	}
	base := buildStageVector(t, n, tau, loads)

	proto := NewAdaptive()
	var received float64
	var phiBefore, phiAfter float64
	phiBefore = base.ExponentialPotential(loadvec.DefaultEpsilon)
	for rep := 0; rep < reps; rep++ {
		v := base.Clone()
		proto.Reset(n, int64(tau+1)*n)
		r := rng.New(uint64(3000 + rep))
		for i := int64(tau)*n + 1; i <= int64(tau+1)*n; i++ {
			proto.Place(v, r, i)
		}
		for b := 0; b < holeBins; b++ {
			received += float64(v.Load(b) - (tau - deep))
		}
		phiAfter += v.ExponentialPotential(loadvec.DefaultEpsilon)
	}
	meanY := received / float64(reps*holeBins)
	if meanY < 1.05 {
		t.Fatalf("underloaded bins received %.4f balls/stage, want > 1 (Lemma 3.2/3.3 mechanism)",
			meanY)
	}
	// Catch-up implies the potential shrinks: the hole terms decay by
	// a (1+eps)^{E[Y]-1} factor that beats the generic (1+eps) growth.
	phiAfter /= reps
	if phiAfter >= phiBefore {
		t.Fatalf("expected potential to shrink: %.2f -> %.2f", phiBefore, phiAfter)
	}
	t.Logf("E[Y|underloaded] = %.3f, Phi %.2f -> %.2f", meanY, phiBefore, phiAfter)
}

func TestCorollary35PotentialStationary(t *testing.T) {
	// The flip side of Lemma 3.4: once Phi is at its O(n) stationary
	// level, further stages keep it there (up to the (1+eps) growth
	// absorbed by the drop). Track Phi/n across 64 stages.
	const n = 512
	const stages = 64
	proto := NewAdaptive()
	proto.Reset(n, int64(stages)*n)
	v := loadvec.New(n)
	r := rng.New(99)
	var worst float64
	for i := int64(1); i <= int64(stages)*n; i++ {
		proto.Place(v, r, i)
		if i%int64(n) == 0 {
			phiPerBin := v.ExponentialPotential(loadvec.DefaultEpsilon) / float64(n)
			if phiPerBin > worst {
				worst = phiPerBin
			}
		}
	}
	if worst > 10 {
		t.Fatalf("Phi/n reached %.2f, expected O(1) stationary level", worst)
	}
}

func TestTheorem41PoissonizationAccuracy(t *testing.T) {
	// The proof of Theorem 4.1 approximates the access distribution
	// after T = alpha*n uniform samples by n independent Poisson(alpha)
	// variables and tracks the total holes W = sum((phi+1 - X_i)^+).
	// Validate the approximation: the empirical mean of W under real
	// multinomial accesses must match n*E[(phi+1-Poi(alpha))^+] within
	// a few percent.
	const (
		n    = 2000
		phi  = 16
		reps = 40
	)
	alpha := float64(phi) + math.Pow(float64(phi), 0.75) + 1
	T := int64(alpha * n)

	// Analytic prediction via the dist package.
	var predicted float64
	for k := 0; k <= phi; k++ {
		predicted += float64(phi+1-k) * dist.PoissonPMF(alpha, k)
	}
	predicted *= n

	var empirical float64
	r := rng.New(123)
	counts := make([]int32, n)
	for rep := 0; rep < reps; rep++ {
		for i := range counts {
			counts[i] = 0
		}
		for s := int64(0); s < T; s++ {
			counts[r.Intn(n)]++
		}
		var holes int64
		for _, x := range counts {
			if h := int32(phi+1) - x; h > 0 {
				holes += int64(h)
			}
		}
		empirical += float64(holes)
	}
	empirical /= reps

	relErr := math.Abs(empirical-predicted) / (predicted + 1)
	if relErr > 0.10 {
		t.Fatalf("Poissonization off by %.1f%%: empirical %.1f predicted %.1f",
			100*relErr, empirical, predicted)
	}
	t.Logf("holes after alpha*n accesses: empirical %.1f, Poisson prediction %.1f",
		empirical, predicted)
	// Theorem 4.1's conclusion needs W <= n at T = alpha*n; the
	// prediction itself must be comfortably below n.
	if predicted > float64(n) {
		t.Fatalf("predicted holes %.1f exceed n; alpha too small", predicted)
	}
}

func TestThresholdStopsExactlyWhenHolesReachN(t *testing.T) {
	// The bookkeeping identity behind Theorem 4.1: when threshold has
	// placed all m balls, the remaining holes w.r.t. capacity phi+1
	// are exactly (phi+1)*n - m.
	const n = 128
	for _, phi := range []int64{1, 7, 32} {
		m := phi * n
		out := Run(NewThreshold(), n, m, rng.New(uint64(phi)))
		holes := out.Vector.Holes(int(phi) + 1)
		if holes != (phi+1)*n-m {
			t.Errorf("phi=%d: holes %d want %d", phi, holes, (phi+1)*n-m)
		}
	}
}
