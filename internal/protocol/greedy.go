package protocol

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Greedy is greedy[d] of Azar, Broder, Karlin and Upfal [4]: each ball
// samples d bins independently and uniformly at random (with
// replacement) and is placed into a least loaded one. In the heavily
// loaded case the maximum load is m/n + ln ln n / ln d + O(1) w.h.p.
// (Berenbrink, Czumaj, Steger, Vöcking [5]).
type Greedy struct {
	d          int
	randomTies bool
}

// NewGreedy returns greedy[d] with ties broken in favor of the first
// sampled minimum. It panics if d < 1.
func NewGreedy(d int) *Greedy {
	if d < 1 {
		panic("protocol: NewGreedy with d < 1")
	}
	return &Greedy{d: d}
}

// NewGreedyRandomTies returns greedy[d] breaking ties uniformly at
// random among the sampled minima, the variant analyzed in [4].
func NewGreedyRandomTies(d int) *Greedy {
	g := NewGreedy(d)
	g.randomTies = true
	return g
}

// D returns the number of choices per ball.
func (g *Greedy) D() int { return g.d }

// Name implements Protocol.
func (g *Greedy) Name() string { return formatD("greedy", g.d) }

// Reset implements Protocol; greedy is stateless across balls.
func (g *Greedy) Reset(n int, m int64) {}

// Place implements Protocol, using exactly d random choices.
func (g *Greedy) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	n := v.N()
	best := r.Intn(n)
	bestLoad := v.Load(best)
	ties := 1
	for j := 1; j < g.d; j++ {
		c := r.Intn(n)
		l := v.Load(c)
		switch {
		case l < bestLoad:
			best, bestLoad, ties = c, l, 1
		case l == bestLoad && g.randomTies:
			// Reservoir-style uniform choice among minima. The extra
			// Intn draws are tie-breaking randomness, not bin choices,
			// so they do not count toward allocation time.
			ties++
			if r.Intn(ties) == 0 {
				best = c
			}
		}
	}
	v.Increment(best)
	return int64(g.d)
}
