// Package protocol implements the sequential balls-into-bins
// allocation protocols studied by the paper and its Table 1 baselines:
//
//   - Adaptive — the paper's new protocol (Figure 1): ball i samples
//     bins u.a.r. until one has load < i/n + 1.
//   - Threshold — Czumaj–Stemann (Figure 2): ball i samples bins u.a.r.
//     until one has load < m/n + 1.
//   - SingleChoice — the classical one-random-bin process.
//   - Greedy — greedy[d] of Azar et al.: best of d random bins.
//   - Left — left[d] of Vöcking: one bin from each of d groups,
//     ties broken towards the leftmost group.
//   - Memory — the (d,k)-memory process of Mitzenmacher, Prabhakar and
//     Shah: d fresh random bins plus the k best bins remembered from
//     the previous ball.
//   - AdaptiveNoSlack — the ablation the paper remarks on in Section 2:
//     replacing the adaptive threshold i/n + 1 by i/n turns each stage
//     into a coupon-collector process and the total allocation time
//     into Θ(m log n).
//   - FixedThreshold — accept below an arbitrary constant bound
//     (building block for tests and custom experiments).
//
// Allocation time follows the paper's accounting: the number of random
// bin choices, not wall-clock time. Every Place reports exactly how
// many choices it consumed.
//
// Each rejection-sampling protocol additionally implements FastPlacer,
// an O(1)-per-ball placement path that draws the rejection count from
// the exact Geometric sampler instead of looping (see fast.go). Run
// always uses the naive loop; RunEngine selects between the two.
package protocol

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Protocol places balls one at a time into a load vector. A Protocol
// instance carries per-run state (for example the memory protocol's
// cache) and must be Reset before each run; instances are not safe for
// concurrent use — create one per goroutine via a Factory.
type Protocol interface {
	// Name returns a short identifier such as "adaptive" or "greedy[2]".
	Name() string

	// Reset prepares the protocol for a fresh run of m balls into n
	// bins. Protocols that do not depend on n or m may ignore them.
	Reset(n int, m int64)

	// Place allocates ball number i (1-based, 1 ≤ i ≤ m) into v and
	// returns the number of random bin choices consumed.
	Place(v *loadvec.Vector, r *rng.Rand, i int64) int64
}

// Factory creates fresh protocol instances, one per concurrent run.
type Factory func() Protocol

// Outcome summarizes a completed run.
type Outcome struct {
	// Vector is the final load distribution.
	Vector *loadvec.Vector
	// Samples is the paper's "allocation time": the total number of
	// random bin choices used to place all m balls.
	Samples int64
}

// Run places m balls into n bins using p and the random stream r,
// always via the naive Place loop — it is the reference oracle the
// fast engine is validated against. Use RunEngine to select the
// engine. It panics if n <= 0 or m < 0.
func Run(p Protocol, n int, m int64, r *rng.Rand) Outcome {
	return RunWithObserver(p, n, m, r, nil)
}

// Observer is invoked after each ball is placed, with the 1-based ball
// index, the samples that ball consumed, and the current load vector.
// The observer must not modify the vector.
type Observer func(ball int64, samples int64, v *loadvec.Vector)

// RunWithObserver is Run with a per-ball callback (nil behaves as Run).
func RunWithObserver(p Protocol, n int, m int64, r *rng.Rand, obs Observer) Outcome {
	return RunWithObserverEngine(p, n, m, r, EngineNaive, obs)
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("protocol: CeilDiv with b <= 0")
	}
	return (a + b - 1) / b
}

// MaxLoadBound returns the deterministic maximum-load guarantee
// ⌈m/n⌉ + 1 shared by the threshold and adaptive protocols.
func MaxLoadBound(n int, m int64) int64 {
	return CeilDiv(m, int64(n)) + 1
}

func formatD(base string, d int) string { return fmt.Sprintf("%s[%d]", base, d) }
