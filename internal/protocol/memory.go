package protocol

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Memory is the (d,k)-memory process of Mitzenmacher, Prabhakar and
// Shah [14]: each ball chooses d bins uniformly at random plus the k
// least loaded bins remembered from the previous ball's candidate set,
// and is placed into a least loaded of the d+k. After placement the k
// least loaded candidates (with current loads) are remembered for the
// next ball. For d = k = 1 the maximum load is
// ln ln n / (2·ln Φ₂) + O(1), matching Vöcking's lower bound while
// using only one random choice per ball.
type Memory struct {
	d, k  int
	cache []int // remembered bin indices from the previous ball
	cand  []int // scratch: candidate bins for the current ball
}

// NewMemory returns the (d,k)-memory protocol. It panics if d < 1 or
// k < 0.
func NewMemory(d, k int) *Memory {
	if d < 1 {
		panic("protocol: NewMemory with d < 1")
	}
	if k < 0 {
		panic("protocol: NewMemory with k < 0")
	}
	return &Memory{d: d, k: k}
}

// Name implements Protocol.
func (m *Memory) Name() string { return fmt.Sprintf("memory[%d,%d]", m.d, m.k) }

// Reset implements Protocol, clearing the remembered bins.
func (m *Memory) Reset(n int, _ int64) {
	m.cache = m.cache[:0]
	if m.cand == nil {
		m.cand = make([]int, 0, m.d+m.k)
	}
}

// Place implements Protocol, using exactly d random choices (the
// remembered bins are free).
func (m *Memory) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	n := v.N()
	m.cand = m.cand[:0]
	for j := 0; j < m.d; j++ {
		m.cand = append(m.cand, r.Intn(n))
	}
	m.cand = append(m.cand, m.cache...)

	best := m.cand[0]
	bestLoad := v.Load(best)
	for _, c := range m.cand[1:] {
		if l := v.Load(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	v.Increment(best)

	// Remember the k least loaded candidates at their post-placement
	// loads. The candidate set is tiny (d+k), so an in-place insertion
	// sort avoids the allocations a sort.Slice closure would cost in
	// this per-ball hot path.
	if m.k > 0 {
		for i := 1; i < len(m.cand); i++ {
			c := m.cand[i]
			l := v.Load(c)
			j := i - 1
			for j >= 0 && v.Load(m.cand[j]) > l {
				m.cand[j+1] = m.cand[j]
				j--
			}
			m.cand[j+1] = c
		}
		keep := m.k
		if keep > len(m.cand) {
			keep = len(m.cand)
		}
		m.cache = append(m.cache[:0], m.cand[:keep]...)
	}
	return int64(m.d)
}
