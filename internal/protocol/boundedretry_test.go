package protocol

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

func TestBoundedRetryOneIsSingleChoice(t *testing.T) {
	// With R = 1 every ball lands in its single sample (qualified or
	// not): decisions coincide exactly with single-choice on the same
	// stream.
	const n, m = 64, 640
	a := Run(NewSingleChoice(), n, m, rng.New(3))
	b := Run(NewBoundedRetry(1), n, m, rng.New(3))
	if a.Samples != b.Samples {
		t.Fatalf("samples differ: %d vs %d", a.Samples, b.Samples)
	}
	la, lb := a.Vector.Loads(), b.Vector.Loads()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("loads differ at bin %d", i)
		}
	}
}

func TestBoundedRetryLargeIsThreshold(t *testing.T) {
	// With an effectively unlimited cap the fallback never fires, so
	// decisions coincide exactly with the threshold protocol.
	const n, m = 64, 1280
	a := Run(NewThreshold(), n, m, rng.New(5))
	b := Run(NewBoundedRetry(1<<20), n, m, rng.New(5))
	if a.Samples != b.Samples {
		t.Fatalf("samples differ: %d vs %d", a.Samples, b.Samples)
	}
	la, lb := a.Vector.Loads(), b.Vector.Loads()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("loads differ at bin %d", i)
		}
	}
}

func TestBoundedRetryPerBallCap(t *testing.T) {
	// The defining guarantee: no ball ever uses more than R samples.
	const n, m, retries = 32, 640, 4
	var worst int64
	out := RunWithObserver(NewBoundedRetry(retries), n, m, rng.New(7),
		func(_, samples int64, _ *loadvec.Vector) {
			if samples > worst {
				worst = samples
			}
		})
	if worst > retries {
		t.Fatalf("a ball used %d samples, cap is %d", worst, retries)
	}
	if out.Samples > retries*m {
		t.Fatalf("total samples %d exceed R*m", out.Samples)
	}
	if out.Vector.Balls() != m {
		t.Fatalf("placed %d", out.Vector.Balls())
	}
}

func TestBoundedRetryMaxLoadImprovesWithR(t *testing.T) {
	// The Czumaj–Stemann tradeoff: more retries, better max load.
	// Compare means over replicates at heavy load; R=1 (single) must
	// be clearly worse than R=8, which approaches the ceil(m/n)+1
	// guarantee.
	const n = 1024
	m := int64(64 * n)
	const reps = 3
	sum := func(retries int) int {
		total := 0
		for rep := 0; rep < reps; rep++ {
			total += Run(NewBoundedRetry(retries), n, m,
				rng.New(uint64(600+rep))).Vector.MaxLoad()
		}
		return total
	}
	r1, r8 := sum(1), sum(8)
	if r8 >= r1 {
		t.Fatalf("R=8 mean max load %d not below R=1 %d", r8/reps, r1/reps)
	}
	bound := int(MaxLoadBound(n, m))
	// With 8 retries at phi=64 the fallback almost never fires: the
	// guarantee should hold with a +1 safety margin.
	if got := sum(8) / reps; got > bound+1 {
		t.Fatalf("R=8 max load %d far above guarantee %d", got, bound)
	}
}

func TestBoundedRetryFallbackViolatesBoundRarely(t *testing.T) {
	// With R=2 at heavy load the fallback fires and the hard guarantee
	// can be exceeded — that is the point of the tradeoff. Verify the
	// overshoot stays moderate (greedy-among-R fallback, not a blind
	// drop).
	const n = 1024
	m := int64(64 * n)
	out := Run(NewBoundedRetry(2), n, m, rng.New(11))
	bound := int(MaxLoadBound(n, m))
	if out.Vector.MaxLoad() > bound+8 {
		t.Fatalf("R=2 overshoot too large: %d vs bound %d",
			out.Vector.MaxLoad(), bound)
	}
}

func TestBoundedRetryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBoundedRetry(0) did not panic")
		}
	}()
	NewBoundedRetry(0)
}

func TestBoundedRetryName(t *testing.T) {
	if got := NewBoundedRetry(4).Name(); got != "threshold-retry[4]" {
		t.Fatalf("name %q", got)
	}
	if got := NewBoundedRetry(4).Retries(); got != 4 {
		t.Fatalf("retries %d", got)
	}
}
