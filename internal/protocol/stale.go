package protocol

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// This file studies the robustness of the adaptive protocol's one
// informational assumption — "each ball must know how many balls have
// been already placed" (Section 1.1) — under two relaxed counter
// models. The punchline, verified exactly by the tests:
//
//   - Synchronizing the counter once per stage (every n balls, at the
//     stage start) reproduces the adaptive protocol DECISION FOR
//     DECISION: the integer acceptance bound ⌊i/n + 1⌋ only changes at
//     stage boundaries, so intra-stage staleness is invisible.
//   - A counter lagging a full stage (L = n) turns the acceptance rule
//     n·(load−1) < i−n into n·load < i — which is precisely the
//     AdaptiveNoSlack ablation, i.e. Θ(m·log n) coupon-collector
//     behaviour. The "+1" slack in the threshold is exactly one stage
//     of counter slack.
//
// In other words: adaptive tolerates any counter error below n balls
// at (almost) no cost, and the cost cliff at one full stage is the
// paper's own no-slack remark in disguise.

// StaleAdaptive is the adaptive protocol with a counter that is
// synchronized every SyncEvery balls (at balls 1, B+1, 2B+1, ...); in
// between, the last synchronized value is used in the acceptance
// bound. The stale count never exceeds the true count, so acceptance
// is never easier and the ⌈m/n⌉+1 maximum-load guarantee is
// preserved. SyncEvery must be at most n (checked at Reset): beyond
// that the stale bound can deadlock.
type StaleAdaptive struct {
	n         int64
	syncEvery int64
}

// NewStaleAdaptive returns the stale-counter adaptive protocol.
// It panics if syncEvery < 1.
func NewStaleAdaptive(syncEvery int64) *StaleAdaptive {
	if syncEvery < 1 {
		panic("protocol: NewStaleAdaptive with syncEvery < 1")
	}
	return &StaleAdaptive{syncEvery: syncEvery}
}

// Name implements Protocol.
func (s *StaleAdaptive) Name() string {
	return fmt.Sprintf("adaptive-stale[%d]", s.syncEvery)
}

// Reset implements Protocol. It panics if syncEvery > n.
func (s *StaleAdaptive) Reset(n int, _ int64) {
	if s.syncEvery > int64(n) {
		panic(fmt.Sprintf("protocol: stale adaptive needs syncEvery <= n (%d > %d)",
			s.syncEvery, n))
	}
	s.n = int64(n)
}

// Place implements Protocol. The stale count for ball i is the last
// synchronization point ((i-1)/B)*B + 1.
func (s *StaleAdaptive) Place(v *loadvec.Vector, r *rng.Rand, i int64) int64 {
	known := ((i-1)/s.syncEvery)*s.syncEvery + 1
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if s.n*int64(v.Load(j)-1) < known {
			v.Increment(j)
			return samples
		}
	}
}

// LaggedAdaptive is the adaptive protocol with a counter that runs a
// fixed Lag balls behind the truth: ball i uses max(1, i−Lag) in its
// acceptance bound. Lag = 0 is plain adaptive; Lag = n is (from ball
// n+1 onward) exactly the AdaptiveNoSlack ablation. Lag must be at
// most n (checked at Reset): two stages of lag deadlocks
// deterministically once every bin reaches the stale bound.
type LaggedAdaptive struct {
	n   int64
	lag int64
}

// NewLaggedAdaptive returns the lagged-counter adaptive protocol.
// It panics if lag < 0.
func NewLaggedAdaptive(lag int64) *LaggedAdaptive {
	if lag < 0 {
		panic("protocol: NewLaggedAdaptive with lag < 0")
	}
	return &LaggedAdaptive{lag: lag}
}

// Name implements Protocol.
func (l *LaggedAdaptive) Name() string {
	return fmt.Sprintf("adaptive-lag[%d]", l.lag)
}

// Reset implements Protocol. It panics if lag > n.
func (l *LaggedAdaptive) Reset(n int, _ int64) {
	if l.lag > int64(n) {
		panic(fmt.Sprintf("protocol: lagged adaptive needs lag <= n (%d > %d)",
			l.lag, n))
	}
	l.n = int64(n)
}

// Place implements Protocol.
func (l *LaggedAdaptive) Place(v *loadvec.Vector, r *rng.Rand, i int64) int64 {
	known := i - l.lag
	if known < 1 {
		known = 1
	}
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if l.n*int64(v.Load(j)-1) < known {
			v.Increment(j)
			return samples
		}
	}
}
