package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// allFactories enumerates every protocol for cross-cutting invariants.
// Protocols that need n >= d are guarded by the callers.
func allFactories() map[string]Factory {
	return map[string]Factory{
		"single":           func() Protocol { return NewSingleChoice() },
		"greedy[2]":        func() Protocol { return NewGreedy(2) },
		"greedy[3]":        func() Protocol { return NewGreedy(3) },
		"greedy[2]-random": func() Protocol { return NewGreedyRandomTies(2) },
		"left[2]":          func() Protocol { return NewLeft(2) },
		"left[4]":          func() Protocol { return NewLeft(4) },
		"memory[1,1]":      func() Protocol { return NewMemory(1, 1) },
		"memory[2,2]":      func() Protocol { return NewMemory(2, 2) },
		"threshold":        func() Protocol { return NewThreshold() },
		"adaptive":         func() Protocol { return NewAdaptive() },
		"adaptive-noslack": func() Protocol { return NewAdaptiveNoSlack() },
	}
}

func TestRunPlacesAllBalls(t *testing.T) {
	const n, m = 64, 640
	for name, f := range allFactories() {
		p := f()
		out := Run(p, n, m, rng.New(1))
		if out.Vector.Balls() != m {
			t.Errorf("%s: placed %d balls, want %d", name, out.Vector.Balls(), m)
		}
		if out.Samples < m {
			t.Errorf("%s: samples %d < m", name, out.Samples)
		}
		if err := out.Vector.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	const n, m = 50, 500
	for name, f := range allFactories() {
		a := Run(f(), n, m, rng.New(7))
		b := Run(f(), n, m, rng.New(7))
		if a.Samples != b.Samples {
			t.Errorf("%s: samples differ %d vs %d", name, a.Samples, b.Samples)
		}
		la, lb := a.Vector.Loads(), b.Vector.Loads()
		for i := range la {
			if la[i] != lb[i] {
				t.Errorf("%s: loads differ at bin %d", name, i)
				break
			}
		}
	}
}

func TestProtocolReusableAfterReset(t *testing.T) {
	// Running the same instance twice with the same seed must agree:
	// Reset must clear all per-run state (this catches stale memory
	// caches and stale thresholds).
	for name, f := range allFactories() {
		p := f()
		a := Run(p, 32, 320, rng.New(3))
		b := Run(p, 32, 320, rng.New(3))
		if a.Samples != b.Samples {
			t.Errorf("%s: instance reuse changed samples: %d vs %d",
				name, a.Samples, b.Samples)
		}
	}
}

func TestRunZeroBalls(t *testing.T) {
	out := Run(NewAdaptive(), 10, 0, rng.New(1))
	if out.Samples != 0 || out.Vector.Balls() != 0 {
		t.Fatal("m=0 run should be empty")
	}
}

func TestRunPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0": func() { Run(NewAdaptive(), 0, 1, rng.New(1)) },
		"m<0": func() { Run(NewAdaptive(), 1, -1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSampleAccounting(t *testing.T) {
	const n, m = 128, 1024
	if out := Run(NewSingleChoice(), n, m, rng.New(2)); out.Samples != m {
		t.Errorf("single: samples %d want %d", out.Samples, m)
	}
	if out := Run(NewGreedy(3), n, m, rng.New(2)); out.Samples != 3*m {
		t.Errorf("greedy[3]: samples %d want %d", out.Samples, 3*m)
	}
	if out := Run(NewLeft(2), n, m, rng.New(2)); out.Samples != 2*m {
		t.Errorf("left[2]: samples %d want %d", out.Samples, 2*m)
	}
	if out := Run(NewMemory(1, 1), n, m, rng.New(2)); out.Samples != m {
		t.Errorf("memory[1,1]: samples %d want %d (memory choices are free)",
			out.Samples, m)
	}
}

func TestMaxLoadGuaranteeProperty(t *testing.T) {
	// The deterministic guarantee of both headline protocols:
	// max load <= ceil(m/n) + 1, for arbitrary n and m.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 1 + int(nRaw%128)
		m := int64(mRaw % 2048)
		bound := int(MaxLoadBound(n, m))
		for _, fac := range []Factory{
			func() Protocol { return NewThreshold() },
			func() Protocol { return NewAdaptive() },
		} {
			out := Run(fac(), n, m, rng.New(seed))
			if out.Vector.MaxLoad() > bound {
				t.Logf("n=%d m=%d: max %d > bound %d", n, m, out.Vector.MaxLoad(), bound)
				return false
			}
			if err := out.Vector.Validate(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptivePrefixInvariant(t *testing.T) {
	// Adaptive guarantees max load <= ceil(i/n) + 1 after EVERY ball i,
	// not only at the end — the online version of the guarantee.
	const n, m = 37, 700
	violated := false
	Run(NewAdaptive(), n, m, rng.New(5))
	RunWithObserver(NewAdaptive(), n, m, rng.New(5),
		func(ball, _ int64, v *loadvec.Vector) {
			if int64(v.MaxLoad()) > CeilDiv(ball, n)+1 {
				violated = true
			}
		})
	if violated {
		t.Fatal("adaptive exceeded ceil(i/n)+1 at some prefix")
	}
}

func TestThresholdNeverExceedsCapacityDuringRun(t *testing.T) {
	const n, m = 29, 400
	cap := int(MaxLoadBound(n, m))
	RunWithObserver(NewThreshold(), n, m, rng.New(6),
		func(_, _ int64, v *loadvec.Vector) {
			if v.MaxLoad() > cap {
				t.Fatalf("threshold exceeded capacity %d mid-run", cap)
			}
		})
}

func TestGreedyBeatsSingleChoice(t *testing.T) {
	// The power of two choices: for m = n the two-choice maximum load
	// O(log log n) is far below single-choice's log n/log log n.
	// Compare means over a few replicates at n = 4096.
	const n = 4096
	const reps = 5
	var sumSingle, sumGreedy int
	for rep := 0; rep < reps; rep++ {
		seed := uint64(100 + rep)
		sumSingle += Run(NewSingleChoice(), n, n, rng.New(seed)).Vector.MaxLoad()
		sumGreedy += Run(NewGreedy(2), n, n, rng.New(seed)).Vector.MaxLoad()
	}
	if sumGreedy >= sumSingle {
		t.Fatalf("greedy[2] mean max load %d/%d not below single %d/%d",
			sumGreedy, reps, sumSingle, reps)
	}
}

func TestGreedyMaxLoadSmall(t *testing.T) {
	const n = 4096
	out := Run(NewGreedy(2), n, n, rng.New(42))
	// ln ln n / ln 2 + O(1) ~ 3; anything above 8 indicates a bug.
	if out.Vector.MaxLoad() > 8 {
		t.Fatalf("greedy[2] max load %d implausibly large", out.Vector.MaxLoad())
	}
}

func TestLeftAtMostGreedy(t *testing.T) {
	// Vöcking's Always-Go-Left is never substantially worse than
	// greedy[d]; compare means over replicates with slack 1.
	const n = 4096
	const reps = 5
	var sumLeft, sumGreedy int
	for rep := 0; rep < reps; rep++ {
		seed := uint64(200 + rep)
		sumLeft += Run(NewLeft(2), n, n, rng.New(seed)).Vector.MaxLoad()
		sumGreedy += Run(NewGreedy(2), n, n, rng.New(seed)).Vector.MaxLoad()
	}
	if sumLeft > sumGreedy+reps {
		t.Fatalf("left[2] mean max load %d/%d above greedy[2] %d/%d + 1",
			sumLeft, reps, sumGreedy, reps)
	}
}

func TestMemoryMatchesTwoChoiceQuality(t *testing.T) {
	// Mitzenmacher–Prabhakar–Shah: memory(1,1) achieves two-choice
	// quality with one random choice per ball.
	const n = 4096
	out := Run(NewMemory(1, 1), n, n, rng.New(9))
	if out.Vector.MaxLoad() > 8 {
		t.Fatalf("memory[1,1] max load %d implausibly large", out.Vector.MaxLoad())
	}
	if out.Samples != n {
		t.Fatalf("memory[1,1] samples %d want %d", out.Samples, n)
	}
}

func TestLeftGroupBounds(t *testing.T) {
	l := NewLeft(3)
	l.Reset(10, 0)
	covered := make([]int, 10)
	for g := 0; g < 3; g++ {
		lo, hi := l.groupBounds(g)
		if lo >= hi {
			t.Fatalf("group %d empty: [%d,%d)", g, lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("bin %d covered %d times", i, c)
		}
	}
}

func TestLeftPlacesInCorrectGroups(t *testing.T) {
	// With d=2 and loads forced equal, Always-Go-Left must always pick
	// the left group.
	l := NewLeft(2)
	l.Reset(8, 8)
	v := loadvec.New(8)
	r := rng.New(3)
	for i := int64(1); i <= 4; i++ {
		l.Place(v, r, i)
	}
	var right int
	for i := 4; i < 8; i++ {
		right += v.Load(i)
	}
	// Ties at load 0 always go left, and left-group loads stay <= right
	// +1 thereafter; with only 4 balls the right group can receive a
	// ball only when the left sample is strictly more loaded.
	if right > 2 {
		t.Fatalf("right group received %d of 4 balls under Always-Go-Left", right)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"greedy d=0":       func() { NewGreedy(0) },
		"left d=1":         func() { NewLeft(1) },
		"memory d=0":       func() { NewMemory(0, 1) },
		"memory k<0":       func() { NewMemory(1, -1) },
		"fixed bound=0":    func() { NewFixedThreshold(0) },
		"left n<d":         func() { Run(NewLeft(4), 3, 3, rng.New(1)) },
		"fixed infeasible": func() { Run(NewFixedThreshold(1), 4, 5, rng.New(1)) },
		"ceilDiv b=0":      func() { CeilDiv(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFixedThresholdRespectsBound(t *testing.T) {
	const n, m, bound = 16, 48, 4
	out := Run(NewFixedThreshold(bound), n, m, rng.New(11))
	if out.Vector.MaxLoad() > bound {
		t.Fatalf("fixed threshold exceeded bound: %d > %d", out.Vector.MaxLoad(), bound)
	}
	if out.Vector.Balls() != m {
		t.Fatalf("placed %d want %d", out.Vector.Balls(), m)
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Protocol{
		"single":           NewSingleChoice(),
		"greedy[2]":        NewGreedy(2),
		"left[3]":          NewLeft(3),
		"memory[1,1]":      NewMemory(1, 1),
		"threshold":        NewThreshold(),
		"adaptive":         NewAdaptive(),
		"adaptive-noslack": NewAdaptiveNoSlack(),
		"fixed[<5]":        NewFixedThreshold(5),
	}
	for want, p := range cases {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q want %q", got, want)
		}
	}
}

func TestMaxLoadBound(t *testing.T) {
	cases := []struct {
		n    int
		m    int64
		want int64
	}{
		{10, 0, 1}, {10, 10, 2}, {10, 11, 3}, {10, 100, 11}, {3, 7, 4},
	}
	for _, c := range cases {
		if got := MaxLoadBound(c.n, c.m); got != c.want {
			t.Errorf("MaxLoadBound(%d,%d) = %d want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestGreedyRandomTiesStillCorrect(t *testing.T) {
	const n, m = 256, 2560
	out := Run(NewGreedyRandomTies(2), n, m, rng.New(12))
	if out.Vector.Balls() != m || out.Samples != 2*m {
		t.Fatalf("random-tie greedy bookkeeping wrong: balls=%d samples=%d",
			out.Vector.Balls(), out.Samples)
	}
}

func TestObserverSeesEveryBall(t *testing.T) {
	const n, m = 8, 100
	var calls int64
	var sampleSum int64
	out := RunWithObserver(NewAdaptive(), n, m, rng.New(13),
		func(ball, samples int64, v *loadvec.Vector) {
			calls++
			sampleSum += samples
			if ball != calls {
				t.Fatalf("observer ball %d at call %d", ball, calls)
			}
		})
	if calls != m {
		t.Fatalf("observer called %d times want %d", calls, m)
	}
	if sampleSum != out.Samples {
		t.Fatalf("observer sample sum %d != outcome %d", sampleSum, out.Samples)
	}
}
