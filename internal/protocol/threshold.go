package protocol

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Threshold is the protocol of Czumaj and Stemann [7] (the paper's
// Figure 2): every ball repeatedly samples bins uniformly at random
// until it finds one with load strictly less than m/n + 1, and is
// placed there. The maximum load is at most ⌈m/n⌉ + 1 by construction;
// Theorem 4.1 shows the allocation time is m + O(m^{3/4}·n^{1/4})
// w.h.p. and in expectation. The number of balls m must be known in
// advance — the contrast with Adaptive.
type Threshold struct {
	m int64
	n int64
}

// NewThreshold returns the threshold protocol.
func NewThreshold() *Threshold { return &Threshold{} }

// Name implements Protocol.
func (t *Threshold) Name() string { return "threshold" }

// Reset implements Protocol, capturing m and n for the acceptance test.
func (t *Threshold) Reset(n int, m int64) {
	t.n = int64(n)
	t.m = m
}

// Place implements Protocol. The acceptance test
// load < m/n + 1 is evaluated in exact integer arithmetic as
// n·(load−1) < m.
func (t *Threshold) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if t.n*int64(v.Load(j)-1) < t.m {
			v.Increment(j)
			return samples
		}
	}
}

// FixedThreshold accepts any bin with load strictly below Bound,
// sampling until it finds one. It generalizes Threshold to arbitrary
// constant bounds and is the building block for capacity experiments.
// The caller must ensure the bound is feasible (n·Bound ≥ m), otherwise
// Place loops forever; Reset panics on infeasible bounds as a guard.
type FixedThreshold struct {
	Bound int
}

// NewFixedThreshold returns a protocol accepting loads < bound.
// It panics if bound < 1.
func NewFixedThreshold(bound int) *FixedThreshold {
	if bound < 1 {
		panic("protocol: NewFixedThreshold with bound < 1")
	}
	return &FixedThreshold{Bound: bound}
}

// Name implements Protocol.
func (f *FixedThreshold) Name() string { return fmt.Sprintf("fixed[<%d]", f.Bound) }

// Reset implements Protocol and panics if the bound cannot accommodate
// all m balls.
func (f *FixedThreshold) Reset(n int, m int64) {
	if int64(n)*int64(f.Bound) < m {
		panic(fmt.Sprintf("protocol: fixed threshold %d infeasible for n=%d m=%d",
			f.Bound, n, m))
	}
}

// Place implements Protocol.
func (f *FixedThreshold) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if v.Load(j) < f.Bound {
			v.Increment(j)
			return samples
		}
	}
}
