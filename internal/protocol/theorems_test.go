package protocol

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// These tests validate the paper's theorems and lemmas empirically at
// laptop scale. Constants are deliberately generous: they verify the
// asymptotic SHAPE each statement claims, and would catch regressions
// that break the protocols, without flaking on simulation noise.

func TestTheorem31AdaptiveLinearTime(t *testing.T) {
	// Theorem 3.1: E[allocation time of adaptive] = O(m). The observed
	// constant in the paper's experiments is ~1.1–1.3; assert < 2 for
	// every phi, independent of how heavily loaded the system is.
	const n = 2000
	for _, phi := range []int64{1, 4, 16, 64} {
		m := phi * n
		var total int64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			total += Run(NewAdaptive(), n, m, rng.New(uint64(40+rep))).Samples
		}
		ratio := float64(total) / float64(reps) / float64(m)
		if ratio > 2.0 {
			t.Errorf("phi=%d: adaptive time/m = %.3f, want O(1) (<2)", phi, ratio)
		}
		if ratio < 1.0 {
			t.Errorf("phi=%d: adaptive time/m = %.3f < 1, impossible", phi, ratio)
		}
	}
}

func TestTheorem41ThresholdOverhead(t *testing.T) {
	// Theorem 4.1: allocation time of threshold is m + O(m^{3/4}n^{1/4})
	// w.h.p. Check the normalized overhead (T - m)/(m^{3/4} n^{1/4})
	// stays bounded by a small constant across the sweep.
	const n = 2000
	for _, phi := range []int64{4, 16, 64} {
		m := phi * n
		scale := math.Pow(float64(m), 0.75) * math.Pow(float64(n), 0.25)
		var worst float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			out := Run(NewThreshold(), n, m, rng.New(uint64(50+rep)))
			overhead := float64(out.Samples-m) / scale
			if overhead > worst {
				worst = overhead
			}
			if out.Samples < m {
				t.Fatalf("threshold used fewer samples than balls")
			}
		}
		if worst > 5 {
			t.Errorf("phi=%d: normalized threshold overhead %.3f, want O(1) (<5)",
				phi, worst)
		}
	}
}

func TestCorollary35AdaptiveSmoothness(t *testing.T) {
	// Corollary 3.5: for adaptive, E[Psi] = O(n), E[Phi] = O(n), and
	// the max-min gap is O(log n) w.h.p.
	for _, n := range []int{256, 1024, 4096} {
		m := int64(32 * n)
		out := Run(NewAdaptive(), n, m, rng.New(uint64(60+n)))
		v := out.Vector
		psiPerBin := v.QuadraticPotential() / float64(n)
		phiPerBin := v.ExponentialPotential(loadvec.DefaultEpsilon) / float64(n)
		gapBudget := 3*math.Log2(float64(n)) + 10
		if psiPerBin > 20 {
			t.Errorf("n=%d: Psi/n = %.2f, want O(1)", n, psiPerBin)
		}
		if phiPerBin > 20 {
			t.Errorf("n=%d: Phi/n = %.2f, want O(1)", n, phiPerBin)
		}
		if g := float64(v.Gap()); g > gapBudget {
			t.Errorf("n=%d: gap %v exceeds O(log n) budget %.1f", n, g, gapBudget)
		}
	}
}

func TestLemma42ThresholdRoughness(t *testing.T) {
	// Lemma 4.2: for threshold with m = n², w.h.p.
	// (1) Psi >= Omega(n^{9/8}), (2) gap >= Omega(n^{1/8}),
	// (3) Phi = 2^{Omega(n^{1/8})} — i.e. the final distribution is far
	// from smooth, in sharp contrast to adaptive (Corollary 3.5).
	for _, n := range []int{128, 256} {
		m := int64(n) * int64(n)
		out := Run(NewThreshold(), n, m, rng.New(uint64(70+n)))
		v := out.Vector
		psi := v.QuadraticPotential()
		gap := float64(v.Gap())
		minPsi := math.Pow(float64(n), 9.0/8.0) / 2
		minGap := math.Pow(float64(n), 1.0/8.0)
		if psi < minPsi {
			t.Errorf("n=%d: threshold Psi %.1f below n^{9/8}/2 = %.1f", n, psi, minPsi)
		}
		if gap < minGap {
			t.Errorf("n=%d: threshold gap %.0f below n^{1/8} = %.2f", n, gap, minGap)
		}
		// Statement (3) is, as the paper notes, an immediate consequence
		// of (2): since max load <= t/n + 1, the minimum-load bin alone
		// contributes Phi >= (1+eps)^{gap+1}, which is 2^{Omega(n^{1/8})}
		// once gap = Omega(n^{1/8}). At laptop scale (1+eps)^gap is near
		// 1, so we verify the implication itself rather than an absolute
		// magnitude.
		phi := v.ExponentialPotential(loadvec.DefaultEpsilon)
		if want := math.Pow(1+loadvec.DefaultEpsilon, gap+1); phi < want {
			t.Errorf("n=%d: Phi %.2f below single-bin bound (1+eps)^{gap+1} = %.2f",
				n, phi, want)
		}
	}
}

func TestSmoothnessContrastAdaptiveVsThreshold(t *testing.T) {
	// The headline comparison: at m = n², adaptive's quadratic
	// potential is dramatically smaller than threshold's.
	const n = 128
	m := int64(n) * int64(n)
	psiA := Run(NewAdaptive(), n, m, rng.New(81)).Vector.QuadraticPotential()
	psiT := Run(NewThreshold(), n, m, rng.New(81)).Vector.QuadraticPotential()
	if psiA*4 > psiT {
		t.Fatalf("adaptive Psi %.1f not well below threshold Psi %.1f", psiA, psiT)
	}
}

func TestLemma32UnderloadedBinCatchUp(t *testing.T) {
	// Lemma 3.2: fix a load vector at the end of stage tau with an
	// underloaded bin i (load <= tau+2-C1). During stage tau+1,
	// P(Y_i >= k) >= P(Poi(199/198) >= k) - 2e-10 for 0 <= k <= C1.
	// We validate with statistical slack at n = 1000.
	const (
		n    = 1000
		tau  = 8
		c1   = 10
		reps = 1500
	)
	// Construct the stage-tau load vector: bin 0 underloaded at
	// tau+2-C1 = 0; bins 1..n-1 at load tau; the tau leftover balls
	// bump bins 1..tau to tau+1 so that exactly tau*n balls are placed.
	build := func() *loadvec.Vector {
		v := loadvec.New(n)
		for b := 1; b < n; b++ {
			for l := 0; l < tau; l++ {
				v.Increment(b)
			}
		}
		for b := 1; b <= tau; b++ {
			v.Increment(b)
		}
		return v
	}
	proto := NewAdaptive()
	counts := make([]int, c1+2) // counts[k] = #reps with Y >= k
	for rep := 0; rep < reps; rep++ {
		v := build()
		if v.Balls() != int64(tau)*n {
			t.Fatalf("stage setup wrong: %d balls", v.Balls())
		}
		proto.Reset(n, int64(tau+1)*n)
		r := rng.New(uint64(9000 + rep))
		before := v.Load(0)
		for i := int64(tau)*n + 1; i <= int64(tau+1)*n; i++ {
			proto.Place(v, r, i)
		}
		y := v.Load(0) - before
		for k := 0; k <= c1+1 && k <= y; k++ {
			counts[k]++
		}
	}
	lambda := 199.0 / 198.0
	for k := 0; k <= 4; k++ {
		empirical := float64(counts[k]) / reps
		want := dist.PoissonTailGE(lambda, k)
		// 4-sigma statistical slack on the empirical frequency.
		slack := 4 * math.Sqrt(want*(1-want)/reps+1e-9)
		if empirical < want-slack-2e-10 {
			t.Errorf("k=%d: P(Y>=k) = %.4f below Poisson bound %.4f - %.4f",
				k, empirical, want, slack)
		}
	}
}

func TestAblationNoSlackCouponCollector(t *testing.T) {
	// Section 2 remark: adaptive with threshold i/n instead of i/n+1
	// costs Theta(m log n). The ratio to plain adaptive must grow with
	// n and be large already at n=1024.
	ratio := func(n int) float64 {
		m := int64(4 * n)
		a := Run(NewAdaptive(), n, m, rng.New(uint64(90+n))).Samples
		b := Run(NewAdaptiveNoSlack(), n, m, rng.New(uint64(90+n))).Samples
		return float64(b) / float64(a)
	}
	r64 := ratio(64)
	r1024 := ratio(1024)
	if r1024 < 3 {
		t.Errorf("no-slack ratio at n=1024 is %.2f, expected >= 3 (Theta(log n))", r1024)
	}
	if r1024 <= r64 {
		t.Errorf("no-slack penalty did not grow: n=64 ratio %.2f, n=1024 ratio %.2f",
			r64, r1024)
	}
}

func TestThresholdRuntimeConvergesToM(t *testing.T) {
	// Figure 3(a)'s observation: threshold's runtime/m approaches 1 as
	// m grows with n fixed (the overhead term m^{3/4}n^{1/4} is o(m)).
	const n = 500
	small := Run(NewThreshold(), n, 2*n, rng.New(101))
	big := Run(NewThreshold(), n, 200*n, rng.New(101))
	rSmall := float64(small.Samples) / float64(2*n)
	rBig := float64(big.Samples) / float64(200*n)
	if rBig >= rSmall {
		t.Errorf("threshold time/m did not shrink: %.4f -> %.4f", rSmall, rBig)
	}
	if rBig > 1.1 {
		t.Errorf("threshold time/m = %.4f at phi=200, expected close to 1", rBig)
	}
}

func BenchmarkAdaptivePlace(b *testing.B) {
	const n = 1 << 14
	r := rng.New(1)
	p := NewAdaptive()
	p.Reset(n, int64(b.N))
	v := loadvec.New(n)
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		p.Place(v, r, int64(i))
	}
}

func BenchmarkThresholdPlace(b *testing.B) {
	const n = 1 << 14
	r := rng.New(1)
	p := NewThreshold()
	p.Reset(n, int64(b.N))
	v := loadvec.New(n)
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		p.Place(v, r, int64(i))
	}
}

func BenchmarkGreedy2Place(b *testing.B) {
	const n = 1 << 14
	r := rng.New(1)
	p := NewGreedy(2)
	p.Reset(n, int64(b.N))
	v := loadvec.New(n)
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		p.Place(v, r, int64(i))
	}
}
