package protocol

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestOnePlusBetaEdges(t *testing.T) {
	const n, m = 256, 2560
	// beta = 0 is exactly single-choice; beta = 1 exactly greedy[2]
	// (modulo the coin flips, which for beta 0/1 are still drawn but
	// deterministic in effect — so compare distributions, not streams).
	zero := Run(NewOnePlusBeta(0), n, m, rng.New(1))
	if zero.Samples != m {
		t.Fatalf("beta=0 used %d samples, want m", zero.Samples)
	}
	one := Run(NewOnePlusBeta(1), n, m, rng.New(1))
	if one.Samples != 2*m {
		t.Fatalf("beta=1 used %d samples, want 2m", one.Samples)
	}
}

func TestOnePlusBetaSampleCount(t *testing.T) {
	// Expected samples per ball is 1 + beta.
	const n, m = 128, 100000
	for _, beta := range []float64{0.25, 0.5, 0.75} {
		out := Run(NewOnePlusBeta(beta), n, m, rng.New(7))
		perBall := float64(out.Samples) / float64(m)
		if math.Abs(perBall-(1+beta)) > 0.02 {
			t.Errorf("beta=%v: %.4f samples/ball, want %.2f", beta, perBall, 1+beta)
		}
	}
}

func TestOnePlusBetaGapInterpolates(t *testing.T) {
	// In the heavily loaded regime the gap decreases as beta grows:
	// single-choice's Theta(sqrt(m log n / n)) shrinks toward
	// two-choice's Theta(log n). Compare beta = 0.1 vs 0.9 means.
	const n = 512
	const m = int64(200 * n)
	const reps = 3
	var lo, hi float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(400 + rep)
		hi += float64(Run(NewOnePlusBeta(0.1), n, m, rng.New(seed)).Vector.Gap())
		lo += float64(Run(NewOnePlusBeta(0.9), n, m, rng.New(seed)).Vector.Gap())
	}
	if lo >= hi {
		t.Fatalf("gap did not shrink with beta: beta=0.9 gap %v >= beta=0.1 gap %v",
			lo/reps, hi/reps)
	}
}

func TestOnePlusBetaGapIndependentOfM(t *testing.T) {
	// Peres–Talwar–Wieder: for fixed beta the gap is Theta(log n / beta)
	// independent of m. Check gap does not blow up as m grows 16x.
	const n = 512
	const beta = 0.5
	small := Run(NewOnePlusBeta(beta), n, int64(50*n), rng.New(5)).Vector.Gap()
	big := Run(NewOnePlusBeta(beta), n, int64(800*n), rng.New(5)).Vector.Gap()
	if float64(big) > 3*float64(small)+10 {
		t.Fatalf("gap grew with m: %d -> %d", small, big)
	}
}

func TestOnePlusBetaPanics(t *testing.T) {
	for _, beta := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("beta=%v did not panic", beta)
				}
			}()
			NewOnePlusBeta(beta)
		}()
	}
}

func TestStaleAdaptiveMaxLoadGuarantee(t *testing.T) {
	// Stale counters only make acceptance harder: the ceil(m/n)+1
	// guarantee survives any staleness.
	const n = 100
	for _, sync := range []int64{1, 7, 50, 100} {
		for _, m := range []int64{0, 50, 1000, 3333} {
			out := Run(NewStaleAdaptive(sync), n, m, rng.New(uint64(sync*1000)+uint64(m)))
			if out.Vector.MaxLoad() > int(MaxLoadBound(n, m)) {
				t.Errorf("sync=%d m=%d: max %d > bound", sync, m, out.Vector.MaxLoad())
			}
			if out.Vector.Balls() != m {
				t.Errorf("sync=%d m=%d: placed %d", sync, m, out.Vector.Balls())
			}
		}
	}
}

func TestStaleAdaptiveStageSyncIsExactlyAdaptive(t *testing.T) {
	// The headline robustness fact: synchronizing the counter once per
	// stage (B = n) — and, trivially, every ball (B = 1) — reproduces
	// adaptive decision for decision, because the integer acceptance
	// bound only changes at stage boundaries.
	const n, m = 64, 640
	a := Run(NewAdaptive(), n, m, rng.New(9))
	for _, sync := range []int64{1, n} {
		s := Run(NewStaleAdaptive(sync), n, m, rng.New(9))
		if a.Samples != s.Samples {
			t.Fatalf("sync=%d differs from adaptive: %d vs %d samples",
				sync, s.Samples, a.Samples)
		}
		la, ls := a.Vector.Loads(), s.Vector.Loads()
		for i := range la {
			if la[i] != ls[i] {
				t.Fatalf("sync=%d: loads differ at bin %d", sync, i)
			}
		}
	}
}

func TestStaleAdaptiveIntermediateSyncNearlyFree(t *testing.T) {
	// Sync periods that do not align with stages (e.g. B=7) perturb
	// decisions only in small boundary windows: the cost stays within
	// a few percent of adaptive's.
	const n = 1000
	const m = int64(32 * n)
	const reps = 3
	var base, stale float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(500 + rep)
		base += float64(Run(NewAdaptive(), n, m, rng.New(seed)).Samples)
		stale += float64(Run(NewStaleAdaptive(7), n, m, rng.New(seed)).Samples)
	}
	if stale > 1.10*base {
		t.Fatalf("sync=7 cost %.0f more than 10%% above adaptive %.0f", stale/reps, base/reps)
	}
}

func TestLaggedAdaptiveZeroLagIsAdaptive(t *testing.T) {
	const n, m = 64, 640
	a := Run(NewAdaptive(), n, m, rng.New(10))
	l := Run(NewLaggedAdaptive(0), n, m, rng.New(10))
	if a.Samples != l.Samples {
		t.Fatalf("lag=0 differs from adaptive: %d vs %d", l.Samples, a.Samples)
	}
}

func TestLaggedAdaptiveFullStageIsNoSlack(t *testing.T) {
	// The unification: a counter lagging one full stage turns the
	// acceptance rule n(load-1) < i-n into n·load < i, which is the
	// AdaptiveNoSlack ablation. The rules coincide for every ball
	// i > n, and for i <= n lagged is the (free) adaptive rule — so
	// the coupon-collector blow-up appears with the lag.
	const n = 512
	m := int64(8 * n)
	adaptive := Run(NewAdaptive(), n, m, rng.New(12)).Samples
	lagged := Run(NewLaggedAdaptive(n), n, m, rng.New(12)).Samples
	noslack := Run(NewAdaptiveNoSlack(), n, m, rng.New(12)).Samples
	if float64(lagged) < 2*float64(adaptive) {
		t.Fatalf("full-stage lag not costly: lagged %d vs adaptive %d", lagged, adaptive)
	}
	// lagged and noslack differ only on the first stage; their totals
	// must be within the scale of one coupon-collector stage.
	diff := lagged - noslack
	if diff < 0 {
		diff = -diff
	}
	stageScale := int64(3 * float64(n) * math.Log(float64(n)))
	if diff > stageScale {
		t.Fatalf("lagged (%d) and noslack (%d) differ by %d, beyond one stage (%d)",
			lagged, noslack, diff, stageScale)
	}
}

func TestLaggedAndStaleMaxLoadGuarantee(t *testing.T) {
	// Stale/lagged counts never exceed the truth, so acceptance is
	// never easier and the ceil(m/n)+1 guarantee survives.
	const n = 100
	for _, m := range []int64{0, 50, 1000, 3333} {
		for _, p := range []Protocol{
			NewStaleAdaptive(7), NewStaleAdaptive(100),
			NewLaggedAdaptive(13), NewLaggedAdaptive(100),
		} {
			out := Run(p, n, m, rng.New(uint64(m)+77))
			if out.Vector.MaxLoad() > int(MaxLoadBound(n, m)) {
				t.Errorf("%s m=%d: max %d > bound", p.Name(), m, out.Vector.MaxLoad())
			}
			if out.Vector.Balls() != m {
				t.Errorf("%s m=%d: placed %d", p.Name(), m, out.Vector.Balls())
			}
		}
	}
}

func TestStaleLaggedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"syncEvery<1": func() { NewStaleAdaptive(0) },
		"sync>n":      func() { Run(NewStaleAdaptive(11), 10, 10, rng.New(1)) },
		"lag<0":       func() { NewLaggedAdaptive(-1) },
		"lag>n":       func() { Run(NewLaggedAdaptive(11), 10, 10, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExtensionNames(t *testing.T) {
	if got := NewOnePlusBeta(0.25).Name(); got != "oneplusbeta[0.25]" {
		t.Errorf("name %q", got)
	}
	if got := NewStaleAdaptive(64).Name(); got != "adaptive-stale[64]" {
		t.Errorf("name %q", got)
	}
	if got := NewLaggedAdaptive(64).Name(); got != "adaptive-lag[64]" {
		t.Errorf("name %q", got)
	}
}
