package protocol

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// SingleChoice is the classical process: each ball goes into one bin
// chosen independently and uniformly at random. For m = n the maximum
// load is log n / log log n + O(1) w.h.p. (Raab–Steger [15]).
type SingleChoice struct{}

// NewSingleChoice returns the single-choice protocol.
func NewSingleChoice() *SingleChoice { return &SingleChoice{} }

// Name implements Protocol.
func (*SingleChoice) Name() string { return "single" }

// Reset implements Protocol; single-choice is stateless.
func (*SingleChoice) Reset(n int, m int64) {}

// Place implements Protocol, using exactly one random choice.
func (*SingleChoice) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	v.Increment(r.Intn(v.N()))
	return 1
}
