package protocol

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// BoundedRetry is the threshold protocol with a hard cap on the
// retries per ball: each ball samples at most R bins, accepts the
// first one below m/n + 1, and falls back to the least loaded of its R
// samples if none qualified. Czumaj and Stemann [7] study exactly this
// family of tradeoffs between the maximum allocation time of a single
// ball (R), the average allocation time, and the maximum load:
//
//   - R = 1 is the single-choice process (the sample is always taken,
//     qualified or not);
//   - R → ∞ recovers the threshold protocol (max load ⌈m/n⌉+1,
//     unbounded per-ball time — the paper notes some balls must try
//     Ω(log n) bins);
//   - intermediate R caps every ball's time at R while the max-load
//     guarantee softens from a certainty into a high-probability
//     statement with a graceful failure mode (the fallback is
//     greedy-among-R, not a blind drop).
type BoundedRetry struct {
	retries int
	m       int64
	n       int64
}

// NewBoundedRetry returns the threshold protocol capped at the given
// number of retries per ball. It panics if retries < 1.
func NewBoundedRetry(retries int) *BoundedRetry {
	if retries < 1 {
		panic("protocol: NewBoundedRetry with retries < 1")
	}
	return &BoundedRetry{retries: retries}
}

// Retries returns the per-ball sample cap.
func (b *BoundedRetry) Retries() int { return b.retries }

// Name implements Protocol.
func (b *BoundedRetry) Name() string {
	return fmt.Sprintf("threshold-retry[%d]", b.retries)
}

// Reset implements Protocol.
func (b *BoundedRetry) Reset(n int, m int64) {
	b.n = int64(n)
	b.m = m
}

// Place implements Protocol. Per-ball allocation time is at most
// Retries by construction.
func (b *BoundedRetry) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	n := v.N()
	best := -1
	bestLoad := 0
	for attempt := 1; attempt <= b.retries; attempt++ {
		j := r.Intn(n)
		load := v.Load(j)
		if b.n*int64(load-1) < b.m {
			v.Increment(j)
			return int64(attempt)
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = j, load
		}
	}
	v.Increment(best)
	return int64(b.retries)
}
