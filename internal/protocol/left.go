package protocol

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Left is left[d] of Vöcking [16]: the n bins are split into d groups
// of (nearly) equal size; each ball samples one bin uniformly from
// each group and is placed into a least loaded one, breaking ties in
// favor of the leftmost group ("Always-Go-Left"). The asymmetric tie
// breaking improves the maximum load to m/n + ln ln n / (d·ln Φ_d) +
// O(1), matching Vöcking's lower bound.
type Left struct {
	d int
	n int
}

// NewLeft returns left[d]. It panics if d < 2 (with one group the
// process degenerates to single-choice and the tie-breaking rule is
// meaningless).
func NewLeft(d int) *Left {
	if d < 2 {
		panic("protocol: NewLeft with d < 2")
	}
	return &Left{d: d}
}

// D returns the number of groups (choices per ball).
func (l *Left) D() int { return l.d }

// Name implements Protocol.
func (l *Left) Name() string { return formatD("left", l.d) }

// Reset implements Protocol. It panics if n < d, since each group must
// be non-empty.
func (l *Left) Reset(n int, m int64) {
	if n < l.d {
		panic("protocol: left[d] needs n >= d")
	}
	l.n = n
}

// groupBounds returns the half-open index range [lo, hi) of group g.
// Groups partition [0, n) as evenly as possible.
func (l *Left) groupBounds(g int) (lo, hi int) {
	lo = g * l.n / l.d
	hi = (g + 1) * l.n / l.d
	return lo, hi
}

// Place implements Protocol, using exactly d random choices. Strict
// inequality when comparing against the incumbent implements
// Always-Go-Left: on equal loads the earlier (leftmost) group wins.
func (l *Left) Place(v *loadvec.Vector, r *rng.Rand, _ int64) int64 {
	lo, hi := l.groupBounds(0)
	best := lo + r.Intn(hi-lo)
	bestLoad := v.Load(best)
	for g := 1; g < l.d; g++ {
		lo, hi = l.groupBounds(g)
		c := lo + r.Intn(hi-lo)
		if load := v.Load(c); load < bestLoad {
			best, bestLoad = c, load
		}
	}
	v.Increment(best)
	return int64(l.d)
}
