package cuckoo

import "testing"

// FuzzTableAgainstMap drives a small cuckoo table with an arbitrary
// operation tape and cross-checks every observable against a plain map
// model. Tape semantics per byte pair (op, key): op%3 selects
// insert/delete/lookup; keys are 1..16 so collisions are frequent.
func FuzzTableAgainstMap(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 2, 2})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tab := New(Config{Buckets: 8, BucketSize: 2, D: 2, MaxKicks: 32,
			StashCap: 4, Seed: 99})
		model := map[uint64]uint64{}
		full := false
		for i := 0; i+1 < len(tape); i += 2 {
			op := tape[i] % 3
			key := uint64(tape[i+1]%16) + 1
			switch op {
			case 0:
				val := uint64(i)
				if _, err := tab.Insert(key, val); err != nil {
					// Once full, stop mutating; consistency must
					// still hold below.
					full = true
				}
				model[key] = val
				if full {
					// The failed insert force-stored the wanderer, so
					// the model stays in sync; but stop inserting.
					i = len(tape)
				}
			case 1:
				got := tab.Delete(key)
				_, want := model[key]
				if got != want {
					t.Fatalf("Delete(%d) = %v, model says %v", key, got, want)
				}
				delete(model, key)
			case 2:
				got, ok := tab.Lookup(key)
				want, wantOK := model[key]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("Lookup(%d) = (%d,%v), model (%d,%v)",
						key, got, ok, want, wantOK)
				}
			}
		}
		if tab.Len() != len(model) {
			t.Fatalf("Len %d, model %d", tab.Len(), len(model))
		}
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
		for key, want := range model {
			got, ok := tab.Lookup(key)
			if !ok || got != want {
				t.Fatalf("final Lookup(%d) = (%d,%v) want %d", key, got, ok, want)
			}
		}
	})
}
