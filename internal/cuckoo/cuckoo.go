// Package cuckoo implements d-ary bucketed cuckoo hashing, the
// related-work allocation scheme the paper discusses in Section 1:
// m data items (balls) are stored in n buckets (bins) of size k, every
// item has d candidate buckets, and insertions displace existing items
// along a random walk when all candidates are full.
//
// The package powers the hashing example application and provides
// displacement-count instrumentation so the reallocation cost can be
// contrasted with the paper's reallocation-free protocols.
package cuckoo

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// ErrTableFull is returned by Insert when the random walk exceeds its
// displacement budget and the stash is full.
var ErrTableFull = errors.New("cuckoo: table full")

type entry struct {
	key uint64
	val uint64
}

// Table is a cuckoo hash table mapping uint64 keys to uint64 values.
// It is not safe for concurrent use.
type Table struct {
	d          int
	bucketSize int
	buckets    [][]entry
	seeds      []uint64
	stash      []entry
	stashCap   int
	maxKicks   int
	r          *rng.Rand
	len        int

	// Displacements counts every item moved during insert random
	// walks, the table's analogue of the paper's reallocation cost.
	Displacements int64
}

// Config parameterizes a Table.
type Config struct {
	Buckets    int    // number of buckets (n); required > 0
	BucketSize int    // slots per bucket (k); required > 0
	D          int    // hash choices per key; required >= 2
	MaxKicks   int    // random-walk displacement budget; default 500
	StashCap   int    // overflow stash capacity; default 8
	Seed       uint64 // hash-function and walk seed
}

// New returns an empty table. It panics on invalid configuration.
func New(cfg Config) *Table {
	if cfg.Buckets <= 0 {
		panic("cuckoo: Buckets must be positive")
	}
	if cfg.BucketSize <= 0 {
		panic("cuckoo: BucketSize must be positive")
	}
	if cfg.D < 2 {
		panic("cuckoo: D must be at least 2")
	}
	if cfg.MaxKicks == 0 {
		cfg.MaxKicks = 500
	}
	if cfg.StashCap == 0 {
		cfg.StashCap = 8
	}
	t := &Table{
		d:          cfg.D,
		bucketSize: cfg.BucketSize,
		buckets:    make([][]entry, cfg.Buckets),
		seeds:      make([]uint64, cfg.D),
		stashCap:   cfg.StashCap,
		maxKicks:   cfg.MaxKicks,
		r:          rng.New(rng.Mix(cfg.Seed, 0xC0C0)),
	}
	for i := range t.seeds {
		t.seeds[i] = rng.Mix(cfg.Seed, uint64(i)+1)
	}
	return t
}

// bucketOf returns the i-th candidate bucket of key.
func (t *Table) bucketOf(key uint64, i int) int {
	return int(rng.Mix(t.seeds[i], key) % uint64(len(t.buckets)))
}

// Len returns the number of stored items (including stashed ones).
func (t *Table) Len() int { return t.len }

// LoadFactor returns Len divided by total capacity (stash excluded).
func (t *Table) LoadFactor() float64 {
	return float64(t.len) / float64(len(t.buckets)*t.bucketSize)
}

// StashLen returns the number of items currently in the stash.
func (t *Table) StashLen() int { return len(t.stash) }

// Lookup returns the value stored under key.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	for i := 0; i < t.d; i++ {
		b := t.buckets[t.bucketOf(key, i)]
		for _, e := range b {
			if e.key == key {
				return e.val, true
			}
		}
	}
	for _, e := range t.stash {
		if e.key == key {
			return e.val, true
		}
	}
	return 0, false
}

// Insert stores value under key, replacing any previous value. It
// returns the number of displacements this insertion caused, and
// ErrTableFull if the item could not be placed.
func (t *Table) Insert(key, value uint64) (int, error) {
	// Update in place if present.
	for i := 0; i < t.d; i++ {
		b := t.buckets[t.bucketOf(key, i)]
		for j := range b {
			if b[j].key == key {
				b[j].val = value
				return 0, nil
			}
		}
	}
	for j := range t.stash {
		if t.stash[j].key == key {
			t.stash[j].val = value
			return 0, nil
		}
	}

	// Fast path: any candidate bucket with a free slot.
	cur := entry{key: key, val: value}
	for i := 0; i < t.d; i++ {
		bi := t.bucketOf(key, i)
		if len(t.buckets[bi]) < t.bucketSize {
			t.buckets[bi] = append(t.buckets[bi], cur)
			t.len++
			return 0, nil
		}
	}

	// Random walk: evict a random entry from a random candidate bucket
	// and re-place the evicted item, up to the displacement budget.
	kicks := 0
	for kicks < t.maxKicks {
		bi := t.bucketOf(cur.key, t.r.Intn(t.d))
		b := t.buckets[bi]
		slot := t.r.Intn(len(b))
		cur, b[slot] = b[slot], cur
		kicks++
		t.Displacements++

		// Try the evicted item's candidates.
		placed := false
		for i := 0; i < t.d; i++ {
			ci := t.bucketOf(cur.key, i)
			if len(t.buckets[ci]) < t.bucketSize {
				t.buckets[ci] = append(t.buckets[ci], cur)
				placed = true
				break
			}
		}
		if placed {
			t.len++
			return kicks, nil
		}
	}

	// Walk exhausted: stash the wanderer.
	if len(t.stash) < t.stashCap {
		t.stash = append(t.stash, cur)
		t.len++
		return kicks, nil
	}
	// Restore is impossible without unwinding the walk; report failure.
	// The wanderer `cur` is an evicted item, so the net effect is that
	// the original key is stored but `cur` is lost unless the caller
	// aborts. To keep the table consistent we put the wanderer back by
	// force-growing its first bucket; callers treating ErrTableFull as
	// fatal will discard the table anyway, and callers that continue
	// retain a consistent (if slightly oversized) bucket.
	bi := t.bucketOf(cur.key, 0)
	t.buckets[bi] = append(t.buckets[bi], cur)
	t.len++
	return kicks, ErrTableFull
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	for i := 0; i < t.d; i++ {
		bi := t.bucketOf(key, i)
		b := t.buckets[bi]
		for j := range b {
			if b[j].key == key {
				b[j] = b[len(b)-1]
				t.buckets[bi] = b[:len(b)-1]
				t.len--
				return true
			}
		}
	}
	for j := range t.stash {
		if t.stash[j].key == key {
			t.stash[j] = t.stash[len(t.stash)-1]
			t.stash = t.stash[:len(t.stash)-1]
			t.len--
			return true
		}
	}
	return false
}

// Validate checks structural invariants (bucket sizes, item count,
// no duplicate keys) and returns a descriptive error on violation.
func (t *Table) Validate() error {
	seen := make(map[uint64]bool, t.len)
	count := 0
	for bi, b := range t.buckets {
		if len(b) > t.bucketSize+1 { // +1 for the ErrTableFull force-grow
			return fmt.Errorf("bucket %d oversize: %d > %d", bi, len(b), t.bucketSize)
		}
		for _, e := range b {
			if seen[e.key] {
				return fmt.Errorf("duplicate key %d", e.key)
			}
			seen[e.key] = true
			count++
		}
	}
	for _, e := range t.stash {
		if seen[e.key] {
			return fmt.Errorf("duplicate key %d in stash", e.key)
		}
		seen[e.key] = true
		count++
	}
	if count != t.len {
		return fmt.Errorf("len %d but %d items found", t.len, count)
	}
	return nil
}
