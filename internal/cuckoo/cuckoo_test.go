package cuckoo

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestTable(buckets int) *Table {
	return New(Config{Buckets: buckets, BucketSize: 4, D: 2, Seed: 99})
}

func TestInsertLookup(t *testing.T) {
	tab := newTestTable(64)
	for k := uint64(0); k < 100; k++ {
		if _, err := tab.Insert(k, k*10); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if tab.Len() != 100 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for k := uint64(0); k < 100; k++ {
		v, ok := tab.Lookup(k)
		if !ok || v != k*10 {
			t.Fatalf("lookup %d: got (%d,%v)", k, v, ok)
		}
	}
	if _, ok := tab.Lookup(1 << 40); ok {
		t.Fatal("lookup of absent key succeeded")
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	tab := newTestTable(16)
	tab.Insert(7, 1)
	tab.Insert(7, 2)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert", tab.Len())
	}
	if v, _ := tab.Lookup(7); v != 2 {
		t.Fatalf("value not updated: %d", v)
	}
}

func TestDelete(t *testing.T) {
	tab := newTestTable(16)
	tab.Insert(1, 10)
	tab.Insert(2, 20)
	if !tab.Delete(1) {
		t.Fatal("delete of present key failed")
	}
	if tab.Delete(1) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tab.Lookup(2); !ok || v != 20 {
		t.Fatal("unrelated key damaged by delete")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHighLoadFactor(t *testing.T) {
	// d=2, k=4 cuckoo tables sustain >90% load factor. Fill to 93%.
	buckets := 1024
	tab := New(Config{Buckets: buckets, BucketSize: 4, D: 2, Seed: 5})
	target := int(float64(buckets*4) * 0.93)
	for k := 0; k < target; k++ {
		if _, err := tab.Insert(uint64(k)+1, uint64(k)); err != nil {
			t.Fatalf("insert %d of %d failed: %v (load %.2f)",
				k, target, err, tab.LoadFactor())
		}
	}
	if lf := tab.LoadFactor(); lf < 0.92 {
		t.Fatalf("load factor %.3f below target", lf)
	}
	for k := 0; k < target; k++ {
		if v, ok := tab.Lookup(uint64(k) + 1); !ok || v != uint64(k) {
			t.Fatalf("post-fill lookup %d failed", k)
		}
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDisplacementsGrowWithLoad(t *testing.T) {
	buckets := 512
	tab := New(Config{Buckets: buckets, BucketSize: 4, D: 2, Seed: 6})
	half := buckets * 2 // 50% load
	for k := 0; k < half; k++ {
		tab.Insert(uint64(k)+1, 0)
	}
	atHalf := tab.Displacements
	for k := half; k < int(float64(buckets*4)*0.9); k++ {
		tab.Insert(uint64(k)+1, 0)
	}
	if tab.Displacements <= atHalf {
		t.Fatalf("displacements did not grow: %d then %d", atHalf, tab.Displacements)
	}
}

func TestTableFullEventually(t *testing.T) {
	// A tiny table with a tiny stash must eventually report full while
	// staying consistent.
	tab := New(Config{Buckets: 4, BucketSize: 1, D: 2, MaxKicks: 16, StashCap: 1, Seed: 7})
	sawFull := false
	for k := uint64(1); k <= 64; k++ {
		if _, err := tab.Insert(k, k); err != nil {
			if !errors.Is(err, ErrTableFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("table with capacity 4+1 never reported full after 64 inserts")
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStashUsed(t *testing.T) {
	tab := New(Config{Buckets: 4, BucketSize: 1, D: 2, MaxKicks: 4, StashCap: 4, Seed: 8})
	for k := uint64(1); k <= 6; k++ {
		if _, err := tab.Insert(k, k); err != nil {
			break
		}
	}
	// With 4 slots and up to 4 stash entries, at least one of six
	// inserted keys typically lands in the stash; whatever happened,
	// every stored key must remain findable.
	found := 0
	for k := uint64(1); k <= 6; k++ {
		if _, ok := tab.Lookup(k); ok {
			found++
		}
	}
	if found != tab.Len() {
		t.Fatalf("lookup found %d keys, Len reports %d", found, tab.Len())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tab := New(Config{Buckets: 256, BucketSize: 4, D: 3, Seed: 9})
		inserted := map[uint64]uint64{}
		for i, k := range keys {
			if len(inserted) > 700 {
				break
			}
			if _, err := tab.Insert(k, uint64(i)); err != nil {
				return false
			}
			inserted[k] = uint64(i)
		}
		if tab.Len() != len(inserted) {
			return false
		}
		for k, v := range inserted {
			got, ok := tab.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return tab.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	tab := newTestTable(64)
	for k := uint64(0); k < 200; k += 2 {
		tab.Insert(k, k)
	}
	for k := uint64(0); k < 200; k += 4 {
		tab.Delete(k)
	}
	for k := uint64(0); k < 200; k += 4 {
		if _, err := tab.Insert(k, k+1); err != nil {
			t.Fatalf("reinsert %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 200; k += 2 {
		want := k
		if k%4 == 0 {
			want = k + 1
		}
		if v, ok := tab.Lookup(k); !ok || v != want {
			t.Fatalf("key %d: got (%d,%v) want %d", k, v, ok, want)
		}
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no buckets":  {Buckets: 0, BucketSize: 1, D: 2},
		"no slots":    {Buckets: 1, BucketSize: 0, D: 2},
		"d too small": {Buckets: 1, BucketSize: 1, D: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func BenchmarkInsert90PercentLoad(b *testing.B) {
	buckets := 4096
	tab := New(Config{Buckets: buckets, BucketSize: 4, D: 2, Seed: 1})
	target := int(float64(buckets*4) * 0.9)
	for k := 0; k < target; k++ {
		tab.Insert(uint64(k)+1, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(target + i + 1)
		tab.Insert(k, 0)
		tab.Delete(k)
	}
}

func BenchmarkLookup(b *testing.B) {
	tab := New(Config{Buckets: 4096, BucketSize: 4, D: 2, Seed: 1})
	for k := uint64(1); k <= 8192; k++ {
		tab.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(uint64(i%8192) + 1)
	}
}
