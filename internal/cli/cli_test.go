package cli

import (
	"strings"
	"testing"

	ballsbins "repro"
)

func TestSpecByName(t *testing.T) {
	for _, name := range KnownProtocols() {
		spec, err := SpecByName(name, 2, 1, 3)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if spec.Name() == "" {
			t.Errorf("%s: empty protocol name", name)
		}
	}
}

func TestSpecByNameUnknown(t *testing.T) {
	_, err := SpecByName("bogus", 2, 1, 3)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("expected descriptive error, got %v", err)
	}
}

func TestSpecByNameCaseInsensitive(t *testing.T) {
	spec, err := SpecByName("Adaptive", 2, 1, 3)
	if err != nil || spec.Name() != "adaptive" {
		t.Fatalf("case-insensitive lookup failed: %v %v", spec, err)
	}
}

func TestFmtStat(t *testing.T) {
	got := FmtStat(ballsbins.Stat{Mean: 1234.5, CI95: 6.7})
	if !strings.Contains(got, "1234") || !strings.Contains(got, "±") {
		t.Fatalf("FmtStat = %q", got)
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[int64]string{
		0:       "0",
		999:     "999",
		1000:    "1_000",
		1234567: "1_234_567",
		-4321:   "-4_321",
		-100:    "-100",
	}
	for v, want := range cases {
		if got := FmtCount(v); got != want {
			t.Errorf("FmtCount(%d) = %q want %q", v, got, want)
		}
	}
}
