package cli

import (
	"flag"
	"strings"
	"testing"

	ballsbins "repro"
)

func TestRegisterSpecFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterSpec(fs)
	if err := fs.Parse([]string{"-spec", "greedy", "-d", "3", "-seed", "7", "-engine", "naive"}); err != nil {
		t.Fatal(err)
	}
	spec, err := f.Spec()
	if err != nil || spec.Name() != "greedy[3]" {
		t.Fatalf("Spec() = %v, %v", spec, err)
	}
	if f.Seed != 7 {
		t.Fatalf("Seed = %d", f.Seed)
	}
	if eng, err := f.Engine(); err != nil || eng != ballsbins.EngineNaive {
		t.Fatalf("Engine() = %v, %v", eng, err)
	}
}

func TestRegisterSpecProtoAlias(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterSpec(fs)
	if err := fs.Parse([]string{"-proto", "threshold"}); err != nil {
		t.Fatal(err)
	}
	spec, err := f.Spec()
	if err != nil || spec.Name() != "threshold" {
		t.Fatalf("-proto alias broken: %v, %v", spec, err)
	}
	// Defaults resolve without any flags.
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	f2 := RegisterSpec(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if spec, err := f2.Spec(); err != nil || spec.Name() != "adaptive" {
		t.Fatalf("default spec = %v, %v", spec, err)
	}
	if eng, err := f2.Engine(); err != nil || eng != ballsbins.EngineFast {
		t.Fatalf("default engine = %v, %v", eng, err)
	}
}

func TestRegisterSpecBadValues(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterSpec(fs)
	if err := fs.Parse([]string{"-spec", "bogus"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Spec(); err == nil {
		t.Fatal("Spec() accepted bogus protocol")
	}
	f.EngineName = "warp"
	if _, err := f.Engine(); err == nil {
		t.Fatal("Engine() accepted bogus engine")
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range KnownProtocols() {
		spec, err := SpecByName(name, 2, 1, 3)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if spec.Name() == "" {
			t.Errorf("%s: empty protocol name", name)
		}
	}
}

func TestSpecByNameUnknown(t *testing.T) {
	_, err := SpecByName("bogus", 2, 1, 3)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("expected descriptive error, got %v", err)
	}
}

func TestSpecByNameCaseInsensitive(t *testing.T) {
	spec, err := SpecByName("Adaptive", 2, 1, 3)
	if err != nil || spec.Name() != "adaptive" {
		t.Fatalf("case-insensitive lookup failed: %v %v", spec, err)
	}
}

func TestFmtStat(t *testing.T) {
	got := FmtStat(ballsbins.Stat{Mean: 1234.5, CI95: 6.7})
	if !strings.Contains(got, "1234") || !strings.Contains(got, "±") {
		t.Fatalf("FmtStat = %q", got)
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[int64]string{
		0:       "0",
		999:     "999",
		1000:    "1_000",
		1234567: "1_234_567",
		-4321:   "-4_321",
		-100:    "-100",
	}
	for v, want := range cases {
		if got := FmtCount(v); got != want {
			t.Errorf("FmtCount(%d) = %q want %q", v, got, want)
		}
	}
}
