// Package cli holds helpers shared by the command-line tools: protocol
// lookup by name and common formatting.
package cli

import (
	"fmt"
	"sort"
	"strings"

	ballsbins "repro"
	"repro/internal/protocol"
)

// SpecByName resolves a protocol name (as printed by Spec.Name, but
// with parameters supplied separately) into a Spec. Valid names:
// adaptive, threshold, adaptive-noslack, single, greedy, left, memory,
// fixed.
func SpecByName(name string, d, k, bound int) (ballsbins.Spec, error) {
	switch strings.ToLower(name) {
	case "adaptive":
		return ballsbins.Adaptive(), nil
	case "threshold":
		return ballsbins.Threshold(), nil
	case "adaptive-noslack", "noslack":
		return ballsbins.AdaptiveNoSlack(), nil
	case "single":
		return ballsbins.SingleChoice(), nil
	case "greedy":
		return ballsbins.Greedy(d), nil
	case "left":
		return ballsbins.Left(d), nil
	case "memory":
		return ballsbins.Memory(d, k), nil
	case "fixed":
		return ballsbins.FixedThreshold(bound), nil
	default:
		return ballsbins.Spec{}, fmt.Errorf("unknown protocol %q (want one of %s)",
			name, strings.Join(KnownProtocols(), ", "))
	}
}

// KnownProtocols lists the names SpecByName accepts, sorted.
func KnownProtocols() []string {
	names := []string{
		"adaptive", "threshold", "adaptive-noslack", "single",
		"greedy", "left", "memory", "fixed",
	}
	sort.Strings(names)
	return names
}

// EngineByName resolves an -engine flag value ("fast" or "naive",
// case-insensitive) into an Engine.
func EngineByName(name string) (ballsbins.Engine, error) {
	return protocol.ParseEngine(name)
}

// KnownEngines lists the names EngineByName accepts.
func KnownEngines() []string { return []string{"fast", "naive"} }

// FmtStat renders a Stat as "mean ± ci95".
func FmtStat(s ballsbins.Stat) string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95)
}

// FmtCount renders a large count with thousands separators for
// readability (e.g. 1_234_567).
func FmtCount(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, "_")
	if neg {
		out = "-" + out
	}
	return out
}
