// Package cli holds helpers shared by the command-line tools: the
// common flag sets (-spec, -engine, -seed and friends), protocol
// lookup by name, and common formatting.
package cli

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	ballsbins "repro"
	"repro/internal/protocol"
)

// CommonFlags is the flag pair every engine-aware binary shares:
// -seed and -engine. Register on a FlagSet with RegisterCommon.
type CommonFlags struct {
	Seed       uint64
	EngineName string
}

// RegisterCommon registers -seed and -engine on fs.
func RegisterCommon(fs *flag.FlagSet) *CommonFlags {
	f := &CommonFlags{}
	f.register(fs)
	return f
}

func (f *CommonFlags) register(fs *flag.FlagSet) {
	fs.Uint64Var(&f.Seed, "seed", 1, "master random seed")
	fs.StringVar(&f.EngineName, "engine", "fast",
		"placement engine: "+strings.Join(KnownEngines(), ", "))
}

// Engine resolves the -engine flag.
func (f *CommonFlags) Engine() (ballsbins.Engine, error) {
	return EngineByName(f.EngineName)
}

// SpecFlags is the shared protocol-selection flag set: -spec (with
// -proto kept as an alias for older scripts) plus the protocol
// parameters -d, -k and -bound, and the CommonFlags. Register on a
// FlagSet with RegisterSpec, then resolve with Spec().
type SpecFlags struct {
	CommonFlags
	SpecName string
	D, K     int
	Bound    int
}

// RegisterSpec registers the full shared flag set on fs.
func RegisterSpec(fs *flag.FlagSet) *SpecFlags {
	f := &SpecFlags{}
	f.CommonFlags.register(fs)
	usage := "protocol: " + strings.Join(KnownProtocols(), ", ")
	fs.StringVar(&f.SpecName, "spec", "adaptive", usage)
	fs.StringVar(&f.SpecName, "proto", "adaptive", usage+" (alias of -spec)")
	fs.IntVar(&f.D, "d", 2, "choices per ball (greedy/left/memory)")
	fs.IntVar(&f.K, "k", 1, "memory slots (memory)")
	fs.IntVar(&f.Bound, "bound", 2, "acceptance bound (fixed)")
	return f
}

// Spec resolves the selected protocol.
func (f *SpecFlags) Spec() (ballsbins.Spec, error) {
	return SpecByName(f.SpecName, f.D, f.K, f.Bound)
}

// SpecByName resolves a protocol name (as printed by Spec.Name, but
// with parameters supplied separately) into a Spec. Valid names:
// adaptive, threshold, adaptive-noslack, single, greedy, left, memory,
// fixed.
func SpecByName(name string, d, k, bound int) (ballsbins.Spec, error) {
	switch strings.ToLower(name) {
	case "adaptive":
		return ballsbins.Adaptive(), nil
	case "threshold":
		return ballsbins.Threshold(), nil
	case "adaptive-noslack", "noslack":
		return ballsbins.AdaptiveNoSlack(), nil
	case "single":
		return ballsbins.SingleChoice(), nil
	case "greedy":
		return ballsbins.Greedy(d), nil
	case "left":
		return ballsbins.Left(d), nil
	case "memory":
		return ballsbins.Memory(d, k), nil
	case "fixed":
		return ballsbins.FixedThreshold(bound), nil
	default:
		return ballsbins.Spec{}, fmt.Errorf("unknown protocol %q (want one of %s)",
			name, strings.Join(KnownProtocols(), ", "))
	}
}

// KnownProtocols lists the names SpecByName accepts, sorted.
func KnownProtocols() []string {
	names := []string{
		"adaptive", "threshold", "adaptive-noslack", "single",
		"greedy", "left", "memory", "fixed",
	}
	sort.Strings(names)
	return names
}

// EngineByName resolves an -engine flag value ("fast" or "naive",
// case-insensitive) into an Engine.
func EngineByName(name string) (ballsbins.Engine, error) {
	return protocol.ParseEngine(name)
}

// KnownEngines lists the names EngineByName accepts.
func KnownEngines() []string { return []string{"fast", "naive"} }

// FmtStat renders a Stat as "mean ± ci95".
func FmtStat(s ballsbins.Stat) string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95)
}

// FmtCount renders a large count with thousands separators for
// readability (e.g. 1_234_567).
func FmtCount(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, "_")
	if neg {
		out = "-" + out
	}
	return out
}
