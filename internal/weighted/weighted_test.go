package weighted

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestVectorBasics(t *testing.T) {
	v := New(3)
	v.Add(0, 2.5)
	v.Add(1, 1.0)
	v.Add(0, 0.5)
	if v.Load(0) != 3.0 || v.Load(1) != 1.0 || v.Load(2) != 0 {
		t.Fatalf("loads wrong: %v", v.Loads())
	}
	if v.Total() != 4.0 {
		t.Fatalf("total %v", v.Total())
	}
	if v.MaxLoad() != 3.0 || v.MinLoad() != 0 || v.Gap() != 3.0 {
		t.Fatalf("max/min/gap wrong")
	}
	// Psi = 9 + 1 + 0 - 16/3
	want := 10.0 - 16.0/3.0
	if math.Abs(v.QuadraticPotential()-want) > 1e-12 {
		t.Fatalf("psi %v want %v", v.QuadraticPotential(), want)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVectorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0":        func() { New(0) },
		"negative w": func() { New(1).Add(0, -1) },
		"NaN w":      func() { New(1).Add(0, math.NaN()) },
		"Inf w":      func() { New(1).Add(0, math.Inf(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestVectorInvariantProperty(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		r := rng.New(seed)
		n := 2 + int(seed%9)
		v := New(n)
		for i := 0; i < int(opsRaw%500); i++ {
			v.Add(r.Intn(n), r.Exponential(1))
		}
		return v.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplers(t *testing.T) {
	r := rng.New(3)
	const nSamples = 20000
	cases := []struct {
		name     string
		s        Sampler
		wantMean float64
		tol      float64
		lo, hi   float64
	}{
		{"const", ConstWeights(2.5), 2.5, 1e-12, 2.5, 2.5},
		{"exp", ExpWeights(3), 3, 0.15, 0, math.Inf(1)},
		{"uniform", UniformWeights(1, 3), 2, 0.05, 1, 3},
		{"pareto", ParetoWeights(2, 1, 10), 0, -1, 1, 10}, // mean unchecked
	}
	for _, c := range cases {
		var sum float64
		for i := 0; i < nSamples; i++ {
			w := c.s(r)
			if w < c.lo-1e-12 || w > c.hi+1e-12 {
				t.Fatalf("%s: sample %v outside [%v,%v]", c.name, w, c.lo, c.hi)
			}
			sum += w
		}
		if c.tol >= 0 {
			mean := sum / nSamples
			if math.Abs(mean-c.wantMean) > c.tol {
				t.Errorf("%s: mean %v want %v", c.name, mean, c.wantMean)
			}
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"const w<=0":    func() { ConstWeights(0) },
		"exp mean<=0":   func() { ExpWeights(0) },
		"uniform lo<=0": func() { UniformWeights(0, 1) },
		"uniform hi<lo": func() { UniformWeights(2, 1) },
		"pareto bad":    func() { ParetoWeights(0, 1, 2) },
		"genweights<0":  func() { GenWeights(-1, ConstWeights(1), rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func allProtocols() []Protocol {
	return []Protocol{
		NewSingleChoice(), NewGreedy(2), NewAdaptive(), NewThreshold(),
	}
}

func TestAllProtocolsPlaceAllWeight(t *testing.T) {
	const n = 64
	weights := GenWeights(640, ExpWeights(1), rng.New(5))
	var wantTotal float64
	for _, w := range weights {
		wantTotal += w
	}
	for _, p := range allProtocols() {
		out := Run(p, n, weights, rng.New(6))
		if math.Abs(out.Vector.Total()-wantTotal) > 1e-9*wantTotal {
			t.Errorf("%s: total %v want %v", p.Name(), out.Vector.Total(), wantTotal)
		}
		if out.Samples < int64(len(weights)) {
			t.Errorf("%s: %d samples < m", p.Name(), out.Samples)
		}
		if err := out.Vector.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestWeightedMaxLoadBound(t *testing.T) {
	// threshold/adaptive: final max < W/n + slack + wmax for arbitrary
	// weight sequences.
	f := func(seed uint64, mRaw uint16) bool {
		r := rng.New(seed)
		n := 2 + int(seed%31)
		m := int64(mRaw % 1500)
		weights := GenWeights(m, ParetoWeights(1.5, 0.5, 8), r)
		for _, p := range []Protocol{NewAdaptive(), NewThreshold()} {
			out := Run(p, n, weights, rng.New(seed+1))
			bound := MaxLoadBound(n, out.TotalWeight, out.MaxWeight, out.MaxWeight)
			if out.Vector.MaxLoad() >= bound+1e-9 {
				t.Logf("%s n=%d m=%d: max %v >= bound %v",
					p.Name(), n, m, out.Vector.MaxLoad(), bound)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedAdaptiveLinearTime(t *testing.T) {
	// The O(m) character survives weights: samples/ball stays small.
	const n = 1000
	const m = 32 * n
	for _, s := range []Sampler{ConstWeights(1), ExpWeights(1), ParetoWeights(2, 0.5, 5)} {
		weights := GenWeights(m, s, rng.New(7))
		out := Run(NewAdaptive(), n, weights, rng.New(8))
		perBall := float64(out.Samples) / float64(m)
		if perBall > 3 {
			t.Errorf("samples/ball %v too large", perBall)
		}
	}
}

func TestWeightedGreedyBeatsSingle(t *testing.T) {
	const n = 1024
	const m = 16 * n
	weights := GenWeights(m, ExpWeights(1), rng.New(9))
	g := Run(NewGreedy(2), n, weights, rng.New(10))
	s := Run(NewSingleChoice(), n, weights, rng.New(10))
	if g.Vector.Gap() >= s.Vector.Gap() {
		t.Fatalf("greedy gap %v not below single %v", g.Vector.Gap(), s.Vector.Gap())
	}
}

func TestWeightedAdaptiveSmootherThanThreshold(t *testing.T) {
	// The paper's smoothness contrast carries over to weights.
	const n = 256
	const m = 128 * n
	const reps = 3
	var psiA, psiT float64
	for rep := 0; rep < reps; rep++ {
		weights := GenWeights(m, ExpWeights(1), rng.New(uint64(20+rep)))
		psiA += Run(NewAdaptive(), n, weights, rng.New(uint64(30+rep))).Vector.QuadraticPotential()
		psiT += Run(NewThreshold(), n, weights, rng.New(uint64(30+rep))).Vector.QuadraticPotential()
	}
	if psiA >= psiT {
		t.Fatalf("weighted adaptive Psi %v not below threshold %v", psiA/reps, psiT/reps)
	}
}

func TestHeavyTailRoughensDistribution(t *testing.T) {
	// Same mean, heavier tail: the gap grows for every protocol.
	const n = 512
	const m = 32 * n
	constW := GenWeights(m, ConstWeights(1), rng.New(40))
	// Bounded Pareto alpha=1.2 on [0.3, 30] has mean ~1; heavy tail.
	heavyW := GenWeights(m, ParetoWeights(1.2, 0.3, 30), rng.New(40))
	gapConst := Run(NewAdaptive(), n, constW, rng.New(41)).Vector.Gap()
	gapHeavy := Run(NewAdaptive(), n, heavyW, rng.New(41)).Vector.Gap()
	if gapHeavy <= gapConst {
		t.Fatalf("heavy tail did not roughen: const gap %v, heavy gap %v",
			gapConst, gapHeavy)
	}
}

func TestExplicitSlack(t *testing.T) {
	const n = 64
	weights := GenWeights(640, ConstWeights(1), rng.New(50))
	// Large slack means fewer rejections than tight slack.
	loose := Run(NewAdaptiveSlack(8), n, weights, rng.New(51))
	tight := Run(NewAdaptiveSlack(1), n, weights, rng.New(51))
	if loose.Samples > tight.Samples {
		t.Fatalf("loose slack used more samples: %d vs %d", loose.Samples, tight.Samples)
	}
	if a := NewAdaptiveSlack(2.5); a.Slack() != 2.5 {
		a.Reset(4, 10, 1)
		if a.Slack() != 2.5 {
			t.Fatal("explicit slack not preserved")
		}
	}
}

func TestDefaultSlackIsMaxWeight(t *testing.T) {
	a := NewAdaptive()
	a.Reset(4, 100, 7.5)
	if a.Slack() != 7.5 {
		t.Fatalf("default slack %v want maxWeight", a.Slack())
	}
	a.Reset(4, 0, 0) // empty run
	if a.Slack() <= 0 {
		t.Fatal("empty-run slack must still be positive")
	}
}

func TestProtocolPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"greedy d<1":         func() { NewGreedy(0) },
		"adaptive slack<=0":  func() { NewAdaptiveSlack(0) },
		"threshold slack<=0": func() { NewThresholdSlack(-1) },
		"run n=0":            func() { Run(NewAdaptive(), 0, nil, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEmptyRun(t *testing.T) {
	out := Run(NewAdaptive(), 8, nil, rng.New(1))
	if out.Samples != 0 || out.Vector.Total() != 0 {
		t.Fatal("empty run not empty")
	}
}

func TestNames(t *testing.T) {
	want := map[string]Protocol{
		"wsingle":    NewSingleChoice(),
		"wgreedy[3]": NewGreedy(3),
		"wadaptive":  NewAdaptive(),
		"wthreshold": NewThreshold(),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name = %q want %q", p.Name(), name)
		}
	}
}

func BenchmarkWeightedAdaptive(b *testing.B) {
	const n = 4096
	weights := GenWeights(int64(16*n), ExpWeights(1), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(NewAdaptive(), n, weights, rng.New(uint64(i)))
	}
}
