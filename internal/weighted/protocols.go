package weighted

import (
	"fmt"

	"repro/internal/rng"
)

// Protocol places weighted balls one at a time. Implementations carry
// per-run state and must be Reset before each run; they are not safe
// for concurrent use.
type Protocol interface {
	// Name returns a short identifier.
	Name() string
	// Reset prepares for a run into n bins with the given total and
	// maximum ball weight (known up front because the weight sequence
	// is generated before the run; the adaptive protocol ignores
	// totalWeight, preserving its online character).
	Reset(n int, totalWeight, maxWeight float64)
	// Place allocates one ball of weight w and returns the number of
	// random bin choices consumed.
	Place(v *Vector, r *rng.Rand, w float64) int64
}

// Outcome summarizes a weighted run.
type Outcome struct {
	Vector      *Vector
	Samples     int64
	TotalWeight float64
	MaxWeight   float64
}

// Run places the given weight sequence into n bins using p.
// It panics if n <= 0.
func Run(p Protocol, n int, weights []float64, r *rng.Rand) Outcome {
	if n <= 0 {
		panic("weighted: Run with n <= 0")
	}
	var total, maxW float64
	for _, w := range weights {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	p.Reset(n, total, maxW)
	v := New(n)
	var samples int64
	for _, w := range weights {
		samples += p.Place(v, r, w)
	}
	return Outcome{Vector: v, Samples: samples, TotalWeight: total, MaxWeight: maxW}
}

// MaxLoadBound returns the deterministic weighted guarantee
// W/n + slack + wmax satisfied by the threshold and adaptive
// protocols.
func MaxLoadBound(n int, totalWeight, slack, maxWeight float64) float64 {
	return totalWeight/float64(n) + slack + maxWeight
}

// SingleChoice places each ball into one uniform bin.
type SingleChoice struct{}

// NewSingleChoice returns the weighted single-choice process.
func NewSingleChoice() *SingleChoice { return &SingleChoice{} }

// Name implements Protocol.
func (*SingleChoice) Name() string { return "wsingle" }

// Reset implements Protocol.
func (*SingleChoice) Reset(int, float64, float64) {}

// Place implements Protocol.
func (*SingleChoice) Place(v *Vector, r *rng.Rand, w float64) int64 {
	v.Add(r.Intn(v.N()), w)
	return 1
}

// Greedy places each ball into the lightest of d uniform bins.
type Greedy struct{ d int }

// NewGreedy returns weighted greedy[d]. It panics if d < 1.
func NewGreedy(d int) *Greedy {
	if d < 1 {
		panic("weighted: NewGreedy with d < 1")
	}
	return &Greedy{d: d}
}

// Name implements Protocol.
func (g *Greedy) Name() string { return fmt.Sprintf("wgreedy[%d]", g.d) }

// Reset implements Protocol.
func (g *Greedy) Reset(int, float64, float64) {}

// Place implements Protocol.
func (g *Greedy) Place(v *Vector, r *rng.Rand, w float64) int64 {
	n := v.N()
	best := r.Intn(n)
	bestLoad := v.Load(best)
	for j := 1; j < g.d; j++ {
		c := r.Intn(n)
		if l := v.Load(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	v.Add(best, w)
	return int64(g.d)
}

// Adaptive is the weighted generalization of the paper's protocol:
// accept bin j iff load(j) < Wᵢ/n + slack, where Wᵢ is the weight
// placed so far. Slack = 0 (the default in NewAdaptive) means "use the
// maximum ball weight", the weighted analogue of the +1.
type Adaptive struct {
	slack    float64 // 0 = use maxWeight from Reset
	effSlack float64
	n        float64
}

// NewAdaptive returns the weighted adaptive protocol with the default
// slack (the maximum ball weight).
func NewAdaptive() *Adaptive { return &Adaptive{} }

// NewAdaptiveSlack returns the weighted adaptive protocol with an
// explicit slack. It panics if slack <= 0.
func NewAdaptiveSlack(slack float64) *Adaptive {
	if slack <= 0 {
		panic("weighted: NewAdaptiveSlack with slack <= 0")
	}
	return &Adaptive{slack: slack}
}

// Name implements Protocol.
func (a *Adaptive) Name() string { return "wadaptive" }

// Reset implements Protocol.
func (a *Adaptive) Reset(n int, _, maxWeight float64) {
	a.n = float64(n)
	a.effSlack = a.slack
	if a.effSlack == 0 {
		a.effSlack = maxWeight
	}
	if a.effSlack == 0 {
		a.effSlack = 1 // empty run; value irrelevant
	}
}

// Slack returns the effective slack of the current run.
func (a *Adaptive) Slack() float64 { return a.effSlack }

// Place implements Protocol. Any bin at or below the running average
// is acceptable, so the loop terminates.
func (a *Adaptive) Place(v *Vector, r *rng.Rand, w float64) int64 {
	n := v.N()
	bound := v.Total()/a.n + a.effSlack
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if v.Load(j) < bound {
			v.Add(j, w)
			return samples
		}
	}
}

// Threshold is the weighted Czumaj–Stemann rule: accept bin j iff
// load(j) < W/n + slack with the final total weight W fixed up front.
type Threshold struct {
	slack    float64 // 0 = use maxWeight from Reset
	bound    float64
	effSlack float64
}

// NewThreshold returns the weighted threshold protocol with the
// default slack (the maximum ball weight).
func NewThreshold() *Threshold { return &Threshold{} }

// NewThresholdSlack returns the weighted threshold protocol with an
// explicit slack. It panics if slack <= 0.
func NewThresholdSlack(slack float64) *Threshold {
	if slack <= 0 {
		panic("weighted: NewThresholdSlack with slack <= 0")
	}
	return &Threshold{slack: slack}
}

// Name implements Protocol.
func (t *Threshold) Name() string { return "wthreshold" }

// Reset implements Protocol.
func (t *Threshold) Reset(n int, totalWeight, maxWeight float64) {
	t.effSlack = t.slack
	if t.effSlack == 0 {
		t.effSlack = maxWeight
	}
	if t.effSlack == 0 {
		t.effSlack = 1
	}
	t.bound = totalWeight/float64(n) + t.effSlack
}

// Place implements Protocol. Some bin is always at or below the final
// average, so the loop terminates.
func (t *Threshold) Place(v *Vector, r *rng.Rand, w float64) int64 {
	n := v.N()
	var samples int64
	for {
		j := r.Intn(n)
		samples++
		if v.Load(j) < t.bound {
			v.Add(j, w)
			return samples
		}
	}
}
