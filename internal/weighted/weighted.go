// Package weighted extends the paper's allocation protocols to
// weighted balls: ball i carries a weight wᵢ > 0 and a bin's load is
// the sum of the weights it holds. This is the natural next model
// after the paper (cf. Talwar–Wieder, "Balanced allocations: the
// weighted case"), and the adaptive/threshold acceptance rules
// generalize directly:
//
//	threshold: accept bin j iff load(j) < W/n + slack   (W = total weight)
//	adaptive:  accept bin j iff load(j) < Wᵢ/n + slack  (Wᵢ = weight placed so far)
//
// With slack at least the maximum ball weight both rules always admit
// some bin (any bin at or below average qualifies), so the protocols
// terminate, and the final maximum load is below W/n + slack + wmax —
// the weighted analogue of ⌈m/n⌉+1.
package weighted

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Vector tracks weighted bin loads. Construct with New.
type Vector struct {
	loads []float64
	total float64
	sumSq float64
	max   float64
}

// New returns a Vector for n empty bins. It panics if n <= 0.
func New(n int) *Vector {
	if n <= 0 {
		panic("weighted: New with n <= 0")
	}
	return &Vector{loads: make([]float64, n)}
}

// N returns the number of bins.
func (v *Vector) N() int { return len(v.loads) }

// Load returns the weight in bin i.
func (v *Vector) Load(i int) float64 { return v.loads[i] }

// Total returns the total placed weight.
func (v *Vector) Total() float64 { return v.total }

// MaxLoad returns the heaviest bin's load.
func (v *Vector) MaxLoad() float64 { return v.max }

// MinLoad returns the lightest bin's load (O(n)).
func (v *Vector) MinLoad() float64 {
	min := math.Inf(1)
	for _, l := range v.loads {
		if l < min {
			min = l
		}
	}
	return min
}

// Gap returns MaxLoad − MinLoad.
func (v *Vector) Gap() float64 { return v.max - v.MinLoad() }

// Add places weight w into bin i. It panics if w < 0 or w is not
// finite.
func (v *Vector) Add(i int, w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic("weighted: Add with negative or non-finite weight")
	}
	l := v.loads[i]
	v.loads[i] = l + w
	v.total += w
	v.sumSq += 2*l*w + w*w
	if l+w > v.max {
		v.max = l + w
	}
}

// QuadraticPotential returns Σ(loadᵢ − W/n)² = Σload² − W²/n.
func (v *Vector) QuadraticPotential() float64 {
	return v.sumSq - v.total*v.total/float64(len(v.loads))
}

// Loads returns a copy of the per-bin loads.
func (v *Vector) Loads() []float64 {
	return append([]float64(nil), v.loads...)
}

// Validate recomputes every maintained quantity from the raw loads and
// returns an error on the first mismatch (within floating point
// tolerance). Intended for tests.
func (v *Vector) Validate() error {
	var total, sumSq, max float64
	for i, l := range v.loads {
		if l < 0 {
			return fmt.Errorf("bin %d has negative load %v", i, l)
		}
		total += l
		sumSq += l * l
		if l > max {
			max = l
		}
	}
	tol := 1e-9 * (1 + total)
	if math.Abs(total-v.total) > tol {
		return fmt.Errorf("total: have %v want %v", v.total, total)
	}
	if math.Abs(sumSq-v.sumSq) > 1e-9*(1+sumSq) {
		return fmt.Errorf("sumSq: have %v want %v", v.sumSq, sumSq)
	}
	if math.Abs(max-v.max) > tol {
		return fmt.Errorf("max: have %v want %v", v.max, max)
	}
	return nil
}

// Sampler draws ball weights. Implementations must return positive,
// finite values.
type Sampler func(r *rng.Rand) float64

// ConstWeights returns a sampler that always yields w. It panics if
// w <= 0.
func ConstWeights(w float64) Sampler {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic("weighted: ConstWeights with non-positive weight")
	}
	return func(*rng.Rand) float64 { return w }
}

// ExpWeights returns exponentially distributed weights with the given
// mean. It panics if mean <= 0.
func ExpWeights(mean float64) Sampler {
	if mean <= 0 || math.IsNaN(mean) {
		panic("weighted: ExpWeights with non-positive mean")
	}
	return func(r *rng.Rand) float64 { return r.Exponential(1 / mean) }
}

// UniformWeights returns weights uniform on [lo, hi]. It panics unless
// 0 < lo <= hi.
func UniformWeights(lo, hi float64) Sampler {
	if lo <= 0 || hi < lo || math.IsNaN(lo) || math.IsNaN(hi) {
		panic("weighted: UniformWeights with invalid range")
	}
	return func(r *rng.Rand) float64 { return lo + (hi-lo)*r.Float64() }
}

// ParetoWeights returns bounded-Pareto weights with shape alpha on
// [lo, hi] — the heavy-tailed (but bounded, so wmax exists) workload.
func ParetoWeights(alpha, lo, hi float64) Sampler {
	// Parameter validation is delegated to rng.BoundedPareto; probe
	// once so misuse fails at construction time.
	probe := rng.New(0)
	_ = probe.BoundedPareto(alpha, lo, hi)
	return func(r *rng.Rand) float64 { return r.BoundedPareto(alpha, lo, hi) }
}

// GenWeights draws m weights from s. It panics if m < 0 or if the
// sampler returns a non-positive or non-finite weight.
func GenWeights(m int64, s Sampler, r *rng.Rand) []float64 {
	if m < 0 {
		panic("weighted: GenWeights with m < 0")
	}
	out := make([]float64, m)
	for i := range out {
		w := s(r)
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("weighted: sampler returned invalid weight %v", w))
		}
		out[i] = w
	}
	return out
}
