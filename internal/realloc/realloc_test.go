package realloc

import (
	"testing"
	"testing/quick"

	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestSelfBalanceBasics(t *testing.T) {
	const n, m = 256, 2048
	res := SelfBalance(n, m, rng.New(1))
	if res.Vector.Balls() != m {
		t.Fatalf("balls = %d want %d", res.Vector.Balls(), m)
	}
	if res.InitialSamples != 2*m {
		t.Fatalf("initial samples = %d want %d", res.InitialSamples, 2*m)
	}
	if err := res.Vector.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestSelfBalanceReachesNearPerfectLoad(t *testing.T) {
	// [6]: the fixed point has max load ceil(m/n) (+1). With two
	// choices per ball and m >> n the local optimum is within 1 of
	// perfectly balanced w.h.p.
	cases := []struct {
		n int
		m int64
	}{
		{128, 128}, {128, 1024}, {512, 4096}, {1024, 1024},
	}
	for _, c := range cases {
		res := SelfBalance(c.n, c.m, rng.New(uint64(300+c.n)))
		perfect := int(protocol.CeilDiv(c.m, int64(c.n)))
		if res.Vector.MaxLoad() > perfect+1 {
			t.Errorf("n=%d m=%d: max load %d exceeds ceil(m/n)+1 = %d",
				c.n, c.m, res.Vector.MaxLoad(), perfect+1)
		}
		if res.Vector.MaxLoad() > res.InitialMaxLoad {
			t.Errorf("n=%d m=%d: balancing worsened max load %d -> %d",
				c.n, c.m, res.InitialMaxLoad, res.Vector.MaxLoad())
		}
	}
}

func TestSelfBalanceImprovesOnGreedy(t *testing.T) {
	// In the heavily loaded case greedy[2] drifts log log n above m/n;
	// self-balancing must strictly improve it.
	const n = 256
	const m = int64(64 * n)
	res := SelfBalance(n, m, rng.New(7))
	if res.Vector.MaxLoad() >= res.InitialMaxLoad &&
		res.InitialMaxLoad > int(m)/n+1 {
		t.Errorf("no improvement: initial %d final %d", res.InitialMaxLoad,
			res.Vector.MaxLoad())
	}
	if res.Moves == 0 && res.InitialMaxLoad > int(m)/n+1 {
		t.Error("expected at least one reallocation move")
	}
}

func TestSelfBalanceMovesAreLinearish(t *testing.T) {
	// [6] promises O(m) + n^{O(1)} reallocations; locally we just check
	// moves do not explode superlinearly at laptop scale.
	const n = 512
	for _, phi := range []int64{1, 8, 32} {
		m := phi * n
		res := SelfBalance(n, m, rng.New(uint64(11+phi)))
		if res.Moves > 4*m+int64(n) {
			t.Errorf("phi=%d: %d moves for m=%d, superlinear", phi, res.Moves, m)
		}
	}
}

func TestSelfBalanceFixedPointProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 1 + int(nRaw%64)
		m := int64(mRaw % 1024)
		res := SelfBalance(n, m, rng.New(seed))
		if res.Vector.Balls() != m {
			return false
		}
		if err := res.Vector.Validate(); err != nil {
			t.Log(err)
			return false
		}
		if err := Verify(res); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfBalanceDeterministic(t *testing.T) {
	a := SelfBalance(64, 512, rng.New(42))
	b := SelfBalance(64, 512, rng.New(42))
	if a.Moves != b.Moves || a.Passes != b.Passes ||
		a.Vector.MaxLoad() != b.Vector.MaxLoad() {
		t.Fatal("same seed produced different balancing runs")
	}
}

func TestPathShiftsBeatLocalMoves(t *testing.T) {
	// For m = n the local-move fixed point typically leaves max load 3;
	// augmenting-path shifts must bring it to the 2-orientability
	// optimum (m/n = 1 is far below the d=2, k=2 threshold ~1.79).
	const n = 10000
	const m = int64(n)
	withShifts := SelfBalance(n, m, rng.New(5))
	withoutShifts := SelfBalanceConfig(n, m, rng.New(5),
		Config{ShufflePasses: true, DisablePathShifts: true})
	if got := withShifts.Vector.MaxLoad(); got > 2 {
		t.Errorf("path shifts left max load %d, want <= 2", got)
	}
	if withShifts.Vector.MaxLoad() > withoutShifts.Vector.MaxLoad() {
		t.Errorf("path shifts made things worse: %d vs %d",
			withShifts.Vector.MaxLoad(), withoutShifts.Vector.MaxLoad())
	}
	if !withShifts.Optimal {
		t.Error("expected Optimal=true (no augmenting path left)")
	}
	if err := Verify(withShifts); err != nil {
		t.Fatal(err)
	}
	if err := withShifts.Vector.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathShiftBudgetRespected(t *testing.T) {
	res := SelfBalanceConfig(4096, 4096, rng.New(9),
		Config{ShufflePasses: true, ShiftBudget: 1})
	// With budget 1, at most one migration can come from path shifts;
	// the run must still be internally consistent.
	if err := res.Vector.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestSelfBalanceMaxPassesCap(t *testing.T) {
	res := SelfBalanceConfig(64, 4096, rng.New(3), Config{MaxPasses: 1})
	if res.Passes > 1 {
		t.Fatalf("passes = %d despite cap 1", res.Passes)
	}
}

func TestSelfBalanceZeroBalls(t *testing.T) {
	res := SelfBalance(8, 0, rng.New(1))
	if res.Vector.Balls() != 0 || res.Moves != 0 {
		t.Fatal("m=0 should be a no-op")
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestSelfBalancePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0": func() { SelfBalance(0, 1, rng.New(1)) },
		"m<0": func() { SelfBalance(1, -1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkSelfBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SelfBalance(1024, 8192, rng.New(uint64(i)))
	}
}
