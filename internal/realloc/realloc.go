// Package realloc implements a self-balancing reallocation scheme in
// the style of Czumaj, Riley and Scheideler's "Perfectly Balanced
// Allocation" [6], the Table 1 baseline that achieves maximum load
// ⌈m/n⌉ (+1 in the lightly loaded regime) at the price of
// reallocations.
//
// Each ball draws two independent uniform bin choices. The initial
// placement is greedy[2]. Balancing then proceeds in two mechanisms:
//
//  1. Local moves: a ball migrates to its alternate choice whenever
//     that bin's load is at least two below its current bin's. Every
//     such move strictly decreases Σℓ², so this reaches a fixed point.
//  2. Path shifts: local fixed points can still hold an avoidable
//     maximum (a ball in a max bin whose alternate is only one lower,
//     which in turn holds a ball with a truly lower alternate). A
//     breadth-first search over the choice graph finds a shortest
//     "augmenting" path from a maximum-load bin to a bin at least two
//     below, and shifts one ball along every edge of the path: the max
//     bin loses a ball, the final bin gains one, intermediate loads
//     are unchanged, and Σℓ² strictly decreases. When no such path
//     exists the maximum load is optimal for the drawn choice graph
//     (max-flow duality).
//
// Every migration is counted as a reallocation move — the cost the
// paper's reallocation-free protocols are designed to avoid.
package realloc

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Result describes a completed self-balancing run.
type Result struct {
	// Vector is the final load distribution.
	Vector *loadvec.Vector
	// InitialSamples is the number of random bin choices drawn (2m).
	InitialSamples int64
	// Moves is the number of reallocation steps (local moves plus
	// per-edge path shifts) performed after the initial placement.
	Moves int64
	// Passes is the number of local-move sweeps executed.
	Passes int
	// PathShifts is the number of augmenting paths applied.
	PathShifts int
	// InitialMaxLoad is the maximum load right after greedy[2], before
	// any self-balancing.
	InitialMaxLoad int
	// Optimal reports whether balancing stopped because no augmenting
	// path existed (the max load is optimal for the choice graph)
	// rather than because a budget ran out.
	Optimal bool
	// ChoiceA and ChoiceB are each ball's two bin choices, and
	// Assignment its final bin, exposed for verification and analysis.
	ChoiceA, ChoiceB, Assignment []int32
}

// Config tunes the self-balancer.
type Config struct {
	// MaxPasses caps local-move sweeps (safety bound; the process
	// terminates on its own). 0 means no cap.
	MaxPasses int
	// ShufflePasses randomizes ball order each sweep, matching the
	// randomized scheduling of [6]. SelfBalance enables it.
	ShufflePasses bool
	// DisablePathShifts turns off the augmenting-path phase, leaving
	// only local moves (useful for ablation).
	DisablePathShifts bool
	// ShiftBudget caps the number of ball migrations performed by path
	// shifts. 0 means the default 4n+128.
	ShiftBudget int
}

type balancer struct {
	v        *loadvec.Vector
	choiceA  []int32
	choiceB  []int32
	cur      []int32
	binBalls [][]int32
	res      *Result
}

// SelfBalance places m balls into n bins with two choices each and
// rebalances until the maximum load is optimal for the drawn choice
// graph (or budgets run out). It panics if n <= 0 or m < 0.
func SelfBalance(n int, m int64, r *rng.Rand) Result {
	return SelfBalanceConfig(n, m, r, Config{ShufflePasses: true})
}

// SelfBalanceConfig is SelfBalance with explicit configuration.
func SelfBalanceConfig(n int, m int64, r *rng.Rand, cfg Config) Result {
	if n <= 0 {
		panic("realloc: SelfBalance with n <= 0")
	}
	if m < 0 {
		panic("realloc: SelfBalance with m < 0")
	}
	b := &balancer{
		v:       loadvec.New(n),
		choiceA: make([]int32, m),
		choiceB: make([]int32, m),
		cur:     make([]int32, m),
		res:     &Result{},
	}

	// Initial greedy[2] placement.
	for i := int64(0); i < m; i++ {
		a := int32(r.Intn(n))
		c := int32(r.Intn(n))
		b.choiceA[i], b.choiceB[i] = a, c
		pick := a
		if b.v.Load(int(c)) < b.v.Load(int(a)) {
			pick = c
		}
		b.v.Increment(int(pick))
		b.cur[i] = pick
	}
	b.res.Vector = b.v
	b.res.InitialSamples = 2 * m
	b.res.InitialMaxLoad = b.v.MaxLoad()
	b.res.ChoiceA, b.res.ChoiceB, b.res.Assignment = b.choiceA, b.choiceB, b.cur

	b.localMoves(r, cfg)

	if !cfg.DisablePathShifts {
		budget := cfg.ShiftBudget
		if budget == 0 {
			budget = 4*n + 128
		}
		b.buildBinBalls()
		b.res.Optimal = b.pathShifts(budget)
		// Path shifts can expose new profitable local moves; settle.
		b.localMoves(r, cfg)
	}
	return *b.res
}

// localMoves sweeps the balls, migrating any ball whose alternate
// choice is at least two below its current bin, until a sweep makes no
// move (or MaxPasses is hit).
func (b *balancer) localMoves(r *rng.Rand, cfg Config) {
	m := len(b.cur)
	order := make([]int64, m)
	for i := range order {
		order[i] = int64(i)
	}
	for {
		if cfg.MaxPasses > 0 && b.res.Passes >= cfg.MaxPasses {
			return
		}
		if cfg.ShufflePasses {
			r.Shuffle(len(order), func(i, j int) {
				order[i], order[j] = order[j], order[i]
			})
		}
		moves := int64(0)
		for _, ball := range order {
			here := b.cur[ball]
			other := b.otherChoice(ball, here)
			if other == here {
				continue
			}
			if b.v.Load(int(other))+2 <= b.v.Load(int(here)) {
				b.move(ball, here, other)
				moves++
			}
		}
		b.res.Passes++
		b.res.Moves += moves
		if moves == 0 {
			return
		}
	}
}

// otherChoice returns the ball's choice that is not `here` (or `here`
// itself when both choices coincide).
func (b *balancer) otherChoice(ball int64, here int32) int32 {
	if o := b.choiceA[ball]; o != here {
		return o
	}
	return b.choiceB[ball]
}

// move migrates ball from bin `from` to bin `to`, maintaining the
// bin-to-balls index when it exists.
func (b *balancer) move(ball int64, from, to int32) {
	b.v.Decrement(int(from))
	b.v.Increment(int(to))
	b.cur[ball] = to
	if b.binBalls != nil {
		list := b.binBalls[from]
		for i, bb := range list {
			if int64(bb) == ball {
				list[i] = list[len(list)-1]
				b.binBalls[from] = list[:len(list)-1]
				break
			}
		}
		b.binBalls[to] = append(b.binBalls[to], int32(ball))
	}
}

// buildBinBalls indexes balls by their current bin.
func (b *balancer) buildBinBalls() {
	b.binBalls = make([][]int32, b.v.N())
	for ball, bin := range b.cur {
		b.binBalls[bin] = append(b.binBalls[bin], int32(ball))
	}
}

// pathShifts repeatedly finds a shortest augmenting path from some
// maximum-load bin to a bin at least two lower and shifts one ball
// along each edge. It returns true if it stopped because no augmenting
// path exists (max load optimal), false if the budget ran out.
func (b *balancer) pathShifts(budget int) bool {
	n := b.v.N()
	visited := make([]int32, n) // generation marks; 0 = unseen
	parentBall := make([]int64, n)
	parentBin := make([]int32, n)
	queue := make([]int32, 0, n)
	gen := int32(0)

	shifted := 0
	for shifted < budget {
		max := b.v.MaxLoad()
		if b.v.MinLoad() >= max-1 {
			return true // already optimally flat
		}
		gen++
		queue = queue[:0]
		for bin := 0; bin < n; bin++ {
			if b.v.Load(bin) == max {
				visited[bin] = gen
				parentBall[bin] = -1
				queue = append(queue, int32(bin))
			}
		}
		var sink int32 = -1
	bfs:
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, ball := range b.binBalls[x] {
				y := b.otherChoice(int64(ball), x)
				if y == x || visited[y] == gen {
					continue
				}
				visited[y] = gen
				parentBall[y] = int64(ball)
				parentBin[y] = x
				if b.v.Load(int(y)) <= max-2 {
					sink = y
					break bfs
				}
				queue = append(queue, y)
			}
		}
		if sink < 0 {
			return true // no augmenting path: max load is optimal
		}
		// Shift one ball along every edge, walking the path backwards
		// from the sink to a maximum bin.
		for bin := sink; parentBall[bin] >= 0; bin = parentBin[bin] {
			ball := parentBall[bin]
			b.move(ball, parentBin[bin], bin)
			b.res.Moves++
			shifted++
		}
		b.res.PathShifts++
	}
	return false
}

// Verify checks that res is a local fixed point: no ball can move to
// its alternate choice and reduce the load difference by two or more,
// and every ball sits in one of its own choices. It is O(m) and
// intended for tests. It returns nil for results produced without a
// pass cap.
func Verify(res Result) error {
	v := res.Vector
	for ball, here := range res.Assignment {
		if here != res.ChoiceA[ball] && here != res.ChoiceB[ball] {
			return fmt.Errorf("ball %d assigned to %d, not among its choices (%d, %d)",
				ball, here, res.ChoiceA[ball], res.ChoiceB[ball])
		}
		other := res.ChoiceA[ball]
		if other == here {
			other = res.ChoiceB[ball]
		}
		if other == here {
			continue
		}
		if v.Load(int(other))+2 <= v.Load(int(here)) {
			return fmt.Errorf("ball %d can still improve: %d -> %d (%d vs %d)",
				ball, here, other, v.Load(int(here)), v.Load(int(other)))
		}
	}
	return nil
}
