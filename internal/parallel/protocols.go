package parallel

import "repro/internal/protocol"

// LenzenWattenhofer returns the configuration for the symmetric
// adaptive parallel protocol of [12] in this engine's model: m = n
// balls, bin capacity 2, fresh uniform contacts with the doubling
// schedule. [12] proves max load 2 within log*(n)+O(1) rounds and O(n)
// messages; the capacity bound makes max load ≤ 2 structural here, and
// the tests check the round and message counts grow as slowly as the
// theorem describes.
func LenzenWattenhofer(n int, seed uint64) Config {
	return Config{
		N:        n,
		M:        int64(n),
		Capacity: 2,
		Schedule: DoublingSchedule(32),
		Seed:     seed,
	}
}

// AdlerCollision returns the configuration for a collision-style
// protocol after Adler et al. [1]: every ball fixes d candidate bins
// up front and contacts all of them each round; every contacted bin
// grants at most ONE requester per round (the collision rule), so a
// ball is delayed exactly when it loses the collision at all d of its
// bins. Unlike the cuckoo-style fixed-capacity setting, the final
// maximum load emerges from collision resolution rather than a hard
// cap — mirroring [1], where r communication rounds trade against
// maximum load. The generous Capacity only guards the engine's
// feasibility invariant.
func AdlerCollision(n, d int, seed uint64) Config {
	return Config{
		N:              n,
		M:              int64(n),
		Capacity:       8,
		FixedChoices:   d,
		Schedule:       ConstantSchedule(d),
		AcceptPerRound: 1,
		Seed:           seed,
	}
}

// HeavyParallel returns the parallel analogue of the threshold
// protocol for the heavily loaded case: m balls, bin capacity
// ⌈m/n⌉+1 (the paper's maximum-load guarantee), fresh uniform
// contacts. It demonstrates that the ⌈m/n⌉+1 bound is reachable in
// few synchronous rounds with O(m) messages.
func HeavyParallel(n int, m int64, seed uint64) Config {
	return Config{
		N:        n,
		M:        m,
		Capacity: int(protocol.MaxLoadBound(n, m)),
		Schedule: DoublingSchedule(32),
		Seed:     seed,
	}
}
