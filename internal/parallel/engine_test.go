package parallel

import (
	"errors"
	"testing"
)

func TestLenzenWattenhoferBasics(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 14} {
		res, err := Run(LenzenWattenhofer(n, 1))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Placed != int64(n) {
			t.Fatalf("n=%d: placed %d", n, res.Placed)
		}
		if res.MaxLoad > 2 {
			t.Fatalf("n=%d: max load %d > 2", n, res.MaxLoad)
		}
		if res.Rounds > 20 {
			t.Errorf("n=%d: %d rounds, expected log*-ish", n, res.Rounds)
		}
		if res.Messages > int64(20*n) {
			t.Errorf("n=%d: %d messages, expected O(n)", n, res.Messages)
		}
		var total int
		for _, l := range res.Loads {
			total += l
		}
		if total != n {
			t.Fatalf("n=%d: loads sum to %d", n, total)
		}
	}
}

func TestRoundsGrowVerySlowly(t *testing.T) {
	// The hallmark of [12]: round count is essentially constant in n.
	small, err := Run(LenzenWattenhofer(1<<10, 2))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(LenzenWattenhofer(1<<16, 2))
	if err != nil {
		t.Fatal(err)
	}
	if big.Rounds > small.Rounds+5 {
		t.Errorf("rounds grew from %d (n=2^10) to %d (n=2^16)", small.Rounds, big.Rounds)
	}
}

func TestMessagesLinearInN(t *testing.T) {
	a, err := Run(LenzenWattenhofer(1<<12, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(LenzenWattenhofer(1<<13, 3))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b.Messages) / float64(a.Messages)
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("message ratio for 2x bins = %.2f, expected ~2 (O(n))", ratio)
	}
}

func TestSchedulingIndependentDeterminism(t *testing.T) {
	// The headline property of the engine: identical results regardless
	// of worker/shard parallelism, because randomness is derived from
	// (seed, round, ball/bin) coordinates.
	base := LenzenWattenhofer(1<<12, 77)
	configs := []Config{base, base, base}
	configs[0].Workers, configs[0].Shards = 1, 1
	configs[1].Workers, configs[1].Shards = 4, 3
	configs[2].Workers, configs[2].Shards = 16, 16
	var results []Result
	for _, cfg := range configs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Rounds != results[0].Rounds ||
			results[i].Messages != results[0].Messages ||
			results[i].MaxLoad != results[0].MaxLoad {
			t.Fatalf("config %d differs: %+v vs %+v", i,
				headline(results[i]), headline(results[0]))
		}
		for bin := range results[i].Loads {
			if results[i].Loads[bin] != results[0].Loads[bin] {
				t.Fatalf("config %d: bin %d load %d vs %d", i, bin,
					results[i].Loads[bin], results[0].Loads[bin])
			}
		}
	}
}

func headline(r Result) [3]int64 {
	return [3]int64{int64(r.Rounds), r.Messages, int64(r.MaxLoad)}
}

func TestSameSeedSameResult(t *testing.T) {
	a, err := Run(LenzenWattenhofer(1<<11, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(LenzenWattenhofer(1<<11, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.Rounds != b.Rounds {
		t.Fatal("same seed diverged")
	}
	c, err := Run(LenzenWattenhofer(1<<11, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages == c.Messages && a.Rounds == c.Rounds {
		sameLoads := true
		for i := range a.Loads {
			if a.Loads[i] != c.Loads[i] {
				sameLoads = false
				break
			}
		}
		if sameLoads {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestAdlerCollisionConverges(t *testing.T) {
	for _, d := range []int{2, 3} {
		res, err := Run(AdlerCollision(1<<12, d, 9))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if res.Placed != 1<<12 {
			t.Fatalf("d=%d: placed %d", d, res.Placed)
		}
		// One grant per bin per round caps loads by the round count,
		// and collision resolution keeps both small.
		if res.MaxLoad > res.Rounds {
			t.Fatalf("d=%d: max load %d exceeds rounds %d", d, res.MaxLoad, res.Rounds)
		}
		if res.Rounds > 20 {
			t.Errorf("d=%d: %d rounds to resolve collisions", d, res.Rounds)
		}
	}
}

func TestHeavyParallel(t *testing.T) {
	const n = 1 << 10
	const m = 16 * n
	res, err := Run(HeavyParallel(n, m, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != m {
		t.Fatalf("placed %d of %d", res.Placed, m)
	}
	if res.MaxLoad > 17 {
		t.Fatalf("max load %d > ceil(m/n)+1", res.MaxLoad)
	}
	if res.Rounds > 25 {
		t.Errorf("heavy case took %d rounds", res.Rounds)
	}
}

func TestNotConverged(t *testing.T) {
	// Capacity 1 with a single fixed choice per ball cannot resolve
	// collisions: two balls sharing their only candidate bin deadlock.
	cfg := Config{
		N: 16, M: 16, Capacity: 1, FixedChoices: 1,
		Schedule: ConstantSchedule(1), MaxRounds: 8, Seed: 3,
	}
	res, err := Run(cfg)
	if err == nil {
		t.Skip("collision-free draw; extremely unlikely but legal")
	}
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("error %v does not wrap ErrNotConverged", err)
	}
	if res.Placed >= cfg.M {
		t.Fatal("error reported but all balls placed")
	}
	if res.MaxLoad > 1 {
		t.Fatal("capacity bound violated in failed run")
	}
}

func TestCapacityNeverExceededProperty(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		n := 64 + int(seed*17)
		m := int64(n) * int64(1+seed%4)
		capacity := int(m/int64(n)) + 1
		res, err := Run(Config{
			N: n, M: m, Capacity: capacity, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		for bin, l := range res.Loads {
			if l > capacity {
				t.Fatalf("seed=%d: bin %d load %d > capacity %d", seed, bin, l, capacity)
			}
		}
	}
}

func TestAcceptPerRoundLimitsPlacementRate(t *testing.T) {
	// With AcceptPerRound=1, a bin can gain at most one ball per round,
	// so after r rounds no bin exceeds r.
	res, err := Run(Config{
		N: 128, M: 256, Capacity: 4, AcceptPerRound: 1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad > res.Rounds {
		t.Fatalf("max load %d exceeds rounds %d with AcceptPerRound=1",
			res.MaxLoad, res.Rounds)
	}
}

func TestZeroBalls(t *testing.T) {
	res, err := Run(Config{N: 8, M: 0, Capacity: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Messages != 0 || res.Placed != 0 {
		t.Fatalf("empty run not empty: %+v", res)
	}
}

func TestConfigPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"n=0":        {N: 0, M: 1, Capacity: 1},
		"m<0":        {N: 1, M: -1, Capacity: 1},
		"capacity=0": {N: 1, M: 1, Capacity: 0},
		"infeasible": {N: 4, M: 9, Capacity: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestDoublingSchedule(t *testing.T) {
	s := DoublingSchedule(8)
	want := []int{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := s(i + 1); got != w {
			t.Errorf("round %d: k = %d want %d", i+1, got, w)
		}
	}
}

func TestSchedulePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"doubling cap<1": func() { DoublingSchedule(0) },
		"constant k<1":   func() { ConstantSchedule(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFixedChoicesAreRespected(t *testing.T) {
	// With d fixed choices, every ball must land in one of them. Use
	// d=2 and verify via the engine's own choice table by re-deriving
	// it from a second run with capacity large enough that the first
	// offer always wins.
	cfg := AdlerCollision(256, 2, 21)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != cfg.M {
		t.Fatal("not all balls placed")
	}
	// The engine derives choices from (seed, 0xF1, ball); recompute and
	// check aggregate consistency: the multiset of loads must be
	// explainable by the choice graph — every bin with load > 0 must be
	// some ball's candidate. Normalize worker counts before driving the
	// engine internals directly (Run does this for callers).
	cfg.Workers, cfg.Shards = 2, 2
	candidate := make(map[int]bool)
	e := &engine{cfg: cfg}
	e.unplaced = make([]int64, cfg.M)
	for i := range e.unplaced {
		e.unplaced[i] = int64(i)
	}
	e.fixChoices()
	for _, cs := range e.choices {
		for _, c := range cs {
			candidate[int(c)] = true
		}
	}
	for bin, l := range res.Loads {
		if l > 0 && !candidate[bin] {
			t.Fatalf("bin %d loaded but is nobody's candidate", bin)
		}
	}
}

func BenchmarkLenzenWattenhofer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(LenzenWattenhofer(1<<12, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
