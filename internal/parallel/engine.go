// Package parallel implements a round-synchronous parallel
// balls-into-bins engine in the model of Adler et al. [1] and
// Lenzen–Wattenhofer [12], the line of work the paper situates itself
// in. Goroutines model the communication rounds naturally:
//
//   - Every round has three phases: REQUEST (each unplaced ball
//     contacts k bins), ACCEPT (each contacted bin offers slots to a
//     random subset of its requesters, bounded by its remaining
//     capacity), and COMMIT (each ball with at least one offer commits
//     to one bin; unclaimed offers lapse).
//   - Ball workers and bin shards run as goroutines with barrier
//     synchronization between phases; requests, accepts and commits are
//     the only communication, and every message is counted, giving the
//     message complexity the literature reports.
//
// Determinism is scheduling-independent: all randomness is derived
// from (seed, round, ball) and (seed, round, bin) coordinates, so the
// result is bit-identical regardless of how many workers or shards the
// engine uses. This is verified by tests.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Config describes a parallel allocation instance.
type Config struct {
	N int   // number of bins; required > 0
	M int64 // number of balls; required >= 0

	// Capacity bounds every bin's final load; bins stop issuing offers
	// once full. Capacity*N must be at least M. Required > 0.
	Capacity int

	// Schedule returns how many bins each unplaced ball contacts in
	// the given round (1-based). nil defaults to doubling 1, 2, 4, ...
	// capped at 32 — the adaptive contact growth of [12].
	Schedule func(round int) int

	// AcceptPerRound caps how many offers a bin issues per round;
	// 0 means "up to remaining capacity".
	AcceptPerRound int

	// FixedChoices, when d > 0, restricts every ball to d candidate
	// bins fixed up front (the collision-protocol model of [1]); each
	// round contacts min(Schedule(round), d) of them without
	// replacement. 0 means fresh uniform bins every round.
	FixedChoices int

	// MaxRounds aborts the run if balls remain unplaced (safety
	// bound). 0 defaults to 64.
	MaxRounds int

	// Workers is the number of ball-worker goroutines; Shards the
	// number of bin-shard goroutines. 0 defaults to GOMAXPROCS.
	Workers, Shards int

	// Seed drives all randomness.
	Seed uint64
}

// Result describes a completed parallel run.
type Result struct {
	Loads    []int // final per-bin loads
	MaxLoad  int
	Rounds   int
	Messages int64 // requests + offers + commits
	Placed   int64
}

// ErrNotConverged is wrapped in the error returned by Run when
// MaxRounds elapsed with balls still unplaced.
var ErrNotConverged = errors.New("parallel: balls left unplaced")

type request struct {
	ball int64
	bin  int32
}

// Run executes the round-synchronous protocol described by cfg.
func Run(cfg Config) (Result, error) {
	if cfg.N <= 0 {
		panic("parallel: Config.N must be positive")
	}
	if cfg.M < 0 {
		panic("parallel: Config.M must be non-negative")
	}
	if cfg.Capacity <= 0 {
		panic("parallel: Config.Capacity must be positive")
	}
	if int64(cfg.Capacity)*int64(cfg.N) < cfg.M {
		panic(fmt.Sprintf("parallel: capacity %d×%d cannot hold %d balls",
			cfg.Capacity, cfg.N, cfg.M))
	}
	if cfg.Schedule == nil {
		cfg.Schedule = DoublingSchedule(32)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}

	e := &engine{cfg: cfg}
	return e.run()
}

type engine struct {
	cfg Config

	loads    []int32
	placed   []bool
	unplaced []int64 // indices of unplaced balls, ascending
	choices  [][]int32

	messages int64
}

func (e *engine) run() (Result, error) {
	cfg := e.cfg
	e.loads = make([]int32, cfg.N)
	e.placed = make([]bool, cfg.M)
	e.unplaced = make([]int64, cfg.M)
	for i := range e.unplaced {
		e.unplaced[i] = int64(i)
	}
	if cfg.FixedChoices > 0 {
		e.fixChoices()
	}

	round := 0
	for len(e.unplaced) > 0 {
		round++
		if round > cfg.MaxRounds {
			return e.result(round - 1),
				fmt.Errorf("%w: %d after %d rounds", ErrNotConverged,
					len(e.unplaced), cfg.MaxRounds)
		}
		k := cfg.Schedule(round)
		if k < 1 {
			k = 1
		}

		reqs := e.requestPhase(round, k)
		offers := e.acceptPhase(round, reqs)
		e.commitPhase(round, offers)
	}
	return e.result(round), nil
}

func (e *engine) result(rounds int) Result {
	res := Result{
		Loads:    make([]int, len(e.loads)),
		Rounds:   rounds,
		Messages: e.messages,
		Placed:   e.cfg.M - int64(len(e.unplaced)),
	}
	for i, l := range e.loads {
		res.Loads[i] = int(l)
		if int(l) > res.MaxLoad {
			res.MaxLoad = int(l)
		}
	}
	return res
}

// fixChoices draws each ball's d fixed candidate bins (distinct).
func (e *engine) fixChoices() {
	d := e.cfg.FixedChoices
	n := uint64(e.cfg.N)
	e.choices = make([][]int32, e.cfg.M)
	e.parallelBalls(func(w int, balls []int64) {
		for _, b := range balls {
			src := rng.NewSplitMix64(rng.Mix(e.cfg.Seed, 0xF1, uint64(b)))
			cs := make([]int32, 0, d)
			for len(cs) < d {
				c := int32(rng.Uint64nFrom(src, n))
				dup := false
				for _, prev := range cs {
					if prev == c {
						dup = true
						break
					}
				}
				if !dup || int(n) < d {
					cs = append(cs, c)
				}
			}
			e.choices[b] = cs
		}
	})
}

// parallelBalls fans work over the unplaced balls across Workers
// goroutines. Each worker receives a contiguous slice, preserving
// per-ball determinism.
func (e *engine) parallelBalls(f func(worker int, balls []int64)) {
	w := e.cfg.Workers
	total := len(e.unplaced)
	if total == 0 {
		return
	}
	if w > total {
		w = total
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * total / w
		hi := (i + 1) * total / w
		wg.Add(1)
		go func(worker int, balls []int64) {
			defer wg.Done()
			f(worker, balls)
		}(i, e.unplaced[lo:hi])
	}
	wg.Wait()
}

// requestPhase generates this round's requests, grouped by shard and,
// within a shard, ordered by (ball, draw order) for determinism.
func (e *engine) requestPhase(round, k int) [][]request {
	s := e.cfg.Shards
	n := uint64(e.cfg.N)
	perWorker := make([][][]request, e.cfg.Workers)
	e.parallelBalls(func(worker int, balls []int64) {
		bufs := make([][]request, s)
		for _, b := range balls {
			src := rng.NewSplitMix64(rng.Mix(e.cfg.Seed, 0xA0, uint64(round), uint64(b)))
			if e.choices != nil {
				// Contact min(k, d) of the fixed choices, chosen by a
				// deterministic partial shuffle.
				cs := e.choices[b]
				kk := k
				if kk > len(cs) {
					kk = len(cs)
				}
				perm := make([]int32, len(cs))
				copy(perm, cs)
				for i := 0; i < kk; i++ {
					j := i + int(rng.Uint64nFrom(src, uint64(len(perm)-i)))
					perm[i], perm[j] = perm[j], perm[i]
					bin := perm[i]
					sh := int(bin) * s / e.cfg.N
					bufs[sh] = append(bufs[sh], request{ball: b, bin: bin})
				}
			} else {
				for i := 0; i < k; i++ {
					bin := int32(rng.Uint64nFrom(src, n))
					sh := int(bin) * s / e.cfg.N
					bufs[sh] = append(bufs[sh], request{ball: b, bin: bin})
				}
			}
		}
		perWorker[worker] = bufs
	})

	// Merge per-worker buffers in worker order: deterministic.
	byShard := make([][]request, s)
	var total int64
	for sh := 0; sh < s; sh++ {
		for w := range perWorker {
			if perWorker[w] != nil {
				byShard[sh] = append(byShard[sh], perWorker[w][sh]...)
			}
		}
		total += int64(len(byShard[sh]))
	}
	e.messages += total
	return byShard
}

// acceptPhase lets every contacted bin offer slots to a random subset
// of its requesters, bounded by remaining capacity and AcceptPerRound.
// It returns, per ball, the bins that offered (ordered by bin).
func (e *engine) acceptPhase(round int, byShard [][]request) map[int64][]int32 {
	s := e.cfg.Shards
	results := make([][]request, s) // offers emitted by each shard
	var wg sync.WaitGroup
	for sh := 0; sh < s; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			reqs := byShard[sh]
			if len(reqs) == 0 {
				return
			}
			// Group requesters by bin. Requests arrive in deterministic
			// order; a stable sort by bin keeps it so.
			sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].bin < reqs[b].bin })
			var offers []request
			i := 0
			for i < len(reqs) {
				j := i
				bin := reqs[i].bin
				for j < len(reqs) && reqs[j].bin == bin {
					j++
				}
				free := e.cfg.Capacity - int(e.loads[bin])
				if free > 0 {
					quota := free
					if e.cfg.AcceptPerRound > 0 && quota > e.cfg.AcceptPerRound {
						quota = e.cfg.AcceptPerRound
					}
					group := reqs[i:j]
					if quota >= len(group) {
						offers = append(offers, group...)
					} else {
						// Deterministic partial Fisher–Yates to pick
						// quota requesters uniformly.
						src := rng.NewSplitMix64(rng.Mix(e.cfg.Seed, 0xB0,
							uint64(round), uint64(bin)))
						for q := 0; q < quota; q++ {
							pick := q + int(rng.Uint64nFrom(src, uint64(len(group)-q)))
							group[q], group[pick] = group[pick], group[q]
							offers = append(offers, group[q])
						}
					}
				}
				i = j
			}
			results[sh] = offers
		}(sh)
	}
	wg.Wait()

	// Scatter offers to balls in shard order: deterministic.
	offersByBall := make(map[int64][]int32)
	for sh := 0; sh < s; sh++ {
		for _, o := range results[sh] {
			offersByBall[o.ball] = append(offersByBall[o.ball], o.bin)
			e.messages++
		}
	}
	return offersByBall
}

// commitPhase lets every ball with offers commit to one of them
// (uniformly at random), updates loads, and compacts the unplaced set.
func (e *engine) commitPhase(round int, offersByBall map[int64][]int32) {
	remaining := e.unplaced[:0]
	for _, b := range e.unplaced {
		offers := offersByBall[b]
		if len(offers) == 0 {
			remaining = append(remaining, b)
			continue
		}
		pick := offers[0]
		if len(offers) > 1 {
			src := rng.NewSplitMix64(rng.Mix(e.cfg.Seed, 0xC0, uint64(round), uint64(b)))
			pick = offers[rng.Uint64nFrom(src, uint64(len(offers)))]
		}
		e.loads[pick]++
		e.placed[b] = true
		e.messages++ // the commit message
	}
	e.unplaced = remaining
}

// DoublingSchedule returns the adaptive contact schedule k_r =
// min(2^{r-1}, cap): 1, 2, 4, ... as in [12], capped to bound message
// bursts.
func DoublingSchedule(cap int) func(int) int {
	if cap < 1 {
		panic("parallel: DoublingSchedule cap must be positive")
	}
	return func(round int) int {
		k := 1
		for i := 1; i < round; i++ {
			k *= 2
			if k >= cap {
				return cap
			}
		}
		return k
	}
}

// ConstantSchedule returns the schedule that contacts k bins every
// round.
func ConstantSchedule(k int) func(int) int {
	if k < 1 {
		panic("parallel: ConstantSchedule k must be positive")
	}
	return func(int) int { return k }
}
