package core

import (
	"math"
	"testing"

	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestMeasure(t *testing.T) {
	out := protocol.Run(protocol.NewAdaptive(), 16, 160, rng.New(1))
	m := Measure(out)
	if m.N != 16 || m.M != 160 {
		t.Fatalf("dimensions wrong: %+v", m)
	}
	if m.Samples != out.Samples {
		t.Fatalf("samples wrong: %+v", m)
	}
	if m.SamplesPerBall != float64(out.Samples)/160 {
		t.Fatalf("per-ball wrong: %+v", m)
	}
	if m.Gap != m.MaxLoad-m.MinLoad {
		t.Fatalf("gap inconsistent: %+v", m)
	}
	if m.Psi < 0 || m.Phi <= 0 {
		t.Fatalf("potentials wrong: %+v", m)
	}
}

func TestMeasureEmptyRun(t *testing.T) {
	out := protocol.Run(protocol.NewAdaptive(), 4, 0, rng.New(1))
	m := Measure(out)
	if m.SamplesPerBall != 0 {
		t.Fatalf("SamplesPerBall should be 0 for empty run: %+v", m)
	}
}

func TestRunOneDeterministic(t *testing.T) {
	f := func() protocol.Protocol { return protocol.NewThreshold() }
	a := RunOne(f, 32, 320, 99)
	b := RunOne(f, 32, 320, 99)
	if a != b {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
	c := RunOne(f, 32, 320, 100)
	if a.Samples == c.Samples && a.Psi == c.Psi {
		t.Log("different seeds produced identical metrics (possible but unlikely)")
	}
}

func TestPhiD(t *testing.T) {
	// Φ₂ is the golden ratio.
	if got := PhiD(2); math.Abs(got-(1+math.Sqrt(5))/2) > 1e-9 {
		t.Errorf("PhiD(2) = %v want golden ratio", got)
	}
	// Φ₃ is the tribonacci constant 1.839286...
	if got := PhiD(3); math.Abs(got-1.839286755214161) > 1e-9 {
		t.Errorf("PhiD(3) = %v want tribonacci constant", got)
	}
	// The paper notes 1.61 <= Φ_d <= 2 and Φ_d increases with d.
	prev := 0.0
	for d := 2; d <= 10; d++ {
		v := PhiD(d)
		if v <= prev || v < 1.61 || v >= 2 {
			t.Errorf("PhiD(%d) = %v violates 1.61 <= Φ_d < 2 or monotonicity", d, v)
		}
		prev = v
	}
}

func TestPhiDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PhiD(1) did not panic")
		}
	}()
	PhiD(1)
}

func TestPredictionsOrdering(t *testing.T) {
	// Structural relations from Table 1 at n = 10^4, m = n:
	// left[d] <= greedy[d] (asymmetric tie-breaking helps), and both
	// improve with d; memory(1,1) matches left[2]'s order.
	const n = 10000
	const m = int64(n)
	g2 := PredictGreedyMaxLoad(n, m, 2)
	g3 := PredictGreedyMaxLoad(n, m, 3)
	l2 := PredictLeftMaxLoad(n, m, 2)
	l3 := PredictLeftMaxLoad(n, m, 3)
	if !(g3 < g2) {
		t.Errorf("greedy[3] %v not below greedy[2] %v", g3, g2)
	}
	if !(l2 < g2) || !(l3 < g3) {
		t.Errorf("left not below greedy: l2=%v g2=%v l3=%v g3=%v", l2, g2, l3, g3)
	}
	mem := PredictMemoryMaxLoad(n)
	if math.Abs(mem-(l2-float64(m)/float64(n))) > 1e-9 {
		t.Errorf("memory(1,1) prediction %v should equal left[2]'s ln ln n/(2 ln Phi2) term %v",
			mem, l2-float64(m)/float64(n))
	}
}

func TestPredictSingleChoice(t *testing.T) {
	// m = n regime: log n / log log n.
	const n = 10000
	light := PredictSingleChoiceMaxLoad(n, n)
	ln := math.Log(float64(n))
	if math.Abs(light-ln/math.Log(ln)) > 1e-9 {
		t.Errorf("light-load prediction wrong: %v", light)
	}
	// Heavy regime grows like m/n + sqrt(2 (m/n) ln n).
	heavy := PredictSingleChoiceMaxLoad(n, 100*n)
	if heavy <= 100 {
		t.Errorf("heavy-load prediction %v should exceed m/n", heavy)
	}
}

func TestPredictThresholdTimeShape(t *testing.T) {
	// Overhead must be sublinear in m: (T(m)-m)/m decreases in m.
	const n = 10000
	small := PredictThresholdTime(n, 10*n) - float64(10*n)
	big := PredictThresholdTime(n, 1000*n) - float64(1000*n)
	if small/float64(10*n) <= big/float64(1000*n) {
		t.Error("threshold overhead fraction did not shrink with m")
	}
}

func TestPredictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PredictGreedyMaxLoad d=1 did not panic")
		}
	}()
	PredictGreedyMaxLoad(10, 10, 1)
}

func TestPredictMaxLoadBound(t *testing.T) {
	if got := PredictMaxLoadBound(10, 25); got != 4 {
		t.Fatalf("bound = %d want 4", got)
	}
}

func TestPredictNoSlack(t *testing.T) {
	// The ablation prediction must dominate plain adaptive's O(m).
	const n = 4096
	m := int64(16 * n)
	if PredictAdaptiveNoSlackTime(n, m) < 4*float64(m) {
		t.Error("no-slack prediction should be several times m at n=4096")
	}
}
