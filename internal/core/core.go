// Package core orchestrates single allocation runs and provides the
// closed-form predictions from the paper's Table 1, so measured values
// can be printed next to what the theory promises.
package core

import (
	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Metrics summarizes one completed allocation run with every quantity
// the paper's evaluation reports.
type Metrics struct {
	N int
	M int64

	// Samples is the allocation time: total random bin choices.
	Samples int64
	// SamplesPerBall is Samples/M (0 when M == 0).
	SamplesPerBall float64

	MaxLoad int
	MinLoad int
	Gap     int

	// Psi is the quadratic potential of the final load vector.
	Psi float64
	// Phi is the exponential potential with the paper's eps = 1/200.
	Phi float64
}

// Measure extracts Metrics from a finished outcome.
func Measure(out protocol.Outcome) Metrics {
	v := out.Vector
	m := Metrics{
		N:       v.N(),
		M:       v.Balls(),
		Samples: out.Samples,
		MaxLoad: v.MaxLoad(),
		MinLoad: v.MinLoad(),
		Gap:     v.Gap(),
		Psi:     v.QuadraticPotential(),
		Phi:     v.ExponentialPotential(loadvec.DefaultEpsilon),
	}
	if m.M > 0 {
		m.SamplesPerBall = float64(m.Samples) / float64(m.M)
	}
	return m
}

// RunOne builds a fresh protocol from f, runs m balls into n bins with
// the given seed via the naive reference engine, and returns the
// measured metrics. Use RunOneEngine to select the engine.
func RunOne(f protocol.Factory, n int, m int64, seed uint64) Metrics {
	return RunOneEngine(f, n, m, seed, protocol.EngineNaive)
}

// RunOneEngine is RunOne with an explicit engine selection.
func RunOneEngine(f protocol.Factory, n int, m int64, seed uint64, e protocol.Engine) Metrics {
	return Measure(protocol.RunEngine(f(), n, m, rng.New(seed), e))
}
