package core

import (
	"math"

	"repro/internal/protocol"
)

// This file evaluates the closed-form allocation-time and maximum-load
// expressions from the paper's Table 1, so the benchmark harness can
// print prediction columns next to measurements.

// PhiD returns Vöcking's generalized golden ratio Φ_d: the unique real
// root in (1, 2) of x^d = x^{d-1} + x^{d-2} + ... + 1. Φ₂ is the
// golden ratio 1.618...; Φ_d increases towards 2. It panics if d < 2.
func PhiD(d int) float64 {
	if d < 2 {
		panic("core: PhiD with d < 2")
	}
	// f(x) = x^d - (x^{d-1} + ... + 1); f(1) = 1-d < 0, f(2) = 1 > 0.
	f := func(x float64) float64 {
		sum := 0.0
		for i := 0; i < d; i++ {
			sum += math.Pow(x, float64(i))
		}
		return math.Pow(x, float64(d)) - sum
	}
	lo, hi := 1.0, 2.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// PredictGreedyMaxLoad returns the Table 1 expression for greedy[d]:
// m/n + ln ln n / ln d + Θ(1) (the Θ(1) term is omitted).
func PredictGreedyMaxLoad(n int, m int64, d int) float64 {
	if d < 2 {
		panic("core: PredictGreedyMaxLoad with d < 2")
	}
	return float64(m)/float64(n) + math.Log(math.Log(float64(n)))/math.Log(float64(d))
}

// PredictLeftMaxLoad returns the Table 1 expression for left[d]:
// m/n + ln ln n / (d·ln Φ_d) + Θ(1) (the Θ(1) term is omitted).
func PredictLeftMaxLoad(n int, m int64, d int) float64 {
	return float64(m)/float64(n) +
		math.Log(math.Log(float64(n)))/(float64(d)*math.Log(PhiD(d)))
}

// PredictMemoryMaxLoad returns the Table 1 expression for the
// (1,1)-memory protocol of [14] at m = n:
// ln ln n / (2·ln Φ₂) + Θ(1) (the Θ(1) term is omitted).
func PredictMemoryMaxLoad(n int) float64 {
	return math.Log(math.Log(float64(n))) / (2 * math.Log(PhiD(2)))
}

// PredictSingleChoiceMaxLoad returns the classical bounds for the
// single-choice process: log n/log log n·(1+o(1)) for m = n, and
// m/n + Θ(sqrt(m·log n / n)) in the heavily loaded case m >> n log n
// (Raab–Steger). The o(1)/Θ constants are omitted.
func PredictSingleChoiceMaxLoad(n int, m int64) float64 {
	ln := math.Log(float64(n))
	if m <= int64(n) {
		return ln / math.Log(ln)
	}
	return float64(m)/float64(n) + math.Sqrt(2*float64(m)*ln/float64(n))
}

// PredictThresholdTime returns Theorem 4.1's allocation time
// m + m^{3/4}·n^{1/4} (the big-O constant taken as 1, which the
// paper's experiments indicate is the right scale).
func PredictThresholdTime(n int, m int64) float64 {
	return float64(m) + math.Pow(float64(m), 0.75)*math.Pow(float64(n), 0.25)
}

// PredictMaxLoadBound returns the deterministic ⌈m/n⌉+1 guarantee
// shared by threshold and adaptive.
func PredictMaxLoadBound(n int, m int64) int64 {
	return protocol.MaxLoadBound(n, m)
}

// PredictAdaptiveNoSlackTime returns the Θ(m·log n) coupon-collector
// cost of the ablation discussed in Section 2 (constant taken as 1:
// each stage of n balls costs ~n·H_n ≈ n·ln n samples).
func PredictAdaptiveNoSlackTime(n int, m int64) float64 {
	return float64(m) * math.Log(float64(n))
}
