// Package hdrhist provides a fixed-memory, log-bucketed histogram for
// latency-class values (non-negative int64, typically nanoseconds),
// safe for concurrent recording.
//
// The bucket layout is log-linear, in the spirit of HdrHistogram:
// values below 2^subBits land in unit-width buckets (exact), and each
// further power of two is split into 2^subBits equal sub-buckets, so
// the relative quantization error is bounded by 2^-subBits ≈ 3% at
// every magnitude. The whole range [0, 2^62] fits in a fixed array of
// a couple thousand atomic counters, so Record is a single atomic
// increment — no allocation, no locking — and a histogram can sit on
// the hot path of a dispatcher or load generator.
package hdrhist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits controls resolution: 2^subBits sub-buckets per power of
	// two, giving ≤ 1/2^subBits relative error on quantiles.
	subBits = 5
	sub     = 1 << subBits

	// numBuckets covers every non-negative int64: shift ranges over
	// 0..63-1-subBits and each shift contributes `sub` buckets beyond
	// the initial 2*sub unit-ish region. See bucketIdx.
	numBuckets = (64 - subBits) * sub
)

// Hist is a concurrent log-bucketed histogram. The zero value is NOT
// ready to use; call New.
type Hist struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stores minus the minimum, so zero means "unset"
}

// New returns an empty histogram.
func New() *Hist {
	h := &Hist{}
	h.min.Store(-1 << 62) // sentinel: no value recorded yet
	return h
}

// bucketIdx maps v ≥ 0 to its bucket. Values in [0, 2*sub) map to
// themselves (shift 0); beyond that, shift = len(v)-1-subBits and the
// index advances by `sub` per shift, tracking the top subBits+1 bits.
func bucketIdx(v int64) int {
	shift := bits.Len64(uint64(v)) - 1 - subBits
	if shift < 0 {
		shift = 0
	}
	return shift*sub + int(v>>uint(shift))
}

// bucketHi returns the largest value mapping to bucket idx — the
// inclusive upper bound reported for quantiles.
func bucketHi(idx int) int64 {
	if idx < 2*sub {
		return int64(idx)
	}
	shift := idx/sub - 1
	return (int64(idx-shift*sub)+1)<<uint(shift) - 1
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.min.Load()
		if -v <= old || h.min.CompareAndSwap(old, -v) {
			break
		}
	}
}

// RecordSince records the elapsed nanoseconds since t0.
func (h *Hist) RecordSince(t0 time.Time) { h.Record(int64(time.Since(t0))) }

// Count returns the number of observations so far.
func (h *Hist) Count() int64 { return h.count.Load() }

// Reset zeroes the histogram, returning it to the state New produced.
// Like Snapshot, it is not atomic across buckets: a Record racing the
// reset may land wholly before, wholly after, or be split across the
// boundary — acceptable for windowed monitoring, where the window
// edges are approximate anyway.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(-1 << 62)
}

// SnapshotAndReset captures the current state and zeroes the histogram
// in one call — the windowed-reporting primitive: call it once per
// interval and each snapshot holds that interval's observations, while
// Merge over the sequence of snapshots reproduces the full history
// (see the merge-after-reset tests). Each bucket is collected with an
// atomic swap, so an observation racing the call lands in either the
// returned window or the next one — never both, never lost; only the
// Sum/Max/Min sidecars of a mid-flight Record can straddle the
// boundary (same tolerance as Snapshot).
func (h *Hist) SnapshotAndReset() Snapshot {
	s := Snapshot{
		Sum: h.sum.Swap(0),
		Max: h.max.Swap(0),
		Min: -h.min.Swap(-1 << 62),
	}
	var total int64
	for i := range h.counts {
		c := h.counts[i].Swap(0)
		if c == 0 {
			continue
		}
		total += c
		s.buckets = append(s.buckets, Bucket{
			Lo:    bucketLo(i),
			Hi:    bucketHi(i),
			Count: c,
		})
	}
	s.Count = total
	// Deduct exactly the observations collected, so racing Records keep
	// their count for the next window.
	h.count.Add(-total)
	if total == 0 {
		s.Max, s.Min, s.Sum = 0, 0, 0
	}
	return s
}

// Snapshot captures the current state for analysis. Concurrent Records
// during the copy may straddle the snapshot (it is not atomic across
// buckets); totals are reconciled so the snapshot is self-consistent.
func (h *Hist) Snapshot() Snapshot {
	s := Snapshot{
		Sum: h.sum.Load(),
		Max: h.max.Load(),
		Min: -h.min.Load(),
	}
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		total += c
		s.buckets = append(s.buckets, Bucket{
			Lo:    bucketLo(i),
			Hi:    bucketHi(i),
			Count: c,
		})
	}
	s.Count = total
	if total == 0 {
		s.Max, s.Min, s.Sum = 0, 0, 0
	}
	return s
}

func bucketLo(idx int) int64 {
	if idx == 0 {
		return 0
	}
	return bucketHi(idx-1) + 1
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// Snapshot is an immutable view of a histogram.
type Snapshot struct {
	Count, Sum, Min, Max int64
	buckets              []Bucket
}

// Buckets returns the non-empty buckets in ascending value order.
func (s Snapshot) Buckets() []Bucket { return s.buckets }

// Mean returns the arithmetic mean, or 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper edge of the bucket containing the ⌈q·count⌉-th smallest
// observation, clamped to the recorded Max. Quantile(0) is Min,
// Quantile(1) is Max; an empty snapshot yields 0.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for _, b := range s.buckets {
		seen += b.Count
		if seen >= rank {
			if b.Hi > s.Max {
				return s.Max
			}
			return b.Hi
		}
	}
	return s.Max
}

// Merge returns the combination of two snapshots, as if every
// observation had been recorded into one histogram.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := Snapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	i, j := 0, 0
	for i < len(s.buckets) || j < len(o.buckets) {
		switch {
		case j >= len(o.buckets) || (i < len(s.buckets) && s.buckets[i].Lo < o.buckets[j].Lo):
			out.buckets = append(out.buckets, s.buckets[i])
			i++
		case i >= len(s.buckets) || o.buckets[j].Lo < s.buckets[i].Lo:
			out.buckets = append(out.buckets, o.buckets[j])
			j++
		default: // same bucket
			b := s.buckets[i]
			b.Count += o.buckets[j].Count
			out.buckets = append(out.buckets, b)
			i, j = i+1, j+1
		}
	}
	return out
}
