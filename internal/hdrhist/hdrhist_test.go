package hdrhist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketRoundTrip pins the log-linear layout: every bucket's
// bounds map back to the bucket, bounds tile the value axis without
// gaps, and the relative width respects the 2^-subBits error bound.
func TestBucketRoundTrip(t *testing.T) {
	prevHi := int64(-1)
	for idx := 0; idx < numBuckets; idx++ {
		lo, hi := bucketLo(idx), bucketHi(idx)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo %d, want %d (gap)", idx, lo, prevHi+1)
		}
		if bucketIdx(lo) != idx || bucketIdx(hi) != idx {
			t.Fatalf("bucket %d: [%d,%d] maps to %d,%d",
				idx, lo, hi, bucketIdx(lo), bucketIdx(hi))
		}
		if lo >= 2*sub && float64(hi-lo+1) > float64(lo)/float64(sub)+1 {
			t.Fatalf("bucket %d too wide: [%d,%d]", idx, lo, hi)
		}
		prevHi = hi
		if hi >= 1<<62 {
			break
		}
	}
}

func TestQuantileExactSmall(t *testing.T) {
	h := New()
	for v := int64(1); v <= 100; v++ {
		h.Record(v * 10)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 10 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if m := s.Mean(); m != 505 {
		t.Fatalf("mean = %v", m)
	}
	// The bucketed quantile may overshoot by one bucket width (~3%).
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0, 10}, {0.5, 500}, {0.99, 990}, {1, 1000}} {
		got := s.Quantile(tc.q)
		if got < tc.want || float64(got) > float64(tc.want)*1.07+1 {
			t.Errorf("Quantile(%v) = %d, want ≈%d", tc.q, got, tc.want)
		}
	}
}

// TestQuantileAccuracy compares against the exact empirical quantile
// on lognormal-ish data: the bucketed answer must bound it from above
// within the layout's relative error.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New()
	var vals []int64
	for i := 0; i < 200000; i++ {
		v := int64(rng.ExpFloat64() * 1e6)
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := s.Quantile(q)
		lo := float64(exact) * (1 - 2.0/sub)
		hi := float64(exact)*(1+2.0/sub) + 1
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("Quantile(%v) = %d, exact %d (want within ±%.0f%%)",
				q, got, exact, 200.0/sub)
		}
	}
}

func TestEmptyAndNegative(t *testing.T) {
	h := New()
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	h.Record(-5) // clamps to 0
	s = h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 || s.Quantile(1) != 0 {
		t.Fatalf("negative clamp: %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for v := int64(0); v < 1000; v++ {
		a.Record(v)
		b.Record(v + 500)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 2000 || m.Min != 0 || m.Max != 1499 {
		t.Fatalf("merge: %+v", m)
	}
	all := New()
	for v := int64(0); v < 1000; v++ {
		all.Record(v)
		all.Record(v + 500)
	}
	want := all.Snapshot()
	if m.Sum != want.Sum {
		t.Fatalf("merge sum %d want %d", m.Sum, want.Sum)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if m.Quantile(q) != want.Quantile(q) {
			t.Errorf("merge Quantile(%v) = %d, combined-histogram %d",
				q, m.Quantile(q), want.Quantile(q))
		}
	}
	empty := New().Snapshot()
	if got := empty.Merge(want); got.Count != want.Count {
		t.Fatalf("empty.Merge lost data")
	}
	if got := want.Merge(empty); got.Count != want.Count {
		t.Fatalf("Merge(empty) lost data")
	}
}

// TestMergeAfterReset pins the windowed-reporting contract: recording
// in intervals punctuated by SnapshotAndReset and merging the window
// snapshots reproduces the one-histogram view of the full history —
// counts, sum, min/max and every quantile.
func TestMergeAfterReset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h, all := New(), New()
	var windows []Snapshot
	for w := 0; w < 5; w++ {
		for i := 0; i < 20000; i++ {
			v := int64(rng.ExpFloat64() * float64(uint64(1)<<uint(10+3*w)))
			h.Record(v)
			all.Record(v)
		}
		s := h.SnapshotAndReset()
		if s.Count != 20000 {
			t.Fatalf("window %d count %d want 20000", w, s.Count)
		}
		windows = append(windows, s)
	}
	if c := h.Count(); c != 0 {
		t.Fatalf("count %d after final reset, want 0", c)
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("non-empty snapshot after reset: %+v", s)
	}

	merged := windows[0]
	for _, w := range windows[1:] {
		merged = merged.Merge(w)
	}
	want := all.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum ||
		merged.Min != want.Min || merged.Max != want.Max {
		t.Fatalf("merged %+v, full-history %+v", merged, want)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("Quantile(%v): merged %d, full-history %d",
				q, merged.Quantile(q), want.Quantile(q))
		}
	}

	// Recording after a reset starts a fresh window (min/max included).
	h.Record(42)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("post-reset window: %+v", s)
	}
}

// TestSnapshotAndResetConcurrent interleaves windowed collection with
// concurrent recorders: with -race this is the windowing concurrency
// test, and no observation may be lost or double-counted across
// windows.
func TestSnapshotAndResetConcurrent(t *testing.T) {
	const workers, perWorker = 8, 5000
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Record(int64(rng.Intn(1 << 30)))
			}
		}(w)
	}
	var total int64
	stop := make(chan struct{})
	var collector sync.WaitGroup
	collector.Add(1)
	go func() {
		defer collector.Done()
		for {
			select {
			case <-stop:
				return
			default:
				total += h.SnapshotAndReset().Count
			}
		}
	}()
	wg.Wait()
	close(stop)
	collector.Wait()
	total += h.Snapshot().Count // the final, uncollected window
	if total != workers*perWorker {
		t.Fatalf("windows sum to %d observations, want %d", total, workers*perWorker)
	}
}

// TestConcurrentRecord hammers Record from many goroutines; run with
// -race this is the concurrency acceptance test, and the totals must
// balance exactly.
func TestConcurrentRecord(t *testing.T) {
	const workers, perWorker = 8, 5000
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Record(int64(rng.Intn(1 << 30)))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count %d want %d", s.Count, workers*perWorker)
	}
	var total int64
	for _, b := range s.Buckets() {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}
