package load

import (
	"context"
	"fmt"
	"sync"
	"time"

	ballsbins "repro"
	"repro/internal/cluster"
	"repro/internal/keyed"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/watch"
)

// ClusterTarget drives a routing tier in process: bbload builds K
// in-proc dispatch cores (the backends), fronts them with a
// cluster.Router under the chosen policy, and sends every operation
// through the router — the whole bbload → bbproxy → K×bbserved path
// minus the network, so routing policies are comparable on one CPU
// without pretending to have cluster parallelism.
type ClusterTarget struct {
	R *cluster.Router
	// mu guards R across RestartProxy (which crashes and rebuilds the
	// router mid-run); operations take the read lock, so during the
	// rebuild they block rather than error — the in-proc analogue of
	// clients retrying against a restarting proxy.
	mu sync.RWMutex
	// rcfg rebuilds the router after a crash (restart scenarios).
	rcfg cluster.Config
	// dispatchers are owned by the target when built via
	// NewInprocCluster; Close drains them.
	dispatchers []*serve.Dispatcher
}

// router returns the current router under the read lock.
func (t *ClusterTarget) router() *cluster.Router {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.R
}

// ClusterConfig parameterizes NewInprocCluster.
type ClusterConfig struct {
	// Backends is the number of in-proc backends K. Required.
	Backends int
	// Spec/N/Shards/Engine/Seed/Horizon configure EACH backend's
	// dispatch core (N bins per backend; backend i seeds with Seed+i).
	Spec    ballsbins.Spec
	N       int
	Shards  int
	Engine  ballsbins.Engine
	Seed    uint64
	Horizon int64
	// Policy routes across the backends. Required.
	Policy cluster.Policy
	// Keyed, when non-nil, gives the router a keyed placement tier
	// (keys → backends); each backend's dispatcher additionally runs
	// its own keyed tier (keys → shards) regardless.
	Keyed *keyed.Config
	// Staleness is the router's load-view refresh window; 0 keeps the
	// view on exact local accounting (the single-router case).
	Staleness time.Duration
	// FailAfter/RiseAfter forward the membership thresholds (default 2).
	FailAfter, RiseAfter int
	// HealthEvery enables the router's health loop — needed for
	// kill scenarios, where eviction must happen without waiting for
	// enough traffic failures.
	HealthEvery time.Duration
	// DataDir, when set, makes the router's keyed tier durable (WAL +
	// snapshots in that directory) — required for restart scenarios.
	DataDir       string
	SnapshotEvery int
	Fsync         string
	// Watch configures the invariant watchdog on the router AND on each
	// in-proc backend, so a cluster run re-proves the paper bounds on
	// every tier it spans. Set Watch.Disabled to run without watchdogs.
	Watch watch.Options
}

// NewInprocCluster builds K in-proc backends and a router over them.
func NewInprocCluster(cfg ClusterConfig) (*ClusterTarget, error) {
	if cfg.Backends < 1 {
		return nil, fmt.Errorf("load: cluster needs at least 1 backend, got %d", cfg.Backends)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("load: cluster needs a routing policy")
	}
	t := &ClusterTarget{}
	backends := make([]cluster.Backend, cfg.Backends)
	for i := 0; i < cfg.Backends; i++ {
		d := serve.NewDispatcher(serve.Config{
			Spec:    cfg.Spec,
			N:       cfg.N,
			Shards:  cfg.Shards,
			Seed:    cfg.Seed + uint64(i),
			Engine:  cfg.Engine,
			Horizon: cfg.Horizon,
			Watch:   cfg.Watch,
		})
		t.dispatchers = append(t.dispatchers, d)
		backends[i] = &cluster.InprocBackend{D: d, Label: fmt.Sprintf("inproc-%d", i)}
	}
	t.rcfg = cluster.Config{
		Backends:       backends,
		BinsPerBackend: cfg.N,
		Policy:         cfg.Policy,
		Seed:           cfg.Seed,
		Staleness:      cfg.Staleness,
		HealthEvery:    cfg.HealthEvery,
		FailAfter:      cfg.FailAfter,
		RiseAfter:      cfg.RiseAfter,
		Keyed:          cfg.Keyed,
		Watch:          cfg.Watch,
	}
	if cfg.DataDir != "" {
		t.rcfg.KeyedStore = &keyed.StoreOptions{
			Dir:           cfg.DataDir,
			SnapshotEvery: cfg.SnapshotEvery,
			Fsync:         cfg.Fsync,
		}
	}
	rt, _, err := cluster.OpenRouter(t.rcfg)
	if err != nil {
		return nil, err
	}
	t.R = rt
	return t, nil
}

// Place implements Target via the router.
func (t *ClusterTarget) Place(ctx context.Context, count int) ([]int, int64, error) {
	return t.router().Place(ctx, count)
}

// Remove implements Target via the router.
func (t *ClusterTarget) Remove(ctx context.Context, bin int) error {
	return t.router().Remove(ctx, bin)
}

// ReadStats implements StatsReader with the router's flattened view.
func (t *ClusterTarget) ReadStats(context.Context) (serve.StatsView, error) {
	return t.router().StatsView(), nil
}

// ReadClusterStats implements ClusterStatsReader.
func (t *ClusterTarget) ReadClusterStats(context.Context) (cluster.Stats, bool, error) {
	return t.router().Stats(), true, nil
}

// PlaceKey implements KeyedTarget via the router's keyed tier.
func (t *ClusterTarget) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	return t.router().PlaceKeyed(ctx, key)
}

// RemoveKey implements KeyedTarget.
func (t *ClusterTarget) RemoveKey(ctx context.Context, bin int, key string) error {
	return t.router().RemoveKeyed(ctx, bin, key)
}

// ReadKeyedStats implements KeyedStatsReader; ok is false when the
// router has no keyed tier.
func (t *ClusterTarget) ReadKeyedStats(context.Context) (keyed.Stats, bool, error) {
	km := t.router().Keyed()
	if km == nil {
		return keyed.Stats{}, false, nil
	}
	return km.Stats(), true, nil
}

// ReadTrace implements TraceReader from the router's recorder — the
// routing hop's view (probe/forward spans), not the backends'.
func (t *ClusterTarget) ReadTrace(_ context.Context, id string) (obs.TraceResponse, bool, error) {
	r := t.router().Obs()
	if id != "" {
		return obs.TraceResponse{Hop: r.Hop(), Ops: r.OpsByTrace(id)}, true, nil
	}
	return obs.TraceResponse{Hop: r.Hop(), Ops: r.Ops(0)}, true, nil
}

// ReadStageStats implements StageStatsReader.
func (t *ClusterTarget) ReadStageStats(context.Context) (map[string]obs.StageSummary, bool, error) {
	return t.router().Obs().StageSummaries(), true, nil
}

// ReadWatch implements WatchReader with the routing hop's time series.
// The violation verdict covers every tier the run spans: the router's
// count plus each in-proc backend's own watchdog — a bound broken on a
// backend fails the run even though the routing series stays clean.
func (t *ClusterTarget) ReadWatch(context.Context) (watch.SeriesResponse, bool, error) {
	m := t.router().Watch()
	if m == nil {
		return watch.SeriesResponse{}, false, nil
	}
	doc := m.SeriesDoc(0)
	for _, d := range t.dispatchers {
		doc.ViolationsTotal += d.Watch().ViolationsTotal()
	}
	return doc, true, nil
}

// RestartProxy implements ProxyRestarter: it crashes the router
// without flushing (the in-proc analogue of kill -9 on a bbproxy —
// the WAL tail is whatever made it to the OS), rebuilds it from the
// same data directory, and reports the recovery cost. Operations
// issued during the rebuild block on the lock rather than erroring.
// Requires a DataDir-configured target.
func (t *ClusterTarget) RestartProxy() (recoveryMs int64, recovered int64, err error) {
	if t.rcfg.KeyedStore == nil {
		return 0, 0, fmt.Errorf("load: RestartProxy needs a DataDir-configured cluster")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.R.Crash()
	rt, rec, err := cluster.OpenRouter(t.rcfg)
	if err != nil {
		return 0, 0, err
	}
	t.R = rt
	if km := rt.Keyed(); km != nil {
		recovered = km.Stats().Keys
	}
	return rec.ReplayMs, recovered, nil
}

// KillBackend implements BackendKiller: it abruptly stops the
// highest-slot still-running backend's dispatcher mid-run (the
// in-proc analogue of kill -9: its Place/Remove/Health all fail
// immediately, so traffic errors and health probes evict it), and
// returns the killed slot (-1 when every backend is already dead).
func (t *ClusterTarget) KillBackend() int {
	for slot := len(t.dispatchers) - 1; slot >= 0; slot-- {
		if !t.dispatchers[slot].Draining() {
			t.dispatchers[slot].Close()
			return slot
		}
	}
	return -1
}

// Close stops the router, then drains the owned backends (Close is
// idempotent, so an already-killed backend is fine).
func (t *ClusterTarget) Close() {
	t.router().Close()
	for _, d := range t.dispatchers {
		d.Close()
	}
}
