package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/keyed"
	"repro/internal/netutil"
	"repro/internal/obs"
	"repro/internal/serve"
)

// InProc drives a dispatch core directly — no network, so it measures
// the dispatcher itself (the mode used for combiner throughput
// benchmarks).
type InProc struct {
	D *serve.Dispatcher
}

// Place implements Target.
func (t InProc) Place(ctx context.Context, count int) ([]int, int64, error) {
	return t.D.PlaceMany(ctx, count)
}

// Remove implements Target.
func (t InProc) Remove(ctx context.Context, bin int) error {
	return t.D.Remove(ctx, bin)
}

// ReadStats implements StatsReader.
func (t InProc) ReadStats(context.Context) (serve.StatsView, error) {
	return t.D.Stats(), nil
}

// PlaceKey implements KeyedTarget.
func (t InProc) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	bin, samples, err := t.D.PlaceKeyed(ctx, key)
	if err != nil {
		return nil, 0, err
	}
	return []int{bin}, samples, nil
}

// RemoveKey implements KeyedTarget.
func (t InProc) RemoveKey(ctx context.Context, bin int, key string) error {
	return t.D.RemoveKeyed(ctx, bin, key)
}

// ReadKeyedStats implements KeyedStatsReader.
func (t InProc) ReadKeyedStats(context.Context) (keyed.Stats, bool, error) {
	return t.D.KeyedStats(), true, nil
}

// ReadTrace implements TraceReader from the dispatcher's recorder.
func (t InProc) ReadTrace(_ context.Context, id string) (obs.TraceResponse, bool, error) {
	r := t.D.Obs()
	if id != "" {
		return obs.TraceResponse{Hop: r.Hop(), Ops: r.OpsByTrace(id)}, true, nil
	}
	return obs.TraceResponse{Hop: r.Hop(), Ops: r.Ops(0)}, true, nil
}

// ReadStageStats implements StageStatsReader.
func (t InProc) ReadStageStats(context.Context) (map[string]obs.StageSummary, bool, error) {
	return t.D.Obs().StageSummaries(), true, nil
}

// HTTPTarget drives a bbserved instance over its HTTP API.
type HTTPTarget struct {
	Base   string // e.g. "http://127.0.0.1:8080"
	Client *http.Client

	bytes netutil.ByteCounter
	ops   atomic.Int64
}

// NewHTTPTarget returns a target for the server at base with a client
// tuned for many concurrent keep-alive connections.
func NewHTTPTarget(base string) *HTTPTarget {
	return NewHTTPTargetConns(base, 0)
}

// NewHTTPTargetConns is NewHTTPTarget with a hard cap on concurrent
// connections; conns=1 forces every request through one socket — the
// honest single-connection baseline the wire transport is measured
// against. conns=0 means unlimited.
func NewHTTPTargetConns(base string, conns int) *HTTPTarget {
	t := &HTTPTarget{Base: base}
	tr := netutil.PooledTransport(512, conns)
	netutil.CountConns(tr, &t.bytes)
	t.Client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	return t
}

// ReadTransportStats implements TransportStatsReader. HTTP does one
// request per write, so the coalescing factor is definitionally 1;
// bytes/op is measured at the socket (headers included), which is the
// point of the comparison.
func (t *HTTPTarget) ReadTransportStats() (TransportStats, bool) {
	ops := t.ops.Load()
	if ops == 0 {
		return TransportStats{Transport: "http"}, true
	}
	return TransportStats{
		Transport:        "http",
		CoalescingFactor: 1,
		BytesPerOp:       float64(t.bytes.Total()) / float64(ops),
	}, true
}

func (t *HTTPTarget) post(ctx context.Context, path string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+path, nil)
	if err != nil {
		return 0, err
	}
	if id := obs.TraceFrom(ctx); id != 0 {
		req.Header.Set(obs.Header, obs.FormatTrace(id))
	}
	t.ops.Add(1)
	resp, err := t.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			return resp.StatusCode, fmt.Errorf("load: decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Place implements Target via POST /v1/place.
func (t *HTTPTarget) Place(ctx context.Context, count int) ([]int, int64, error) {
	path := "/v1/place"
	if count != 1 {
		path = fmt.Sprintf("/v1/place?count=%d", count)
	}
	var pr serve.PlaceResponse
	status, err := t.post(ctx, path, &pr)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, 0, fmt.Errorf("load: place: status %d", status)
	}
	bins := pr.Bins
	if len(bins) == 0 {
		bins = []int{pr.Bin}
	}
	return bins, pr.Samples, nil
}

// Remove implements Target via POST /v1/remove.
func (t *HTTPTarget) Remove(ctx context.Context, bin int) error {
	return t.RemoveKey(ctx, bin, "")
}

// PlaceKey implements KeyedTarget via POST /v1/place?key=.
func (t *HTTPTarget) PlaceKey(ctx context.Context, key string) ([]int, int64, error) {
	var pr serve.PlaceResponse
	status, err := t.post(ctx, "/v1/place?key="+url.QueryEscape(key), &pr)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, 0, fmt.Errorf("load: keyed place: status %d", status)
	}
	return []int{pr.Bin}, pr.Samples, nil
}

// RemoveKey implements KeyedTarget via POST /v1/remove?bin=&key=.
func (t *HTTPTarget) RemoveKey(ctx context.Context, bin int, key string) error {
	path := fmt.Sprintf("/v1/remove?bin=%d", bin)
	if key != "" {
		path += "&key=" + url.QueryEscape(key)
	}
	var rr serve.RemoveResponse
	status, err := t.post(ctx, path, &rr)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return serve.ErrEmptyBin
	default:
		return fmt.Errorf("load: remove: status %d", status)
	}
}

// statsEnvelope is /v1/stats as served by either tier: the serve
// fields, plus the aggregated cluster block a bbproxy adds (absent —
// zero — on a plain bbserved).
type statsEnvelope struct {
	serve.StatsResponse
	Cluster cluster.Stats `json:"cluster"`
}

func (t *HTTPTarget) readStatsResponse(ctx context.Context) (statsEnvelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/v1/stats", nil)
	if err != nil {
		return statsEnvelope{}, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return statsEnvelope{}, err
	}
	defer resp.Body.Close()
	var sr statsEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return statsEnvelope{}, err
	}
	return sr, nil
}

// ReadStats implements StatsReader via GET /v1/stats.
func (t *HTTPTarget) ReadStats(ctx context.Context) (serve.StatsView, error) {
	sr, err := t.readStatsResponse(ctx)
	return sr.StatsView, err
}

// ReadInfo fetches the server's configuration block, so load runs can
// be labeled with the protocol/n/shards actually served.
func (t *HTTPTarget) ReadInfo(ctx context.Context) (serve.Info, error) {
	sr, err := t.readStatsResponse(ctx)
	return sr.Info, err
}

// ReadClusterStats implements ClusterStatsReader: when the target is a
// bbproxy its /v1/stats carries an aggregated cluster block; a plain
// bbserved has none and ok is false.
func (t *HTTPTarget) ReadClusterStats(ctx context.Context) (cluster.Stats, bool, error) {
	sr, err := t.readStatsResponse(ctx)
	if err != nil {
		return cluster.Stats{}, false, err
	}
	return sr.Cluster, sr.Cluster.Policy != "", nil
}

// ReadKeyedStats implements KeyedStatsReader: a bbproxy reports its
// keyed tier inside the cluster block (keys → backends), a plain
// bbserved at the top level (keys → shards).
func (t *HTTPTarget) ReadKeyedStats(ctx context.Context) (keyed.Stats, bool, error) {
	sr, err := t.readStatsResponse(ctx)
	if err != nil {
		return keyed.Stats{}, false, err
	}
	if sr.Cluster.Keyed != nil {
		return *sr.Cluster.Keyed, true, nil
	}
	if sr.Keyed != nil {
		return *sr.Keyed, true, nil
	}
	return keyed.Stats{}, false, nil
}

// ReadTrace implements TraceReader via GET /v1/trace[?id=]; ok is
// false when the server predates the endpoint (404).
func (t *HTTPTarget) ReadTrace(ctx context.Context, id string) (obs.TraceResponse, bool, error) {
	u := t.Base + "/v1/trace"
	if id != "" {
		u += "?id=" + url.QueryEscape(id)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return obs.TraceResponse{}, false, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return obs.TraceResponse{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.TraceResponse{}, false, nil
	}
	var doc obs.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return obs.TraceResponse{}, false, err
	}
	return doc, true, nil
}

// ReadStageStats implements StageStatsReader from the stats document's
// obs block (served by both tiers).
func (t *HTTPTarget) ReadStageStats(ctx context.Context) (map[string]obs.StageSummary, bool, error) {
	sr, err := t.readStatsResponse(ctx)
	if err != nil {
		return nil, false, err
	}
	return sr.Obs, len(sr.Obs) > 0, nil
}
