package load

import (
	"context"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/cluster"
	"repro/internal/keyed"
	"repro/internal/serve"
)

func TestKeyedScenarioInproc(t *testing.T) {
	d := serve.NewDispatcher(serve.Config{Spec: ballsbins.Adaptive(), N: 4096, Shards: 4, Seed: 1})
	defer d.Close()
	sc := KeyedSteady()
	sc.KeySpace = 64
	res, err := Run(context.Background(), Config{
		Scenario:    sc,
		Mode:        "open",
		Rate:        2000,
		Duration:    600 * time.Millisecond,
		ServiceMean: 5 * time.Millisecond,
		Seed:        1,
	}, InProc{D: d})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 || res.Errors != 0 {
		t.Fatalf("placed %d errors %d", res.Placed, res.Errors)
	}
	if res.KeyedPolicy != "adaptive" || res.Keys == 0 || res.Keys > 64 {
		t.Fatalf("keyed stamp: policy %q keys %d", res.KeyedPolicy, res.Keys)
	}
	if res.KeySpace != 64 || res.KeyZipfS != 1.2 {
		t.Fatalf("scenario stamp: space %d zipf %v", res.KeySpace, res.KeyZipfS)
	}
	if res.AffinityHitRate <= 0.5 {
		t.Fatalf("affinity hit rate %v over a 64-key space — affinity is not sticking", res.AffinityHitRate)
	}
}

func TestKeyedScenarioRequiresKeyedTarget(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Scenario:    KeyedSteady(),
		Mode:        "open",
		Rate:        100,
		Duration:    100 * time.Millisecond,
		ServiceMean: time.Millisecond,
	}, placeOnlyTarget{})
	if err == nil {
		t.Fatal("keyed scenario accepted a target without a keyed API")
	}
}

// placeOnlyTarget implements just Target.
type placeOnlyTarget struct{}

func (placeOnlyTarget) Place(context.Context, int) ([]int, int64, error) {
	return []int{0}, 1, nil
}
func (placeOnlyTarget) Remove(context.Context, int) error { return nil }

// TestKeyedKillScenarioCluster runs the membership-kill scenario
// end-to-end on an in-proc cluster: a backend dies mid-run, keyed
// placements ride failover with zero client-visible errors, and the
// disruption stays within moved ≤ resident-at-kill + shed.
func TestKeyedKillScenarioCluster(t *testing.T) {
	policy, err := cluster.PolicyByName("single", 2, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewInprocCluster(ClusterConfig{
		Backends: 3, Spec: ballsbins.Adaptive(), N: 1024, Shards: 2, Seed: 5,
		Policy: policy,
		Keyed:  &keyed.Config{HotShare: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	sc := KeyedKill()
	sc.KeySpace = 128
	res, err := Run(context.Background(), Config{
		Scenario:    sc,
		Mode:        "open",
		Rate:        3000,
		Duration:    1200 * time.Millisecond,
		ServiceMean: 10 * time.Millisecond,
		Seed:        5,
	}, ct)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceErrors != 0 {
		t.Fatalf("keyed kill run leaked %d client-visible place errors", res.PlaceErrors)
	}
	if res.KilledBackend != 2 {
		t.Fatalf("killed backend %d, want the last slot 2", res.KilledBackend)
	}
	if res.HealthyBackends != 2 {
		t.Fatalf("healthy backends %d, want 2 after the kill", res.HealthyBackends)
	}
	// Disruption bound: every moved key was either resident on the
	// dead slot or shed for the bound — with 128 keys over 3 slots,
	// far fewer than half the keys may move.
	if res.KeysMoved+res.KeysShed == 0 {
		t.Fatalf("kill moved no keys — the victim held none? keys=%d", res.Keys)
	}
	if res.KeysMoved+res.KeysShed > res.Keys*2/3 {
		t.Fatalf("disruption %d+%d over %d keys is not minimal", res.KeysMoved, res.KeysShed, res.Keys)
	}
	if res.KeyedPolicy != "adaptive" {
		t.Fatalf("keyed policy stamp %q", res.KeyedPolicy)
	}
}
