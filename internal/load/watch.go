package load

import (
	"context"
	"encoding/json"
	"net/http"

	"repro/internal/watch"
)

// WatchReader is implemented by targets whose server runs the invariant
// watchdog (GET /v1/timeseries or the in-proc monitor), so runs can
// stamp the gap-over-time series and the violation count into their
// result record. ok is false when the target has no watchdog surface.
type WatchReader interface {
	ReadWatch(ctx context.Context) (doc watch.SeriesResponse, ok bool, err error)
}

// GapPoint is one gap_over_time sample in a Result: the compact
// projection of a watch.Point a benchmark record needs to plot balance
// against time (and to spot exactly when a violation fired — the
// cumulative counter steps at that sample).
type GapPoint struct {
	TimeUnixMs int64   `json:"t_ms"`
	Balls      int64   `json:"balls"`
	MaxLoad    int     `json:"max_load"`
	Gap        int     `json:"gap"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Violations int64   `json:"violations_total"`
}

// gapSeries projects a timeseries document onto the Result columns.
func gapSeries(doc watch.SeriesResponse) []GapPoint {
	out := make([]GapPoint, 0, len(doc.Points))
	for _, p := range doc.Points {
		out = append(out, GapPoint{
			TimeUnixMs: p.TimeUnixMs,
			Balls:      p.Balls,
			MaxLoad:    p.MaxLoad,
			Gap:        p.Gap,
			OpsPerSec:  p.OpsPerSec,
			Violations: p.Violations,
		})
	}
	return out
}

// ReadWatch implements WatchReader from the dispatcher's monitor.
func (t InProc) ReadWatch(context.Context) (watch.SeriesResponse, bool, error) {
	m := t.D.Watch()
	if m == nil {
		return watch.SeriesResponse{}, false, nil
	}
	return m.SeriesDoc(0), true, nil
}

// ReadWatch implements WatchReader via GET /v1/timeseries; ok is false
// when the server predates the endpoint (404) or runs without a
// watchdog (empty hop).
func (t *HTTPTarget) ReadWatch(ctx context.Context) (watch.SeriesResponse, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/v1/timeseries", nil)
	if err != nil {
		return watch.SeriesResponse{}, false, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return watch.SeriesResponse{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return watch.SeriesResponse{}, false, nil
	}
	var doc watch.SeriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return watch.SeriesResponse{}, false, err
	}
	return doc, doc.Hop != "", nil
}
