package load

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// TraceReader is implemented by targets that expose the server-side
// trace ring (GET /v1/trace or the in-proc recorder), so runs can join
// their slowest client-observed operations against the server's
// per-stage decomposition. A non-empty id asks for exactly that trace
// (GET /v1/trace?id= / the wire TRACE verb) — the slow-op join's
// lookup — while "" dumps the whole ring. ok is false when the target
// has no trace surface (e.g. an old server without the endpoint).
type TraceReader interface {
	ReadTrace(ctx context.Context, id string) (doc obs.TraceResponse, ok bool, err error)
}

// StageStatsReader is implemented by targets that report the server's
// per-stage latency decomposition (the stats document's obs block). ok
// is false when the target reports none.
type StageStatsReader interface {
	ReadStageStats(ctx context.Context) (stages map[string]obs.StageSummary, ok bool, err error)
}

// SlowOp is one row of a run's slow_ops section: a top-10 slowest
// operation as timed by the client, joined (by trace id) against the
// server's trace ring when the server retained it. ServerNs and the
// stage fields stay empty when the op was fast enough server-side to
// escape tail capture — the gap between ClientNs and ServerNs is then
// itself diagnostic (time spent in transit or queueing off-server).
type SlowOp struct {
	Trace    string           `json:"trace"`
	Op       string           `json:"op"`
	ClientNs int64            `json:"client_ns"`
	ServerNs int64            `json:"server_ns,omitempty"`
	Hop      string           `json:"hop,omitempty"`
	Stages   []obs.Span       `json:"stages,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
}

// slowTrackerSize is the slow_ops table depth.
const slowTrackerSize = 10

// slowTracker keeps the top-N slowest client-timed operations of a
// run. The floor fast path keeps the common case (an op faster than
// everything already tabled) lock-free.
type slowTracker struct {
	floor atomic.Int64 // min ns in a full table; ops at or below skip the lock
	mu    sync.Mutex
	ops   []clientOp
}

type clientOp struct {
	trace uint64
	op    string
	ns    int64
}

func (st *slowTracker) note(trace uint64, op string, ns int64) {
	if trace == 0 || ns <= st.floor.Load() {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.ops) < slowTrackerSize {
		st.ops = append(st.ops, clientOp{trace, op, ns})
		if len(st.ops) == slowTrackerSize {
			st.refloor()
		}
		return
	}
	mi := 0
	for i, o := range st.ops {
		if o.ns < st.ops[mi].ns {
			mi = i
		}
	}
	if ns > st.ops[mi].ns {
		st.ops[mi] = clientOp{trace, op, ns}
		st.refloor()
	}
}

func (st *slowTracker) refloor() {
	min := st.ops[0].ns
	for _, o := range st.ops[1:] {
		if o.ns < min {
			min = o.ns
		}
	}
	st.floor.Store(min)
}

// join renders the table slowest-first, resolving each op's
// server-side record with an exact-id lookup — the table holds at most
// slowTrackerSize ids, so ten filtered reads replace shipping the
// server's whole ring, and a miss on one id cannot be confused with a
// snapshot race on another.
func (st *slowTracker) join(ctx context.Context, tr TraceReader) []SlowOp {
	st.mu.Lock()
	ops := append([]clientOp(nil), st.ops...)
	st.mu.Unlock()
	if len(ops) == 0 {
		return nil
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].ns > ops[j].ns })
	out := make([]SlowOp, 0, len(ops))
	for _, o := range ops {
		so := SlowOp{Trace: obs.FormatTrace(o.trace), Op: o.op, ClientNs: o.ns}
		if doc, ok, err := tr.ReadTrace(ctx, so.Trace); err == nil && ok {
			for _, sv := range doc.Ops {
				if sv.Trace == so.Trace {
					so.ServerNs = sv.DurationNs
					so.Hop = sv.Hop
					so.Stages = sv.Spans
					so.Attrs = sv.Attrs
					break
				}
			}
		}
		out = append(out, so)
	}
	return out
}

// stageP99 projects the stage decomposition to its p99 column.
func stageP99(m map[string]obs.StageSummary) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for stage, s := range m {
		out[stage] = s.P99Ns
	}
	return out
}
