package load

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

func newDispatcher(t *testing.T, n, shards int) *serve.Dispatcher {
	t.Helper()
	d := serve.NewDispatcher(serve.Config{
		Spec: ballsbins.Adaptive(), N: n, Shards: shards, Seed: 1,
	})
	t.Cleanup(d.Close)
	return d
}

func TestScenarioPresets(t *testing.T) {
	for _, name := range Scenarios() {
		sc, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, sc.Name)
		}
		var frac float64
		for _, ph := range sc.Phases {
			frac += ph.Frac
		}
		if math.Abs(frac-1) > 1e-9 {
			t.Errorf("scenario %q phases cover %v of the run, want 1", name, frac)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown scenario")
	}
}

func TestSamplerServiceMean(t *testing.T) {
	for _, dist := range []string{"exp", "lognormal"} {
		smp := newSampler(Config{
			Seed: 42, ServiceMean: 100 * time.Millisecond, ServiceDist: dist,
		})
		var sum time.Duration
		const n = 50000
		for i := 0; i < n; i++ {
			sum += smp.service()
		}
		mean := sum.Seconds() / n
		if mean < 0.09 || mean > 0.11 {
			t.Errorf("%s service mean %.4fs, want ≈0.100s", dist, mean)
		}
	}
}

func TestSamplerSkewBulk(t *testing.T) {
	smp := newSampler(Config{Seed: 7, ServiceMean: time.Millisecond, Scenario: Skew()})
	if smp.meanBulk <= 1 {
		t.Fatalf("skew mean bulk %v, want > 1", smp.meanBulk)
	}
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		b := smp.bulk()
		if b < 1 || b > 32 {
			t.Fatalf("bulk %d outside [1,32]", b)
		}
		seen[b] = true
	}
	if !seen[1] || len(seen) < 5 {
		t.Fatalf("skew bulk distribution degenerate: %d distinct sizes", len(seen))
	}
	// The arrival event gap must be stretched by the mean bulk so the
	// ball rate stays at the configured value.
	steady := newSampler(Config{Seed: 7, ServiceMean: time.Millisecond})
	var skewGap, steadyGap time.Duration
	for i := 0; i < 20000; i++ {
		skewGap += smp.gap(1000)
		steadyGap += steady.gap(1000)
	}
	ratio := skewGap.Seconds() / steadyGap.Seconds()
	if ratio < smp.meanBulk*0.9 || ratio > smp.meanBulk*1.1 {
		t.Errorf("skew gap stretch %.2f, want ≈ mean bulk %.2f", ratio, smp.meanBulk)
	}
}

func TestClosedLoopInProc(t *testing.T) {
	d := newDispatcher(t, 64, 4)
	res, err := Run(context.Background(), Config{
		Mode:     "closed",
		Workers:  4,
		Duration: 200 * time.Millisecond,
		Seed:     1,
	}, InProc{D: d})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Mode != "closed" || res.Workers != 4 || res.Scenario != "steady" {
		t.Fatalf("result header: %+v", res)
	}
	if res.Placed == 0 || res.Placed != res.Removed || res.Errors != 0 {
		t.Fatalf("placed/removed/errors = %d/%d/%d", res.Placed, res.Removed, res.Errors)
	}
	if res.ThroughputPerSec <= 0 || res.PlaceLatencyNs.Count != res.Placed {
		t.Fatalf("throughput %v, latency count %d", res.ThroughputPerSec, res.PlaceLatencyNs.Count)
	}
	// Closed-loop churn holds one ball per worker at most; everything
	// is removed by the end.
	if res.FinalBalls != 0 {
		t.Fatalf("final balls %d, want 0 after pure churn", res.FinalBalls)
	}
}

func TestOpenLoopInProc(t *testing.T) {
	d := newDispatcher(t, 64, 4)
	res, err := Run(context.Background(), Config{
		Scenario:    Steady(),
		Mode:        "open",
		Rate:        2000,
		Duration:    300 * time.Millisecond,
		ServiceMean: 20 * time.Millisecond,
		Seed:        3,
	}, InProc{D: d})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Placed == 0 || res.Errors != 0 {
		t.Fatalf("placed %d errors %d", res.Placed, res.Errors)
	}
	// Poisson arrivals at 2000/s over 0.3s: expect ≈600 placements;
	// allow wide slack for CI timing jitter.
	if res.Placed < 200 || res.Placed > 1800 {
		t.Errorf("open-loop placed %d, expected ≈600", res.Placed)
	}
	if res.Removed == 0 || res.Removed > res.Placed {
		t.Errorf("removed %d of %d placed", res.Removed, res.Placed)
	}
	// Books balance: every ball is placed, removed, or still live.
	if res.FinalBalls != res.Placed-res.Removed {
		t.Errorf("final balls %d, placed-removed %d", res.FinalBalls, res.Placed-res.Removed)
	}
}

func TestOpenLoopHTTP(t *testing.T) {
	d := newDispatcher(t, 64, 4)
	srv := httptest.NewServer(serve.NewHandler(d, serve.Info{Protocol: "adaptive", N: 64, Shards: 4}))
	t.Cleanup(srv.Close)
	res, err := Run(context.Background(), Config{
		Scenario:    Flash(),
		Mode:        "open",
		Rate:        1000,
		Duration:    300 * time.Millisecond,
		ServiceMean: 10 * time.Millisecond,
		Seed:        5,
	}, NewHTTPTarget(srv.URL))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res.Target = "http"
	if res.Placed == 0 || res.Errors != 0 {
		t.Fatalf("placed %d errors %d (final %+v)", res.Placed, res.Errors, res)
	}
	if res.FinalBalls != res.Placed-res.Removed {
		t.Errorf("final balls %d, placed-removed %d", res.FinalBalls, res.Placed-res.Removed)
	}
	if res.PlaceLatencyNs.P999 < res.PlaceLatencyNs.P50 {
		t.Errorf("latency summary inverted: %+v", res.PlaceLatencyNs)
	}
}

// flakyTarget fails every place whose global order is ≡ 0 mod 3,
// exercising the per-worker error accounting.
type flakyTarget struct {
	inner Target
	calls atomic.Int64
}

func (f *flakyTarget) Place(ctx context.Context, count int) ([]int, int64, error) {
	if f.calls.Add(1)%3 == 0 {
		return nil, 0, errors.New("flaky")
	}
	return f.inner.Place(ctx, count)
}

func (f *flakyTarget) Remove(ctx context.Context, bin int) error {
	return f.inner.Remove(ctx, bin)
}

// TestClosedLoopWorkerErrors pins the per-worker error envelope: the
// slice has one entry per worker, sums to the total, and a flaky
// target's failures are visible in it rather than only as a lump sum.
func TestClosedLoopWorkerErrors(t *testing.T) {
	d := newDispatcher(t, 64, 4)
	res, err := Run(context.Background(), Config{
		Mode:     "closed",
		Workers:  3,
		Duration: 150 * time.Millisecond,
		Seed:     1,
	}, &flakyTarget{inner: InProc{D: d}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.WorkerErrors) != 3 {
		t.Fatalf("WorkerErrors has %d entries, want 3", len(res.WorkerErrors))
	}
	var sum int64
	for _, e := range res.WorkerErrors {
		sum += e
	}
	if sum != res.Errors || res.Errors == 0 {
		t.Fatalf("worker errors sum %d, total %d (want equal, nonzero)", sum, res.Errors)
	}
	if res.PlaceErrors+res.RemoveErrors != res.Errors || res.PlaceErrors == 0 {
		t.Fatalf("place/remove split %d+%d != total %d",
			res.PlaceErrors, res.RemoveErrors, res.Errors)
	}
}

// TestClusterTargetRun drives the full in-proc cluster path through
// the load generator and checks the cluster stamping in the result.
func TestClusterTargetRun(t *testing.T) {
	policy, err := cluster.PolicyByName("greedy", 2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewInprocCluster(ClusterConfig{
		Backends: 4, Spec: ballsbins.Adaptive(), N: 256, Shards: 1,
		Seed: 1, Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ct.Close)
	res, err := Run(context.Background(), Config{
		Scenario:    Skew(),
		Mode:        "open",
		Rate:        2000,
		Duration:    300 * time.Millisecond,
		ServiceMean: 20 * time.Millisecond,
		Seed:        3,
	}, ct)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Placed == 0 || res.Errors != 0 {
		t.Fatalf("placed %d errors %d", res.Placed, res.Errors)
	}
	if res.Policy != "greedy[2]" || res.Backends != 4 || res.HealthyBackends != 4 {
		t.Fatalf("cluster stamping: %+v", res)
	}
	if res.ProbesPerPick != 2 {
		t.Fatalf("probes/pick %v, want 2 for greedy[2]", res.ProbesPerPick)
	}
	if res.FinalBalls != res.Placed-res.Removed {
		t.Errorf("final balls %d, placed-removed %d", res.FinalBalls, res.Placed-res.Removed)
	}
	// The view's estimate agrees with the backends at quiescence.
	if res.MaxBackendBalls < res.FinalBalls/4 {
		t.Errorf("max backend balls %d below mean %d", res.MaxBackendBalls, res.FinalBalls/4)
	}
}

func TestRunValidation(t *testing.T) {
	d := newDispatcher(t, 8, 1)
	tgt := InProc{D: d}
	ctx := context.Background()
	for name, cfg := range map[string]Config{
		"no duration":  {Mode: "open", Rate: 1, ServiceMean: time.Millisecond},
		"no rate":      {Mode: "open", Duration: time.Second, ServiceMean: time.Millisecond},
		"no service":   {Mode: "open", Rate: 1, Duration: time.Second},
		"no workers":   {Mode: "closed", Duration: time.Second},
		"unknown mode": {Mode: "banana", Duration: time.Second},
	} {
		if _, err := Run(ctx, cfg, tgt); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}
