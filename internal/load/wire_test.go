package load

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	ballsbins "repro"
	"repro/internal/serve"
	"repro/internal/wire"
)

// startWireServer wraps a fresh same-config dispatcher in a wire server
// on a loopback listener and returns a WireTarget dialed into it.
func startWireServer(t *testing.T, d *serve.Dispatcher, info serve.Info) *WireTarget {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wh := serve.NewDispatcherWire(d, info)
	ws := wire.NewServer(wh, wire.ServerOptions{})
	wh.BindServer(ws)
	go ws.Serve(ln)
	t.Cleanup(func() { ws.Close() })
	wt, err := NewWireTarget(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wt.Close() })
	return wt
}

// transcript drives a deterministic op script against a target and
// returns every reply it saw.
func transcript(t *testing.T, tgt interface {
	Target
	KeyedTarget
}) []string {
	t.Helper()
	ctx := context.Background()
	var out []string
	var held []int
	for i := 0; i < 300; i++ {
		switch {
		case i%5 == 3:
			key := fmt.Sprintf("k%02d", i%16)
			bins, samples, err := tgt.PlaceKey(ctx, key)
			if err != nil {
				t.Fatalf("op %d PlaceKey: %v", i, err)
			}
			out = append(out, fmt.Sprintf("pk %s %v %d", key, bins, samples))
		default:
			count := i%4 + 1
			bins, samples, err := tgt.Place(ctx, count)
			if err != nil {
				t.Fatalf("op %d Place: %v", i, err)
			}
			out = append(out, fmt.Sprintf("p %d %v %d", count, bins, samples))
			held = append(held, bins[0])
		}
		if i%7 == 6 && len(held) > 0 {
			bin := held[0]
			held = held[1:]
			if err := tgt.Remove(ctx, bin); err != nil {
				t.Fatalf("op %d Remove(%d): %v", i, bin, err)
			}
			out = append(out, fmt.Sprintf("r %d", bin))
		}
	}
	return out
}

// TestTransportEquivalence is the correctness half of the wire-speedup
// claim: the same seed and the same deterministic op sequence must
// yield byte-identical placements and matching /v1/stats books whether
// driven over JSON/HTTP or the binary wire protocol.
func TestTransportEquivalence(t *testing.T) {
	info := serve.Info{Protocol: "adaptive", N: 64, Shards: 4}
	mk := func() *serve.Dispatcher {
		d := serve.NewDispatcher(serve.Config{Spec: ballsbins.Adaptive(), N: 64, Shards: 4, Seed: 1})
		t.Cleanup(d.Close)
		return d
	}

	dh := mk()
	srv := httptest.NewServer(serve.NewHandler(dh, info))
	t.Cleanup(srv.Close)
	ht := NewHTTPTarget(srv.URL)

	dw := mk()
	wt := startWireServer(t, dw, info)

	hlog := transcript(t, ht)
	wlog := transcript(t, wt)
	if len(hlog) != len(wlog) {
		t.Fatalf("transcript lengths differ: http %d, wire %d", len(hlog), len(wlog))
	}
	for i := range hlog {
		if hlog[i] != wlog[i] {
			t.Fatalf("op %d diverged:\n  http: %s\n  wire: %s", i, hlog[i], wlog[i])
		}
	}

	ctx := context.Background()
	hs, err := ht.ReadStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wt.ReadStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Latency and combining are timing-dependent; the books and the load
	// shape must match exactly.
	type books struct {
		Balls, Placed, Removed, Samples int64
		MaxLoad, MinLoad, Gap           int
		Psi                             float64
	}
	hb := books{hs.Balls, hs.Placed, hs.Removed, hs.Samples, hs.MaxLoad, hs.MinLoad, hs.Gap, hs.Psi}
	wb := books{ws.Balls, ws.Placed, ws.Removed, ws.Samples, ws.MaxLoad, ws.MinLoad, ws.Gap, ws.Psi}
	if !reflect.DeepEqual(hb, wb) {
		t.Fatalf("stats diverged:\n  http: %+v\n  wire: %+v", hb, wb)
	}

	// The error surfaces must agree too: removing from an empty bin is
	// serve.ErrEmptyBin on both transports.
	emptyBin := -1
	for b := 0; b < 64; b++ {
		if err := ht.Remove(ctx, b); err != nil {
			emptyBin = b
			break
		}
	}
	if emptyBin >= 0 {
		// Mirror the successful removes so the books stay aligned, then
		// compare the sentinel.
		for b := 0; b < emptyBin; b++ {
			if err := wt.Remove(ctx, b); err != nil {
				t.Fatalf("wire Remove(%d) failed where http succeeded: %v", b, err)
			}
		}
		herr := ht.Remove(ctx, emptyBin)
		werr := wt.Remove(ctx, emptyBin)
		if herr == nil || werr == nil || herr.Error() != werr.Error() {
			t.Fatalf("empty-bin sentinel diverged: http %v, wire %v", herr, werr)
		}
	}
}

// TestWireTargetRun drives the full load generator over the wire
// transport end to end and checks the new transport columns stamp.
func TestWireTargetRun(t *testing.T) {
	d := serve.NewDispatcher(serve.Config{Spec: ballsbins.Adaptive(), N: 64, Shards: 4, Seed: 1})
	t.Cleanup(d.Close)
	wt := startWireServer(t, d, serve.Info{Protocol: "adaptive", N: 64, Shards: 4})

	res, err := Run(context.Background(), Config{
		Scenario:    Flash(),
		Mode:        "open",
		Rate:        1000,
		Duration:    300 * time.Millisecond,
		ServiceMean: 10 * time.Millisecond,
		Seed:        5,
	}, wt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Placed == 0 || res.Errors != 0 {
		t.Fatalf("placed %d errors %d", res.Placed, res.Errors)
	}
	if res.FinalBalls != res.Placed-res.Removed {
		t.Errorf("final balls %d, placed-removed %d", res.FinalBalls, res.Placed-res.Removed)
	}
	if res.Transport != "wire" {
		t.Errorf("transport stamp = %q, want wire", res.Transport)
	}
	if res.ClientBytesPerOp <= 0 || res.ClientCoalescing < 1 {
		t.Errorf("transport columns: bytes/op %v, coalescing %v", res.ClientBytesPerOp, res.ClientCoalescing)
	}
}

// TestHTTPTransportColumns checks the HTTP side of the new envelope
// columns: transport "http", coalescing pinned at 1, measured bytes/op.
func TestHTTPTransportColumns(t *testing.T) {
	d := serve.NewDispatcher(serve.Config{Spec: ballsbins.Adaptive(), N: 64, Shards: 4, Seed: 1})
	t.Cleanup(d.Close)
	srv := httptest.NewServer(serve.NewHandler(d, serve.Info{Protocol: "adaptive", N: 64, Shards: 4}))
	t.Cleanup(srv.Close)

	res, err := Run(context.Background(), Config{
		Mode:     "closed",
		Workers:  2,
		Duration: 200 * time.Millisecond,
		Seed:     1,
	}, NewHTTPTarget(srv.URL))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Transport != "http" || res.ClientCoalescing != 1 {
		t.Errorf("transport stamp = %q coalescing %v, want http/1", res.Transport, res.ClientCoalescing)
	}
	if res.ClientBytesPerOp <= 0 {
		t.Errorf("bytes/op %v, want > 0 from the counting transport", res.ClientBytesPerOp)
	}
}
